#include "excess/session.h"

#include <chrono>
#include <utility>

#include "core/builder.h"
#include "core/infer.h"
#include "excess/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/env.h"
#include "util/fileio.h"
#include "util/string_util.h"

namespace excess {

Result<ValuePtr> Session::Execute(const std::string& program) {
  EXA_ASSIGN_OR_RETURN(Program stmts, Parse(program));
  ValuePtr last;
  for (const auto& stmt : stmts) {
    EXA_ASSIGN_OR_RETURN(ValuePtr v, ExecuteStatement(stmt));
    if (v != nullptr) last = std::move(v);
  }
  return last;
}

Result<ValuePtr> Session::ExecuteStatement(const Statement& stmt) {
  // A cancelled session refuses every statement kind — including DDL that
  // never reaches the evaluator — until the caller resets the token.
  // `rollback` is the one exception: it evaluates nothing, and a cancelled
  // transaction must stay abortable.
  if (options_.cancel != nullptr && options_.cancel->cancelled() &&
      stmt.kind != Statement::Kind::kRollback) {
    return Status::Cancelled("session cancelled");
  }
  EXA_RETURN_NOT_OK(MaybeOpenFromEnv());
  switch (stmt.kind) {
    case Statement::Kind::kDefineType:
      EXA_RETURN_NOT_OK(ExecDefineType(*stmt.define_type, stmt.source));
      return ValuePtr(nullptr);
    case Statement::Kind::kCreate:
      EXA_RETURN_NOT_OK(ExecCreate(*stmt.create, stmt.source));
      return ValuePtr(nullptr);
    case Statement::Kind::kRange:
      EXA_RETURN_NOT_OK(ExecRange(*stmt.range, stmt.source));
      return ValuePtr(nullptr);
    case Statement::Kind::kDefineFunction:
      EXA_RETURN_NOT_OK(ExecDefineFunction(*stmt.define_function, stmt.source));
      return ValuePtr(nullptr);
    case Statement::Kind::kRetrieve:
      return ExecRetrieve(*stmt.retrieve, stmt.source);
    case Statement::Kind::kAppend:
      EXA_RETURN_NOT_OK(ExecAppend(*stmt.append, stmt.source));
      return ValuePtr(nullptr);
    case Statement::Kind::kDelete:
      EXA_RETURN_NOT_OK(ExecDelete(*stmt.del, stmt.source));
      return ValuePtr(nullptr);
    case Statement::Kind::kExplain:
      return ExecExplain(*stmt.explain);
    case Statement::Kind::kOpen:
      // `open` replaces session state wholesale and `checkpoint` snapshots
      // it — both would durably observe uncommitted work, so neither is
      // allowed while a transaction is staging.
      if (txn_ != nullptr) {
        return Status::Invalid(
            "cannot open a database inside a transaction; "
            "commit or rollback first");
      }
      EXA_RETURN_NOT_OK(OpenStorage(stmt.open->path));
      return ValuePtr(nullptr);
    case Statement::Kind::kCheckpoint:
      if (txn_ != nullptr) {
        return Status::Invalid(
            "cannot checkpoint inside a transaction; "
            "commit or rollback first");
      }
      EXA_RETURN_NOT_OK(Checkpoint());
      return ValuePtr(nullptr);
    case Statement::Kind::kBegin:
      EXA_RETURN_NOT_OK(ExecBegin());
      return ValuePtr(nullptr);
    case Statement::Kind::kCommit:
      EXA_RETURN_NOT_OK(ExecCommit());
      return ValuePtr(nullptr);
    case Statement::Kind::kRollback:
      EXA_RETURN_NOT_OK(ExecRollback());
      return ValuePtr(nullptr);
    case Statement::Kind::kCreateIndex:
      EXA_RETURN_NOT_OK(ExecCreateIndex(*stmt.create_index, stmt.source));
      return ValuePtr(nullptr);
    case Statement::Kind::kDropIndex:
      EXA_RETURN_NOT_OK(ExecDropIndex(*stmt.drop_index, stmt.source));
      return ValuePtr(nullptr);
  }
  return Status::Internal("unknown statement kind");
}

Status Session::LogDurable(const std::string& source, bool context) {
  if (replaying_) return Status::OK();
  if (txn_ != nullptr) {
    // Inside a transaction nothing reaches the WAL yet: the statement is
    // staged for the commit-time group. Unloggable statements are rejected
    // here, not at commit — the statement's own undo path still runs, and
    // the transaction stays consistent.
    if (storage_ != nullptr && source.empty()) {
      return Status::Invalid(
          "cannot log a statement with no source text; programmatically "
          "built statements are not durable");
    }
    storage::StagedStatement staged;
    staged.source = source;
    staged.optimize = options_.optimize;
    staged.context = context;
    txn_->staged.push_back(std::move(staged));
    return Status::OK();
  }
  if (storage_ == nullptr) return Status::OK();
  return storage_->LogCommit(source, options_.optimize, context);
}

Status Session::ExecBegin() {
  if (txn_ != nullptr) {
    return Status::Invalid(
        "a transaction is already open; commit or rollback it first");
  }
  auto txn = std::make_unique<Txn>();
  txn->db = db_->CaptureTxnSnapshot();
  txn->ranges = ranges_;
  if (methods_ != nullptr) txn->methods = methods_->Snapshot();
  txn->context_log = context_log_;
  txn_ = std::move(txn);
  obs::MetricsRegistry::Global().GetCounter("txn.begin")->Increment();
  return Status::OK();
}

Status Session::RestoreTxn(Txn& txn) {
  EXA_RETURN_NOT_OK(db_->RestoreTxnSnapshot(txn.db));
  ranges_ = std::move(txn.ranges);
  if (methods_ != nullptr) methods_->RestoreSnapshot(std::move(txn.methods));
  context_log_ = std::move(txn.context_log);
  return Status::OK();
}

Status Session::ExecCommit() {
  if (txn_ == nullptr) {
    return Status::Invalid("no open transaction; `begin` starts one");
  }
  std::unique_ptr<Txn> txn = std::move(txn_);
  std::string token = std::move(next_commit_token_);
  next_commit_token_.clear();
  if (storage_ != nullptr) {
    Status logged = storage_->LogCommitGroup(txn->staged, token);
    if (!logged.ok()) {
      // The group append failed, so nothing became durable; auto-abort puts
      // the in-memory state back in agreement with the disk.
      EXA_RETURN_NOT_OK(RestoreTxn(*txn));
      return logged;
    }
  }
  obs::MetricsRegistry::Global().GetCounter("txn.commit")->Increment();
  return Status::OK();
}

Status Session::ExecRollback() {
  if (txn_ == nullptr) {
    return Status::Invalid("no open transaction; `begin` starts one");
  }
  std::unique_ptr<Txn> txn = std::move(txn_);
  EXA_RETURN_NOT_OK(RestoreTxn(*txn));
  obs::MetricsRegistry::Global().GetCounter("txn.rollback")->Increment();
  return Status::OK();
}

void Session::RecordContext(const std::string& source) {
  // Context statements are tracked from session start even without storage,
  // so a later `open` on a fresh path snapshots the bindings already made.
  if (!source.empty() && !replaying_) context_log_.push_back(source);
}

Status Session::MaybeOpenFromEnv() {
  if (env_checked_) return Status::OK();
  env_checked_ = true;
  if (!options_.env_autoopen) return Status::OK();
  const std::string path = util::EnvString("EXCESS_DB_PATH");
  if (path.empty() || storage_ != nullptr) return Status::OK();
  return OpenStorage(path);
}

Status Session::OpenStorage(const std::string& path) {
  // `open` during replay would mean the log contains an open statement —
  // it never does (open/checkpoint are not logged), but guard anyway.
  if (replaying_) return Status::Internal("open during WAL replay");
  if (storage_ != nullptr) {
    return Status::Invalid(
        StrCat("a database is already open at '", storage_->path(),
               "'; one durable database per session"));
  }
  env_checked_ = true;  // explicit open beats the env auto-open
  storage::StorageOptions opts;
  opts.fsync = util::EnvInt("EXCESS_WAL_FSYNC", 0, 1, 1) != 0;
  opts.group_commit = util::EnvInt("EXCESS_GROUP_COMMIT", 0, 1, 1) != 0;
  opts.hooks = storage_hooks_;
  const bool existing = util::FileExists(path);
  if (existing) {
    // Recovered state REPLACES the session state wholesale.
    db_->Clear();
    ranges_.clear();
    if (methods_ != nullptr) methods_->Clear();
    context_log_.clear();
  }
  EXA_ASSIGN_OR_RETURN(storage::StorageEngine::Opened opened,
                       storage::StorageEngine::Open(path, db_, context_log_,
                                                    opts));
  last_recovery_ = opened.info;
  storage_ = std::move(opened.engine);
  if (!opened.replay.empty()) {
    replaying_ = true;
    const bool saved_optimize = options_.optimize;
    Status st = Status::OK();
    for (const auto& rec : opened.replay) {
      options_.optimize = rec.optimize;
      auto parsed = ParseStatement(rec.source);
      if (!parsed.ok()) {
        st = Status::DataLoss(
            StrCat("WAL replay: cannot parse logged statement (lsn ",
                   rec.lsn, "): ", parsed.status().message()));
        break;
      }
      auto r = ExecuteStatement(*parsed);
      if (!r.ok()) {
        st = Status::DataLoss(
            StrCat("WAL replay: logged statement failed (lsn ", rec.lsn,
                   "): ", r.status().message()));
        break;
      }
      // Replayed context statements re-enter the session's context log so
      // the next checkpoint carries them forward.
      if (rec.context) context_log_.push_back(rec.source);
    }
    options_.optimize = saved_optimize;
    replaying_ = false;
    if (!st.ok()) {
      // The session is left cleared and detached: recovery is all-or-nothing.
      storage_.reset();
      return st;
    }
  }
  return Status::OK();
}

Status Session::Checkpoint() {
  if (storage_ == nullptr) {
    return Status::Invalid("no database open; use `open \"<path>\"` first");
  }
  return storage_->Checkpoint(*db_, context_log_);
}

Result<ExprPtr> Session::AppendPlan(const AppendStmt& stmt) {
  EXA_ASSIGN_OR_RETURN(SchemaPtr schema, db_->NamedSchema(stmt.target));
  if (!schema->is_set()) {
    return Status::TypeError(
        StrCat("append requires a multiset object; '", stmt.target, "' is ",
               schema->ToString()));
  }
  EXA_ASSIGN_OR_RETURN(ExprPtr value_expr,
                       translator_.TranslateClosedExpr(stmt.value));
  ExprPtr addition =
      stmt.all ? value_expr : alg::SetMake(std::move(value_expr));
  return alg::AddUnion(alg::Var(stmt.target), std::move(addition));
}

Status Session::ExecAppend(const AppendStmt& stmt, const std::string& source) {
  // Append does not evaluate its full ADD_UNION plan (which copies and
  // re-normalizes every existing entry, turning a replay of n appends into
  // O(n²) work): only the addition is evaluated, and the merge happens
  // through Database::AppendNamed's per-name index in O(|addition|). The
  // ADD_UNION tree survives for EXPLAIN (AppendPlan).
  EXA_ASSIGN_OR_RETURN(SchemaPtr schema, db_->NamedSchema(stmt.target));
  if (!schema->is_set()) {
    return Status::TypeError(
        StrCat("append requires a multiset object; '", stmt.target, "' is ",
               schema->ToString()));
  }
  EXA_ASSIGN_OR_RETURN(ExprPtr value_expr,
                       translator_.TranslateClosedExpr(stmt.value));
  Evaluator ev(db_, methods_);
  Governor governor(options_.limits, options_.cancel);
  ev.set_governor(&governor);
  auto evaluated = ev.Eval(value_expr);
  if (!evaluated.ok()) {
    last_stats_ = ev.stats();
    return evaluated.status();
  }
  ValuePtr addition =
      stmt.all ? std::move(*evaluated) : Value::SetOf({*evaluated});
  if (!addition->is_set()) {
    // Same complaint ADD_UNION itself would raise on a non-set operand.
    last_stats_ = ev.stats();
    return Status::TypeError(
        StrCat("ADD_UNION requires a multiset operand, got ",
               ValueKindToString(addition->kind())));
  }
  // The merge materializes the addition's occurrences into the stored set;
  // charge them like any operator output so budgets govern append too (the
  // skipped work — re-copying the target's existing entries — is exactly
  // what nobody should be billed for).
  Status charged = governor.Checkpoint(addition->TotalCount());
  last_stats_ = ev.stats();
  EXA_RETURN_NOT_OK(charged);
  // Commit protocol: the staged result reaches the database only after the
  // statement is durably logged, so a crash between the two replays it.
  EXA_RETURN_NOT_OK(LogDurable(source, /*context=*/false));
  return db_->AppendNamed(stmt.target, addition);
}

Status Session::ExecDelete(const DeleteStmt& stmt, const std::string& source) {
  EXA_ASSIGN_OR_RETURN(
      ExprPtr plan, translator_.TranslateDeletePlan(stmt.target, stmt.where));
  EXA_ASSIGN_OR_RETURN(ValuePtr updated, EvalTree(plan));
  EXA_RETURN_NOT_OK(LogDurable(source, /*context=*/false));
  return db_->SetNamed(stmt.target, std::move(updated));
}

Status Session::ExecDefineType(const DefineTypeStmt& stmt,
                               const std::string& source) {
  EXA_ASSIGN_OR_RETURN(SchemaPtr schema, translator_.BuildSchema(stmt.body));
  EXA_RETURN_NOT_OK(db_->catalog().DefineType(stmt.name, std::move(schema),
                                              stmt.inherits));
  // DDL applies first (definition can fail on semantic grounds the log must
  // never record), then logs; a failed log undoes the definition so memory
  // and disk stay in agreement.
  Status logged = LogDurable(source, /*context=*/false);
  if (!logged.ok()) {
    db_->catalog().UndoLastDefine();
    return logged;
  }
  return Status::OK();
}

Status Session::ExecCreate(const CreateStmt& stmt, const std::string& source) {
  EXA_ASSIGN_OR_RETURN(SchemaPtr schema, translator_.BuildSchema(stmt.type));
  EXA_RETURN_NOT_OK(db_->CreateNamed(stmt.name, std::move(schema)));
  Status logged = LogDurable(source, /*context=*/false);
  if (!logged.ok()) {
    (void)db_->DropNamed(stmt.name);
    return logged;
  }
  return Status::OK();
}

Status Session::ExecCreateIndex(const CreateIndexStmt& stmt,
                                const std::string& source) {
  IndexDef def;
  def.name = stmt.name;
  def.set_name = stmt.target;
  def.path = stmt.path;
  def.kind = stmt.ordered ? IndexKind::kOrdered : IndexKind::kHash;
  // Same DDL commit protocol as ExecCreate: apply first (the build can fail
  // on semantic grounds the log must never record), then log, undoing the
  // build if the log write fails.
  EXA_RETURN_NOT_OK(db_->CreateIndex(def));
  Status logged = LogDurable(source, /*context=*/false);
  if (!logged.ok()) {
    (void)db_->DropIndex(stmt.name);
    return logged;
  }
  return Status::OK();
}

Status Session::ExecDropIndex(const DropIndexStmt& stmt,
                              const std::string& source) {
  // Capture the definition before dropping so a failed log write can put
  // the index back (entries rebuild from the unchanged base set).
  const SecondaryIndex* idx = db_->FindIndex(stmt.name);
  if (idx == nullptr) {
    return Status::Invalid(StrCat("no index named '", stmt.name, "'"));
  }
  IndexDef previous = idx->def();
  EXA_RETURN_NOT_OK(db_->DropIndex(stmt.name));
  Status logged = LogDurable(source, /*context=*/false);
  if (!logged.ok()) {
    (void)db_->CreateIndex(previous);
    return logged;
  }
  return Status::OK();
}

Status Session::ExecRange(const RangeStmt& stmt, const std::string& source) {
  // Redeclaration replaces the previous binding (a session convenience).
  ExprAstPtr prev;
  bool replaced = false;
  for (auto& [v, coll] : ranges_) {
    if (v == stmt.var) {
      prev = coll;
      coll = stmt.collection;
      replaced = true;
      break;
    }
  }
  if (!replaced) ranges_.emplace_back(stmt.var, stmt.collection);
  Status logged = LogDurable(source, /*context=*/true);
  if (!logged.ok()) {
    if (replaced) {
      for (auto& [v, coll] : ranges_) {
        if (v == stmt.var) coll = prev;
      }
    } else {
      ranges_.pop_back();
    }
    return logged;
  }
  RecordContext(source);
  return Status::OK();
}

Status Session::ExecDefineFunction(const DefineFunctionStmt& stmt,
                                   const std::string& source) {
  if (methods_ == nullptr) {
    return Status::Unsupported("this session has no method registry");
  }
  EXA_ASSIGN_OR_RETURN(SchemaPtr this_schema,
                       db_->catalog().EffectiveSchema(stmt.type_name));
  std::vector<std::string> params;
  params.reserve(stmt.params.size());
  for (const auto& [pname, ptype] : stmt.params) params.push_back(pname);
  EXA_ASSIGN_OR_RETURN(
      ExprPtr body,
      translator_.TranslateMethodBody(*stmt.body, params, this_schema));
  SchemaPtr ret;
  if (stmt.returns != nullptr) {
    EXA_ASSIGN_OR_RETURN(ret, translator_.BuildSchema(stmt.returns));
  }
  // Save the implementation a redefinition overrides, for log-failure undo.
  MethodDef previous;
  bool had_previous = false;
  if (methods_->Has(stmt.type_name, stmt.func_name)) {
    EXA_ASSIGN_OR_RETURN(const MethodDef* p,
                         methods_->LookupExact(stmt.type_name, stmt.func_name));
    previous = *p;
    had_previous = true;
  }
  MethodDef def;
  def.type_name = stmt.type_name;
  def.method_name = stmt.func_name;
  def.param_names = std::move(params);
  def.return_schema = std::move(ret);
  def.body = std::move(body);
  EXA_RETURN_NOT_OK(methods_->Define(std::move(def)));
  Status logged = LogDurable(source, /*context=*/true);
  if (!logged.ok()) {
    if (had_previous) {
      (void)methods_->Define(std::move(previous));
    } else {
      methods_->Remove(stmt.type_name, stmt.func_name);
    }
    return logged;
  }
  RecordContext(source);
  return Status::OK();
}

Planner::Options Session::EffectivePlannerOptions() const {
  Planner::Options opts = options_.planner;
  // EXCESS_INDEX_LOWERING=0 turns index-aware lowering off for the whole
  // session (the lowering-equivalence oracle's indexes-off leg); plans are
  // then index-neutral regardless of what indexes exist.
  opts.use_indexes =
      opts.use_indexes && util::EnvInt("EXCESS_INDEX_LOWERING", 0, 1, 1) != 0;
  return opts;
}

Result<ValuePtr> Session::ExecRetrieve(const RetrieveStmt& stmt,
                                       const std::string& source) {
  EXA_ASSIGN_OR_RETURN(ExprPtr tree,
                       translator_.TranslateRetrieve(stmt, ranges_));
  if (options_.optimize) {
    Planner planner(db_, EffectivePlannerOptions());
    EXA_ASSIGN_OR_RETURN(tree, planner.Optimize(tree));
  }
  EXA_ASSIGN_OR_RETURN(ValuePtr result, EvalTree(tree));
  if (!stmt.into.empty()) {
    // Only `retrieve ... into` mutates the database; plain retrieves are
    // never logged.
    EXA_RETURN_NOT_OK(LogDurable(source, /*context=*/false));
    if (db_->HasNamed(stmt.into)) {
      EXA_RETURN_NOT_OK(db_->SetNamed(stmt.into, result));
      // The overwrite ends the old binding, so its schema must go too: a
      // stale one misleads every later translation against the name (an
      // array-typed name rebound to a multiset, or a {int4} rebound to a
      // set of tuples). Named element types survive through value tags.
      EXA_RETURN_NOT_OK(db_->SetNamedSchema(
          stmt.into, SchemaOfValue(result, &db_->store())));
    } else {
      SchemaPtr schema = SchemaOfValue(result, &db_->store());
      EXA_RETURN_NOT_OK(db_->CreateNamed(stmt.into, std::move(schema), result));
    }
  }
  return result;
}

Result<ValuePtr> Session::ExecExplain(const ExplainStmt& stmt) {
  // Translate the inner statement to its logical plan without executing it.
  ExprPtr logical;
  switch (stmt.inner->kind) {
    case Statement::Kind::kRetrieve: {
      EXA_ASSIGN_OR_RETURN(
          logical, translator_.TranslateRetrieve(*stmt.inner->retrieve,
                                                 ranges_));
      break;
    }
    case Statement::Kind::kAppend: {
      EXA_ASSIGN_OR_RETURN(logical, AppendPlan(*stmt.inner->append));
      break;
    }
    case Statement::Kind::kDelete: {
      EXA_ASSIGN_OR_RETURN(
          logical, translator_.TranslateDeletePlan(stmt.inner->del->target,
                                                   stmt.inner->del->where));
      break;
    }
    default:
      return Status::Invalid(
          "explain supports retrieve, append, and delete statements");
  }

  // Optimize exactly the way plain execution would, with the trace attached.
  obs::RewriteTrace trace(db_, options_.planner.cost_params);
  ExprPtr physical = logical;
  if (options_.optimize) {
    Planner planner(db_, EffectivePlannerOptions());
    planner.set_observer(&trace);
    EXA_ASSIGN_OR_RETURN(physical, planner.Optimize(logical));
  }

  auto report = std::make_shared<obs::ExplainReport>();
  report->optimized = options_.optimize;
  report->trace = trace.steps();
  report->logical =
      obs::AnnotatePlan(db_, logical, options_.planner.cost_params);
  CostModel cost(db_, options_.planner.cost_params);
  if (auto est = cost.Estimate(physical); est.ok()) {
    report->est_total = est->total;
  }

  PlanProfile profile;
  if (stmt.analyze) {
    // Execute under the usual governor with per-node profiling and timing
    // on. EXPLAIN ANALYZE runs the plan but never commits: mutations
    // (append / delete / retrieve into) stage their result and discard it.
    Evaluator ev(db_, methods_);
    Governor governor(options_.limits, options_.cancel);
    ev.set_governor(&governor);
    ev.set_timing_enabled(true);
    ev.set_profile(&profile);
    auto t0 = std::chrono::steady_clock::now();
    auto r = ev.Eval(physical);
    int64_t wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    last_stats_ = ev.stats();
    if (!r.ok()) return r.status();
    report->analyzed = true;
    report->wall_nanos = wall;
    report->peak_bytes = last_stats_.peak_bytes;
    const ValuePtr& result = *r;
    report->result_occurrences = result->is_set()     ? result->TotalCount()
                                 : result->is_array() ? result->ArrayLength()
                                                      : 1;
  }
  report->physical = obs::AnnotatePlan(db_, physical,
                                       options_.planner.cost_params,
                                       stmt.analyze ? &profile : nullptr);
  last_explain_ = report;
  return Value::Str(stmt.json ? report->ToJson()
                              : report->Pretty(/*with_trace=*/stmt.trace));
}

Result<ExprPtr> Session::Translate(const std::string& retrieve_source) {
  EXA_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(retrieve_source));
  if (stmt.kind != Statement::Kind::kRetrieve) {
    return Status::Invalid("Translate expects a retrieve statement");
  }
  return translator_.TranslateRetrieve(*stmt.retrieve, ranges_);
}

Result<ValuePtr> Session::EvalTree(const ExprPtr& tree) {
  Evaluator ev(db_, methods_);
  // One governor per evaluated statement: budgets and the deadline are
  // armed here, cancellation is shared across statements via the session's
  // token. Mutation statements (append / delete / retrieve into) evaluate
  // through this path and only commit via Database::SetNamed on OK, so a
  // tripped budget leaves named objects, schemas, and the OID store as they
  // were and the session remains fully usable.
  Governor governor(options_.limits, options_.cancel);
  ev.set_governor(&governor);
  auto r = ev.Eval(tree);
  last_stats_ = ev.stats();
  return r;
}

}  // namespace excess
