#include "excess/emit.h"

#include <charconv>
#include <cmath>

#include "core/infer.h"

namespace excess {

namespace {

/// True if `e` is a pure access chain over INPUT: TUP_EXTRACT / DEREF /
/// ARR_EXTRACT / SUBARR steps ending in INPUT. Such chains render as dotted
/// paths.
bool IsInputChain(const ExprPtr& e) {
  if (e->kind() == OpKind::kInput) return true;
  switch (e->kind()) {
    case OpKind::kTupExtract:
    case OpKind::kDeref:
    case OpKind::kArrExtract:
    case OpKind::kSubArr:
      return IsInputChain(e->child(0));
    default:
      return false;
  }
}

/// Locates the unique COMP directly wrapping INPUT inside `e` (the
/// F(COMP_P(INPUT)) shape the proof's SET_APPLY translation relies on:
/// null propagation makes a where clause equivalent to an embedded COMP).
/// Returns the COMP node, or null when there is none or more than one.
void CollectInputComps(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind() == OpKind::kComp && e->child(0)->kind() == OpKind::kInput) {
    out->push_back(e);
    return;
  }
  for (const auto& c : e->children()) CollectInputComps(c, out);
}

ExprPtr FindSpineComp(const ExprPtr& e) {
  std::vector<ExprPtr> comps;
  CollectInputComps(e, &comps);
  if (comps.size() != 1) return nullptr;
  return comps.front();
}

/// Replaces node `target` (by identity) with INPUT.
ExprPtr ReplaceNodeWithInput(const ExprPtr& e, const ExprPtr& target) {
  if (e == target) return MakeExpr(OpKind::kInput, {}, nullptr, nullptr,
                                   nullptr, "", {}, "", 0, 0, 0, false, false,
                                   false);
  std::vector<ExprPtr> children;
  bool changed = false;
  for (const auto& c : e->children()) {
    ExprPtr nc = ReplaceNodeWithInput(c, target);
    changed |= (nc != c);
    children.push_back(std::move(nc));
  }
  if (!changed) return e;
  return e->WithChildren(std::move(children));
}

}  // namespace

Result<EmittedProgram> Emitter::Emit(const ExprPtr& tree) {
  program_.clear();
  EXA_ASSIGN_OR_RETURN(std::string name, EmitInto(tree));
  EmittedProgram out;
  out.source_ = program_;
  out.result_ = name;
  return out;
}

Result<std::string> Emitter::EmitLiteral(const ValuePtr& v) {
  EXA_RETURN_NOT_OK(CheckDepth());
  DepthGuard guard(&depth_);
  switch (v->kind()) {
    case ValueKind::kInt:
      return StrCat(v->as_int());
    case ValueKind::kFloat: {
      double d = v->as_float();
      if (!std::isfinite(d)) {
        return Status::Unsupported(
            "no EXCESS literal form for a non-finite float");
      }
      // Shortest representation that parses back to exactly this double.
      // Fixed notation: the lexer has no exponent syntax. Fixed shortest
      // round-trip needs at most ~767 significant digits (denormal tail).
      char buf[1100];
      auto res = std::to_chars(buf, buf + sizeof(buf), d,
                               std::chars_format::fixed);
      if (res.ec != std::errc()) {
        return Status::Internal("float literal formatting failed");
      }
      std::string s(buf, res.ptr);
      if (s.find('.') == std::string::npos) s += ".0";
      return s;
    }
    case ValueKind::kString: {
      std::string out = "\"";
      for (char c : v->as_string()) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
      }
      out += "\"";
      return out;
    }
    case ValueKind::kBool:
      return std::string(v->as_bool() ? "true" : "false");
    case ValueKind::kTuple: {
      std::vector<std::string> parts;
      for (size_t i = 0; i < v->num_fields(); ++i) {
        EXA_ASSIGN_OR_RETURN(std::string fv,
                             EmitLiteral(v->field_values()[i]));
        parts.push_back(StrCat(v->field_names()[i], ": ", fv));
      }
      if (parts.empty()) {
        return Status::Unsupported(
            "the empty tuple has no EXCESS literal form");
      }
      return StrCat("(", Join(parts, ", "), ")");
    }
    case ValueKind::kSet: {
      std::vector<std::string> parts;
      for (const auto& e : v->entries()) {
        EXA_ASSIGN_OR_RETURN(std::string ev, EmitLiteral(e.value));
        for (int64_t k = 0; k < e.count; ++k) parts.push_back(ev);
      }
      return StrCat("{", Join(parts, ", "), "}");
    }
    case ValueKind::kArray: {
      std::vector<std::string> parts;
      for (const auto& e : v->elems()) {
        EXA_ASSIGN_OR_RETURN(std::string ev, EmitLiteral(e));
        parts.push_back(ev);
      }
      return StrCat("[", Join(parts, ", "), "]");
    }
    case ValueKind::kDate:
    case ValueKind::kRef:
    case ValueKind::kDne:
    case ValueKind::kUnk:
      return Status::Unsupported(
          StrCat("no EXCESS literal form for a ", ValueKindToString(v->kind()),
                 " value (OIDs and nulls are not user-denotable)"));
  }
  return Status::Internal("unknown value kind");
}

Result<std::string> Emitter::EmitPredicate(const PredicatePtr& p,
                                           const std::string& input_name) {
  EXA_RETURN_NOT_OK(CheckDepth());
  DepthGuard guard(&depth_);
  switch (p->kind) {
    case Predicate::Kind::kAtom: {
      EXA_ASSIGN_OR_RETURN(std::string l, EmitScalar(p->lhs, input_name));
      EXA_ASSIGN_OR_RETURN(std::string r, EmitScalar(p->rhs, input_name));
      return StrCat(l, " ", CmpOpToString(p->cmp), " ", r);
    }
    case Predicate::Kind::kAnd: {
      EXA_ASSIGN_OR_RETURN(std::string a, EmitPredicate(p->a, input_name));
      EXA_ASSIGN_OR_RETURN(std::string b, EmitPredicate(p->b, input_name));
      return StrCat("(", a, " and ", b, ")");
    }
    case Predicate::Kind::kOr: {
      EXA_ASSIGN_OR_RETURN(std::string a, EmitPredicate(p->a, input_name));
      EXA_ASSIGN_OR_RETURN(std::string b, EmitPredicate(p->b, input_name));
      return StrCat("(", a, " or ", b, ")");
    }
    case Predicate::Kind::kNot: {
      EXA_ASSIGN_OR_RETURN(std::string a, EmitPredicate(p->a, input_name));
      return StrCat("not (", a, ")");
    }
    case Predicate::Kind::kTrue:
      return std::string("true");
  }
  return Status::Internal("unknown predicate kind");
}

Result<std::string> Emitter::EmitScalar(const ExprPtr& e,
                                        const std::string& input_name) {
  EXA_RETURN_NOT_OK(CheckDepth());
  DepthGuard guard(&depth_);
  switch (e->kind()) {
    case OpKind::kInput:
      return input_name;
    case OpKind::kConst:
      return EmitLiteral(e->literal());
    case OpKind::kVar:
      return e->name();
    case OpKind::kParam:
      return Status::Unsupported("free method parameter in emitted expression");

    case OpKind::kTupExtract: {
      // Field access auto-derefs: TUP_EXTRACT(f, DEREF(x)) renders as x.f.
      ExprPtr base = e->child(0);
      if (base->kind() == OpKind::kDeref) base = base->child(0);
      EXA_ASSIGN_OR_RETURN(std::string b, EmitScalar(base, input_name));
      return StrCat(b, ".", e->name());
    }
    case OpKind::kDeref: {
      EXA_ASSIGN_OR_RETURN(std::string b, EmitScalar(e->child(0), input_name));
      return StrCat("deref(", b, ")");
    }
    case OpKind::kRef: {
      EXA_ASSIGN_OR_RETURN(std::string b, EmitScalar(e->child(0), input_name));
      return StrCat("mkref(", b, ")");
    }
    case OpKind::kProject: {
      EXA_ASSIGN_OR_RETURN(std::string b, EmitScalar(e->child(0), input_name));
      std::vector<std::string> parts;
      for (const auto& f : e->names()) {
        parts.push_back(StrCat(f, ": ", b, ".", f));
      }
      if (parts.empty()) {
        return Status::Unsupported("empty projection has no literal form");
      }
      return StrCat("(", Join(parts, ", "), ")");
    }
    case OpKind::kTupMake: {
      EXA_ASSIGN_OR_RETURN(std::string b, EmitScalar(e->child(0), input_name));
      std::string fname = e->name().empty() ? "_1" : e->name();
      return StrCat("(", fname, ": ", b, ")");
    }
    case OpKind::kArith: {
      EXA_ASSIGN_OR_RETURN(std::string a, EmitScalar(e->child(0), input_name));
      EXA_ASSIGN_OR_RETURN(std::string b, EmitScalar(e->child(1), input_name));
      return StrCat("(", a, " ", e->name(), " ", b, ")");
    }
    case OpKind::kArrExtract: {
      EXA_ASSIGN_OR_RETURN(std::string b, EmitScalar(e->child(0), input_name));
      if (e->index_is_last()) return StrCat(b, "[last]");
      return StrCat(b, "[", e->index(), "]");
    }
    case OpKind::kSubArr: {
      EXA_ASSIGN_OR_RETURN(std::string b, EmitScalar(e->child(0), input_name));
      std::string lo = e->lo_is_last() ? "last" : StrCat(e->lo());
      std::string hi = e->hi_is_last() ? "last" : StrCat(e->hi());
      return StrCat(b, "[", lo, "..", hi, "]");
    }
    case OpKind::kAgg: {
      EXA_ASSIGN_OR_RETURN(std::string b, EmitScalar(e->child(0), input_name));
      return StrCat(e->name(), "(", b, ")");
    }
    case OpKind::kDupElim: {
      EXA_ASSIGN_OR_RETURN(std::string b, EmitScalar(e->child(0), input_name));
      return StrCat("de(", b, ")");
    }
    case OpKind::kSetCollapse: {
      EXA_ASSIGN_OR_RETURN(std::string b, EmitScalar(e->child(0), input_name));
      return StrCat("collapse(", b, ")");
    }
    case OpKind::kSetMake: {
      EXA_ASSIGN_OR_RETURN(std::string b, EmitScalar(e->child(0), input_name));
      return StrCat("{ ", b, " }");
    }
    case OpKind::kArrMake: {
      EXA_ASSIGN_OR_RETURN(std::string b, EmitScalar(e->child(0), input_name));
      return StrCat("[ ", b, " ]");
    }
    case OpKind::kAddUnion:
    case OpKind::kDiff: {
      EXA_ASSIGN_OR_RETURN(std::string a, EmitScalar(e->child(0), input_name));
      EXA_ASSIGN_OR_RETURN(std::string b, EmitScalar(e->child(1), input_name));
      return StrCat("(", a, e->kind() == OpKind::kAddUnion ? " + " : " - ", b,
                    ")");
    }
    case OpKind::kArrCat:
    case OpKind::kArrCollapse:
    case OpKind::kArrDupElim:
    case OpKind::kArrDiff:
    case OpKind::kArrCross: {
      const char* fn = e->kind() == OpKind::kArrCat ? "arrcat"
                       : e->kind() == OpKind::kArrCollapse ? "arrcollapse"
                       : e->kind() == OpKind::kArrDupElim ? "arrde"
                       : e->kind() == OpKind::kArrDiff ? "arrdiff"
                                                       : "arrcross";
      std::vector<std::string> args;
      for (const auto& c : e->children()) {
        EXA_ASSIGN_OR_RETURN(std::string a, EmitScalar(c, input_name));
        args.push_back(std::move(a));
      }
      return StrCat(fn, "(", Join(args, ", "), ")");
    }
    case OpKind::kMethodCall: {
      EXA_ASSIGN_OR_RETURN(std::string recv,
                           EmitScalar(e->child(0), input_name));
      std::vector<std::string> args;
      for (size_t i = 1; i < e->num_children(); ++i) {
        EXA_ASSIGN_OR_RETURN(std::string a, EmitScalar(e->child(i), input_name));
        args.push_back(std::move(a));
      }
      return StrCat(recv, ".", e->name(), "(", Join(args, ", "), ")");
    }
    case OpKind::kSetApply: {
      // A projection into a multiset renders as a dotted path when the
      // subscript is itself a chain over INPUT: SET_APPLY_{.f}(x.kids) is
      // x.kids.f.
      if (!e->type_filter().empty()) {
        return Status::Unsupported(
            "typed SET_APPLY has no EXCESS surface form");
      }
      const ExprPtr& sub = e->sub();
      if (sub->kind() == OpKind::kTupExtract && IsInputChain(sub)) {
        // Render base then append the field chain (innermost first).
        std::vector<std::string> fields;
        ExprPtr cur = sub;
        while (cur->kind() != OpKind::kInput) {
          if (cur->kind() == OpKind::kTupExtract) {
            fields.push_back(cur->name());
          } else if (cur->kind() != OpKind::kDeref) {
            return Status::Unsupported(
                "SET_APPLY subscript not renderable as a path");
          }
          cur = cur->child(0);
        }
        EXA_ASSIGN_OR_RETURN(std::string b,
                             EmitScalar(e->child(0), input_name));
        std::string out = b;
        for (auto it = fields.rbegin(); it != fields.rend(); ++it) {
          out += StrCat(".", *it);
        }
        return out;
      }
      return Status::Unsupported(
          "general SET_APPLY in expression position (emit as a statement)");
    }
    default:
      return Status::Unsupported(
          StrCat("operator ", OpKindToString(e->kind()),
                 " has no EXCESS expression form"));
  }
}

Result<std::string> Emitter::EmitInto(const ExprPtr& e) {
  EXA_RETURN_NOT_OK(CheckDepth());
  DepthGuard guard(&depth_);
  switch (e->kind()) {
    case OpKind::kVar:
      return e->name();

    case OpKind::kConst: {
      EXA_ASSIGN_OR_RETURN(std::string lit, EmitLiteral(e->literal()));
      std::string t = NewTemp();
      Stmt(StrCat("retrieve (", lit, ") into ", t));
      return t;
    }

    case OpKind::kDiff:
    case OpKind::kAddUnion: {
      EXA_ASSIGN_OR_RETURN(std::string a, EmitInto(e->child(0)));
      EXA_ASSIGN_OR_RETURN(std::string b, EmitInto(e->child(1)));
      std::string t = NewTemp();
      const char* op = e->kind() == OpKind::kDiff ? "-" : "+";
      Stmt(StrCat("retrieve (x) from x in (", a, " ", op, " ", b, ") into ",
                  t));
      return t;
    }

    case OpKind::kCross: {
      EXA_ASSIGN_OR_RETURN(std::string a, EmitInto(e->child(0)));
      EXA_ASSIGN_OR_RETURN(std::string b, EmitInto(e->child(1)));
      std::string t = NewTemp();
      Stmt(StrCat("retrieve (_1: x, _2: y) from x in ", a, ", y in ", b,
                  " into ", t));
      return t;
    }

    case OpKind::kSetMake: {
      EXA_ASSIGN_OR_RETURN(std::string a, EmitInto(e->child(0)));
      std::string t = NewTemp();
      Stmt(StrCat("retrieve ( { ", a, " } ) into ", t));
      return t;
    }

    case OpKind::kDupElim: {
      EXA_ASSIGN_OR_RETURN(std::string a, EmitInto(e->child(0)));
      std::string t = NewTemp();
      Stmt(StrCat("retrieve unique (x) from x in ", a, " into ", t));
      return t;
    }

    case OpKind::kSetCollapse: {
      EXA_ASSIGN_OR_RETURN(std::string a, EmitInto(e->child(0)));
      std::string t = NewTemp();
      Stmt(StrCat("retrieve (y) from x in ", a, ", y in x into ", t));
      return t;
    }

    case OpKind::kSetApply: {
      if (!e->type_filter().empty()) {
        return Status::Unsupported(
            "typed SET_APPLY has no EXCESS surface form");
      }
      EXA_ASSIGN_OR_RETURN(std::string a, EmitInto(e->child(0)));
      std::string t = NewTemp();
      // F(COMP_P(INPUT)) shape: where clause + projection (the proof's
      // translation of selection-bearing subscripts).
      ExprPtr comp = FindSpineComp(e->sub());
      if (comp != nullptr) {
        ExprPtr f = ReplaceNodeWithInput(e->sub(), comp);
        EXA_ASSIGN_OR_RETURN(std::string target, EmitScalar(f, "x"));
        EXA_ASSIGN_OR_RETURN(std::string pred,
                             EmitPredicate(comp->pred(), "x"));
        Stmt(StrCat("retrieve (", target, ") from x in ", a, " where ", pred,
                    " into ", t));
        return t;
      }
      EXA_ASSIGN_OR_RETURN(std::string target, EmitScalar(e->sub(), "x"));
      Stmt(StrCat("retrieve (", target, ") from x in ", a, " into ", t));
      return t;
    }

    case OpKind::kGroup: {
      EXA_ASSIGN_OR_RETURN(std::string a, EmitInto(e->child(0)));
      EXA_ASSIGN_OR_RETURN(std::string key, EmitScalar(e->sub(), "x"));
      std::string t = NewTemp();
      Stmt(StrCat("retrieve (x) from x in ", a, " by ", key, " into ", t));
      return t;
    }

    case OpKind::kComp: {
      EXA_ASSIGN_OR_RETURN(std::string a, EmitInto(e->child(0)));
      EXA_ASSIGN_OR_RETURN(std::string pred, EmitPredicate(e->pred(), a));
      std::string t = NewTemp();
      Stmt(StrCat("retrieve (", a, ") where ", pred, " into ", t));
      return t;
    }

    case OpKind::kTupCat: {
      // Concatenation renders as a named tuple literal listing both sides'
      // fields; requires statically known, non-clashing field names.
      EXA_ASSIGN_OR_RETURN(std::string a, EmitInto(e->child(0)));
      EXA_ASSIGN_OR_RETURN(std::string b, EmitInto(e->child(1)));
      TypeInference infer(db_);
      auto sa = infer.Infer(e->child(0));
      auto sb = infer.Infer(e->child(1));
      if (!sa.ok() || !sb.ok() || !(*sa)->is_tup() || !(*sb)->is_tup()) {
        return Status::Unsupported("TUP_CAT emission needs tuple schemas");
      }
      std::vector<std::string> parts;
      for (const auto& f : (*sa)->fields()) {
        parts.push_back(StrCat(f.name, ": ", a, ".", f.name));
      }
      for (const auto& f : (*sb)->fields()) {
        for (const auto& g : (*sa)->fields()) {
          if (g.name == f.name) {
            return Status::Unsupported(
                "TUP_CAT emission with clashing field names");
          }
        }
        parts.push_back(StrCat(f.name, ": ", b, ".", f.name));
      }
      std::string t = NewTemp();
      Stmt(StrCat("retrieve (", Join(parts, ", "), ") into ", t));
      return t;
    }

    case OpKind::kArrApply: {
      // The proof's translation: define a function on the element type and
      // map it. Requires a named element type.
      EXA_ASSIGN_OR_RETURN(std::string a, EmitInto(e->child(0)));
      TypeInference infer(db_);
      auto arr_schema = infer.Infer(e->child(0));
      if (!arr_schema.ok() || !(*arr_schema)->is_arr()) {
        return Status::Unsupported("ARR_APPLY over unknown element type");
      }
      SchemaPtr elem = (*arr_schema)->elem();
      std::string tname =
          elem->is_ref() ? elem->ref_target() : elem->type_name();
      if (tname.empty() || !db_->catalog().HasType(tname)) {
        return Status::Unsupported(
            "ARR_APPLY emission needs a named element type");
      }
      ExprPtr body = e->sub();
      if (elem->is_ref()) {
        // The defined function receives the dereferenced object; strip a
        // leading DEREF(INPUT) pattern by substituting.
        body = ReplaceNodeWithInput(body, nullptr);  // no-op; kept simple
      }
      EXA_ASSIGN_OR_RETURN(std::string target, EmitScalar(body, "this"));
      std::string fn = NewFunc();
      Stmt(StrCat("define ", tname, " function ", fn,
                  " () returns any { retrieve (", target, ") }"));
      std::string t = NewTemp();
      Stmt(StrCat("retrieve ( arrapply(", a, ", ", fn, ") ) into ", t));
      return t;
    }

    default: {
      // Everything else has an expression-level rendering; wrap it in a
      // zero-variable retrieve.
      EXA_ASSIGN_OR_RETURN(std::string expr, EmitScalar(e, "this"));
      std::string t = NewTemp();
      Stmt(StrCat("retrieve (", expr, ") into ", t));
      return t;
    }
  }
}

}  // namespace excess
