#include "excess/translate.h"

#include <algorithm>
#include <set>

#include "core/analysis.h"
#include "core/builder.h"
#include "util/string_util.h"

namespace excess {

namespace {

bool IsAnySchema(const SchemaPtr& s) {
  return s->is_val() && s->scalar_kind() == ScalarKind::kAny;
}

SchemaPtr ElemOf(const SchemaPtr& s) {
  if (IsAnySchema(s)) return AnySchema();
  return s->elem();
}

/// Display-name derivation for unnamed targets / keys: the last path
/// component, the bare variable name, or "".
std::string DeriveName(const ExprAstPtr& e) {
  switch (e->kind) {
    case ExprAst::Kind::kField:
      return e->text;
    case ExprAst::Kind::kName:
      return e->text;
    case ExprAst::Kind::kIndex:
    case ExprAst::Kind::kSlice:
      return DeriveName(e->base);
    case ExprAst::Kind::kCall:
    case ExprAst::Kind::kAgg:
      return e->text;
    default:
      return "";
  }
}

}  // namespace

// -----------------------------------------------------------------------------
// DDL: surface types to schemas.
// -----------------------------------------------------------------------------

Result<SchemaPtr> Translator::BuildSchema(const TypeAstPtr& type) const {
  EXA_RETURN_NOT_OK(CheckDepth());
  DepthGuard guard(&depth_);
  switch (type->kind) {
    case TypeAst::Kind::kNamed: {
      const std::string& n = type->name;
      if (n == "int4" || n == "int2" || n == "int8" || n == "int") {
        return IntSchema();
      }
      if (n == "float4" || n == "float8" || n == "float") return FloatSchema();
      if (n == "char" || n == "varchar" || n == "string" || n == "text") {
        return StringSchema();
      }
      if (n == "bool" || n == "boolean") return BoolSchema();
      if (n == "date" || n == "Date") return DateSchema();
      if (n == "any") return AnySchema();  // dynamic; used by the emitter
      // A user type by value: inline its effective schema (tagged).
      if (db_->catalog().HasType(n)) return db_->catalog().EffectiveSchema(n);
      return Status::NotFound(StrCat("unknown type '", n, "'"));
    }
    case TypeAst::Kind::kTuple: {
      std::vector<Field> fields;
      for (const auto& [fname, ftype] : type->fields) {
        EXA_ASSIGN_OR_RETURN(SchemaPtr fs, BuildSchema(ftype));
        fields.push_back({fname, std::move(fs)});
      }
      return Schema::Tup(std::move(fields));
    }
    case TypeAst::Kind::kSet: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr elem, BuildSchema(type->elem));
      return Schema::Set(std::move(elem));
    }
    case TypeAst::Kind::kArray: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr elem, BuildSchema(type->elem));
      if (type->array_size.has_value()) {
        return Schema::FixedArr(std::move(elem), *type->array_size);
      }
      return Schema::Arr(std::move(elem));
    }
    case TypeAst::Kind::kRef:
      // Forward references are legal (Figure 1); Catalog::Validate checks.
      return Schema::Ref(type->name);
  }
  return Status::Internal("unknown surface type kind");
}

// ---------------------------------------------------------------------------
// Name collection.
// ---------------------------------------------------------------------------

void Translator::CollectNameUses(const ExprAstPtr& e,
                                 std::vector<std::string>* names,
                                 std::vector<std::string> bound) {
  if (e == nullptr) return;
  if (e->kind == ExprAst::Kind::kName) {
    for (const auto& b : bound) {
      if (b == e->text) return;
    }
    names->push_back(e->text);
    return;
  }
  if (e->kind == ExprAst::Kind::kAgg) {
    // Each `from` collection sees the variables declared before it; the
    // operand and `where` see all of them.
    std::vector<std::string> inner = bound;
    for (const auto& [v, c] : e->agg_from) {
      CollectNameUses(c, names, inner);
      inner.push_back(v);
    }
    CollectNameUses(e->base, names, inner);
    CollectNameUses(e->agg_where, names, inner);
    return;
  }
  CollectNameUses(e->base, names, bound);
  CollectNameUses(e->rhs, names, bound);
  CollectNameUses(e->rhs2, names, bound);
  for (const auto& a : e->args) CollectNameUses(a, names, bound);
  for (const auto& [n, a] : e->named_args) CollectNameUses(a, names, bound);
}

void Translator::CollectPathRoots(const ExprAstPtr& e,
                                  std::vector<std::string>* roots) {
  if (e == nullptr) return;
  if (e->kind == ExprAst::Kind::kAgg) return;  // aggregates scope themselves
  if (e->kind == ExprAst::Kind::kField || e->kind == ExprAst::Kind::kIndex ||
      e->kind == ExprAst::Kind::kSlice ||
      (e->kind == ExprAst::Kind::kCall && e->base != nullptr)) {
    // Walk to the root of the chain.
    ExprAstPtr root = e->base;
    while (root != nullptr &&
           (root->kind == ExprAst::Kind::kField ||
            root->kind == ExprAst::Kind::kIndex ||
            root->kind == ExprAst::Kind::kSlice ||
            (root->kind == ExprAst::Kind::kCall && root->base != nullptr))) {
      root = root->base;
    }
    if (root != nullptr && root->kind == ExprAst::Kind::kName) {
      roots->push_back(root->text);
    }
  }
  CollectPathRoots(e->base, roots);
  CollectPathRoots(e->rhs, roots);
  CollectPathRoots(e->rhs2, roots);
  for (const auto& a : e->args) CollectPathRoots(a, roots);
  for (const auto& [n, a] : e->named_args) CollectPathRoots(a, roots);
  for (const auto& [v, c] : e->agg_from) CollectPathRoots(c, roots);
  CollectPathRoots(e->agg_where, roots);
}

// --------------------------------------------------------------------------
// Expression translation.
// ---------------------------------------------------------------------------

Result<Translator::Typed> Translator::AutoDeref(Typed t) const {
  if (!t.schema->is_ref()) return t;
  const std::string& target = t.schema->ref_target();
  SchemaPtr resolved = AnySchema();
  if (db_->catalog().HasType(target)) {
    EXA_ASSIGN_OR_RETURN(resolved, db_->catalog().EffectiveSchema(target));
  }
  return Typed{alg::Deref(std::move(t.expr)), std::move(resolved)};
}

Result<Translator::Typed> Translator::TranslateField(
    const Typed& base_in, const std::string& field, const Scope& scope) const {
  EXA_ASSIGN_OR_RETURN(Typed base, AutoDeref(base_in));
  if (base.schema->is_set()) {
    // Projection into a multiset: E.kids.name maps over the members.
    SchemaPtr elem = ElemOf(base.schema);
    Typed elem_t{alg::Input(), elem};
    EXA_ASSIGN_OR_RETURN(Typed mapped, TranslateField(elem_t, field, scope));
    return Typed{alg::SetApply(mapped.expr, base.expr),
                 Schema::Set(mapped.schema)};
  }
  if (base.schema->is_tup()) {
    auto ft = base.schema->FieldType(field);
    if (ft.ok()) {
      return Typed{alg::TupExtract(field, base.expr), *ft};
    }
    // A zero-argument method acts as a virtual field (e.g. `age`).
    const std::string& tname = base.schema->type_name();
    if (methods_ != nullptr && !tname.empty()) {
      auto def = methods_->Dispatch(tname, field);
      if (def.ok()) {
        SchemaPtr out =
            (*def)->return_schema ? (*def)->return_schema : AnySchema();
        return Typed{alg::MethodCall(field, base.expr), std::move(out)};
      }
    }
    return ft.status();
  }
  if (IsAnySchema(base.schema)) {
    return Typed{alg::TupExtract(field, base.expr), AnySchema()};
  }
  return Status::TypeError(StrCat("field access '.", field,
                                  "' on non-tuple schema ",
                                  base.schema->ToString()));
}

Result<Translator::Typed> Translator::TranslateAgg(const ExprAstPtr& e,
                                                   const Scope& scope) const {
  auto result_schema = [&](const SchemaPtr& elem) -> SchemaPtr {
    if (e->text == "count") return IntSchema();
    if (e->text == "avg") return FloatSchema();
    if (e->text == "sum") {
      if (elem->is_val() && elem->scalar_kind() == ScalarKind::kInt) {
        return IntSchema();
      }
      if (elem->is_val() && elem->scalar_kind() == ScalarKind::kFloat) {
        return FloatSchema();
      }
      return AnySchema();
    }
    return elem;  // min/max
  };

  if (e->agg_from.empty() && e->agg_where == nullptr) {
    // Direct aggregate over a set-valued expression: min(E.kids.age).
    EXA_ASSIGN_OR_RETURN(Typed coll, TranslateExpr(e->base, scope));
    if (!coll.schema->is_set() && !IsAnySchema(coll.schema)) {
      return Status::TypeError(
          StrCat("aggregate '", e->text, "' over non-multiset ",
                 coll.schema->ToString()));
    }
    return Typed{alg::Agg(e->text, coll.expr),
                 result_schema(ElemOf(coll.schema))};
  }

  // Correlated sub-iteration: start the inner environment pipeline from
  // the *current* environment tuple so outer variables stay visible.
  Scope inner = scope;
  ExprPtr envs;
  if (scope.has_env) {
    envs = alg::SetMake(alg::Input());
  }
  for (const auto& [v, coll] : e->agg_from) {
    EXA_ASSIGN_OR_RETURN(envs, BindVar(&inner, std::move(envs), v, coll));
  }
  if (envs == nullptr) {
    return Status::Invalid("aggregate 'where' without iteration");
  }
  if (e->agg_where != nullptr) {
    EXA_ASSIGN_OR_RETURN(PredicatePtr pred,
                         TranslateBool(e->agg_where, inner));
    envs = alg::SetApply(alg::Comp(std::move(pred), alg::Input()),
                         std::move(envs));
  }
  EXA_ASSIGN_OR_RETURN(Typed mapped, TranslateExpr(e->base, inner));
  ExprPtr coll = alg::SetApply(mapped.expr, std::move(envs));
  SchemaPtr elem = mapped.schema;
  if (mapped.schema->is_set()) {
    // Set-valued per-environment results (e.g. E.kids.age) flatten.
    coll = alg::SetCollapse(std::move(coll));
    elem = ElemOf(mapped.schema);
  }
  return Typed{alg::Agg(e->text, std::move(coll)), result_schema(elem)};
}

Result<Translator::Typed> Translator::TranslateCall(const ExprAstPtr& e,
                                                    const Scope& scope) const {
  // Method invocation through a receiver.
  if (e->base != nullptr) {
    EXA_ASSIGN_OR_RETURN(Typed recv, TranslateExpr(e->base, scope));
    if (methods_ == nullptr) {
      return Status::Unsupported(
          StrCat("method call '.", e->text, "(...)' without a method registry"));
    }
    std::vector<ExprPtr> args;
    for (const auto& a : e->args) {
      EXA_ASSIGN_OR_RETURN(Typed t, TranslateExpr(a, scope));
      args.push_back(std::move(t.expr));
    }
    // Best-effort static check + return schema through the declared type.
    std::string tname = recv.schema->is_ref() ? recv.schema->ref_target()
                                              : recv.schema->type_name();
    SchemaPtr out = AnySchema();
    if (!tname.empty()) {
      auto def = methods_->Dispatch(tname, e->text);
      if (!def.ok()) return def.status();
      if ((*def)->param_names.size() != args.size()) {
        return Status::TypeError(
            StrCat("method '", e->text, "' expects ",
                   (*def)->param_names.size(), " arguments, got ",
                   args.size()));
      }
      if ((*def)->return_schema != nullptr) out = (*def)->return_schema;
    }
    return Typed{alg::MethodCall(e->text, recv.expr, std::move(args)),
                 std::move(out)};
  }

  // Registered builtins (the paper's ADT-function extensibility story).
  auto expect_args = [&](size_t n) -> Status {
    if (e->args.size() != n) {
      return Status::Invalid(StrCat("builtin '", e->text, "' expects ", n,
                                    " argument(s), got ", e->args.size()));
    }
    return Status::OK();
  };
  auto arg = [&](size_t i) { return TranslateExpr(e->args[i], scope); };

  if (e->text == "deref") {
    EXA_RETURN_NOT_OK(expect_args(1));
    EXA_ASSIGN_OR_RETURN(Typed t, arg(0));
    if (!t.schema->is_ref() && !IsAnySchema(t.schema)) {
      return Status::TypeError("deref() of a non-reference");
    }
    return AutoDeref(std::move(t));
  }
  if (e->text == "mkref") {
    EXA_RETURN_NOT_OK(expect_args(1));
    EXA_ASSIGN_OR_RETURN(Typed t, arg(0));
    std::string target = t.schema->type_name();
    return Typed{alg::RefOp(t.expr, target),
                 Schema::Ref(target.empty() ? "$anon" : target)};
  }
  if (e->text == "de") {
    EXA_RETURN_NOT_OK(expect_args(1));
    EXA_ASSIGN_OR_RETURN(Typed t, arg(0));
    return Typed{alg::DupElim(t.expr), t.schema};
  }
  if (e->text == "collapse") {
    EXA_RETURN_NOT_OK(expect_args(1));
    EXA_ASSIGN_OR_RETURN(Typed t, arg(0));
    return Typed{alg::SetCollapse(t.expr),
                 t.schema->is_set() ? ElemOf(t.schema) : AnySchema()};
  }
  if (e->text == "arrcat") {
    EXA_RETURN_NOT_OK(expect_args(2));
    EXA_ASSIGN_OR_RETURN(Typed a, arg(0));
    EXA_ASSIGN_OR_RETURN(Typed b, arg(1));
    return Typed{alg::ArrCat(a.expr, b.expr), a.schema};
  }
  if (e->text == "arrcollapse") {
    EXA_RETURN_NOT_OK(expect_args(1));
    EXA_ASSIGN_OR_RETURN(Typed t, arg(0));
    return Typed{alg::ArrCollapse(t.expr),
                 t.schema->is_arr() ? ElemOf(t.schema) : AnySchema()};
  }
  if (e->text == "arrde") {
    EXA_RETURN_NOT_OK(expect_args(1));
    EXA_ASSIGN_OR_RETURN(Typed t, arg(0));
    return Typed{alg::ArrDupElim(t.expr), t.schema};
  }
  if (e->text == "arrdiff") {
    EXA_RETURN_NOT_OK(expect_args(2));
    EXA_ASSIGN_OR_RETURN(Typed a, arg(0));
    EXA_ASSIGN_OR_RETURN(Typed b, arg(1));
    return Typed{alg::ArrDiff(a.expr, b.expr), a.schema};
  }
  if (e->text == "arrcross") {
    EXA_RETURN_NOT_OK(expect_args(2));
    EXA_ASSIGN_OR_RETURN(Typed a, arg(0));
    EXA_ASSIGN_OR_RETURN(Typed b, arg(1));
    return Typed{alg::ArrCross(a.expr, b.expr),
                 Schema::Arr(Schema::Tup({{"_1", ElemOf(a.schema)},
                                          {"_2", ElemOf(b.schema)}}))};
  }
  if (e->text == "arrapply") {
    // arrapply(A, f): maps a registered unary function over the array.
    EXA_RETURN_NOT_OK(expect_args(2));
    EXA_ASSIGN_OR_RETURN(Typed a, arg(0));
    if (e->args[1]->kind != ExprAst::Kind::kName) {
      return Status::Invalid("arrapply() needs a function name");
    }
    if (methods_ == nullptr) {
      return Status::Unsupported("arrapply() without a method registry");
    }
    SchemaPtr elem = ElemOf(a.schema);
    std::string tname =
        elem->is_ref() ? elem->ref_target() : elem->type_name();
    EXA_ASSIGN_OR_RETURN(const MethodDef* def,
                         methods_->Dispatch(tname, e->args[1]->text));
    ExprPtr body = def->body;
    if (elem->is_ref()) {
      body = analysis::SubstituteInput(body, alg::Deref(alg::Input()));
    }
    return Typed{alg::ArrApply(std::move(body), a.expr),
                 Schema::Arr(def->return_schema ? def->return_schema
                                                : AnySchema())};
  }
  return Status::NotFound(StrCat("unknown function '", e->text, "'"));
}

Result<Translator::Typed> Translator::TranslateExpr(const ExprAstPtr& e,
                                                    const Scope& scope) const {
  EXA_RETURN_NOT_OK(CheckDepth());
  DepthGuard guard(&depth_);
  switch (e->kind) {
    case ExprAst::Kind::kIntLit:
      return Typed{alg::IntLit(e->int_value), IntSchema()};
    case ExprAst::Kind::kFloatLit:
      return Typed{alg::FloatLit(e->float_value), FloatSchema()};
    case ExprAst::Kind::kStrLit:
      return Typed{alg::StrLit(e->text), StringSchema()};
    case ExprAst::Kind::kBoolLit:
      return Typed{alg::BoolLit(e->bool_value), BoolSchema()};

    case ExprAst::Kind::kName: {
      if (scope.this_is_raw && e->text == "this") {
        return Typed{alg::Input(), scope.raw_this_schema};
      }
      if (const Binding* b = scope.Lookup(e->text); b != nullptr) {
        return Typed{alg::TupExtract(b->field, alg::Input()), b->schema};
      }
      int pi = scope.ParamIndex(e->text);
      if (pi >= 0) return Typed{alg::Param(pi), AnySchema()};
      if (db_->HasNamed(e->text)) {
        EXA_ASSIGN_OR_RETURN(SchemaPtr s, db_->NamedSchema(e->text));
        return Typed{alg::Var(e->text), std::move(s)};
      }
      return Status::NotFound(StrCat("unknown name '", e->text, "'"));
    }

    case ExprAst::Kind::kField: {
      EXA_ASSIGN_OR_RETURN(Typed base, TranslateExpr(e->base, scope));
      return TranslateField(base, e->text, scope);
    }

    case ExprAst::Kind::kIndex: {
      EXA_ASSIGN_OR_RETURN(Typed base0, TranslateExpr(e->base, scope));
      EXA_ASSIGN_OR_RETURN(Typed base, AutoDeref(std::move(base0)));
      if (!base.schema->is_arr() && !IsAnySchema(base.schema)) {
        return Status::TypeError(StrCat("indexing into non-array schema ",
                                        base.schema->ToString()));
      }
      if (e->index_is_last) {
        return Typed{alg::ArrExtractLast(base.expr), ElemOf(base.schema)};
      }
      if (e->rhs->kind != ExprAst::Kind::kIntLit) {
        return Status::Unsupported(
            "array subscripts must be integer literals or `last` (the "
            "ARR_EXTRACT operator is parameterized by a constant index)");
      }
      return Typed{alg::ArrExtract(e->rhs->int_value, base.expr),
                   ElemOf(base.schema)};
    }

    case ExprAst::Kind::kSlice: {
      EXA_ASSIGN_OR_RETURN(Typed base0, TranslateExpr(e->base, scope));
      EXA_ASSIGN_OR_RETURN(Typed base, AutoDeref(std::move(base0)));
      if (!base.schema->is_arr() && !IsAnySchema(base.schema)) {
        return Status::TypeError("slicing a non-array");
      }
      int64_t lo = 0;
      int64_t hi = 0;
      if (!e->lo_is_last) {
        if (e->rhs->kind != ExprAst::Kind::kIntLit) {
          return Status::Unsupported("slice bounds must be literals or `last`");
        }
        lo = e->rhs->int_value;
      }
      if (!e->hi_is_last) {
        if (e->rhs2->kind != ExprAst::Kind::kIntLit) {
          return Status::Unsupported("slice bounds must be literals or `last`");
        }
        hi = e->rhs2->int_value;
      }
      SchemaPtr out = IsAnySchema(base.schema)
                          ? Schema::Arr(AnySchema())
                          : Schema::Arr(base.schema->elem());
      return Typed{alg::SubArr(lo, hi, base.expr, e->lo_is_last,
                               e->hi_is_last),
                   std::move(out)};
    }

    case ExprAst::Kind::kCall:
      return TranslateCall(e, scope);
    case ExprAst::Kind::kAgg:
      return TranslateAgg(e, scope);

    case ExprAst::Kind::kBinary: {
      EXA_ASSIGN_OR_RETURN(Typed a, TranslateExpr(e->base, scope));
      EXA_ASSIGN_OR_RETURN(Typed b, TranslateExpr(e->rhs, scope));
      bool sets = a.schema->is_set() || b.schema->is_set();
      if (e->text == "union") {
        return Typed{alg::Union(a.expr, b.expr), a.schema};
      }
      if (e->text == "intersect") {
        return Typed{alg::Intersect(a.expr, b.expr), a.schema};
      }
      if (sets && e->text == "-") {
        return Typed{alg::Diff(a.expr, b.expr), a.schema};
      }
      if (sets && e->text == "+") {
        return Typed{alg::AddUnion(a.expr, b.expr), a.schema};
      }
      SchemaPtr out =
          (a.schema->is_val() && a.schema->scalar_kind() == ScalarKind::kInt &&
           b.schema->is_val() && b.schema->scalar_kind() == ScalarKind::kInt)
              ? IntSchema()
              : (a.schema->is_val() &&
                         a.schema->scalar_kind() == ScalarKind::kString
                     ? StringSchema()
                     : FloatSchema());
      if (IsAnySchema(a.schema) || IsAnySchema(b.schema)) out = AnySchema();
      return Typed{alg::Arith(e->text, a.expr, b.expr), std::move(out)};
    }

    case ExprAst::Kind::kSetLit: {
      if (e->args.empty()) {
        return Typed{alg::Const(Value::EmptySet()), Schema::Set(AnySchema())};
      }
      ExprPtr acc;
      SchemaPtr elem;
      for (const auto& el : e->args) {
        EXA_ASSIGN_OR_RETURN(Typed t, TranslateExpr(el, scope));
        if (elem == nullptr) elem = t.schema;
        ExprPtr single = alg::SetMake(t.expr);
        acc = acc == nullptr ? std::move(single)
                             : alg::AddUnion(std::move(acc), std::move(single));
      }
      return Typed{std::move(acc), Schema::Set(std::move(elem))};
    }

    case ExprAst::Kind::kArrLit: {
      if (e->args.empty()) {
        return Typed{alg::Const(Value::EmptyArray()),
                     Schema::Arr(AnySchema())};
      }
      ExprPtr acc;
      SchemaPtr elem;
      for (const auto& el : e->args) {
        EXA_ASSIGN_OR_RETURN(Typed t, TranslateExpr(el, scope));
        if (elem == nullptr) elem = t.schema;
        ExprPtr single = alg::ArrMake(t.expr);
        acc = acc == nullptr ? std::move(single)
                             : alg::ArrCat(std::move(acc), std::move(single));
      }
      return Typed{std::move(acc), Schema::Arr(std::move(elem))};
    }

    case ExprAst::Kind::kTupLit: {
      ExprPtr acc;
      std::vector<Field> fields;
      size_t k = 0;
      for (const auto& [name, el] : e->named_args) {
        ++k;
        std::string fname = name.empty() ? StrCat("_", k) : name;
        EXA_ASSIGN_OR_RETURN(Typed t, TranslateExpr(el, scope));
        ExprPtr one = alg::TupMakeNamed(fname, t.expr);
        fields.push_back({fname, t.schema});
        acc = acc == nullptr ? std::move(one)
                             : alg::TupCat(std::move(acc), std::move(one));
      }
      if (acc == nullptr) {
        return Typed{alg::Const(Value::Tuple({}, {})), Schema::Tup({})};
      }
      return Typed{std::move(acc), Schema::Tup(std::move(fields))};
    }

    case ExprAst::Kind::kCompare:
    case ExprAst::Kind::kAnd:
    case ExprAst::Kind::kOr:
    case ExprAst::Kind::kNot:
      return Status::Unsupported(
          "boolean expressions are only allowed in where clauses");
  }
  return Status::Internal("unknown expression kind");
}

Result<PredicatePtr> Translator::TranslateBool(const ExprAstPtr& e,
                                               const Scope& scope) const {
  EXA_RETURN_NOT_OK(CheckDepth());
  DepthGuard guard(&depth_);
  switch (e->kind) {
    case ExprAst::Kind::kCompare: {
      EXA_ASSIGN_OR_RETURN(Typed a, TranslateExpr(e->base, scope));
      EXA_ASSIGN_OR_RETURN(Typed b, TranslateExpr(e->rhs, scope));
      CmpOp op;
      if (e->text == "=") op = CmpOp::kEq;
      else if (e->text == "!=") op = CmpOp::kNe;
      else if (e->text == "<") op = CmpOp::kLt;
      else if (e->text == "<=") op = CmpOp::kLe;
      else if (e->text == ">") op = CmpOp::kGt;
      else if (e->text == ">=") op = CmpOp::kGe;
      else if (e->text == "in") op = CmpOp::kIn;
      else return Status::Internal("unknown comparator spelling");
      return Predicate::Atom(a.expr, op, b.expr);
    }
    case ExprAst::Kind::kAnd: {
      EXA_ASSIGN_OR_RETURN(PredicatePtr a, TranslateBool(e->base, scope));
      EXA_ASSIGN_OR_RETURN(PredicatePtr b, TranslateBool(e->rhs, scope));
      return Predicate::And(std::move(a), std::move(b));
    }
    case ExprAst::Kind::kOr: {
      EXA_ASSIGN_OR_RETURN(PredicatePtr a, TranslateBool(e->base, scope));
      EXA_ASSIGN_OR_RETURN(PredicatePtr b, TranslateBool(e->rhs, scope));
      return Predicate::Or(std::move(a), std::move(b));
    }
    case ExprAst::Kind::kNot: {
      EXA_ASSIGN_OR_RETURN(PredicatePtr a, TranslateBool(e->base, scope));
      return Predicate::Not(std::move(a));
    }
    case ExprAst::Kind::kBoolLit:
      return e->bool_value
                 ? Predicate::True()
                 : Predicate::Not(Predicate::True());
    default:
      return Status::TypeError(
          "where clause must be a boolean combination of comparisons");
  }
}

// -----------------------------------------------------------------------------
// Environment pipeline.
// ----------------------------------------------------------------------------

Result<ExprPtr> Translator::BindVar(Scope* scope, ExprPtr envs,
                                    const std::string& var,
                                    const ExprAstPtr& coll_ast) const {
  // Shadowing (aggregate-scoped variables reusing an outer name) gets a
  // fresh field name in the environment tuple; lookups resolve innermost.
  std::string field = var;
  int shadow = 2;
  auto field_taken = [&](const std::string& f) {
    for (const auto& b : scope->env) {
      if (b.field == f) return true;
    }
    return false;
  };
  while (field_taken(field)) field = StrCat(var, "$", shadow++);

  EXA_ASSIGN_OR_RETURN(Typed coll, TranslateExpr(coll_ast, *scope));
  if (!coll.schema->is_set() && !IsAnySchema(coll.schema)) {
    return Status::TypeError(StrCat("'", var, "' must range over a multiset; ",
                                    coll_ast->text, " has schema ",
                                    coll.schema->ToString()));
  }
  SchemaPtr elem = ElemOf(coll.schema);
  ExprPtr out;
  if (envs == nullptr) {
    // First variable with no prior environment: envs = {(v: x) | x ∈ coll}.
    out = alg::SetApply(alg::TupMakeNamed(field, alg::Input()), coll.expr);
  } else {
    // For each environment tuple env: pair it with every element of
    // coll(env) via × and extend the tuple — then flatten the per-env sets.
    ExprPtr extend = alg::SetApply(
        alg::TupCat(alg::TupExtract("_1", alg::Input()),
                    alg::TupMakeNamed(field,
                                      alg::TupExtract("_2", alg::Input()))),
        alg::Cross(alg::SetMake(alg::Input()), coll.expr));
    out = alg::SetCollapse(alg::SetApply(std::move(extend), std::move(envs)));
  }
  scope->env.push_back({var, std::move(field), std::move(elem)});
  scope->has_env = true;
  return out;
}

Result<ExprPtr> Translator::TranslateRetrieve(
    const RetrieveStmt& stmt,
    const std::vector<std::pair<std::string, ExprAstPtr>>& ranges) const {
  Scope scope;
  return TranslateCore(stmt, ranges, std::move(scope), nullptr);
}

Result<ExprPtr> Translator::TranslateMethodBody(
    const RetrieveStmt& stmt, const std::vector<std::string>& params,
    const SchemaPtr& this_schema) const {
  // Plain bodies (no iteration, filter, or grouping) evaluate their single
  // target directly over the receiver — `age` is just an expression of
  // `this`. Bodies that iterate (`from K in this.kids ...`) go through the
  // full environment pipeline and return the multiset the retrieve
  // denotes.
  if (stmt.from.empty() && stmt.where == nullptr && stmt.by.empty() &&
      stmt.targets.size() == 1 && stmt.targets[0].first.empty() &&
      !stmt.unique) {
    Scope scope;
    scope.params = params;
    scope.this_is_raw = true;
    scope.raw_this_schema = this_schema;
    EXA_ASSIGN_OR_RETURN(Typed t,
                         TranslateExpr(stmt.targets[0].second, scope));
    return t.expr;
  }
  Scope scope;
  scope.params = params;
  scope.env.push_back({"this", "this", this_schema});
  scope.has_env = true;
  ExprPtr initial = alg::SetMake(alg::TupMakeNamed("this", alg::Input()));
  EXA_ASSIGN_OR_RETURN(ExprPtr tree,
                       TranslateCore(stmt, {}, std::move(scope),
                                     std::move(initial)));
  return tree;
}

Result<ExprPtr> Translator::TranslateClosedExpr(const ExprAstPtr& e) const {
  Scope scope;
  EXA_ASSIGN_OR_RETURN(Typed t, TranslateExpr(e, scope));
  return t.expr;
}

Result<ExprPtr> Translator::TranslateDeletePlan(const std::string& target,
                                                const ExprAstPtr& pred) const {
  EXA_ASSIGN_OR_RETURN(SchemaPtr set_schema, db_->NamedSchema(target));
  if (!set_schema->is_set()) {
    return Status::TypeError(
        StrCat("delete requires a multiset object; '", target, "' is ",
               set_schema->ToString()));
  }
  Scope scope;
  scope.env.push_back({target, target, set_schema->elem()});
  scope.has_env = true;
  EXA_ASSIGN_OR_RETURN(PredicatePtr p, TranslateBool(pred, scope));
  // matching = { x | x ∈ target, pred(x) }; result = target − matching.
  // Subtracting (rather than keeping ¬pred) retains unknown-predicate
  // occurrences unchanged.
  ExprPtr envs = alg::SetApply(alg::TupMakeNamed(target, alg::Input()),
                               alg::Var(target));
  ExprPtr matching = alg::SetApply(
      alg::TupExtract(target, alg::Input()),
      alg::SetApply(alg::Comp(std::move(p), alg::Input()), std::move(envs)));
  return alg::Diff(alg::Var(target), std::move(matching));
}

Result<ExprPtr> Translator::TranslateCore(
    const RetrieveStmt& stmt,
    const std::vector<std::pair<std::string, ExprAstPtr>>& ranges, Scope scope,
    ExprPtr initial_env) const {
  // ---- 1. Which names does the query mention, and with paths? ------------
  std::vector<std::string> used_names;
  std::vector<std::string> path_roots;
  auto collect = [&](const ExprAstPtr& e) {
    CollectNameUses(e, &used_names);
    CollectPathRoots(e, &path_roots);
  };
  for (const auto& [n, t] : stmt.targets) collect(t);
  for (const auto& k : stmt.by) collect(k);
  collect(stmt.where);
  for (const auto& fc : stmt.from) collect(fc.collection);

  auto is_used = [&](const std::string& n) {
    return std::find(used_names.begin(), used_names.end(), n) !=
           used_names.end();
  };
  std::set<std::string> explicit_vars;
  for (const auto& fc : stmt.from) explicit_vars.insert(fc.var);
  for (const auto& b : scope.env) explicit_vars.insert(b.var);

  // ---- 2. Iteration sources in dependency order. --------------------------
  std::vector<std::pair<std::string, ExprAstPtr>> iters;
  for (const auto& [v, coll] : ranges) {
    if (is_used(v) && explicit_vars.count(v) == 0) iters.emplace_back(v, coll);
  }
  for (const auto& fc : stmt.from) iters.emplace_back(fc.var, fc.collection);
  // Implicit ranges: a named multiset accessed through a path iterates.
  for (const auto& root : path_roots) {
    bool already = explicit_vars.count(root) > 0 ||
                   std::any_of(iters.begin(), iters.end(),
                               [&](const auto& p) { return p.first == root; });
    if (already || scope.ParamIndex(root) >= 0) continue;
    if (!db_->HasNamed(root)) continue;
    auto s = db_->NamedSchema(root);
    if (!s.ok() || !(*s)->is_set()) continue;
    auto name_ast = std::make_shared<ExprAst>();
    name_ast->kind = ExprAst::Kind::kName;
    name_ast->text = root;
    iters.emplace_back(root, std::move(name_ast));
  }

  // ---- 3. Build the environment pipeline. ---------------------------------
  ExprPtr envs = std::move(initial_env);
  for (const auto& [v, coll] : iters) {
    EXA_ASSIGN_OR_RETURN(envs, BindVar(&scope, std::move(envs), v, coll));
  }

  // ---- 4. where -> COMP. ----------------------------------------------------
  PredicatePtr pred;
  if (stmt.where != nullptr) {
    EXA_ASSIGN_OR_RETURN(pred, TranslateBool(stmt.where, scope));
  }
  if (envs != nullptr && pred != nullptr) {
    envs = alg::SetApply(alg::Comp(pred, alg::Input()), std::move(envs));
    pred = nullptr;
  }

  // ---- 5. Target tuple over one environment. ------------------------------
  if (stmt.targets.empty()) {
    return Status::Invalid("retrieve needs at least one target");
  }
  ExprPtr target;
  SchemaPtr target_schema;
  if (stmt.targets.size() == 1 && stmt.targets[0].first.empty()) {
    EXA_ASSIGN_OR_RETURN(Typed t, TranslateExpr(stmt.targets[0].second, scope));
    target = std::move(t.expr);
    target_schema = std::move(t.schema);
  } else {
    std::set<std::string> seen;
    for (const auto& [name, texpr] : stmt.targets) {
      std::string fname = name.empty() ? DeriveName(texpr) : name;
      if (fname.empty()) fname = StrCat("_", seen.size() + 1);
      std::string unique_name = fname;
      int suffix = 2;
      while (!seen.insert(unique_name).second) {
        unique_name = StrCat(fname, "_", suffix++);
      }
      EXA_ASSIGN_OR_RETURN(Typed t, TranslateExpr(texpr, scope));
      ExprPtr one = alg::TupMakeNamed(unique_name, t.expr);
      target = target == nullptr
                   ? std::move(one)
                   : alg::TupCat(std::move(target), std::move(one));
    }
    target_schema = AnySchema();
  }

  // ---- 6. Assemble. ---------------------------------------------------------
  if (envs == nullptr) {
    ExprPtr result = std::move(target);
    if (pred != nullptr) result = alg::Comp(std::move(pred), std::move(result));
    if (!stmt.by.empty()) {
      return Status::Invalid("'by' requires at least one range variable");
    }
    if (stmt.unique) {
      if (target_schema != nullptr && target_schema->is_arr()) {
        result = alg::ArrDupElim(std::move(result));
      } else {
        result = alg::DupElim(std::move(result));
      }
    }
    return result;
  }

  if (stmt.by.empty()) {
    ExprPtr result = alg::SetApply(std::move(target), std::move(envs));
    if (stmt.unique) result = alg::DupElim(std::move(result));
    return result;
  }

  // Grouped retrieval: GRP on the key, then project (and dedupe) within
  // each group.
  ExprPtr key;
  if (stmt.by.size() == 1) {
    EXA_ASSIGN_OR_RETURN(Typed k, TranslateExpr(stmt.by[0], scope));
    key = std::move(k.expr);
  } else {
    size_t i = 0;
    for (const auto& kexpr : stmt.by) {
      ++i;
      EXA_ASSIGN_OR_RETURN(Typed k, TranslateExpr(kexpr, scope));
      ExprPtr one = alg::TupMakeNamed(StrCat("_", i), k.expr);
      key = key == nullptr ? std::move(one)
                           : alg::TupCat(std::move(key), std::move(one));
    }
  }
  ExprPtr inner = alg::SetApply(std::move(target), alg::Input());
  if (stmt.unique) inner = alg::DupElim(std::move(inner));
  return alg::SetApply(std::move(inner),
                       alg::Group(std::move(key), std::move(envs)));
}

}  // namespace excess
