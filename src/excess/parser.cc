#include "excess/parser.h"

#include <cctype>

#include "excess/lexer.h"
#include "util/string_util.h"

namespace excess {

namespace {

/// Recursive-descent parser over the token stream. Grammar (QUEL-like,
/// following the paper's examples plus the extensions the equipollence
/// proof itself relies on: binary multiset expressions, constructor
/// literals in target lists, and registered builtin functions):
///
///   statement  := define_type | define_function | create | create_index
///               | drop_index | range | retrieve
///   retrieve   := 'retrieve' ['unique'] '(' targets ')'
///                 { 'by' exprs | 'from' fromlist | 'where' orexpr
///                 | 'into' IDENT }
///   orexpr     := andexpr ('or' andexpr)*
///   andexpr    := notexpr ('and' notexpr)*
///   notexpr    := 'not' notexpr | cmp
///   cmp        := setexpr [('='|'!='|'<'|'<='|'>'|'>='|'in') setexpr]
///   setexpr    := addexpr (('union'|'intersect') addexpr)*
///   addexpr    := mulexpr (('+'|'-') mulexpr)*
///   mulexpr    := unary (('*'|'/'|'%') unary)*
///   unary      := '-' unary | postfix
///   postfix    := primary ('.' IDENT ['(' args ')'] | '[' idx ']')*
///   primary    := literal | 'this' | IDENT ['(' agg_or_args ')']
///              | '(' tuple_or_group ')' | '{' exprs '}' | '[' exprs ']'
class Parser {
 public:
  Parser(std::string source, std::vector<Token> toks)
      : src_(std::move(source)), toks_(std::move(toks)) {}

  Result<Program> ParseProgram() {
    Program out;
    while (!At(TokKind::kEof)) {
      if (Accept(TokKind::kSemicolon)) continue;
      size_t start = Cur().offset;
      EXA_ASSIGN_OR_RETURN(Statement s, ParseStmt());
      // Multi-variable ranges set their own (narrower) source slice.
      if (s.source.empty()) s.source = SliceSource(start, Cur().offset);
      out.push_back(std::move(s));
    }
    return out;
  }

  Result<Statement> ParseSingle() {
    size_t start = Cur().offset;
    EXA_ASSIGN_OR_RETURN(Statement s, ParseStmt());
    if (s.source.empty()) s.source = SliceSource(start, Cur().offset);
    Accept(TokKind::kSemicolon);
    if (!At(TokKind::kEof)) {
      return Err("trailing input after statement");
    }
    return s;
  }

 private:
  // --- token helpers ---------------------------------------------------
  const Token& Cur() const { return toks_[pos_]; }
  const Token& Peek(size_t n = 1) const {
    size_t i = pos_ + n;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool At(TokKind kind) const { return Cur().kind == kind; }
  bool Accept(TokKind kind) {
    if (!At(kind)) return false;
    ++pos_;
    return true;
  }
  Status Expect(TokKind kind) {
    if (!Accept(kind)) {
      return Err(StrCat("expected '", TokKindToString(kind), "', found '",
                        Cur().text.empty() ? TokKindToString(Cur().kind)
                                           : Cur().text,
                        "'"));
    }
    return Status::OK();
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(
        StrCat(msg, " at line ", Cur().line, ", column ", Cur().column));
  }

  // --- recursion depth -------------------------------------------------
  // The grammar recurses through ParseOr (via every parenthesized /
  // bracketed form), ParseNot, ParseUnary and ParseType; adversarial input
  // like "((((..." would otherwise overflow the stack. 200 is far beyond
  // any program the emitter or the fixtures produce.
  static constexpr int kMaxDepth = 200;
  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthGuard() { --*depth_; }
    int* depth_;
  };
  Status CheckDepth() const {
    if (depth_ >= kMaxDepth) return Err("expression nesting too deep");
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (!At(TokKind::kIdent)) return Err("expected identifier");
    std::string name = Cur().text;
    ++pos_;
    return name;
  }

  /// Source text of [start, end), trailing whitespace removed. `end` is the
  /// offset of the first token after the statement, so the slice may carry
  /// inter-statement whitespace.
  std::string SliceSource(size_t start, size_t end) const {
    if (end > src_.size()) end = src_.size();
    if (start >= end) return "";
    while (end > start &&
           std::isspace(static_cast<unsigned char>(src_[end - 1]))) {
      --end;
    }
    return src_.substr(start, end - start);
  }

  // --- statements -------------------------------------------------------
  Result<Statement> ParseStmt() {
    if (At(TokKind::kDefine)) {
      if (Peek().kind == TokKind::kType) return ParseDefineType();
      return ParseDefineFunction();
    }
    if (At(TokKind::kCreate)) {
      // `create index I on S (...)` vs `create index : T` (a named object
      // that happens to be called "index"): the object form is always
      // followed by ':', so one more token of lookahead disambiguates.
      if (Peek().kind == TokKind::kIdent && Peek().text == "index" &&
          Peek(2).kind != TokKind::kColon) {
        return ParseCreateIndex();
      }
      return ParseCreate();
    }
    if (At(TokKind::kRange)) return ParseRange();
    if (At(TokKind::kRetrieve)) return ParseRetrieve();
    if (At(TokKind::kAppend)) return ParseAppend();
    if (At(TokKind::kDelete)) return ParseDelete();
    // `explain`, `open` and `checkpoint` are context-sensitive identifiers:
    // no statement can begin with an identifier, so intercepting them here
    // cannot change the meaning of any previously valid program.
    if (At(TokKind::kIdent) && Cur().text == "explain") return ParseExplain();
    if (At(TokKind::kIdent) && Cur().text == "drop") return ParseDropIndex();
    if (At(TokKind::kIdent) && Cur().text == "open") return ParseOpen();
    if (At(TokKind::kIdent) && Cur().text == "checkpoint") {
      ++pos_;
      Statement s;
      s.kind = Statement::Kind::kCheckpoint;
      return s;
    }
    if (At(TokKind::kIdent) && Cur().text == "begin") {
      ++pos_;
      Statement s;
      s.kind = Statement::Kind::kBegin;
      return s;
    }
    if (At(TokKind::kIdent) && Cur().text == "commit") {
      ++pos_;
      Statement s;
      s.kind = Statement::Kind::kCommit;
      return s;
    }
    if (At(TokKind::kIdent) && Cur().text == "rollback") {
      ++pos_;
      Statement s;
      s.kind = Statement::Kind::kRollback;
      return s;
    }
    return Err(
        "expected a statement "
        "(define/create/range/retrieve/append/delete/explain/open/"
        "checkpoint/begin/commit/rollback/drop)");
  }

  /// create_index := 'create' 'index' IDENT 'on' IDENT
  ///                 '(' [IDENT ('.' IDENT)*] ')'
  ///                 ['using' ('hash' | 'ordered')]
  /// An empty path `()` keys the elements themselves. `on` and `using` are
  /// context-sensitive identifiers, like the explain options.
  Result<Statement> ParseCreateIndex() {
    ++pos_;  // 'create'
    ++pos_;  // 'index'
    auto stmt = std::make_shared<CreateIndexStmt>();
    EXA_ASSIGN_OR_RETURN(stmt->name, ExpectIdent());
    EXA_ASSIGN_OR_RETURN(std::string on, ExpectIdent());
    if (on != "on") return Err("expected 'on' after the index name");
    EXA_ASSIGN_OR_RETURN(stmt->target, ExpectIdent());
    EXA_RETURN_NOT_OK(Expect(TokKind::kLParen));
    if (!At(TokKind::kRParen)) {
      do {
        EXA_ASSIGN_OR_RETURN(std::string field, ExpectIdent());
        stmt->path.push_back(std::move(field));
      } while (Accept(TokKind::kDot));
    }
    EXA_RETURN_NOT_OK(Expect(TokKind::kRParen));
    if (At(TokKind::kIdent) && Cur().text == "using") {
      ++pos_;
      EXA_ASSIGN_OR_RETURN(std::string kind, ExpectIdent());
      if (kind == "ordered") {
        stmt->ordered = true;
      } else if (kind != "hash") {
        return Err(
            StrCat("unknown index kind '", kind, "' (expected hash or "
                   "ordered)"));
      }
    }
    Statement s;
    s.kind = Statement::Kind::kCreateIndex;
    s.create_index = std::move(stmt);
    return s;
  }

  /// drop_index := 'drop' 'index' IDENT — removes the index, never the data.
  Result<Statement> ParseDropIndex() {
    ++pos_;  // 'drop'
    EXA_ASSIGN_OR_RETURN(std::string kw, ExpectIdent());
    if (kw != "index") return Err("expected 'index' after 'drop'");
    auto stmt = std::make_shared<DropIndexStmt>();
    EXA_ASSIGN_OR_RETURN(stmt->name, ExpectIdent());
    Statement s;
    s.kind = Statement::Kind::kDropIndex;
    s.drop_index = std::move(stmt);
    return s;
  }

  /// open := 'open' STRING — the string is the database file path.
  Result<Statement> ParseOpen() {
    ++pos_;  // 'open'
    if (!At(TokKind::kStrLit)) {
      return Err("open expects a quoted database path");
    }
    auto stmt = std::make_shared<OpenStmt>();
    stmt->path = Cur().text;
    ++pos_;
    Statement s;
    s.kind = Statement::Kind::kOpen;
    s.open = std::move(stmt);
    return s;
  }

  /// explain := 'explain' ['analyze'] ['(' opt (',' opt)* ')'] statement
  /// opt     := 'analyze' | 'trace' | 'json'   (identifiers, not keywords)
  Result<Statement> ParseExplain() {
    // Guard: "explain explain explain ..." recurses once per keyword (the
    // inner kind check only rejects after parsing), so adversarial input
    // needs the same depth cap as nested expressions.
    EXA_RETURN_NOT_OK(CheckDepth());
    DepthGuard guard(&depth_);
    ++pos_;  // 'explain'
    auto stmt = std::make_shared<ExplainStmt>();
    if (At(TokKind::kIdent) && Cur().text == "analyze") {
      stmt->analyze = true;
      ++pos_;
    }
    if (Accept(TokKind::kLParen)) {
      do {
        EXA_ASSIGN_OR_RETURN(std::string opt, ExpectIdent());
        if (opt == "analyze") {
          stmt->analyze = true;
        } else if (opt == "trace") {
          stmt->trace = true;
        } else if (opt == "json") {
          stmt->json = true;
        } else {
          return Err(StrCat("unknown explain option '", opt,
                            "' (expected analyze, trace, or json)"));
        }
      } while (Accept(TokKind::kComma));
      EXA_RETURN_NOT_OK(Expect(TokKind::kRParen));
    }
    EXA_ASSIGN_OR_RETURN(Statement inner, ParseStmt());
    if (inner.kind != Statement::Kind::kRetrieve &&
        inner.kind != Statement::Kind::kAppend &&
        inner.kind != Statement::Kind::kDelete) {
      return Err("explain supports retrieve, append, and delete statements");
    }
    stmt->inner = std::make_shared<Statement>(std::move(inner));
    Statement s;
    s.kind = Statement::Kind::kExplain;
    s.explain = std::move(stmt);
    return s;
  }

  Result<Statement> ParseDefineType() {
    EXA_RETURN_NOT_OK(Expect(TokKind::kDefine));
    EXA_RETURN_NOT_OK(Expect(TokKind::kType));
    auto stmt = std::make_shared<DefineTypeStmt>();
    EXA_ASSIGN_OR_RETURN(stmt->name, ExpectIdent());
    EXA_RETURN_NOT_OK(Expect(TokKind::kColon));
    EXA_ASSIGN_OR_RETURN(stmt->body, ParseType());
    if (Accept(TokKind::kInherits)) {
      do {
        EXA_ASSIGN_OR_RETURN(std::string parent, ExpectIdent());
        stmt->inherits.push_back(std::move(parent));
      } while (Accept(TokKind::kComma));
    }
    Statement s;
    s.kind = Statement::Kind::kDefineType;
    s.define_type = std::move(stmt);
    return s;
  }

  Result<Statement> ParseDefineFunction() {
    EXA_RETURN_NOT_OK(Expect(TokKind::kDefine));
    auto stmt = std::make_shared<DefineFunctionStmt>();
    EXA_ASSIGN_OR_RETURN(stmt->type_name, ExpectIdent());
    EXA_RETURN_NOT_OK(Expect(TokKind::kFunction));
    EXA_ASSIGN_OR_RETURN(stmt->func_name, ExpectIdent());
    EXA_RETURN_NOT_OK(Expect(TokKind::kLParen));
    if (!At(TokKind::kRParen)) {
      do {
        EXA_ASSIGN_OR_RETURN(std::string pname, ExpectIdent());
        EXA_RETURN_NOT_OK(Expect(TokKind::kColon));
        EXA_ASSIGN_OR_RETURN(TypeAstPtr ptype, ParseType());
        stmt->params.emplace_back(std::move(pname), std::move(ptype));
      } while (Accept(TokKind::kComma));
    }
    EXA_RETURN_NOT_OK(Expect(TokKind::kRParen));
    EXA_RETURN_NOT_OK(Expect(TokKind::kReturns));
    EXA_ASSIGN_OR_RETURN(stmt->returns, ParseType());
    EXA_RETURN_NOT_OK(Expect(TokKind::kLBrace));
    EXA_ASSIGN_OR_RETURN(Statement body, ParseRetrieve());
    Accept(TokKind::kSemicolon);
    EXA_RETURN_NOT_OK(Expect(TokKind::kRBrace));
    stmt->body = body.retrieve;
    Statement s;
    s.kind = Statement::Kind::kDefineFunction;
    s.define_function = std::move(stmt);
    return s;
  }

  Result<Statement> ParseCreate() {
    EXA_RETURN_NOT_OK(Expect(TokKind::kCreate));
    auto stmt = std::make_shared<CreateStmt>();
    EXA_ASSIGN_OR_RETURN(stmt->name, ExpectIdent());
    EXA_RETURN_NOT_OK(Expect(TokKind::kColon));
    EXA_ASSIGN_OR_RETURN(stmt->type, ParseType());
    Statement s;
    s.kind = Statement::Kind::kCreate;
    s.create = std::move(stmt);
    return s;
  }

  /// `range of V is Expr [, W is Expr ...]` — multiple declarations expand
  /// into multiple statements internally, so only the first is returned
  /// here; ParseProgram splices the rest.
  Result<Statement> ParseRange() {
    size_t stmt_start = Cur().offset;
    EXA_RETURN_NOT_OK(Expect(TokKind::kRange));
    EXA_RETURN_NOT_OK(Expect(TokKind::kOf));
    auto stmt = std::make_shared<RangeStmt>();
    EXA_ASSIGN_OR_RETURN(stmt->var, ExpectIdent());
    EXA_RETURN_NOT_OK(Expect(TokKind::kIs));
    EXA_ASSIGN_OR_RETURN(stmt->collection, ParseExpr());
    Statement s;
    s.kind = Statement::Kind::kRange;
    s.range = std::move(stmt);
    // Each declaration of a multi-variable range gets its own source slice
    // (`range of W is Expr`), so the statements replay independently.
    s.source = SliceSource(stmt_start, Cur().offset);
    // Additional `", W is Expr"` pairs become queued statements.
    while (Accept(TokKind::kComma)) {
      size_t extra_start = Cur().offset;
      auto extra = std::make_shared<RangeStmt>();
      EXA_ASSIGN_OR_RETURN(extra->var, ExpectIdent());
      EXA_RETURN_NOT_OK(Expect(TokKind::kIs));
      EXA_ASSIGN_OR_RETURN(extra->collection, ParseExpr());
      Statement qs;
      qs.kind = Statement::Kind::kRange;
      qs.range = std::move(extra);
      qs.source = "range of " + SliceSource(extra_start, Cur().offset);
      queued_.push_back(std::move(qs));
    }
    return s;
  }

  Result<Statement> ParseRetrieve() {
    EXA_RETURN_NOT_OK(Expect(TokKind::kRetrieve));
    auto stmt = std::make_shared<RetrieveStmt>();
    stmt->unique = Accept(TokKind::kUnique);
    EXA_RETURN_NOT_OK(Expect(TokKind::kLParen));
    if (!At(TokKind::kRParen)) {
      do {
        std::string name;
        if (At(TokKind::kIdent) && Peek().kind == TokKind::kColon) {
          name = Cur().text;
          ++pos_;
          ++pos_;  // ':'
        }
        EXA_ASSIGN_OR_RETURN(ExprAstPtr target, ParseExpr());
        stmt->targets.emplace_back(std::move(name), std::move(target));
      } while (Accept(TokKind::kComma));
    }
    EXA_RETURN_NOT_OK(Expect(TokKind::kRParen));
    // Clauses in any order.
    while (true) {
      if (Accept(TokKind::kBy)) {
        do {
          EXA_ASSIGN_OR_RETURN(ExprAstPtr key, ParseExpr());
          stmt->by.push_back(std::move(key));
        } while (Accept(TokKind::kComma));
        continue;
      }
      if (Accept(TokKind::kFrom)) {
        do {
          FromClause fc;
          EXA_ASSIGN_OR_RETURN(fc.var, ExpectIdent());
          EXA_RETURN_NOT_OK(Expect(TokKind::kIn));
          EXA_ASSIGN_OR_RETURN(fc.collection, ParseSetExpr());
          stmt->from.push_back(std::move(fc));
        } while (Accept(TokKind::kComma));
        continue;
      }
      if (Accept(TokKind::kWhere)) {
        EXA_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
        continue;
      }
      if (Accept(TokKind::kInto)) {
        EXA_ASSIGN_OR_RETURN(stmt->into, ExpectIdent());
        continue;
      }
      break;
    }
    Statement s;
    s.kind = Statement::Kind::kRetrieve;
    s.retrieve = std::move(stmt);
    return s;
  }

  Result<Statement> ParseAppend() {
    EXA_RETURN_NOT_OK(Expect(TokKind::kAppend));
    auto stmt = std::make_shared<AppendStmt>();
    stmt->all = Accept(TokKind::kAll);
    EXA_ASSIGN_OR_RETURN(stmt->value, ParseExpr());
    EXA_RETURN_NOT_OK(Expect(TokKind::kTo));
    EXA_ASSIGN_OR_RETURN(stmt->target, ExpectIdent());
    Statement s;
    s.kind = Statement::Kind::kAppend;
    s.append = std::move(stmt);
    return s;
  }

  Result<Statement> ParseDelete() {
    EXA_RETURN_NOT_OK(Expect(TokKind::kDelete));
    auto stmt = std::make_shared<DeleteStmt>();
    EXA_ASSIGN_OR_RETURN(stmt->target, ExpectIdent());
    EXA_RETURN_NOT_OK(Expect(TokKind::kWhere));
    EXA_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    Statement s;
    s.kind = Statement::Kind::kDelete;
    s.del = std::move(stmt);
    return s;
  }

  // --- types ------------------------------------------------------------
  Result<TypeAstPtr> ParseType() {
    EXA_RETURN_NOT_OK(CheckDepth());
    DepthGuard guard(&depth_);
    auto t = std::make_shared<TypeAst>();
    if (Accept(TokKind::kRef)) {
      t->kind = TypeAst::Kind::kRef;
      EXA_ASSIGN_OR_RETURN(t->name, ExpectIdent());
      return t;
    }
    if (Accept(TokKind::kLBrace)) {
      t->kind = TypeAst::Kind::kSet;
      EXA_ASSIGN_OR_RETURN(t->elem, ParseType());
      EXA_RETURN_NOT_OK(Expect(TokKind::kRBrace));
      return t;
    }
    if (Accept(TokKind::kArray)) {
      t->kind = TypeAst::Kind::kArray;
      if (Accept(TokKind::kLBracket)) {
        if (!At(TokKind::kIntLit)) return Err("expected array lower bound");
        int64_t lo = Cur().int_value;
        ++pos_;
        EXA_RETURN_NOT_OK(Expect(TokKind::kDotDot));
        if (!At(TokKind::kIntLit)) return Err("expected array upper bound");
        int64_t hi = Cur().int_value;
        ++pos_;
        EXA_RETURN_NOT_OK(Expect(TokKind::kRBracket));
        if (lo != 1) return Err("array lower bound must be 1");
        t->array_size = hi;
      }
      EXA_RETURN_NOT_OK(Expect(TokKind::kOf));
      EXA_ASSIGN_OR_RETURN(t->elem, ParseType());
      return t;
    }
    if (Accept(TokKind::kLParen)) {
      t->kind = TypeAst::Kind::kTuple;
      if (!At(TokKind::kRParen)) {
        do {
          EXA_ASSIGN_OR_RETURN(std::string fname, ExpectIdent());
          EXA_RETURN_NOT_OK(Expect(TokKind::kColon));
          EXA_ASSIGN_OR_RETURN(TypeAstPtr ftype, ParseType());
          t->fields.emplace_back(std::move(fname), std::move(ftype));
        } while (Accept(TokKind::kComma));
      }
      EXA_RETURN_NOT_OK(Expect(TokKind::kRParen));
      return t;
    }
    // Named scalar or user type; char may carry a length we discard
    // (strings are unbounded in this implementation).
    EXA_ASSIGN_OR_RETURN(t->name, ExpectIdent());
    t->kind = TypeAst::Kind::kNamed;
    if (Accept(TokKind::kLBracket)) {
      if (At(TokKind::kIntLit)) ++pos_;
      EXA_RETURN_NOT_OK(Expect(TokKind::kRBracket));
    }
    return t;
  }

  // --- expressions --------------------------------------------------------
  Result<ExprAstPtr> ParseExpr() { return ParseOr(); }

  Result<ExprAstPtr> ParseOr() {
    EXA_RETURN_NOT_OK(CheckDepth());
    DepthGuard guard(&depth_);
    EXA_ASSIGN_OR_RETURN(ExprAstPtr lhs, ParseAnd());
    while (Accept(TokKind::kOr)) {
      EXA_ASSIGN_OR_RETURN(ExprAstPtr rhs, ParseAnd());
      auto e = std::make_shared<ExprAst>();
      e->kind = ExprAst::Kind::kOr;
      e->base = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprAstPtr> ParseAnd() {
    EXA_ASSIGN_OR_RETURN(ExprAstPtr lhs, ParseNot());
    while (Accept(TokKind::kAnd)) {
      EXA_ASSIGN_OR_RETURN(ExprAstPtr rhs, ParseNot());
      auto e = std::make_shared<ExprAst>();
      e->kind = ExprAst::Kind::kAnd;
      e->base = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprAstPtr> ParseNot() {
    EXA_RETURN_NOT_OK(CheckDepth());
    DepthGuard guard(&depth_);
    if (Accept(TokKind::kNot)) {
      EXA_ASSIGN_OR_RETURN(ExprAstPtr inner, ParseNot());
      auto e = std::make_shared<ExprAst>();
      e->kind = ExprAst::Kind::kNot;
      e->base = std::move(inner);
      return e;
    }
    return ParseCmp();
  }

  Result<ExprAstPtr> ParseCmp() {
    EXA_ASSIGN_OR_RETURN(ExprAstPtr lhs, ParseSetExpr());
    std::string op;
    if (Accept(TokKind::kEq)) op = "=";
    else if (Accept(TokKind::kNe)) op = "!=";
    else if (Accept(TokKind::kLe)) op = "<=";
    else if (Accept(TokKind::kLt)) op = "<";
    else if (Accept(TokKind::kGe)) op = ">=";
    else if (Accept(TokKind::kGt)) op = ">";
    else if (Accept(TokKind::kIn)) op = "in";
    else return lhs;
    EXA_ASSIGN_OR_RETURN(ExprAstPtr rhs, ParseSetExpr());
    auto e = std::make_shared<ExprAst>();
    e->kind = ExprAst::Kind::kCompare;
    e->text = op;
    e->base = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }

  Result<ExprAstPtr> ParseSetExpr() {
    EXA_ASSIGN_OR_RETURN(ExprAstPtr lhs, ParseAdd());
    while (At(TokKind::kUnion) || At(TokKind::kIntersect)) {
      std::string op = At(TokKind::kUnion) ? "union" : "intersect";
      ++pos_;
      EXA_ASSIGN_OR_RETURN(ExprAstPtr rhs, ParseAdd());
      auto e = std::make_shared<ExprAst>();
      e->kind = ExprAst::Kind::kBinary;
      e->text = op;
      e->base = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprAstPtr> ParseAdd() {
    EXA_ASSIGN_OR_RETURN(ExprAstPtr lhs, ParseMul());
    while (At(TokKind::kPlus) || At(TokKind::kMinus)) {
      std::string op = At(TokKind::kPlus) ? "+" : "-";
      ++pos_;
      EXA_ASSIGN_OR_RETURN(ExprAstPtr rhs, ParseMul());
      auto e = std::make_shared<ExprAst>();
      e->kind = ExprAst::Kind::kBinary;
      e->text = op;
      e->base = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprAstPtr> ParseMul() {
    EXA_ASSIGN_OR_RETURN(ExprAstPtr lhs, ParseUnary());
    while (At(TokKind::kStar) || At(TokKind::kSlash) || At(TokKind::kPercent)) {
      std::string op = At(TokKind::kStar) ? "*"
                       : At(TokKind::kSlash) ? "/"
                                             : "%";
      ++pos_;
      EXA_ASSIGN_OR_RETURN(ExprAstPtr rhs, ParseUnary());
      auto e = std::make_shared<ExprAst>();
      e->kind = ExprAst::Kind::kBinary;
      e->text = op;
      e->base = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprAstPtr> ParseUnary() {
    EXA_RETURN_NOT_OK(CheckDepth());
    DepthGuard guard(&depth_);
    if (Accept(TokKind::kMinus)) {
      EXA_ASSIGN_OR_RETURN(ExprAstPtr inner, ParseUnary());
      auto zero = std::make_shared<ExprAst>();
      zero->kind = ExprAst::Kind::kIntLit;
      zero->int_value = 0;
      auto e = std::make_shared<ExprAst>();
      e->kind = ExprAst::Kind::kBinary;
      e->text = "-";
      e->base = std::move(zero);
      e->rhs = std::move(inner);
      return e;
    }
    return ParsePostfix();
  }

  Result<ExprAstPtr> ParsePostfix() {
    EXA_ASSIGN_OR_RETURN(ExprAstPtr e, ParsePrimary());
    while (true) {
      if (Accept(TokKind::kDot)) {
        EXA_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
        if (Accept(TokKind::kLParen)) {
          auto call = std::make_shared<ExprAst>();
          call->kind = ExprAst::Kind::kCall;
          call->text = std::move(name);
          call->base = std::move(e);
          if (!At(TokKind::kRParen)) {
            do {
              EXA_ASSIGN_OR_RETURN(ExprAstPtr arg, ParseExpr());
              call->args.push_back(std::move(arg));
            } while (Accept(TokKind::kComma));
          }
          EXA_RETURN_NOT_OK(Expect(TokKind::kRParen));
          e = std::move(call);
        } else {
          auto field = std::make_shared<ExprAst>();
          field->kind = ExprAst::Kind::kField;
          field->text = std::move(name);
          field->base = std::move(e);
          e = std::move(field);
        }
        continue;
      }
      if (Accept(TokKind::kLBracket)) {
        // base[i], base[last], base[lo..hi] with `last` bounds.
        bool lo_last = Accept(TokKind::kLast);
        ExprAstPtr lo;
        if (!lo_last) {
          EXA_ASSIGN_OR_RETURN(lo, ParseExpr());
        }
        if (Accept(TokKind::kDotDot)) {
          bool hi_last = Accept(TokKind::kLast);
          ExprAstPtr hi;
          if (!hi_last) {
            EXA_ASSIGN_OR_RETURN(hi, ParseExpr());
          }
          EXA_RETURN_NOT_OK(Expect(TokKind::kRBracket));
          auto slice = std::make_shared<ExprAst>();
          slice->kind = ExprAst::Kind::kSlice;
          slice->base = std::move(e);
          slice->rhs = std::move(lo);
          slice->rhs2 = std::move(hi);
          slice->lo_is_last = lo_last;
          slice->hi_is_last = hi_last;
          e = std::move(slice);
        } else {
          EXA_RETURN_NOT_OK(Expect(TokKind::kRBracket));
          auto idx = std::make_shared<ExprAst>();
          idx->kind = ExprAst::Kind::kIndex;
          idx->base = std::move(e);
          idx->rhs = std::move(lo);
          idx->index_is_last = lo_last;
          e = std::move(idx);
        }
        continue;
      }
      break;
    }
    return e;
  }

  bool IsAggName(const std::string& name) const {
    return name == "min" || name == "max" || name == "count" ||
           name == "sum" || name == "avg";
  }

  Result<ExprAstPtr> ParsePrimary() {
    auto e = std::make_shared<ExprAst>();
    if (At(TokKind::kIntLit)) {
      e->kind = ExprAst::Kind::kIntLit;
      e->int_value = Cur().int_value;
      ++pos_;
      return e;
    }
    if (At(TokKind::kFloatLit)) {
      e->kind = ExprAst::Kind::kFloatLit;
      e->float_value = Cur().float_value;
      ++pos_;
      return e;
    }
    if (At(TokKind::kStrLit)) {
      e->kind = ExprAst::Kind::kStrLit;
      e->text = Cur().text;
      ++pos_;
      return e;
    }
    if (Accept(TokKind::kTrue)) {
      e->kind = ExprAst::Kind::kBoolLit;
      e->bool_value = true;
      return e;
    }
    if (Accept(TokKind::kFalse)) {
      e->kind = ExprAst::Kind::kBoolLit;
      e->bool_value = false;
      return e;
    }
    if (Accept(TokKind::kThis)) {
      e->kind = ExprAst::Kind::kName;
      e->text = "this";
      return e;
    }
    if (At(TokKind::kIdent)) {
      std::string name = Cur().text;
      ++pos_;
      if (At(TokKind::kLParen) && IsAggName(name)) {
        return ParseAggregate(name);
      }
      if (Accept(TokKind::kLParen)) {
        // Builtin / free-standing function invocation.
        e->kind = ExprAst::Kind::kCall;
        e->text = std::move(name);
        if (!At(TokKind::kRParen)) {
          do {
            EXA_ASSIGN_OR_RETURN(ExprAstPtr arg, ParseExpr());
            e->args.push_back(std::move(arg));
          } while (Accept(TokKind::kComma));
        }
        EXA_RETURN_NOT_OK(Expect(TokKind::kRParen));
        return e;
      }
      e->kind = ExprAst::Kind::kName;
      e->text = std::move(name);
      return e;
    }
    if (Accept(TokKind::kLParen)) {
      // Tuple literal `(a: 1, ...)`, `(e1, e2, ...)` or grouped expression.
      if (At(TokKind::kIdent) && Peek().kind == TokKind::kColon) {
        e->kind = ExprAst::Kind::kTupLit;
        do {
          EXA_ASSIGN_OR_RETURN(std::string fname, ExpectIdent());
          EXA_RETURN_NOT_OK(Expect(TokKind::kColon));
          EXA_ASSIGN_OR_RETURN(ExprAstPtr val, ParseExpr());
          e->named_args.emplace_back(std::move(fname), std::move(val));
        } while (Accept(TokKind::kComma));
        EXA_RETURN_NOT_OK(Expect(TokKind::kRParen));
        return e;
      }
      EXA_ASSIGN_OR_RETURN(ExprAstPtr first, ParseExpr());
      if (Accept(TokKind::kComma)) {
        e->kind = ExprAst::Kind::kTupLit;
        e->named_args.emplace_back("", std::move(first));
        do {
          EXA_ASSIGN_OR_RETURN(ExprAstPtr val, ParseExpr());
          e->named_args.emplace_back("", std::move(val));
        } while (Accept(TokKind::kComma));
        EXA_RETURN_NOT_OK(Expect(TokKind::kRParen));
        return e;
      }
      EXA_RETURN_NOT_OK(Expect(TokKind::kRParen));
      return first;  // grouped
    }
    if (Accept(TokKind::kLBrace)) {
      e->kind = ExprAst::Kind::kSetLit;
      if (!At(TokKind::kRBrace)) {
        do {
          EXA_ASSIGN_OR_RETURN(ExprAstPtr el, ParseExpr());
          e->args.push_back(std::move(el));
        } while (Accept(TokKind::kComma));
      }
      EXA_RETURN_NOT_OK(Expect(TokKind::kRBrace));
      return e;
    }
    if (Accept(TokKind::kLBracket)) {
      e->kind = ExprAst::Kind::kArrLit;
      if (!At(TokKind::kRBracket)) {
        do {
          EXA_ASSIGN_OR_RETURN(ExprAstPtr el, ParseExpr());
          e->args.push_back(std::move(el));
        } while (Accept(TokKind::kComma));
      }
      EXA_RETURN_NOT_OK(Expect(TokKind::kRBracket));
      return e;
    }
    return Err("expected an expression");
  }

  /// `agg( expr [from v in coll, ...] [where pred] )`.
  Result<ExprAstPtr> ParseAggregate(const std::string& name) {
    EXA_RETURN_NOT_OK(Expect(TokKind::kLParen));
    auto e = std::make_shared<ExprAst>();
    e->kind = ExprAst::Kind::kAgg;
    e->text = name;
    EXA_ASSIGN_OR_RETURN(e->base, ParseExpr());
    if (Accept(TokKind::kFrom)) {
      do {
        EXA_ASSIGN_OR_RETURN(std::string var, ExpectIdent());
        EXA_RETURN_NOT_OK(Expect(TokKind::kIn));
        EXA_ASSIGN_OR_RETURN(ExprAstPtr coll, ParseSetExpr());
        e->agg_from.emplace_back(std::move(var), std::move(coll));
      } while (Accept(TokKind::kComma));
    }
    if (Accept(TokKind::kWhere)) {
      EXA_ASSIGN_OR_RETURN(e->agg_where, ParseExpr());
    }
    EXA_RETURN_NOT_OK(Expect(TokKind::kRParen));
    return e;
  }

  std::string src_;
  std::vector<Token> toks_;
  size_t pos_ = 0;
  int depth_ = 0;

 public:
  std::vector<Statement> queued_;  // extra statements from multi-range
};

}  // namespace

Result<Program> Parse(const std::string& source) {
  EXA_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(source));
  Parser parser(source, std::move(toks));
  EXA_ASSIGN_OR_RETURN(Program program, parser.ParseProgram());
  // Multi-variable range statements queue extra declarations; order within
  // the program does not matter for ranges, so append works... except it
  // does matter relative to retrieves. Splice each queued statement right
  // after its source statement instead.
  if (!parser.queued_.empty()) {
    // Re-parse conservative path: the queue preserves source order and all
    // queued statements are ranges, which only need to precede the *next*
    // retrieve; inserting them immediately after their origin achieves
    // that. Origins are in order, so a stable merge suffices.
    Program merged;
    size_t q = 0;
    for (auto& s : program) {
      bool was_range = s.kind == Statement::Kind::kRange;
      merged.push_back(std::move(s));
      if (was_range) {
        while (q < parser.queued_.size()) {
          merged.push_back(std::move(parser.queued_[q]));
          ++q;
        }
      }
    }
    while (q < parser.queued_.size()) {
      merged.push_back(std::move(parser.queued_[q]));
      ++q;
    }
    return merged;
  }
  return program;
}

Result<Statement> ParseStatement(const std::string& source) {
  EXA_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(source));
  Parser parser(source, std::move(toks));
  return parser.ParseSingle();
}

}  // namespace excess
