#ifndef EXCESS_EXCESS_LEXER_H_
#define EXCESS_EXCESS_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace excess {

/// Token kinds of the EXCESS surface language (§2.2). Keywords follow the
/// paper's QUEL-derived examples; `last` is the array bound token of §3.2.3.
enum class TokKind {
  kEof,
  kIdent,
  kIntLit,
  kFloatLit,
  kStrLit,
  // Keywords.
  kDefine, kType, kCreate, kRange, kOf, kIs, kRetrieve, kUnique, kFrom, kIn,
  kWhere, kBy, kInto, kInherits, kFunction, kReturns, kArray, kRef, kAnd,
  kOr, kNot, kUnion, kIntersect, kTrue, kFalse, kThis, kLast,
  kAppend, kAll, kTo, kDelete,
  // Punctuation and operators.
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket, kComma, kColon,
  kSemicolon, kDot, kDotDot,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kPlus, kMinus, kStar, kSlash, kPercent,
};

const char* TokKindToString(TokKind kind);

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;     // identifier or string payload
  int64_t int_value = 0;
  double float_value = 0;
  int line = 1;
  int column = 1;
  /// Byte offset of the token's first character in the source (kEof:
  /// source length). The parser slices per-statement source text out of
  /// the program with these, so the WAL can log statements verbatim.
  size_t offset = 0;
};

/// Tokenizes an EXCESS program. `--` starts a comment to end of line.
Result<std::vector<Token>> Lex(const std::string& source);

}  // namespace excess

#endif  // EXCESS_EXCESS_LEXER_H_
