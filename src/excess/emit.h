#ifndef EXCESS_EXCESS_EMIT_H_
#define EXCESS_EXCESS_EMIT_H_

#include <string>

#include "core/expr.h"
#include "methods/registry.h"
#include "objects/database.h"
#include "util/status.h"
#include "util/string_util.h"

namespace excess {

/// Algebra → EXCESS emission: the second half of the §3.4 equipollence
/// theorem, implemented as the proof's induction — each operator case emits
/// a `retrieve ... into <temp>` statement over the programs emitted for its
/// inputs; subscript expressions are rendered as EXCESS expressions over
/// the bound variable (or as freshly `define`d functions for ARR_APPLY,
/// exactly as the proof does for that case).
///
/// The emitter is deliberately partial where the paper's proof leans on
/// constructs with no finite surface form (OID literals) or on full
/// statement-sequence method bodies; such cases return Unsupported. Every
/// operator of the algebra has at least one emittable form, which is what
/// the induction requires.
class EmittedProgram {
 public:
  /// EXCESS statements, in execution order.
  const std::string& source() const { return source_; }
  /// The named object the final statement stores the result into.
  const std::string& result_name() const { return result_; }

  std::string source_;
  std::string result_;
};

class Emitter {
 public:
  Emitter(const Database* db, const MethodRegistry* methods)
      : db_(db), methods_(methods) {}

  /// Emits a program computing `tree`; running the program in a fresh
  /// session over the same database leaves the result in
  /// `result_name()`.
  Result<EmittedProgram> Emit(const ExprPtr& tree);

 private:
  /// Emits statements computing `e` and returns the name holding it.
  Result<std::string> EmitInto(const ExprPtr& e);
  /// Renders a subscript-free expression over INPUT as EXCESS text, with
  /// `input_name` standing for INPUT.
  Result<std::string> EmitScalar(const ExprPtr& e,
                                 const std::string& input_name);
  Result<std::string> EmitPredicate(const PredicatePtr& p,
                                    const std::string& input_name);
  Result<std::string> EmitLiteral(const ValuePtr& v);

  std::string NewTemp() { return StrCat("__t", ++temp_counter_); }
  std::string NewFunc() { return StrCat("__f", ++func_counter_); }
  void Stmt(const std::string& s) {
    program_ += s;
    program_ += "\n";
  }

  /// Emission recurses over plans and literals, which — unlike parsed ASTs
  /// — have no a-priori depth bound when built via the builder API; guard
  /// like the parser does so a pathological tree is an error, not a stack
  /// overflow. Sized like TypeInference::kMaxDepth: asan-inflated frames
  /// must still reach the guard before exhausting an 8 MB stack.
  static constexpr int kMaxDepth = 256;
  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthGuard() { --*depth_; }
    int* depth_;
  };
  Status CheckDepth() const {
    if (depth_ >= kMaxDepth) {
      return Status::ResourceExhausted("plan nesting too deep to emit");
    }
    return Status::OK();
  }

  const Database* db_;
  const MethodRegistry* methods_;
  std::string program_;
  int temp_counter_ = 0;
  int func_counter_ = 0;
  int depth_ = 0;
};

}  // namespace excess

#endif  // EXCESS_EXCESS_EMIT_H_
