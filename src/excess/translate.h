#ifndef EXCESS_EXCESS_TRANSLATE_H_
#define EXCESS_EXCESS_TRANSLATE_H_

#include <map>
#include <string>
#include <vector>

#include "core/expr.h"
#include "excess/ast.h"
#include "methods/registry.h"
#include "objects/database.h"
#include "util/status.h"

namespace excess {

/// EXCESS → algebra translation (the first half of the §3.4 equipollence
/// theorem). The algorithm follows the proof sketch: all iteration sources
/// (explicit `range of` declarations actually used, `from` clauses, and
/// implicit ranges over named multisets accessed through paths) are
/// combined into a pipeline of environment tuples via SET_APPLY / CROSS /
/// SET_COLLAPSE; the `where` clause becomes a COMP; the target list a
/// projection; `by` a GRP; `unique` a DE.
///
/// Reference-typed values are dereferenced lazily at field access, so a
/// query returning range variables over `{ ref T }` returns the
/// references themselves (identity), while any `.field` step inserts a
/// DEREF — mirroring EXCESS's uniform dot notation.
class Translator {
 public:
  /// `methods` may be null; then method-call syntax is rejected.
  Translator(const Database* db, const MethodRegistry* methods)
      : db_(db), methods_(methods) {}

  /// Builds the schema declared by an EXTRA surface type. Named user types
  /// are inlined by value (substitutability via exact-type tags); `ref T`
  /// stays symbolic.
  Result<SchemaPtr> BuildSchema(const TypeAstPtr& type) const;

  /// Translates a retrieve statement. `ranges` are the session's `range
  /// of` declarations in declaration order (only those actually referenced
  /// are iterated).
  Result<ExprPtr> TranslateRetrieve(
      const RetrieveStmt& stmt,
      const std::vector<std::pair<std::string, ExprAstPtr>>& ranges) const;

  /// Translates a method body (a retrieve over `this`): the result is an
  /// expression over INPUT (= the receiver, with schema `this_schema`) and
  /// kParam placeholders for `params`.
  Result<ExprPtr> TranslateMethodBody(const RetrieveStmt& stmt,
                                      const std::vector<std::string>& params,
                                      const SchemaPtr& this_schema) const;

  /// Translates a closed (variable-free) expression — append values, etc.
  Result<ExprPtr> TranslateClosedExpr(const ExprAstPtr& e) const;

  /// Plan computing the new value of `target` after `delete target where
  /// pred`: the original multiset minus the occurrences matching the
  /// predicate (in which `target` names the element). Unknown-predicate
  /// occurrences survive, following the usual conservative delete.
  Result<ExprPtr> TranslateDeletePlan(const std::string& target,
                                      const ExprAstPtr& pred) const;

 private:
  struct Typed {
    ExprPtr expr;
    SchemaPtr schema;
  };
  /// Variables visible to expressions: environment-tuple fields (range and
  /// from variables plus `this`), and method parameters.
  struct Binding {
    std::string var;    // surface name
    std::string field;  // env-tuple field (differs when shadowing)
    SchemaPtr schema;
  };
  struct Scope {
    // Env bindings in binding order; an aggregate's `from` variable may
    // shadow an outer variable of the same name (it gets a fresh field
    // name in the environment tuple). Lookups resolve to the *latest*
    // binding.
    std::vector<Binding> env;
    std::vector<std::string> params;
    bool has_env = false;
    // Method bodies without iteration: `this` IS the raw INPUT value (no
    // environment tuple), so the body evaluates to the target directly.
    bool this_is_raw = false;
    SchemaPtr raw_this_schema;

    const Binding* Lookup(const std::string& name) const {
      for (auto it = env.rbegin(); it != env.rend(); ++it) {
        if (it->var == name) return &*it;
      }
      return nullptr;
    }
    bool HasVar(const std::string& name) const {
      return Lookup(name) != nullptr;
    }
    SchemaPtr VarSchema(const std::string& name) const {
      const Binding* b = Lookup(name);
      return b != nullptr ? b->schema : nullptr;
    }
    int ParamIndex(const std::string& name) const {
      for (size_t i = 0; i < params.size(); ++i) {
        if (params[i] == name) return static_cast<int>(i);
      }
      return -1;
    }
  };

  Result<ExprPtr> TranslateCore(
      const RetrieveStmt& stmt,
      const std::vector<std::pair<std::string, ExprAstPtr>>& ranges,
      Scope scope, ExprPtr initial_env) const;

  /// Extends the environment pipeline with one iteration variable bound to
  /// `coll_ast` (translated in the current scope). Updates scope and
  /// returns the new environment expression.
  Result<ExprPtr> BindVar(Scope* scope, ExprPtr envs, const std::string& var,
                          const ExprAstPtr& coll_ast) const;

  /// Collects names referenced with a field/index path rooted at them (the
  /// trigger for implicit ranges over named multisets). Aggregate operands
  /// are skipped: "the variable ranges over the set within the scope of the
  /// aggregate" (§2.2), so paths inside an aggregate never iterate the
  /// enclosing query.
  static void CollectPathRoots(const ExprAstPtr& e,
                               std::vector<std::string>* roots);
  /// Collects *free* name uses: names bound by an enclosing aggregate's
  /// `from` clauses are not free within the aggregate (QUEL scoping — "the
  /// variable E ranges over Employees within the scope of the min
  /// aggregate"), so an outer `range of E` declaration is not triggered by
  /// them.
  static void CollectNameUses(const ExprAstPtr& e,
                              std::vector<std::string>* names,
                              std::vector<std::string> bound = {});

  Result<Typed> TranslateExpr(const ExprAstPtr& e, const Scope& scope) const;
  Result<PredicatePtr> TranslateBool(const ExprAstPtr& e,
                                     const Scope& scope) const;
  Result<Typed> TranslateField(const Typed& base, const std::string& field,
                               const Scope& scope) const;
  Result<Typed> TranslateAgg(const ExprAstPtr& e, const Scope& scope) const;
  Result<Typed> TranslateCall(const ExprAstPtr& e, const Scope& scope) const;

  /// Dereference through a ref schema: wraps `t` in DEREF and resolves the
  /// target schema (identity when not a ref).
  Result<Typed> AutoDeref(Typed t) const;

  /// The parser caps AST nesting at 200, but ASTs can also be built
  /// directly; translation recurses over them (including re-entering
  /// TranslateCore for nested aggregates), so it carries its own guard —
  /// comfortably above anything a legal parse produces.
  static constexpr int kMaxDepth = 500;
  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthGuard() { --*depth_; }
    int* depth_;
  };
  Status CheckDepth() const {
    if (depth_ >= kMaxDepth) {
      return Status::ResourceExhausted("expression nesting too deep to translate");
    }
    return Status::OK();
  }

  const Database* db_;
  const MethodRegistry* methods_;
  mutable int depth_ = 0;  // guards recursion in const translate methods
};

}  // namespace excess

#endif  // EXCESS_EXCESS_TRANSLATE_H_
