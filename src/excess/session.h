#ifndef EXCESS_EXCESS_SESSION_H_
#define EXCESS_EXCESS_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/eval.h"
#include "core/planner.h"
#include "excess/ast.h"
#include "excess/translate.h"
#include "methods/registry.h"
#include "objects/database.h"
#include "obs/explain.h"
#include "storage/engine.h"
#include "util/status.h"

namespace excess {

/// An interactive EXCESS session: executes DDL (define type, create),
/// declarations (range of), method definitions (define <T> function) and
/// queries (retrieve) against a Database. Queries are translated to the
/// algebra, optionally optimized, evaluated, and — with `into` — stored as
/// new named top-level objects.
class Session {
 public:
  struct Options {
    bool optimize = true;
    Planner::Options planner;
    /// Per-statement resource budgets; defaults pick up the
    /// EXCESS_DEADLINE_MS / EXCESS_MEM_LIMIT_MB env knobs (unlimited when
    /// unset). A fresh Governor is armed for every executed statement, so
    /// the deadline is per statement, not per session.
    ExecLimits limits = ExecLimits::FromEnv();
    /// Optional shared cancellation flag, polled at every governor
    /// checkpoint. The caller keeps the other end; CancelToken::Reset()
    /// re-arms it so the same session can keep executing afterwards.
    CancelTokenPtr cancel;
    /// When false, the one-time EXCESS_DB_PATH auto-open is skipped. The
    /// server's snapshot-epoch reader sessions run against private clones
    /// and must never attach storage, even with the knob set for the
    /// writer.
    bool env_autoopen = true;
  };

  Session(Database* db, MethodRegistry* methods)
      : db_(db), methods_(methods), translator_(db, methods) {}
  Session(Database* db, MethodRegistry* methods, Options options)
      : db_(db), methods_(methods), translator_(db, methods),
        options_(options) {}

  /// Parses and executes a whole program; returns the result of the *last*
  /// retrieve (or null if the program has none).
  Result<ValuePtr> Execute(const std::string& program);

  /// Executes one parsed statement.
  Result<ValuePtr> ExecuteStatement(const Statement& stmt);

  /// Translates (without executing) a retrieve statement, returning the
  /// raw (unoptimized) algebra tree — the E of the equipollence proof.
  Result<ExprPtr> Translate(const std::string& retrieve_source);

  /// Runs an algebra tree through the session's evaluator (methods
  /// attached), used by the equipollence tests.
  Result<ValuePtr> EvalTree(const ExprPtr& tree);

  const Translator& translator() const { return translator_; }
  const std::vector<std::pair<std::string, ExprAstPtr>>& ranges() const {
    return ranges_;
  }

  /// Installs range declarations captured from another session (the
  /// server's snapshot-epoch readers rebuild their context this way). The
  /// ASTs are immutable parse trees, safely shared across sessions and
  /// threads.
  void set_ranges(std::vector<std::pair<std::string, ExprAstPtr>> ranges) {
    ranges_ = std::move(ranges);
  }

  /// Adjust budgets / cancellation between statements (e.g. relax a limit
  /// after a kResourceExhausted, or install a token mid-session).
  void set_limits(const ExecLimits& limits) { options_.limits = limits; }
  void set_cancel_token(CancelTokenPtr cancel) {
    options_.cancel = std::move(cancel);
  }

  /// Stats of the most recent EvalTree (governed evaluation), including
  /// peak_bytes. Cleared at the start of each evaluated statement.
  const EvalStats& last_stats() const { return last_stats_; }

  /// Report of the most recent `explain [analyze]` statement (null before
  /// the first one) — the programmatic access to EXPLAIN output: annotated
  /// plan trees, the rewrite trace, and (after analyze) per-node actuals.
  std::shared_ptr<const obs::ExplainReport> last_explain() const {
    return last_explain_;
  }

  /// Attaches the session to a durable database at `path` (the `open`
  /// statement, programmatically). If the file exists, the in-memory
  /// database, range bindings, and methods are REPLACED by the recovered
  /// state; otherwise the current state becomes the initial snapshot. From
  /// then on every committed mutation statement is appended to the
  /// write-ahead log (and fsync'd, unless EXCESS_WAL_FSYNC=0) before its
  /// in-memory effect is applied.
  Status OpenStorage(const std::string& path);

  /// Folds the write-ahead log into a fresh snapshot (the `checkpoint`
  /// statement). Fails unless a database is open.
  Status Checkpoint();

  bool has_storage() const { return storage_ != nullptr; }

  /// True while a `begin` is open and uncommitted.
  bool in_txn() const { return txn_ != nullptr; }

  /// Recovery details of the most recent OpenStorage.
  const storage::RecoveryInfo& last_recovery() const { return last_recovery_; }

  /// Sequence number the next durably logged statement will get; 0 without
  /// storage. The crash-recovery oracle uses this to count commits.
  uint64_t next_durable_lsn() const {
    return storage_ == nullptr ? 0 : storage_->next_lsn();
  }

  /// Test seam: crash-injection hooks used by subsequent OpenStorage calls.
  void set_storage_hooks(storage::StorageHooks* hooks) {
    storage_hooks_ = hooks;
  }

  /// Arms an idempotency token for the NEXT `commit`: the token is
  /// journaled on the transaction's COMMIT WAL marker, making the commit
  /// resolvable exactly-once by a retrying wire client. Consumed (and
  /// cleared) by that commit whether it succeeds or fails; overwritten by
  /// a later call.
  void set_next_commit_token(std::string token) {
    next_commit_token_ = std::move(token);
  }

 private:
  Status ExecDefineType(const DefineTypeStmt& stmt, const std::string& source);
  Status ExecCreate(const CreateStmt& stmt, const std::string& source);
  Status ExecRange(const RangeStmt& stmt, const std::string& source);
  Status ExecDefineFunction(const DefineFunctionStmt& stmt,
                            const std::string& source);
  Result<ValuePtr> ExecRetrieve(const RetrieveStmt& stmt,
                                const std::string& source);
  Status ExecAppend(const AppendStmt& stmt, const std::string& source);
  Status ExecDelete(const DeleteStmt& stmt, const std::string& source);
  Result<ValuePtr> ExecExplain(const ExplainStmt& stmt);
  Status ExecBegin();
  Status ExecCommit();
  Status ExecRollback();
  Status ExecCreateIndex(const CreateIndexStmt& stmt,
                         const std::string& source);
  Status ExecDropIndex(const DropIndexStmt& stmt, const std::string& source);

  /// The session's planner options with the EXCESS_INDEX_LOWERING env knob
  /// folded in (0 disables index-aware lowering; default on).
  Planner::Options EffectivePlannerOptions() const;

  /// The update plan ExecAppend evaluates (shared with EXPLAIN).
  Result<ExprPtr> AppendPlan(const AppendStmt& stmt);

  /// Durably logs a committed statement. No-op without storage or during
  /// replay; rejects statements with no source text (programmatically built
  /// ASTs cannot be made durable).
  Status LogDurable(const std::string& source, bool context);

  /// Remembers a committed context statement (range / define function) for
  /// future snapshots.
  void RecordContext(const std::string& source);

  /// One-time EXCESS_DB_PATH auto-open, checked at the first statement.
  Status MaybeOpenFromEnv();

  /// An open session transaction: the undo image of everything `rollback`
  /// must put back (database, range bindings, methods, the context log),
  /// plus the statements staged for the commit-time WAL group. Mutations
  /// inside the transaction apply to live state immediately — queries see
  /// their own writes — while the snapshot holds the pre-begin bindings, so
  /// Database::AppendNamed transparently copies-on-write instead of
  /// clobbering them.
  struct Txn {
    Database::TxnSnapshot db;
    std::vector<std::pair<std::string, ExprAstPtr>> ranges;
    MethodRegistry::MethodMap methods;
    std::vector<std::string> context_log;
    std::vector<storage::StagedStatement> staged;
  };
  /// Puts back everything `txn` captured (rollback, and commit auto-abort).
  Status RestoreTxn(Txn& txn);

  Database* db_;
  MethodRegistry* methods_;
  Translator translator_;
  Options options_;
  std::vector<std::pair<std::string, ExprAstPtr>> ranges_;
  EvalStats last_stats_;
  std::shared_ptr<const obs::ExplainReport> last_explain_;
  std::unique_ptr<storage::StorageEngine> storage_;
  storage::StorageHooks* storage_hooks_ = nullptr;
  storage::RecoveryInfo last_recovery_;
  /// Sources of committed context statements, in commit order (snapshots
  /// persist these so range bindings and methods survive reopen).
  std::vector<std::string> context_log_;
  std::unique_ptr<Txn> txn_;
  std::string next_commit_token_;
  bool replaying_ = false;
  bool env_checked_ = false;
};

}  // namespace excess

#endif  // EXCESS_EXCESS_SESSION_H_
