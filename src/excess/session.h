#ifndef EXCESS_EXCESS_SESSION_H_
#define EXCESS_EXCESS_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/eval.h"
#include "core/planner.h"
#include "excess/ast.h"
#include "excess/translate.h"
#include "methods/registry.h"
#include "objects/database.h"
#include "obs/explain.h"
#include "util/status.h"

namespace excess {

/// An interactive EXCESS session: executes DDL (define type, create),
/// declarations (range of), method definitions (define <T> function) and
/// queries (retrieve) against a Database. Queries are translated to the
/// algebra, optionally optimized, evaluated, and — with `into` — stored as
/// new named top-level objects.
class Session {
 public:
  struct Options {
    bool optimize = true;
    Planner::Options planner;
    /// Per-statement resource budgets; defaults pick up the
    /// EXCESS_DEADLINE_MS / EXCESS_MEM_LIMIT_MB env knobs (unlimited when
    /// unset). A fresh Governor is armed for every executed statement, so
    /// the deadline is per statement, not per session.
    ExecLimits limits = ExecLimits::FromEnv();
    /// Optional shared cancellation flag, polled at every governor
    /// checkpoint. The caller keeps the other end; CancelToken::Reset()
    /// re-arms it so the same session can keep executing afterwards.
    CancelTokenPtr cancel;
  };

  Session(Database* db, MethodRegistry* methods)
      : db_(db), methods_(methods), translator_(db, methods) {}
  Session(Database* db, MethodRegistry* methods, Options options)
      : db_(db), methods_(methods), translator_(db, methods),
        options_(options) {}

  /// Parses and executes a whole program; returns the result of the *last*
  /// retrieve (or null if the program has none).
  Result<ValuePtr> Execute(const std::string& program);

  /// Executes one parsed statement.
  Result<ValuePtr> ExecuteStatement(const Statement& stmt);

  /// Translates (without executing) a retrieve statement, returning the
  /// raw (unoptimized) algebra tree — the E of the equipollence proof.
  Result<ExprPtr> Translate(const std::string& retrieve_source);

  /// Runs an algebra tree through the session's evaluator (methods
  /// attached), used by the equipollence tests.
  Result<ValuePtr> EvalTree(const ExprPtr& tree);

  const Translator& translator() const { return translator_; }
  const std::vector<std::pair<std::string, ExprAstPtr>>& ranges() const {
    return ranges_;
  }

  /// Adjust budgets / cancellation between statements (e.g. relax a limit
  /// after a kResourceExhausted, or install a token mid-session).
  void set_limits(const ExecLimits& limits) { options_.limits = limits; }
  void set_cancel_token(CancelTokenPtr cancel) {
    options_.cancel = std::move(cancel);
  }

  /// Stats of the most recent EvalTree (governed evaluation), including
  /// peak_bytes. Cleared at the start of each evaluated statement.
  const EvalStats& last_stats() const { return last_stats_; }

  /// Report of the most recent `explain [analyze]` statement (null before
  /// the first one) — the programmatic access to EXPLAIN output: annotated
  /// plan trees, the rewrite trace, and (after analyze) per-node actuals.
  std::shared_ptr<const obs::ExplainReport> last_explain() const {
    return last_explain_;
  }

 private:
  Status ExecDefineType(const DefineTypeStmt& stmt);
  Status ExecCreate(const CreateStmt& stmt);
  Status ExecRange(const RangeStmt& stmt);
  Status ExecDefineFunction(const DefineFunctionStmt& stmt);
  Result<ValuePtr> ExecRetrieve(const RetrieveStmt& stmt);
  Status ExecAppend(const AppendStmt& stmt);
  Status ExecDelete(const DeleteStmt& stmt);
  Result<ValuePtr> ExecExplain(const ExplainStmt& stmt);

  /// The update plan ExecAppend evaluates (shared with EXPLAIN).
  Result<ExprPtr> AppendPlan(const AppendStmt& stmt);

  Database* db_;
  MethodRegistry* methods_;
  Translator translator_;
  Options options_;
  std::vector<std::pair<std::string, ExprAstPtr>> ranges_;
  EvalStats last_stats_;
  std::shared_ptr<const obs::ExplainReport> last_explain_;
};

}  // namespace excess

#endif  // EXCESS_EXCESS_SESSION_H_
