#ifndef EXCESS_EXCESS_AST_H_
#define EXCESS_EXCESS_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace excess {

// ----------------------------------------------------------------------------
// Surface type syntax (EXTRA DDL).
// ----------------------------------------------------------------------------

struct TypeAst;
using TypeAstPtr = std::shared_ptr<const TypeAst>;

struct TypeAst {
  enum class Kind {
    kNamed,  // int4, float4, char[] / char[n], bool, date, or a user type
    kTuple,  // ( f: T, ... )
    kSet,    // { T }
    kArray,  // array [1..n] of T / array of T
    kRef,    // ref T
  };
  Kind kind = Kind::kNamed;
  std::string name;                       // kNamed / kRef target
  std::vector<std::pair<std::string, TypeAstPtr>> fields;  // kTuple
  TypeAstPtr elem;                        // kSet / kArray
  std::optional<int64_t> array_size;      // kArray fixed length
};

// ----------------------------------------------------------------------------
// Expressions (DML).
// ----------------------------------------------------------------------------

struct ExprAst;
using ExprAstPtr = std::shared_ptr<const ExprAst>;
struct RetrieveStmt;

struct ExprAst {
  enum class Kind {
    kIntLit,
    kFloatLit,
    kStrLit,
    kBoolLit,
    kName,     // identifier: range var, named object, `this`, or parameter
    kField,    // base.f  (implicit deref through refs)
    kIndex,    // base[i] / base[last] — 1-based array extraction
    kSlice,    // base[lo..hi], bounds may be `last`
    kCall,     // base.f(args) method call, or builtin f(args)
    kAgg,      // agg(expr [from v in coll]... [where pred])
    kBinary,   // arithmetic + - * / % ; multiset ops union/intersect/-/+
    kCompare,  // predicate atom: l <op> r (op also `in`)
    kAnd, kOr, kNot,
    kSetLit,   // { e1, ..., en }
    kArrLit,   // [ e1, ..., en ]
    kTupLit,   // ( e1, ... ) or ( n1: e1, ... )
  };

  Kind kind = Kind::kIntLit;
  int64_t int_value = 0;
  double float_value = 0;
  bool bool_value = false;
  std::string text;  // kStrLit payload / kName / field / call or agg name /
                     // kBinary-kCompare operator spelling
  ExprAstPtr base;   // kField/kIndex/kSlice/kCall receiver; kNot/kAgg operand;
                     // kBinary/kCompare/kAnd/kOr lhs
  ExprAstPtr rhs;    // kBinary/kCompare/kAnd/kOr rhs; kIndex index; kSlice lo
  ExprAstPtr rhs2;   // kSlice hi
  bool index_is_last = false;  // kIndex
  bool lo_is_last = false;     // kSlice
  bool hi_is_last = false;     // kSlice
  std::vector<ExprAstPtr> args;  // kCall arguments; kSetLit/kArrLit elements
  std::vector<std::pair<std::string, ExprAstPtr>> named_args;  // kTupLit
  // kAgg correlated iteration: `from v in coll` clauses plus `where`.
  std::vector<std::pair<std::string, ExprAstPtr>> agg_from;
  ExprAstPtr agg_where;
};

// ----------------------------------------------------------------------------
// Statements.
// ----------------------------------------------------------------------------

struct DefineTypeStmt {
  std::string name;
  TypeAstPtr body;  // tuple type in practice, any type allowed
  std::vector<std::string> inherits;
};

struct CreateStmt {
  std::string name;
  TypeAstPtr type;
};

struct RangeStmt {
  std::string var;
  ExprAstPtr collection;
};

struct FromClause {
  std::string var;
  ExprAstPtr collection;
};

struct RetrieveStmt {
  bool unique = false;
  /// Target expressions with optional display names.
  std::vector<std::pair<std::string, ExprAstPtr>> targets;
  std::vector<ExprAstPtr> by;  // grouping expressions
  std::vector<FromClause> from;
  ExprAstPtr where;  // boolean ExprAst or null
  std::string into;  // "" when absent
};

struct DefineFunctionStmt {
  std::string type_name;
  std::string func_name;
  std::vector<std::pair<std::string, TypeAstPtr>> params;
  TypeAstPtr returns;
  /// The paper's methods are EXCESS statement sequences; we support the
  /// common single-retrieve body.
  std::shared_ptr<RetrieveStmt> body;
};

/// `append [all] <expr> to <Name>`: adds one occurrence of the value — or,
/// with `all`, every occurrence of a multiset value — to a named multiset.
struct AppendStmt {
  bool all = false;
  ExprAstPtr value;
  std::string target;
};

/// `delete <Name> where <pred>`: removes the occurrences of the named
/// multiset satisfying the predicate (the name doubles as the element
/// variable inside the predicate). Occurrences with an unknown predicate
/// are retained.
struct DeleteStmt {
  std::string target;
  ExprAstPtr where;
};

struct Statement;

/// `explain [analyze] [(trace | json | analyze, ...)] <stmt>`: renders the
/// inner statement's logical/physical plans (with per-node actuals under
/// `analyze`) instead of committing its effect. `explain analyze` of a
/// mutation (append / delete / retrieve into) executes the plan but never
/// stores the result. The keywords are context-sensitive identifiers — no
/// statement can otherwise begin with one, so existing programs parse
/// unchanged.
struct ExplainStmt {
  bool analyze = false;
  bool trace = false;  // include the rewrite trace in the rendering
  bool json = false;   // emit the JSON schema instead of the pretty tree
  std::shared_ptr<Statement> inner;  // retrieve / append / delete
};

/// `create index <name> on <Set> (a.b.c) [using hash | using ordered]`:
/// builds a persistent secondary index over a named top-level multiset,
/// keyed by the (possibly ref-traversing) attribute path. An empty path
/// `()` keys the elements themselves (an identity index). Default kind is
/// hash; `ordered` also serves range predicates.
struct CreateIndexStmt {
  std::string name;
  std::string target;              // the named multiset
  std::vector<std::string> path;   // attribute path; empty = identity
  bool ordered = false;
};

/// `drop index <name>`: removes the index (never the data).
struct DropIndexStmt {
  std::string name;
};

/// `open "<path>"`: attaches the session to a durable database file,
/// recovering its state (snapshot + WAL replay). Subsequent mutations are
/// logged. `checkpoint` folds the WAL into a fresh snapshot.
struct OpenStmt {
  std::string path;
};

struct Statement {
  enum class Kind {
    kDefineType, kCreate, kRange, kRetrieve, kDefineFunction, kAppend,
    kDelete, kExplain, kOpen, kCheckpoint,
    // Session transactions: `begin` stages subsequent mutations, `commit`
    // makes them durable as one atomic WAL group, `rollback` discards them.
    kBegin, kCommit, kRollback,
    // Secondary index DDL.
    kCreateIndex, kDropIndex,
  };
  Kind kind = Kind::kRetrieve;
  std::shared_ptr<DefineTypeStmt> define_type;
  std::shared_ptr<CreateStmt> create;
  std::shared_ptr<RangeStmt> range;
  std::shared_ptr<RetrieveStmt> retrieve;
  std::shared_ptr<DefineFunctionStmt> define_function;
  std::shared_ptr<AppendStmt> append;
  std::shared_ptr<DeleteStmt> del;
  std::shared_ptr<ExplainStmt> explain;
  std::shared_ptr<OpenStmt> open;
  std::shared_ptr<CreateIndexStmt> create_index;
  std::shared_ptr<DropIndexStmt> drop_index;
  /// Verbatim source text of this statement (leading/trailing whitespace
  /// trimmed, no trailing ';'). The storage engine logs mutations by source,
  /// so replay re-executes exactly what was committed. Empty for statements
  /// built programmatically rather than parsed.
  std::string source;
};

using Program = std::vector<Statement>;

}  // namespace excess

#endif  // EXCESS_EXCESS_AST_H_
