#ifndef EXCESS_EXCESS_PARSER_H_
#define EXCESS_EXCESS_PARSER_H_

#include <string>

#include "excess/ast.h"
#include "util/status.h"

namespace excess {

/// Parses a complete EXCESS program (any number of statements, optionally
/// separated by semicolons).
Result<Program> Parse(const std::string& source);

/// Parses a single statement.
Result<Statement> ParseStatement(const std::string& source);

}  // namespace excess

#endif  // EXCESS_EXCESS_PARSER_H_
