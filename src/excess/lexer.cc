#include "excess/lexer.h"

#include <cctype>
#include <charconv>
#include <map>

#include "util/string_util.h"

namespace excess {

const char* TokKindToString(TokKind kind) {
  switch (kind) {
    case TokKind::kEof: return "<eof>";
    case TokKind::kIdent: return "identifier";
    case TokKind::kIntLit: return "integer";
    case TokKind::kFloatLit: return "float";
    case TokKind::kStrLit: return "string";
    case TokKind::kDefine: return "define";
    case TokKind::kType: return "type";
    case TokKind::kCreate: return "create";
    case TokKind::kRange: return "range";
    case TokKind::kOf: return "of";
    case TokKind::kIs: return "is";
    case TokKind::kRetrieve: return "retrieve";
    case TokKind::kUnique: return "unique";
    case TokKind::kFrom: return "from";
    case TokKind::kIn: return "in";
    case TokKind::kWhere: return "where";
    case TokKind::kBy: return "by";
    case TokKind::kInto: return "into";
    case TokKind::kInherits: return "inherits";
    case TokKind::kFunction: return "function";
    case TokKind::kReturns: return "returns";
    case TokKind::kArray: return "array";
    case TokKind::kRef: return "ref";
    case TokKind::kAnd: return "and";
    case TokKind::kOr: return "or";
    case TokKind::kNot: return "not";
    case TokKind::kUnion: return "union";
    case TokKind::kIntersect: return "intersect";
    case TokKind::kTrue: return "true";
    case TokKind::kFalse: return "false";
    case TokKind::kThis: return "this";
    case TokKind::kLast: return "last";
    case TokKind::kAppend: return "append";
    case TokKind::kAll: return "all";
    case TokKind::kTo: return "to";
    case TokKind::kDelete: return "delete";
    case TokKind::kLParen: return "(";
    case TokKind::kRParen: return ")";
    case TokKind::kLBrace: return "{";
    case TokKind::kRBrace: return "}";
    case TokKind::kLBracket: return "[";
    case TokKind::kRBracket: return "]";
    case TokKind::kComma: return ",";
    case TokKind::kColon: return ":";
    case TokKind::kSemicolon: return ";";
    case TokKind::kDot: return ".";
    case TokKind::kDotDot: return "..";
    case TokKind::kEq: return "=";
    case TokKind::kNe: return "!=";
    case TokKind::kLt: return "<";
    case TokKind::kLe: return "<=";
    case TokKind::kGt: return ">";
    case TokKind::kGe: return ">=";
    case TokKind::kPlus: return "+";
    case TokKind::kMinus: return "-";
    case TokKind::kStar: return "*";
    case TokKind::kSlash: return "/";
    case TokKind::kPercent: return "%";
  }
  return "?";
}

namespace {

const std::map<std::string, TokKind>& Keywords() {
  static const auto* kKeywords = new std::map<std::string, TokKind>{
      {"define", TokKind::kDefine},     {"type", TokKind::kType},
      {"create", TokKind::kCreate},     {"range", TokKind::kRange},
      {"of", TokKind::kOf},             {"is", TokKind::kIs},
      {"retrieve", TokKind::kRetrieve}, {"unique", TokKind::kUnique},
      {"from", TokKind::kFrom},         {"in", TokKind::kIn},
      {"where", TokKind::kWhere},       {"by", TokKind::kBy},
      {"into", TokKind::kInto},         {"inherits", TokKind::kInherits},
      {"function", TokKind::kFunction}, {"returns", TokKind::kReturns},
      {"array", TokKind::kArray},       {"ref", TokKind::kRef},
      {"and", TokKind::kAnd},           {"or", TokKind::kOr},
      {"not", TokKind::kNot},           {"union", TokKind::kUnion},
      {"intersect", TokKind::kIntersect}, {"true", TokKind::kTrue},
      {"false", TokKind::kFalse},       {"this", TokKind::kThis},
      {"last", TokKind::kLast},         {"append", TokKind::kAppend},
      {"all", TokKind::kAll},           {"to", TokKind::kTo},
      {"delete", TokKind::kDelete},
  };
  return *kKeywords;
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& src) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  int col = 1;
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n && i < src.size(); ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };
  // First byte of the token currently being lexed; some branches push the
  // token only after consuming it, when `i` is already past the end.
  size_t tok_start = 0;
  auto push = [&](TokKind kind, std::string text = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.column = col;
    t.offset = tok_start;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    if (c == '-' && i + 1 < src.size() && src[i + 1] == '-') {
      while (i < src.size() && src[i] != '\n') advance(1);
      continue;
    }
    tok_start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '_')) {
        advance(1);
      }
      std::string word = src.substr(start, i - start);
      auto kw = Keywords().find(word);
      if (kw != Keywords().end()) {
        push(kw->second, word);
      } else {
        push(TokKind::kIdent, word);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) {
        advance(1);
      }
      // "1..5" must lex as 1, .., 5 — only treat '.' as a decimal point
      // when not followed by another '.'.
      if (i + 1 < src.size() && src[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(src[i + 1]))) {
        is_float = true;
        advance(1);
        while (i < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[i]))) {
          advance(1);
        }
      }
      std::string num = src.substr(start, i - start);
      Token t;
      t.kind = is_float ? TokKind::kFloatLit : TokKind::kIntLit;
      t.text = num;
      t.line = line;
      t.column = col;
      t.offset = tok_start;
      // from_chars, not stod/stoll: out-of-range literals must surface as a
      // parse error, never as an exception escaping Lex().
      if (is_float) {
        auto res = std::from_chars(num.data(), num.data() + num.size(),
                                   t.float_value);
        if (res.ec != std::errc() || res.ptr != num.data() + num.size()) {
          return Status::ParseError(
              StrCat("float literal '", num, "' out of range at line ", line));
        }
      } else {
        auto res = std::from_chars(num.data(), num.data() + num.size(),
                                   t.int_value);
        if (res.ec != std::errc() || res.ptr != num.data() + num.size()) {
          return Status::ParseError(StrCat("integer literal '", num,
                                           "' out of range at line ", line));
        }
      }
      out.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      advance(1);
      std::string text;
      bool closed = false;
      while (i < src.size()) {
        if (src[i] == '"') {
          closed = true;
          advance(1);
          break;
        }
        if (src[i] == '\\' && i + 1 < src.size()) {
          advance(1);
          char esc = src[i];
          text.push_back(esc == 'n' ? '\n' : (esc == 't' ? '\t' : esc));
          advance(1);
          continue;
        }
        text.push_back(src[i]);
        advance(1);
      }
      if (!closed) {
        return Status::ParseError(
            StrCat("unterminated string literal at line ", line));
      }
      push(TokKind::kStrLit, text);
      continue;
    }
    auto two = [&](char second) {
      return i + 1 < src.size() && src[i + 1] == second;
    };
    switch (c) {
      case '(': push(TokKind::kLParen); advance(1); break;
      case ')': push(TokKind::kRParen); advance(1); break;
      case '{': push(TokKind::kLBrace); advance(1); break;
      case '}': push(TokKind::kRBrace); advance(1); break;
      case '[': push(TokKind::kLBracket); advance(1); break;
      case ']': push(TokKind::kRBracket); advance(1); break;
      case ',': push(TokKind::kComma); advance(1); break;
      case ':': push(TokKind::kColon); advance(1); break;
      case ';': push(TokKind::kSemicolon); advance(1); break;
      case '.':
        if (two('.')) {
          push(TokKind::kDotDot);
          advance(2);
        } else {
          push(TokKind::kDot);
          advance(1);
        }
        break;
      case '=': push(TokKind::kEq); advance(1); break;
      case '!':
        if (!two('=')) {
          return Status::ParseError(StrCat("stray '!' at line ", line));
        }
        push(TokKind::kNe);
        advance(2);
        break;
      case '<':
        if (two('=')) {
          push(TokKind::kLe);
          advance(2);
        } else if (two('>')) {
          push(TokKind::kNe);
          advance(2);
        } else {
          push(TokKind::kLt);
          advance(1);
        }
        break;
      case '>':
        if (two('=')) {
          push(TokKind::kGe);
          advance(2);
        } else {
          push(TokKind::kGt);
          advance(1);
        }
        break;
      case '+': push(TokKind::kPlus); advance(1); break;
      case '-': push(TokKind::kMinus); advance(1); break;
      case '*': push(TokKind::kStar); advance(1); break;
      case '/': push(TokKind::kSlash); advance(1); break;
      case '%': push(TokKind::kPercent); advance(1); break;
      default:
        return Status::ParseError(
            StrCat("unexpected character '", std::string(1, c), "' at line ",
                   line, ", column ", col));
    }
  }
  tok_start = src.size();
  push(TokKind::kEof);
  return out;
}

}  // namespace excess
