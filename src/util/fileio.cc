#include "util/fileio.h"

#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/string_util.h"

namespace excess {
namespace util {

namespace {

std::string ErrnoMessage(const char* op, const std::string& path) {
  return StrCat(op, " '", path, "': ", std::strerror(errno));
}

}  // namespace

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound(StrCat("no such file '", path, "'"));
    }
    return Status::Invalid(ErrnoMessage("open", path));
  }
  std::string out;
  std::array<char, 1 << 16> buf;
  size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), f)) > 0) {
    out.append(buf.data(), n);
  }
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::Invalid(ErrnoMessage("read", path));
  return out;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

Status WriteFileAtomic(const std::string& path, std::string_view data,
                       bool sync) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::Invalid(ErrnoMessage("open", tmp));
  bool ok = data.empty() ||
            std::fwrite(data.data(), 1, data.size(), f) == data.size();
  ok = ok && std::fflush(f) == 0;
  if (ok && sync) ok = ::fsync(fileno(f)) == 0;
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Invalid(ErrnoMessage("write", tmp));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Invalid(ErrnoMessage("rename", path));
  }
  return Status::OK();
}

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  // Table-driven CRC-32 (IEEE, reflected). The table is built once.
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = ~seed;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace util
}  // namespace excess
