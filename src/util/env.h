#ifndef EXCESS_UTIL_ENV_H_
#define EXCESS_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace excess {
namespace util {

/// Strict environment-knob parser, shared by every EXCESS_* integer knob
/// (EXCESS_THREADS, EXCESS_DEADLINE_MS, EXCESS_MEM_LIMIT_MB,
/// EXCESS_WAL_FSYNC, ...): the whole string must be a base-10 integer in
/// [lo, hi]. Anything else — null, empty, leading whitespace or sign,
/// trailing junk ("4x"), overflow, out of range — yields `fallback`. A knob
/// never half-applies: it is either a valid value or ignored.
int64_t ParseEnvInt(const char* value, int64_t lo, int64_t hi,
                    int64_t fallback);

/// getenv + ParseEnvInt.
int64_t EnvInt(const char* name, int64_t lo, int64_t hi, int64_t fallback);

/// String-valued knob (e.g. EXCESS_DB_PATH, EXCESS_METRICS_PATH): the
/// variable's value, or "" when unset or empty.
std::string EnvString(const char* name);

}  // namespace util
}  // namespace excess

#endif  // EXCESS_UTIL_ENV_H_
