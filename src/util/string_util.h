#ifndef EXCESS_UTIL_STRING_UTIL_H_
#define EXCESS_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

namespace excess {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
inline std::string Join(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

/// Streams all arguments into one string; the library's lightweight
/// replacement for absl::StrCat.
template <typename... Args>
std::string StrCat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace excess

#endif  // EXCESS_UTIL_STRING_UTIL_H_
