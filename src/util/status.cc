#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace excess {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalid:
      return "Invalid";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kEvalError:
      return "EvalError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kVersionMismatch:
      return "VersionMismatch";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Result<T>::ValueOrDie on error state: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace excess
