#ifndef EXCESS_UTIL_HASH_H_
#define EXCESS_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace excess {

/// 64-bit FNV-1a, the workhorse hash for deep value hashing. Deterministic
/// across runs so that test expectations involving hash-ordered containers
/// are reproducible.
inline uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;

inline uint64_t HashBytes(const void* data, size_t len) {
  return Fnv1a64(data, len, kFnvOffsetBasis);
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

/// Order-sensitive hash combiner (boost-style).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

/// Order-insensitive combiner, used for multiset hashing where element
/// order must not affect the hash.
inline uint64_t HashMixUnordered(uint64_t acc, uint64_t h) { return acc + h * 31; }

}  // namespace excess

#endif  // EXCESS_UTIL_HASH_H_
