#include "util/env.h"

#include <cerrno>
#include <cstdlib>

namespace excess {
namespace util {

int64_t ParseEnvInt(const char* value, int64_t lo, int64_t hi,
                    int64_t fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  // strtoll skips leading whitespace and accepts signs; the knobs don't.
  if (!(*value >= '0' && *value <= '9')) return fallback;
  errno = 0;
  char* end = nullptr;
  long long n = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE) return fallback;
  if (n < lo || n > hi) return fallback;
  return static_cast<int64_t>(n);
}

int64_t EnvInt(const char* name, int64_t lo, int64_t hi, int64_t fallback) {
  return ParseEnvInt(std::getenv(name), lo, hi, fallback);
}

std::string EnvString(const char* name) {
  const char* v = std::getenv(name);
  return v == nullptr ? std::string() : std::string(v);
}

}  // namespace util
}  // namespace excess
