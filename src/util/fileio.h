#ifndef EXCESS_UTIL_FILEIO_H_
#define EXCESS_UTIL_FILEIO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace excess {
namespace util {

/// Whole-file read. NotFound when the file does not exist, Invalid on any
/// other I/O failure. Binary-safe.
Result<std::string> ReadFile(const std::string& path);

/// True iff the path names an existing file (any kind).
bool FileExists(const std::string& path);

/// Crash-atomic whole-file write: the data goes to `path + ".tmp"`, is
/// flushed (and fsync'd when `sync` is set), and the temp file is renamed
/// over `path`. rename(2) on the same filesystem is atomic, so a reader —
/// including a crash-recovery pass — sees either the old contents or the
/// complete new contents, never a truncated mix. Used by snapshot writes
/// and the EXCESS_METRICS_PATH exit dump.
Status WriteFileAtomic(const std::string& path, std::string_view data,
                       bool sync);

/// CRC-32 (IEEE 802.3 polynomial, reflected). `seed` chains incremental
/// computations; pass the previous return value to continue a stream.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace util
}  // namespace excess

#endif  // EXCESS_UTIL_FILEIO_H_
