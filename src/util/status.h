#ifndef EXCESS_UTIL_STATUS_H_
#define EXCESS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <type_traits>
#include <utility>

namespace excess {

/// Error categories used across the library. The algebra layer reports
/// kTypeError for schema-inference failures and kEvalError for runtime
/// evaluation failures; the language layer reports kParseError.
enum class StatusCode {
  kOk = 0,
  kInvalid,        // malformed input or argument
  kTypeError,      // schema / type-inference violation
  kEvalError,      // runtime evaluation failure
  kParseError,     // EXCESS lexer/parser failure
  kNotFound,       // missing catalog entry, OID, field, ...
  kAlreadyExists,  // duplicate definition
  kUnsupported,    // feature intentionally out of scope
  kInternal,       // invariant violation (a bug in this library)
  kResourceExhausted,  // governor budget exceeded (memory / occurrences /
                       // recursion depth)
  kDeadlineExceeded,   // governor wall-clock deadline passed
  kCancelled,          // query cancelled via CancelToken
  kDataLoss,           // storage corruption or failed durable write
  kUnavailable,        // server draining / connection refused; retry later
  kVersionMismatch,    // wire-protocol version skew between client and server
};

/// Returns a stable human-readable name ("TypeError", ...) for a code.
const char* StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object. Functions that can fail return Status
/// (or Result<T> below) instead of throwing; exceptions never cross the
/// public API boundary.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalid, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status EvalError(std::string msg) {
    return Status(StatusCode::kEvalError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status VersionMismatch(std::string msg) {
    return Status(StatusCode::kVersionMismatch, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsTypeError() const { return code_ == StatusCode::kTypeError; }
  bool IsEvalError() const { return code_ == StatusCode::kEvalError; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsVersionMismatch() const {
    return code_ == StatusCode::kVersionMismatch;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-status holder. Result<T> is in the error state iff its status
/// is not OK; accessing the value in the error state aborts (it indicates a
/// missing EXA_RETURN_NOT_OK in the caller, i.e., a bug).
template <typename T>
class Result {
 public:
  /// Accepts anything constructible into T (e.g. shared_ptr<X> into
  /// shared_ptr<const X>), but never a Status or another Result.
  template <typename U,
            typename = std::enable_if_t<
                std::is_constructible_v<T, U&&> &&
                !std::is_same_v<std::decay_t<U>, Result<T>> &&
                !std::is_same_v<std::decay_t<U>, Status>>>
  Result(U&& value)  // NOLINT(runtime/explicit)
      : value_(std::forward<U>(value)) {}
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    CheckOk();
    return *value_;
  }
  T& ValueOrDie() & {
    CheckOk();
    return *value_;
  }
  T ValueOrDie() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void CheckOk() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::CheckOk() const {
  if (!status_.ok() || !value_.has_value()) {
    internal::DieOnBadResult(status_);
  }
}

}  // namespace excess

/// Propagates a non-OK Status out of the enclosing function.
#define EXA_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::excess::Status _exa_st = (expr);          \
    if (!_exa_st.ok()) return _exa_st;          \
  } while (0)

#define EXA_CONCAT_IMPL(a, b) a##b
#define EXA_CONCAT(a, b) EXA_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error propagates the status, on
/// success assigns the value to `lhs` (which may be a declaration).
#define EXA_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  EXA_ASSIGN_OR_RETURN_IMPL(EXA_CONCAT(_exa_result_, __LINE__), lhs, rexpr)

#define EXA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie();

#endif  // EXCESS_UTIL_STATUS_H_
