#include "storage/serialize.h"

#include <cstring>

#include "util/string_util.h"

namespace excess {
namespace storage {

namespace {

/// Value / schema trees deeper than this are rejected at decode time. The
/// parser caps expression nesting at 200, so no legitimately persisted
/// value comes near it; the cap exists to bound recursion on corrupt input.
constexpr int kMaxDecodeDepth = 256;

Result<ValuePtr> DecodeValueAt(Reader* r, int depth);
Result<SchemaPtr> DecodeSchemaAt(Reader* r, int depth);

}  // namespace

// ---------------------------------------------------------------------------
// Writer / Reader primitives.
// ---------------------------------------------------------------------------

void Writer::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void Writer::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void Writer::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void Writer::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

Status Reader::Need(size_t n) const {
  if (size_ - pos_ < n) {
    return Status::DataLoss(
        StrCat("truncated record: need ", n, " bytes, have ", size_ - pos_));
  }
  return Status::OK();
}

Result<uint8_t> Reader::U8() {
  EXA_RETURN_NOT_OK(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> Reader::U32() {
  EXA_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> Reader::U64() {
  EXA_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> Reader::I64() {
  EXA_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<double> Reader::F64() {
  EXA_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> Reader::Str() {
  EXA_ASSIGN_OR_RETURN(uint32_t len, U32());
  EXA_RETURN_NOT_OK(Need(len));
  std::string s(data_ + pos_, len);
  pos_ += len;
  return s;
}

Result<uint32_t> Reader::Count(size_t min_elem_bytes) {
  EXA_ASSIGN_OR_RETURN(uint32_t n, U32());
  if (min_elem_bytes > 0 &&
      static_cast<uint64_t>(n) * min_elem_bytes > remaining()) {
    return Status::DataLoss(
        StrCat("implausible element count ", n, " with ", remaining(),
               " bytes remaining"));
  }
  return n;
}

// ---------------------------------------------------------------------------
// Value codec.
// ---------------------------------------------------------------------------

void EncodeValue(const ValuePtr& v, Writer* w) {
  w->U8(static_cast<uint8_t>(v->kind()));
  switch (v->kind()) {
    case ValueKind::kInt:
    case ValueKind::kDate:
      w->I64(v->as_int());
      return;
    case ValueKind::kFloat:
      w->F64(v->as_float());
      return;
    case ValueKind::kString:
      w->Str(v->as_string());
      return;
    case ValueKind::kBool:
      w->U8(v->as_bool() ? 1 : 0);
      return;
    case ValueKind::kDne:
    case ValueKind::kUnk:
      return;
    case ValueKind::kTuple: {
      w->Str(v->type_tag());
      w->U32(static_cast<uint32_t>(v->num_fields()));
      for (size_t i = 0; i < v->num_fields(); ++i) {
        w->Str(v->field_names()[i]);
        EncodeValue(v->field_values()[i], w);
      }
      return;
    }
    case ValueKind::kSet: {
      w->U32(static_cast<uint32_t>(v->entries().size()));
      for (const auto& e : v->entries()) {
        w->I64(e.count);
        EncodeValue(e.value, w);
      }
      return;
    }
    case ValueKind::kArray: {
      w->U32(static_cast<uint32_t>(v->elems().size()));
      for (const auto& e : v->elems()) EncodeValue(e, w);
      return;
    }
    case ValueKind::kRef:
      w->U32(v->oid().type_id);
      w->U64(v->oid().serial);
      return;
  }
}

namespace {

Result<ValuePtr> DecodeValueAt(Reader* r, int depth) {
  if (depth > kMaxDecodeDepth) {
    return Status::DataLoss("value nesting exceeds decode depth limit");
  }
  EXA_ASSIGN_OR_RETURN(uint8_t tag, r->U8());
  switch (static_cast<ValueKind>(tag)) {
    case ValueKind::kInt: {
      EXA_ASSIGN_OR_RETURN(int64_t v, r->I64());
      return Value::Int(v);
    }
    case ValueKind::kDate: {
      EXA_ASSIGN_OR_RETURN(int64_t v, r->I64());
      return Value::Date(v);
    }
    case ValueKind::kFloat: {
      EXA_ASSIGN_OR_RETURN(double v, r->F64());
      return Value::Float(v);
    }
    case ValueKind::kString: {
      EXA_ASSIGN_OR_RETURN(std::string v, r->Str());
      return Value::Str(std::move(v));
    }
    case ValueKind::kBool: {
      EXA_ASSIGN_OR_RETURN(uint8_t v, r->U8());
      return Value::Bool(v != 0);
    }
    case ValueKind::kDne:
      return Value::Dne();
    case ValueKind::kUnk:
      return Value::Unk();
    case ValueKind::kTuple: {
      EXA_ASSIGN_OR_RETURN(std::string type_tag, r->Str());
      EXA_ASSIGN_OR_RETURN(uint32_t n, r->Count(5));
      std::vector<std::string> names;
      std::vector<ValuePtr> vals;
      names.reserve(n);
      vals.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        EXA_ASSIGN_OR_RETURN(std::string name, r->Str());
        EXA_ASSIGN_OR_RETURN(ValuePtr v, DecodeValueAt(r, depth + 1));
        names.push_back(std::move(name));
        vals.push_back(std::move(v));
      }
      return Value::Tuple(std::move(names), std::move(vals),
                          std::move(type_tag));
    }
    case ValueKind::kSet: {
      EXA_ASSIGN_OR_RETURN(uint32_t n, r->Count(9));
      std::vector<SetEntry> entries;
      entries.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        EXA_ASSIGN_OR_RETURN(int64_t count, r->I64());
        EXA_ASSIGN_OR_RETURN(ValuePtr v, DecodeValueAt(r, depth + 1));
        entries.push_back(SetEntry{std::move(v), count});
      }
      // SetOfCounted normalizes; encoded entries are already normalized, so
      // the round trip preserves entry order and counts exactly.
      return Value::SetOfCounted(std::move(entries));
    }
    case ValueKind::kArray: {
      EXA_ASSIGN_OR_RETURN(uint32_t n, r->Count(1));
      std::vector<ValuePtr> elems;
      elems.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        EXA_ASSIGN_OR_RETURN(ValuePtr v, DecodeValueAt(r, depth + 1));
        elems.push_back(std::move(v));
      }
      return Value::ArrayOf(std::move(elems));
    }
    case ValueKind::kRef: {
      EXA_ASSIGN_OR_RETURN(uint32_t type_id, r->U32());
      EXA_ASSIGN_OR_RETURN(uint64_t serial, r->U64());
      return Value::RefTo(Oid{type_id, serial});
    }
  }
  return Status::DataLoss(StrCat("unknown value kind tag ", static_cast<int>(tag)));
}

}  // namespace

Result<ValuePtr> DecodeValue(Reader* r) { return DecodeValueAt(r, 0); }

// ---------------------------------------------------------------------------
// Schema codec.
// ---------------------------------------------------------------------------

void EncodeSchema(const SchemaPtr& s, Writer* w) {
  w->U8(static_cast<uint8_t>(s->ctor()));
  w->Str(s->type_name());
  switch (s->ctor()) {
    case TypeCtor::kVal:
      w->U8(static_cast<uint8_t>(s->scalar_kind()));
      return;
    case TypeCtor::kTup:
      w->U32(static_cast<uint32_t>(s->fields().size()));
      for (const auto& f : s->fields()) {
        w->Str(f.name);
        EncodeSchema(f.type, w);
      }
      return;
    case TypeCtor::kSet:
      EncodeSchema(s->elem(), w);
      return;
    case TypeCtor::kArr:
      w->U8(s->fixed_size().has_value() ? 1 : 0);
      if (s->fixed_size().has_value()) w->I64(*s->fixed_size());
      EncodeSchema(s->elem(), w);
      return;
    case TypeCtor::kRef:
      w->Str(s->ref_target());
      return;
  }
}

namespace {

Result<SchemaPtr> DecodeSchemaAt(Reader* r, int depth) {
  if (depth > kMaxDecodeDepth) {
    return Status::DataLoss("schema nesting exceeds decode depth limit");
  }
  EXA_ASSIGN_OR_RETURN(uint8_t ctor_tag, r->U8());
  EXA_ASSIGN_OR_RETURN(std::string type_name, r->Str());
  SchemaPtr s;
  switch (static_cast<TypeCtor>(ctor_tag)) {
    case TypeCtor::kVal: {
      EXA_ASSIGN_OR_RETURN(uint8_t kind, r->U8());
      if (kind > static_cast<uint8_t>(ScalarKind::kAny)) {
        return Status::DataLoss(StrCat("unknown scalar kind tag ", static_cast<int>(kind)));
      }
      s = Schema::Val(static_cast<ScalarKind>(kind));
      break;
    }
    case TypeCtor::kTup: {
      EXA_ASSIGN_OR_RETURN(uint32_t n, r->Count(6));
      std::vector<Field> fields;
      fields.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        EXA_ASSIGN_OR_RETURN(std::string name, r->Str());
        EXA_ASSIGN_OR_RETURN(SchemaPtr ft, DecodeSchemaAt(r, depth + 1));
        fields.push_back(Field{std::move(name), std::move(ft)});
      }
      s = Schema::Tup(std::move(fields));
      break;
    }
    case TypeCtor::kSet: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr elem, DecodeSchemaAt(r, depth + 1));
      s = Schema::Set(std::move(elem));
      break;
    }
    case TypeCtor::kArr: {
      EXA_ASSIGN_OR_RETURN(uint8_t has_size, r->U8());
      int64_t size = 0;
      if (has_size != 0) {
        EXA_ASSIGN_OR_RETURN(size, r->I64());
      }
      EXA_ASSIGN_OR_RETURN(SchemaPtr elem, DecodeSchemaAt(r, depth + 1));
      s = has_size != 0 ? Schema::FixedArr(std::move(elem), size)
                        : Schema::Arr(std::move(elem));
      break;
    }
    case TypeCtor::kRef: {
      EXA_ASSIGN_OR_RETURN(std::string target, r->Str());
      s = Schema::Ref(std::move(target));
      break;
    }
    default:
      return Status::DataLoss(StrCat("unknown type ctor tag ", static_cast<int>(ctor_tag)));
  }
  if (!type_name.empty()) s = Schema::Named(s, std::move(type_name));
  return s;
}

}  // namespace

Result<SchemaPtr> DecodeSchema(Reader* r) { return DecodeSchemaAt(r, 0); }

// ---------------------------------------------------------------------------
// Snapshot payload.
// ---------------------------------------------------------------------------

std::string EncodeSnapshotPayload(const SnapshotState& state) {
  Writer w;
  w.U64(state.seq);

  w.U32(static_cast<uint32_t>(state.types.size()));
  for (const auto& def : state.types) {
    w.Str(def.name);
    EncodeSchema(def.declared, &w);
    w.U32(static_cast<uint32_t>(def.parents.size()));
    for (const auto& p : def.parents) w.Str(p);
  }

  const auto& store = state.store;
  w.U32(static_cast<uint32_t>(store.id_names.size()));
  for (const auto& name : store.id_names) w.Str(name);
  w.U32(static_cast<uint32_t>(store.next_serial.size()));
  for (const auto& [name, serial] : store.next_serial) {
    w.Str(name);
    w.U64(serial);
  }
  w.U32(static_cast<uint32_t>(store.objects.size()));
  for (const auto& obj : store.objects) {
    w.U32(obj.oid.type_id);
    w.U64(obj.oid.serial);
    w.Str(obj.allocation_type);
    w.Str(obj.exact_type);
    EncodeValue(obj.value, &w);
  }
  w.U32(static_cast<uint32_t>(store.interned.size()));
  for (const auto& entry : store.interned) {
    w.Str(entry.type);
    w.U32(entry.oid.type_id);
    w.U64(entry.oid.serial);
    EncodeValue(entry.key, &w);
  }

  w.U32(static_cast<uint32_t>(state.named.size()));
  for (const auto& named : state.named) {
    w.Str(named.name);
    EncodeSchema(named.schema, &w);
    EncodeValue(named.value, &w);
  }

  w.U32(static_cast<uint32_t>(state.context.size()));
  for (const auto& src : state.context) w.Str(src);

  // v2: secondary index definitions. Decoders treat this section as
  // optional, so v1 files (which end right after the context sources)
  // still decode.
  w.U32(static_cast<uint32_t>(state.indexes.size()));
  for (const auto& def : state.indexes) {
    w.Str(def.name);
    w.Str(def.set_name);
    w.U32(static_cast<uint32_t>(def.path.size()));
    for (const auto& field : def.path) w.Str(field);
    w.U8(def.kind == IndexKind::kOrdered ? 1 : 0);
  }

  return w.Take();
}

Result<SnapshotState> DecodeSnapshotPayload(const std::string& payload) {
  Reader r(payload);
  SnapshotState state;
  EXA_ASSIGN_OR_RETURN(state.seq, r.U64());

  EXA_ASSIGN_OR_RETURN(uint32_t ntypes, r.Count(8));
  state.types.reserve(ntypes);
  for (uint32_t i = 0; i < ntypes; ++i) {
    Catalog::TypeDef def;
    EXA_ASSIGN_OR_RETURN(def.name, r.Str());
    EXA_ASSIGN_OR_RETURN(def.declared, DecodeSchema(&r));
    EXA_ASSIGN_OR_RETURN(uint32_t nparents, r.Count(4));
    def.parents.reserve(nparents);
    for (uint32_t p = 0; p < nparents; ++p) {
      EXA_ASSIGN_OR_RETURN(std::string parent, r.Str());
      def.parents.push_back(std::move(parent));
    }
    state.types.push_back(std::move(def));
  }

  EXA_ASSIGN_OR_RETURN(uint32_t nids, r.Count(4));
  state.store.id_names.reserve(nids);
  for (uint32_t i = 0; i < nids; ++i) {
    EXA_ASSIGN_OR_RETURN(std::string name, r.Str());
    state.store.id_names.push_back(std::move(name));
  }
  EXA_ASSIGN_OR_RETURN(uint32_t nserial, r.Count(12));
  state.store.next_serial.reserve(nserial);
  for (uint32_t i = 0; i < nserial; ++i) {
    EXA_ASSIGN_OR_RETURN(std::string name, r.Str());
    EXA_ASSIGN_OR_RETURN(uint64_t serial, r.U64());
    state.store.next_serial.emplace_back(std::move(name), serial);
  }
  EXA_ASSIGN_OR_RETURN(uint32_t nobjs, r.Count(21));
  state.store.objects.reserve(nobjs);
  for (uint32_t i = 0; i < nobjs; ++i) {
    ObjectStore::StoreDump::ObjDump obj;
    EXA_ASSIGN_OR_RETURN(obj.oid.type_id, r.U32());
    EXA_ASSIGN_OR_RETURN(obj.oid.serial, r.U64());
    EXA_ASSIGN_OR_RETURN(obj.allocation_type, r.Str());
    EXA_ASSIGN_OR_RETURN(obj.exact_type, r.Str());
    EXA_ASSIGN_OR_RETURN(obj.value, DecodeValue(&r));
    state.store.objects.push_back(std::move(obj));
  }
  EXA_ASSIGN_OR_RETURN(uint32_t nintern, r.Count(17));
  state.store.interned.reserve(nintern);
  for (uint32_t i = 0; i < nintern; ++i) {
    ObjectStore::StoreDump::InternDump entry;
    EXA_ASSIGN_OR_RETURN(entry.type, r.Str());
    EXA_ASSIGN_OR_RETURN(entry.oid.type_id, r.U32());
    EXA_ASSIGN_OR_RETURN(entry.oid.serial, r.U64());
    EXA_ASSIGN_OR_RETURN(entry.key, DecodeValue(&r));
    state.store.interned.push_back(std::move(entry));
  }

  EXA_ASSIGN_OR_RETURN(uint32_t nnamed, r.Count(7));
  state.named.reserve(nnamed);
  for (uint32_t i = 0; i < nnamed; ++i) {
    SnapshotState::Named named;
    EXA_ASSIGN_OR_RETURN(named.name, r.Str());
    EXA_ASSIGN_OR_RETURN(named.schema, DecodeSchema(&r));
    EXA_ASSIGN_OR_RETURN(named.value, DecodeValue(&r));
    state.named.push_back(std::move(named));
  }

  EXA_ASSIGN_OR_RETURN(uint32_t nctx, r.Count(4));
  state.context.reserve(nctx);
  for (uint32_t i = 0; i < nctx; ++i) {
    EXA_ASSIGN_OR_RETURN(std::string src, r.Str());
    state.context.push_back(std::move(src));
  }

  // v1 payloads end here; v2 appends the index-definition section.
  if (!r.done()) {
    EXA_ASSIGN_OR_RETURN(uint32_t nidx, r.Count(13));
    state.indexes.reserve(nidx);
    for (uint32_t i = 0; i < nidx; ++i) {
      IndexDef def;
      EXA_ASSIGN_OR_RETURN(def.name, r.Str());
      EXA_ASSIGN_OR_RETURN(def.set_name, r.Str());
      EXA_ASSIGN_OR_RETURN(uint32_t nsteps, r.Count(4));
      def.path.reserve(nsteps);
      for (uint32_t s = 0; s < nsteps; ++s) {
        EXA_ASSIGN_OR_RETURN(std::string field, r.Str());
        def.path.push_back(std::move(field));
      }
      EXA_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
      if (kind > 1) {
        return Status::DataLoss(
            StrCat("unknown index kind tag ", static_cast<int>(kind)));
      }
      def.kind = kind == 1 ? IndexKind::kOrdered : IndexKind::kHash;
      state.indexes.push_back(std::move(def));
    }
  }

  if (!r.done()) {
    return Status::DataLoss(
        StrCat("snapshot payload has ", r.remaining(), " trailing bytes"));
  }
  return state;
}

SnapshotState CaptureDatabase(const Database& db, uint64_t seq,
                              std::vector<std::string> context) {
  SnapshotState state;
  state.seq = seq;
  state.types = db.catalog().DumpDefinitions();
  state.store = db.store().Dump();
  for (const auto& name : db.NamedObjectNames()) {
    const NamedObject* obj = *db.GetNamed(name);
    state.named.push_back(SnapshotState::Named{obj->name, obj->schema, obj->value});
  }
  state.context = std::move(context);
  state.indexes = db.IndexDefs();
  return state;
}

Status InstallDatabase(const SnapshotState& state, Database* db) {
  // Replaying definitions in order reproduces every type id; the store dump
  // then restores OIDs verbatim, and named objects re-attach their values.
  for (const auto& def : state.types) {
    EXA_RETURN_NOT_OK(db->catalog().DefineType(def.name, def.declared,
                                               def.parents));
  }
  EXA_RETURN_NOT_OK(db->store().Restore(state.store));
  for (const auto& named : state.named) {
    EXA_RETURN_NOT_OK(db->CreateNamed(named.name, named.schema, named.value));
  }
  // Indexes last: creation rebuilds each one from its (now restored) base
  // set, so only the definitions travel on disk.
  for (const auto& def : state.indexes) {
    EXA_RETURN_NOT_OK(db->CreateIndex(def));
  }
  return Status::OK();
}

std::string CanonicalDatabaseBytes(const Database& db) {
  // A canonical image is a snapshot at seq 0 with no session context: the
  // capture already orders every collection deterministically.
  return EncodeSnapshotPayload(CaptureDatabase(db, 0, {}));
}

}  // namespace storage
}  // namespace excess
