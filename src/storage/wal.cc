#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"
#include "storage/serialize.h"
#include "util/fileio.h"
#include "util/string_util.h"

namespace excess {
namespace storage {

namespace {

constexpr char kWalMagic[8] = {'E', 'X', 'W', 'A', 'L', '0', '0', '1'};
constexpr size_t kWalHeaderSize = sizeof(kWalMagic);
constexpr uint8_t kWalVersion = 1;
constexpr uint8_t kFlagOptimize = 1;
constexpr uint8_t kFlagContext = 2;
constexpr uint8_t kFlagTxnBegin = 4;
constexpr uint8_t kFlagTxnCommit = 8;
// Only valid on a COMMIT marker: the source slot carries an idempotency
// token instead of being empty. Token-less records are byte-identical to
// the pre-token format, so old WALs decode unchanged.
constexpr uint8_t kFlagTxnToken = 16;

/// A single statement source larger than this is rejected at scan time —
/// far beyond any real program, and it bounds allocations on corrupt input
/// whose length field happens to checksum correctly.
constexpr uint32_t kMaxRecordPayload = 64u << 20;

Status Errno(const char* op, const std::string& path) {
  return Status::DataLoss(StrCat(op, " '", path, "': ", std::strerror(errno)));
}

}  // namespace

std::string EncodeWalRecord(const WalRecord& rec) {
  Writer payload;
  payload.U8(kWalVersion);
  uint8_t flags = 0;
  if (rec.optimize) flags |= kFlagOptimize;
  if (rec.context) flags |= kFlagContext;
  if (rec.txn_begin) flags |= kFlagTxnBegin;
  if (rec.txn_commit) flags |= kFlagTxnCommit;
  bool token = rec.txn_commit && !rec.commit_token.empty();
  if (token) flags |= kFlagTxnToken;
  payload.U8(flags);
  payload.U64(rec.lsn);
  payload.Str(token ? rec.commit_token : rec.source);

  Writer out;
  out.U32(static_cast<uint32_t>(payload.bytes().size()));
  out.U32(util::Crc32(payload.bytes().data(), payload.bytes().size()));
  std::string framed = out.Take();
  framed += payload.bytes();
  return framed;
}

Result<WalScanResult> ScanWalBytes(const std::string& bytes) {
  WalScanResult out;
  if (bytes.empty()) return out;  // fresh file: writer lays down the header
  size_t have = bytes.size() < kWalHeaderSize ? bytes.size() : kWalHeaderSize;
  if (std::memcmp(bytes.data(), kWalMagic, have) != 0) {
    return Status::DataLoss("WAL header corrupt: bad magic");
  }
  if (bytes.size() < kWalHeaderSize) {
    // Torn header from a crash during creation; recreate from scratch.
    out.torn_tail = true;
    out.discarded_bytes = bytes.size();
    return out;
  }

  size_t pos = kWalHeaderSize;
  uint64_t prev_lsn = 0;
  bool have_prev = false;
  // Transaction group being buffered: its statements only join the result —
  // and valid_bytes only advances past them — when the commit marker
  // arrives. A group cut short by a crash is discarded whole, from its
  // begin marker on, which is exactly commit atomicity at recovery time.
  bool in_group = false;
  size_t group_start = 0;
  std::vector<WalRecord> group;
  while (pos < bytes.size()) {
    size_t rec_start = pos;
    auto torn = [&]() {
      size_t from = in_group ? group_start : rec_start;
      out.torn_tail = true;
      out.discarded_bytes = bytes.size() - from;
      return out;
    };
    if (bytes.size() - pos < 8) return torn();
    Reader frame(bytes.data() + pos, 8);
    uint32_t len = *frame.U32();
    uint32_t crc = *frame.U32();
    pos += 8;
    if (len > kMaxRecordPayload || len > bytes.size() - pos) return torn();
    if (util::Crc32(bytes.data() + pos, len) != crc) return torn();

    Reader payload(bytes.data() + pos, len);
    auto version = payload.U8();
    auto flags = payload.U8();
    auto lsn = payload.U64();
    auto source = payload.Str();
    if (!version.ok() || !flags.ok() || !lsn.ok() || !source.ok() ||
        *version != kWalVersion || !payload.done()) {
      return torn();
    }
    pos += len;

    bool is_begin = (*flags & kFlagTxnBegin) != 0;
    bool is_commit = (*flags & kFlagTxnCommit) != 0;
    bool has_token = (*flags & kFlagTxnToken) != 0;
    if (is_begin || is_commit) {
      // Markers are structural only: one role, plausible lsn, and an empty
      // source — unless a commit marker carries an idempotency token under
      // kFlagTxnToken, in which case the source slot must be non-empty.
      // A malformed marker is corruption like any other — torn tail (from
      // the group start when one is open).
      if ((is_begin && is_commit) || *lsn == 0) return torn();
      if (has_token && (!is_commit || source->empty())) return torn();
      if (!has_token && !source->empty()) return torn();
      if (is_begin) {
        if (in_group) return torn();
        if (have_prev && *lsn != prev_lsn + 1) return torn();
        in_group = true;
        group_start = rec_start;
        // The begin marker announces the first statement's lsn; seed the
        // continuity check so that statement must actually carry it.
        prev_lsn = *lsn - 1;
        have_prev = true;
      } else {
        // Commit must close an open, non-empty group and name its last lsn.
        if (!in_group || group.empty() || *lsn != prev_lsn) return torn();
        for (auto& r : group) out.records.push_back(std::move(r));
        group.clear();
        in_group = false;
        if (has_token) out.commit_tokens.push_back(std::move(*source));
        out.valid_bytes = pos;
      }
      continue;
    }

    if (has_token) return torn();  // token flag is commit-marker-only
    if (have_prev && *lsn != prev_lsn + 1) return torn();
    prev_lsn = *lsn;
    have_prev = true;

    WalRecord rec;
    rec.source = std::move(*source);
    rec.optimize = (*flags & kFlagOptimize) != 0;
    rec.context = (*flags & kFlagContext) != 0;
    rec.lsn = *lsn;
    if (in_group) {
      group.push_back(std::move(rec));
    } else {
      out.records.push_back(std::move(rec));
      out.valid_bytes = pos;
    }
  }
  if (in_group) {
    // The file ends inside a group: the commit marker never made it to
    // disk, so the whole group is a torn tail.
    out.torn_tail = true;
    out.discarded_bytes = bytes.size() - group_start;
  }
  out.valid_bytes = out.valid_bytes == 0 ? kWalHeaderSize : out.valid_bytes;
  return out;
}

Result<WalScanResult> ScanWalFile(const std::string& path) {
  auto bytes = util::ReadFile(path);
  if (!bytes.ok()) {
    if (bytes.status().IsNotFound()) return WalScanResult{};
    return bytes.status();
  }
  EXA_ASSIGN_OR_RETURN(WalScanResult scan, ScanWalBytes(*bytes));
  // An empty existing file also needs its header written.
  if (scan.valid_bytes == 0 && !bytes->empty()) {
    scan.torn_tail = true;
  }
  return scan;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   uint64_t valid_bytes,
                                                   bool fsync,
                                                   StorageHooks* hooks) {
  int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open WAL", path);
  std::unique_ptr<WalWriter> w(new WalWriter(fd, valid_bytes, fsync, hooks));
  if (valid_bytes < kWalHeaderSize) {
    // Fresh (or torn-header) file: start over with a clean header.
    if (::ftruncate(fd, 0) != 0) return Errno("truncate WAL", path);
    if (::write(fd, kWalMagic, kWalHeaderSize) !=
        static_cast<ssize_t>(kWalHeaderSize)) {
      return Errno("write WAL header", path);
    }
    w->end_ = kWalHeaderSize;
  } else {
    // Discard the torn tail the scan identified, then append from there.
    if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
      return Errno("truncate WAL", path);
    }
    if (::lseek(fd, static_cast<off_t>(valid_bytes), SEEK_SET) < 0) {
      return Errno("seek WAL", path);
    }
  }
  EXA_RETURN_NOT_OK(w->Sync());
  return w;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Sync() {
  // Hooks stand in for the kernel: they decide even when real fsync is off,
  // so crash sweeps with EXCESS_WAL_FSYNC=0 still exercise fsync failures.
  if (hooks_ != nullptr) {
    if (!hooks_->OnFsync()) return Status::DataLoss("injected fsync failure");
    return Status::OK();
  }
  if (!fsync_) return Status::OK();
  auto t0 = std::chrono::steady_clock::now();
  if (::fsync(fd_) != 0) {
    return Status::DataLoss(StrCat("fsync WAL: ", std::strerror(errno)));
  }
  int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  obs::MetricsRegistry::Global().GetHistogram("storage.wal.fsync_ns")
      ->Observe(ns);
  return Status::OK();
}

Status WalWriter::TruncateBack() {
  if (::ftruncate(fd_, static_cast<off_t>(end_)) != 0 ||
      ::lseek(fd_, static_cast<off_t>(end_), SEEK_SET) < 0) {
    // The file now holds a torn record we cannot remove; refusing further
    // appends keeps it a *tail* (recovery discards it) rather than letting
    // a later record land after garbage mid-file.
    broken_ = true;
    return Status::DataLoss(
        StrCat("WAL truncate-back failed: ", std::strerror(errno),
               "; WAL closed to further appends"));
  }
  return Status::OK();
}

Status WalWriter::Append(const WalRecord& rec) {
  return AppendBatch({rec}, /*sync_each=*/true);
}

Status WalWriter::AppendBatch(const std::vector<WalRecord>& recs,
                              bool sync_each) {
  if (broken_) {
    return Status::DataLoss("WAL is broken from an earlier failed append");
  }
  if (recs.empty()) return Status::OK();
  size_t total = 0;
  int64_t statements = 0;
  for (const auto& rec : recs) {
    std::string bytes = EncodeWalRecord(rec);
    int64_t partial = -1;
    if (hooks_ != nullptr && !hooks_->OnWalAppend(bytes.size(), &partial)) {
      if (partial > 0) {
        size_t n = static_cast<size_t>(partial) < bytes.size()
                       ? static_cast<size_t>(partial)
                       : bytes.size();
        (void)!::write(fd_, bytes.data(), n);
      }
      EXA_RETURN_NOT_OK(TruncateBack());
      return Status::DataLoss("injected WAL append failure");
    }
    ssize_t written = ::write(fd_, bytes.data(), bytes.size());
    if (written != static_cast<ssize_t>(bytes.size())) {
      Status undo = TruncateBack();
      if (!undo.ok()) return undo;
      return Status::DataLoss(
          StrCat("short WAL write: ", std::strerror(errno)));
    }
    if (sync_each) {
      Status synced = Sync();
      if (!synced.ok()) {
        // Records reached the file but not necessarily the disk; withdraw
        // the whole batch so the in-memory rollback and the file agree (and
        // so no dangling group prefix can poison later appends).
        EXA_RETURN_NOT_OK(TruncateBack());
        return synced;
      }
    }
    total += bytes.size();
    if (!rec.txn_begin && !rec.txn_commit) ++statements;
  }
  if (!sync_each) {
    // Group commit: the whole batch rides one sync.
    Status synced = Sync();
    if (!synced.ok()) {
      EXA_RETURN_NOT_OK(TruncateBack());
      return synced;
    }
  }
  end_ += total;
  obs::MetricsRegistry::Global()
      .GetCounter("storage.wal.appends")
      ->Increment(statements);
  return Status::OK();
}

Status WalWriter::Reset() {
  if (broken_) {
    return Status::DataLoss("WAL is broken from an earlier failed append");
  }
  end_ = kWalHeaderSize;
  if (::ftruncate(fd_, static_cast<off_t>(end_)) != 0 ||
      ::lseek(fd_, static_cast<off_t>(end_), SEEK_SET) < 0) {
    broken_ = true;
    return Status::DataLoss(
        StrCat("WAL reset failed: ", std::strerror(errno)));
  }
  return Sync();
}

}  // namespace storage
}  // namespace excess
