#ifndef EXCESS_STORAGE_ENGINE_H_
#define EXCESS_STORAGE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "objects/database.h"
#include "storage/serialize.h"
#include "storage/wal.h"
#include "util/status.h"

namespace excess {
namespace storage {

struct StorageOptions {
  /// Sync the WAL (and snapshot) to disk at every commit boundary. Off, a
  /// crash can lose recent commits but never corrupts recovery (the torn
  /// tail is discarded). Sessions read EXCESS_WAL_FSYNC for this.
  bool fsync = true;
  /// Test-only crash-injection seam; null in production.
  StorageHooks* hooks = nullptr;
  /// Sync a transaction's WAL group with one fsync at the end (group
  /// commit) instead of one per record. Atomicity is identical either way —
  /// the group's commit marker is what recovery honors — this only trades
  /// syscalls. Sessions read EXCESS_GROUP_COMMIT for this.
  bool group_commit = true;
};

/// A statement staged inside an open transaction, waiting for `commit` to
/// log the whole group durably.
struct StagedStatement {
  std::string source;
  bool optimize = true;
  bool context = false;
};

/// A statement the session must re-execute to finish recovery.
struct ReplayStatement {
  std::string source;
  bool optimize = true;
  bool context = false;  // range / define-function (session state)
  uint64_t lsn = 0;      // 0 for snapshot context statements
};

struct RecoveryInfo {
  bool created = false;        // no file existed; current state adopted
  uint64_t snapshot_seq = 0;   // statements the snapshot covers
  uint64_t replayed = 0;       // WAL records handed back for replay
  bool torn_tail = false;      // WAL ended in a discarded torn suffix
  uint64_t discarded_bytes = 0;
  /// Idempotency tokens of commits the WAL proves durable, in commit
  /// order. The server re-seeds its exactly-once dedup window from these,
  /// so a commit retried across a crash still resolves instead of
  /// double-applying. (A checkpoint resets the WAL and therefore bounds
  /// how far back the window reaches.)
  std::vector<std::string> commit_tokens;
};

/// The durable storage engine: one snapshot file at `path` plus a WAL at
/// `path + ".wal"`.
///
/// Commit protocol (per mutation statement): the session evaluates the
/// statement, appends its source to the WAL (fsync), and only then applies
/// the effect in memory. Recovery loads the last intact snapshot, discards
/// the WAL's torn tail, and re-executes the logged statements after the
/// snapshot's sequence number — so the recovered database is exactly the
/// committed-statement prefix.
class StorageEngine {
 public:
  struct Opened {
    std::unique_ptr<StorageEngine> engine;
    /// Context statements from the snapshot (lsn 0), then WAL records past
    /// the snapshot, in commit order. Empty when `created`.
    std::vector<ReplayStatement> replay;
    RecoveryInfo info;
  };

  /// Opens (or creates) the database at `path`. When the snapshot file
  /// exists, `db` must be empty: the snapshot is installed into it and
  /// `replay` returns the statements to re-execute. Otherwise the current
  /// contents of `db` (plus `context` statement sources) become the initial
  /// snapshot at sequence 0.
  static Result<Opened> Open(const std::string& path, Database* db,
                             std::vector<std::string> context,
                             const StorageOptions& options);

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  /// Durably logs one committed statement. Must be called *before* the
  /// statement's in-memory effect is applied; on error nothing was made
  /// durable and the caller must not apply (or must undo) the statement.
  Status LogCommit(const std::string& source, bool optimize, bool context);

  /// Durably logs a transaction's statements as one atomic group: a begin
  /// marker, the statements, and a commit marker ride a single WAL append
  /// batch (one fsync under group commit). Either every statement is
  /// durable or — after a crash or failure anywhere in the batch — none
  /// is. A single statement logs as a plain record (a group of one needs
  /// no markers); an empty group is a no-op.
  ///
  /// A non-empty `commit_token` (an exactly-once wire commit) is journaled
  /// on the COMMIT marker; the group then always carries markers — even a
  /// group of one — so the token has a marker to ride on.
  Status LogCommitGroup(const std::vector<StagedStatement>& stmts,
                        const std::string& commit_token = "");

  /// Folds the current state into a fresh snapshot (atomic temp + rename)
  /// and resets the WAL. `context` is the session's live context-statement
  /// list (range bindings, function definitions). Incremental: when the
  /// last snapshot already covers every committed statement, this is a
  /// no-op rather than a rewrite of identical bytes.
  Status Checkpoint(const Database& db, std::vector<std::string> context);

  const std::string& path() const { return path_; }
  const std::string& wal_path() const { return wal_path_; }
  /// Sequence number the next committed statement will get.
  uint64_t next_lsn() const { return next_lsn_; }

 private:
  StorageEngine(std::string path, const StorageOptions& options)
      : path_(std::move(path)),
        wal_path_(path_ + ".wal"),
        options_(options) {}

  Status WriteSnapshot(const SnapshotState& state);

  std::string path_;
  std::string wal_path_;
  StorageOptions options_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t next_lsn_ = 1;
  uint64_t snapshot_seq_ = 0;
};

}  // namespace storage
}  // namespace excess

#endif  // EXCESS_STORAGE_ENGINE_H_
