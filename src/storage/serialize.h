#ifndef EXCESS_STORAGE_SERIALIZE_H_
#define EXCESS_STORAGE_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "objects/database.h"
#include "objects/store.h"
#include "objects/value.h"
#include "util/status.h"

namespace excess {
namespace storage {

/// Append-only little-endian binary encoder. All on-disk integers are
/// fixed-width so the format is byte-for-byte deterministic (the crash
/// oracle compares recovered databases by their encoded bytes).
class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  /// u32 length + raw bytes.
  void Str(const std::string& s);

  const std::string& bytes() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked decoder. Every read validates against the remaining span
/// and element counts are sanity-capped against it, so corrupt or truncated
/// input surfaces as kDataLoss rather than huge allocations or overruns.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::string& s) : Reader(s.data(), s.size()) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int64_t> I64();
  Result<double> F64();
  Result<std::string> Str();
  /// Reads a u32 element count and rejects counts that could not possibly
  /// fit in the remaining bytes (each element takes >= min_elem_bytes).
  Result<uint32_t> Count(size_t min_elem_bytes);

  size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  Status Need(size_t n) const;

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

void EncodeValue(const ValuePtr& v, Writer* w);
Result<ValuePtr> DecodeValue(Reader* r);

void EncodeSchema(const SchemaPtr& s, Writer* w);
Result<SchemaPtr> DecodeSchema(Reader* r);

/// Everything a snapshot persists. `seq` is the number of logged statements
/// committed before the snapshot was taken; WAL records carry statement
/// sequence numbers, so recovery skips records the snapshot already covers
/// (the crash window between snapshot rename and WAL reset). `context`
/// holds session-state statement sources (range declarations, function
/// definitions) replayed at open before any WAL record.
struct SnapshotState {
  uint64_t seq = 0;
  std::vector<Catalog::TypeDef> types;
  ObjectStore::StoreDump store;
  struct Named {
    std::string name;
    SchemaPtr schema;
    ValuePtr value;
  };
  std::vector<Named> named;
  std::vector<std::string> context;
  /// Secondary index *definitions* (v2 payloads; absent and empty in v1
  /// files). Entries are never persisted — InstallDatabase recreates each
  /// index, which rebuilds it from the restored base set.
  std::vector<IndexDef> indexes;
};

std::string EncodeSnapshotPayload(const SnapshotState& state);
Result<SnapshotState> DecodeSnapshotPayload(const std::string& payload);

/// Captures a database (plus session context sources) as a snapshot.
SnapshotState CaptureDatabase(const Database& db, uint64_t seq,
                              std::vector<std::string> context);

/// Installs a decoded snapshot into an *empty* database: replays the type
/// definitions (reproducing type ids by definition order), restores the OID
/// store, and recreates the named objects. Context statements are not
/// executed here — the session replays them, since they touch session state.
Status InstallDatabase(const SnapshotState& state, Database* db);

/// Canonical byte encoding of a database's durable state (catalog + store +
/// named objects). Collections are emitted in sorted/definition order, so
/// two databases hold equal durable state iff their canonical bytes match —
/// this is the equality the crash-recovery oracle asserts.
std::string CanonicalDatabaseBytes(const Database& db);

}  // namespace storage
}  // namespace excess

#endif  // EXCESS_STORAGE_SERIALIZE_H_
