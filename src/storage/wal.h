#ifndef EXCESS_STORAGE_WAL_H_
#define EXCESS_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace excess {
namespace storage {

/// Test seam for deterministic crash injection. Production code never sets
/// hooks; the crash-recovery oracle uses them to fail the Nth append (with
/// an optional torn prefix), drop fsyncs, and fail snapshot writes.
struct StorageHooks {
  virtual ~StorageHooks() = default;
  /// Called before a WAL record is appended. Return false to fail the
  /// append; set *partial_bytes >= 0 to write that many bytes of the record
  /// first (a torn write the engine must clean up).
  virtual bool OnWalAppend(size_t record_bytes, int64_t* partial_bytes) {
    (void)record_bytes;
    (void)partial_bytes;
    return true;
  }
  /// Called instead of fsync when set. Return false to fail the sync.
  virtual bool OnFsync() { return true; }
  /// Called before a snapshot file write. Return false to fail it.
  virtual bool OnSnapshotWrite(size_t bytes) {
    (void)bytes;
    return true;
  }
};

/// One committed statement. `context` marks session-state statements
/// (range / define function) that recovery replays but that do not mutate
/// the database. `lsn` is the statement sequence number, monotonically
/// increasing across the session's whole history (never reset), which lets
/// recovery skip records an existing snapshot already covers.
struct WalRecord {
  std::string source;
  bool optimize = true;
  bool context = false;
  uint64_t lsn = 0;
  /// Transaction group markers. A multi-statement commit is framed as
  /// BEGIN-marker, statements, COMMIT-marker; markers carry no source and
  /// consume no statement sequence numbers (begin carries the first
  /// statement's lsn, commit the last's), so "lsn = statement count"
  /// arithmetic holds whether or not transactions were used. The scanner
  /// strips markers and treats any group without its commit marker — a
  /// crash mid-group — as a torn tail starting at the begin marker, which
  /// is what makes the group atomic.
  bool txn_begin = false;
  bool txn_commit = false;
  /// Idempotency token journaled with a COMMIT marker (exactly-once wire
  /// commits). It rides in the marker's otherwise-empty source slot under a
  /// dedicated flag, so records without tokens are byte-identical to the
  /// original format and old WALs scan unchanged.
  std::string commit_token;
};

/// Result of scanning a WAL file: the intact record prefix, where it ends,
/// and whether a torn tail (truncated or corrupt suffix) was discarded.
struct WalScanResult {
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;  // header + intact records
  bool torn_tail = false;
  uint64_t discarded_bytes = 0;
  /// Idempotency tokens of committed groups, in commit order — recovery
  /// rebuilds the server's commit-dedup window from these.
  std::vector<std::string> commit_tokens;
};

/// Serialized form of one record (length/checksum framing included).
std::string EncodeWalRecord(const WalRecord& rec);

/// Scans WAL bytes, keeping the longest intact prefix of records. A record
/// is intact when its framing fits, its checksum matches, its payload
/// decodes, and its lsn follows its predecessor's. Anything after the first
/// defect is a torn tail: reported, not fatal. A corrupted *file header* is
/// fatal (kDataLoss) — there is no prefix to trust.
Result<WalScanResult> ScanWalBytes(const std::string& bytes);

/// ScanWalBytes over a file; a missing file scans as empty (valid_bytes 0).
Result<WalScanResult> ScanWalFile(const std::string& path);

/// Append-side of the WAL. Opening truncates the file to `valid_bytes` (the
/// scan result), discarding any torn tail; 0 writes a fresh header. On any
/// append failure the writer truncates back to the last record boundary, so
/// a failed commit can never corrupt records logged after it, and marks
/// itself broken if even that cleanup fails.
class WalWriter {
 public:
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 uint64_t valid_bytes,
                                                 bool fsync,
                                                 StorageHooks* hooks);

  /// Appends one record and (unless fsync is disabled) syncs it to disk
  /// before returning OK — the durability point of the commit protocol.
  Status Append(const WalRecord& rec);

  /// Appends a record batch — a transaction group with its markers — as one
  /// unit: with `sync_each` false the batch gets a single sync at the end
  /// (group commit, one fsync for the whole transaction); true syncs after
  /// every record. Either way, ANY failure truncates the file back to the
  /// pre-batch boundary, so a half-written group can never linger ahead of
  /// records committed later (the scanner would discard everything from the
  /// dangling begin marker on, silently dropping those commits).
  Status AppendBatch(const std::vector<WalRecord>& recs, bool sync_each);

  /// Truncates back to just the file header (after a checkpoint).
  Status Reset();

  uint64_t end_offset() const { return end_; }

 private:
  WalWriter(int fd, uint64_t end, bool fsync, StorageHooks* hooks)
      : fd_(fd), end_(end), fsync_(fsync), hooks_(hooks) {}

  Status TruncateBack();
  Status Sync();

  int fd_;
  uint64_t end_;  // last durable record boundary
  bool fsync_;
  StorageHooks* hooks_;
  bool broken_ = false;
};

}  // namespace storage
}  // namespace excess

#endif  // EXCESS_STORAGE_WAL_H_
