#include "storage/engine.h"

#include <cstring>

#include "obs/metrics.h"
#include "util/fileio.h"
#include "util/string_util.h"

namespace excess {
namespace storage {

namespace {

// Snapshot format versions, carried by the magic. v2 appends an
// index-definition section to the payload after the context sources; the
// payload decoder treats that section as optional, so v1 files written by
// older builds recover unchanged. Writes always use the current version.
constexpr char kSnapMagicV1[8] = {'E', 'X', 'D', 'B', '0', '0', '0', '1'};
constexpr char kSnapMagic[8] = {'E', 'X', 'D', 'B', '0', '0', '0', '2'};
constexpr size_t kSnapHeaderSize = sizeof(kSnapMagic) + 8 + 4;

std::string EncodeSnapshotFile(const std::string& payload) {
  std::string out(kSnapMagic, sizeof(kSnapMagic));
  Writer w;
  w.U64(payload.size());
  w.U32(util::Crc32(payload.data(), payload.size()));
  out += w.Take();
  out += payload;
  return out;
}

Result<std::string> DecodeSnapshotFile(const std::string& bytes) {
  if (bytes.size() < kSnapHeaderSize ||
      (std::memcmp(bytes.data(), kSnapMagic, sizeof(kSnapMagic)) != 0 &&
       std::memcmp(bytes.data(), kSnapMagicV1, sizeof(kSnapMagicV1)) != 0)) {
    return Status::DataLoss("snapshot corrupt: bad or truncated header");
  }
  Reader r(bytes.data() + sizeof(kSnapMagic), 12);
  uint64_t len = *r.U64();
  uint32_t crc = *r.U32();
  if (len != bytes.size() - kSnapHeaderSize) {
    return Status::DataLoss(
        StrCat("snapshot corrupt: payload length ", len, " but file holds ",
               bytes.size() - kSnapHeaderSize, " bytes"));
  }
  if (util::Crc32(bytes.data() + kSnapHeaderSize, len) != crc) {
    return Status::DataLoss("snapshot corrupt: checksum mismatch");
  }
  return bytes.substr(kSnapHeaderSize);
}

}  // namespace

Status StorageEngine::WriteSnapshot(const SnapshotState& state) {
  std::string file = EncodeSnapshotFile(EncodeSnapshotPayload(state));
  if (options_.hooks != nullptr &&
      !options_.hooks->OnSnapshotWrite(file.size())) {
    return Status::DataLoss("injected snapshot write failure");
  }
  EXA_RETURN_NOT_OK(util::WriteFileAtomic(path_, file, options_.fsync));
  snapshot_seq_ = state.seq;
  obs::MetricsRegistry::Global().GetCounter("storage.snapshot.writes")
      ->Increment();
  return Status::OK();
}

Result<StorageEngine::Opened> StorageEngine::Open(
    const std::string& path, Database* db, std::vector<std::string> context,
    const StorageOptions& options) {
  if (path.empty()) return Status::Invalid("storage path must be non-empty");
  Opened opened;
  std::unique_ptr<StorageEngine> engine(new StorageEngine(path, options));

  auto snapshot_bytes = util::ReadFile(path);
  if (!snapshot_bytes.ok() && !snapshot_bytes.status().IsNotFound()) {
    return snapshot_bytes.status();
  }

  if (!snapshot_bytes.ok()) {
    // Fresh database: adopt the session's current state as snapshot 0.
    opened.info.created = true;
    SnapshotState state = CaptureDatabase(*db, 0, std::move(context));
    EXA_RETURN_NOT_OK(engine->WriteSnapshot(state));
    EXA_ASSIGN_OR_RETURN(
        engine->wal_,
        WalWriter::Open(engine->wal_path_, 0, options.fsync, options.hooks));
    engine->next_lsn_ = 1;
    opened.engine = std::move(engine);
    return opened;
  }

  EXA_ASSIGN_OR_RETURN(std::string payload,
                       DecodeSnapshotFile(*snapshot_bytes));
  EXA_ASSIGN_OR_RETURN(SnapshotState state, DecodeSnapshotPayload(payload));
  EXA_RETURN_NOT_OK(InstallDatabase(state, db));
  engine->snapshot_seq_ = state.seq;
  opened.info.snapshot_seq = state.seq;

  EXA_ASSIGN_OR_RETURN(WalScanResult scan,
                       ScanWalFile(engine->wal_path_));
  opened.info.torn_tail = scan.torn_tail;
  opened.info.discarded_bytes = scan.discarded_bytes;
  opened.info.commit_tokens = std::move(scan.commit_tokens);
  if (scan.torn_tail) {
    obs::MetricsRegistry::Global().GetCounter("storage.recovery.torn_tail")
        ->Increment();
  }

  // Context statements re-establish session state first; then the WAL
  // records the snapshot does not already cover, in commit order. Records
  // at or below the snapshot's sequence are stale survivors of a crash
  // between snapshot rename and WAL reset.
  for (const auto& src : state.context) {
    ReplayStatement rs;
    rs.source = src;
    rs.context = true;
    opened.replay.push_back(std::move(rs));
  }
  uint64_t last_lsn = state.seq;
  for (auto& rec : scan.records) {
    if (rec.lsn > last_lsn + 1) {
      return Status::DataLoss(
          StrCat("WAL gap: snapshot covers ", last_lsn,
                 " statements but next record has lsn ", rec.lsn));
    }
    if (rec.lsn <= state.seq) continue;
    last_lsn = rec.lsn;
    ReplayStatement rs;
    rs.source = std::move(rec.source);
    rs.optimize = rec.optimize;
    rs.context = rec.context;
    rs.lsn = rec.lsn;
    opened.replay.push_back(std::move(rs));
    ++opened.info.replayed;
  }
  engine->next_lsn_ = last_lsn + 1;
  obs::MetricsRegistry::Global().GetCounter("storage.recovery.replayed")
      ->Increment(static_cast<int64_t>(opened.info.replayed));

  EXA_ASSIGN_OR_RETURN(
      engine->wal_, WalWriter::Open(engine->wal_path_, scan.valid_bytes,
                                    options.fsync, options.hooks));
  opened.engine = std::move(engine);
  return opened;
}

Status StorageEngine::LogCommit(const std::string& source, bool optimize,
                                bool context) {
  if (source.empty()) {
    return Status::Invalid(
        "cannot log a statement with no source text; programmatically built "
        "statements are not durable");
  }
  WalRecord rec;
  rec.source = source;
  rec.optimize = optimize;
  rec.context = context;
  rec.lsn = next_lsn_;
  EXA_RETURN_NOT_OK(wal_->Append(rec));
  ++next_lsn_;
  return Status::OK();
}

Status StorageEngine::LogCommitGroup(const std::vector<StagedStatement>& stmts,
                                     const std::string& commit_token) {
  if (stmts.empty()) return Status::OK();
  if (stmts.size() == 1 && commit_token.empty()) {
    // A group of one is just a commit; markers would buy nothing. (With an
    // idempotency token the markers stay: the token rides the commit one.)
    return LogCommit(stmts[0].source, stmts[0].optimize, stmts[0].context);
  }
  for (const auto& s : stmts) {
    if (s.source.empty()) {
      return Status::Invalid(
          "cannot log a statement with no source text; programmatically "
          "built statements are not durable");
    }
  }
  std::vector<WalRecord> recs;
  recs.reserve(stmts.size() + 2);
  WalRecord begin;
  begin.txn_begin = true;
  begin.optimize = false;
  begin.lsn = next_lsn_;
  recs.push_back(std::move(begin));
  uint64_t lsn = next_lsn_;
  for (const auto& s : stmts) {
    WalRecord rec;
    rec.source = s.source;
    rec.optimize = s.optimize;
    rec.context = s.context;
    rec.lsn = lsn++;
    recs.push_back(std::move(rec));
  }
  WalRecord commit;
  commit.txn_commit = true;
  commit.optimize = false;
  commit.lsn = lsn - 1;
  commit.commit_token = commit_token;
  recs.push_back(std::move(commit));
  EXA_RETURN_NOT_OK(
      wal_->AppendBatch(recs, /*sync_each=*/!options_.group_commit));
  next_lsn_ = lsn;
  auto& metrics = obs::MetricsRegistry::Global();
  metrics.GetCounter("storage.group_commit.batches")->Increment();
  metrics.GetCounter("storage.group_commit.statements")
      ->Increment(static_cast<int64_t>(stmts.size()));
  return Status::OK();
}

Status StorageEngine::Checkpoint(const Database& db,
                                 std::vector<std::string> context) {
  // Incremental: with nothing committed past the last snapshot, the bytes
  // on disk are already exactly what a checkpoint would write.
  if (next_lsn_ - 1 == snapshot_seq_) return Status::OK();
  SnapshotState state =
      CaptureDatabase(db, next_lsn_ - 1, std::move(context));
  EXA_RETURN_NOT_OK(WriteSnapshot(state));
  // Snapshot rename is the commit point; a crash before this Reset leaves
  // stale records that recovery skips by sequence number.
  return wal_->Reset();
}

}  // namespace storage
}  // namespace excess
