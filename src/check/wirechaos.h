#ifndef EXCESS_CHECK_WIRECHAOS_H_
#define EXCESS_CHECK_WIRECHAOS_H_

#include <cstdint>
#include <vector>

#include "check/oracle.h"
#include "util/status.h"

namespace excess {
namespace check {

/// Knobs for the network-chaos oracle. One seed is a handful of server
/// runs (one clean, ~log2(sends) faulted), so the CI sweep can afford
/// hundreds of seeds.
struct WireChaosOptions {
  int groups = 3;  // transactional groups per trace
};

/// Network-chaos oracle. Builds a transactional workload (per group:
/// `begin`, the same fresh value appended to sets A and B, then a tokened
/// `commit` or a `rollback`) and drives it through a real in-process
/// Server over a unix socket with a retrying, reconnecting Client. A clean
/// run counts the server's statement-response sends; then, for geometric
/// fault points k over that count, the run is repeated on a fresh database
/// with one wire fault injected at send k (mode chosen by the seed's rng:
/// drop-before-ack, drop-after-ack, torn ack, duplicated ack, stalled
/// peer).
///
/// After each run the server is drained and the database reopened through
/// a plain Session; the oracle asserts, per group, what the driver's
/// Applied taxonomy promised:
///   - an acked commit (kDefinitely or kResolvedByToken) is durable
///     exactly once — the group's value appears once in A and once in B;
///   - a definitely-not-applied or abandoned group left nothing —
///     uncommitted work is never durable, even when its appends executed
///     before the connection died (the server reaps the orphaned
///     transaction);
///   - an unknown-outcome commit (ack lost, budget exhausted) is 0-or-1
///     and whole-group atomic: A and B agree.
Status CheckWireChaosSeed(uint64_t seed, const WireChaosOptions& opts,
                          OracleStats* stats, std::vector<Divergence>* out);

}  // namespace check
}  // namespace excess

#endif  // EXCESS_CHECK_WIRECHAOS_H_
