#include "check/gen.h"

#include <utility>

#include "catalog/catalog.h"
#include "core/builder.h"
#include "objects/store.h"
#include "util/string_util.h"

namespace excess {
namespace check {

using namespace alg;  // NOLINT(build/namespaces)

ValuePtr RandomIntScalar(Rng* rng, const GenOptions& opts) {
  if (opts.with_nulls && rng->Chance(1, 10)) return Value::Unk();
  return Value::Int(rng->Int(0, 7));
}

ValuePtr RandomIntSet(Rng* rng, const GenOptions& opts) {
  std::vector<SetEntry> entries;
  int n = static_cast<int>(rng->Int(0, opts.max_set_size));
  for (int i = 0; i < n; ++i) {
    entries.push_back({RandomIntScalar(rng, opts), rng->Int(1, 3)});
  }
  return Value::SetOfCounted(std::move(entries));
}

ValuePtr RandomPairSet(Rng* rng, const GenOptions& opts) {
  std::vector<ValuePtr> elems;
  int n = static_cast<int>(rng->Int(0, opts.max_set_size));
  for (int i = 0; i < n; ++i) {
    elems.push_back(Value::Tuple(
        {"k", "v"}, {RandomIntScalar(rng, opts), RandomIntScalar(rng, opts)}));
  }
  return Value::SetOf(elems);
}

ValuePtr RandomNestedSet(Rng* rng, const GenOptions& opts) {
  std::vector<ValuePtr> elems;
  int n = static_cast<int>(rng->Int(0, 4));
  GenOptions inner = opts;
  inner.max_set_size = 3;
  for (int i = 0; i < n; ++i) elems.push_back(RandomIntSet(rng, inner));
  return Value::SetOf(elems);
}

ValuePtr RandomIntArray(Rng* rng, const GenOptions& opts) {
  std::vector<ValuePtr> elems;
  int n = static_cast<int>(rng->Int(0, opts.max_array_len));
  for (int i = 0; i < n; ++i) elems.push_back(RandomIntScalar(rng, opts));
  return Value::ArrayOf(std::move(elems));
}

Status BuildRandomDatabase(Rng* rng, const GenOptions& opts, Database* db,
                           GenDb* out) {
  *out = GenDb();
  SchemaPtr int_set = Schema::Set(IntSchema());
  SchemaPtr pair = Schema::Tup({{"k", IntSchema()}, {"v", IntSchema()}});
  for (int i = 0; i < 2; ++i) {
    std::string name = StrCat("Ints", i);
    EXA_RETURN_NOT_OK(db->CreateNamed(name, int_set, RandomIntSet(rng, opts)));
    out->int_sets.push_back(std::move(name));
  }
  for (int i = 0; i < 2; ++i) {
    std::string name = StrCat("Pairs", i);
    EXA_RETURN_NOT_OK(
        db->CreateNamed(name, Schema::Set(pair), RandomPairSet(rng, opts)));
    out->pair_sets.push_back(std::move(name));
  }
  {
    EXA_RETURN_NOT_OK(db->CreateNamed("Nested0", Schema::Set(int_set),
                                      RandomNestedSet(rng, opts)));
    out->nested_sets.push_back("Nested0");
  }
  {
    EXA_RETURN_NOT_OK(db->CreateNamed("Arr0", Schema::Arr(IntSchema()),
                                      RandomIntArray(rng, opts)));
    out->int_arrays.push_back("Arr0");
  }
  if (opts.with_refs) {
    // Item objects share the pair shape so DEREF of a ref-set element can
    // flow into the same subscripts/predicates as a pair-set element. A
    // small object pool guarantees shared OIDs both within one set (an OID
    // occurring with cardinality > 1) and across the two ref sets.
    EXA_RETURN_NOT_OK(db->catalog().DefineType("Item", pair));
    std::vector<Oid> pool;
    int objects = static_cast<int>(rng->Int(2, 4));
    for (int i = 0; i < objects; ++i) {
      ValuePtr state = Value::Tuple(
          {"k", "v"}, {Value::Int(rng->Int(0, 3)), Value::Int(rng->Int(0, 7))},
          "Item");
      EXA_ASSIGN_OR_RETURN(Oid oid, db->store().Create("Item", state));
      pool.push_back(oid);
    }
    for (int s = 0; s < 2; ++s) {
      std::vector<SetEntry> entries;
      int n = static_cast<int>(rng->Int(0, opts.max_set_size));
      for (int i = 0; i < n; ++i) {
        entries.push_back({Value::RefTo(rng->Pick(pool)), rng->Int(1, 2)});
      }
      std::string name = StrCat("Items", s);
      EXA_RETURN_NOT_OK(db->CreateNamed(name, Schema::Set(Schema::Ref("Item")),
                                        Value::SetOfCounted(std::move(entries))));
      out->ref_sets.push_back(std::move(name));
    }
  }
  return Status::OK();
}

namespace {

/// Random scalar int expression over an int-bound INPUT.
ExprPtr RandomIntSub(Rng* rng, int depth) {
  if (depth <= 0 || rng->Chance(2, 5)) {
    return rng->Chance(3, 4) ? Input() : IntLit(rng->Int(0, 7));
  }
  static const std::vector<std::string> kOps = {"+", "-", "*", "%"};
  std::string op = rng->Pick(kOps);
  ExprPtr rhs = op == "%" ? IntLit(rng->Int(1, 4))
                          : RandomIntSub(rng, depth - 1);
  return Arith(op, RandomIntSub(rng, depth - 1), std::move(rhs));
}

PredicatePtr RandomAtomOver(Rng* rng, const ExprPtr& lhs) {
  static const std::vector<CmpOp> kCmps = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                                           CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
  return Predicate::Atom(lhs, rng->Pick(kCmps), IntLit(rng->Int(0, 7)));
}

/// Random predicate over an int-bound INPUT.
PredicatePtr RandomIntPred(Rng* rng, int depth) {
  if (depth <= 0 || rng->Chance(1, 2)) {
    return RandomAtomOver(rng, rng->Chance(1, 4) ? RandomIntSub(rng, 1)
                                                 : Input());
  }
  switch (rng->Int(0, 2)) {
    case 0:
      return Predicate::And(RandomIntPred(rng, depth - 1),
                            RandomIntPred(rng, depth - 1));
    case 1:
      return Predicate::Or(RandomIntPred(rng, depth - 1),
                           RandomIntPred(rng, depth - 1));
    default:
      return Predicate::Not(RandomIntPred(rng, depth - 1));
  }
}

/// Random predicate over a (k, v)-tuple-bound INPUT.
PredicatePtr RandomPairPred(Rng* rng, int depth) {
  ExprPtr field = TupExtract(rng->Chance(1, 2) ? "k" : "v", Input());
  PredicatePtr atom = RandomAtomOver(rng, field);
  if (depth <= 0 || rng->Chance(1, 2)) return atom;
  PredicatePtr rest = RandomPairPred(rng, depth - 1);
  switch (rng->Int(0, 2)) {
    case 0: return Predicate::And(atom, rest);
    case 1: return Predicate::Or(atom, rest);
    default: return Predicate::Not(rest);
  }
}

struct PlanGen {
  Rng* rng;
  const GenOptions& opts;
  const GenDb& gen;

  ExprPtr SetIntLeaf() {
    if (!gen.int_sets.empty() && rng->Chance(1, 2)) {
      return Var(rng->Pick(gen.int_sets));
    }
    return Const(RandomIntSet(rng, opts));
  }

  ExprPtr SetPairLeaf() {
    if (!gen.pair_sets.empty() && rng->Chance(1, 2)) {
      return Var(rng->Pick(gen.pair_sets));
    }
    return Const(RandomPairSet(rng, opts));
  }

  ExprPtr SetInt(int depth) {
    if (depth <= 0) return SetIntLeaf();
    switch (rng->Int(0, 9)) {
      case 0:
        return SetApply(RandomIntSub(rng, 2), SetInt(depth - 1));
      case 1:
        return Select(RandomIntPred(rng, 2), SetInt(depth - 1));
      case 2:
        return DupElim(SetInt(depth - 1));
      case 3:
        return AddUnion(SetInt(depth - 1), SetIntLeaf());
      case 4:
        return Diff(SetInt(depth - 1), SetIntLeaf());
      case 5:
        return rng->Chance(1, 2) ? Union(SetInt(depth - 1), SetIntLeaf())
                                 : Intersect(SetInt(depth - 1), SetIntLeaf());
      case 6:
        return SetCollapse(SetSetInt(depth - 1));
      case 7:
        // Project a pair set down to one int field.
        return SetApply(TupExtract(rng->Chance(1, 2) ? "k" : "v", Input()),
                        SetPair(depth - 1));
      case 8:
        // Per-group aggregation: {{int}} -> {int}.
        return SetApply(Agg(rng->Chance(1, 2) ? "count" : "sum", Input()),
                        SetSetInt(depth - 1));
      default:
        // Deref a ref set and extract a field (rule 26/28 territory).
        if (!gen.ref_sets.empty()) {
          return SetApply(TupExtract("v", Deref(Input())),
                          Var(rng->Pick(gen.ref_sets)));
        }
        return SetIntLeaf();
    }
  }

  ExprPtr SetPair(int depth) {
    if (depth <= 0) return SetPairLeaf();
    switch (rng->Int(0, 4)) {
      case 0:
        return Select(RandomPairPred(rng, 2), SetPair(depth - 1));
      case 1:
        return DupElim(SetPair(depth - 1));
      case 2:
        return AddUnion(SetPair(depth - 1), SetPairLeaf());
      case 3:
        if (!gen.ref_sets.empty()) {
          // Materialize a ref set; DEREF(REF(x)) chains show up here too.
          ExprPtr sub = rng->Chance(1, 3)
                            ? Deref(RefOp(Deref(Input()), "Item"))
                            : Deref(Input());
          return SetApply(std::move(sub), Var(rng->Pick(gen.ref_sets)));
        }
        return SetPairLeaf();
      default:
        // Rebuild each pair through projection/concat (rule 13/23 shapes).
        return SetApply(Project({"k", "v"}, Input()), SetPair(depth - 1));
    }
  }

  ExprPtr SetSetInt(int depth) {
    switch (rng->Int(0, 3)) {
      case 0:
        return Group(RandomIntSub(rng, 1), SetInt(depth - 1));
      case 1:
        if (!gen.nested_sets.empty() && rng->Chance(1, 2)) {
          return Var(rng->Pick(gen.nested_sets));
        }
        return Const(RandomNestedSet(rng, opts));
      case 2:
        return SetApply(SetMake(Input()), SetInt(depth - 1));
      default:
        return SetApply(DupElim(Input()), SetSetIntLeaf());
    }
  }

  ExprPtr SetSetIntLeaf() {
    if (!gen.nested_sets.empty() && rng->Chance(1, 2)) {
      return Var(rng->Pick(gen.nested_sets));
    }
    return Const(RandomNestedSet(rng, opts));
  }

  ExprPtr ArrInt(int depth) {
    if (depth <= 0) {
      if (!gen.int_arrays.empty() && rng->Chance(1, 2)) {
        return Var(rng->Pick(gen.int_arrays));
      }
      return Const(RandomIntArray(rng, opts));
    }
    switch (rng->Int(0, 4)) {
      case 0:
        return ArrApply(RandomIntSub(rng, 2), ArrInt(depth - 1));
      case 1:
        return ArrSelect(RandomIntPred(rng, 1), ArrInt(depth - 1));
      case 2: {
        int64_t lo = rng->Int(1, 4);
        return SubArr(lo, lo + rng->Int(0, 3), ArrInt(depth - 1),
                      /*lo_last=*/false, /*hi_last=*/rng->Chance(1, 6));
      }
      case 3:
        return ArrCat(ArrInt(depth - 1), ArrInt(0));
      default:
        return ArrDupElim(rng->Chance(1, 2)
                              ? ArrInt(depth - 1)
                              : ArrDiff(ArrInt(depth - 1), ArrInt(0)));
    }
  }
};

}  // namespace

ExprPtr RandomPlan(Rng* rng, const GenOptions& opts, const GenDb& gen) {
  PlanGen g{rng, opts, gen};
  int depth = static_cast<int>(rng->Int(1, opts.max_plan_depth));
  switch (rng->Int(0, 5)) {
    case 0: return g.SetInt(depth);
    case 1: return g.SetPair(depth);
    case 2: return g.SetSetInt(depth);
    case 3: return g.ArrInt(depth);
    case 4: return RandomJoinPlan(rng, opts, gen);
    default:
      // Scalar results, re-wrapped so every plan stays collection-valued.
      return SetMake(Agg(rng->Chance(1, 2) ? "count" : "max",
                         g.SetInt(depth - 1)));
  }
}

ExprPtr RandomJoinPlan(Rng* rng, const GenOptions& opts, const GenDb& gen) {
  PlanGen g{rng, opts, gen};
  ExprPtr a = g.SetPair(static_cast<int>(rng->Int(0, 1)));
  ExprPtr b = g.SetPair(static_cast<int>(rng->Int(0, 1)));
  PredicatePtr theta =
      Eq(TupExtract("k", TupExtract("_1", Input())),
         TupExtract("k", TupExtract("_2", Input())));
  if (rng->Chance(1, 3)) {
    // Composite key.
    theta = Predicate::And(
        theta, Eq(TupExtract("v", TupExtract("_1", Input())),
                  TupExtract("v", TupExtract("_2", Input()))));
  }
  if (rng->Chance(1, 3)) {
    // Residual non-equality atom, re-checked after the key match.
    theta = Predicate::And(
        theta, RandomAtomOver(rng, TupExtract("v", TupExtract(
                                       rng->Chance(1, 2) ? "_1" : "_2",
                                       Input()))));
  }
  ExprPtr join = SetApply(Comp(std::move(theta), Input()),
                          Cross(std::move(a), std::move(b)));
  switch (rng->Int(0, 2)) {
    case 0:
      return join;
    case 1:
      // Project one side out of the matched pairs.
      return SetApply(TupExtract(rng->Chance(1, 2) ? "_1" : "_2", Input()),
                      std::move(join));
    default:
      return DupElim(SetApply(
          TupExtract("k", TupExtract("_1", Input())), std::move(join)));
  }
}

std::string MutateSource(Rng* rng, const std::string& source) {
  static const std::string kAlphabet =
      "abcxyz_0189 \t\n(){}[].,:;\"=<>!+-*/%$\\";
  std::string s = source;
  int edits = static_cast<int>(rng->Int(1, 3));
  for (int i = 0; i < edits && !s.empty(); ++i) {
    size_t pos = static_cast<size_t>(
        rng->Int(0, static_cast<int64_t>(s.size()) - 1));
    switch (rng->Int(0, 4)) {
      case 0:  // truncate
        s.resize(pos);
        break;
      case 1:  // delete one char
        s.erase(pos, 1);
        break;
      case 2:  // insert one char
        s.insert(pos, 1,
                 kAlphabet[static_cast<size_t>(rng->Int(
                     0, static_cast<int64_t>(kAlphabet.size()) - 1))]);
        break;
      case 3: {  // duplicate a short span (breeds nesting and repetition)
        size_t len = static_cast<size_t>(rng->Int(1, 8));
        len = std::min(len, s.size() - pos);
        std::string span = s.substr(pos, len);
        s.insert(pos, span);
        break;
      }
      default:  // replace one char
        s[pos] = kAlphabet[static_cast<size_t>(rng->Int(
            0, static_cast<int64_t>(kAlphabet.size()) - 1))];
        break;
    }
  }
  return s;
}

}  // namespace check
}  // namespace excess
