#ifndef EXCESS_CHECK_SHRINK_H_
#define EXCESS_CHECK_SHRINK_H_

#include <functional>
#include <string>

#include "core/expr.h"

namespace excess {
namespace check {

/// Delta-debugging minimizers. Both take a reproduction predicate — "does
/// this smaller candidate still show the divergence?" — and greedily apply
/// size-reducing transformations until a local minimum. The predicate must
/// be deterministic; candidate evaluation is bounded so a pathological
/// predicate cannot loop forever.

/// Shrinks an algebra plan: hoists children over their parents, and trims
/// multiset/array literals (drop entries, reset cardinalities to 1).
/// Returns a plan no larger than `plan` for which `reproduces` holds
/// (`plan` itself if nothing smaller reproduces). `reproduces(plan)` must
/// be true on entry.
ExprPtr ShrinkExpr(ExprPtr plan,
                   const std::function<bool(const ExprPtr&)>& reproduces,
                   int max_candidates = 4000);

/// Shrinks a source string with ddmin-style chunk removal: tries deleting
/// progressively smaller substrings while the predicate keeps holding.
std::string ShrinkSource(
    std::string source,
    const std::function<bool(const std::string&)>& reproduces,
    int max_candidates = 4000);

}  // namespace check
}  // namespace excess

#endif  // EXCESS_CHECK_SHRINK_H_
