#include "check/faultinject.h"

#include <utility>

#include "core/eval.h"
#include "core/parallel.h"
#include "core/physical.h"
#include "util/string_util.h"

namespace excess {
namespace check {

Status FaultInjector::OnCheckpoint() {
  int64_t n = checkpoints_.fetch_add(1, std::memory_order_relaxed) + 1;
  switch (mode_) {
    case Mode::kCancelAt:
      if (n == fire_at_) {
        fired_.store(true, std::memory_order_relaxed);
        // Fire the shared token too, so sibling workers observe the
        // cancellation through the governor's normal poll, not just the
        // hook — exactly what an external Cancel() mid-query looks like.
        if (token_ != nullptr) token_->Cancel();
        return Status::Cancelled(
            StrCat("fault injection: cancelled at checkpoint ", n));
      }
      break;
    case Mode::kWorkerKill:
      if (WorkerPool::InBatch()) {
        int64_t b = batch_checkpoints_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (b == fire_at_) {
          fired_.store(true, std::memory_order_relaxed);
          return Status::Cancelled(
              StrCat("fault injection: worker batch killed at checkpoint ", b));
        }
      }
      break;
    case Mode::kNone:
    case Mode::kAllocFail:
      break;
  }
  return Status::OK();
}

Status FaultInjector::OnCharge(int64_t bytes) {
  (void)bytes;
  int64_t n = charges_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (mode_ == Mode::kAllocFail && n == fire_at_) {
    fired_.store(true, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        StrCat("fault injection: allocation ", n, " failed"));
  }
  return Status::OK();
}

namespace {

constexpr uint64_t kFaultSalt = 0x6661756c74ull;  // "fault"
constexpr int kPlansPerSeed = 2;

Divergence MakeFaultDivergence(std::string detail, uint64_t seed,
                               const ExprPtr& plan, std::string message) {
  Divergence d;
  d.oracle = "fault";
  d.detail = std::move(detail);
  d.seed = seed;
  d.before_tree = plan ? plan->ToTreeString() : "";
  d.message = std::move(message);
  return d;
}

/// Geometric fault-point schedule over [1, total]: 1, 2, 4, ... plus the
/// final event itself (the boundary where the fault fires after all real
/// work). Linear sweeps would make the harness quadratic in plan size.
std::vector<int64_t> SweepPoints(int64_t total) {
  std::vector<int64_t> pts;
  for (int64_t k = 1; k < total; k *= 2) pts.push_back(k);
  if (total > 0) pts.push_back(total);
  return pts;
}

const char* ModeName(FaultInjector::Mode m) {
  switch (m) {
    case FaultInjector::Mode::kAllocFail:
      return "alloc-fail";
    case FaultInjector::Mode::kCancelAt:
      return "cancel-at";
    case FaultInjector::Mode::kWorkerKill:
      return "worker-kill";
    case FaultInjector::Mode::kNone:
      break;
  }
  return "none";
}

}  // namespace

Status CheckFaultSeed(uint64_t seed, const GenOptions& opts,
                      FaultSweepStats* stats, std::vector<Divergence>* out) {
  Rng rng(seed ^ kFaultSalt);
  Database db;
  GenDb gen;
  EXA_RETURN_NOT_OK(BuildRandomDatabase(&rng, opts, &db, &gen));
  for (int p = 0; p < kPlansPerSeed; ++p) {
    // Alternate logical plans with physically lowered joins so the sweep
    // reaches the hash-join emit loop's checkpoints, not just EvalNode's.
    ExprPtr plan = (p % 2 == 0) ? RandomPlan(&rng, opts, gen)
                                : LowerPhysical(RandomJoinPlan(&rng, opts, gen));
    ++stats->plans;

    // Reference run: unlimited governor, counting injector. Interns any
    // OIDs the plan mints, so every faulted run below replays over
    // identical store state (interning is content-addressed, hence
    // idempotent).
    Governor ref_gov;
    FaultInjector counter(FaultInjector::Mode::kNone, 0);
    ref_gov.set_hooks(&counter);
    Evaluator ref_ev(&db);
    ref_ev.set_parallel_threshold(1);
    ref_ev.set_governor(&ref_gov);
    auto reference = ref_ev.Eval(plan);
    if (!reference.ok()) {
      continue;  // generated plan not evaluable (e.g. type-hostile); skip
    }
    const ValuePtr& want = *reference;

    struct ModeTotal {
      FaultInjector::Mode mode;
      int64_t total;
    };
    const ModeTotal sweeps[] = {
        {FaultInjector::Mode::kAllocFail, counter.charges_seen()},
        {FaultInjector::Mode::kCancelAt, counter.checkpoints_seen()},
        {FaultInjector::Mode::kWorkerKill, counter.batch_checkpoints_seen()},
    };
    for (const ModeTotal& mt : sweeps) {
      for (int64_t k : SweepPoints(mt.total)) {
        ++stats->runs;
        auto token = std::make_shared<CancelToken>();
        Governor gov(ExecLimits::Unlimited(), token);
        FaultInjector inj(mt.mode, k, token);
        gov.set_hooks(&inj);
        Evaluator ev(&db);
        ev.set_parallel_threshold(1);
        ev.set_governor(&gov);
        auto got = ev.Eval(plan);

        if (got.ok()) {
          // The fault point was never reached (possible for worker-kill
          // when the pool ran this plan serially, and for schedule-
          // dependent batch counts). The answer must be the reference one.
          ++stats->clean;
          if (!(*got)->Equals(*want)) {
            out->push_back(MakeFaultDivergence(
                ModeName(mt.mode), seed, plan,
                StrCat("un-fired fault run diverged at point ", k, ": got ",
                       (*got)->ToString(), ", want ", want->ToString())));
          }
        } else {
          StatusCode expect = FaultInjector::ExpectedCode(mt.mode);
          if (!inj.fired()) {
            out->push_back(MakeFaultDivergence(
                ModeName(mt.mode), seed, plan,
                StrCat("run failed at point ", k,
                       " without the injector firing: ",
                       got.status().ToString())));
          } else if (got.status().code() != expect) {
            out->push_back(MakeFaultDivergence(
                ModeName(mt.mode), seed, plan,
                StrCat("fault at point ", k, " surfaced as ",
                       got.status().ToString(), ", want code ",
                       StatusCodeToString(expect))));
          } else {
            ++stats->faults_fired;
          }
        }

        // Graceful degradation: the same evaluator, governor detached,
        // must still produce the reference answer over the same database.
        ++stats->replays;
        ev.set_governor(nullptr);
        auto replay = ev.Eval(plan);
        if (!replay.ok()) {
          out->push_back(MakeFaultDivergence(
              ModeName(mt.mode), seed, plan,
              StrCat("post-fault replay failed at point ", k, ": ",
                     replay.status().ToString())));
        } else if (!(*replay)->Equals(*want)) {
          out->push_back(MakeFaultDivergence(
              ModeName(mt.mode), seed, plan,
              StrCat("post-fault replay diverged at point ", k, ": got ",
                     (*replay)->ToString(), ", want ", want->ToString())));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace check
}  // namespace excess
