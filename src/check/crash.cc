#include "check/crash.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/eval.h"
#include "excess/emit.h"
#include "excess/parser.h"
#include "excess/session.h"
#include "storage/serialize.h"
#include "storage/wal.h"
#include "util/fileio.h"
#include "util/string_util.h"

namespace excess {
namespace check {

namespace {

namespace fs = std::filesystem;

constexpr uint64_t kPreSeedSalt = 0xC8A5'11F0'D00D'FEEDull;
constexpr uint64_t kTraceSalt = 0x7124'CE00'5EED'0001ull;
constexpr uint64_t kFlipSalt = 0xF11B'0000'0000'0001ull;

/// One executed statement of a trace (or a checkpoint marker).
struct TraceStep {
  std::string source;
  bool checkpoint = false;
};

std::string TraceText(const std::vector<TraceStep>& steps) {
  std::string out;
  for (const auto& s : steps) {
    out += s.checkpoint ? "checkpoint" : s.source;
    out += "\n";
  }
  return out;
}

Divergence Div(const std::string& detail, uint64_t seed,
               const std::vector<TraceStep>& steps, std::string message) {
  Divergence d;
  d.oracle = "crash";
  d.detail = detail;
  d.seed = seed;
  d.message = std::move(message);
  d.before_tree = TraceText(steps);
  return d;
}

/// Self-cleaning per-seed scratch directory under the system temp dir.
class ScratchDir {
 public:
  ScratchDir(uint64_t seed, const char* tag) {
    std::error_code ec;
    dir_ = fs::temp_directory_path(ec) /
           StrCat("excess_crash_", ::getpid(), "_", tag, "_", seed);
    fs::remove_all(dir_, ec);
    fs::create_directories(dir_, ec);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  fs::path dir_;
};

// --- crash injection ---------------------------------------------------------

enum class FailMode { kClean, kPartialHalf, kPartialMost, kFsync, kSnapshot };

const char* ModeName(FailMode m) {
  switch (m) {
    case FailMode::kClean: return "clean";
    case FailMode::kPartialHalf: return "partial-half";
    case FailMode::kPartialMost: return "partial-most";
    case FailMode::kFsync: return "fsync";
    case FailMode::kSnapshot: return "snapshot";
  }
  return "?";
}

/// Fails the `fail_at`-th WAL append (1-based), in one of several styles:
/// refuse cleanly, leave a torn partial write, fail at fsync, or (kSnapshot)
/// refuse the first snapshot write after that append.
struct FailNthHooks : storage::StorageHooks {
  int fail_at = 1;
  FailMode mode = FailMode::kClean;
  int appends = 0;
  bool fired = false;

  bool OnWalAppend(size_t record_bytes, int64_t* partial_bytes) override {
    ++appends;
    if (appends != fail_at || mode == FailMode::kFsync ||
        mode == FailMode::kSnapshot) {
      return true;
    }
    fired = true;
    if (mode == FailMode::kPartialHalf) {
      *partial_bytes = static_cast<int64_t>(record_bytes / 2);
    } else if (mode == FailMode::kPartialMost) {
      *partial_bytes =
          static_cast<int64_t>(record_bytes > 0 ? record_bytes - 1 : 0);
    }
    return false;
  }

  bool OnFsync() override {
    // The first sync at or after the fail_at-th append: for a single-record
    // commit that is the sync right behind it; for a transaction's group
    // batch it is the group's one sync, so the whole group crashes.
    if (mode == FailMode::kFsync && appends >= fail_at && !fired) {
      fired = true;
      return false;
    }
    return true;
  }

  bool OnSnapshotWrite(size_t) override {
    if (mode == FailMode::kSnapshot && appends >= fail_at && !fired) {
      fired = true;
      return false;
    }
    return true;
  }
};

// --- trace generation --------------------------------------------------------

GenOptions PreSeedOptions(const CrashOptions& opts) { return opts.gen; }

struct TypeInfo {
  std::string name;
  std::string field;
};

/// Mutable generation state: the shadow session everything is validated
/// against, plus the name pools candidates draw from.
struct TraceGen {
  Rng rng;
  GenOptions denotable;  // Const leaves must stay EXCESS-denotable
  Database* db;
  MethodRegistry* methods;
  GenDb* gen;
  std::vector<TypeInfo> types;
  std::vector<std::string> int_sets;
  std::vector<std::string> index_names;
  int next_id = 0;
  /// Mirrors the shadow session's transaction state: checkpoints are not
  /// generated inside a transaction (the live run would reject them), and
  /// an open transaction is closed at trace end.
  bool in_txn = false;

  TraceGen(uint64_t seed, const CrashOptions& opts, Database* db_in,
           MethodRegistry* methods_in, GenDb* gen_in)
      : rng(seed ^ kTraceSalt), denotable(opts.gen), db(db_in),
        methods(methods_in), gen(gen_in) {
    denotable.with_nulls = false;
    int_sets = gen_in->int_sets;
  }

  /// One candidate program (possibly multi-statement); empty = skip.
  std::string MakeCandidate() {
    switch (rng.Int(0, 15)) {
      case 0:
      case 1: {  // define type, sometimes with inheritance
        int id = next_id++;
        std::string name = StrCat("Q", id);
        std::string field = StrCat("f", id);
        std::string s =
            StrCat("define type ", name, ": ( ", field, ": int4 )");
        if (!types.empty() && rng.Chance(1, 2)) {
          s += StrCat(" inherits ", rng.Pick(types).name);
        }
        types.push_back({name, field});
        return s;
      }
      case 2: {  // create a fresh {int4} collection
        std::string name = StrCat("X", next_id++);
        int_sets.push_back(name);
        return StrCat("create ", name, ": { int4 }");
      }
      case 3:
      case 4:  // append one occurrence
        return StrCat("append ", rng.Int(-5, 9), " to ", rng.Pick(int_sets));
      case 5:  // append a literal multiset
        return StrCat("append all {", rng.Int(0, 4), ", ", rng.Int(0, 4),
                      ", ", rng.Int(0, 4), "} to ", rng.Pick(int_sets));
      case 6: {  // delete by predicate
        const std::string& s = rng.Pick(int_sets);
        return StrCat("delete ", s, " where ", s, " > ", rng.Int(-2, 6));
      }
      case 7:
      case 8: {  // simple retrieve-into; result joins the int-set pool
        const std::string& s = rng.Pick(int_sets);
        std::string name = StrCat("R", next_id++);
        std::string stmt =
            StrCat("retrieve (x) from x in ", s, " where x > ",
                   rng.Int(-2, 5), " into ", name);
        int_sets.push_back(name);
        return stmt;
      }
      case 9: {  // a random algebra plan, emitted to EXCESS and stored
        ExprPtr plan = RandomPlan(&rng, denotable, *gen);
        Evaluator ev(db, methods);
        if (!ev.Eval(plan).ok()) return "";
        Emitter em(db, methods);
        auto prog = em.Emit(plan);
        if (!prog.ok() || prog->source().empty() ||
            prog->source().size() > 4096) {
          return "";
        }
        return prog->source();
      }
      case 10:  // range declaration (context statement)
        return StrCat("range of W", next_id++, " is ", rng.Pick(int_sets));
      case 11: {  // method definition (context statement)
        if (types.empty()) return "";
        const TypeInfo& t = rng.Pick(types);
        return StrCat("define ", t.name, " function g", next_id++,
                      " () returns int4 { retrieve (this.", t.field, " * ",
                      rng.Int(2, 5), ") }");
      }
      case 12:  // open a transaction: later mutations stage until case 13
        if (in_txn) return "";
        in_txn = true;
        return "begin";
      case 13: {  // close the open transaction, usually by committing
        if (!in_txn) return "";
        in_txn = false;
        return rng.Chance(1, 4) ? "rollback" : "commit";
      }
      case 14: {  // secondary-index DDL: recovery must rebuild the entries
        std::string name = StrCat("I", next_id++);
        index_names.push_back(name);
        std::string kind = rng.Chance(1, 2) ? " using ordered" : "";
        if (!gen->pair_sets.empty() && rng.Chance(1, 2)) {
          return StrCat("create index ", name, " on ", rng.Pick(gen->pair_sets),
                        " (k)", kind);
        }
        // Identity index; the set may not exist yet (X/R pools grow during
        // the trace), in which case the shadow session rejects it — skipped.
        return StrCat("create index ", name, " on ", rng.Pick(int_sets), " ()",
                      kind);
      }
      case 15:  // drop one; unknown names are rejected by the shadow
        if (index_names.empty()) return "";
        return StrCat("drop index ", rng.Pick(index_names));
    }
    return "";
  }
};

/// Generates the committed-statement trace for `seed` by validating every
/// candidate against a shadow session (same pre-seeded database, no
/// storage). Only statements that commit make it into the trace, so a
/// replay of any prefix is failure-free by construction.
Status GenerateSteps(uint64_t seed, const CrashOptions& opts,
                     std::vector<TraceStep>* steps, OracleStats* stats) {
  Rng pre(seed ^ kPreSeedSalt);
  Database db;
  GenDb gen;
  EXA_RETURN_NOT_OK(BuildRandomDatabase(&pre, PreSeedOptions(opts), &db, &gen));
  MethodRegistry methods(&db.catalog());
  Session shadow(&db, &methods);
  TraceGen tg(seed, opts, &db, &methods, &gen);
  for (int i = 0; i < opts.max_statements; ++i) {
    std::string program = tg.MakeCandidate();
    if (program.empty()) {
      ++stats->skipped;
      continue;
    }
    auto parsed = Parse(program);
    if (!parsed.ok()) {
      ++stats->skipped;
      continue;
    }
    for (const auto& stmt : *parsed) {
      auto r = shadow.ExecuteStatement(stmt);
      if (!r.ok()) {
        ++stats->skipped;
        break;  // drop the candidate's remaining statements
      }
      steps->push_back({stmt.source, false});
    }
    // No checkpoints inside a transaction: the live run rejects them (a
    // snapshot must not bake in uncommitted work), and checkpoint steps are
    // not shadow-validated.
    if (opts.with_checkpoint && !tg.in_txn && tg.rng.Chance(1, 6)) {
      steps->push_back({"", true});
    }
  }
  if (tg.in_txn) {
    // Close a trace-final open transaction so every generated trace ends in
    // a committed state the sweeps can anchor on.
    Status closed = Status::OK();
    auto parsed = ParseStatement("commit");
    if (parsed.ok()) {
      auto r = shadow.ExecuteStatement(*parsed);
      closed = r.ok() ? Status::OK() : r.status();
    } else {
      closed = parsed.status();
    }
    EXA_RETURN_NOT_OK(closed);
    steps->push_back({"commit", false});
  }
  return Status::OK();
}

// --- trace execution ---------------------------------------------------------

struct ExecResult {
  /// ref_states[p] = canonical database bytes after p durable commits. A
  /// transaction's group commit advances the count by the whole group, so
  /// the prefixes strictly inside it are unreachable by correct recovery;
  /// they hold an empty sentinel, and recovering one is a divergence
  /// (atomicity violated: a crash exposed part of a transaction).
  std::vector<std::string> ref_states;
  uint64_t commits = 0;
  bool stopped_on_failure = false;  // an injected crash point was hit
  Status error;                     // a NON-injected failure (trace invalid)
};

/// Replays `steps` against a fresh pre-seeded database with durable storage
/// at `path`, capturing the canonical state after every commit. With
/// `hooks`, execution stops at the first injected failure — the simulated
/// crash point.
ExecResult ExecuteSteps(uint64_t seed, const CrashOptions& opts,
                        const std::vector<TraceStep>& steps,
                        const std::string& path, FailNthHooks* hooks) {
  ExecResult out;
  Rng pre(seed ^ kPreSeedSalt);
  Database db;
  GenDb gen;
  out.error = BuildRandomDatabase(&pre, PreSeedOptions(opts), &db, &gen);
  if (!out.error.ok()) return out;
  MethodRegistry methods(&db.catalog());
  Session session(&db, &methods);
  if (hooks != nullptr) session.set_storage_hooks(hooks);
  out.error = session.OpenStorage(path);
  if (!out.error.ok()) return out;
  out.ref_states.push_back(storage::CanonicalDatabaseBytes(db));
  for (const auto& step : steps) {
    Status st = Status::OK();
    if (step.checkpoint) {
      st = session.Checkpoint();
    } else {
      auto parsed = ParseStatement(step.source);
      if (!parsed.ok()) {
        out.error = parsed.status();
        return out;
      }
      uint64_t before = session.next_durable_lsn();
      auto r = session.ExecuteStatement(*parsed);
      st = r.ok() ? Status::OK() : r.status();
      if (st.ok() && session.next_durable_lsn() > before) {
        // Mid-group prefixes get sentinels (see ref_states); the state
        // after the full commit — of one statement or a whole group — is
        // the only one recovery may surface.
        for (uint64_t p = before; p < session.next_durable_lsn(); ++p) {
          out.ref_states.push_back("");
        }
        out.ref_states.back() = storage::CanonicalDatabaseBytes(db);
      }
    }
    if (!st.ok()) {
      if (hooks != nullptr && hooks->fired) {
        out.stopped_on_failure = true;  // this is the simulated crash
        out.commits = session.next_durable_lsn() - 1;
        return out;
      }
      out.error = st;
      return out;
    }
  }
  out.commits = session.next_durable_lsn() - 1;
  return out;
}

// --- recovery ----------------------------------------------------------------

struct Recovered {
  Status status;
  uint64_t prefix = 0;        // committed statements the state covers
  uint64_t snapshot_seq = 0;  // commits baked into the loaded snapshot
  std::string canonical;
};

Recovered Reopen(const std::string& path) {
  Recovered r;
  Database db;
  MethodRegistry methods(&db.catalog());
  Session session(&db, &methods);
  r.status = session.OpenStorage(path);
  if (r.status.ok()) {
    const storage::RecoveryInfo& info = session.last_recovery();
    r.prefix = info.snapshot_seq + info.replayed;
    r.snapshot_seq = info.snapshot_seq;
    r.canonical = storage::CanonicalDatabaseBytes(db);
  }
  return r;
}

Status WriteCopy(const std::string& path, const std::string& snap,
                 const std::string& wal) {
  EXA_RETURN_NOT_OK(util::WriteFileAtomic(path, snap, false));
  return util::WriteFileAtomic(path + ".wal", wal, false);
}

/// Geometric offsets over [0, n): 0, 1, 2, 4, ... plus n-1.
std::vector<size_t> GeometricOffsets(size_t n) {
  std::vector<size_t> out;
  if (n == 0) return out;
  out.push_back(0);
  for (size_t d = 1; d < n; d *= 2) out.push_back(d);
  if (out.back() != n - 1) out.push_back(n - 1);
  return out;
}

// --- the sweep ---------------------------------------------------------------

/// Runs the full crash-point sweep for one already-generated trace. All
/// divergences are appended to `out`; a reduced trace that cannot even run
/// produces only a "live-run" divergence (the shrinker keys on that).
Status SweepTrace(uint64_t seed, const CrashOptions& opts,
                  const std::vector<TraceStep>& steps, ScratchDir* scratch,
                  OracleStats* stats, std::vector<Divergence>* out) {
  const std::string base = scratch->Path("base.exdb");
  ExecResult main_run = ExecuteSteps(seed, opts, steps, base, nullptr);
  if (!main_run.error.ok()) {
    out->push_back(Div("live-run", seed, steps,
                       StrCat("trace fails under storage: ",
                              main_run.error.ToString())));
    return Status::OK();
  }
  const uint64_t total = main_run.commits;
  const std::vector<std::string>& ref = main_run.ref_states;
  EXA_ASSIGN_OR_RETURN(std::string snap, util::ReadFile(base));
  EXA_ASSIGN_OR_RETURN(std::string wal, util::ReadFile(base + ".wal"));
  const std::string copy = scratch->Path("case.exdb");

  auto check_state = [&](const Recovered& r, const std::string& what,
                         uint64_t expect_prefix, bool exact_prefix) -> bool {
    ++stats->comparisons;
    if (exact_prefix && r.prefix != expect_prefix) {
      out->push_back(Div(what, seed, steps,
                         StrCat("recovered prefix ", r.prefix, ", expected ",
                                expect_prefix, " of ", total)));
      return false;
    }
    if (r.prefix >= ref.size()) {
      out->push_back(Div(what, seed, steps,
                         StrCat("recovered prefix ", r.prefix,
                                " exceeds committed count ", total)));
      return false;
    }
    if (ref[r.prefix].empty()) {
      out->push_back(Div(what, seed, steps,
                         StrCat("recovered prefix ", r.prefix,
                                " lands inside a transaction's commit group "
                                "— atomicity violated")));
      return false;
    }
    if (r.canonical != ref[r.prefix]) {
      out->push_back(Div(what, seed, steps,
                         StrCat("recovered state diverges from re-executing "
                                "the first ", r.prefix, " of ", total,
                                " committed statements")));
      return false;
    }
    return true;
  };

  // -- clean reopen: the full committed state survives ----------------------
  ++stats->plans;
  EXA_RETURN_NOT_OK(WriteCopy(copy, snap, wal));
  Recovered clean = Reopen(copy);
  if (!clean.status.ok()) {
    out->push_back(Div("clean-reopen", seed, steps, clean.status.ToString()));
    return Status::OK();
  }
  const uint64_t snapshot_seq = clean.snapshot_seq;
  if (!check_state(clean, "clean-reopen", total, /*exact_prefix=*/true)) {
    return Status::OK();
  }

  // -- checkpoint idempotence: fold the WAL, reopen, same state -------------
  {
    ++stats->plans;
    Database db;
    MethodRegistry methods(&db.catalog());
    Session s(&db, &methods);
    Status open = s.OpenStorage(copy);
    Status ck = open.ok() ? s.Checkpoint() : open;
    if (!ck.ok()) {
      out->push_back(Div("checkpoint", seed, steps, ck.ToString()));
    }
  }
  {
    Recovered r = Reopen(copy);
    if (!r.status.ok()) {
      out->push_back(Div("checkpoint-reopen", seed, steps,
                         r.status.ToString()));
    } else {
      check_state(r, "checkpoint-reopen", total, /*exact_prefix=*/true);
    }
  }

  // -- WAL truncation sweep: every tail loss recovers a clean prefix --------
  if (opts.sweep_truncations) {
    std::vector<size_t> cuts;
    for (size_t d = 1; d < wal.size(); d *= 2) cuts.push_back(wal.size() - d);
    cuts.push_back(0);
    if (wal.size() > 7) cuts.push_back(7);  // torn header
    if (wal.size() > 8) cuts.push_back(8);  // header only
    for (size_t k : cuts) {
      ++stats->plans;
      std::string torn = wal.substr(0, k);
      // The expected prefix is exactly the records that survive the cut.
      uint64_t expect = snapshot_seq;
      if (auto scan = storage::ScanWalBytes(torn); scan.ok()) {
        for (const auto& rec : scan->records) {
          if (rec.lsn > snapshot_seq) ++expect;
        }
      }
      EXA_RETURN_NOT_OK(WriteCopy(copy, snap, torn));
      Recovered r = Reopen(copy);
      std::string what = StrCat("truncate@", k);
      if (!r.status.ok()) {
        out->push_back(Div(what, seed, steps,
                           StrCat("truncation must recover, got: ",
                                  r.status.ToString())));
        continue;
      }
      check_state(r, what, expect, /*exact_prefix=*/true);
    }
    // A deleted WAL falls back to the snapshot alone.
    ++stats->plans;
    EXA_RETURN_NOT_OK(WriteCopy(copy, snap, ""));
    std::error_code ec;
    fs::remove(copy + ".wal", ec);
    Recovered r = Reopen(copy);
    if (!r.status.ok()) {
      out->push_back(Div("missing-wal", seed, steps, r.status.ToString()));
    } else {
      check_state(r, "missing-wal", snapshot_seq, /*exact_prefix=*/true);
    }
  }

  // -- WAL bit-flip sweep: corruption recovers a prefix or fails typed ------
  if (opts.sweep_bitflips) {
    Rng flip_rng(seed ^ kFlipSalt);
    for (size_t off : GeometricOffsets(wal.size())) {
      ++stats->plans;
      std::string bad = wal;
      bad[off] ^= static_cast<char>(1u << flip_rng.Int(0, 7));
      EXA_RETURN_NOT_OK(WriteCopy(copy, snap, bad));
      Recovered r = Reopen(copy);
      std::string what = StrCat("wal-bitflip@", off);
      if (r.status.ok()) {
        check_state(r, what, 0, /*exact_prefix=*/false);
      } else if (!r.status.IsDataLoss()) {
        out->push_back(Div(what, seed, steps,
                           StrCat("expected kDataLoss, got: ",
                                  r.status.ToString())));
      } else {
        ++stats->comparisons;
      }
    }
  }

  // -- live write-failure sweep: crash at the k-th commit -------------------
  if (opts.sweep_write_failures && total > 0) {
    std::vector<uint64_t> points;
    for (uint64_t n = 1; n <= total; n *= 2) points.push_back(n);
    if (points.back() != total) points.push_back(total);
    const FailMode modes[] = {FailMode::kClean, FailMode::kPartialHalf,
                              FailMode::kPartialMost, FailMode::kFsync,
                              FailMode::kSnapshot};
    size_t mode_idx = 0;
    for (uint64_t n : points) {
      ++stats->plans;
      FailNthHooks hooks;
      hooks.fail_at = static_cast<int>(n);
      hooks.mode = modes[mode_idx++ % (opts.with_checkpoint ? 5 : 4)];
      std::string fpath = scratch->Path(StrCat("fail", n, ".exdb"));
      ExecResult run = ExecuteSteps(seed, opts, steps, fpath, &hooks);
      std::string what = StrCat("walfail@", n, ":", ModeName(hooks.mode));
      if (!run.error.ok()) {
        out->push_back(Div(what, seed, steps,
                           StrCat("unexpected trace failure: ",
                                  run.error.ToString())));
        continue;
      }
      if (!run.stopped_on_failure) {
        // kSnapshot needs a checkpoint after commit n; traces without one
        // simply complete, which is a clean run, not a finding.
        ++stats->skipped;
        continue;
      }
      Recovered r = Reopen(fpath);
      if (!r.status.ok()) {
        out->push_back(Div(what, seed, steps,
                           StrCat("reopen after injected failure: ",
                                  r.status.ToString())));
        continue;
      }
      check_state(r, what, run.commits, /*exact_prefix=*/true);
    }
  }

  // -- snapshot bit-flip sweep: checksums make corruption loud --------------
  if (opts.sweep_snapshot_flips) {
    Rng flip_rng(seed ^ (kFlipSalt + 1));
    for (size_t off : GeometricOffsets(snap.size())) {
      ++stats->plans;
      std::string bad = snap;
      bad[off] ^= static_cast<char>(1u << flip_rng.Int(0, 7));
      EXA_RETURN_NOT_OK(WriteCopy(copy, bad, wal));
      Recovered r = Reopen(copy);
      std::string what = StrCat("snap-bitflip@", off);
      if (r.status.ok()) {
        out->push_back(Div(what, seed, steps,
                           "corrupt snapshot accepted silently"));
      } else if (!r.status.IsDataLoss()) {
        out->push_back(Div(what, seed, steps,
                           StrCat("expected kDataLoss, got: ",
                                  r.status.ToString())));
      } else {
        ++stats->comparisons;
      }
    }
  }

  return Status::OK();
}

/// Greedy one-pass trace minimizer: drop each statement (newest first) and
/// keep the removal when the sweep still finds a real divergence. Reduced
/// traces that cannot even execute only yield "live-run", which does not
/// count as a reproduction.
std::vector<TraceStep> ShrinkTrace(uint64_t seed, const CrashOptions& opts,
                                   std::vector<TraceStep> steps) {
  CrashOptions quiet = opts;
  quiet.shrink = false;
  auto reproduces = [&](const std::vector<TraceStep>& cand) {
    ScratchDir scratch(seed, "shrink");
    OracleStats tmp;
    std::vector<Divergence> divs;
    if (!SweepTrace(seed, quiet, cand, &scratch, &tmp, &divs).ok()) {
      return false;
    }
    for (const auto& d : divs) {
      if (d.detail != "live-run") return true;
    }
    return false;
  };
  if (steps.size() > 40 || !reproduces(steps)) return steps;
  for (size_t i = steps.size(); i-- > 0;) {
    std::vector<TraceStep> cand = steps;
    cand.erase(cand.begin() + static_cast<ptrdiff_t>(i));
    if (reproduces(cand)) steps = std::move(cand);
  }
  return steps;
}

}  // namespace

Status CheckCrashRecoverySeed(uint64_t seed, const CrashOptions& opts,
                              OracleStats* stats,
                              std::vector<Divergence>* out) {
  std::vector<TraceStep> steps;
  EXA_RETURN_NOT_OK(GenerateSteps(seed, opts, &steps, stats));
  ScratchDir scratch(seed, "sweep");
  size_t before = out->size();
  EXA_RETURN_NOT_OK(SweepTrace(seed, opts, steps, &scratch, stats, out));
  if (opts.shrink && out->size() > before) {
    std::vector<TraceStep> minimal = ShrinkTrace(seed, opts, steps);
    if (minimal.size() < steps.size()) {
      out->push_back(Div("shrunk-trace", seed, minimal,
                         StrCat("minimal reproducing trace (", minimal.size(),
                                " of ", steps.size(), " statements)")));
    }
  }
  return Status::OK();
}

}  // namespace check
}  // namespace excess
