#include "check/wirechaos.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "excess/session.h"
#include "server/client.h"
#include "server/server.h"
#include "util/string_util.h"

namespace excess {
namespace check {

namespace {

namespace fs = std::filesystem;

using server::Applied;
using server::Client;
using server::RetryPolicy;
using server::Server;
using server::ServerHooks;
using server::ServerOptions;

/// Self-cleaning per-seed scratch directory under the system temp dir.
class ScratchDir {
 public:
  explicit ScratchDir(uint64_t seed) {
    std::error_code ec;
    dir_ = fs::temp_directory_path(ec) /
           StrCat("excess_chaos_", ::getpid(), "_", seed);
    fs::remove_all(dir_, ec);
    fs::create_directories(dir_, ec);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  fs::path dir_;
};

const char* FaultName(ServerHooks::WireFault f) {
  switch (f) {
    case ServerHooks::WireFault::kNone: return "none";
    case ServerHooks::WireFault::kDropBeforeAck: return "drop-before-ack";
    case ServerHooks::WireFault::kDropAfterAck: return "drop-after-ack";
    case ServerHooks::WireFault::kTornAck: return "torn-ack";
    case ServerHooks::WireFault::kDuplicateAck: return "duplicate-ack";
    case ServerHooks::WireFault::kStallAck: return "stall-ack";
  }
  return "?";
}

/// Injects one wire fault at statement-response send `fault_at` (-1 =
/// clean run) and counts sends either way.
struct ChaosHooks : ServerHooks {
  int64_t fault_at = -1;
  WireFault mode = WireFault::kNone;
  std::atomic<uint64_t> sends{0};

  WireFault OnWireSend(uint64_t idx) override {
    uint64_t want = idx + 1;
    uint64_t cur = sends.load(std::memory_order_relaxed);
    while (cur < want &&
           !sends.compare_exchange_weak(cur, want, std::memory_order_relaxed)) {
    }
    if (static_cast<int64_t>(idx) == fault_at) return mode;
    return WireFault::kNone;
  }
};

/// One transactional group of the trace: `value` appended to both A and B
/// between `begin` and a tokened `commit` (or `rollback`).
struct Group {
  int value = 0;
  bool is_rollback = false;
  std::string token;
};

/// What the driver learned about a group's fate — the claim the recovered
/// database is checked against.
enum class Outcome { kCommitted, kAborted, kUnknown };

const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kCommitted: return "committed";
    case Outcome::kAborted: return "aborted";
    case Outcome::kUnknown: return "unknown";
  }
  return "?";
}

std::vector<Group> MakeTrace(uint64_t seed, const WireChaosOptions& opts) {
  std::mt19937_64 rng(seed * 0x9E37'79B9'7F4A'7C15ull + 1);
  std::vector<Group> groups;
  groups.reserve(static_cast<size_t>(opts.groups));
  for (int g = 0; g < opts.groups; ++g) {
    Group grp;
    grp.value = g + 1;
    grp.is_rollback = rng() % 4 == 0;
    grp.token = StrCat("t", seed, "-", g);
    groups.push_back(std::move(grp));
  }
  return groups;
}

/// Drives the trace through a retrying client against a live server.
/// Inside a transaction the appends are single-shot: a retry after a
/// reconnect would execute outside the (connection-scoped, now reaped)
/// transaction and auto-commit half a group — so any append hiccup
/// abandons the group instead, and the server's reaper keeps it atomic.
/// Begin/rollback/commit go through the retry layer; commit's token makes
/// its retry exactly-once.
std::vector<Outcome> DriveWorkload(const std::string& sock, uint64_t seed,
                                   const std::vector<Group>& groups) {
  std::vector<Outcome> outcomes(groups.size(), Outcome::kAborted);
  // The per-frame timeout must stay below the server's 150ms stall-fault
  // sleep so a stalled ack surfaces as a loss; beyond that, smaller is
  // only faster — every timeout path is a legal outcome the oracle
  // accepts, so a slow machine cannot turn this into a false positive.
  auto connected = Client::ConnectUnix(sock, /*timeout_ms=*/40);
  if (!connected.ok()) return outcomes;
  Client client = std::move(*connected);
  RetryPolicy policy;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 15;
  for (size_t g = 0; g < groups.size(); ++g) {
    const Group& grp = groups[g];
    policy.jitter_seed = seed ^ (0xABCDull + g);
    if (!client.connected() && !client.Reconnect().ok()) continue;
    auto begun = client.Begin(/*deadline_ms=*/3'000, policy);
    if (!begun.transport.ok() || begun.resp.code != StatusCode::kOk) {
      client.Close();
      continue;  // kAborted: nothing of this group ever ran
    }
    bool staged = true;
    for (const char* set : {"A", "B"}) {
      auto appended =
          client.Execute(StrCat("append ", grp.value, " to ", set), 3'000);
      if (!appended.ok() || appended->code != StatusCode::kOk) {
        staged = false;
        break;
      }
    }
    if (!staged) {
      // The append (or its ack) was lost; the transaction dies with the
      // connection and the reaper rolls it back.
      client.Close();
      continue;
    }
    if (grp.is_rollback) {
      auto rolled = client.Rollback(/*deadline_ms=*/3'000, policy);
      if (!rolled.transport.ok()) client.Close();
      continue;  // kAborted either way: rolled back, or reaped with the conn
    }
    auto committed = client.Commit(grp.token, /*deadline_ms=*/3'000, policy);
    if (committed.transport.ok() && committed.resp.code == StatusCode::kOk) {
      outcomes[g] = Outcome::kCommitted;
    } else if (committed.applied == Applied::kUnknown) {
      outcomes[g] = Outcome::kUnknown;
      client.Close();
    } else {
      // Definitely not applied: the reaped transaction answered the retried
      // commit with a typed error, or the budget ran out before any
      // ambiguous loss.
      client.Close();
    }
  }
  return outcomes;
}

/// Occurrences of `value` in set `name` in the recovered database, or -1
/// on any error.
int64_t CountOf(Session* session, const char* name, int value) {
  auto r = session->Execute(StrCat("retrieve ( count(x from x in ", name,
                                   " where x = ", value, ") )"));
  if (!r.ok() || *r == nullptr || !(*r)->IsNumeric()) return -1;
  return (*r)->as_int();
}

/// One full run: fresh database, server with `hooks`, the driven workload,
/// drain, reopen through a plain Session, and the per-group assertions.
Status RunOnce(uint64_t seed, const WireChaosOptions& opts,
               const std::vector<Group>& groups, ScratchDir* scratch,
               int run, ChaosHooks* hooks, OracleStats* stats,
               std::vector<Divergence>* out) {
  const std::string db_path = scratch->Path(StrCat("run", run, ".exdb"));
  const std::string sock = scratch->Path(StrCat("s", run, ".sock"));
  ServerOptions sopts;
  sopts.unix_path = sock;
  sopts.db_path = db_path;
  sopts.workers = 2;
  sopts.hooks = hooks;
  Server server(sopts);
  EXA_RETURN_NOT_OK(server.Start());
  for (const char* set : {"A", "B"}) {
    auto created = server.ExecuteLocal(StrCat("create ", set, ": { int4 }"));
    if (!created.ok()) {
      server.Shutdown();
      return created.status();
    }
  }
  std::vector<Outcome> outcomes = DriveWorkload(sock, seed, groups);
  server.Shutdown();
  ++stats->plans;

  Database db;
  MethodRegistry methods(&db.catalog());
  Session::Options so;
  so.env_autoopen = false;
  Session session(&db, &methods, so);
  EXA_RETURN_NOT_OK(session.OpenStorage(db_path));

  const std::string where = StrCat("mode=", FaultName(hooks->mode),
                                   " fault_at=", hooks->fault_at);
  for (size_t g = 0; g < groups.size(); ++g) {
    int64_t in_a = CountOf(&session, "A", groups[g].value);
    int64_t in_b = CountOf(&session, "B", groups[g].value);
    ++stats->comparisons;
    bool ok = false;
    switch (outcomes[g]) {
      case Outcome::kCommitted:
        ok = in_a == 1 && in_b == 1;
        break;
      case Outcome::kAborted:
        ok = in_a == 0 && in_b == 0;
        break;
      case Outcome::kUnknown:
        ok = in_a == in_b && (in_a == 0 || in_a == 1);
        break;
    }
    if (!ok) {
      Divergence d;
      d.oracle = "wirechaos";
      d.detail = StrCat(where, " group=", g);
      d.seed = seed;
      d.message = StrCat("group value ", groups[g].value, " driver says ",
                         OutcomeName(outcomes[g]), " but recovered counts A=",
                         in_a, " B=", in_b);
      out->push_back(std::move(d));
    }
  }
  return Status::OK();
}

}  // namespace

Status CheckWireChaosSeed(uint64_t seed, const WireChaosOptions& opts,
                          OracleStats* stats, std::vector<Divergence>* out) {
  ScratchDir scratch(seed);
  std::vector<Group> groups = MakeTrace(seed, opts);

  // Clean run: validates the driver itself and measures how many
  // statement-level responses a full trace sends, which bounds the fault
  // points worth injecting.
  ChaosHooks clean;
  EXA_RETURN_NOT_OK(
      RunOnce(seed, opts, groups, &scratch, 0, &clean, stats, out));
  const int64_t sends = static_cast<int64_t>(clean.sends.load());

  // Geometric fault points: dense where the trace starts (begin/append
  // boundaries), sparse past it; one rng-chosen fault mode per point keeps
  // the per-seed cost at ~log2(sends) runs while the sweep's many seeds
  // cover the mode x point grid.
  std::mt19937_64 rng(seed * 0x2545'F491'4F6C'DD1Dull + 7);
  constexpr ServerHooks::WireFault kModes[] = {
      ServerHooks::WireFault::kDropBeforeAck,
      ServerHooks::WireFault::kDropAfterAck,
      ServerHooks::WireFault::kTornAck,
      ServerHooks::WireFault::kDuplicateAck,
      ServerHooks::WireFault::kStallAck,
  };
  int run = 1;
  for (int64_t k = 0; k < sends; k = k == 0 ? 1 : k * 2) {
    ChaosHooks hooks;
    hooks.fault_at = k;
    hooks.mode = kModes[rng() % (sizeof(kModes) / sizeof(kModes[0]))];
    EXA_RETURN_NOT_OK(
        RunOnce(seed, opts, groups, &scratch, run++, &hooks, stats, out));
  }
  return Status::OK();
}

}  // namespace check
}  // namespace excess
