#ifndef EXCESS_CHECK_CRASH_H_
#define EXCESS_CHECK_CRASH_H_

#include <cstdint>
#include <vector>

#include "check/gen.h"
#include "check/oracle.h"
#include "util/status.h"

namespace excess {
namespace check {

/// Knobs for the crash-recovery oracle. The defaults keep one seed cheap
/// (a dozen statements, geometric crash-point sweeps) so the CI sweep can
/// afford hundreds of seeds.
struct CrashOptions {
  GenOptions gen;
  int max_statements = 12;      // candidate statements per trace
  bool with_checkpoint = true;  // let traces checkpoint mid-stream
  bool sweep_truncations = true;
  bool sweep_bitflips = true;
  bool sweep_write_failures = true;
  bool sweep_snapshot_flips = true;
  /// On a divergence, greedily re-run reduced traces to find a minimal
  /// reproducing statement list (slow — only taken on failure).
  bool shrink = true;
};

/// Crash-recovery oracle. Builds a random database, opens a durable store
/// on it, runs a random committed-statement trace (DDL with inheritance,
/// creates, appends, deletes, retrieve-intos emitted from random plans,
/// ranges, function definitions, optional mid-trace checkpoints), then
/// simulates crashes at every geometric point:
///
///   - WAL truncated at byte k (torn tail after a real crash);
///   - one bit flipped at WAL byte k (media corruption);
///   - the k-th commit's WAL append fails — cleanly, with a partial torn
///     write, or at fsync — and the process dies there;
///   - one bit flipped in the snapshot file.
///
/// After each simulated crash the database is reopened and the oracle
/// asserts the contract: recovery either succeeds with a state *exactly*
/// equal (canonical bytes) to re-executing some prefix of the committed
/// statements — the prefix recovery itself reports — or fails typed
/// kDataLoss. Silent divergence, wrong-prefix states, and crashes are
/// reported (and shrunk) as Divergences.
Status CheckCrashRecoverySeed(uint64_t seed, const CrashOptions& opts,
                              OracleStats* stats,
                              std::vector<Divergence>* out);

}  // namespace check
}  // namespace excess

#endif  // EXCESS_CHECK_CRASH_H_
