#include "check/oracle.h"

#include <utility>

#include "core/eval.h"
#include "core/physical.h"
#include "core/planner.h"
#include "core/rewriter.h"
#include "core/rules.h"
#include "excess/emit.h"
#include "excess/parser.h"
#include "excess/session.h"
#include "methods/registry.h"
#include "util/string_util.h"

namespace excess {
namespace check {

namespace {

/// Seed salts so the four oracles draw independent streams from one base
/// seed (replaying oracle X for seed S never depends on oracle Y's draws).
constexpr uint64_t kRulesSalt = 0x72756c6573ull;      // "rules"
constexpr uint64_t kLoweringSalt = 0x6c6f776572ull;   // "lower"
constexpr uint64_t kRoundTripSalt = 0x726f756e64ull;  // "round"
constexpr uint64_t kFuzzSalt = 0x66757a7aull;         // "fuzz"
constexpr uint64_t kIndexSalt = 0x696e646578ull;      // "index"

constexpr int kPlansPerSeed = 3;

Divergence MakeDivergence(std::string oracle, std::string detail,
                          uint64_t seed, const ExprPtr& before,
                          const ExprPtr& after, std::string message) {
  Divergence d;
  d.oracle = std::move(oracle);
  d.detail = std::move(detail);
  d.seed = seed;
  d.before_tree = before ? before->ToTreeString() : "";
  d.after_tree = after ? after->ToTreeString() : "";
  d.message = std::move(message);
  return d;
}

/// True when some CROSS in `plan` has a closed input that evaluates to an
/// empty multiset — or one whose emptiness cannot be determined (INPUT-free
/// subtrees only; a cross inside a subscript is treated as possibly empty).
/// Gates rules 5/9, whose printed forms assume the discarded side
/// non-empty.
bool MightHaveEmptyCrossInput(Evaluator* ev, const ExprPtr& e) {
  if (e->kind() == OpKind::kCross) {
    for (const auto& c : e->children()) {
      auto v = ev->Eval(c);
      if (!v.ok() || !(*v)->is_set() || (*v)->TotalCount() == 0) return true;
    }
  }
  for (const auto& c : e->children()) {
    if (MightHaveEmptyCrossInput(ev, c)) return true;
  }
  if (e->sub() && MightHaveEmptyCrossInput(ev, e->sub())) return true;
  return false;
}

}  // namespace

bool ContainsUnk(const ValuePtr& v) {
  if (v->is_unk()) return true;
  if (v->is_tuple()) {
    for (const auto& f : v->field_values()) {
      if (ContainsUnk(f)) return true;
    }
    return false;
  }
  if (v->is_set()) {
    for (const auto& e : v->entries()) {
      if (ContainsUnk(e.value)) return true;
    }
    return false;
  }
  if (v->is_array()) {
    for (const auto& e : v->elems()) {
      if (ContainsUnk(e)) return true;
    }
    return false;
  }
  return false;
}

/// True iff any data the plan reads — Const literals or the current value
/// of any Var it references — contains an unk anywhere. The rule-4 gate:
/// unknown predicates only arise from unk data.
bool PlanDataContainsUnk(const Database& db, const ExprPtr& e) {
  if (e->kind() == OpKind::kConst && e->literal() != nullptr &&
      ContainsUnk(e->literal())) {
    return true;
  }
  if (e->kind() == OpKind::kVar) {
    auto v = db.NamedValue(e->name());
    if (v.ok() && ContainsUnk(*v)) return true;
  }
  for (const auto& c : e->children()) {
    if (PlanDataContainsUnk(db, c)) return true;
  }
  return e->sub() != nullptr && PlanDataContainsUnk(db, e->sub());
}

ValuePtr DropEmptyGroupsDeep(const ValuePtr& v) {
  if (v->is_set()) {
    std::vector<SetEntry> kept;
    for (const auto& e : v->entries()) {
      if (e.value->is_set() && e.value->TotalCount() == 0) continue;
      kept.push_back({DropEmptyGroupsDeep(e.value), e.count});
    }
    return Value::SetOfCounted(std::move(kept));
  }
  if (v->is_array()) {
    std::vector<ValuePtr> elems;
    for (const auto& e : v->elems()) elems.push_back(DropEmptyGroupsDeep(e));
    return Value::ArrayOf(std::move(elems));
  }
  if (v->is_tuple()) {
    std::vector<ValuePtr> vals;
    for (const auto& f : v->field_values()) vals.push_back(DropEmptyGroupsDeep(f));
    return Value::Tuple(v->field_names(), std::move(vals), v->type_tag());
  }
  return v;
}

ValuePtr DerefAll(const Database& db, const ValuePtr& v) {
  if (v->is_ref()) {
    auto obj = db.store().Deref(v->oid());
    if (obj.ok()) return DerefAll(db, *obj);
    return v;  // dangling — keep the ref so the mismatch stays visible
  }
  if (v->is_set()) {
    std::vector<SetEntry> entries;
    for (const auto& e : v->entries()) {
      entries.push_back({DerefAll(db, e.value), e.count});
    }
    return Value::SetOfCounted(std::move(entries));
  }
  if (v->is_array()) {
    std::vector<ValuePtr> elems;
    for (const auto& e : v->elems()) elems.push_back(DerefAll(db, e));
    return Value::ArrayOf(std::move(elems));
  }
  if (v->is_tuple()) {
    std::vector<ValuePtr> vals;
    for (const auto& f : v->field_values()) vals.push_back(DerefAll(db, f));
    return Value::Tuple(v->field_names(), std::move(vals), v->type_tag());
  }
  return v;
}

Status CheckRulesSeed(uint64_t seed, const GenOptions& opts,
                      OracleStats* stats, std::vector<Divergence>* out) {
  Rng rng(seed ^ kRulesSalt);
  Database db;
  GenDb gen;
  EXA_RETURN_NOT_OK(BuildRandomDatabase(&rng, opts, &db, &gen));
  const RuleSet all = RuleSet::All();
  for (int p = 0; p < kPlansPerSeed; ++p) {
    ExprPtr plan = RandomPlan(&rng, opts, gen);
    ++stats->plans;
    Evaluator ev(&db);
    auto before = ev.Eval(plan);
    if (!before.ok()) {
      ++stats->skipped;
      continue;
    }
    bool cross_may_be_empty = MightHaveEmptyCrossInput(&ev, plan);
    bool answer_has_unk = ContainsUnk(*before);
    bool plan_data_has_unk = PlanDataContainsUnk(db, plan);
    for (const auto& rule : all.rules()) {
      // Documented-deviation gates (DESIGN.md §"Deviations & caveats").
      if ((rule.name == "eliminate-cross-under-de" ||
           rule.name == "group-cross-one-sided") &&
          cross_may_be_empty) {
        ++stats->skipped;
        continue;
      }
      if (rule.name == "combine-comps" && answer_has_unk) {
        ++stats->skipped;
        continue;
      }
      // Documented deviation: splitting σ_{P1∨P2} runs each branch
      // predicate separately, so a branch that comes out unknown mints its
      // own unk occurrence (σ keeps unk) even when the other branch
      // decided the disjunction — changing answers, or feeding unk into
      // aggregates that then error. Exact on unk-free data, which is what
      // we verify.
      if (rule.name == "split-disjunctive-selection" &&
          plan_data_has_unk) {
        ++stats->skipped;
        continue;
      }
      Rewriter rw(&db, RuleSet::Only({rule.name}));
      for (const ExprPtr& neighbor : rw.EnumerateNeighbors(plan)) {
        ++stats->comparisons;
        auto after = ev.Eval(neighbor);
        if (!after.ok()) {
          out->push_back(MakeDivergence(
              "rules", rule.name, seed, plan, neighbor,
              StrCat("rewritten plan fails to evaluate: ",
                     after.status().ToString())));
          continue;
        }
        ValuePtr lhs = *before;
        ValuePtr rhs = *after;
        if (rule.name == "selection-before-group") {
          lhs = DropEmptyGroupsDeep(lhs);
          rhs = DropEmptyGroupsDeep(rhs);
        } else if (rule.name == "ref-of-deref") {
          lhs = DerefAll(db, lhs);
          rhs = DerefAll(db, rhs);
        }
        if (!lhs->Equals(*rhs)) {
          out->push_back(MakeDivergence(
              "rules", rule.name, seed, plan, neighbor,
              StrCat("before: ", lhs->ToString(), "\nafter:  ",
                     rhs->ToString())));
        }
      }
    }
  }
  return Status::OK();
}

Status CheckLoweringSeed(uint64_t seed, const GenOptions& opts,
                         OracleStats* stats, std::vector<Divergence>* out) {
  Rng rng(seed ^ kLoweringSalt);
  Database db;
  GenDb gen;
  EXA_RETURN_NOT_OK(BuildRandomDatabase(&rng, opts, &db, &gen));
  for (int p = 0; p < kPlansPerSeed; ++p) {
    // Every third plan has the guaranteed equi-join shape the hash-join
    // lowering targets; the rest exercise the planner on arbitrary shapes.
    ExprPtr plan = (p % 3 == 0) ? RandomJoinPlan(&rng, opts, gen)
                                : RandomPlan(&rng, opts, gen);
    ++stats->plans;
    Evaluator serial(&db);
    serial.set_parallel_enabled(false);
    auto before = serial.Eval(plan);
    if (!before.ok()) {
      ++stats->skipped;
      continue;
    }

    // (a) Direct physical lowering: 3VL-exact. The evaluation runs under a
    // PlanProfile so the EXPLAIN ANALYZE invariant is fuzzed alongside: the
    // profile's root actuals must agree with the evaluated answer.
    ExprPtr lowered = LowerPhysical(plan);
    {
      ++stats->comparisons;
      Evaluator ev(&db);
      PlanProfile profile;
      ev.set_profile(&profile);
      auto after = ev.Eval(lowered);
      if (!after.ok()) {
        out->push_back(MakeDivergence(
            "lowering", "LowerPhysical", seed, plan, lowered,
            StrCat("lowered plan fails: ", after.status().ToString())));
      } else if (!(*before)->Equals(**after)) {
        out->push_back(MakeDivergence(
            "lowering", "LowerPhysical", seed, plan, lowered,
            StrCat("logical: ", (*before)->ToString(), "\nphysical: ",
                   (*after)->ToString())));
      } else {
        const ValuePtr& v = *after;
        int64_t expect = v->is_set()     ? v->TotalCount()
                         : v->is_array() ? v->ArrayLength()
                                         : 1;
        const NodeProfile* root = profile.Find(lowered.get());
        if (root == nullptr || root->out_occurrences != expect ||
            root->invocations != 1) {
          out->push_back(MakeDivergence(
              "lowering", "explain-profile", seed, plan, lowered,
              StrCat("profile root out=",
                     std::to_string(root ? root->out_occurrences : -1),
                     " calls=", std::to_string(root ? root->invocations : -1),
                     ", result occurrences=", std::to_string(expect))));
        }
      }
    }

    // (b) Serial vs parallel APPLY: exact. Threshold 1 forces the parallel
    // path through the worker pool whenever it is >1 (EXCESS_THREADS).
    {
      ++stats->comparisons;
      Evaluator parallel(&db);
      parallel.set_parallel_threshold(1);
      auto after = parallel.Eval(plan);
      if (!after.ok()) {
        out->push_back(MakeDivergence(
            "lowering", "parallel-apply", seed, plan, plan,
            StrCat("parallel eval fails: ", after.status().ToString())));
      } else if (!(*before)->Equals(**after)) {
        out->push_back(MakeDivergence(
            "lowering", "parallel-apply", seed, plan, plan,
            StrCat("serial:   ", (*before)->ToString(), "\nparallel: ",
                   (*after)->ToString())));
      }
    }

    // (c) Full planner (heuristic rules + cost search + lowering). The
    // heuristic/search phases may fire rules with documented deviations, so
    // this comparison gates on unk answers (rule 27), skips plans with
    // possibly-empty cross inputs (rules 5/9), normalizes empty groups
    // (rule 10) and erases ref identity (rule 28).
    if (ContainsUnk(*before) || MightHaveEmptyCrossInput(&serial, plan)) {
      ++stats->skipped;
      continue;
    }
    Planner planner(&db);
    auto optimized = planner.Optimize(plan);
    if (!optimized.ok()) {
      out->push_back(MakeDivergence(
          "lowering", "planner", seed, plan, nullptr,
          StrCat("Optimize fails: ", optimized.status().ToString())));
      continue;
    }
    ++stats->comparisons;
    Evaluator ev(&db);
    auto after = ev.Eval(*optimized);
    if (!after.ok()) {
      out->push_back(MakeDivergence(
          "lowering", "planner", seed, plan, *optimized,
          StrCat("optimized plan fails: ", after.status().ToString())));
      continue;
    }
    ValuePtr lhs = DerefAll(db, DropEmptyGroupsDeep(*before));
    ValuePtr rhs = DerefAll(db, DropEmptyGroupsDeep(*after));
    if (!lhs->Equals(*rhs)) {
      out->push_back(MakeDivergence(
          "lowering", "planner", seed, plan, *optimized,
          StrCat("logical:   ", lhs->ToString(), "\noptimized: ",
                 rhs->ToString())));
    }
  }
  return Status::OK();
}

Status CheckIndexSeed(uint64_t seed, const GenOptions& opts,
                      OracleStats* stats, std::vector<Divergence>* out) {
  Rng rng(seed ^ kIndexSalt);
  Database db;
  GenDb gen;
  EXA_RETURN_NOT_OK(BuildRandomDatabase(&rng, opts, &db, &gen));

  // Candidate definitions over the generated leaves: identity over the int
  // sets, field paths over the pair sets, raw-OID identity and a
  // deref-traversing path over the ref sets. Kinds drawn per run so both
  // hash and ordered indexes appear across a sweep.
  std::vector<IndexDef> candidates;
  auto add = [&](const std::string& set, std::vector<std::string> path) {
    IndexDef d;
    d.name = StrCat("idx", candidates.size());
    d.set_name = set;
    d.path = std::move(path);
    d.kind = rng.Chance(1, 2) ? IndexKind::kOrdered : IndexKind::kHash;
    candidates.push_back(std::move(d));
  };
  for (const auto& s : gen.int_sets) add(s, {});
  for (const auto& s : gen.pair_sets) {
    add(s, {"k"});
    add(s, {"v"});
  }
  for (const auto& s : gen.ref_sets) {
    add(s, {});
    add(s, {"k"});
  }

  std::vector<size_t> live;
  auto create_one = [&]() {
    size_t i = static_cast<size_t>(
        rng.Int(0, static_cast<int64_t>(candidates.size()) - 1));
    if (db.FindIndex(candidates[i].name) != nullptr) return;
    if (db.CreateIndex(candidates[i]).ok()) live.push_back(i);
  };
  // Start with a couple created so the very first plans can lower to probes;
  // churn from there.
  create_one();
  create_one();

  CostParams params;
  for (int p = 0; p < kPlansPerSeed * 2; ++p) {
    // Mid-trace churn: index DDL plus base-set mutations, so probes run
    // against incrementally maintained and freshly rebuilt indexes alike.
    switch (rng.Int(0, 4)) {
      case 0:
        create_one();
        break;
      case 1:
        if (!live.empty()) {
          size_t k = static_cast<size_t>(
              rng.Int(0, static_cast<int64_t>(live.size()) - 1));
          (void)db.DropIndex(candidates[live[k]].name);
          live.erase(live.begin() + static_cast<ptrdiff_t>(k));
        }
        break;
      case 2:  // incremental maintenance through AppendNamed
        (void)db.AppendNamed(rng.Pick(gen.int_sets), RandomIntSet(&rng, opts));
        break;
      case 3:  // full rebuild through SetNamed
        (void)db.SetNamed(rng.Pick(gen.pair_sets), RandomPairSet(&rng, opts));
        break;
      default:
        break;  // no churn this round
    }

    ExprPtr plan = (p % 2 == 0) ? RandomJoinPlan(&rng, opts, gen)
                                : RandomPlan(&rng, opts, gen);
    ++stats->plans;
    Evaluator serial(&db);
    serial.set_parallel_enabled(false);
    auto before = serial.Eval(plan);
    if (!before.ok()) {
      ++stats->skipped;
      continue;
    }

    // Indexed vs unindexed agreement: both lowerings must reproduce the
    // logical answer 3VL-exactly, whatever indexes currently exist.
    struct Leg {
      const char* name;
      ExprPtr tree;
    };
    const Leg legs[] = {{"index-blind", LowerPhysical(plan)},
                        {"index-aware", LowerPhysical(plan, &db, params)}};
    for (const Leg& leg : legs) {
      ++stats->comparisons;
      Evaluator ev(&db);
      auto after = ev.Eval(leg.tree);
      if (!after.ok()) {
        out->push_back(MakeDivergence(
            "index", leg.name, seed, plan, leg.tree,
            StrCat("lowered plan fails: ", after.status().ToString())));
      } else if (!(*before)->Equals(**after)) {
        out->push_back(MakeDivergence(
            "index", leg.name, seed, plan, leg.tree,
            StrCat("logical: ", (*before)->ToString(),
                   "\nlowered: ", (*after)->ToString())));
      }
    }
  }
  return Status::OK();
}

Status CheckRoundTripSeed(uint64_t seed, const GenOptions& opts,
                          OracleStats* stats, std::vector<Divergence>* out) {
  Rng rng(seed ^ kRoundTripSalt);
  GenOptions denotable = opts;
  denotable.with_nulls = false;
  Database db;
  GenDb gen;
  EXA_RETURN_NOT_OK(BuildRandomDatabase(&rng, denotable, &db, &gen));
  MethodRegistry methods(&db.catalog());
  for (int p = 0; p < kPlansPerSeed; ++p) {
    ExprPtr plan = RandomPlan(&rng, denotable, gen);
    ++stats->plans;
    Evaluator ev(&db);
    auto before = ev.Eval(plan);
    if (!before.ok()) {
      ++stats->skipped;
      continue;
    }
    Emitter emitter(&db, &methods);
    auto program = emitter.Emit(plan);
    if (!program.ok()) {
      if (program.status().code() == StatusCode::kUnsupported) {
        ++stats->skipped;  // the emitter is documented-partial
        continue;
      }
      out->push_back(MakeDivergence(
          "roundtrip", "emit", seed, plan, nullptr,
          StrCat("Emit fails (not Unsupported): ",
                 program.status().ToString())));
      continue;
    }
    if (program->source().empty()) {
      // Var-only plans emit no statements; the result name is the Var.
      ++stats->skipped;
      continue;
    }
    ++stats->comparisons;
    Session::Options sopts;
    sopts.optimize = false;  // test translation, not the planner
    Session session(&db, &methods, sopts);
    auto run = session.Execute(program->source());
    if (!run.ok()) {
      out->push_back(MakeDivergence(
          "roundtrip", program->source(), seed, plan, nullptr,
          StrCat("emitted program fails to execute: ",
                 run.status().ToString())));
      continue;
    }
    auto stored = db.NamedValue(program->result_name());
    if (!stored.ok()) {
      out->push_back(MakeDivergence(
          "roundtrip", program->source(), seed, plan, nullptr,
          StrCat("result object missing: ", stored.status().ToString())));
      continue;
    }
    if (!(*before)->Equals(**stored)) {
      out->push_back(MakeDivergence(
          "roundtrip", program->source(), seed, plan, nullptr,
          StrCat("direct:    ", (*before)->ToString(), "\nround-trip: ",
                 (*stored)->ToString())));
    }
  }
  return Status::OK();
}

int64_t FuzzParserSeed(uint64_t seed, const GenOptions& opts) {
  Rng rng(seed ^ kFuzzSalt);
  // Well-formed sources covering every statement kind; mutation starts from
  // valid programs because interesting lexer/parser states live near them.
  static const std::vector<std::string>* kCorpus =
      new std::vector<std::string>{
          "define type Person : (name: char[20], age: int4)",
          "create People : { Person }",
          "range of P is People\n"
          "retrieve (P.name) where P.age >= 21 and not P.name = \"x\"",
          "retrieve unique (x: 1 + 2.5 * 3, y: \"a\\\"b\") into Out",
          "append all {1, 2, 3} union {4} to Nums",
          "delete Nums where Nums > 1",
          "retrieve (count(x from x in {1,2,3} where x % 2 = 1))",
          "retrieve ([1,2,3][2..last], [4,5][last])",
          "define Person function adult() returns bool "
          "{ retrieve (this.age >= 18) }",
          "retrieve ((s: {(a: 1), (a: 2)}, t: [[1],[2]]))",
      };
  int64_t parsed = 0;
  // A freshly emitted program joins the corpus so mutations track whatever
  // the emitter currently produces.
  {
    Rng gen_rng(seed ^ kRoundTripSalt);
    GenOptions denotable = opts;
    denotable.with_nulls = false;
    Database db;
    GenDb gen;
    if (BuildRandomDatabase(&gen_rng, denotable, &db, &gen).ok()) {
      ExprPtr plan = RandomPlan(&gen_rng, denotable, gen);
      MethodRegistry methods(&db.catalog());
      Emitter emitter(&db, &methods);
      auto program = emitter.Emit(plan);
      std::string source = program.ok() ? program->source()
                                        : rng.Pick(*kCorpus);
      for (int k = 0; k < 4; ++k) {
        auto r = Parse(MutateSource(&rng, source));
        (void)r;  // ok or error Status both fine; crashes kill the test
        ++parsed;
      }
    }
  }
  for (int k = 0; k < 12; ++k) {
    auto r = Parse(MutateSource(&rng, rng.Pick(*kCorpus)));
    (void)r;
    ++parsed;
  }
  return parsed;
}

}  // namespace check
}  // namespace excess
