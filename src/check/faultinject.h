#ifndef EXCESS_CHECK_FAULTINJECT_H_
#define EXCESS_CHECK_FAULTINJECT_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "check/gen.h"
#include "check/oracle.h"
#include "core/governor.h"
#include "util/status.h"

namespace excess {
namespace check {

/// Deterministic fault injector: a GovernorHooks implementation that fires
/// exactly one fault at the Nth tracked event. Because governor events are
/// deterministic in (database, plan) — and their *totals* are schedule-
/// independent even under parallel APPLY — sweeping N over the event count
/// systematically explores every failure point of an evaluation.
class FaultInjector : public GovernorHooks {
 public:
  enum class Mode {
    kNone,        // count events, never fire (the reference run)
    kAllocFail,   // fail the Nth tracked allocation (ChargeBytes)
    kCancelAt,    // fire the CancelToken at the Nth checkpoint
    kWorkerKill,  // kill the batch at the Nth checkpoint observed inside a
                  // parallel worker partition (WorkerPool::InBatch)
  };

  /// The Status code an injected fault of `mode` surfaces as.
  static StatusCode ExpectedCode(Mode mode) {
    return mode == Mode::kAllocFail ? StatusCode::kResourceExhausted
                                    : StatusCode::kCancelled;
  }

  FaultInjector(Mode mode, int64_t fire_at, CancelTokenPtr token = nullptr)
      : mode_(mode), fire_at_(fire_at), token_(std::move(token)) {}

  Status OnCheckpoint() override;
  Status OnCharge(int64_t bytes) override;

  int64_t checkpoints_seen() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }
  int64_t charges_seen() const {
    return charges_.load(std::memory_order_relaxed);
  }
  int64_t batch_checkpoints_seen() const {
    return batch_checkpoints_.load(std::memory_order_relaxed);
  }
  bool fired() const { return fired_.load(std::memory_order_relaxed); }

 private:
  Mode mode_;
  int64_t fire_at_;
  CancelTokenPtr token_;
  std::atomic<int64_t> checkpoints_{0};
  std::atomic<int64_t> charges_{0};
  std::atomic<int64_t> batch_checkpoints_{0};
  std::atomic<bool> fired_{false};
};

/// Counters a fault-sweep seed reports (same pattern as OracleStats).
struct FaultSweepStats {
  int64_t plans = 0;         // plans swept
  int64_t runs = 0;          // faulted executions performed
  int64_t faults_fired = 0;  // runs where the injector actually fired
  int64_t clean = 0;         // runs that completed (fault point not reached)
  int64_t replays = 0;       // post-fault re-executions compared
  void Merge(const FaultSweepStats& o) {
    plans += o.plans;
    runs += o.runs;
    faults_fired += o.faults_fired;
    clean += o.clean;
    replays += o.replays;
  }
};

/// Oracle 4 — graceful degradation under faults. Builds the seed's random
/// database and plans (including a physically lowered join), evaluates each
/// plan un-faulted to get the reference answer and event totals, then
/// re-executes under a geometric sweep of fault points for every mode,
/// asserting, per faulted run:
///   - a fired fault surfaces as exactly the mode's typed Status
///     (kResourceExhausted / kCancelled), never a crash;
///   - a run the fault point did not reach produces the reference answer;
///   - the *same evaluator*, governor detached, re-evaluates the plan to
///     the reference answer afterwards (database, OID store, and evaluator
///     state survive the fault).
/// Leak-freedom is asserted by running the sweep under the asan preset.
Status CheckFaultSeed(uint64_t seed, const GenOptions& opts,
                      FaultSweepStats* stats, std::vector<Divergence>* out);

}  // namespace check
}  // namespace excess

#endif  // EXCESS_CHECK_FAULTINJECT_H_
