#ifndef EXCESS_CHECK_ORACLE_H_
#define EXCESS_CHECK_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "check/gen.h"
#include "core/expr.h"
#include "objects/database.h"
#include "util/status.h"

namespace excess {
namespace check {

/// One semantic disagreement found by an oracle. Everything needed to
/// reproduce it is (oracle, seed); the rendered trees and answers make the
/// report readable without re-running.
struct Divergence {
  std::string oracle;  // "rules" | "lowering" | "roundtrip"
  std::string detail;  // rule name / lowering phase / emitted program
  uint64_t seed = 0;
  std::string before_tree;
  std::string after_tree;
  std::string message;  // answers, or the unexpected error Status
};

/// Counters each oracle seed reports, so sweeps can assert they actually
/// exercised the system (a generator bug that skips everything would
/// otherwise pass silently).
struct OracleStats {
  int64_t plans = 0;        // plans generated
  int64_t comparisons = 0;  // answer equalities asserted
  int64_t skipped = 0;      // plans/rules skipped (eval error, unsupported
                            // emission, documented-deviation gates)
  void Merge(const OracleStats& o) {
    plans += o.plans;
    comparisons += o.comparisons;
    skipped += o.skipped;
  }
};

/// Oracle 1 — rule equivalence. Builds a random database and random plans
/// from `seed`, applies every rewrite rule at every position it fires
/// (one step, via Rewriter::EnumerateNeighbors) and asserts 3VL-exact
/// answer equality, modulo the deviations DESIGN.md documents:
///   - rule 10 (selection-before-group): equal modulo emptied groups;
///   - rule 27 (combine-comps): skipped when the answer contains unk;
///   - rule 28 (ref-of-deref): equal up to value-interned identity
///     (answers compared after dereferencing);
///   - rules 5/9: skipped when a CROSS input is empty (the paper's
///     standing non-emptiness assumption).
Status CheckRulesSeed(uint64_t seed, const GenOptions& opts,
                      OracleStats* stats, std::vector<Divergence>* out);

/// Oracle 2 — lowering equivalence. For each generated plan asserts, in
/// order: LowerPhysical(plan) evaluates exactly equal; serial and parallel
/// evaluation (parallel_threshold=1, pool sized by EXCESS_THREADS) agree
/// exactly; and the full Planner::Optimize output agrees modulo the
/// documented rule deviations above (the heuristic phase may fire them).
Status CheckLoweringSeed(uint64_t seed, const GenOptions& opts,
                         OracleStats* stats, std::vector<Divergence>* out);

/// Oracle — index equivalence. Builds a random database, then interleaves
/// random index churn (create hash/ordered indexes over the generated sets
/// — identity, field-path, and ref-traversing — drop them again, and mutate
/// the base sets through AppendNamed / SetNamed so incremental maintenance
/// and rebuilds are both exercised) with plan comparisons: each generated
/// plan must evaluate 3VL-exactly equal under (a) no lowering, (b)
/// index-blind lowering, and (c) index-aware lowering against whatever
/// indexes currently exist.
Status CheckIndexSeed(uint64_t seed, const GenOptions& opts,
                      OracleStats* stats, std::vector<Divergence>* out);

/// Oracle 3 — round trip. Generates denotable plans, emits each to EXCESS
/// source (skipping Unsupported emissions), re-executes the program through
/// parse → translate → eval in an unoptimized session over the same
/// database, and asserts the stored result equals the plan's direct
/// evaluation.
Status CheckRoundTripSeed(uint64_t seed, const GenOptions& opts,
                          OracleStats* stats, std::vector<Divergence>* out);

/// Fuzz oracle — parser robustness. Mutates well-formed EXCESS programs
/// (including freshly emitted ones) and feeds them to Parse(), which must
/// return ok or an error Status; a crash or hang fails the calling test by
/// process death / timeout. Returns the number of sources parsed.
int64_t FuzzParserSeed(uint64_t seed, const GenOptions& opts);

/// Deep scan for an unk scalar anywhere in `v`.
bool ContainsUnk(const ValuePtr& v);

/// True iff any data `e` reads — Const literals or the current value of a
/// referenced Var — contains unk anywhere.
bool PlanDataContainsUnk(const Database& db, const ExprPtr& e);
/// Recursively drops empty member multisets from sets-of-sets (the rule-10
/// comparator's normalization).
ValuePtr DropEmptyGroupsDeep(const ValuePtr& v);
/// Replaces every reference with the referenced object's value (identity
/// erased — the rule-28 comparator).
ValuePtr DerefAll(const Database& db, const ValuePtr& v);

}  // namespace check
}  // namespace excess

#endif  // EXCESS_CHECK_ORACLE_H_
