#ifndef EXCESS_CHECK_GEN_H_
#define EXCESS_CHECK_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/expr.h"
#include "objects/database.h"
#include "util/status.h"

namespace excess {
/// Randomized test-case generation for the differential-testing oracles
/// (check/oracle.h). Everything here is deterministic in the seed: the same
/// seed always produces the same database and the same plans, which is what
/// lets a divergence be replayed from a corpus entry holding only
/// (oracle, seed, iteration).
namespace check {

/// Deterministic splitmix64-based generator. Not std::mt19937 so that the
/// stream is stable across standard-library implementations — corpus seeds
/// must reproduce everywhere.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 0x9E3779B97F4A7C15ull + 1) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t Int(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<int64_t>(Next() %
                                     static_cast<uint64_t>(hi - lo + 1));
  }
  /// True with probability num/den.
  bool Chance(int num, int den) { return Int(1, den) <= num; }
  /// Uniform pick from a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[static_cast<size_t>(Int(0, static_cast<int64_t>(v.size()) - 1))];
  }

 private:
  uint64_t state_;
};

/// Knobs for database/plan generation. The defaults keep everything tiny —
/// the oracles trade instance size for iteration count, following the
/// small-scope hypothesis (divergences that exist at all exist on small
/// inputs, and the shrinker relies on that too).
struct GenOptions {
  int max_set_size = 6;     // occurrences per generated multiset
  int max_array_len = 6;    // elements per generated array
  int max_plan_depth = 3;   // combinator nesting above the leaf collections
  /// Sprinkle unk scalars / unk tuple fields. The round-trip oracle turns
  /// this off so Const leaves stay EXCESS-denotable (unk has no literal
  /// form and would make the emitter skip most plans).
  bool with_nulls = true;
  bool with_refs = true;  // create interned objects and ref-typed sets
};

/// The named objects BuildRandomDatabase creates, grouped by shape so the
/// plan generator can pick a leaf of the shape it needs. Names are stable
/// per group ("IntsN", "PairsN", ...).
struct GenDb {
  std::vector<std::string> int_sets;     // {int}           (may contain unk)
  std::vector<std::string> pair_sets;    // {(k:int, v:int)}
  std::vector<std::string> nested_sets;  // {{int}}
  std::vector<std::string> int_arrays;   // [int]
  std::vector<std::string> ref_sets;     // {ref Item}  (shared OIDs)
};

/// Random scalar int value; may be unk when opts.with_nulls.
ValuePtr RandomIntScalar(Rng* rng, const GenOptions& opts);
/// Random small multiset of ints (entries with cardinalities 1..3).
ValuePtr RandomIntSet(Rng* rng, const GenOptions& opts);
/// Random multiset of (k:int, v:int) tuples.
ValuePtr RandomPairSet(Rng* rng, const GenOptions& opts);
/// Random multiset of int multisets.
ValuePtr RandomNestedSet(Rng* rng, const GenOptions& opts);
/// Random int array.
ValuePtr RandomIntArray(Rng* rng, const GenOptions& opts);

/// Populates `db` with 1-2 named objects per GenDb group (ref_sets only
/// when opts.with_refs: an Item type plus interned objects, with some OIDs
/// deliberately shared between occurrences and across sets).
Status BuildRandomDatabase(Rng* rng, const GenOptions& opts, Database* db,
                           GenDb* out);

/// A random closed, well-typed, set-valued algebra plan over `gen`'s named
/// objects and fresh Const leaves. Generation is shape-directed, biased
/// toward forms the rewrite rules and the physical lowering fire on
/// (selections over crosses, nested applies, DE/GRP stacks, equi-joins).
ExprPtr RandomPlan(Rng* rng, const GenOptions& opts, const GenDb& gen);

/// A random plan of the equi-join shape the physical lowering targets:
/// SET_APPLY[COMP_θ(INPUT)](CROSS(A, B)) with at least one cross-side
/// equality atom in θ (plus optional residual atoms and projections).
ExprPtr RandomJoinPlan(Rng* rng, const GenOptions& opts, const GenDb& gen);

/// Mutates EXCESS source text for the parser fuzz oracle: 1-3 random edits
/// (truncate, delete, insert, duplicate a span, swap a char) drawn from a
/// printable alphabet plus the language's punctuation.
std::string MutateSource(Rng* rng, const std::string& source);

}  // namespace check
}  // namespace excess

#endif  // EXCESS_CHECK_GEN_H_
