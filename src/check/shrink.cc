#include "check/shrink.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/builder.h"
#include "objects/value.h"

namespace excess {
namespace check {

namespace {

/// Size metric the shrinker descends: tree nodes plus literal bulk, so both
/// hoisting a child and trimming a Const count as progress.
int64_t LiteralWeight(const ValuePtr& v) {
  int64_t w = 1;
  if (v->is_set()) {
    for (const auto& e : v->entries()) w += LiteralWeight(e.value) + e.count;
  } else if (v->is_array() || v->is_tuple()) {
    const auto& elems = v->is_array() ? v->elems() : v->field_values();
    for (const auto& e : elems) w += LiteralWeight(e);
  }
  return w;
}

int64_t PlanWeight(const ExprPtr& e) {
  int64_t w = 1;
  if (e->kind() == OpKind::kConst && e->literal()) {
    w += LiteralWeight(e->literal());
  }
  for (const auto& c : e->children()) w += PlanWeight(c);
  if (e->sub()) w += PlanWeight(e->sub());
  return w;
}

/// Smaller variants of a literal: halves, drop-one, all counts reset to 1.
void ShrunkLiterals(const ValuePtr& v, std::vector<ValuePtr>* out) {
  if (v->is_set()) {
    const auto& entries = v->entries();
    if (entries.empty()) return;
    size_t n = entries.size();
    if (n > 1) {
      out->push_back(Value::SetOfCounted(
          {entries.begin(), entries.begin() + static_cast<long>(n / 2)}));
      out->push_back(Value::SetOfCounted(
          {entries.begin() + static_cast<long>(n / 2), entries.end()}));
    }
    for (size_t i = 0; i < n && n > 1; ++i) {
      std::vector<SetEntry> dropped;
      for (size_t j = 0; j < n; ++j) {
        if (j != i) dropped.push_back(entries[j]);
      }
      out->push_back(Value::SetOfCounted(std::move(dropped)));
    }
    bool has_dups = false;
    for (const auto& e : entries) has_dups |= e.count > 1;
    if (has_dups) {
      std::vector<SetEntry> flat;
      for (const auto& e : entries) flat.push_back({e.value, 1});
      out->push_back(Value::SetOfCounted(std::move(flat)));
    }
    out->push_back(Value::EmptySet());
  } else if (v->is_array()) {
    const auto& elems = v->elems();
    if (elems.empty()) return;
    size_t n = elems.size();
    if (n > 1) {
      out->push_back(Value::ArrayOf(
          {elems.begin(), elems.begin() + static_cast<long>(n / 2)}));
      out->push_back(Value::ArrayOf(
          {elems.begin() + static_cast<long>(n / 2), elems.end()}));
    }
    out->push_back(Value::EmptyArray());
  }
}

/// Every one-step reduction of `e`, expressed as full trees via `rebuild`.
void Reductions(const ExprPtr& e,
                const std::function<ExprPtr(ExprPtr)>& rebuild,
                std::vector<ExprPtr>* out) {
  // Hoist each child over this node (drops at least one node; type
  // mismatches simply fail the reproduction predicate).
  for (const auto& c : e->children()) out->push_back(rebuild(c));
  if (e->kind() == OpKind::kConst && e->literal()) {
    std::vector<ValuePtr> smaller;
    ShrunkLiterals(e->literal(), &smaller);
    for (auto& v : smaller) out->push_back(rebuild(alg::Const(std::move(v))));
  }
  for (size_t i = 0; i < e->children().size(); ++i) {
    Reductions(e->child(i),
               [&, i](ExprPtr r) { return rebuild(e->WithChild(i, std::move(r))); },
               out);
  }
}

}  // namespace

ExprPtr ShrinkExpr(ExprPtr plan,
                   const std::function<bool(const ExprPtr&)>& reproduces,
                   int max_candidates) {
  int budget = max_candidates;
  bool improved = true;
  while (improved && budget > 0) {
    improved = false;
    std::vector<ExprPtr> candidates;
    Reductions(plan, [](ExprPtr r) { return r; }, &candidates);
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const ExprPtr& a, const ExprPtr& b) {
                       return PlanWeight(a) < PlanWeight(b);
                     });
    int64_t current = PlanWeight(plan);
    for (const auto& cand : candidates) {
      if (budget-- <= 0) break;
      if (PlanWeight(cand) >= current) break;  // sorted: no smaller left
      if (reproduces(cand)) {
        plan = cand;
        improved = true;
        break;
      }
    }
  }
  return plan;
}

std::string ShrinkSource(
    std::string source,
    const std::function<bool(const std::string&)>& reproduces,
    int max_candidates) {
  int budget = max_candidates;
  size_t chunk = source.size() / 2;
  while (chunk >= 1 && budget > 0) {
    bool removed_any = false;
    for (size_t pos = 0; pos + chunk <= source.size() && budget > 0;) {
      std::string cand = source;
      cand.erase(pos, chunk);
      --budget;
      if (!cand.empty() && reproduces(cand)) {
        source = std::move(cand);
        removed_any = true;
        // keep pos: the next chunk slid into place
      } else {
        pos += chunk;
      }
    }
    if (!removed_any) chunk /= 2;
  }
  return source;
}

}  // namespace check
}  // namespace excess
