#include "obs/trace.h"

namespace excess {
namespace obs {

void RewriteTrace::OnRewrite(const char* phase, const RewriteRule& rule,
                             const ExprPtr& before, const ExprPtr& after) {
  TraceStep step;
  step.phase = phase;
  step.paper_id = rule.paper_id;
  step.rule = rule.name;
  step.before = before->ToString();
  step.after = after->ToString();
  if (auto est = cost_.Estimate(before); est.ok()) {
    step.cost_before = est->total;
  }
  if (auto est = cost_.Estimate(after); est.ok()) {
    step.cost_after = est->total;
  }
  steps_.push_back(std::move(step));
}

}  // namespace obs
}  // namespace excess
