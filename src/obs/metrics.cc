#include "obs/metrics.h"

#include <cstdio>
#include <cstdlib>

#include "util/fileio.h"

namespace excess {
namespace obs {

namespace {

/// Dump-on-exit: armed exactly once, the first time Global() is touched
/// with EXCESS_METRICS_PATH set. atexit (not a static destructor) so the
/// snapshot happens while the registry is still alive. The write is atomic
/// (temp file + rename) so a crash mid-dump never leaves a truncated JSON
/// snapshot where a previous complete one stood.
void DumpAtExit() {
  const char* path = std::getenv("EXCESS_METRICS_PATH");
  if (path == nullptr || *path == '\0') return;
  std::string json = MetricsRegistry::Global().Snapshot();
  json.push_back('\n');
  (void)util::WriteFileAtomic(path, json, /*sync=*/false);
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    if (std::getenv("EXCESS_METRICS_PATH") != nullptr) {
      std::atexit(DumpAtExit);
    }
    return r;
  }();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(&out, name);
    out += ": " + std::to_string(counter->value());
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(&out, name);
    out += ": {\"count\": " + std::to_string(hist->count()) +
           ", \"sum\": " + std::to_string(hist->sum()) + ", \"buckets\": [";
    bool bfirst = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      int64_t c = hist->bucket(i);
      if (c == 0) continue;
      if (!bfirst) out += ", ";
      bfirst = false;
      // Bucket i holds values with bit_width == i; the inclusive upper
      // bound is 2^i - 1 (bucket 0 is exactly the value 0).
      int64_t le = i == 0 ? 0 : (int64_t{1} << i) - 1;
      out += "{\"le\": " + std::to_string(le) +
             ", \"count\": " + std::to_string(c) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace obs
}  // namespace excess
