#include "obs/explain.h"

#include <cstdio>

namespace excess {
namespace obs {

namespace {

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string FormatNanos(int64_t ns) {
  char buf[40];
  if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 10'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          *out += esc;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Operator parameters, matching the subscripts of the paper's notation
/// (the tree structure itself carries children/sub/pred).
std::string Detail(const Expr& e) {
  switch (e.kind()) {
    case OpKind::kConst:
      return e.literal() != nullptr ? e.literal()->ToString() : "";
    case OpKind::kVar:
      return e.name();
    case OpKind::kParam:
      return "$" + std::to_string(e.index());
    case OpKind::kSetApply:
      return e.type_filter().empty() ? "" : "<" + e.type_filter() + ">";
    case OpKind::kProject: {
      std::string out;
      for (const auto& n : e.names()) {
        if (!out.empty()) out += ",";
        out += n;
      }
      return out;
    }
    case OpKind::kTupExtract:
    case OpKind::kTupMake:
    case OpKind::kRef:
    case OpKind::kAgg:
    case OpKind::kMethodCall:
    case OpKind::kArith:
      return e.name();
    case OpKind::kArrExtract:
      return e.index_is_last() ? "last" : std::to_string(e.index());
    case OpKind::kSubArr: {
      std::string lo = e.lo_is_last() ? "last" : std::to_string(e.lo());
      std::string hi = e.hi_is_last() ? "last" : std::to_string(e.hi());
      return lo + ".." + hi;
    }
    case OpKind::kComp:
    case OpKind::kHashJoin:
      return e.pred() != nullptr ? e.pred()->ToString() : "";
    case OpKind::kIndexProbe:
    case OpKind::kIndexJoin: {
      std::string out = "idx=" + e.name();
      if (e.pred() != nullptr) out += " " + e.pred()->ToString();
      return out;
    }
    default:
      return "";
  }
}

/// Operand expressions of every atom of `p`, in DFS order — the same nodes
/// the evaluator visits (and Counts) when testing the predicate.
void CollectPredOperands(const Predicate& p, std::vector<ExprPtr>* out) {
  switch (p.kind) {
    case Predicate::Kind::kAtom:
      out->push_back(p.lhs);
      out->push_back(p.rhs);
      return;
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      CollectPredOperands(*p.a, out);
      CollectPredOperands(*p.b, out);
      return;
    case Predicate::Kind::kNot:
      CollectPredOperands(*p.a, out);
      return;
    case Predicate::Kind::kTrue:
      return;
  }
}

ExplainNode Annotate(const CostModel& cost, const ExprPtr& e,
                     const PlanProfile* profile, std::string role) {
  ExplainNode n;
  n.op = OpKindToString(e->kind());
  n.detail = Detail(*e);
  n.role = std::move(role);
  if (auto est = cost.Estimate(e); est.ok()) {
    n.est_cardinality = est->cardinality;
    n.est_cost = est->total;
  }
  if (profile != nullptr) {
    if (const NodeProfile* np = profile->Find(e.get())) {
      n.act_invocations = np->invocations;
      n.act_occurrences_in = np->occurrences_in;
      n.act_out_occurrences = np->out_occurrences;
      n.act_self_nanos = np->self_nanos;
    }
  }
  const bool join = e->kind() == OpKind::kHashJoin ||
                    e->kind() == OpKind::kIndexJoin;
  const bool probe = e->kind() == OpKind::kIndexProbe;
  for (size_t i = 0; i < e->num_children(); ++i) {
    // HASH_JOIN / IDX_JOIN children 2/3 are per-element key binders, not
    // data inputs; IDX_PROBE's only child is the closed probe expression.
    std::string child_role;
    if (join && i >= 2) child_role = "key";
    if (probe && i == 0) child_role = "probe";
    n.children.push_back(Annotate(cost, e->child(i), profile, child_role));
  }
  if (e->sub() != nullptr) {
    n.children.push_back(Annotate(cost, e->sub(), profile, "sub"));
  }
  if (e->pred() != nullptr) {
    std::vector<ExprPtr> operands;
    CollectPredOperands(*e->pred(), &operands);
    for (const auto& op : operands) {
      n.children.push_back(Annotate(cost, op, profile, "pred"));
    }
  }
  return n;
}

void PrettyNode(const ExplainNode& n, int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  if (!n.role.empty()) {
    *out += n.role;
    *out += ": ";
  }
  *out += n.op;
  if (!n.detail.empty()) {
    *out += " ";
    *out += n.detail;
  }
  if (n.est_cost >= 0) {
    *out += "  (est rows=" + Num(n.est_cardinality) +
            " cost=" + Num(n.est_cost) + ")";
  }
  if (n.act_invocations >= 0) {
    *out += "  [act calls=" + std::to_string(n.act_invocations) +
            " in=" + std::to_string(n.act_occurrences_in) +
            " out=" + std::to_string(n.act_out_occurrences);
    if (n.act_self_nanos > 0) *out += " self=" + FormatNanos(n.act_self_nanos);
    *out += "]";
  }
  *out += "\n";
  for (const auto& c : n.children) PrettyNode(c, indent + 1, out);
}

void JsonNode(const ExplainNode& n, std::string* out) {
  *out += "{\"op\": ";
  AppendJsonString(out, n.op);
  *out += ", \"detail\": ";
  AppendJsonString(out, n.detail);
  *out += ", \"role\": ";
  AppendJsonString(out, n.role);
  if (n.est_cost >= 0) {
    *out += ", \"est\": {\"cardinality\": " + Num(n.est_cardinality) +
            ", \"cost\": " + Num(n.est_cost) + "}";
  }
  if (n.act_invocations >= 0) {
    *out += ", \"act\": {\"invocations\": " + std::to_string(n.act_invocations) +
            ", \"occurrences_in\": " + std::to_string(n.act_occurrences_in) +
            ", \"out_occurrences\": " +
            std::to_string(n.act_out_occurrences) +
            ", \"self_nanos\": " + std::to_string(n.act_self_nanos) + "}";
  }
  *out += ", \"children\": [";
  for (size_t i = 0; i < n.children.size(); ++i) {
    if (i > 0) *out += ", ";
    JsonNode(n.children[i], out);
  }
  *out += "]}";
}

}  // namespace

ExplainNode AnnotatePlan(const Database* db, const ExprPtr& plan,
                         const CostParams& params,
                         const PlanProfile* profile) {
  CostModel cost(db, params);
  return Annotate(cost, plan, profile, "");
}

ExplainReport ExplainPlan(const Database* db, const ExprPtr& plan,
                          const CostParams& params,
                          const std::string& statement) {
  ExplainReport report;
  report.statement = statement;
  report.logical = AnnotatePlan(db, plan, params);
  report.physical = report.logical;
  CostModel cost(db, params);
  if (auto est = cost.Estimate(plan); est.ok()) report.est_total = est->total;
  return report;
}

std::string ExplainReport::Pretty(bool with_trace) const {
  std::string out = "EXPLAIN";
  if (analyzed) out += " ANALYZE";
  out += optimized ? " (optimized)" : " (optimizer off)";
  out += "\n";
  if (!statement.empty()) out += statement + "\n";
  out += "logical plan:\n";
  PrettyNode(logical, 1, &out);
  out += analyzed ? "executed plan:\n" : "physical plan:\n";
  PrettyNode(physical, 1, &out);
  if (est_total >= 0) out += "estimated total cost: " + Num(est_total) + "\n";
  if (analyzed) {
    out += "actual: wall=" + FormatNanos(wall_nanos);
    if (peak_bytes >= 0) out += " peak_bytes=" + std::to_string(peak_bytes);
    if (result_occurrences >= 0) {
      out += " result_occurrences=" + std::to_string(result_occurrences);
    }
    out += "\n";
  }
  if (with_trace) {
    out += "rewrite trace (" + std::to_string(trace.size()) + " steps):\n";
    int i = 0;
    for (const auto& step : trace) {
      out += "  " + std::to_string(++i) + ". [" + step.phase + "] " +
             step.rule;
      if (step.paper_id > 0) {
        out += " (paper rule " + std::to_string(step.paper_id) + ")";
      }
      if (step.cost_before >= 0 && step.cost_after >= 0) {
        out += ": cost " + Num(step.cost_before) + " -> " +
               Num(step.cost_after);
      }
      out += "\n";
      out += "     before: " + step.before + "\n";
      out += "     after:  " + step.after + "\n";
    }
  }
  return out;
}

std::string ExplainReport::ToJson() const {
  std::string out = "{\"version\": 1, \"statement\": ";
  AppendJsonString(&out, statement);
  out += ", \"optimized\": ";
  out += optimized ? "true" : "false";
  out += ", \"analyzed\": ";
  out += analyzed ? "true" : "false";
  out += ", \"estimated_total_cost\": ";
  out += est_total >= 0 ? Num(est_total) : "null";
  out += ", \"wall_nanos\": ";
  out += wall_nanos >= 0 ? std::to_string(wall_nanos) : "null";
  out += ", \"peak_bytes\": ";
  out += peak_bytes >= 0 ? std::to_string(peak_bytes) : "null";
  out += ", \"result_occurrences\": ";
  out += result_occurrences >= 0 ? std::to_string(result_occurrences) : "null";
  out += ", \"logical\": ";
  JsonNode(logical, &out);
  out += ", \"physical\": ";
  JsonNode(physical, &out);
  out += ", \"trace\": [";
  for (size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) out += ", ";
    const TraceStep& s = trace[i];
    out += "{\"phase\": ";
    AppendJsonString(&out, s.phase);
    out += ", \"paper_id\": " + std::to_string(s.paper_id) + ", \"rule\": ";
    AppendJsonString(&out, s.rule);
    out += ", \"before\": ";
    AppendJsonString(&out, s.before);
    out += ", \"after\": ";
    AppendJsonString(&out, s.after);
    out += ", \"cost_before\": ";
    out += s.cost_before >= 0 ? Num(s.cost_before) : "null";
    out += ", \"cost_after\": ";
    out += s.cost_after >= 0 ? Num(s.cost_after) : "null";
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace excess
