#ifndef EXCESS_OBS_METRICS_H_
#define EXCESS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace excess {
namespace obs {

/// A monotonically increasing counter. Relaxed atomics: metrics are
/// advisory observability data, never synchronization.
class Counter {
 public:
  void Increment(int64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A histogram over non-negative integers with power-of-two buckets:
/// bucket i counts observations v with bit_width(v) == i, i.e. bucket 0 is
/// v == 0, bucket i (i > 0) is 2^(i-1) <= v < 2^i. Good enough resolution
/// for batch sizes, partition counts, and probe chain lengths while keeping
/// Observe() to two relaxed adds and one increment.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(int64_t v) {
    if (v < 0) v = 0;
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  static int BucketOf(int64_t v) {
    int b = 0;
    while (v > 0) {
      ++b;
      v >>= 1;
    }
    return b < kBuckets ? b : kBuckets - 1;
  }

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
};

/// Process-wide registry of named counters and histograms. Lookup takes a
/// mutex; hot paths should resolve their instrument once (function-local
/// static) — returned pointers are stable for the life of the process.
///
/// Thread-safety contract (the server's worker pool, connection threads,
/// and parallel APPLY workers all count into this registry concurrently):
/// GetCounter/GetHistogram/Snapshot/ResetForTest serialize on the registry
/// mutex; Increment/Observe/value/count/sum/bucket are lock-free relaxed
/// atomics. A Snapshot taken during concurrent Observe calls is internally
/// torn only across *fields* of one histogram (count may lead sum by an
/// in-flight observation) — never within a counter, and never corrupt.
/// This is swept under ThreadSanitizer by the concurrency test's metrics
/// hammer.
///
/// Snapshot() renders the whole registry as one JSON object (schema in
/// docs/OBSERVABILITY.md). When EXCESS_METRICS_PATH is set the registry
/// writes a snapshot there at process exit.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// {"counters": {name: value, ...},
  ///  "histograms": {name: {"count": n, "sum": s,
  ///                        "buckets": [{"le": bound, "count": c}, ...]}}}
  /// Keys are sorted (std::map) so snapshots diff cleanly.
  std::string Snapshot() const;

  /// Zeroes every registered instrument (names stay registered, pointers
  /// stay valid). Test isolation only.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Convenience for the common "count one event" call sites.
inline void CountEvent(Counter* c, int64_t by = 1) { c->Increment(by); }

}  // namespace obs
}  // namespace excess

#endif  // EXCESS_OBS_METRICS_H_
