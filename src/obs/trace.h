#ifndef EXCESS_OBS_TRACE_H_
#define EXCESS_OBS_TRACE_H_

#include <string>
#include <vector>

#include "core/cost.h"
#include "core/rewriter.h"
#include "objects/database.h"

namespace excess {
namespace obs {

/// One recorded rule firing. `before`/`after` are compact renderings of the
/// matched sub-expression and its replacement ("heuristic" phase) or of the
/// whole candidate trees ("search" phase — the planner reports adopted
/// whole-tree improvements). Costs are CostModel totals of those rendered
/// expressions; -1 when the estimate is unavailable (e.g. a subscript
/// fragment whose INPUT cardinality is unknown).
struct TraceStep {
  std::string phase;  // "heuristic" | "search"
  int paper_id = 0;   // Appendix rule number (0 for derived-op expansions)
  std::string rule;   // rule name, e.g. "combine-set-applys"
  std::string before;
  std::string after;
  double cost_before = -1;
  double cost_after = -1;
};

/// RewriteObserver that accumulates a rewrite trace with cost deltas —
/// the recorder behind `EXPLAIN (TRACE)` and Session::last_explain().
/// Attach via Planner::set_observer / Rewriter::set_observer.
class RewriteTrace : public RewriteObserver {
 public:
  explicit RewriteTrace(const Database* db, CostParams params = CostParams())
      : cost_(db, params) {}

  void OnRewrite(const char* phase, const RewriteRule& rule,
                 const ExprPtr& before, const ExprPtr& after) override;

  const std::vector<TraceStep>& steps() const { return steps_; }
  void Clear() { steps_.clear(); }

 private:
  CostModel cost_;
  std::vector<TraceStep> steps_;
};

}  // namespace obs
}  // namespace excess

#endif  // EXCESS_OBS_TRACE_H_
