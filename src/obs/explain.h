#ifndef EXCESS_OBS_EXPLAIN_H_
#define EXCESS_OBS_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/cost.h"
#include "core/eval.h"
#include "core/expr.h"
#include "objects/database.h"
#include "obs/trace.h"

namespace excess {
namespace obs {

/// One operator of an annotated plan tree. Children cover *every* node the
/// evaluator counts: data children, `sub:` subscripts, hash-join `key:`
/// binders, and `pred:` operand expressions of COMP/HASH_JOIN atoms — so an
/// EXPLAIN ANALYZE tree accounts for the same node set as EvalStats.
///
/// Estimates are inclusive of the subtree (CostModel semantics); -1 means
/// "unavailable" (the cost model declined, e.g. an INPUT-relative fragment).
/// Actuals are -1 unless the plan was executed under a PlanProfile.
struct ExplainNode {
  std::string op;      // OpKindToString name, e.g. "SET_APPLY"
  std::string detail;  // operator parameters ("" when none)
  std::string role;    // edge label from parent: "" | "sub" | "key" | "pred"
  double est_cardinality = -1;
  double est_cost = -1;
  int64_t act_invocations = -1;
  int64_t act_occurrences_in = -1;
  int64_t act_out_occurrences = -1;
  int64_t act_self_nanos = -1;
  std::vector<ExplainNode> children;
};

/// Everything EXPLAIN / EXPLAIN ANALYZE knows about one statement. Produced
/// by Session::ExecuteStatement for `explain ...` statements (retrievable
/// programmatically via Session::last_explain()) and by ExplainPlan() for
/// hand-built plans (benches, golden tests).
struct ExplainReport {
  std::string statement;  // echo of the explained statement ("" when n/a)
  bool optimized = false;
  bool analyzed = false;
  ExplainNode logical;    // the translated (pre-optimization) plan
  ExplainNode physical;   // the plan that would run / did run
  double est_total = -1;  // chosen plan's estimated total cost
  int64_t wall_nanos = -1;         // analyze only
  int64_t peak_bytes = -1;         // analyze only (governor accounting)
  int64_t result_occurrences = -1; // analyze only
  std::vector<TraceStep> trace;    // every recorded rule firing

  /// Human tree rendering; `with_trace` appends the rewrite trace.
  std::string Pretty(bool with_trace = false) const;
  /// Stable JSON (schema documented in docs/OBSERVABILITY.md; "version" is
  /// bumped on any incompatible change). Always includes the trace array.
  std::string ToJson() const;
};

/// Annotates `plan` with per-node cost estimates and (when `profile` is
/// non-null) the actuals recorded by an Evaluator run with that profile.
ExplainNode AnnotatePlan(const Database* db, const ExprPtr& plan,
                         const CostParams& params,
                         const PlanProfile* profile = nullptr);

/// Estimates-only report for an already-built plan: logical == physical ==
/// `plan`, no optimizer involved. The figure benches emit their plan trees
/// through this so PLAN_*.json and the docs share one source of truth.
ExplainReport ExplainPlan(const Database* db, const ExprPtr& plan,
                          const CostParams& params = CostParams(),
                          const std::string& statement = "");

}  // namespace obs
}  // namespace excess

#endif  // EXCESS_OBS_EXPLAIN_H_
