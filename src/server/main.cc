// excess_serverd: the EXCESS session server daemon.
//
// Knobs (all environment variables; flags deliberately avoided so the
// daemon, the tests, and CI configure it the same way):
//   EXCESS_SERVER_SOCKET    unix-domain socket path (default
//                           /tmp/excess.sock when no port is set)
//   EXCESS_SERVER_PORT      TCP port on 127.0.0.1 (0 = ephemeral)
//   EXCESS_SERVER_WORKERS   worker pool size (default: hardware threads)
//   EXCESS_SERVER_QUEUE     admission queue capacity (default: 4x workers)
//   EXCESS_SERVER_GRACE_MS  drain grace on SIGTERM/shutdown (default 5000)
//   EXCESS_TXN_LEASE_MS     wire-transaction lease deadline (default 10000;
//                           read inside Server::Start)
//   EXCESS_DB_PATH          durable database directory (optional)
//
// SIGTERM / SIGINT / a client shutdown opcode all trigger the same
// graceful drain: stop accepting, finish or cancel in-flight requests
// within the grace deadline, checkpoint, exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "server/server.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int sig) { g_signal = sig; }

long EnvLong(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtol(v, nullptr, 10);
}

}  // namespace

int main() {
  using excess::server::Server;
  using excess::server::ServerOptions;

  ServerOptions opts;
  const char* sock = std::getenv("EXCESS_SERVER_SOCKET");
  long port = EnvLong("EXCESS_SERVER_PORT", -1);
  opts.unix_path = sock != nullptr ? sock : "";
  opts.tcp_port = static_cast<int>(port);
  if (opts.unix_path.empty() && opts.tcp_port < 0) {
    opts.unix_path = "/tmp/excess.sock";
  }
  opts.workers = static_cast<int>(EnvLong("EXCESS_SERVER_WORKERS", 0));
  opts.queue_capacity = static_cast<int>(EnvLong("EXCESS_SERVER_QUEUE", 0));
  const char* db = std::getenv("EXCESS_DB_PATH");
  if (db != nullptr) opts.db_path = db;
  uint32_t grace_ms =
      static_cast<uint32_t>(EnvLong("EXCESS_SERVER_GRACE_MS", 5'000));

  // SIGPIPE must be ignored before the first socket write can happen — a
  // client that disconnects between Start() and a later signal() call
  // would otherwise kill the daemon with the default disposition. Writes
  // see EPIPE as a Status instead.
  std::signal(SIGPIPE, SIG_IGN);

  Server server(opts);
  excess::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "excess_serverd: %s\n", st.ToString().c_str());
    return 1;
  }
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);

  if (!server.unix_path().empty()) {
    std::fprintf(stderr, "excess_serverd: listening on %s\n",
                 server.unix_path().c_str());
  }
  if (server.tcp_port() >= 0) {
    std::fprintf(stderr, "excess_serverd: listening on 127.0.0.1:%d\n",
                 server.tcp_port());
  }

  while (g_signal == 0) {
    if (server.WaitForShutdownRequest(/*timeout_ms=*/200)) break;
  }
  std::fprintf(stderr, "excess_serverd: draining (grace %u ms)\n", grace_ms);
  server.Shutdown(grace_ms);
  return 0;
}
