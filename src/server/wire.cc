#include "server/wire.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "util/string_util.h"

namespace excess {
namespace server {

namespace {

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

/// Strict little-endian reader over a payload; any read past the end trips
/// the `ok` flag and every later read returns 0.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  uint8_t U8() { return static_cast<uint8_t>(Byte()); }
  uint32_t U32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(Byte()) << (8 * i);
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(Byte()) << (8 * i);
    return v;
  }
  std::string Bytes(uint32_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      pos_ = data_.size();
      return std::string();
    }
    std::string out(data_.substr(pos_, n));
    pos_ += n;
    return out;
  }
  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  uint8_t Byte() {
    if (pos_ >= data_.size()) {
      ok_ = false;
      return 0;
    }
    return static_cast<uint8_t>(data_[pos_++]);
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Polls `fd` for `events`; OK when ready, kDeadlineExceeded on timeout,
/// kUnavailable on error/hangup-with-nothing-to-do.
Status PollFor(int fd, short events, int timeout_ms) {
  struct pollfd p;
  p.fd = fd;
  p.events = events;
  p.revents = 0;
  int r;
  do {
    r = ::poll(&p, 1, timeout_ms);
  } while (r < 0 && errno == EINTR);
  if (r == 0) return Status::DeadlineExceeded("peer silent past timeout");
  if (r < 0) return Status::Unavailable(StrCat("poll: ", std::strerror(errno)));
  if ((p.revents & (events | POLLHUP | POLLERR)) == 0) {
    return Status::Unavailable("poll: unexpected event");
  }
  return Status::OK();
}

/// Reads exactly `n` bytes. `any_read` distinguishes a clean close between
/// frames (kUnavailable) from a torn frame (kInvalid). recv is retried on
/// EINTR/EAGAIN so a signal mid-read never surfaces as a frame error.
Status ReadExact(int fd, char* buf, size_t n, int timeout_ms, bool* any_read) {
  size_t got = 0;
  while (got < n) {
    EXA_RETURN_NOT_OK(PollFor(fd, POLLIN, timeout_ms));
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) {
      if (got == 0 && !*any_read) {
        return Status::Unavailable("connection closed");
      }
      return Status::Invalid("torn frame: peer closed mid-message");
    }
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Unavailable(StrCat("recv: ", std::strerror(errno)));
    }
    got += static_cast<size_t>(r);
    *any_read = true;
  }
  return Status::OK();
}

/// Sends all of `data`. send is retried on EINTR/EAGAIN; MSG_NOSIGNAL makes
/// a vanished client yield EPIPE, never SIGPIPE.
Status SendAll(int fd, std::string_view data, int timeout_ms) {
  size_t sent = 0;
  while (sent < data.size()) {
    EXA_RETURN_NOT_OK(PollFor(fd, POLLOUT, timeout_ms));
    ssize_t r = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Unavailable(StrCat("send: ", std::strerror(errno)));
    }
    sent += static_cast<size_t>(r);
  }
  return Status::OK();
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

Result<std::string> ReadSizedPayload(int fd, uint32_t len, uint32_t max_bytes,
                                     int timeout_ms, bool* any_read) {
  if (len > max_bytes) {
    return Status::Invalid(StrCat("frame of ", len, " bytes exceeds the ",
                                  max_bytes, "-byte cap"));
  }
  std::string payload(len, '\0');
  if (len > 0) {
    EXA_RETURN_NOT_OK(ReadExact(fd, payload.data(), len, timeout_ms,
                                any_read));
  }
  return payload;
}

}  // namespace

std::string EncodeRequest(const Request& req) {
  std::string out;
  out.reserve(33 + req.token.size() + req.statement.size());
  PutU8(&out, static_cast<uint8_t>(req.opcode));
  PutU32(&out, req.deadline_ms);
  PutU64(&out, req.max_bytes);
  PutU64(&out, req.max_occurrences);
  PutU64(&out, req.req_id);
  PutU32(&out, static_cast<uint32_t>(req.token.size()));
  out += req.token;
  PutU32(&out, static_cast<uint32_t>(req.statement.size()));
  out += req.statement;
  return out;
}

Result<Request> DecodeRequest(std::string_view payload) {
  Reader r(payload);
  Request req;
  uint8_t op = r.U8();
  if (op < 1 || op > 3) {
    return Status::Invalid(StrCat("unknown opcode ", op));
  }
  req.opcode = static_cast<Opcode>(op);
  req.deadline_ms = r.U32();
  req.max_bytes = r.U64();
  req.max_occurrences = r.U64();
  req.req_id = r.U64();
  uint32_t token_len = r.U32();
  if (token_len > kMaxTokenBytes) {
    return Status::Invalid(StrCat("idempotency token of ", token_len,
                                  " bytes exceeds the ", kMaxTokenBytes,
                                  "-byte cap"));
  }
  req.token = r.Bytes(token_len);
  uint32_t len = r.U32();
  req.statement = r.Bytes(len);
  if (!r.ok() || !r.AtEnd()) {
    return Status::Invalid("malformed request payload");
  }
  return req;
}

std::string EncodeResponse(const Response& resp) {
  std::string out;
  out.reserve(34 + resp.message.size() + resp.result.size());
  PutU8(&out, static_cast<uint8_t>(resp.code));
  PutU8(&out, resp.resolved_by_token ? 1 : 0);
  PutU64(&out, resp.req_id);
  PutU64(&out, resp.epoch);
  PutU32(&out, resp.retry_after_ms);
  PutU32(&out, static_cast<uint32_t>(resp.message.size()));
  out += resp.message;
  PutU32(&out, static_cast<uint32_t>(resp.result.size()));
  out += resp.result;
  return out;
}

Result<Response> DecodeResponse(std::string_view payload) {
  Reader r(payload);
  Response resp;
  uint8_t code = r.U8();
  if (code > static_cast<uint8_t>(StatusCode::kVersionMismatch)) {
    return Status::Invalid(StrCat("unknown status code ", code));
  }
  resp.code = static_cast<StatusCode>(code);
  uint8_t flags = r.U8();
  if ((flags & ~uint8_t{1}) != 0) {
    return Status::Invalid(StrCat("unknown response flags ", flags));
  }
  resp.resolved_by_token = (flags & 1) != 0;
  resp.req_id = r.U64();
  resp.epoch = r.U64();
  resp.retry_after_ms = r.U32();
  resp.message = r.Bytes(r.U32());
  resp.result = r.Bytes(r.U32());
  if (!r.ok() || !r.AtEnd()) {
    return Status::Invalid("malformed response payload");
  }
  return resp;
}

std::string EncodeLegacyRequest(const Request& req) {
  std::string out;
  out.reserve(21 + 4 + req.statement.size());
  PutU8(&out, static_cast<uint8_t>(req.opcode));
  PutU32(&out, req.deadline_ms);
  PutU64(&out, req.max_bytes);
  PutU64(&out, req.max_occurrences);
  PutU32(&out, static_cast<uint32_t>(req.statement.size()));
  out += req.statement;
  return out;
}

std::string EncodeLegacyResponse(const Response& resp) {
  std::string out;
  out.reserve(21 + resp.message.size() + resp.result.size());
  PutU8(&out, static_cast<uint8_t>(resp.code));
  PutU64(&out, resp.epoch);
  PutU32(&out, resp.retry_after_ms);
  PutU32(&out, static_cast<uint32_t>(resp.message.size()));
  out += resp.message;
  PutU32(&out, static_cast<uint32_t>(resp.result.size()));
  out += resp.result;
  return out;
}

Result<Response> DecodeLegacyResponse(std::string_view payload) {
  Reader r(payload);
  Response resp;
  uint8_t code = r.U8();
  // v1 decoders only knew codes up to kUnavailable; the compatibility
  // reply therefore never carries kVersionMismatch (it is downgraded to
  // kUnsupported by the server before encoding).
  if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::Invalid(StrCat("unknown status code ", code));
  }
  resp.code = static_cast<StatusCode>(code);
  resp.epoch = r.U64();
  resp.retry_after_ms = r.U32();
  resp.message = r.Bytes(r.U32());
  resp.result = r.Bytes(r.U32());
  if (!r.ok() || !r.AtEnd()) {
    return Status::Invalid("malformed response payload");
  }
  return resp;
}

std::string FrameBytes(std::string_view payload) {
  std::string framed;
  framed.reserve(8 + payload.size());
  framed.push_back('E');
  framed.push_back('X');
  framed.push_back('W');
  framed.push_back(static_cast<char>(kWireVersion));
  PutU32(&framed, static_cast<uint32_t>(payload.size()));
  framed.append(payload.data(), payload.size());
  return framed;
}

Result<std::string> ReadFrame(int fd, int timeout_ms, uint32_t max_bytes,
                              int* peer_version) {
  if (peer_version != nullptr) *peer_version = kWireVersion;
  bool any_read = false;
  char hdr[4];
  EXA_RETURN_NOT_OK(ReadExact(fd, hdr, 4, timeout_ms, &any_read));
  if (hdr[0] == 'E' && hdr[1] == 'X' && hdr[2] == 'W') {
    uint8_t version = static_cast<uint8_t>(hdr[3]);
    if (version != kWireVersion) {
      if (peer_version != nullptr) *peer_version = version;
      return Status::VersionMismatch(
          StrCat("peer speaks wire protocol v", version,
                 "; this build speaks v", kWireVersion));
    }
    char len_hdr[4];
    EXA_RETURN_NOT_OK(ReadExact(fd, len_hdr, 4, timeout_ms, &any_read));
    return ReadSizedPayload(fd, LoadU32(len_hdr), max_bytes, timeout_ms,
                            &any_read);
  }
  // No magic: a legacy v1 peer whose frame is a bare length prefix. Drain
  // its payload (within the cap) so a typed compatibility reply can still
  // reach it before the connection is closed.
  if (peer_version != nullptr) *peer_version = 1;
  uint32_t len = LoadU32(hdr);
  if (len <= max_bytes && len > 0) {
    std::string discard(len, '\0');
    (void)ReadExact(fd, discard.data(), len, timeout_ms, &any_read);
  }
  return Status::VersionMismatch(
      StrCat("peer speaks legacy wire protocol v1 (unversioned frame); "
             "this build speaks v",
             kWireVersion));
}

Status WriteFrame(int fd, std::string_view payload, int timeout_ms) {
  return SendAll(fd, FrameBytes(payload), timeout_ms);
}

Result<std::string> ReadLegacyFrame(int fd, int timeout_ms,
                                    uint32_t max_bytes) {
  bool any_read = false;
  char hdr[4];
  EXA_RETURN_NOT_OK(ReadExact(fd, hdr, 4, timeout_ms, &any_read));
  return ReadSizedPayload(fd, LoadU32(hdr), max_bytes, timeout_ms, &any_read);
}

Status WriteLegacyFrame(int fd, std::string_view payload, int timeout_ms) {
  std::string framed;
  framed.reserve(4 + payload.size());
  PutU32(&framed, static_cast<uint32_t>(payload.size()));
  framed.append(payload.data(), payload.size());
  return SendAll(fd, framed, timeout_ms);
}

bool PeerClosed(int fd) {
  char c;
  ssize_t r = ::recv(fd, &c, 1, MSG_PEEK | MSG_DONTWAIT);
  if (r == 0) return true;                      // orderly shutdown
  if (r > 0) return false;                      // pipelined data: alive
  return !(errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR);
}

}  // namespace server
}  // namespace excess
