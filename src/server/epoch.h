#ifndef EXCESS_SERVER_EPOCH_H_
#define EXCESS_SERVER_EPOCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "excess/ast.h"
#include "excess/session.h"
#include "methods/registry.h"
#include "objects/database.h"

namespace excess {
namespace server {

/// One committed epoch of the database, captured copy-on-write: the
/// structural maps (catalog definitions, store image, named bindings,
/// range declarations, method table) are copied, while every value graph,
/// schema, and parse tree is shared by pointer — all immutable once
/// published, so readers on other threads dereference them freely. This is
/// the PR 5 snapshot represented in memory instead of on disk.
struct EpochSnapshot {
  uint64_t epoch = 0;
  std::vector<Catalog::TypeDef> types;
  ObjectStore::StoreDump store;
  std::vector<NamedObject> named;
  std::vector<std::pair<std::string, ExprAstPtr>> ranges;
  MethodRegistry::MethodMap methods;
  /// Secondary index definitions; reader clones rebuild the entries from
  /// their private named bindings (same strategy as snapshot restore).
  std::vector<IndexDef> indexes;
};

/// Captures the writer's committed state as epoch `epoch`. Must run with
/// the writer quiesced (the server holds its writer mutex): the capture
/// reads the live maps.
std::shared_ptr<const EpochSnapshot> CaptureEpoch(uint64_t epoch,
                                                  const Database& db,
                                                  const Session& writer,
                                                  const MethodRegistry& methods);

/// Rebuilds a private, fully functional database from a snapshot: catalog
/// definitions replayed, store restored, named bindings re-created (values
/// shared), methods restored. `db` and `methods` must be freshly
/// constructed; `ranges` receives the epoch's range declarations for
/// Session::set_ranges. Reader workers call this once per epoch change and
/// then serve any number of queries from the clone — queries may intern
/// fresh REFs or warm caches without synchronizing with anyone.
Status MaterializeEpoch(const EpochSnapshot& snap, Database* db,
                        MethodRegistry* methods,
                        std::vector<std::pair<std::string, ExprAstPtr>>* ranges);

}  // namespace server
}  // namespace excess

#endif  // EXCESS_SERVER_EPOCH_H_
