#ifndef EXCESS_SERVER_WIRE_H_
#define EXCESS_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace excess {
namespace server {

/// Wire protocol v2: every message is one versioned, length-prefixed frame
///
///   'E' 'X' 'W' u8 version | u32 payload_len | payload
///                                        (all integers little-endian)
///
/// capped at kMaxFrameBytes — a length prefix beyond the cap is treated as
/// a malformed stream and the connection is dropped, so a hostile or
/// corrupted client cannot make the server buffer unbounded input.
///
/// Version negotiation is typed, never garbled: a reader that sees the
/// "EXW" magic with an unexpected version byte returns kVersionMismatch
/// (and reads nothing further); a reader that sees no magic at all assumes
/// a legacy v1 peer (v1 frames were a bare `u32 payload_len` with no
/// magic), drains that one frame, and returns kVersionMismatch with
/// peer_version = 1 so the server can answer in v1 framing before closing.
///
/// Request payload (v2):
///   u8  opcode               1=statement  2=ping  3=shutdown (drain)
///   u32 deadline_ms          0 = server default
///   u64 max_bytes            per-request memory budget; 0 = server default
///   u64 max_occurrences      per-request row budget;    0 = server default
///   u64 req_id               client-chosen correlation id, echoed back
///   u32 token_len | bytes    idempotency token ("" = none; commit only),
///                            at most kMaxTokenBytes
///   u32 stmt_len | bytes     EXCESS statement source (statement opcode)
///
/// Response payload (v2):
///   u8  status_code          numeric StatusCode (0 = OK)
///   u8  flags                bit 0: resolved-by-token (commit dedup hit);
///                            other bits must be zero
///   u64 req_id               echo of the request's correlation id
///   u64 epoch                committed epoch the request observed
///   u32 retry_after_ms       only with kResourceExhausted / kUnavailable
///   u32 msg_len | bytes      error message ("" on OK)
///   u32 result_len | bytes   rendered result ("" for statements with none)
///
/// v1 payloads (still encodable/decodable for the compatibility reply and
/// for tests) are the same layouts minus req_id, token, and flags.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Version this build speaks. Frames carry it in the header; a mismatch is
/// reported as StatusCode::kVersionMismatch, never a garbled decode.
inline constexpr uint8_t kWireVersion = 2;

/// Upper bound on an idempotency token; longer tokens are kInvalid.
inline constexpr uint32_t kMaxTokenBytes = 128;

enum class Opcode : uint8_t {
  kStatement = 1,
  kPing = 2,
  kShutdown = 3,
};

struct Request {
  Opcode opcode = Opcode::kStatement;
  uint32_t deadline_ms = 0;
  uint64_t max_bytes = 0;
  uint64_t max_occurrences = 0;
  uint64_t req_id = 0;
  std::string token;  // idempotency token; "" = none
  std::string statement;
};

struct Response {
  StatusCode code = StatusCode::kOk;
  bool resolved_by_token = false;
  uint64_t req_id = 0;
  uint64_t epoch = 0;
  uint32_t retry_after_ms = 0;
  std::string message;
  std::string result;
};

/// Payload codecs (the frame header is added by WriteFrame). Decoding is
/// strict: truncated fields, an unknown opcode, unknown response flags, an
/// oversized token, or trailing bytes are all kInvalid — a torn or
/// corrupted frame never half-parses.
std::string EncodeRequest(const Request& req);
Result<Request> DecodeRequest(std::string_view payload);
std::string EncodeResponse(const Response& resp);
Result<Response> DecodeResponse(std::string_view payload);

/// v1 payload codecs, kept for the version-mismatch compatibility reply
/// (the server answers a legacy client in framing it can decode) and for
/// negotiation tests. req_id / token / resolved_by_token do not travel.
std::string EncodeLegacyRequest(const Request& req);
std::string EncodeLegacyResponse(const Response& resp);
Result<Response> DecodeLegacyResponse(std::string_view payload);

/// Returns the fully framed v2 byte string (header + payload) without
/// sending it — the fault-injection seam uses this to tear frames at a
/// byte boundary of its choosing.
std::string FrameBytes(std::string_view payload);

/// Frame I/O over a socket. Both directions poll with `timeout_ms` per
/// syscall so a stalled peer can never wedge the calling thread:
///  - ReadFrame returns kUnavailable on a clean close before any byte (the
///    peer hung up between frames), kInvalid on a torn frame (close mid-
///    frame) or an oversized length prefix, kDeadlineExceeded when the
///    peer stays silent mid-frame past the timeout, and kVersionMismatch
///    when the peer speaks a different protocol version (`peer_version`,
///    when non-null, receives the detected version; 1 means an
///    unversioned legacy frame, whose payload is drained so a typed reply
///    can still be delivered).
///  - WriteFrame returns kDeadlineExceeded when the peer stops draining
///    (slow-client protection) and kUnavailable when it disappeared.
Result<std::string> ReadFrame(int fd, int timeout_ms,
                              uint32_t max_bytes = kMaxFrameBytes,
                              int* peer_version = nullptr);
Status WriteFrame(int fd, std::string_view payload, int timeout_ms);

/// v1 framing (bare u32 length prefix): used for the compatibility reply
/// to a legacy client and by negotiation tests that simulate v1 peers.
Result<std::string> ReadLegacyFrame(int fd, int timeout_ms,
                                    uint32_t max_bytes = kMaxFrameBytes);
Status WriteLegacyFrame(int fd, std::string_view payload, int timeout_ms);

/// True iff the peer has closed its end (recv MSG_PEEK|MSG_DONTWAIT sees
/// EOF). Pending unread data — e.g. a pipelined request — counts as alive.
bool PeerClosed(int fd);

}  // namespace server
}  // namespace excess

#endif  // EXCESS_SERVER_WIRE_H_
