#ifndef EXCESS_SERVER_WIRE_H_
#define EXCESS_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace excess {
namespace server {

/// Wire protocol v1: every message is one length-prefixed frame
///
///   u32 payload_len | payload            (all integers little-endian)
///
/// capped at kMaxFrameBytes — a length prefix beyond the cap is treated as
/// a malformed stream and the connection is dropped, so a hostile or
/// corrupted client cannot make the server buffer unbounded input.
///
/// Request payload:
///   u8  opcode               1=statement  2=ping  3=shutdown (drain)
///   u32 deadline_ms          0 = server default
///   u64 max_bytes            per-request memory budget; 0 = server default
///   u64 max_occurrences      per-request row budget;    0 = server default
///   u32 stmt_len | bytes     EXCESS statement source (statement opcode)
///
/// Response payload:
///   u8  status_code          numeric StatusCode (0 = OK)
///   u64 epoch                committed epoch the request observed
///   u32 retry_after_ms       only with kResourceExhausted / kUnavailable
///   u32 msg_len | bytes      error message ("" on OK)
///   u32 result_len | bytes   rendered result ("" for statements with none)
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

enum class Opcode : uint8_t {
  kStatement = 1,
  kPing = 2,
  kShutdown = 3,
};

struct Request {
  Opcode opcode = Opcode::kStatement;
  uint32_t deadline_ms = 0;
  uint64_t max_bytes = 0;
  uint64_t max_occurrences = 0;
  std::string statement;
};

struct Response {
  StatusCode code = StatusCode::kOk;
  uint64_t epoch = 0;
  uint32_t retry_after_ms = 0;
  std::string message;
  std::string result;
};

/// Payload codecs (the length prefix is added by WriteFrame). Decoding is
/// strict: truncated fields, an unknown opcode, or trailing bytes are all
/// kInvalid — a torn or corrupted frame never half-parses.
std::string EncodeRequest(const Request& req);
Result<Request> DecodeRequest(std::string_view payload);
std::string EncodeResponse(const Response& resp);
Result<Response> DecodeResponse(std::string_view payload);

/// Frame I/O over a socket. Both directions poll with `timeout_ms` per
/// syscall so a stalled peer can never wedge the calling thread:
///  - ReadFrame returns kUnavailable on a clean close before any byte (the
///    peer hung up between frames), kInvalid on a torn frame (close mid-
///    frame) or an oversized length prefix, kDeadlineExceeded when the
///    peer stays silent mid-frame past the timeout.
///  - WriteFrame returns kDeadlineExceeded when the peer stops draining
///    (slow-client protection) and kUnavailable when it disappeared.
Result<std::string> ReadFrame(int fd, int timeout_ms,
                              uint32_t max_bytes = kMaxFrameBytes);
Status WriteFrame(int fd, std::string_view payload, int timeout_ms);

/// True iff the peer has closed its end (recv MSG_PEEK|MSG_DONTWAIT sees
/// EOF). Pending unread data — e.g. a pipelined request — counts as alive.
bool PeerClosed(int fd);

}  // namespace server
}  // namespace excess

#endif  // EXCESS_SERVER_WIRE_H_
