#include "server/epoch.h"

#include "obs/metrics.h"
#include "util/string_util.h"

namespace excess {
namespace server {

std::shared_ptr<const EpochSnapshot> CaptureEpoch(
    uint64_t epoch, const Database& db, const Session& writer,
    const MethodRegistry& methods) {
  auto snap = std::make_shared<EpochSnapshot>();
  snap->epoch = epoch;
  snap->types = db.catalog().DumpDefinitions();
  snap->store = db.store().Dump();
  for (const auto& name : db.NamedObjectNames()) {
    auto obj = db.GetNamed(name);
    if (obj.ok()) snap->named.push_back(**obj);
  }
  snap->ranges = writer.ranges();
  snap->methods = methods.Snapshot();
  snap->indexes = db.IndexDefs();
  obs::MetricsRegistry::Global().GetCounter("server.epoch.published")
      ->Increment();
  return snap;
}

Status MaterializeEpoch(const EpochSnapshot& snap, Database* db,
                        MethodRegistry* methods,
                        std::vector<std::pair<std::string, ExprAstPtr>>*
                            ranges) {
  for (const auto& def : snap.types) {
    EXA_RETURN_NOT_OK(db->catalog().DefineType(def.name, def.declared,
                                               def.parents));
  }
  EXA_RETURN_NOT_OK(db->store().Restore(snap.store));
  for (const auto& obj : snap.named) {
    EXA_RETURN_NOT_OK(db->CreateNamed(obj.name, obj.schema, obj.value));
  }
  // Indexes after the named bindings they cover; creation rebuilds the
  // entries inside the clone, so readers probe without synchronization.
  for (const auto& def : snap.indexes) {
    EXA_RETURN_NOT_OK(db->CreateIndex(def));
  }
  methods->RestoreSnapshot(snap.methods);
  *ranges = snap.ranges;
  obs::MetricsRegistry::Global().GetCounter("server.epoch.refreshes")
      ->Increment();
  return Status::OK();
}

}  // namespace server
}  // namespace excess
