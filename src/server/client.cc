#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/string_util.h"

namespace excess {
namespace server {

Result<Client> Client::ConnectUnix(const std::string& path, int timeout_ms) {
  sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::Invalid(StrCat("unix socket path too long: ", path));
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(StrCat("socket: ", std::strerror(errno)));
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int e = errno;
    ::close(fd);
    return Status::Unavailable(
        StrCat("connect ", path, ": ", std::strerror(e)));
  }
  return Client(fd, timeout_ms);
}

Result<Client> Client::ConnectTcp(const std::string& host, int port,
                                  int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(StrCat("socket: ", std::strerror(errno)));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::Invalid(StrCat("not an IPv4 address: ", host));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int e = errno;
    ::close(fd);
    return Status::Unavailable(
        StrCat("connect ", host, ":", port, ": ", std::strerror(e)));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd, timeout_ms);
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Response> Client::RoundTrip(const Request& req) {
  if (fd_ < 0) return Status::Unavailable("client not connected");
  EXA_RETURN_NOT_OK(WriteFrame(fd_, EncodeRequest(req), timeout_ms_));
  EXA_ASSIGN_OR_RETURN(std::string payload, ReadFrame(fd_, timeout_ms_));
  return DecodeResponse(payload);
}

Result<Response> Client::Execute(const std::string& statement,
                                 uint32_t deadline_ms, uint64_t max_bytes,
                                 uint64_t max_occurrences) {
  Request req;
  req.opcode = Opcode::kStatement;
  req.deadline_ms = deadline_ms;
  req.max_bytes = max_bytes;
  req.max_occurrences = max_occurrences;
  req.statement = statement;
  return RoundTrip(req);
}

Result<Response> Client::Ping() {
  Request req;
  req.opcode = Opcode::kPing;
  return RoundTrip(req);
}

Result<Response> Client::RequestShutdown() {
  Request req;
  req.opcode = Opcode::kShutdown;
  return RoundTrip(req);
}

}  // namespace server
}  // namespace excess
