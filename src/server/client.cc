#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>

#include "obs/metrics.h"
#include "util/string_util.h"

namespace excess {
namespace server {

namespace {

using Clock = std::chrono::steady_clock;

obs::Counter* Counter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

}  // namespace

Result<Client> Client::ConnectUnix(const std::string& path, int timeout_ms) {
  sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::Invalid(StrCat("unix socket path too long: ", path));
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(StrCat("socket: ", std::strerror(errno)));
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int e = errno;
    ::close(fd);
    return Status::Unavailable(
        StrCat("connect ", path, ": ", std::strerror(e)));
  }
  Client c(fd, timeout_ms);
  c.target_ = Target::kUnix;
  c.target_host_ = path;
  return c;
}

Result<Client> Client::ConnectTcp(const std::string& host, int port,
                                  int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(StrCat("socket: ", std::strerror(errno)));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::Invalid(StrCat("not an IPv4 address: ", host));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int e = errno;
    ::close(fd);
    return Status::Unavailable(
        StrCat("connect ", host, ":", port, ": ", std::strerror(e)));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Client c(fd, timeout_ms);
  c.target_ = Target::kTcp;
  c.target_host_ = host;
  c.target_port_ = port;
  return c;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::Reconnect() {
  Close();
  if (target_ == Target::kNone) {
    return Status::Invalid("client has no remembered connect target");
  }
  Counter("client.reconnect.attempts")->Increment();
  auto fresh = target_ == Target::kUnix
                   ? ConnectUnix(target_host_, timeout_ms_)
                   : ConnectTcp(target_host_, target_port_, timeout_ms_);
  if (!fresh.ok()) {
    Counter("client.reconnect.failures")->Increment();
    return fresh.status();
  }
  // Keep our own req_id stream (it only ever needs to be monotonic per
  // client) and adopt the fresh socket.
  fd_ = fresh->fd_;
  fresh->fd_ = -1;
  return Status::OK();
}

Result<Response> Client::ReadMatching(uint64_t req_id) {
  // A handful of stale frames is the most duplicated delivery can produce;
  // anything beyond that is a desynchronized stream, not a duplicate.
  for (int i = 0; i < 8; ++i) {
    EXA_ASSIGN_OR_RETURN(std::string payload, ReadFrame(fd_, timeout_ms_));
    EXA_ASSIGN_OR_RETURN(Response resp, DecodeResponse(payload));
    if (resp.req_id == req_id || resp.req_id == 0) return resp;
  }
  return Status::Invalid(
      "too many responses with stale req_ids; stream desynchronized");
}

Result<Response> Client::RoundTrip(Request& req) {
  if (fd_ < 0) return Status::Unavailable("client not connected");
  req.req_id = ++next_req_id_;
  EXA_RETURN_NOT_OK(WriteFrame(fd_, EncodeRequest(req), timeout_ms_));
  return ReadMatching(req.req_id);
}

Result<Response> Client::Execute(const std::string& statement,
                                 uint32_t deadline_ms, uint64_t max_bytes,
                                 uint64_t max_occurrences,
                                 const std::string& token) {
  Request req;
  req.opcode = Opcode::kStatement;
  req.deadline_ms = deadline_ms;
  req.max_bytes = max_bytes;
  req.max_occurrences = max_occurrences;
  req.token = token;
  req.statement = statement;
  return RoundTrip(req);
}

RetriedResult Client::ExecuteRetried(const std::string& statement,
                                     uint32_t deadline_ms,
                                     const std::string& token,
                                     bool idempotent,
                                     const RetryPolicy& policy) {
  RetriedResult out;
  const bool retriable_ack_loss = idempotent || !token.empty();
  const bool bounded = deadline_ms > 0;
  const auto overall_deadline =
      Clock::now() + std::chrono::milliseconds(deadline_ms);
  std::mt19937_64 rng(policy.jitter_seed);
  // The last transport failure, kept so an exhausted budget reports what
  // actually went wrong rather than a generic "gave up".
  Status last_transport = Status::OK();
  bool ambiguous_loss = false;  // an ack may have been lost
  bool have_resp = false;       // out.resp holds a real server response

  auto remaining_ms = [&]() -> int64_t {
    if (!bounded) return -1;  // unbounded
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               overall_deadline - Clock::now())
        .count();
  };
  auto backoff = [&](int attempt, uint32_t floor_ms) {
    uint64_t exp = policy.base_backoff_ms;
    for (int i = 1; i < attempt && exp < policy.max_backoff_ms; ++i) exp *= 2;
    exp = std::min<uint64_t>(exp, policy.max_backoff_ms);
    // Jitter in [0.5, 1.5): decorrelates a fleet retrying the same shed.
    double j = 0.5 + std::generate_canonical<double, 53>(rng);
    int64_t sleep_ms = std::max<int64_t>(
        static_cast<int64_t>(static_cast<double>(exp) * j), floor_ms);
    if (bounded) sleep_ms = std::min(sleep_ms, remaining_ms());
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
  };

  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    int64_t remain = remaining_ms();
    if (bounded && remain <= 0) break;
    out.attempts = attempt;
    if (fd_ < 0) {
      Status rc = Reconnect();
      if (!rc.ok()) {
        last_transport = rc;
        backoff(attempt, 0);
        continue;
      }
      ++out.reconnects;
    }
    Request req;
    req.opcode = Opcode::kStatement;
    // Deadline propagation: each attempt gets what is left of the overall
    // wall budget, so retries shrink the server-side deadline instead of
    // resetting it.
    req.deadline_ms = bounded ? static_cast<uint32_t>(remain) : 0;
    req.token = token;
    req.statement = statement;
    req.req_id = ++next_req_id_;
    Status ws = WriteFrame(fd_, EncodeRequest(req), timeout_ms_);
    if (!ws.ok()) {
      // The request never left whole: definitely not applied, always safe
      // to retry on a fresh connection.
      last_transport = ws;
      Close();
      backoff(attempt, 0);
      continue;
    }
    auto rr = ReadMatching(req.req_id);
    if (!rr.ok()) {
      last_transport = rr.status();
      Close();
      if (rr.status().IsVersionMismatch()) {
        // A peer speaking another protocol version garbles before it
        // executes; retrying cannot help.
        out.transport = rr.status();
        out.applied = Applied::kDefinitelyNot;
        return out;
      }
      // The request was delivered but its ack was lost: the statement may
      // or may not have applied. Retry only when a retry cannot
      // double-apply.
      ambiguous_loss = true;
      if (!retriable_ack_loss) {
        out.transport = rr.status();
        out.applied = Applied::kUnknown;
        return out;
      }
      backoff(attempt, 0);
      continue;
    }
    out.resp = std::move(*rr);
    out.transport = Status::OK();
    have_resp = true;
    if (out.resp.code == StatusCode::kResourceExhausted ||
        out.resp.code == StatusCode::kUnavailable) {
      // Shed / draining / writer leased elsewhere: did not run. Honor the
      // server's hint but never spin faster than the jittered backoff.
      last_transport = Status::OK();
      backoff(attempt, out.resp.retry_after_ms);
      continue;
    }
    if (out.resp.code == StatusCode::kOk) {
      out.applied = out.resp.resolved_by_token ? Applied::kResolvedByToken
                                               : Applied::kDefinitely;
    } else {
      out.applied = Applied::kDefinitelyNot;
    }
    return out;
  }
  // Budget exhausted. With a response in hand (a final shed) the taxonomy
  // is exact; with a lost ack it is honest: unknown.
  if (!have_resp) {
    out.transport = last_transport.ok()
                        ? Status::DeadlineExceeded("retry budget exhausted")
                        : last_transport;
  }
  out.applied =
      ambiguous_loss ? Applied::kUnknown : Applied::kDefinitelyNot;
  return out;
}

RetriedResult Client::Begin(uint32_t deadline_ms, const RetryPolicy& policy) {
  // Idempotent by lease semantics: a begin whose ack is lost dies with its
  // connection (the server reaps the lease), so reissuing on the fresh
  // connection opens an equivalent transaction.
  return ExecuteRetried("begin", deadline_ms, "", /*idempotent=*/true,
                        policy);
}

RetriedResult Client::Commit(const std::string& token, uint32_t deadline_ms,
                             const RetryPolicy& policy) {
  return ExecuteRetried("commit", deadline_ms, token, /*idempotent=*/false,
                        policy);
}

RetriedResult Client::Rollback(uint32_t deadline_ms,
                               const RetryPolicy& policy) {
  return ExecuteRetried("rollback", deadline_ms, "", /*idempotent=*/true,
                        policy);
}

Result<Response> Client::Ping() {
  Request req;
  req.opcode = Opcode::kPing;
  return RoundTrip(req);
}

Result<Response> Client::RequestShutdown() {
  Request req;
  req.opcode = Opcode::kShutdown;
  return RoundTrip(req);
}

}  // namespace server
}  // namespace excess
