#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "excess/parser.h"
#include "obs/metrics.h"
#include "util/env.h"
#include "util/string_util.h"

namespace excess {
namespace server {

namespace {

using Clock = std::chrono::steady_clock;

/// Statements a wire client may not issue. `open` rebinds the whole
/// process to a different file — an embedded-session feature, rejected
/// with a typed error instead of half-working. Transactions ARE allowed:
/// `begin` grants the connection a lease on the single writer (see the
/// class comment).
Status WireStatementAllowed(const Statement& s) {
  switch (s.kind) {
    case Statement::Kind::kOpen:
      return Status::Unsupported(
          "open is not available over the wire; configure the server's "
          "db_path instead");
    default:
      return Status::OK();
  }
}

/// A pre-parsed `rollback`, used when reaping abandoned transactions.
const Statement& RollbackStatement() {
  static const Statement* stmt =
      new Statement(std::move(*ParseStatement("rollback")));
  return *stmt;
}

/// Routing: writes serialize through the writer session (and publish a new
/// epoch); everything else runs on a reader's epoch clone. `explain` —
/// even `explain analyze` of a mutation — is a read: it evaluates but
/// never commits, so a private clone absorbs it.
bool StatementIsWrite(const Statement& s) {
  switch (s.kind) {
    case Statement::Kind::kRetrieve:
      return !s.retrieve->into.empty();
    case Statement::Kind::kExplain:
      return false;
    default:
      return true;
  }
}

obs::Counter* Counter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

}  // namespace

uint32_t ComputeRetryHintMs(int64_t ema_exec_us, size_t backlog,
                            int workers) {
  int64_t hint_ms = ema_exec_us * static_cast<int64_t>(backlog + 1) /
                    std::max(1, workers) / 1'000;
  return static_cast<uint32_t>(std::clamp<int64_t>(hint_ms, 1, 10'000));
}

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      methods_(&db_.catalog()),
      writer_(&db_, &methods_) {}

Server::~Server() { Shutdown(); }

std::string Server::RenderResult(const ValuePtr& v) {
  if (v == nullptr) return std::string();
  // EXPLAIN returns its report as a string value; ship the raw text, not a
  // quoted literal.
  if (v->kind() == ValueKind::kString) return v->as_string();
  return v->ToString();
}

Status Server::BindListeners() {
  if (opts_.unix_path.empty() && opts_.tcp_port < 0) {
    return Status::Invalid("no listener configured (unix_path or tcp_port)");
  }
  if (!opts_.unix_path.empty()) {
    sockaddr_un addr;
    if (opts_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::Invalid(StrCat("unix socket path too long: ",
                                    opts_.unix_path));
    }
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) {
      return Status::Unavailable(StrCat("socket: ", std::strerror(errno)));
    }
    ::unlink(opts_.unix_path.c_str());
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opts_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
            0 ||
        ::listen(unix_fd_, 128) < 0) {
      return Status::Unavailable(StrCat("bind/listen ", opts_.unix_path, ": ",
                                        std::strerror(errno)));
    }
  }
  if (opts_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) {
      return Status::Unavailable(StrCat("socket: ", std::strerror(errno)));
    }
    int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(opts_.tcp_port));
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
            0 ||
        ::listen(tcp_fd_, 128) < 0) {
      return Status::Unavailable(StrCat("bind/listen 127.0.0.1:",
                                        opts_.tcp_port, ": ",
                                        std::strerror(errno)));
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
        0) {
      tcp_port_ = static_cast<int>(ntohs(addr.sin_port));
    }
  }
  return Status::OK();
}

Status Server::Start() {
  {
    std::lock_guard<std::mutex> l(lifecycle_mu_);
    if (started_) return Status::Invalid("server already started");
  }
  if (opts_.workers <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    opts_.workers = std::max(2, static_cast<int>(hw));
  }
  if (opts_.queue_capacity <= 0) opts_.queue_capacity = 4 * opts_.workers;
  if (opts_.txn_lease_ms == 0) {
    opts_.txn_lease_ms = static_cast<uint32_t>(
        util::EnvInt("EXCESS_TXN_LEASE_MS", 1, 86'400'000, 10'000));
  }
  if (opts_.commit_dedup_window <= 0) opts_.commit_dedup_window = 256;
  if (!opts_.db_path.empty()) {
    std::lock_guard<std::mutex> wl(writer_mu_);
    EXA_RETURN_NOT_OK(writer_.OpenStorage(opts_.db_path));
    // Re-seed the exactly-once window from the WAL's journaled tokens: a
    // commit retried across a server restart still resolves instead of
    // double-applying. The original rendered result did not survive the
    // restart; the resolved response proves durability with epoch/result
    // of the recovered state.
    for (const auto& token : writer_.last_recovery().commit_tokens) {
      RecordCommitToken(token, 0, "");
    }
  }
  {
    // Epoch 1 (or the next after bootstrap ExecuteLocal calls): readers
    // always have a committed state to clone, even on an empty database.
    std::lock_guard<std::mutex> wl(writer_mu_);
    PublishEpochLocked();
  }
  EXA_RETURN_NOT_OK(BindListeners());
  if (::pipe(wake_pipe_) != 0) {
    return Status::Unavailable(StrCat("pipe: ", std::strerror(errno)));
  }
  workers_.reserve(static_cast<size_t>(opts_.workers));
  for (int w = 0; w < opts_.workers; ++w) {
    workers_.emplace_back(&Server::WorkerLoop, this);
  }
  reaper_thread_ = std::thread(&Server::ReaperLoop, this);
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  {
    std::lock_guard<std::mutex> l(lifecycle_mu_);
    started_ = true;
  }
  return Status::OK();
}

void Server::PublishEpochLocked() {
  uint64_t next = epoch_num_.load(std::memory_order_relaxed) + 1;
  auto snap = CaptureEpoch(next, db_, writer_, methods_);
  {
    std::unique_lock<std::shared_mutex> l(epoch_mu_);
    epoch_snap_ = std::move(snap);
  }
  epoch_num_.store(next, std::memory_order_release);
}

Result<std::string> Server::ExecuteLocal(const std::string& source) {
  EXA_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(source));
  EXA_RETURN_NOT_OK(WireStatementAllowed(stmt));
  switch (stmt.kind) {
    case Statement::Kind::kBegin:
    case Statement::Kind::kCommit:
    case Statement::Kind::kRollback:
      // A local transaction would leave the writer in_txn() with no
      // connection lease to scope or reap it; wire clients own that flow.
      return Status::Unsupported(
          "transactions are not available via ExecuteLocal; use a wire "
          "client, whose connection holds the transaction lease");
    default:
      break;
  }
  std::lock_guard<std::mutex> wl(writer_mu_);
  writer_.set_limits(ExecLimits::FromEnv());
  writer_.set_cancel_token(nullptr);
  auto r = writer_.ExecuteStatement(stmt);
  if (!r.ok()) return r.status();
  PublishEpochLocked();
  return RenderResult(*r);
}

Status Server::RefreshReader(ReaderCtx* ctx) {
  uint64_t cur = epoch_num_.load(std::memory_order_acquire);
  if (ctx->db != nullptr && ctx->epoch == cur) return Status::OK();
  std::shared_ptr<const EpochSnapshot> snap;
  {
    std::shared_lock<std::shared_mutex> l(epoch_mu_);
    snap = epoch_snap_;
  }
  if (snap == nullptr) return Status::Internal("no epoch published yet");
  auto db = std::make_unique<Database>();
  auto methods = std::make_unique<MethodRegistry>(&db->catalog());
  std::vector<std::pair<std::string, ExprAstPtr>> ranges;
  EXA_RETURN_NOT_OK(MaterializeEpoch(*snap, db.get(), methods.get(),
                                     &ranges));
  ctx->db = std::move(db);
  ctx->methods = std::move(methods);
  ctx->ranges = std::move(ranges);
  ctx->epoch = snap->epoch;
  return Status::OK();
}

void Server::ExecuteJob(Job* job, ReaderCtx* ctx) {
  Status st = Status::OK();
  std::string result;
  uint64_t served = 0;
  bool resolved = false;
  uint32_t retry_after = 0;
  if (job->is_write) {
    std::lock_guard<std::mutex> wl(writer_mu_);
    bool blocked = false;
    {
      // Lease gate. An expired lease is reaped inline (the watchdog may be
      // a tick behind); a connection whose transaction was reaped out from
      // under it gets one typed error instead of silently executing its
      // next statement outside the transaction; a foreign lease holder
      // blocks this write with a poll-interval retry hint — leases usually
      // end long before their deadline (commit, rollback, or the holder's
      // death reaps them), so hinting the full remaining life would park
      // waiters for the worst case instead of the common one.
      std::lock_guard<std::mutex> tl(txn_mu_);
      if (lease_active_ && Clock::now() >= lease_expiry_) ReapLocked();
      if (reaped_conns_.erase(job->conn_id) > 0) {
        st = Status::DeadlineExceeded(
            "transaction lease expired; transaction rolled back");
        blocked = true;
      } else if (lease_active_ && lease_conn_ != job->conn_id) {
        int64_t remain_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                lease_expiry_ - Clock::now())
                .count();
        retry_after =
            static_cast<uint32_t>(std::clamp<int64_t>(remain_ms, 1, 100));
        st = Status::Unavailable(
            "writer leased to another connection's open transaction");
        blocked = true;
      }
    }
    const bool tokened_commit = job->stmt.kind == Statement::Kind::kCommit &&
                                !job->token.empty();
    if (!blocked && tokened_commit) {
      // Exactly-once: a commit whose token already committed resolves to
      // its original outcome instead of re-executing the group.
      std::lock_guard<std::mutex> dl(dedup_mu_);
      auto it = dedup_.find(job->token);
      if (it != dedup_.end()) {
        resolved = true;
        result = it->second.result;
        served = it->second.epoch;
        Counter("server.txn.resolved_by_token")->Increment();
      }
    }
    if (!blocked && !resolved) {
      if (tokened_commit) writer_.set_next_commit_token(job->token);
      writer_.set_limits(job->limits);
      writer_.set_cancel_token(job->cancel);
      auto r = writer_.ExecuteStatement(job->stmt);
      // A cancelled request must never poison the next writer statement.
      writer_.set_cancel_token(nullptr);
      if (r.ok()) {
        // No publish mid-transaction: uncommitted state must not leak to
        // the epoch readers. The commit publishes the group all at once.
        if (!writer_.in_txn()) PublishEpochLocked();
        result = RenderResult(*r);
      } else {
        st = r.status();
      }
      served = epoch_num_.load(std::memory_order_relaxed);
      {
        // Lease bookkeeping follows the writer's own transaction state:
        // in_txn() after `begin` grants (and after any statement renews)
        // the lease; commit/rollback — or an error that aborted — frees it.
        std::lock_guard<std::mutex> tl(txn_mu_);
        if (writer_.in_txn()) {
          if (!lease_active_) Counter("server.txn.leases")->Increment();
          lease_active_ = true;
          lease_conn_ = job->conn_id;
          lease_expiry_ =
              Clock::now() + std::chrono::milliseconds(opts_.txn_lease_ms);
        } else {
          lease_active_ = false;
        }
      }
      if (r.ok() && tokened_commit) {
        RecordCommitToken(job->token, served, result);
      }
    } else if (served == 0) {
      // Blocked, or a recovered token whose original epoch predates this
      // process: report the current epoch.
      served = epoch_num_.load(std::memory_order_relaxed);
    }
    Counter("server.requests.write")->Increment();
  } else {
    st = RefreshReader(ctx);
    if (st.ok()) {
      Session::Options so;
      so.limits = job->limits;
      so.cancel = job->cancel;
      so.env_autoopen = false;
      Session reader(ctx->db.get(), ctx->methods.get(), so);
      reader.set_ranges(ctx->ranges);
      auto r = reader.ExecuteStatement(job->stmt);
      if (r.ok()) {
        result = RenderResult(*r);
      } else {
        st = r.status();
      }
    }
    served = ctx->epoch;
    Counter("server.requests.read")->Increment();
  }
  {
    std::lock_guard<std::mutex> jl(job->mu);
    if (!job->abandoned) {
      job->status = std::move(st);
      job->result = std::move(result);
      job->served_epoch = served;
      job->resolved_by_token = resolved;
      job->retry_after_ms = retry_after;
    }
    job->done = true;
  }
  job->cv.notify_all();
}

void Server::WorkerLoop() {
  ReaderCtx ctx;
  static obs::Histogram* exec_us =
      obs::MetricsRegistry::Global().GetHistogram("server.exec_us");
  for (;;) {
    JobPtr job;
    {
      std::unique_lock<std::mutex> l(queue_mu_);
      queue_cv_.wait(l, [&] { return stop_workers_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_workers_ and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    inflight_jobs_.fetch_add(1, std::memory_order_relaxed);
    uint64_t idx = dequeue_counter_.fetch_add(1, std::memory_order_relaxed);
    if (opts_.hooks != nullptr) opts_.hooks->OnJobStart(idx);
    bool skip;
    {
      std::lock_guard<std::mutex> jl(job->mu);
      skip = job->abandoned;
    }
    auto t0 = Clock::now();
    if (skip) {
      std::lock_guard<std::mutex> jl(job->mu);
      job->done = true;
    } else {
      ExecuteJob(job.get(), &ctx);
      int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                       Clock::now() - t0)
                       .count();
      exec_us->Observe(us);
      // EMA feeding the shed retry-after hint; precision is irrelevant,
      // only the order of magnitude.
      int64_t ema = ema_exec_us_.load(std::memory_order_relaxed);
      ema_exec_us_.store(ema - ema / 8 + us / 8, std::memory_order_relaxed);
      Counter("server.requests.executed")->Increment();
    }
    job->cv.notify_all();
    {
      std::lock_guard<std::mutex> t(tokens_mu_);
      live_tokens_.erase(job.get());
    }
    inflight_jobs_.fetch_sub(1, std::memory_order_relaxed);
  }
}

bool Server::TryEnqueue(const JobPtr& job, uint32_t* retry_after_ms) {
  bool shed = false;
  {
    std::lock_guard<std::mutex> l(queue_mu_);
    if (draining_.load(std::memory_order_relaxed) || stop_workers_ ||
        queue_.size() >= static_cast<size_t>(opts_.queue_capacity)) {
      shed = true;
    } else {
      queue_.push_back(job);
      obs::MetricsRegistry::Global().GetHistogram("server.queue.depth")
          ->Observe(static_cast<int64_t>(queue_.size()));
    }
  }
  if (shed) {
    // The hint is computed off the lock (it re-reads the backlog itself);
    // a shed under drain gets the same load-derived estimate — by the time
    // the client retries, either the drain finished or a restarted server
    // answers.
    *retry_after_ms = CurrentRetryHintMs();
    return false;
  }
  {
    std::lock_guard<std::mutex> t(tokens_mu_);
    live_tokens_[job.get()] = job->cancel;
  }
  queue_cv_.notify_one();
  return true;
}

uint32_t Server::CurrentRetryHintMs() {
  size_t backlog;
  {
    std::lock_guard<std::mutex> l(queue_mu_);
    backlog = queue_.size();
  }
  backlog += static_cast<size_t>(
      std::max(0, inflight_jobs_.load(std::memory_order_relaxed)));
  uint32_t hint = ComputeRetryHintMs(
      ema_exec_us_.load(std::memory_order_relaxed), backlog, opts_.workers);
  Counter("server.retry.hints")->Increment();
  obs::MetricsRegistry::Global().GetHistogram("server.retry.hint_ms")
      ->Observe(static_cast<int64_t>(hint));
  return hint;
}

void Server::RecordCommitToken(const std::string& token, uint64_t epoch,
                               const std::string& result) {
  if (token.empty()) return;
  std::lock_guard<std::mutex> dl(dedup_mu_);
  auto [it, inserted] = dedup_.emplace(token, CommitOutcome{epoch, result});
  if (!inserted) return;
  dedup_order_.push_back(token);
  while (dedup_order_.size() >
         static_cast<size_t>(opts_.commit_dedup_window)) {
    dedup_.erase(dedup_order_.front());
    dedup_order_.pop_front();
  }
}

bool Server::HoldsLease(uint64_t conn_id) {
  std::lock_guard<std::mutex> tl(txn_mu_);
  return lease_active_ && lease_conn_ == conn_id;
}

void Server::ReapLocked() {
  if (writer_.in_txn()) {
    writer_.set_limits(opts_.base_limits);
    writer_.set_cancel_token(nullptr);
    (void)writer_.ExecuteStatement(RollbackStatement());
  }
  // Rolled-back state equals the last published epoch — nothing to publish.
  reaped_conns_.insert(lease_conn_);
  lease_active_ = false;
  Counter("server.txn.reaped")->Increment();
}

void Server::ReapIfHeldBy(uint64_t conn_id) {
  std::lock_guard<std::mutex> wl(writer_mu_);
  std::lock_guard<std::mutex> tl(txn_mu_);
  if (lease_active_ && lease_conn_ == conn_id) ReapLocked();
  reaped_conns_.erase(conn_id);
}

void Server::ReaperLoop() {
  while (!stop_reaper_.load(std::memory_order_relaxed)) {
    {
      std::unique_lock<std::mutex> rl(reaper_mu_);
      reaper_cv_.wait_for(rl, std::chrono::milliseconds(20), [&] {
        return stop_reaper_.load(std::memory_order_relaxed);
      });
    }
    if (stop_reaper_.load(std::memory_order_relaxed)) break;
    {
      // Cheap peek without the writer lock: most ticks find no lease (or a
      // live one) and never contend with executing statements.
      std::lock_guard<std::mutex> tl(txn_mu_);
      if (!lease_active_ || Clock::now() < lease_expiry_) continue;
    }
    // Lock-order writer_mu_ -> txn_mu_, then recheck: the lease may have
    // been renewed or released while we waited for the writer.
    std::lock_guard<std::mutex> wl(writer_mu_);
    std::lock_guard<std::mutex> tl(txn_mu_);
    if (lease_active_ && Clock::now() >= lease_expiry_) ReapLocked();
  }
}

bool Server::SendResponse(int fd, const Response& resp) {
  uint64_t idx = wire_send_counter_.fetch_add(1, std::memory_order_relaxed);
  auto fault = opts_.hooks != nullptr ? opts_.hooks->OnWireSend(idx)
                                      : ServerHooks::WireFault::kNone;
  const std::string payload = EncodeResponse(resp);
  switch (fault) {
    case ServerHooks::WireFault::kNone:
      break;
    case ServerHooks::WireFault::kDropBeforeAck:
      return false;
    case ServerHooks::WireFault::kDropAfterAck:
      (void)WriteFrame(fd, payload, opts_.frame_timeout_ms);
      return false;
    case ServerHooks::WireFault::kTornAck: {
      // Half a frame, straight through the socket: the client sees a torn
      // read, never a short-but-valid frame.
      const std::string frame = FrameBytes(payload);
      (void)::send(fd, frame.data(), frame.size() / 2, MSG_NOSIGNAL);
      return false;
    }
    case ServerHooks::WireFault::kDuplicateAck:
      (void)WriteFrame(fd, payload, opts_.frame_timeout_ms);
      (void)WriteFrame(fd, payload, opts_.frame_timeout_ms);
      return false;
    case ServerHooks::WireFault::kStallAck:
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      break;
  }
  return WriteFrame(fd, payload, opts_.frame_timeout_ms).ok();
}

Response Server::AwaitJob(int fd, const JobPtr& job, uint32_t deadline_ms,
                          bool* close_conn) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  bool cancelled = false;
  bool client_dead = false;
  Clock::time_point cancel_at{};
  std::unique_lock<std::mutex> jl(job->mu);
  while (!job->done) {
    job->cv.wait_for(jl, std::chrono::milliseconds(20));
    if (job->done) break;
    auto now = Clock::now();
    if (!client_dead) {
      jl.unlock();
      bool dead = PeerClosed(fd);
      jl.lock();
      if (job->done) break;
      if (dead) {
        client_dead = true;
        if (!cancelled) {
          job->cancel->Cancel();
          cancelled = true;
          cancel_at = now;
          Counter("server.cancelled.dead_client")->Increment();
        }
      }
    }
    if (!cancelled && now >= deadline) {
      // Backstop for time not covered by governor checkpoints (a stalled
      // worker, a job still queued): the token fires here even though the
      // governor usually trips its own deadline first.
      job->cancel->Cancel();
      cancelled = true;
      cancel_at = now;
      Counter("server.cancelled.deadline")->Increment();
    }
    if (cancelled &&
        now >= cancel_at + std::chrono::milliseconds(opts_.cancel_grace_ms)) {
      // The worker did not surface within the grace period — abandon the
      // job (the worker will discard its late result) and answer with an
      // unknown-outcome timeout so the client is never left hanging.
      job->abandoned = true;
      break;
    }
  }
  Response resp;
  if (job->done && !job->abandoned) {
    resp.code = job->status.code();
    resp.message = job->status.message();
    resp.result = std::move(job->result);
    resp.epoch = job->served_epoch;
    resp.resolved_by_token = job->resolved_by_token;
    resp.retry_after_ms = job->retry_after_ms;
    *close_conn = client_dead;
  } else {
    resp.code = StatusCode::kDeadlineExceeded;
    resp.message =
        "request abandoned after deadline + grace; outcome unknown";
    resp.epoch = epoch_num_.load(std::memory_order_relaxed);
    *close_conn = true;
    Counter("server.jobs.abandoned")->Increment();
  }
  return resp;
}

void Server::ConnectionLoop(int fd, uint64_t conn_id) {
  Counter("server.connections.accepted")->Increment();
  const int read_timeout =
      opts_.idle_timeout_ms > 0 ? opts_.idle_timeout_ms : -1;
  bool close_conn = false;
  while (!stopping_.load(std::memory_order_relaxed) && !close_conn) {
    int peer_version = 0;
    auto payload = ReadFrame(fd, read_timeout, kMaxFrameBytes, &peer_version);
    if (!payload.ok()) {
      if (payload.status().IsVersionMismatch()) {
        // Typed negotiation, never a garbled decode. A legacy (v1,
        // unversioned-frame) peer gets the reply in v1 framing with a code
        // its decoder accepts — kUnsupported, since kVersionMismatch
        // postdates v1 — while an EXW peer with a different version byte
        // can parse the v2 mismatch response itself.
        Counter("server.requests.version_mismatch")->Increment();
        Response resp;
        if (peer_version == 1) {
          resp.code = StatusCode::kUnsupported;
          resp.message = StrCat(
              "wire protocol version mismatch: this server speaks v",
              static_cast<int>(kWireVersion),
              ", client sent an unversioned v1 frame; upgrade the client");
          (void)WriteLegacyFrame(fd, EncodeLegacyResponse(resp),
                                 opts_.frame_timeout_ms);
        } else {
          resp.code = StatusCode::kVersionMismatch;
          resp.message = payload.status().message();
          (void)WriteFrame(fd, EncodeResponse(resp), opts_.frame_timeout_ms);
        }
        break;
      }
      // Unavailable = clean close between frames; Invalid = torn frame or
      // oversized length; DeadlineExceeded = idle/stall timeout. None of
      // them is answerable — the framing is gone — so the connection ends.
      if (payload.status().code() == StatusCode::kInvalid) {
        Counter("server.requests.malformed")->Increment();
      }
      break;
    }
    auto req = DecodeRequest(*payload);
    Response resp;
    if (!req.ok()) {
      Counter("server.requests.malformed")->Increment();
      resp.code = StatusCode::kInvalid;
      resp.message = req.status().message();
      (void)WriteFrame(fd, EncodeResponse(resp), opts_.frame_timeout_ms);
      break;  // framing discipline is broken; drop the connection
    }
    resp.req_id = req->req_id;
    if (req->opcode == Opcode::kPing) {
      resp.epoch = epoch();
      if (!WriteFrame(fd, EncodeResponse(resp), opts_.frame_timeout_ms).ok())
        break;
      continue;
    }
    if (req->opcode == Opcode::kShutdown) {
      RequestShutdown();
      resp.epoch = epoch();
      (void)WriteFrame(fd, EncodeResponse(resp), opts_.frame_timeout_ms);
      continue;
    }
    if (draining_.load(std::memory_order_relaxed)) {
      resp.code = StatusCode::kUnavailable;
      resp.message = "server draining";
      resp.retry_after_ms = CurrentRetryHintMs();
      if (!SendResponse(fd, resp)) break;
      continue;
    }
    // Parse and classify on the connection thread: parse errors and
    // unsupported statements never consume a worker slot or a queue spot.
    auto parsed = ParseStatement(req->statement);
    if (!parsed.ok()) {
      resp.code = parsed.status().code();
      resp.message = parsed.status().message();
      if (!SendResponse(fd, resp)) break;
      continue;
    }
    Status allowed = WireStatementAllowed(*parsed);
    if (!allowed.ok()) {
      resp.code = allowed.code();
      resp.message = allowed.message();
      if (!SendResponse(fd, resp)) break;
      continue;
    }
    auto job = std::make_shared<Job>();
    job->stmt = std::move(*parsed);
    // The lease holder's statements — reads included — run on the writer,
    // so the transaction observes its own uncommitted writes.
    job->is_write = StatementIsWrite(job->stmt) || HoldsLease(conn_id);
    job->conn_id = conn_id;
    job->token = req->token;
    uint32_t deadline_ms =
        req->deadline_ms == 0 ? opts_.default_deadline_ms : req->deadline_ms;
    if (opts_.max_deadline_ms > 0) {
      deadline_ms = std::min(deadline_ms, opts_.max_deadline_ms);
    }
    job->limits = opts_.base_limits;
    job->limits.deadline_ms = static_cast<int64_t>(deadline_ms);
    if (req->max_bytes > 0) {
      job->limits.max_bytes = static_cast<int64_t>(req->max_bytes);
    }
    if (req->max_occurrences > 0) {
      job->limits.max_occurrences = static_cast<int64_t>(req->max_occurrences);
    }
    job->cancel = std::make_shared<CancelToken>();
    uint32_t retry_after = 0;
    if (!TryEnqueue(job, &retry_after)) {
      Counter("server.requests.shed")->Increment();
      resp.code = StatusCode::kResourceExhausted;
      resp.message = "admission queue full";
      resp.retry_after_ms = retry_after;
      if (!SendResponse(fd, resp)) break;
      continue;
    }
    resp = AwaitJob(fd, job, deadline_ms, &close_conn);
    resp.req_id = req->req_id;
    if (!SendResponse(fd, resp)) close_conn = true;
  }
  ::close(fd);
  // Dead client mid-transaction: roll its transaction back and free the
  // writer for everyone else. Also drops any pending reaped marker.
  ReapIfHeldBy(conn_id);
  {
    std::lock_guard<std::mutex> l(conns_mu_);
    conn_fds_.erase(conn_id);
  }
  conns_cv_.notify_all();
  Counter("server.connections.closed")->Increment();
}

void Server::AcceptLoop() {
  for (;;) {
    struct pollfd fds[3];
    int n = 0;
    fds[n].fd = wake_pipe_[0];
    fds[n].events = POLLIN;
    fds[n].revents = 0;
    ++n;
    int unix_idx = -1;
    int tcp_idx = -1;
    if (unix_fd_ >= 0) {
      unix_idx = n;
      fds[n] = {unix_fd_, POLLIN, 0};
      ++n;
    }
    if (tcp_fd_ >= 0) {
      tcp_idx = n;
      fds[n] = {tcp_fd_, POLLIN, 0};
      ++n;
    }
    int r = ::poll(fds, static_cast<nfds_t>(n), -1);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) break;  // shutdown wake
    for (int idx : {unix_idx, tcp_idx}) {
      if (idx < 0 || (fds[idx].revents & POLLIN) == 0) continue;
      int cfd = ::accept(fds[idx].fd, nullptr, nullptr);
      if (cfd < 0) continue;
      if (draining_.load(std::memory_order_relaxed)) {
        ::close(cfd);
        continue;
      }
      if (idx == tcp_idx) {
        int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      std::lock_guard<std::mutex> l(conns_mu_);
      uint64_t id = next_conn_id_++;
      conn_fds_[id] = cfd;
      conn_threads_.emplace_back(&Server::ConnectionLoop, this, cfd, id);
    }
  }
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    ::unlink(opts_.unix_path.c_str());
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
}

void Server::RequestShutdown() {
  std::lock_guard<std::mutex> l(lifecycle_mu_);
  shutdown_requested_ = true;
  lifecycle_cv_.notify_all();
}

bool Server::WaitForShutdownRequest(int timeout_ms) {
  std::unique_lock<std::mutex> l(lifecycle_mu_);
  lifecycle_cv_.wait_for(l, std::chrono::milliseconds(timeout_ms),
                         [&] { return shutdown_requested_; });
  return shutdown_requested_;
}

void Server::Shutdown(uint32_t grace_ms) {
  {
    std::lock_guard<std::mutex> l(lifecycle_mu_);
    if (stopped_) return;
    stopped_ = true;
    if (!started_) return;  // nothing bound, nothing to join
  }
  Counter("server.drains")->Increment();
  // 1. Stop accepting: reject at the door, wake + join the accept loop
  //    (which closes and unlinks the listeners).
  draining_.store(true, std::memory_order_relaxed);
  (void)!::write(wake_pipe_[1], "x", 1);
  if (accept_thread_.joinable()) accept_thread_.join();
  // 2. Give queued and in-flight requests the grace period to finish.
  const auto grace_deadline =
      Clock::now() + std::chrono::milliseconds(grace_ms);
  for (;;) {
    {
      std::lock_guard<std::mutex> l(queue_mu_);
      if (queue_.empty() &&
          inflight_jobs_.load(std::memory_order_relaxed) == 0) {
        break;
      }
    }
    if (Clock::now() >= grace_deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // 3. Cancel stragglers; with every live token fired, queued jobs clear
  //    in microseconds (sessions refuse cancelled statements on entry), so
  //    the workers can drain the queue and exit.
  {
    std::lock_guard<std::mutex> t(tokens_mu_);
    for (auto& [job, token] : live_tokens_) token->Cancel();
  }
  {
    std::lock_guard<std::mutex> l(queue_mu_);
    stop_workers_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
  stop_reaper_.store(true, std::memory_order_relaxed);
  reaper_cv_.notify_all();
  if (reaper_thread_.joinable()) reaper_thread_.join();
  // 4. Close every connection: conn loops wake from their reads and exit.
  stopping_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> l(conns_mu_);
    for (auto& [id, fd] : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  {
    std::unique_lock<std::mutex> l(conns_mu_);
    conns_cv_.wait_for(l, std::chrono::seconds(10),
                       [&] { return conn_fds_.empty(); });
  }
  for (auto& t : conn_threads_) t.join();
  // 5. Roll back any transaction still open (its holder is gone; commit on
  //    its behalf would invent a decision), then fold the WAL into a fresh
  //    snapshot so restart replays nothing.
  {
    std::lock_guard<std::mutex> wl(writer_mu_);
    {
      std::lock_guard<std::mutex> tl(txn_mu_);
      if (writer_.in_txn()) ReapLocked();
    }
    if (writer_.has_storage()) (void)writer_.Checkpoint();
  }
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

}  // namespace server
}  // namespace excess
