#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "excess/parser.h"
#include "obs/metrics.h"
#include "util/string_util.h"

namespace excess {
namespace server {

namespace {

using Clock = std::chrono::steady_clock;

/// Statements a wire client may not issue. `open` rebinds the whole
/// process to a different file and `begin`/`commit`/`rollback` would pin
/// the single writer session to one connection across requests — both are
/// embedded-session features, rejected with a typed error instead of
/// half-working.
Status WireStatementAllowed(const Statement& s) {
  switch (s.kind) {
    case Statement::Kind::kOpen:
      return Status::Unsupported(
          "open is not available over the wire; configure the server's "
          "db_path instead");
    case Statement::Kind::kBegin:
    case Statement::Kind::kCommit:
    case Statement::Kind::kRollback:
      return Status::Unsupported(
          "transactions are not yet available over the wire");
    default:
      return Status::OK();
  }
}

/// Routing: writes serialize through the writer session (and publish a new
/// epoch); everything else runs on a reader's epoch clone. `explain` —
/// even `explain analyze` of a mutation — is a read: it evaluates but
/// never commits, so a private clone absorbs it.
bool StatementIsWrite(const Statement& s) {
  switch (s.kind) {
    case Statement::Kind::kRetrieve:
      return !s.retrieve->into.empty();
    case Statement::Kind::kExplain:
      return false;
    default:
      return true;
  }
}

obs::Counter* Counter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      methods_(&db_.catalog()),
      writer_(&db_, &methods_) {}

Server::~Server() { Shutdown(); }

std::string Server::RenderResult(const ValuePtr& v) {
  if (v == nullptr) return std::string();
  // EXPLAIN returns its report as a string value; ship the raw text, not a
  // quoted literal.
  if (v->kind() == ValueKind::kString) return v->as_string();
  return v->ToString();
}

Status Server::BindListeners() {
  if (opts_.unix_path.empty() && opts_.tcp_port < 0) {
    return Status::Invalid("no listener configured (unix_path or tcp_port)");
  }
  if (!opts_.unix_path.empty()) {
    sockaddr_un addr;
    if (opts_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::Invalid(StrCat("unix socket path too long: ",
                                    opts_.unix_path));
    }
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) {
      return Status::Unavailable(StrCat("socket: ", std::strerror(errno)));
    }
    ::unlink(opts_.unix_path.c_str());
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opts_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
            0 ||
        ::listen(unix_fd_, 128) < 0) {
      return Status::Unavailable(StrCat("bind/listen ", opts_.unix_path, ": ",
                                        std::strerror(errno)));
    }
  }
  if (opts_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) {
      return Status::Unavailable(StrCat("socket: ", std::strerror(errno)));
    }
    int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(opts_.tcp_port));
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
            0 ||
        ::listen(tcp_fd_, 128) < 0) {
      return Status::Unavailable(StrCat("bind/listen 127.0.0.1:",
                                        opts_.tcp_port, ": ",
                                        std::strerror(errno)));
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
        0) {
      tcp_port_ = static_cast<int>(ntohs(addr.sin_port));
    }
  }
  return Status::OK();
}

Status Server::Start() {
  {
    std::lock_guard<std::mutex> l(lifecycle_mu_);
    if (started_) return Status::Invalid("server already started");
  }
  if (opts_.workers <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    opts_.workers = std::max(2, static_cast<int>(hw));
  }
  if (opts_.queue_capacity <= 0) opts_.queue_capacity = 4 * opts_.workers;
  if (!opts_.db_path.empty()) {
    std::lock_guard<std::mutex> wl(writer_mu_);
    EXA_RETURN_NOT_OK(writer_.OpenStorage(opts_.db_path));
  }
  {
    // Epoch 1 (or the next after bootstrap ExecuteLocal calls): readers
    // always have a committed state to clone, even on an empty database.
    std::lock_guard<std::mutex> wl(writer_mu_);
    PublishEpochLocked();
  }
  EXA_RETURN_NOT_OK(BindListeners());
  if (::pipe(wake_pipe_) != 0) {
    return Status::Unavailable(StrCat("pipe: ", std::strerror(errno)));
  }
  workers_.reserve(static_cast<size_t>(opts_.workers));
  for (int w = 0; w < opts_.workers; ++w) {
    workers_.emplace_back(&Server::WorkerLoop, this);
  }
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  {
    std::lock_guard<std::mutex> l(lifecycle_mu_);
    started_ = true;
  }
  return Status::OK();
}

void Server::PublishEpochLocked() {
  uint64_t next = epoch_num_.load(std::memory_order_relaxed) + 1;
  auto snap = CaptureEpoch(next, db_, writer_, methods_);
  {
    std::unique_lock<std::shared_mutex> l(epoch_mu_);
    epoch_snap_ = std::move(snap);
  }
  epoch_num_.store(next, std::memory_order_release);
}

Result<std::string> Server::ExecuteLocal(const std::string& source) {
  EXA_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(source));
  EXA_RETURN_NOT_OK(WireStatementAllowed(stmt));
  std::lock_guard<std::mutex> wl(writer_mu_);
  writer_.set_limits(ExecLimits::FromEnv());
  writer_.set_cancel_token(nullptr);
  auto r = writer_.ExecuteStatement(stmt);
  if (!r.ok()) return r.status();
  PublishEpochLocked();
  return RenderResult(*r);
}

Status Server::RefreshReader(ReaderCtx* ctx) {
  uint64_t cur = epoch_num_.load(std::memory_order_acquire);
  if (ctx->db != nullptr && ctx->epoch == cur) return Status::OK();
  std::shared_ptr<const EpochSnapshot> snap;
  {
    std::shared_lock<std::shared_mutex> l(epoch_mu_);
    snap = epoch_snap_;
  }
  if (snap == nullptr) return Status::Internal("no epoch published yet");
  auto db = std::make_unique<Database>();
  auto methods = std::make_unique<MethodRegistry>(&db->catalog());
  std::vector<std::pair<std::string, ExprAstPtr>> ranges;
  EXA_RETURN_NOT_OK(MaterializeEpoch(*snap, db.get(), methods.get(),
                                     &ranges));
  ctx->db = std::move(db);
  ctx->methods = std::move(methods);
  ctx->ranges = std::move(ranges);
  ctx->epoch = snap->epoch;
  return Status::OK();
}

void Server::ExecuteJob(Job* job, ReaderCtx* ctx) {
  Status st = Status::OK();
  std::string result;
  uint64_t served = 0;
  if (job->is_write) {
    std::lock_guard<std::mutex> wl(writer_mu_);
    writer_.set_limits(job->limits);
    writer_.set_cancel_token(job->cancel);
    auto r = writer_.ExecuteStatement(job->stmt);
    // A cancelled request must never poison the next writer statement.
    writer_.set_cancel_token(nullptr);
    if (r.ok()) {
      PublishEpochLocked();
      result = RenderResult(*r);
    } else {
      st = r.status();
    }
    served = epoch_num_.load(std::memory_order_relaxed);
    Counter("server.requests.write")->Increment();
  } else {
    st = RefreshReader(ctx);
    if (st.ok()) {
      Session::Options so;
      so.limits = job->limits;
      so.cancel = job->cancel;
      so.env_autoopen = false;
      Session reader(ctx->db.get(), ctx->methods.get(), so);
      reader.set_ranges(ctx->ranges);
      auto r = reader.ExecuteStatement(job->stmt);
      if (r.ok()) {
        result = RenderResult(*r);
      } else {
        st = r.status();
      }
    }
    served = ctx->epoch;
    Counter("server.requests.read")->Increment();
  }
  {
    std::lock_guard<std::mutex> jl(job->mu);
    if (!job->abandoned) {
      job->status = std::move(st);
      job->result = std::move(result);
      job->served_epoch = served;
    }
    job->done = true;
  }
  job->cv.notify_all();
}

void Server::WorkerLoop() {
  ReaderCtx ctx;
  static obs::Histogram* exec_us =
      obs::MetricsRegistry::Global().GetHistogram("server.exec_us");
  for (;;) {
    JobPtr job;
    {
      std::unique_lock<std::mutex> l(queue_mu_);
      queue_cv_.wait(l, [&] { return stop_workers_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_workers_ and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    inflight_jobs_.fetch_add(1, std::memory_order_relaxed);
    uint64_t idx = dequeue_counter_.fetch_add(1, std::memory_order_relaxed);
    if (opts_.hooks != nullptr) opts_.hooks->OnJobStart(idx);
    bool skip;
    {
      std::lock_guard<std::mutex> jl(job->mu);
      skip = job->abandoned;
    }
    auto t0 = Clock::now();
    if (skip) {
      std::lock_guard<std::mutex> jl(job->mu);
      job->done = true;
    } else {
      ExecuteJob(job.get(), &ctx);
      int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                       Clock::now() - t0)
                       .count();
      exec_us->Observe(us);
      // EMA feeding the shed retry-after hint; precision is irrelevant,
      // only the order of magnitude.
      int64_t ema = ema_exec_us_.load(std::memory_order_relaxed);
      ema_exec_us_.store(ema - ema / 8 + us / 8, std::memory_order_relaxed);
      Counter("server.requests.executed")->Increment();
    }
    job->cv.notify_all();
    {
      std::lock_guard<std::mutex> t(tokens_mu_);
      live_tokens_.erase(job.get());
    }
    inflight_jobs_.fetch_sub(1, std::memory_order_relaxed);
  }
}

bool Server::TryEnqueue(const JobPtr& job, uint32_t* retry_after_ms) {
  {
    std::lock_guard<std::mutex> l(queue_mu_);
    if (draining_.load(std::memory_order_relaxed) || stop_workers_) {
      *retry_after_ms = 1'000;
      return false;
    }
    if (queue_.size() >= static_cast<size_t>(opts_.queue_capacity)) {
      // Retry-after hint: expected time for the backlog to clear through
      // the pool at the recent per-statement cost.
      int64_t ema = ema_exec_us_.load(std::memory_order_relaxed);
      int64_t hint_ms = ema * static_cast<int64_t>(queue_.size() + 1) /
                        std::max(1, opts_.workers) / 1'000;
      *retry_after_ms = static_cast<uint32_t>(
          std::clamp<int64_t>(hint_ms, 1, 10'000));
      return false;
    }
    queue_.push_back(job);
    obs::MetricsRegistry::Global().GetHistogram("server.queue.depth")
        ->Observe(static_cast<int64_t>(queue_.size()));
  }
  {
    std::lock_guard<std::mutex> t(tokens_mu_);
    live_tokens_[job.get()] = job->cancel;
  }
  queue_cv_.notify_one();
  return true;
}

Response Server::AwaitJob(int fd, const JobPtr& job, uint32_t deadline_ms,
                          bool* close_conn) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  bool cancelled = false;
  bool client_dead = false;
  Clock::time_point cancel_at{};
  std::unique_lock<std::mutex> jl(job->mu);
  while (!job->done) {
    job->cv.wait_for(jl, std::chrono::milliseconds(20));
    if (job->done) break;
    auto now = Clock::now();
    if (!client_dead) {
      jl.unlock();
      bool dead = PeerClosed(fd);
      jl.lock();
      if (job->done) break;
      if (dead) {
        client_dead = true;
        if (!cancelled) {
          job->cancel->Cancel();
          cancelled = true;
          cancel_at = now;
          Counter("server.cancelled.dead_client")->Increment();
        }
      }
    }
    if (!cancelled && now >= deadline) {
      // Backstop for time not covered by governor checkpoints (a stalled
      // worker, a job still queued): the token fires here even though the
      // governor usually trips its own deadline first.
      job->cancel->Cancel();
      cancelled = true;
      cancel_at = now;
      Counter("server.cancelled.deadline")->Increment();
    }
    if (cancelled &&
        now >= cancel_at + std::chrono::milliseconds(opts_.cancel_grace_ms)) {
      // The worker did not surface within the grace period — abandon the
      // job (the worker will discard its late result) and answer with an
      // unknown-outcome timeout so the client is never left hanging.
      job->abandoned = true;
      break;
    }
  }
  Response resp;
  if (job->done && !job->abandoned) {
    resp.code = job->status.code();
    resp.message = job->status.message();
    resp.result = std::move(job->result);
    resp.epoch = job->served_epoch;
    *close_conn = client_dead;
  } else {
    resp.code = StatusCode::kDeadlineExceeded;
    resp.message =
        "request abandoned after deadline + grace; outcome unknown";
    resp.epoch = epoch_num_.load(std::memory_order_relaxed);
    *close_conn = true;
    Counter("server.jobs.abandoned")->Increment();
  }
  return resp;
}

void Server::ConnectionLoop(int fd, uint64_t conn_id) {
  Counter("server.connections.accepted")->Increment();
  const int read_timeout =
      opts_.idle_timeout_ms > 0 ? opts_.idle_timeout_ms : -1;
  bool close_conn = false;
  while (!stopping_.load(std::memory_order_relaxed) && !close_conn) {
    auto payload = ReadFrame(fd, read_timeout);
    if (!payload.ok()) {
      // Unavailable = clean close between frames; Invalid = torn frame or
      // oversized length; DeadlineExceeded = idle/stall timeout. None of
      // them is answerable — the framing is gone — so the connection ends.
      if (payload.status().code() == StatusCode::kInvalid) {
        Counter("server.requests.malformed")->Increment();
      }
      break;
    }
    auto req = DecodeRequest(*payload);
    Response resp;
    if (!req.ok()) {
      Counter("server.requests.malformed")->Increment();
      resp.code = StatusCode::kInvalid;
      resp.message = req.status().message();
      (void)WriteFrame(fd, EncodeResponse(resp), opts_.frame_timeout_ms);
      break;  // framing discipline is broken; drop the connection
    }
    if (req->opcode == Opcode::kPing) {
      resp.epoch = epoch();
      if (!WriteFrame(fd, EncodeResponse(resp), opts_.frame_timeout_ms).ok())
        break;
      continue;
    }
    if (req->opcode == Opcode::kShutdown) {
      RequestShutdown();
      resp.epoch = epoch();
      (void)WriteFrame(fd, EncodeResponse(resp), opts_.frame_timeout_ms);
      continue;
    }
    if (draining_.load(std::memory_order_relaxed)) {
      resp.code = StatusCode::kUnavailable;
      resp.message = "server draining";
      resp.retry_after_ms = 1'000;
      (void)WriteFrame(fd, EncodeResponse(resp), opts_.frame_timeout_ms);
      continue;
    }
    // Parse and classify on the connection thread: parse errors and
    // unsupported statements never consume a worker slot or a queue spot.
    auto parsed = ParseStatement(req->statement);
    if (!parsed.ok()) {
      resp.code = parsed.status().code();
      resp.message = parsed.status().message();
      if (!WriteFrame(fd, EncodeResponse(resp), opts_.frame_timeout_ms).ok())
        break;
      continue;
    }
    Status allowed = WireStatementAllowed(*parsed);
    if (!allowed.ok()) {
      resp.code = allowed.code();
      resp.message = allowed.message();
      if (!WriteFrame(fd, EncodeResponse(resp), opts_.frame_timeout_ms).ok())
        break;
      continue;
    }
    auto job = std::make_shared<Job>();
    job->stmt = std::move(*parsed);
    job->is_write = StatementIsWrite(job->stmt);
    uint32_t deadline_ms =
        req->deadline_ms == 0 ? opts_.default_deadline_ms : req->deadline_ms;
    if (opts_.max_deadline_ms > 0) {
      deadline_ms = std::min(deadline_ms, opts_.max_deadline_ms);
    }
    job->limits = opts_.base_limits;
    job->limits.deadline_ms = static_cast<int64_t>(deadline_ms);
    if (req->max_bytes > 0) {
      job->limits.max_bytes = static_cast<int64_t>(req->max_bytes);
    }
    if (req->max_occurrences > 0) {
      job->limits.max_occurrences = static_cast<int64_t>(req->max_occurrences);
    }
    job->cancel = std::make_shared<CancelToken>();
    uint32_t retry_after = 0;
    if (!TryEnqueue(job, &retry_after)) {
      Counter("server.requests.shed")->Increment();
      resp.code = StatusCode::kResourceExhausted;
      resp.message = "admission queue full";
      resp.retry_after_ms = retry_after;
      if (!WriteFrame(fd, EncodeResponse(resp), opts_.frame_timeout_ms).ok())
        break;
      continue;
    }
    resp = AwaitJob(fd, job, deadline_ms, &close_conn);
    if (!WriteFrame(fd, EncodeResponse(resp), opts_.frame_timeout_ms).ok()) {
      close_conn = true;
    }
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> l(conns_mu_);
    conn_fds_.erase(conn_id);
  }
  conns_cv_.notify_all();
  Counter("server.connections.closed")->Increment();
}

void Server::AcceptLoop() {
  for (;;) {
    struct pollfd fds[3];
    int n = 0;
    fds[n].fd = wake_pipe_[0];
    fds[n].events = POLLIN;
    fds[n].revents = 0;
    ++n;
    int unix_idx = -1;
    int tcp_idx = -1;
    if (unix_fd_ >= 0) {
      unix_idx = n;
      fds[n] = {unix_fd_, POLLIN, 0};
      ++n;
    }
    if (tcp_fd_ >= 0) {
      tcp_idx = n;
      fds[n] = {tcp_fd_, POLLIN, 0};
      ++n;
    }
    int r = ::poll(fds, static_cast<nfds_t>(n), -1);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) break;  // shutdown wake
    for (int idx : {unix_idx, tcp_idx}) {
      if (idx < 0 || (fds[idx].revents & POLLIN) == 0) continue;
      int cfd = ::accept(fds[idx].fd, nullptr, nullptr);
      if (cfd < 0) continue;
      if (draining_.load(std::memory_order_relaxed)) {
        ::close(cfd);
        continue;
      }
      if (idx == tcp_idx) {
        int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      std::lock_guard<std::mutex> l(conns_mu_);
      uint64_t id = next_conn_id_++;
      conn_fds_[id] = cfd;
      conn_threads_.emplace_back(&Server::ConnectionLoop, this, cfd, id);
    }
  }
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    ::unlink(opts_.unix_path.c_str());
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
}

void Server::RequestShutdown() {
  std::lock_guard<std::mutex> l(lifecycle_mu_);
  shutdown_requested_ = true;
  lifecycle_cv_.notify_all();
}

bool Server::WaitForShutdownRequest(int timeout_ms) {
  std::unique_lock<std::mutex> l(lifecycle_mu_);
  lifecycle_cv_.wait_for(l, std::chrono::milliseconds(timeout_ms),
                         [&] { return shutdown_requested_; });
  return shutdown_requested_;
}

void Server::Shutdown(uint32_t grace_ms) {
  {
    std::lock_guard<std::mutex> l(lifecycle_mu_);
    if (stopped_) return;
    stopped_ = true;
    if (!started_) return;  // nothing bound, nothing to join
  }
  Counter("server.drains")->Increment();
  // 1. Stop accepting: reject at the door, wake + join the accept loop
  //    (which closes and unlinks the listeners).
  draining_.store(true, std::memory_order_relaxed);
  (void)!::write(wake_pipe_[1], "x", 1);
  if (accept_thread_.joinable()) accept_thread_.join();
  // 2. Give queued and in-flight requests the grace period to finish.
  const auto grace_deadline =
      Clock::now() + std::chrono::milliseconds(grace_ms);
  for (;;) {
    {
      std::lock_guard<std::mutex> l(queue_mu_);
      if (queue_.empty() &&
          inflight_jobs_.load(std::memory_order_relaxed) == 0) {
        break;
      }
    }
    if (Clock::now() >= grace_deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // 3. Cancel stragglers; with every live token fired, queued jobs clear
  //    in microseconds (sessions refuse cancelled statements on entry), so
  //    the workers can drain the queue and exit.
  {
    std::lock_guard<std::mutex> t(tokens_mu_);
    for (auto& [job, token] : live_tokens_) token->Cancel();
  }
  {
    std::lock_guard<std::mutex> l(queue_mu_);
    stop_workers_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
  // 4. Close every connection: conn loops wake from their reads and exit.
  stopping_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> l(conns_mu_);
    for (auto& [id, fd] : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  {
    std::unique_lock<std::mutex> l(conns_mu_);
    conns_cv_.wait_for(l, std::chrono::seconds(10),
                       [&] { return conn_fds_.empty(); });
  }
  for (auto& t : conn_threads_) t.join();
  // 5. Fold the WAL into a fresh snapshot so restart replays nothing.
  {
    std::lock_guard<std::mutex> wl(writer_mu_);
    if (writer_.has_storage()) (void)writer_.Checkpoint();
  }
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

}  // namespace server
}  // namespace excess
