#ifndef EXCESS_SERVER_CLIENT_H_
#define EXCESS_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "server/wire.h"
#include "util/status.h"

namespace excess {
namespace server {

/// Blocking client for the EXCESS wire protocol: one socket, one request in
/// flight. Transport failures (connect, torn frames, timeouts) surface as
/// the Result's Status; server-side outcomes — including errors like
/// kResourceExhausted or kDeadlineExceeded — arrive as a Response whose
/// `code` the caller inspects.
class Client {
 public:
  static Result<Client> ConnectUnix(const std::string& path,
                                    int timeout_ms = 5'000);
  static Result<Client> ConnectTcp(const std::string& host, int port,
                                   int timeout_ms = 5'000);

  Client() = default;
  ~Client() { Close(); }
  Client(Client&& other) noexcept : fd_(other.fd_), timeout_ms_(other.timeout_ms_) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      timeout_ms_ = other.timeout_ms_;
      other.fd_ = -1;
    }
    return *this;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one statement; `deadline_ms` 0 lets the server apply its
  /// default. max_bytes/max_occurrences 0 inherit the server's base limits.
  Result<Response> Execute(const std::string& statement,
                           uint32_t deadline_ms = 0, uint64_t max_bytes = 0,
                           uint64_t max_occurrences = 0);

  /// Liveness probe; the response carries the server's newest epoch.
  Result<Response> Ping();

  /// Asks the server to drain (the serving process decides when to exit).
  Result<Response> RequestShutdown();

  void Close();
  bool connected() const { return fd_ >= 0; }
  /// Raw socket, exposed so fault-injection tests can tear frames and kill
  /// connections mid-request.
  int fd() const { return fd_; }

  /// Per-frame transport timeout for this client's reads and writes.
  void set_timeout_ms(int timeout_ms) { timeout_ms_ = timeout_ms; }

 private:
  explicit Client(int fd, int timeout_ms) : fd_(fd), timeout_ms_(timeout_ms) {}
  Result<Response> RoundTrip(const Request& req);

  int fd_ = -1;
  int timeout_ms_ = 5'000;
};

}  // namespace server
}  // namespace excess

#endif  // EXCESS_SERVER_CLIENT_H_
