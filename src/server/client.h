#ifndef EXCESS_SERVER_CLIENT_H_
#define EXCESS_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "server/wire.h"
#include "util/status.h"

namespace excess {
namespace server {

/// Retry/backoff knobs for Client::ExecuteRetried. Backoff is exponential
/// (base * 2^attempt, capped) with multiplicative jitter in [0.5, 1.5) so
/// a fleet of clients shed at the same instant does not retry in lockstep.
/// The jitter stream is seeded per call from `jitter_seed`, keeping the
/// robustness sweeps deterministic.
struct RetryPolicy {
  int max_attempts = 6;
  uint32_t base_backoff_ms = 10;
  uint32_t max_backoff_ms = 1'000;
  uint64_t jitter_seed = 1;
};

/// What a retried request is known to have done to server state — the
/// contract a caller reasons about after faults:
///  - kDefinitelyNot: no attempt reached execution (write failed before the
///    request was sent whole, the server shed it, or it answered with a
///    typed error). Safe to retry or to give up with state unchanged.
///  - kDefinitely: an OK response was received; the statement applied once.
///  - kResolvedByToken: an OK response was received from the commit dedup
///    window — an earlier attempt applied, this one only recovered the ack.
///  - kUnknown: an ack was lost (read-side failure) and the request was not
///    idempotent, so retrying could double-apply; the caller must
///    reconcile (e.g. re-read, or escalate).
enum class Applied {
  kDefinitelyNot,
  kDefinitely,
  kResolvedByToken,
  kUnknown,
};

/// Outcome of ExecuteRetried. `resp` is meaningful iff `transport.ok()`;
/// otherwise no usable response was obtained within the budget and
/// `transport` holds the last transport failure.
struct RetriedResult {
  Response resp;
  Status transport;
  Applied applied = Applied::kUnknown;
  int attempts = 0;
  int reconnects = 0;
};

/// Blocking client for the EXCESS wire protocol: one socket, one request in
/// flight. Transport failures (connect, torn frames, timeouts) surface as
/// the Result's Status; server-side outcomes — including errors like
/// kResourceExhausted or kDeadlineExceeded — arrive as a Response whose
/// `code` the caller inspects.
///
/// Reliability layer: the client remembers its connect target, so
/// Reconnect() (or ExecuteRetried, which calls it) can re-establish a
/// dropped connection with exponential backoff + jitter. Every request
/// carries a monotonically increasing req_id which the server echoes;
/// responses with a stale req_id (duplicated delivery) are discarded
/// instead of desynchronizing the stream.
class Client {
 public:
  static Result<Client> ConnectUnix(const std::string& path,
                                    int timeout_ms = 5'000);
  static Result<Client> ConnectTcp(const std::string& host, int port,
                                   int timeout_ms = 5'000);

  Client() = default;
  ~Client() { Close(); }
  Client(Client&& other) noexcept { *this = std::move(other); }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      timeout_ms_ = other.timeout_ms_;
      next_req_id_ = other.next_req_id_;
      target_ = other.target_;
      target_host_ = std::move(other.target_host_);
      target_port_ = other.target_port_;
      other.fd_ = -1;
    }
    return *this;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one statement; `deadline_ms` 0 lets the server apply its
  /// default. max_bytes/max_occurrences 0 inherit the server's base limits.
  /// A non-empty `token` is the commit idempotency token (see
  /// ExecuteRetried for the retry semantics it unlocks).
  Result<Response> Execute(const std::string& statement,
                           uint32_t deadline_ms = 0, uint64_t max_bytes = 0,
                           uint64_t max_occurrences = 0,
                           const std::string& token = "");

  /// Sends `statement`, retrying across shed responses, transport faults,
  /// and dropped connections within `deadline_ms` of wall clock (0 = no
  /// overall budget, attempts bound only) and policy.max_attempts:
  ///  - a shed/unavailable response sleeps for the server's retry_after_ms
  ///    hint (never less than the jittered backoff) and retries — the
  ///    statement did not run, so this is always safe;
  ///  - a write-side transport failure retries after reconnecting — the
  ///    request never left whole, so the statement did not run;
  ///  - a read-side transport failure is ambiguous (the statement may have
  ///    run; only the ack is lost): it retries only when `idempotent` or
  ///    when `token` is non-empty (the server's exactly-once dedup window
  ///    makes a retried commit resolve instead of double-applying);
  ///    otherwise it returns Applied::kUnknown and lets the caller decide.
  /// The remaining budget propagates into each attempt's request deadline.
  RetriedResult ExecuteRetried(const std::string& statement,
                               uint32_t deadline_ms = 0,
                               const std::string& token = "",
                               bool idempotent = false,
                               const RetryPolicy& policy = RetryPolicy());

  /// Transactional conveniences over ExecuteRetried. Begin and Rollback
  /// are retried as idempotent: a lost `begin` (or the transaction it
  /// opened) dies with its connection — the server reaps the lease — so
  /// reissuing on the fresh connection opens an equivalent transaction.
  /// Commit carries `token`, making the retry exactly-once.
  RetriedResult Begin(uint32_t deadline_ms = 0,
                      const RetryPolicy& policy = RetryPolicy());
  RetriedResult Commit(const std::string& token, uint32_t deadline_ms = 0,
                       const RetryPolicy& policy = RetryPolicy());
  RetriedResult Rollback(uint32_t deadline_ms = 0,
                         const RetryPolicy& policy = RetryPolicy());

  /// Liveness probe; the response carries the server's newest epoch.
  Result<Response> Ping();

  /// Asks the server to drain (the serving process decides when to exit).
  Result<Response> RequestShutdown();

  /// Drops the current socket (if any) and dials the remembered target
  /// once. Bumps client.reconnect.attempts / client.reconnect.failures.
  Status Reconnect();

  void Close();
  bool connected() const { return fd_ >= 0; }
  /// Raw socket, exposed so fault-injection tests can tear frames and kill
  /// connections mid-request.
  int fd() const { return fd_; }

  /// Per-frame transport timeout for this client's reads and writes.
  void set_timeout_ms(int timeout_ms) { timeout_ms_ = timeout_ms; }

 private:
  enum class Target { kNone, kUnix, kTcp };

  explicit Client(int fd, int timeout_ms) : fd_(fd), timeout_ms_(timeout_ms) {}
  Result<Response> RoundTrip(Request& req);
  /// Reads responses until one matches `req_id`, discarding stale
  /// duplicates (req_id 0 — the server's reply to an undecodable request —
  /// always matches, since such errors are fatal to the connection anyway).
  Result<Response> ReadMatching(uint64_t req_id);

  int fd_ = -1;
  int timeout_ms_ = 5'000;
  uint64_t next_req_id_ = 0;
  Target target_ = Target::kNone;
  std::string target_host_;  // unix path, or TCP host
  int target_port_ = -1;
};

}  // namespace server
}  // namespace excess

#endif  // EXCESS_SERVER_CLIENT_H_
