#ifndef EXCESS_SERVER_SERVER_H_
#define EXCESS_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/governor.h"
#include "excess/session.h"
#include "methods/registry.h"
#include "objects/database.h"
#include "server/epoch.h"
#include "server/wire.h"
#include "util/status.h"

namespace excess {
namespace server {

/// Deterministic fault seam for the robustness sweeps. Production servers
/// never install hooks; every call site costs one null check. Client-side
/// faults (dropped connections, torn frames, death mid-query) need no seam
/// — the tests inject them through real sockets.
class ServerHooks {
 public:
  virtual ~ServerHooks() = default;
  /// Called by a worker after dequeuing the `idx`-th job (0-based, global
  /// dequeue order), before execution. Tests stall workers here.
  virtual void OnJobStart(uint64_t idx) { (void)idx; }

  /// Wire-level fault injection, consulted before the server sends the
  /// `idx`-th statement-level response (0-based, global send order; ping /
  /// shutdown / version-mismatch replies are not counted):
  ///  - kDropBeforeAck: close without sending — the request executed but
  ///    its ack is lost (the exactly-once commit-retry scenario).
  ///  - kDropAfterAck:  send, then close — ack delivered, connection gone.
  ///  - kTornAck:       send a prefix of the frame, then close.
  ///  - kDuplicateAck:  send the frame twice, then close (duplicated
  ///    delivery; the req_id echo lets clients discard the stale copy).
  ///  - kStallAck:      sleep ~150 ms before sending (stalled peer; a
  ///    client with a shorter timeout observes a silent server).
  enum class WireFault {
    kNone,
    kDropBeforeAck,
    kDropAfterAck,
    kTornAck,
    kDuplicateAck,
    kStallAck,
  };
  virtual WireFault OnWireSend(uint64_t idx) {
    (void)idx;
    return WireFault::kNone;
  }
};

/// The shed / draining retry-after hint: expected milliseconds for
/// `backlog` statements to clear through `workers` at the recent
/// per-statement cost (`ema_exec_us`), clamped to [1 ms, 10 s] so a cold
/// EMA can neither tell clients "retry immediately, forever" nor park them
/// for minutes. Pure so the bounds are unit-testable.
uint32_t ComputeRetryHintMs(int64_t ema_exec_us, size_t backlog, int workers);

struct ServerOptions {
  /// Unix-domain listener path ("" = no unix listener). Unlinked on bind
  /// and again at shutdown.
  std::string unix_path;
  /// TCP listener on 127.0.0.1 (-1 = no TCP listener, 0 = ephemeral port;
  /// read the bound port back with tcp_port()).
  int tcp_port = -1;
  /// Worker pool size; 0 = max(2, hardware_concurrency).
  int workers = 0;
  /// Admission-queue bound; 0 = 4 * workers. A full queue sheds new
  /// statements with kResourceExhausted + a retry-after hint instead of
  /// accepting work the pool cannot finish.
  int queue_capacity = 0;
  /// Per-request wall-clock budget applied when the request carries none,
  /// and the hard ceiling a request cannot exceed.
  uint32_t default_deadline_ms = 10'000;
  uint32_t max_deadline_ms = 60'000;
  /// Base per-request budgets; a request's own max_bytes/max_occurrences
  /// override these fields when nonzero (never the deadline ceiling).
  ExecLimits base_limits;
  /// Optional durable database attached to the writer session at Start()
  /// (crash recovery + WAL exactly as `open` would).
  std::string db_path;
  /// Max silence mid-frame and max time a response write may stall before
  /// the connection is dropped (slow/dead-client protection).
  int frame_timeout_ms = 5'000;
  /// Max idle time between requests; 0 disables the idle timeout.
  int idle_timeout_ms = 60'000;
  /// After a request's deadline lapses its CancelToken fires; the
  /// connection waits this much longer for the worker to surface before
  /// abandoning the job (the worker discards the late result).
  uint32_t cancel_grace_ms = 2'000;
  /// Wire-transaction lease deadline: a connection holding the single
  /// writer in an open transaction must issue its next statement within
  /// this budget or the transaction is reaped (auto-rollback, writer
  /// freed, `server.txn.reaped`). 0 = the EXCESS_TXN_LEASE_MS env knob
  /// (default 10 s).
  uint32_t txn_lease_ms = 0;
  /// Bound on the exactly-once commit dedup window: the most recent N
  /// committed idempotency tokens are answerable from memory; 0 = 256.
  int commit_dedup_window = 0;
  ServerHooks* hooks = nullptr;
};

/// A concurrent session server over the EXCESS engine.
///
/// Concurrency model: one writer, many readers.
///  - Write statements (create / define / append / delete / retrieve into /
///    range / define function / checkpoint) serialize through the single
///    writer Session — WAL, commit protocol, and crash recovery exactly as
///    in-process use — and each committed write publishes a new
///    EpochSnapshot under the shared_mutex.
///  - Wire transactions (`begin`/`commit`/`rollback`) grant the issuing
///    connection a lease on that writer: until commit/rollback, writes
///    from other connections get kUnavailable + retry-after, the holder's
///    statements (reads included) run on the writer so the transaction
///    sees its own writes, and nothing publishes until the commit. A dead
///    client or an expired lease (txn_lease_ms) is reaped: auto-rollback,
///    writer freed, `server.txn.reaped`. Commits carrying an idempotency
///    token are journaled + kept in a bounded dedup window, so a retried
///    commit resolves to its original outcome instead of double-applying.
///  - Read statements (retrieve / explain) run on the worker's private
///    copy-on-write clone of the newest published epoch, so readers never
///    block the writer, never block each other, and always observe a
///    consistent committed epoch (reported back as `epoch` on the wire).
///
/// Robustness: bounded admission queue with kResourceExhausted shedding,
/// per-request deadlines propagated into ExecLimits, slow/dead clients
/// timed out and their queries cancelled via CancelToken, and a graceful
/// drain that stops accepting, finishes or cancels in-flight work within a
/// grace deadline, and checkpoints durable state.
class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds listeners, attaches storage (db_path), publishes epoch 1, and
  /// spawns the worker pool + accept loop.
  Status Start();

  /// Graceful drain: stop accepting, let queued and in-flight requests
  /// finish for up to `grace_ms`, then cancel stragglers; close every
  /// connection, checkpoint durable state, join all threads. Idempotent.
  void Shutdown(uint32_t grace_ms = 5'000);

  /// Executes one statement directly on the writer session (bootstrap
  /// seeding, admin). Publishes a new epoch on success like any write.
  /// Usable before Start() and until Shutdown().
  Result<std::string> ExecuteLocal(const std::string& source);

  /// Blocks until a client sends the shutdown opcode (or `timeout_ms`
  /// passes); true when a drain was requested. The embedding main loop
  /// calls Shutdown() itself — the opcode only signals.
  bool WaitForShutdownRequest(int timeout_ms);

  /// Bound TCP port (after Start() with tcp_port >= 0), else -1.
  int tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return opts_.unix_path; }

  /// Newest committed epoch.
  uint64_t epoch() const {
    return epoch_num_.load(std::memory_order_acquire);
  }

  /// The writer session's recovery report from Start() (db_path set).
  const storage::RecoveryInfo& last_recovery() const {
    return writer_.last_recovery();
  }

 private:
  /// One queued statement. The connection thread owns the socket and the
  /// response; the worker only fills in the outcome — so a stalled worker
  /// can never wedge the network path, and an abandoned connection can
  /// never make a worker write to a dead socket.
  struct Job {
    Statement stmt;
    bool is_write = false;
    ExecLimits limits;
    CancelTokenPtr cancel;
    uint64_t conn_id = 0;
    std::string token;  // idempotency token (commit statements)

    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool abandoned = false;  // connection gave up; discard the result
    Status status;
    std::string result;
    uint64_t served_epoch = 0;
    bool resolved_by_token = false;  // answered from the dedup window
    uint32_t retry_after_ms = 0;     // e.g. lease held by another connection
  };
  using JobPtr = std::shared_ptr<Job>;

  /// Per-worker reader state: a private clone of the newest epoch,
  /// refreshed only when the epoch number moves.
  struct ReaderCtx {
    uint64_t epoch = 0;
    std::unique_ptr<Database> db;
    std::unique_ptr<MethodRegistry> methods;
    std::vector<std::pair<std::string, ExprAstPtr>> ranges;
  };

  Status BindListeners();
  void AcceptLoop();
  void ConnectionLoop(int fd, uint64_t conn_id);
  void WorkerLoop();
  void ExecuteJob(Job* job, ReaderCtx* ctx);
  Status RefreshReader(ReaderCtx* ctx);
  /// Background lease watchdog: reaps a wire transaction whose holder went
  /// silent past txn_lease_ms, so one stalled client cannot wedge writes.
  void ReaperLoop();
  /// Rolls the writer's open transaction back, frees the lease, marks the
  /// holding connection reaped, and bumps `server.txn.reaped`. Caller
  /// holds writer_mu_ AND txn_mu_.
  void ReapLocked();
  /// Connection teardown: reap the lease if `conn_id` still holds one
  /// (dead client mid-transaction) and drop its reaped marker.
  void ReapIfHeldBy(uint64_t conn_id);
  /// True while `conn_id` holds the wire-transaction lease; its statements
  /// — reads included — route to the writer so the transaction sees its
  /// own uncommitted writes.
  bool HoldsLease(uint64_t conn_id);
  /// EMA-derived retry-after hint for the current backlog (metrics
  /// included). Must be called WITHOUT queue_mu_ held.
  uint32_t CurrentRetryHintMs();
  /// Records a committed idempotency token in the bounded dedup window.
  void RecordCommitToken(const std::string& token, uint64_t epoch,
                         const std::string& result);
  /// Sends a statement-level response through the wire-fault seam; false
  /// means the connection must close (fault injected or peer gone).
  bool SendResponse(int fd, const Response& resp);
  /// Publishes the current writer state as the next epoch. Caller holds
  /// writer_mu_.
  void PublishEpochLocked();
  /// Admission control: true when enqueued, false when shed (queue full or
  /// draining); fills the retry-after hint on shed.
  bool TryEnqueue(const JobPtr& job, uint32_t* retry_after_ms);
  /// Waits for `job` on behalf of connection `fd`: completion, client
  /// death (cancels), deadline + grace (cancels, then abandons). Returns
  /// the response to send and whether the connection must close after it.
  Response AwaitJob(int fd, const JobPtr& job, uint32_t deadline_ms,
                    bool* close_conn);
  void RequestShutdown();
  static std::string RenderResult(const ValuePtr& v);

  ServerOptions opts_;

  // Authoritative writer state. writer_mu_ serializes every mutation and
  // epoch publication.
  Database db_;
  MethodRegistry methods_;
  Session writer_;
  std::mutex writer_mu_;

  // Published epoch: shared_mutex-guarded pointer swap plus an atomic
  // number for cheap staleness checks off the lock.
  mutable std::shared_mutex epoch_mu_;
  std::shared_ptr<const EpochSnapshot> epoch_snap_;
  std::atomic<uint64_t> epoch_num_{0};

  // Admission queue.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<JobPtr> queue_;
  bool stop_workers_ = false;
  std::atomic<int> inflight_jobs_{0};
  std::atomic<int64_t> ema_exec_us_{2'000};
  std::atomic<uint64_t> dequeue_counter_{0};

  // Cancellation fan-out for drain: every admitted job's token, removed on
  // completion.
  std::mutex tokens_mu_;
  std::unordered_map<Job*, CancelTokenPtr> live_tokens_;

  // Wire-transaction lease on the single writer. txn_mu_ guards the
  // fields; every transition (grant, renew, reap) happens with writer_mu_
  // held as well, so the lease and the writer's in_txn() state move
  // together. Lock order: writer_mu_ before txn_mu_.
  std::mutex txn_mu_;
  bool lease_active_ = false;
  uint64_t lease_conn_ = 0;
  std::chrono::steady_clock::time_point lease_expiry_{};
  /// Connections whose transaction was reaped out from under them: their
  /// next write gets a typed lease-expired error instead of silently
  /// executing outside the transaction. Entries die with the connection.
  std::unordered_set<uint64_t> reaped_conns_;
  std::thread reaper_thread_;
  std::atomic<bool> stop_reaper_{false};
  std::mutex reaper_mu_;
  std::condition_variable reaper_cv_;  // wakes the reaper for instant join

  // Exactly-once commit dedup window: token -> original outcome, bounded
  // to the most recent opts_.commit_dedup_window commits (insertion order
  // in dedup_order_). Re-seeded from the WAL's journaled tokens on Start.
  struct CommitOutcome {
    uint64_t epoch = 0;
    std::string result;
  };
  std::mutex dedup_mu_;
  std::unordered_map<std::string, CommitOutcome> dedup_;
  std::deque<std::string> dedup_order_;

  std::atomic<uint64_t> wire_send_counter_{0};

  // Listeners, connections, threads.
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex conns_mu_;
  std::unordered_map<uint64_t, int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  std::condition_variable conns_cv_;
  uint64_t next_conn_id_ = 0;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;
  std::mutex lifecycle_mu_;
  std::condition_variable lifecycle_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace server
}  // namespace excess

#endif  // EXCESS_SERVER_SERVER_H_
