#include "methods/dispatch.h"

#include "core/analysis.h"
#include "core/builder.h"
#include "core/infer.h"
#include "util/string_util.h"

namespace excess {

ExprPtr SubstituteParams(const ExprPtr& body,
                         const std::vector<ExprPtr>& args) {
  if (body->kind() == OpKind::kParam) {
    auto i = static_cast<size_t>(body->index());
    if (i < args.size()) return args[i];
    return body;
  }
  bool changed = false;
  std::vector<ExprPtr> children;
  children.reserve(body->num_children());
  for (const auto& c : body->children()) {
    ExprPtr nc = SubstituteParams(c, args);
    changed |= (nc != c);
    children.push_back(std::move(nc));
  }
  ExprPtr sub = body->sub();
  if (sub != nullptr) {
    ExprPtr ns = SubstituteParams(sub, args);
    if (ns != sub) {
      changed = true;
      sub = std::move(ns);
    }
  }
  if (!changed) return body;
  return MakeExpr(body->kind(), std::move(children), sub, body->pred(),
                  body->literal(), body->name(), body->names(),
                  body->type_filter(), body->index(), body->lo(), body->hi(),
                  body->index_is_last(), body->lo_is_last(),
                  body->hi_is_last());
}

Result<ExprPtr> DispatchPlanner::SwitchTablePlan(
    const ExprPtr& collection, const std::string& method,
    std::vector<ExprPtr> args) const {
  return alg::SetApply(alg::MethodCall(method, alg::Input(), std::move(args)),
                       collection);
}

Result<ExprPtr> DispatchPlanner::UnionPlan(const ExprPtr& collection,
                                           const std::string& root_type,
                                           const std::string& method,
                                           std::vector<ExprPtr> args) const {
  EXA_ASSIGN_OR_RETURN(auto impls,
                       registry_->DistinctImplementations(root_type, method));
  if (impls.empty()) {
    return Status::NotFound(StrCat("no implementations of '", method,
                                   "' in the hierarchy of '", root_type, "'"));
  }
  // Does the collection hold references? Then the receiver must be
  // dereferenced inside each body.
  bool deref_receiver = false;
  TypeInference infer(db_);
  auto schema = infer.Infer(collection);
  if (schema.ok() && (*schema)->is_set() && (*schema)->elem() != nullptr &&
      (*schema)->elem()->is_ref()) {
    deref_receiver = true;
  }

  ExprPtr plan;
  for (const auto& [owner, serves] : impls) {
    EXA_ASSIGN_OR_RETURN(const MethodDef* def,
                         registry_->LookupExact(owner, method));
    ExprPtr body = SubstituteParams(def->body, args);
    if (deref_receiver) {
      body = analysis::SubstituteInput(body, alg::Deref(alg::Input()));
    }
    // One exactly-typed SET_APPLY per distinct implementation; the filter
    // lists every exact type this implementation serves (the paper's
    // "Person/Student" sharing).
    ExprPtr scan = alg::SetApply(std::move(body), collection,
                                 /*type_filter=*/Join(serves, ","));
    plan = plan == nullptr ? std::move(scan)
                           : alg::AddUnion(std::move(plan), std::move(scan));
  }
  return plan;
}

Result<ExprPtr> DispatchPlanner::UnionPlanOverExtents(
    const std::string& set_name, const std::string& root_type,
    const std::string& method, std::vector<ExprPtr> args) const {
  EXA_ASSIGN_OR_RETURN(auto impls,
                       registry_->DistinctImplementations(root_type, method));
  // Materialized per-exact-type extents replace the repeated scans.
  EXA_ASSIGN_OR_RETURN(const auto* extents,
                       const_cast<Database*>(db_)->TypeExtents(set_name));
  EXA_ASSIGN_OR_RETURN(SchemaPtr set_schema, db_->NamedSchema(set_name));
  bool deref_receiver =
      set_schema->is_set() && set_schema->elem()->is_ref();

  ExprPtr plan;
  for (const auto& [owner, serves] : impls) {
    EXA_ASSIGN_OR_RETURN(const MethodDef* def,
                         registry_->LookupExact(owner, method));
    ExprPtr body = SubstituteParams(def->body, args);
    if (deref_receiver) {
      body = analysis::SubstituteInput(body, alg::Deref(alg::Input()));
    }
    // Gather this implementation's extents; missing extents mean the set
    // currently has no members of that exact type.
    ExprPtr input;
    for (const auto& exact : serves) {
      auto it = extents->find(exact);
      if (it == extents->end()) continue;
      ExprPtr piece = alg::Const(it->second);
      input = input == nullptr
                  ? std::move(piece)
                  : alg::AddUnion(std::move(input), std::move(piece));
    }
    if (input == nullptr) continue;
    ExprPtr scan = alg::SetApply(std::move(body), std::move(input));
    plan = plan == nullptr ? std::move(scan)
                           : alg::AddUnion(std::move(plan), std::move(scan));
  }
  if (plan == nullptr) {
    // Every extent was empty: the result is the empty multiset.
    return alg::Const(Value::EmptySet());
  }
  return plan;
}

}  // namespace excess
