#include "methods/registry.h"

#include "util/string_util.h"

namespace excess {

Status MethodRegistry::Define(MethodDef def) {
  if (!catalog_->HasType(def.type_name)) {
    return Status::NotFound(StrCat("method '", def.method_name,
                                   "' defined on unknown type '",
                                   def.type_name, "'"));
  }
  if (def.body == nullptr) {
    return Status::Invalid(StrCat("method '", def.method_name, "' has no body"));
  }
  // Overriding requires an identical signature (§4): same parameter count
  // against any implementation of the same name above or below in the
  // hierarchy.
  for (const auto& [key, existing] : methods_) {
    if (key.second != def.method_name) continue;
    bool related = catalog_->IsSubtype(def.type_name, existing.type_name) ||
                   catalog_->IsSubtype(existing.type_name, def.type_name);
    if (related && existing.param_names.size() != def.param_names.size()) {
      return Status::TypeError(
          StrCat("override of '", def.method_name, "' on '", def.type_name,
                 "' changes the signature declared on '", existing.type_name,
                 "'"));
    }
  }
  auto key = std::make_pair(def.type_name, def.method_name);
  if (methods_.count(key) > 0) {
    return Status::AlreadyExists(StrCat("method '", def.method_name,
                                        "' already defined on '",
                                        def.type_name, "'"));
  }
  methods_.emplace(std::move(key), std::move(def));
  return Status::OK();
}

bool MethodRegistry::Has(const std::string& type_name,
                         const std::string& method) const {
  return methods_.count({type_name, method}) > 0;
}

Result<const MethodDef*> MethodRegistry::LookupExact(
    const std::string& type_name, const std::string& method) const {
  auto it = methods_.find({type_name, method});
  if (it == methods_.end()) {
    return Status::NotFound(StrCat("no method '", method, "' declared on '",
                                   type_name, "'"));
  }
  return &it->second;
}

Result<const MethodDef*> MethodRegistry::Dispatch(
    const std::string& exact_type, const std::string& method) const {
  dispatch_count_.fetch_add(1, std::memory_order_relaxed);
  // Depth-first, declaration-order walk up the supertype DAG: the exact
  // type's own implementation wins; otherwise the first parent chain that
  // declares one.
  auto own = methods_.find({exact_type, method});
  if (own != methods_.end()) return &own->second;
  auto entry = catalog_->Lookup(exact_type);
  if (!entry.ok()) {
    return Status::NotFound(StrCat("dispatch of '", method,
                                   "' on unknown exact type '", exact_type,
                                   "'"));
  }
  for (const auto& parent : (*entry)->parents) {
    auto r = Dispatch(parent, method);
    // Inner recursion double-counts.
    dispatch_count_.fetch_sub(1, std::memory_order_relaxed);
    if (r.ok()) return r;
  }
  return Status::NotFound(StrCat("no applicable method '", method, "' for '",
                                 exact_type, "'"));
}

Result<ExprPtr> MethodRegistry::Resolve(const std::string& exact_type,
                                        const std::string& method) const {
  EXA_ASSIGN_OR_RETURN(const MethodDef* def, Dispatch(exact_type, method));
  return def->body;
}

Result<std::vector<std::pair<std::string, std::vector<std::string>>>>
MethodRegistry::DistinctImplementations(const std::string& root,
                                        const std::string& method) const {
  std::vector<std::pair<std::string, std::vector<std::string>>> out;
  for (const auto& exact : catalog_->SelfAndDescendants(root)) {
    EXA_ASSIGN_OR_RETURN(const MethodDef* def, Dispatch(exact, method));
    bool found = false;
    for (auto& [owner, serves] : out) {
      if (owner == def->type_name) {
        serves.push_back(exact);
        found = true;
        break;
      }
    }
    if (!found) out.push_back({def->type_name, {exact}});
  }
  return out;
}

}  // namespace excess
