#ifndef EXCESS_METHODS_REGISTRY_H_
#define EXCESS_METHODS_REGISTRY_H_

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/eval.h"
#include "core/expr.h"
#include "util/status.h"

namespace excess {

/// A method: an EXCESS statement sequence compiled to a stored algebra
/// query tree (§4). The body is an expression over INPUT (= `this`) and
/// kParam nodes (the formals).
struct MethodDef {
  std::string type_name;    // the EXTRA type it is defined on
  std::string method_name;
  std::vector<std::string> param_names;
  SchemaPtr return_schema;  // may be null (dynamic)
  ExprPtr body;
};

/// Registry of methods with inheritance-aware resolution. Subtypes inherit
/// methods and may override them (identical signatures, per §4); resolution
/// finds the most specific implementation for an exact type via the
/// supertype DAG (left-to-right, depth-first — the declaration order of
/// `inherits` breaks multiple-inheritance ties).
class MethodRegistry : public MethodResolver {
 public:
  explicit MethodRegistry(const Catalog* catalog) : catalog_(catalog) {}

  /// Registers (or overrides) a method implementation on a type.
  Status Define(MethodDef def);

  bool Has(const std::string& type_name, const std::string& method) const;

  /// The implementation *declared on* exactly this type, if any.
  Result<const MethodDef*> LookupExact(const std::string& type_name,
                                       const std::string& method) const;

  /// Most specific implementation applicable to `exact_type` (walks up the
  /// inheritance DAG). This is the run-time dispatch of §4 strategy A.
  Result<const MethodDef*> Dispatch(const std::string& exact_type,
                                    const std::string& method) const;

  // MethodResolver:
  Result<ExprPtr> Resolve(const std::string& exact_type,
                          const std::string& method) const override;

  /// The types in `root`'s hierarchy that would each need their own typed
  /// SET_APPLY under §4 strategy B, deduplicated by *distinct
  /// implementation*: every exact type maps to the implementation it
  /// dispatches to, and types sharing an implementation share one entry
  /// (the paper's "only as many SET_APPLYs as there are distinct method
  /// implementations"). Returns (implementation owner, exact types served).
  Result<std::vector<std::pair<std::string, std::vector<std::string>>>>
  DistinctImplementations(const std::string& root,
                          const std::string& method) const;

  /// Number of dispatches performed (for the §4 benches). Atomic so
  /// parallel APPLY workers — and the server's concurrent readers sharing a
  /// registry during epoch capture — may dispatch concurrently.
  int64_t dispatch_count() const {
    return dispatch_count_.load(std::memory_order_relaxed);
  }
  void ResetStats() { dispatch_count_.store(0, std::memory_order_relaxed); }

  /// Unregisters a method (storage-commit rollback of a `define function`
  /// whose durable log failed). No-op if absent.
  void Remove(const std::string& type_name, const std::string& method) {
    methods_.erase({type_name, method});
  }

  /// Drops every method (durable `open` replaces the database wholesale).
  void Clear() { methods_.clear(); }

  /// Shallow image of every registered method, for session-transaction undo
  /// (MethodDef shares its body/schema pointers, so this copies a map of
  /// handles, not translated trees).
  using MethodMap = std::map<std::pair<std::string, std::string>, MethodDef>;
  MethodMap Snapshot() const { return methods_; }
  void RestoreSnapshot(MethodMap methods) { methods_ = std::move(methods); }

 private:
  const Catalog* catalog_;
  std::map<std::pair<std::string, std::string>, MethodDef> methods_;
  mutable std::atomic<int64_t> dispatch_count_{0};
};

}  // namespace excess

#endif  // EXCESS_METHODS_REGISTRY_H_
