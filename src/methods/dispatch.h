#ifndef EXCESS_METHODS_DISPATCH_H_
#define EXCESS_METHODS_DISPATCH_H_

#include <string>
#include <vector>

#include "core/expr.h"
#include "methods/registry.h"
#include "objects/database.h"
#include "util/status.h"

namespace excess {

/// The two algebraic treatments of overridden methods from §4, as plan
/// constructors over a collection expression whose elements range over a
/// type hierarchy rooted at `root_type`:
///
///  - Strategy A ("switch table"): a single scan with a late-bound
///    METHOD_CALL per element; the evaluator consults the registry's
///    dispatch table at run time. Compile-time optimization cannot see
///    inside the bodies.
///
///  - Strategy B ("⊎-based", Figure 5): one exactly-typed SET_APPLY per
///    *distinct implementation*, spliced with that implementation's stored
///    query tree, the results combined with additive union. The whole tree
///    is then visible to the optimizer.
///
///  - Strategy B over type extents: the same ⊎ plan, but each typed scan
///    ranges over the precomputed per-exact-type extent of a *named* set
///    (the index the paper notes makes the multi-scan penalty disappear).
class DispatchPlanner {
 public:
  DispatchPlanner(const Database* db, const MethodRegistry* registry)
      : db_(db), registry_(registry) {}

  /// Strategy A: SET_APPLY_{METHOD_CALL}(collection).
  Result<ExprPtr> SwitchTablePlan(const ExprPtr& collection,
                                  const std::string& method,
                                  std::vector<ExprPtr> args = {}) const;

  /// Strategy B: ⊎ of typed SET_APPLYs with spliced bodies. `root_type` is
  /// the declared element type of the collection. Arguments are inlined
  /// into the bodies by substituting kParam nodes.
  Result<ExprPtr> UnionPlan(const ExprPtr& collection,
                            const std::string& root_type,
                            const std::string& method,
                            std::vector<ExprPtr> args = {}) const;

  /// Strategy B reading per-type extents of the named set `set_name`
  /// instead of rescanning it once per implementation. The extents must
  /// have been materialized with Database::TypeExtents.
  Result<ExprPtr> UnionPlanOverExtents(const std::string& set_name,
                                       const std::string& root_type,
                                       const std::string& method,
                                       std::vector<ExprPtr> args = {}) const;

 private:
  const Database* db_;
  const MethodRegistry* registry_;
};

/// Substitutes `args[i]` for every kParam node with index i.
ExprPtr SubstituteParams(const ExprPtr& body, const std::vector<ExprPtr>& args);

}  // namespace excess

#endif  // EXCESS_METHODS_DISPATCH_H_
