#include "university/university.h"

#include <random>

#include "util/string_util.h"

namespace excess {

namespace {

/// Person tuple value (also the base fields of Employee/Student values).
ValuePtr MakePersonFields(int i, const UniversityParams& p, std::mt19937* rng) {
  std::uniform_int_distribution<int> zip(10000, 99999);
  std::uniform_int_distribution<int64_t> birthday(-10000, 10000);
  return Value::Tuple(
      {"ssnum", "name", "street", "city", "zip", "birthday"},
      {Value::Int(100000 + i), Value::Str(StrCat("person_", i)),
       Value::Str(StrCat(i % 100, " Main St")),
       Value::Str(StrCat("city_", i % p.num_cities)), Value::Int(zip(*rng)),
       Value::Date(birthday(*rng))},
      "Person");
}

Status DefineTypes(Database* db, const UniversityParams& p) {
  Catalog& cat = db->catalog();
  EXA_RETURN_NOT_OK(cat.DefineType(
      "Person",
      Schema::Tup({{"ssnum", IntSchema()},
                   {"name", StringSchema()},
                   {"street", StringSchema()},
                   {"city", StringSchema()},
                   {"zip", IntSchema()},
                   {"birthday", DateSchema()}})));
  // Figure 1 declares kids: { Person } — subordinate Person *values* (the
  // nested-relational default), not references.
  EXA_ASSIGN_OR_RETURN(SchemaPtr person_schema, cat.EffectiveSchema("Person"));
  EXA_RETURN_NOT_OK(cat.DefineType(
      "Employee",
      Schema::Tup({{"jobtitle", StringSchema()},
                   {"dept", Schema::Ref("Department")},
                   {"manager", Schema::Ref("Employee")},
                   {"sub_ords", Schema::Set(Schema::Ref("Employee"))},
                   {"salary", IntSchema()},
                   {"kids", Schema::Set(person_schema)}}),
      {"Person"}));
  EXA_RETURN_NOT_OK(cat.DefineType(
      "Student",
      Schema::Tup({{"gpa", FloatSchema()},
                   {"dept", Schema::Ref("Department")},
                   {"advisor", p.advisor_as_name
                                   ? StringSchema()
                                   : Schema::Ref("Employee")}}),
      {"Person"}));
  EXA_RETURN_NOT_OK(cat.DefineType(
      "Department",
      Schema::Tup({{"division", StringSchema()},
                   {"name", StringSchema()},
                   {"floor", IntSchema()},
                   {"employees", Schema::Set(Schema::Ref("Employee"))}})));
  return cat.Validate();
}

}  // namespace

Status BuildUniversity(Database* db, const UniversityParams& p) {
  std::mt19937 rng(p.seed);
  EXA_RETURN_NOT_OK(DefineTypes(db, p));
  ObjectStore& store = db->store();

  // Departments first (employees filled in afterwards).
  std::vector<Oid> dept_oids;
  dept_oids.reserve(p.num_departments);
  for (int d = 0; d < p.num_departments; ++d) {
    ValuePtr dept = Value::Tuple(
        {"division", "name", "floor", "employees"},
        {Value::Str(StrCat("division_", d % p.num_divisions)),
         Value::Str(StrCat("dept_", d)), Value::Int(1 + d % p.num_floors),
         Value::EmptySet()},
        "Department");
    EXA_ASSIGN_OR_RETURN(Oid oid, store.Create("Department", dept));
    dept_oids.push_back(oid);
  }

  // Employees; manager/sub_ords wired in a second pass.
  std::uniform_int_distribution<int64_t> salary(30000, 150000);
  std::vector<Oid> emp_oids;
  emp_oids.reserve(p.num_employees);
  for (int i = 0; i < p.num_employees; ++i) {
    ValuePtr base = MakePersonFields(i, p, &rng);
    std::vector<ValuePtr> kid_vals;
    for (int k = 0; k < p.kids_per_employee; ++k) {
      kid_vals.push_back(
          MakePersonFields(1000 * (i + 1) + k, p, &rng));
    }
    std::vector<std::string> names = base->field_names();
    std::vector<ValuePtr> vals = base->field_values();
    names.insert(names.end(),
                 {"jobtitle", "dept", "manager", "sub_ords", "salary", "kids"});
    Oid dept = dept_oids[i % dept_oids.size()];
    vals.push_back(Value::Str(StrCat("title_", i % 7)));
    vals.push_back(Value::RefTo(dept));
    vals.push_back(Value::Dne());  // manager patched below
    vals.push_back(Value::EmptySet());
    vals.push_back(Value::Int(salary(rng)));
    vals.push_back(Value::SetOf(kid_vals));
    ValuePtr emp = Value::Tuple(std::move(names), std::move(vals), "Employee");
    EXA_ASSIGN_OR_RETURN(Oid oid, store.Create("Employee", emp));
    emp_oids.push_back(oid);
  }

  // Second pass: managers and sub_ords. Employee 10k manages the following
  // subords_per_manager employees (wrap-around).
  for (int i = 0; i < p.num_employees; ++i) {
    int mgr = (i / 10) * 10;  // decade leader
    EXA_ASSIGN_OR_RETURN(ValuePtr cur, store.Deref(emp_oids[i]));
    std::vector<std::string> names = cur->field_names();
    std::vector<ValuePtr> vals = cur->field_values();
    int mi = cur->FieldIndex("manager");
    vals[mi] = Value::RefTo(emp_oids[mgr]);
    if (i % 10 == 0) {
      std::vector<ValuePtr> subs;
      for (int s = 1; s <= p.subords_per_manager; ++s) {
        subs.push_back(Value::RefTo(emp_oids[(i + s) % p.num_employees]));
      }
      vals[cur->FieldIndex("sub_ords")] = Value::SetOf(subs);
    }
    EXA_RETURN_NOT_OK(store.Update(
        emp_oids[i], Value::Tuple(std::move(names), std::move(vals),
                                  "Employee")));
  }

  // Department employee sets.
  for (size_t d = 0; d < dept_oids.size(); ++d) {
    std::vector<ValuePtr> members;
    for (size_t i = d; i < emp_oids.size(); i += dept_oids.size()) {
      members.push_back(Value::RefTo(emp_oids[i]));
    }
    EXA_ASSIGN_OR_RETURN(ValuePtr cur, store.Deref(dept_oids[d]));
    std::vector<std::string> names = cur->field_names();
    std::vector<ValuePtr> vals = cur->field_values();
    vals[cur->FieldIndex("employees")] = Value::SetOf(members);
    EXA_RETURN_NOT_OK(store.Update(
        dept_oids[d], Value::Tuple(std::move(names), std::move(vals),
                                   "Department")));
  }

  // Students.
  std::uniform_real_distribution<double> gpa(1.0, 4.0);
  std::vector<Oid> student_oids;
  student_oids.reserve(p.num_students);
  for (int s = 0; s < p.num_students; ++s) {
    ValuePtr base = MakePersonFields(500000 + s, p, &rng);
    std::vector<std::string> names = base->field_names();
    std::vector<ValuePtr> vals = base->field_values();
    names.insert(names.end(), {"gpa", "dept", "advisor"});
    vals.push_back(Value::Float(gpa(rng)));
    vals.push_back(Value::RefTo(dept_oids[s % dept_oids.size()]));
    int advisor = s % std::max(1, std::min(p.advisor_pool, p.num_employees));
    if (p.advisor_as_name) {
      vals.push_back(Value::Str(StrCat("person_", advisor)));
    } else {
      vals.push_back(Value::RefTo(emp_oids[advisor % emp_oids.size()]));
    }
    ValuePtr st = Value::Tuple(std::move(names), std::move(vals), "Student");
    EXA_ASSIGN_OR_RETURN(Oid oid, store.Create("Student", st));
    student_oids.push_back(oid);
  }

  // Named top-level objects (Figure 1's create statements), with the
  // requested duplication factor on the multisets.
  std::vector<SetEntry> emp_entries;
  for (const auto& oid : emp_oids) {
    emp_entries.push_back({Value::RefTo(oid), p.duplication});
  }
  std::vector<SetEntry> student_entries;
  for (const auto& oid : student_oids) {
    student_entries.push_back({Value::RefTo(oid), p.duplication});
  }
  std::vector<SetEntry> dept_entries;
  for (const auto& oid : dept_oids) {
    dept_entries.push_back({Value::RefTo(oid), p.duplication});
  }
  EXA_RETURN_NOT_OK(db->CreateNamed("Employees",
                                    Schema::Set(Schema::Ref("Employee")),
                                    Value::SetOfCounted(emp_entries)));
  EXA_RETURN_NOT_OK(db->CreateNamed("Students",
                                    Schema::Set(Schema::Ref("Student")),
                                    Value::SetOfCounted(student_entries)));
  EXA_RETURN_NOT_OK(db->CreateNamed("Departments",
                                    Schema::Set(Schema::Ref("Department")),
                                    Value::SetOfCounted(dept_entries)));

  std::vector<ValuePtr> top;
  for (int i = 0; i < 10 && i < p.num_employees; ++i) {
    top.push_back(Value::RefTo(emp_oids[i]));
  }
  EXA_RETURN_NOT_OK(db->CreateNamed(
      "TopTen", Schema::FixedArr(Schema::Ref("Employee"), 10),
      Value::ArrayOf(std::move(top))));
  return Status::OK();
}

Status AddMixedPersonSet(Database* db, const std::string& name,
                         int num_person, int num_student, int num_employee,
                         const UniversityParams& p) {
  std::mt19937 rng(p.seed + 1);
  std::vector<ValuePtr> members;
  for (int i = 0; i < num_person; ++i) {
    members.push_back(MakePersonFields(700000 + i, p, &rng));
  }
  // Student/Employee *values*: reuse stored objects' states so the refs
  // inside them are valid.
  EXA_ASSIGN_OR_RETURN(ValuePtr students, db->NamedValue("Students"));
  EXA_ASSIGN_OR_RETURN(ValuePtr employees, db->NamedValue("Employees"));
  int taken = 0;
  for (const auto& e : students->entries()) {
    if (taken >= num_student) break;
    EXA_ASSIGN_OR_RETURN(ValuePtr v, db->store().Deref(e.value->oid()));
    members.push_back(v);
    ++taken;
  }
  if (taken < num_student) {
    return Status::Invalid("not enough students for the mixed Person set");
  }
  taken = 0;
  for (const auto& e : employees->entries()) {
    if (taken >= num_employee) break;
    EXA_ASSIGN_OR_RETURN(ValuePtr v, db->store().Deref(e.value->oid()));
    members.push_back(v);
    ++taken;
  }
  if (taken < num_employee) {
    return Status::Invalid("not enough employees for the mixed Person set");
  }
  EXA_ASSIGN_OR_RETURN(SchemaPtr person,
                       db->catalog().EffectiveSchema("Person"));
  return db->CreateNamed(name, Schema::Set(person), Value::SetOf(members));
}

}  // namespace excess
