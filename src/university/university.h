#ifndef EXCESS_UNIVERSITY_UNIVERSITY_H_
#define EXCESS_UNIVERSITY_UNIVERSITY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "objects/database.h"
#include "util/status.h"

namespace excess {

/// Parameters of the synthetic university database of Figure 1 — the
/// workload substrate for the paper's examples (§2.2, §3.3, §5) and for
/// every figure bench. The knobs map onto the cost arguments the paper
/// makes: sizes (|S|, |E|, |D|), duplication factors, selectivities
/// (floor/city skew), and fan-outs (kids, sub_ords).
struct UniversityParams {
  int num_departments = 5;
  int num_employees = 50;
  int num_students = 100;
  int kids_per_employee = 2;
  /// Every employee whose index is a multiple of 10 manages this many
  /// subordinates (drives the §4 expensive-method scenario).
  int subords_per_manager = 4;
  int num_floors = 5;        // floors cycle 1..num_floors
  int num_cities = 3;        // cities cycle city_0..city_{n-1}
  int num_divisions = 3;     // divisions cycle division_0..
  /// Each Employees/Students occurrence is inserted this many times —
  /// the duplication factor of the Figure 6-8 experiment.
  int duplication = 1;
  /// §5 Example 1 assumes Student.advisor is the advisor's *name* (a
  /// value) rather than a reference; set for that experiment.
  bool advisor_as_name = false;
  /// Distinct advisor names are drawn from the first `advisor_pool`
  /// employees, controlling the Example 1 join fan-in.
  int advisor_pool = 10;
  uint32_t seed = 42;
};

/// Builds the Figure 1 schema (Person, Employee, Student, Department with
/// multiple top-level objects Employees, Students, Departments, TopTen)
/// and a deterministic synthetic instance into `db` (which must be fresh).
Status BuildUniversity(Database* db, const UniversityParams& params);

/// Adds a named multiset `P : { Person }` holding Person/Student/Employee
/// *values* (substitutability) with the given exact-type counts — the §4
/// overridden-method collection.
Status AddMixedPersonSet(Database* db, const std::string& name,
                         int num_person, int num_student, int num_employee,
                         const UniversityParams& params);

}  // namespace excess

#endif  // EXCESS_UNIVERSITY_UNIVERSITY_H_
