#ifndef EXCESS_CORE_EXPR_H_
#define EXCESS_CORE_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "objects/value.h"
#include "util/status.h"

namespace excess {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;
struct Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

/// The algebraic operators (§3.2). The first block are the 23 primitives of
/// the paper (8 multiset + 4 tuple + 9 array + 2 reference), plus COMP;
/// the leaf/extension block carries literals, named database objects, the
/// INPUT symbol, method parameters, arithmetic, registered aggregate
/// functions, and late-bound method calls (§4 strategy A).
enum class OpKind {
  // Leaves.
  kInput,  // the INPUT symbol of SET_APPLY/ARR_APPLY/GRP subscripts and COMP
  kConst,  // literal value
  kVar,    // named top-level database object
  kParam,  // method formal parameter (bound by kMethodCall)

  // Multiset primitives (§3.2.1).
  kAddUnion,     // A ⊎ B: cardinalities add
  kSetMake,      // SET(x): singleton multiset
  kSetApply,     // SET_APPLY_E(A), optionally restricted to one exact type (§4)
  kGroup,        // GRP_E(A): partition into equivalence classes of E
  kDupElim,      // DE(A): all cardinalities become 1
  kDiff,         // A - B: cardinalities subtract (floor 0)
  kCross,        // A × B: multiset of pairs, duplicates preserved
  kSetCollapse,  // ⊎ of the members of a multiset of multisets

  // Tuple primitives (§3.2.2).
  kProject,     // π_L(t): tuple with the listed fields
  kTupCat,      // TUP_CAT(t1, t2): concatenation
  kTupExtract,  // TUP_EXTRACT_f(t): the field itself (not a 1-tuple)
  kTupMake,     // TUP(x): unary tuple

  // Array primitives (§3.2.3).
  kArrMake,     // ARR(x): 1-element array
  kArrExtract,  // ARR_EXTRACT_n(A): the element itself (1-based; `last` ok)
  kArrApply,    // ARR_APPLY_E(A): order-preserving map
  kSubArr,      // SUBARR_{m,n}(A): inclusive 1-based slice (`last` ok)
  kArrCat,      // ARR_CAT(A, B)
  kArrCollapse, // order-preserving SET_COLLAPSE
  kArrDiff,     // order-preserving difference
  kArrDupElim,  // keep first occurrence of each distinct value
  kArrCross,    // order-preserving ×

  // Reference operators (§3.2.4).
  kRef,    // REF(x): intern x and return a reference to it
  kDeref,  // DEREF(r): materialize the referenced object

  // Predicate application (§3.2.4).
  kComp,  // COMP_P(x): x if P(x); unk if UNK; dne if false

  // Extensions required to execute EXCESS.
  kArith,       // scalar arithmetic: + - * / %
  kAgg,         // registered aggregate over a multiset: min max count sum avg
  kMethodCall,  // late-bound method invocation (run-time switch table, §4)

  // Physical operators. Not part of the paper's algebra surface: they are
  // introduced by the lowering pass (core/physical.h) after rewriting, and
  // exist so the evaluator can run the §5 cost arguments as real
  // asymptotics instead of qualitative occurrence counts.
  //
  // HASH_JOIN(A, B, kA, kB)[θ] is answer-equal to
  // SET_APPLY[COMP_θ(INPUT)](CROSS(A, B)): children 0/1 are the data
  // inputs; children 2/3 are per-element key expressions (INPUT bound to an
  // element of A resp. B — they are *binders*, like subscripts, not data
  // children); pred() carries the full original predicate θ, re-evaluated
  // on key-matching pairs only (its INPUT is the pair tuple (_1, _2)).
  kHashJoin,

  // IDX_PROBE(probe)[sub][θ] is answer-equal to
  // SET_APPLY[sub = COMP_θ(opnd)](Var(S)) where one conjunct of θ compares
  // a key path of the element against the probe: child 0 is the (closed)
  // probe expression; sub() is the COMP operand binder (INPUT bound to an
  // element of S); pred() is the full θ, re-evaluated on every candidate
  // the index returns. name() is the index name, names() = {S}, index()
  // carries the CmpOp of the matched atom. Falls back to an exact scan of
  // S when the index is missing or unusable.
  kIndexProbe,

  // IDX_JOIN(A, B, kA, kB)[θ] has the same shape and answer as HASH_JOIN
  // but serves one side's key partitions from a secondary index instead of
  // building a hash table by scanning that side. name() is the index name;
  // index() is the indexed side (0 = A, 1 = B). Falls back to EvalHashJoin
  // when the index is missing or unusable.
  kIndexJoin,
};

const char* OpKindToString(OpKind kind);

/// Comparators available to COMP atoms. kIn is multiset membership, which
/// the paper describes as "conceptually an equality test against every
/// occurrence in a multiset".
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe, kIn };

const char* CmpOpToString(CmpOp op);

/// Three-valued logic results for predicates.
enum class Truth { kFalse, kTrue, kUnk };

/// A COMP predicate: atomic comparisons between algebra expressions
/// (evaluated with INPUT bound to the COMP operand) composed with ∧ and ¬
/// (∨ provided as a convenience; the paper derives it).
struct Predicate {
  enum class Kind { kAtom, kAnd, kOr, kNot, kTrue };

  Kind kind = Kind::kTrue;
  CmpOp cmp = CmpOp::kEq;
  ExprPtr lhs;  // atom only
  ExprPtr rhs;  // atom only
  PredicatePtr a;  // And/Or/Not
  PredicatePtr b;  // And/Or

  static PredicatePtr Atom(ExprPtr lhs, CmpOp cmp, ExprPtr rhs);
  static PredicatePtr And(PredicatePtr a, PredicatePtr b);
  static PredicatePtr Or(PredicatePtr a, PredicatePtr b);
  static PredicatePtr Not(PredicatePtr a);
  static PredicatePtr True();

  bool Equals(const Predicate& other) const;
  uint64_t Hash() const;
  std::string ToString() const;
};

/// An immutable algebra expression node. Children are the data inputs; the
/// `sub` expression is the operator subscript E of SET_APPLY / ARR_APPLY /
/// GRP, evaluated with INPUT bound to each element.
class Expr {
 public:
  struct Builder;

  OpKind kind() const { return kind_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child(size_t i) const { return children_[i]; }
  size_t num_children() const { return children_.size(); }

  /// Subscript expression (SET_APPLY/ARR_APPLY/GRP).
  const ExprPtr& sub() const { return sub_; }
  /// COMP predicate.
  const PredicatePtr& pred() const { return pred_; }
  /// Literal payload (kConst).
  const ValuePtr& literal() const { return literal_; }

  /// Multi-purpose name: kVar object name, kTupExtract field, kRef target
  /// type, kAgg function name, kMethodCall method name, kArith operator.
  const std::string& name() const { return name_; }
  /// kProject field list.
  const std::vector<std::string>& names() const { return names_; }
  /// §4 exact-type restriction on kSetApply ("" = no restriction).
  const std::string& type_filter() const { return type_filter_; }

  /// kArrExtract index / kSubArr bounds / kParam position (all 1-based for
  /// array ops, 0-based for kParam).
  int64_t index() const { return index_; }
  int64_t lo() const { return lo_; }
  int64_t hi() const { return hi_; }
  bool index_is_last() const { return index_is_last_; }
  bool lo_is_last() const { return lo_is_last_; }
  bool hi_is_last() const { return hi_is_last_; }

  bool Equals(const Expr& other) const;
  bool Equals(const ExprPtr& other) const { return other && Equals(*other); }
  uint64_t Hash() const;

  /// Compact linear rendering, e.g. "SET_APPLY[π<name>(INPUT)](Employees)".
  std::string ToString() const;
  /// Indented multi-line query-tree rendering (Figures 3-11 style).
  std::string ToTreeString() const;

  /// Structural copy with the i-th child replaced.
  ExprPtr WithChild(size_t i, ExprPtr replacement) const;
  /// Structural copy with a new child vector (must have the same arity).
  ExprPtr WithChildren(std::vector<ExprPtr> children) const;
  /// Structural copy with a new subscript.
  ExprPtr WithSub(ExprPtr sub) const;

  /// Number of nodes in this expression (children + subscripts + predicate
  /// expressions), used by the cost model and rewrite budgets.
  int64_t NodeCount() const;

  // Exposed for the builder functions in core/builder.h only.
  struct MakeTag {};
  explicit Expr(MakeTag, OpKind kind) : kind_(kind) {}

 private:
  friend struct ExprFactory;

  OpKind kind_;
  std::vector<ExprPtr> children_;
  ExprPtr sub_;
  PredicatePtr pred_;
  ValuePtr literal_;
  std::string name_;
  std::vector<std::string> names_;
  std::string type_filter_;
  int64_t index_ = 0;
  int64_t lo_ = 0;
  int64_t hi_ = 0;
  bool index_is_last_ = false;
  bool lo_is_last_ = false;
  bool hi_is_last_ = false;

  friend ExprPtr MakeExpr(OpKind kind, std::vector<ExprPtr> children,
                          ExprPtr sub, PredicatePtr pred, ValuePtr literal,
                          std::string name, std::vector<std::string> names,
                          std::string type_filter, int64_t index, int64_t lo,
                          int64_t hi, bool index_is_last, bool lo_is_last,
                          bool hi_is_last);
};

/// Low-level factory used by the typed builders in core/builder.h.
ExprPtr MakeExpr(OpKind kind, std::vector<ExprPtr> children, ExprPtr sub,
                 PredicatePtr pred, ValuePtr literal, std::string name,
                 std::vector<std::string> names, std::string type_filter,
                 int64_t index, int64_t lo, int64_t hi, bool index_is_last,
                 bool lo_is_last, bool hi_is_last);

}  // namespace excess

#endif  // EXCESS_CORE_EXPR_H_
