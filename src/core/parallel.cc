#include "core/parallel.h"

#include <algorithm>
#include <cstdlib>

#include "util/env.h"

namespace excess {

namespace internal {

int ParsePoolSize(const char* env, int fallback) {
  return static_cast<int>(util::ParseEnvInt(env, 1, 256, fallback));
}

}  // namespace internal

namespace {

/// True on threads currently executing a batch (pool workers, and the
/// caller while it participates). Nested ParallelFor calls run inline.
thread_local bool t_in_batch = false;

int PoolSizeFromEnv() {
  unsigned hw = std::thread::hardware_concurrency();
  int fallback = hw == 0 ? 1 : static_cast<int>(hw);
  return internal::ParsePoolSize(std::getenv("EXCESS_THREADS"), fallback);
}

}  // namespace

WorkerPool::WorkerPool(int size) {
  int threads = std::max(0, size - 1);
  workers_.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

WorkerPool& WorkerPool::Instance() {
  // Leaked intentionally: workers may be parked in WorkerLoop at process
  // exit, and joining them from a static destructor races with the runtime
  // tearing down other statics.
  static WorkerPool* pool = new WorkerPool(PoolSizeFromEnv());
  return *pool;
}

void WorkerPool::RunPartition(const Body& fn, size_t n, int parts, int part) {
  size_t per = (n + static_cast<size_t>(parts) - 1) / static_cast<size_t>(parts);
  size_t begin = per * static_cast<size_t>(part);
  size_t end = std::min(n, begin + per);
  if (begin < end) fn(part, begin, end);
}

bool WorkerPool::InBatch() { return t_in_batch; }

int WorkerPool::ParallelFor(size_t n, size_t min_chunk, const Body& fn) {
  if (n == 0) return 0;
  int parts = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(size()),
                       std::max<size_t>(1, n / std::max<size_t>(1, min_chunk))));
  std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
  if (parts <= 1 || t_in_batch || !lock.try_lock() || body_ != nullptr) {
    // Serial path: pool of one, nested call, or the pool is busy with
    // another evaluator's batch.
    fn(0, 0, n);
    return 1;
  }
  body_ = &fn;
  batch_n_ = n;
  batch_parts_ = parts;
  // Every resident worker checks in exactly once per epoch, including the
  // ones a small batch leaves idle — the count must cover all of them.
  outstanding_ = static_cast<int>(workers_.size());
  ++epoch_;
  lock.unlock();
  work_cv_.notify_all();

  t_in_batch = true;
  RunPartition(fn, n, parts, 0);  // the caller is partition 0
  t_in_batch = false;

  lock.lock();
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
  body_ = nullptr;
  return parts;
}

void WorkerPool::WorkerLoop(int worker) {
  uint64_t seen_epoch = 0;
  while (true) {
    const Body* body;
    size_t n;
    int parts;
    uint64_t epoch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (body_ != nullptr && epoch_ != seen_epoch);
      });
      if (stop_) return;
      body = body_;
      n = batch_n_;
      parts = batch_parts_;
      epoch = epoch_;
    }
    seen_epoch = epoch;
    // Workers beyond the batch's partition count still must check in so the
    // caller's outstanding count drains.
    if (worker + 1 < parts) {
      t_in_batch = true;
      RunPartition(*body, n, parts, worker + 1);
      t_in_batch = false;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --outstanding_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace excess
