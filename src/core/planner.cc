#include "core/planner.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "core/physical.h"
#include "obs/metrics.h"

namespace excess {

namespace {

struct TreeKey {
  uint64_t hash;
  ExprPtr tree;
};

}  // namespace

Result<std::vector<PlanChoice>> Planner::Enumerate(const ExprPtr& query) {
  if (query == nullptr) return Status::Invalid("Enumerate on null query");

  // Phase 1: heuristic fixpoint.
  Rewriter heuristic(db_, RuleSet::Heuristic());
  heuristic.set_observer(observer_);
  EXA_ASSIGN_OR_RETURN(ExprPtr seed, heuristic.Rewrite(query));
  heuristic_trace_ = heuristic.applied();

  CostModel cost(db_, options_.cost_params);
  std::vector<PlanChoice> choices;
  auto add_choice = [&](const ExprPtr& plan) -> Status {
    EXA_ASSIGN_OR_RETURN(CostEstimate est, cost.Estimate(plan));
    choices.push_back({plan, est});
    return Status::OK();
  };
  EXA_RETURN_NOT_OK(add_choice(seed));

  // Phase 2: best-first exploration of the full rule set. The frontier is
  // seeded with BOTH the heuristic fixpoint and the original tree: some
  // rewrites (e.g. rule 10 feeding rule 26) only match shapes the
  // always-beneficial phase already collapsed, so restricting the search
  // to the fixpoint would make parts of the plan space unreachable.
  if (options_.search_budget > 0) {
    Rewriter all(db_, RuleSet::All());
    // Memo on (hash, deep equality).
    std::unordered_map<uint64_t, std::vector<ExprPtr>> seen;
    auto mark_seen = [&](const ExprPtr& t) -> bool {
      auto& bucket = seen[t->Hash()];
      for (const auto& prev : bucket) {
        if (prev->Equals(*t)) return false;
      }
      bucket.push_back(t);
      return true;
    };
    mark_seen(seed);

    auto cmp = [](const PlanChoice& a, const PlanChoice& b) {
      return a.estimate.total > b.estimate.total;  // min-heap
    };
    std::priority_queue<PlanChoice, std::vector<PlanChoice>, decltype(cmp)>
        frontier(cmp);
    frontier.push(choices.front());
    if (mark_seen(query)) {
      auto raw_est = cost.Estimate(query);
      if (raw_est.ok()) frontier.push({query, *raw_est});
    }

    double best_total = choices.front().estimate.total;
    int expanded = 0;
    while (!frontier.empty() && expanded < options_.search_budget) {
      PlanChoice current = frontier.top();
      frontier.pop();
      ++expanded;
      for (auto& tagged : all.EnumerateNeighborsTagged(current.plan)) {
        const ExprPtr& next = tagged.tree;
        if (!mark_seen(next)) continue;
        auto est = cost.Estimate(next);
        if (!est.ok()) continue;
        // An adopted improvement: this single rule application produced the
        // cheapest plan seen so far. The trace records these (and only
        // these) search steps — the full neighbor fan-out is noise.
        if (observer_ != nullptr && est->total < best_total) {
          observer_->OnRewrite("search", *tagged.rule, current.plan, next);
        }
        best_total = std::min(best_total, est->total);
        PlanChoice choice{next, *est};
        choices.push_back(choice);
        frontier.push(std::move(choice));
      }
    }
    obs::MetricsRegistry::Global()
        .GetCounter("planner.search_expanded")
        ->Increment(expanded);
  }
  obs::MetricsRegistry::Global()
      .GetCounter("planner.plans_considered")
      ->Increment(static_cast<int64_t>(choices.size()));

  std::stable_sort(choices.begin(), choices.end(),
                   [](const PlanChoice& a, const PlanChoice& b) {
                     return a.estimate.total < b.estimate.total;
                   });
  return choices;
}

Result<ExprPtr> Planner::Optimize(const ExprPtr& query) {
  EXA_ASSIGN_OR_RETURN(std::vector<PlanChoice> choices, Enumerate(query));
  ExprPtr best = choices.front().plan;
  if (options_.lower_physical) {
    best = options_.use_indexes
               ? LowerPhysical(best, db_, options_.cost_params, observer_)
               : LowerPhysical(best);
  }
  return best;
}

}  // namespace excess
