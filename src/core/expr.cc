#include "core/expr.h"

#include "util/hash.h"
#include "util/string_util.h"

namespace excess {

const char* OpKindToString(OpKind kind) {
  switch (kind) {
    case OpKind::kInput: return "INPUT";
    case OpKind::kConst: return "CONST";
    case OpKind::kVar: return "VAR";
    case OpKind::kParam: return "PARAM";
    case OpKind::kAddUnion: return "ADD_UNION";
    case OpKind::kSetMake: return "SET";
    case OpKind::kSetApply: return "SET_APPLY";
    case OpKind::kGroup: return "GRP";
    case OpKind::kDupElim: return "DE";
    case OpKind::kDiff: return "DIFF";
    case OpKind::kCross: return "CROSS";
    case OpKind::kSetCollapse: return "SET_COLLAPSE";
    case OpKind::kProject: return "PI";
    case OpKind::kTupCat: return "TUP_CAT";
    case OpKind::kTupExtract: return "TUP_EXTRACT";
    case OpKind::kTupMake: return "TUP";
    case OpKind::kArrMake: return "ARR";
    case OpKind::kArrExtract: return "ARR_EXTRACT";
    case OpKind::kArrApply: return "ARR_APPLY";
    case OpKind::kSubArr: return "SUBARR";
    case OpKind::kArrCat: return "ARR_CAT";
    case OpKind::kArrCollapse: return "ARR_COLLAPSE";
    case OpKind::kArrDiff: return "ARR_DIFF";
    case OpKind::kArrDupElim: return "ARR_DE";
    case OpKind::kArrCross: return "ARR_CROSS";
    case OpKind::kRef: return "REF";
    case OpKind::kDeref: return "DEREF";
    case OpKind::kComp: return "COMP";
    case OpKind::kArith: return "ARITH";
    case OpKind::kAgg: return "AGG";
    case OpKind::kMethodCall: return "METHOD";
    case OpKind::kHashJoin: return "HASH_JOIN";
    case OpKind::kIndexProbe: return "IDX_PROBE";
    case OpKind::kIndexJoin: return "IDX_JOIN";
  }
  return "?";
}

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
    case CmpOp::kIn: return "in";
  }
  return "?";
}

PredicatePtr Predicate::Atom(ExprPtr lhs, CmpOp cmp, ExprPtr rhs) {
  auto p = std::make_shared<Predicate>();
  p->kind = Kind::kAtom;
  p->cmp = cmp;
  p->lhs = std::move(lhs);
  p->rhs = std::move(rhs);
  return p;
}

PredicatePtr Predicate::And(PredicatePtr a, PredicatePtr b) {
  auto p = std::make_shared<Predicate>();
  p->kind = Kind::kAnd;
  p->a = std::move(a);
  p->b = std::move(b);
  return p;
}

PredicatePtr Predicate::Or(PredicatePtr a, PredicatePtr b) {
  auto p = std::make_shared<Predicate>();
  p->kind = Kind::kOr;
  p->a = std::move(a);
  p->b = std::move(b);
  return p;
}

PredicatePtr Predicate::Not(PredicatePtr a) {
  auto p = std::make_shared<Predicate>();
  p->kind = Kind::kNot;
  p->a = std::move(a);
  return p;
}

PredicatePtr Predicate::True() {
  auto p = std::make_shared<Predicate>();
  p->kind = Kind::kTrue;
  return p;
}

bool Predicate::Equals(const Predicate& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kAtom:
      return cmp == other.cmp && lhs->Equals(*other.lhs) &&
             rhs->Equals(*other.rhs);
    case Kind::kAnd:
    case Kind::kOr:
      return a->Equals(*other.a) && b->Equals(*other.b);
    case Kind::kNot:
      return a->Equals(*other.a);
    case Kind::kTrue:
      return true;
  }
  return false;
}

uint64_t Predicate::Hash() const {
  uint64_t h = HashCombine(0x9ced, static_cast<uint64_t>(kind));
  switch (kind) {
    case Kind::kAtom:
      h = HashCombine(h, static_cast<uint64_t>(cmp));
      h = HashCombine(h, lhs->Hash());
      h = HashCombine(h, rhs->Hash());
      break;
    case Kind::kAnd:
    case Kind::kOr:
      h = HashCombine(h, a->Hash());
      h = HashCombine(h, b->Hash());
      break;
    case Kind::kNot:
      h = HashCombine(h, a->Hash());
      break;
    case Kind::kTrue:
      break;
  }
  return h;
}

std::string Predicate::ToString() const {
  switch (kind) {
    case Kind::kAtom:
      return StrCat(lhs->ToString(), " ", CmpOpToString(cmp), " ",
                    rhs->ToString());
    case Kind::kAnd:
      return StrCat("(", a->ToString(), " and ", b->ToString(), ")");
    case Kind::kOr:
      return StrCat("(", a->ToString(), " or ", b->ToString(), ")");
    case Kind::kNot:
      return StrCat("not (", a->ToString(), ")");
    case Kind::kTrue:
      return "true";
  }
  return "?";
}

ExprPtr MakeExpr(OpKind kind, std::vector<ExprPtr> children, ExprPtr sub,
                 PredicatePtr pred, ValuePtr literal, std::string name,
                 std::vector<std::string> names, std::string type_filter,
                 int64_t index, int64_t lo, int64_t hi, bool index_is_last,
                 bool lo_is_last, bool hi_is_last) {
  auto e = std::make_shared<Expr>(Expr::MakeTag{}, kind);
  auto* m = const_cast<Expr*>(e.get());
  m->children_ = std::move(children);
  m->sub_ = std::move(sub);
  m->pred_ = std::move(pred);
  m->literal_ = std::move(literal);
  m->name_ = std::move(name);
  m->names_ = std::move(names);
  m->type_filter_ = std::move(type_filter);
  m->index_ = index;
  m->lo_ = lo;
  m->hi_ = hi;
  m->index_is_last_ = index_is_last;
  m->lo_is_last_ = lo_is_last;
  m->hi_is_last_ = hi_is_last;
  return e;
}

bool Expr::Equals(const Expr& other) const {
  if (this == &other) return true;
  if (kind_ != other.kind_) return false;
  if (name_ != other.name_ || names_ != other.names_ ||
      type_filter_ != other.type_filter_ || index_ != other.index_ ||
      lo_ != other.lo_ || hi_ != other.hi_ ||
      index_is_last_ != other.index_is_last_ ||
      lo_is_last_ != other.lo_is_last_ || hi_is_last_ != other.hi_is_last_) {
    return false;
  }
  if ((literal_ == nullptr) != (other.literal_ == nullptr)) return false;
  if (literal_ != nullptr && !literal_->Equals(*other.literal_)) return false;
  if ((sub_ == nullptr) != (other.sub_ == nullptr)) return false;
  if (sub_ != nullptr && !sub_->Equals(*other.sub_)) return false;
  if ((pred_ == nullptr) != (other.pred_ == nullptr)) return false;
  if (pred_ != nullptr && !pred_->Equals(*other.pred_)) return false;
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

uint64_t Expr::Hash() const {
  uint64_t h = HashCombine(0xa16eb7a, static_cast<uint64_t>(kind_));
  h = HashCombine(h, HashString(name_));
  for (const auto& n : names_) h = HashCombine(h, HashString(n));
  h = HashCombine(h, HashString(type_filter_));
  h = HashCombine(h, static_cast<uint64_t>(index_));
  h = HashCombine(h, static_cast<uint64_t>(lo_));
  h = HashCombine(h, static_cast<uint64_t>(hi_));
  h = HashCombine(h, (index_is_last_ ? 1 : 0) | (lo_is_last_ ? 2 : 0) |
                         (hi_is_last_ ? 4 : 0));
  if (literal_ != nullptr) h = HashCombine(h, literal_->Hash());
  if (sub_ != nullptr) h = HashCombine(h, sub_->Hash());
  if (pred_ != nullptr) h = HashCombine(h, pred_->Hash());
  for (const auto& c : children_) h = HashCombine(h, c->Hash());
  return h;
}

namespace {

std::string ParamString(const Expr& e) {
  switch (e.kind()) {
    case OpKind::kConst:
      return e.literal()->ToString();
    case OpKind::kVar:
      return e.name();
    case OpKind::kParam:
      return StrCat("$", e.index());
    case OpKind::kTupExtract:
    case OpKind::kAgg:
    case OpKind::kMethodCall:
    case OpKind::kArith:
    case OpKind::kIndexProbe:
    case OpKind::kIndexJoin:
      return e.name();
    case OpKind::kRef:
      return e.name();
    case OpKind::kProject:
      return Join(e.names(), ",");
    case OpKind::kArrExtract:
      return e.index_is_last() ? "last" : StrCat(e.index());
    case OpKind::kSubArr:
      return StrCat(e.lo_is_last() ? "last" : StrCat(e.lo()), ",",
                    e.hi_is_last() ? "last" : StrCat(e.hi()));
    case OpKind::kSetApply:
      return e.type_filter();
    default:
      return "";
  }
}

}  // namespace

std::string Expr::ToString() const {
  std::string head = OpKindToString(kind_);
  std::string param = ParamString(*this);
  std::string subscript;
  if (sub_ != nullptr) {
    subscript = StrCat("[", sub_->ToString(), "]");
  } else if (pred_ != nullptr) {
    subscript = StrCat("[", pred_->ToString(), "]");
  }
  if (kind_ == OpKind::kInput) return "INPUT";
  if (kind_ == OpKind::kConst) return param;
  if (kind_ == OpKind::kVar) return param;
  if (kind_ == OpKind::kParam) return param;
  std::string args;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) args += ", ";
    args += children_[i]->ToString();
  }
  std::string p;
  if (!param.empty() &&
      (kind_ == OpKind::kTupExtract || kind_ == OpKind::kProject ||
       kind_ == OpKind::kArrExtract || kind_ == OpKind::kSubArr ||
       kind_ == OpKind::kAgg || kind_ == OpKind::kArith ||
       kind_ == OpKind::kMethodCall || kind_ == OpKind::kRef ||
       kind_ == OpKind::kSetApply || kind_ == OpKind::kIndexProbe ||
       kind_ == OpKind::kIndexJoin)) {
    p = StrCat("<", param, ">");
  }
  return StrCat(head, p, subscript, "(", args, ")");
}

namespace {

void TreeString(const Expr& e, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  std::string head = OpKindToString(e.kind());
  std::string param = ParamString(e);
  if (e.kind() == OpKind::kConst || e.kind() == OpKind::kVar ||
      e.kind() == OpKind::kParam) {
    out->append(param);
    out->push_back('\n');
    return;
  }
  out->append(head);
  if (!param.empty()) {
    out->append("<");
    out->append(param);
    out->append(">");
  }
  if (e.sub() != nullptr) {
    out->append("[");
    out->append(e.sub()->ToString());
    out->append("]");
  } else if (e.pred() != nullptr) {
    out->append("[");
    out->append(e.pred()->ToString());
    out->append("]");
  }
  out->push_back('\n');
  for (const auto& c : e.children()) {
    TreeString(*c, depth + 1, out);
  }
}

}  // namespace

std::string Expr::ToTreeString() const {
  std::string out;
  TreeString(*this, 0, &out);
  return out;
}

ExprPtr Expr::WithChild(size_t i, ExprPtr replacement) const {
  std::vector<ExprPtr> children = children_;
  children[i] = std::move(replacement);
  return WithChildren(std::move(children));
}

ExprPtr Expr::WithChildren(std::vector<ExprPtr> children) const {
  return MakeExpr(kind_, std::move(children), sub_, pred_, literal_, name_,
                  names_, type_filter_, index_, lo_, hi_, index_is_last_,
                  lo_is_last_, hi_is_last_);
}

ExprPtr Expr::WithSub(ExprPtr sub) const {
  return MakeExpr(kind_, children_, std::move(sub), pred_, literal_, name_,
                  names_, type_filter_, index_, lo_, hi_, index_is_last_,
                  lo_is_last_, hi_is_last_);
}

namespace {

int64_t PredNodeCount(const Predicate& p) {
  switch (p.kind) {
    case Predicate::Kind::kAtom:
      return 1 + p.lhs->NodeCount() + p.rhs->NodeCount();
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      return 1 + PredNodeCount(*p.a) + PredNodeCount(*p.b);
    case Predicate::Kind::kNot:
      return 1 + PredNodeCount(*p.a);
    case Predicate::Kind::kTrue:
      return 1;
  }
  return 1;
}

}  // namespace

int64_t Expr::NodeCount() const {
  int64_t n = 1;
  for (const auto& c : children_) n += c->NodeCount();
  if (sub_ != nullptr) n += sub_->NodeCount();
  if (pred_ != nullptr) n += PredNodeCount(*pred_);
  return n;
}

}  // namespace excess
