#include "core/analysis.h"
#include "core/builder.h"
#include "core/infer.h"
#include "core/rules.h"

namespace excess {

namespace {

/// Statically known length of the array produced by `e`, available when its
/// inferred schema is a fixed-length array (EXTRA fixed arrays such as
/// TopTen). Rules 17 and 21 need it to split concatenations.
std::optional<int64_t> StaticLen(const ExprPtr& e, const RuleContext& ctx) {
  if (ctx.db == nullptr) return std::nullopt;
  TypeInference infer(ctx.db);
  auto r = infer.Infer(e, ctx.input_schema);
  if (!r.ok()) return std::nullopt;
  const SchemaPtr& s = *r;
  if (!s->is_arr() || !s->fixed_size().has_value()) return std::nullopt;
  return *s->fixed_size();
}

bool NoLastTokens(const ExprPtr& e) {
  return !e->index_is_last() && !e->lo_is_last() && !e->hi_is_last();
}

}  // namespace

void RegisterArrayRules(RuleSet* directed, RuleSet* exploratory) {
  // --- Rule 16: ARR_CAT associativity.
  exploratory->Add(
      {16, "arrcat-assoc-left",
       false,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kArrCat) return std::nullopt;
         const ExprPtr& rhs = e->child(1);
         if (rhs->kind() != OpKind::kArrCat) return std::nullopt;
         return alg::ArrCat(alg::ArrCat(e->child(0), rhs->child(0)),
                            rhs->child(1));
       }});
  exploratory->Add(
      {16, "arrcat-assoc-right",
       false,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kArrCat) return std::nullopt;
         const ExprPtr& lhs = e->child(0);
         if (lhs->kind() != OpKind::kArrCat) return std::nullopt;
         return alg::ArrCat(lhs->child(0),
                            alg::ArrCat(lhs->child(1), e->child(1)));
       }});

  // --- Rule 17: extracting from a concatenation touches only one side.
  // Needs |A| statically (fixed-length array schema).
  directed->Add(
      {17, "extract-from-arrcat",
       true,
       [](const ExprPtr& e, const RuleContext& ctx) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kArrExtract || e->index_is_last()) {
           return std::nullopt;
         }
         const ExprPtr& cat = e->child(0);
         if (cat->kind() != OpKind::kArrCat) return std::nullopt;
         auto len_a = StaticLen(cat->child(0), ctx);
         if (!len_a.has_value()) return std::nullopt;
         if (e->index() <= *len_a) {
           return alg::ArrExtract(e->index(), cat->child(0));
         }
         return alg::ArrExtract(e->index() - *len_a, cat->child(1));
       }});

  // --- Rule 18: extracting from a subarray re-indexes into the original
  // array: ARR_EXTRACT_p(SUBARR_{m,n}(A)) = ARR_EXTRACT_{m+p-1}(A), valid
  // for 1-based in-range positions (p ≤ n-m+1 keeps the dne cases aligned).
  directed->Add(
      {18, "extract-from-subarr",
       true,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kArrExtract || e->index_is_last()) {
           return std::nullopt;
         }
         const ExprPtr& sub = e->child(0);
         if (sub->kind() != OpKind::kSubArr || !NoLastTokens(sub)) {
           return std::nullopt;
         }
         int64_t p = e->index();
         int64_t m = sub->lo();
         int64_t n = sub->hi();
         if (m < 1 || p < 1 || p > n - m + 1) return std::nullopt;
         return alg::ArrExtract(m + p - 1, sub->child(0));
       }});

  // --- Rule 19: ARR_EXTRACT_n(ARR_APPLY_E(A)) = E(ARR_EXTRACT_n(A)) when E
  // cannot produce dne (a dropped dne would shift indices); the paper's "E
  // is not COMP_P" condition, checked recursively.
  directed->Add(
      {19, "extract-through-arrapply",
       true,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kArrExtract) return std::nullopt;
         const ExprPtr& ap = e->child(0);
         if (ap->kind() != OpKind::kArrApply) return std::nullopt;
         if (analysis::ContainsComp(ap->sub())) return std::nullopt;
         ExprPtr extract =
             e->index_is_last()
                 ? alg::ArrExtractLast(ap->child(0))
                 : alg::ArrExtract(e->index(), ap->child(0));
         return analysis::SubstituteInput(ap->sub(), extract);
       }});

  // --- Rule 20: combining successive SUBARRs:
  // SUBARR_{m,n}(SUBARR_{j,k}(A)) = SUBARR_{j+m-1, min(j+n-1, k)}(A)
  // for 1-based bounds (clamping to |A| happens in the kernel either way).
  directed->Add(
      {20, "combine-subarrs",
       true,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kSubArr || !NoLastTokens(e)) {
           return std::nullopt;
         }
         const ExprPtr& inner = e->child(0);
         if (inner->kind() != OpKind::kSubArr || !NoLastTokens(inner)) {
           return std::nullopt;
         }
         int64_t m = e->lo();
         int64_t n = e->hi();
         int64_t j = inner->lo();
         int64_t k = inner->hi();
         if (m < 1 || j < 1) return std::nullopt;
         return alg::SubArr(j + m - 1, std::min(j + n - 1, k),
                            inner->child(0));
       }});

  // --- Rule 21: taking a subarray from a concatenation (|A| known).
  directed->Add(
      {21, "subarr-from-arrcat",
       true,
       [](const ExprPtr& e, const RuleContext& ctx) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kSubArr || !NoLastTokens(e)) {
           return std::nullopt;
         }
         const ExprPtr& cat = e->child(0);
         if (cat->kind() != OpKind::kArrCat) return std::nullopt;
         auto len_a = StaticLen(cat->child(0), ctx);
         if (!len_a.has_value()) return std::nullopt;
         int64_t m = e->lo();
         int64_t n = e->hi();
         if (m < 1) return std::nullopt;
         if (m <= *len_a) {
           if (n <= *len_a) return alg::SubArr(m, n, cat->child(0));
           return alg::ArrCat(alg::SubArr(m, *len_a, cat->child(0)),
                              alg::SubArr(1, n - *len_a, cat->child(1)));
         }
         return alg::SubArr(m - *len_a, n - *len_a, cat->child(1));
       }});

  // --- Rule 22: SUBARR commutes with ARR_APPLY (same dne-free condition
  // as rule 19); beneficial direction slices before mapping.
  directed->Add(
      {22, "subarr-before-arrapply",
       true,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kSubArr) return std::nullopt;
         const ExprPtr& ap = e->child(0);
         if (ap->kind() != OpKind::kArrApply) return std::nullopt;
         if (analysis::ContainsComp(ap->sub())) return std::nullopt;
         return alg::ArrApply(
             ap->sub(), alg::SubArr(e->lo(), e->hi(), ap->child(0),
                                    e->lo_is_last(), e->hi_is_last()));
       }});

  // --- Array analog of rule 15 (the paper notes multiset rules carry over
  // to arrays): combine successive ARR_APPLYs.
  directed->Add(
      {15, "combine-arr-applys",
       true,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kArrApply) return std::nullopt;
         const ExprPtr& inner = e->child(0);
         if (inner->kind() != OpKind::kArrApply) return std::nullopt;
         // Same dne condition as the multiset rule: array construction
         // drops dne too, so elements are never dne, but an inner subscript
         // that produces dne drops occurrences the outer APPLY never sees.
         if (analysis::MayProduceDne(inner->sub(),
                                     /*input_may_be_dne=*/false) &&
             !analysis::DneStrictInInput(e->sub())) {
           return std::nullopt;
         }
         return alg::ArrApply(
             analysis::SubstituteInput(e->sub(), inner->sub()),
             inner->child(0));
       }});

  // --- Array analog of rule 12: ARR_APPLY distributes over ARR_CAT.
  exploratory->Add(
      {12, "arrapply-distributes-over-arrcat",
       false,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kArrApply) return std::nullopt;
         const ExprPtr& cat = e->child(0);
         if (cat->kind() != OpKind::kArrCat) return std::nullopt;
         return alg::ArrCat(alg::ArrApply(e->sub(), cat->child(0)),
                            alg::ArrApply(e->sub(), cat->child(1)));
       }});
}

}  // namespace excess
