#ifndef EXCESS_CORE_PHYSICAL_H_
#define EXCESS_CORE_PHYSICAL_H_

#include "core/expr.h"

namespace excess {

/// Physical lowering: the last planner phase, run after the rewrite rules
/// (which only ever see logical trees). Recognizes the equi-join shape
///
///   SET_APPLY[COMP_θ(INPUT)](CROSS(A, B))
///
/// — including the one inside the RelJoin derived form — where θ's
/// conjunction contains at least one equality atom whose sides address
/// opposite halves of the pair (free INPUT only through TUP_EXTRACT_{_1}
/// resp. TUP_EXTRACT_{_2}), and replaces it with HASH_JOIN(A, B, kA, kB)[θ]
/// so the cross product is never materialized. Several equality atoms
/// become one composite positional-tuple key (tuple equality is positional
/// on values, so composite-key equality is exactly the atom conjunction).
///
/// The whole of θ rides along on the physical node and is re-evaluated on
/// key-matching pairs, which keeps the answer (including unk occurrences
/// from three-valued residual atoms) identical to the logical plan; see
/// Evaluator::EvalHashJoin for the null-key fallbacks and the tiny-input
/// nested-loop gate.
ExprPtr LowerPhysical(const ExprPtr& plan);

}  // namespace excess

#endif  // EXCESS_CORE_PHYSICAL_H_
