#ifndef EXCESS_CORE_PHYSICAL_H_
#define EXCESS_CORE_PHYSICAL_H_

#include "core/cost.h"
#include "core/expr.h"
#include "core/rewriter.h"
#include "objects/database.h"

namespace excess {

/// Physical lowering: the last planner phase, run after the rewrite rules
/// (which only ever see logical trees). Recognizes the equi-join shape
///
///   SET_APPLY[COMP_θ(INPUT)](CROSS(A, B))
///
/// — including the one inside the RelJoin derived form — where θ's
/// conjunction contains at least one equality atom whose sides address
/// opposite halves of the pair (free INPUT only through TUP_EXTRACT_{_1}
/// resp. TUP_EXTRACT_{_2}), and replaces it with HASH_JOIN(A, B, kA, kB)[θ]
/// so the cross product is never materialized. Several equality atoms
/// become one composite positional-tuple key (tuple equality is positional
/// on values, so composite-key equality is exactly the atom conjunction).
///
/// The whole of θ rides along on the physical node and is re-evaluated on
/// key-matching pairs, which keeps the answer (including unk occurrences
/// from three-valued residual atoms) identical to the logical plan; see
/// Evaluator::EvalHashJoin for the null-key fallbacks and the tiny-input
/// nested-loop gate.
ExprPtr LowerPhysical(const ExprPtr& plan);

/// Index-aware physical lowering. Everything the plain overload does, plus
/// two rules that consult the database's secondary indexes and only fire
/// when the cost model scores the indexed alternative strictly cheaper:
///
///  - lower-index-probe: SET_APPLY[χ(COMP_θ(opnd))](Var(S)) — χ a possibly
///    empty TUP_EXTRACT/DEREF suffix (rule-15 fusion wraps the projection
///    around the COMP in translated plans), opnd a pure extraction path,
///    optionally inside the translator's TUP<f>(...) environment tuple —
///    where θ's ∧-spine holds an atom comparing a pure extraction path
///    over INPUT against a closed, side-effect-free probe, and an index on
///    S covers the operand+atom path (hash for =/in, ordered for
///    </<=/>/>=) — becomes IDX_PROBE(probe)[opnd][θ], re-wrapped in
///    SET_APPLY[χ(INPUT)] when χ is non-empty.
///  - lower-index-join: a freshly lowered HASH_JOIN whose one side is
///    Var(S) (or a pure extraction-path SET_APPLY over Var(S)) with a key
///    binder matching an index on S — becomes IDX_JOIN, which never scans
///    the indexed side.
///
/// Firings are counted as rules.fired.lower-index-probe / -join and
/// reported to `observer` (phase "lowering"). With a null `db` this is the
/// plain overload: plans come out byte-identical to it.
ExprPtr LowerPhysical(const ExprPtr& plan, const Database* db,
                      const CostParams& params,
                      RewriteObserver* observer = nullptr);

}  // namespace excess

#endif  // EXCESS_CORE_PHYSICAL_H_
