#ifndef EXCESS_CORE_KERNELS_H_
#define EXCESS_CORE_KERNELS_H_

#include "core/governor.h"
#include "objects/value.h"
#include "util/status.h"

namespace excess {
/// Value-level semantics of the structural operators, shared by the
/// evaluator, the tests and the benchmark harness. Each kernel implements
/// exactly the definition in §3.2 and returns TypeError when handed a value
/// of the wrong sort (the algebra is many-sorted, so sort errors are real
/// errors, not coercions).
///
/// The optional trailing Governor makes the occurrence-producing loops
/// cooperative: output occurrences are counted against the budget and the
/// quadratic kernels (CROSS / ARR_CROSS) charge each fresh pair against the
/// memory budget *as it is built*, so an adversarial product trips the
/// limit instead of materializing. A null governor costs one branch.
namespace kernels {

// Multiset kernels (§3.2.1).
Result<ValuePtr> AddUnion(const ValuePtr& a, const ValuePtr& b,
                          Governor* gov = nullptr);
Result<ValuePtr> Diff(const ValuePtr& a, const ValuePtr& b,
                      Governor* gov = nullptr);
Result<ValuePtr> Cross(const ValuePtr& a, const ValuePtr& b,
                       Governor* gov = nullptr);
Result<ValuePtr> DupElim(const ValuePtr& a, Governor* gov = nullptr);
Result<ValuePtr> SetCollapse(const ValuePtr& a, Governor* gov = nullptr);
/// Derived: max-cardinality union and min-cardinality intersection
/// (Appendix §1), provided directly for tests of the derivations.
Result<ValuePtr> MaxUnion(const ValuePtr& a, const ValuePtr& b,
                          Governor* gov = nullptr);
Result<ValuePtr> MinIntersect(const ValuePtr& a, const ValuePtr& b,
                              Governor* gov = nullptr);

// Tuple kernels (§3.2.2).
Result<ValuePtr> TupCat(const ValuePtr& a, const ValuePtr& b);
Result<ValuePtr> Project(const std::vector<std::string>& fields,
                         const ValuePtr& t);

// Array kernels (§3.2.3). Indices are 1-based; `last` has been resolved to
// a concrete index by the evaluator before these are called.
Result<ValuePtr> ArrCat(const ValuePtr& a, const ValuePtr& b,
                        Governor* gov = nullptr);
/// Out-of-range extraction yields dne (the element "does not exist").
Result<ValuePtr> ArrExtract(int64_t index, const ValuePtr& a);
/// Clamping slice semantics: elements max(1,lo)..min(hi,|A|), empty when
/// the range is empty.
Result<ValuePtr> SubArr(int64_t lo, int64_t hi, const ValuePtr& a,
                        Governor* gov = nullptr);
Result<ValuePtr> ArrCollapse(const ValuePtr& a, Governor* gov = nullptr);
Result<ValuePtr> ArrDiff(const ValuePtr& a, const ValuePtr& b,
                         Governor* gov = nullptr);
Result<ValuePtr> ArrDupElim(const ValuePtr& a, Governor* gov = nullptr);
Result<ValuePtr> ArrCross(const ValuePtr& a, const ValuePtr& b,
                          Governor* gov = nullptr);

// Aggregates (registered functions; see DESIGN.md substitution table).
// count counts occurrences; min/max/sum/avg of an empty multiset is dne.
Result<ValuePtr> Aggregate(const std::string& name, const ValuePtr& set,
                           Governor* gov = nullptr);

}  // namespace kernels
}  // namespace excess

#endif  // EXCESS_CORE_KERNELS_H_
