#include <algorithm>

#include "core/analysis.h"
#include "core/builder.h"
#include "core/infer.h"
#include "core/rules.h"

namespace excess {

namespace {

/// Field names of the tuple produced by `e`, when statically known.
std::optional<std::vector<std::string>> StaticFields(const ExprPtr& e,
                                                     const RuleContext& ctx) {
  if (ctx.db == nullptr) return std::nullopt;
  TypeInference infer(ctx.db);
  auto r = infer.Infer(e, ctx.input_schema);
  if (!r.ok()) return std::nullopt;
  const SchemaPtr& s = *r;
  if (!s->is_tup()) return std::nullopt;
  std::vector<std::string> names;
  names.reserve(s->fields().size());
  for (const auto& f : s->fields()) names.push_back(f.name);
  return names;
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

void RegisterTupleRefRules(RuleSet* directed, RuleSet* exploratory) {
  // --- Rule 23: commutativity of TUP_CAT. Sound because tuple values use
  // record-style (field-name keyed) equality; see objects/value.cc.
  exploratory->Add(
      {23, "tupcat-commute",
       false,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kTupCat) return std::nullopt;
         return alg::TupCat(e->child(1), e->child(0));
       }});

  // --- Rule 24: π distributes over TUP_CAT: π_L(TUP_CAT(A, B)) =
  // TUP_CAT(π_L1(A), π_L2(B)) when L splits cleanly by provenance.
  exploratory->Add(
      {24, "project-distributes-over-tupcat",
       false,
       [](const ExprPtr& e, const RuleContext& ctx) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kProject) return std::nullopt;
         const ExprPtr& cat = e->child(0);
         if (cat->kind() != OpKind::kTupCat) return std::nullopt;
         auto fa = StaticFields(cat->child(0), ctx);
         auto fb = StaticFields(cat->child(1), ctx);
         if (!fa.has_value() || !fb.has_value()) return std::nullopt;
         std::vector<std::string> l1;
         std::vector<std::string> l2;
         for (const auto& name : e->names()) {
           bool in_a = Contains(*fa, name);
           bool in_b = Contains(*fb, name);
           if (in_a == in_b) return std::nullopt;  // ambiguous or missing
           (in_a ? l1 : l2).push_back(name);
         }
         return alg::TupCat(alg::Project(std::move(l1), cat->child(0)),
                            alg::Project(std::move(l2), cat->child(1)));
       }});

  // --- Rule 25: extracting a field of A from TUP_CAT(A, B) skips the
  // concatenation entirely.
  directed->Add(
      {25, "extract-from-tupcat",
       true,
       [](const ExprPtr& e, const RuleContext& ctx) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kTupExtract) return std::nullopt;
         const ExprPtr& cat = e->child(0);
         if (cat->kind() != OpKind::kTupCat) return std::nullopt;
         auto fa = StaticFields(cat->child(0), ctx);
         if (fa.has_value() && Contains(*fa, e->name())) {
           return alg::TupExtract(e->name(), cat->child(0));
         }
         // If the field is provably on the B side only, skip to B.
         auto fb = StaticFields(cat->child(1), ctx);
         if (fa.has_value() && fb.has_value() && !Contains(*fa, e->name()) &&
             Contains(*fb, e->name())) {
           return alg::TupExtract(e->name(), cat->child(1));
         }
         return std::nullopt;
       }});

  // --- π composition (relational-familiar; the Appendix cites the
  // relational rules as consequences): π_L1(π_L2(t)) = π_L1(t), L1 ⊆ L2.
  directed->Add(
      {0, "combine-projects",
       true,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kProject) return std::nullopt;
         const ExprPtr& inner = e->child(0);
         if (inner->kind() != OpKind::kProject) return std::nullopt;
         for (const auto& n : e->names()) {
           if (!Contains(inner->names(), n)) return std::nullopt;
         }
         return alg::Project(e->names(), inner->child(0));
       }});
  // TUP_EXTRACT_f(TUP_f(x)) = x — collapses the environment-tuple plumbing
  // the EXCESS translator generates (TUP is the named unary constructor).
  // Only fires when the names match: extracting a missing field is a
  // runtime error the rewrite must preserve.
  directed->Add(
      {0, "extract-from-tupmake",
       true,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kTupExtract) return std::nullopt;
         const ExprPtr& inner = e->child(0);
         if (inner->kind() != OpKind::kTupMake) return std::nullopt;
         const std::string& field =
             inner->name().empty() ? "_1" : inner->name();
         if (field != e->name()) return std::nullopt;
         return inner->child(0);
       }});
  directed->Add(
      {0, "extract-from-project",
       true,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kTupExtract) return std::nullopt;
         const ExprPtr& inner = e->child(0);
         if (inner->kind() != OpKind::kProject) return std::nullopt;
         if (!Contains(inner->names(), e->name())) return std::nullopt;
         return alg::TupExtract(e->name(), inner->child(0));
       }});

  // --- Rule 27: combine successive COMPs into a conjunction. The inner
  // predicate goes first in the conjunction so short-circuit evaluation
  // matches the original order (identical semantics for unk-free data; the
  // printed rule glosses over the COMP(unk) case, see DESIGN.md).
  directed->Add(
      {27, "combine-comps",
       true,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kComp) return std::nullopt;
         const ExprPtr& inner = e->child(0);
         if (inner->kind() != OpKind::kComp) return std::nullopt;
         return alg::Comp(Predicate::And(inner->pred(), e->pred()),
                          inner->child(0));
       }});

  // --- Rule 28: invertibility of REF and DEREF.
  directed->Add(
      {28, "deref-of-ref",
       true,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kDeref) return std::nullopt;
         if (e->child(0)->kind() != OpKind::kRef) return std::nullopt;
         return e->child(0)->child(0);
       }});
  directed->Add(
      {28, "ref-of-deref",
       true,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kRef) return std::nullopt;
         if (e->child(0)->kind() != OpKind::kDeref) return std::nullopt;
         // REF(DEREF(r)) = r up to value-interned identity (the store
         // registers created objects in the intern table; see DESIGN.md).
         return e->child(0)->child(0);
       }});
}

}  // namespace excess
