#ifndef EXCESS_CORE_COST_H_
#define EXCESS_CORE_COST_H_

#include <string>

#include "core/expr.h"
#include "objects/database.h"
#include "util/status.h"

namespace excess {

/// Estimated properties of one (sub)plan.
struct CostEstimate {
  /// Estimated occurrence count of the produced multiset/array (1 for
  /// scalars and tuples).
  double cardinality = 1;
  /// Estimated total work in abstract "occurrence touches"; derefs and
  /// method calls are weighted (paper §6 calls cost functions for complex
  /// object models future work — these are deliberately simple, catalog-fed
  /// textbook estimates).
  double total = 0;
  /// Probability the produced value is non-null. Uniform null propagation
  /// means operators downstream of a COMP in a fused pipeline skip their
  /// work on failed elements; scalar operators charge cost × live and
  /// COMP multiplies live by its selectivity. Collection outputs reset to
  /// 1 (dne occurrences are dropped at construction).
  double live = 1;
  /// Estimated cardinality of one *element* of the produced collection —
  /// 1 for collections of scalars/tuples, the average group size for GRP
  /// output. SET_APPLY/ARR_APPLY feed this to their subscript as INPUT's
  /// cardinality, so per-group work inside an apply-over-groups plan is
  /// charged for the elements each group actually holds instead of a flat 1
  /// (which made any post-grouping pipeline look nearly free).
  double elem_cardinality = 1;
};

/// Tuning constants, exposed so ablation benches can vary them.
struct CostParams {
  double selectivity = 0.25;       // default COMP pass rate
  double dup_factor = 0.5;         // DE output/input ratio
  double groups_per_input = 0.1;   // GRP group count ratio
  double avg_inner_set = 4;        // SET_COLLAPSE fan-out
  double deref_cost = 4;           // one DEREF = this many touches
  double method_cost = 16;         // late-bound dispatch overhead
};

/// Cardinality/cost estimation over algebra trees. Named top-level objects
/// contribute *actual* cardinalities (the database is in memory — the
/// "statistics" are exact at the root), everything else is estimated.
class CostModel {
 public:
  explicit CostModel(const Database* db, CostParams params = CostParams())
      : db_(db), params_(params) {}

  Result<CostEstimate> Estimate(const ExprPtr& expr) const {
    return EstimateNode(*expr, /*input_card=*/1);
  }

  const CostParams& params() const { return params_; }

 private:
  Result<CostEstimate> EstimateNode(const Expr& e, double input_card) const;
  double PredicateCost(const Predicate& p, double input_card) const;

  const Database* db_;
  CostParams params_;
};

}  // namespace excess

#endif  // EXCESS_CORE_COST_H_
