#ifndef EXCESS_CORE_ANALYSIS_H_
#define EXCESS_CORE_ANALYSIS_H_

#include <optional>
#include <string>

#include "core/expr.h"

namespace excess {
/// Static analyses over algebra expressions used by the transformation
/// rules' side conditions (e.g. "E applies only to A" in Appendix rules 5,
/// 9, 13) and by the rule rewrites themselves (subscript composition,
/// field-prefix stripping, common-subexpression discovery).
///
/// "Free" INPUT means an INPUT occurrence not captured by a nested
/// SET_APPLY / ARR_APPLY / GRP subscript or a COMP predicate — INPUT always
/// binds to the innermost such scope, so analyses never descend into them.
namespace analysis {

/// True iff `e` contains a free INPUT occurrence.
bool ContainsFreeInput(const ExprPtr& e);

/// Substitutes `replacement` for every free INPUT in `e` — the composition
/// E1(E2) of Appendix rule 15.
ExprPtr SubstituteInput(const ExprPtr& e, const ExprPtr& replacement);

/// True iff a dne bound to INPUT is guaranteed to poison `e` to dne: some
/// free INPUT occurrence reaches the root of `e` purely through ops covered
/// by the evaluator's uniform strict null propagation (everything except
/// METHOD_CALL, which sees its arguments raw). This is the side condition
/// that keeps subscript composition (rule 15) exact: APPLY drops dne
/// results, so E1(E2(x)) may only replace the two-step pipeline when E2's
/// dne still poisons the composition — otherwise a dropped occurrence is
/// resurrected with E1's (INPUT-independent) value.
bool DneStrictInInput(const ExprPtr& e);

/// True iff `e` could evaluate to dne: contains COMP (false predicate),
/// ARR_EXTRACT (out of range), AGG (empty multiset), METHOD_CALL or
/// TUP_EXTRACT (unmodelled) at a result position, or a dne literal.
/// `input_may_be_dne` says whether the enclosing binder can feed dne
/// elements (multisets never store dne; arrays and raw values might).
bool MayProduceDne(const ExprPtr& e, bool input_may_be_dne);

/// True iff every free use of INPUT in `e` goes through
/// TUP_EXTRACT_<field>(INPUT) — the precise form of "E applies only to one
/// side of a cross product" when pairs are named _1/_2.
bool DependsOnlyOnField(const ExprPtr& e, const std::string& field);

/// Rewrites TUP_EXTRACT_<field>(INPUT) (free occurrences) to plain INPUT:
/// the E' obtained when a pairwise expression is re-targeted at one input
/// of the cross product (rules 5, 9, 13).
ExprPtr StripFieldExtract(const ExprPtr& e, const std::string& field);

/// True iff evaluating `e` cannot mutate shared state or observe evaluator
/// identity: no REF (interns into the store) and no late-bound method call
/// (arbitrary stored bodies) anywhere, including nested subscripts and
/// predicates. DEREF and VAR are reads and stay allowed. This is the gate
/// the parallel SET_APPLY/ARR_APPLY path applies to subscripts.
bool IsParallelSafe(const ExprPtr& e);

/// True iff `e` contains a COMP anywhere (including inside nested
/// subscripts) — the "E is not COMP_P" side condition of rules 19/22,
/// which we strengthen to "E cannot produce dne" since a dropped dne
/// shifts array indices.
bool ContainsComp(const ExprPtr& e);

/// True iff `e` contains a free INPUT-rooted subexpression equal to
/// `target` (deep equality).
bool ContainsSubtree(const ExprPtr& e, const ExprPtr& target);

/// Replaces every free occurrence of `target` (deep equality) in `e` with
/// `replacement`.
ExprPtr ReplaceSubtree(const ExprPtr& e, const ExprPtr& target,
                       const ExprPtr& replacement);

/// Predicate variants of the subtree helpers: atoms' operand expressions
/// are searched/rewritten (their INPUT is the COMP operand).
bool PredContainsSubtree(const PredicatePtr& p, const ExprPtr& target);
PredicatePtr PredReplaceSubtree(const PredicatePtr& p, const ExprPtr& target,
                                const ExprPtr& replacement);
bool PredDependsOnlyOnField(const PredicatePtr& p, const std::string& field);
PredicatePtr PredStripFieldExtract(const PredicatePtr& p,
                                   const std::string& field);

/// Finds a DEREF-rooted subexpression over INPUT that appears (deep-equal)
/// in both the predicate and the downstream expression — the shared work
/// that Appendix rule 26 pushes inside COMP so it is computed once
/// (Example 2, Figure 11). Returns the largest such subexpression found.
std::optional<ExprPtr> FindSharedDeref(const PredicatePtr& pred,
                                       const ExprPtr& downstream);

}  // namespace analysis
}  // namespace excess

#endif  // EXCESS_CORE_ANALYSIS_H_
