#include "core/governor.h"

#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "util/env.h"

namespace excess {

namespace {

/// Every budget trip is minted through exactly one of the functions below,
/// so counting there gives a complete governor.trips.* breakdown.
void CountTrip(const char* kind) {
  obs::MetricsRegistry::Global()
      .GetCounter(std::string("governor.trips.") + kind)
      ->Increment();
}

}  // namespace

namespace internal {

int64_t ParseLimit(const char* env, int64_t lo, int64_t hi, int64_t fallback) {
  return util::ParseEnvInt(env, lo, hi, fallback);
}

}  // namespace internal

ExecLimits ExecLimits::FromEnv(ExecLimits base) {
  // Deadlines up to one day; memory limits up to 1 TB. A knob outside its
  // range (or malformed) is ignored, matching ParsePoolSize's fallback rule.
  int64_t ms = internal::ParseLimit(std::getenv("EXCESS_DEADLINE_MS"), 1,
                                    86400000, 0);
  if (ms > 0) base.deadline_ms = ms;
  int64_t mb = internal::ParseLimit(std::getenv("EXCESS_MEM_LIMIT_MB"), 1,
                                    1 << 20, 0);
  if (mb > 0) base.max_bytes = mb * (int64_t{1} << 20);
  return base;
}

Governor::Governor(ExecLimits limits, CancelTokenPtr cancel)
    : limits_(limits), cancel_(std::move(cancel)) {
  if (limits_.deadline_ms > 0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(limits_.deadline_ms);
  }
}

Status Governor::ChargeBytes(int64_t bytes) {
  if (hooks_ != nullptr) {
    Status s = hooks_->OnCharge(bytes);
    if (!s.ok()) return s;
  }
  if (bytes <= 0) return Status::OK();
  int64_t cur = bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (cur > peak && !peak_bytes_.compare_exchange_weak(
                           peak, cur, std::memory_order_relaxed)) {
  }
  if (limits_.max_bytes > 0 && cur > limits_.max_bytes) {
    CountTrip("memory");
    return Status::ResourceExhausted(
        "memory budget exceeded: " + std::to_string(cur) + " bytes charged, " +
        std::to_string(limits_.max_bytes) + " allowed");
  }
  return Status::OK();
}

void Governor::ReleaseBytes(int64_t bytes) {
  if (bytes <= 0) return;
  int64_t cur = bytes_.load(std::memory_order_relaxed);
  while (!bytes_.compare_exchange_weak(cur, cur - (bytes < cur ? bytes : cur),
                                       std::memory_order_relaxed)) {
  }
}

Status Governor::CheckDeadline() {
  if (std::chrono::steady_clock::now() >= deadline_) {
    CountTrip("deadline");
    return Status::DeadlineExceeded("deadline of " +
                                    std::to_string(limits_.deadline_ms) +
                                    " ms exceeded");
  }
  return Status::OK();
}

Status Governor::CancelledTrip() {
  CountTrip("cancelled");
  return Status::Cancelled("query cancelled");
}

Status Governor::OccurrenceLimit(int64_t total) const {
  CountTrip("occurrences");
  return Status::ResourceExhausted(
      "occurrence budget exceeded: " + std::to_string(total) +
      " occurrences materialized, " +
      std::to_string(limits_.max_occurrences) + " allowed");
}

}  // namespace excess
