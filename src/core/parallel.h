#ifndef EXCESS_CORE_PARALLEL_H_
#define EXCESS_CORE_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace excess {

namespace internal {
/// Parses an EXCESS_THREADS-style value: the whole string must be a base-10
/// integer in [1, 256]. Anything else — null, empty, trailing garbage
/// ("4x"), zero, negative, or out of range — yields `fallback`.
int ParsePoolSize(const char* env, int fallback);
}  // namespace internal

/// A small shared worker pool for data-parallel operators (parallel
/// SET_APPLY / ARR_APPLY). The pool size comes from the EXCESS_THREADS
/// environment variable, defaulting to std::thread::hardware_concurrency();
/// a size of 1 means every ParallelFor runs inline on the caller — exactly
/// the pre-pool serial path.
///
/// The calling thread always participates as partition 0, so a pool of size
/// N keeps N-1 resident threads. Batches never nest: a ParallelFor issued
/// from inside a pool worker (a subscript that itself contains a large
/// APPLY) or while another batch is in flight runs inline, which keeps the
/// pool deadlock-free by construction.
class WorkerPool {
 public:
  /// fn(partition, begin, end): process items [begin, end) as `partition`
  /// (0-based, dense). Partitions are contiguous index ranges.
  using Body = std::function<void(int, size_t, size_t)>;

  explicit WorkerPool(int size);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// The process-wide pool (EXCESS_THREADS). Constructed on first use.
  static WorkerPool& Instance();

  /// Total partitions a batch is split into (resident threads + caller).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs `fn` over [0, n) split into at most size() contiguous ranges of
  /// at least `min_chunk` items. Blocks until every partition finished.
  /// Returns the number of partitions actually used.
  int ParallelFor(size_t n, size_t min_chunk, const Body& fn);

  /// True on the calling thread while it is executing a batch partition
  /// (pool worker or participating caller). The fault-injection harness
  /// uses this to target faults at parallel workers specifically.
  static bool InBatch();

 private:
  void WorkerLoop(int worker);
  void RunPartition(const Body& fn, size_t n, int parts, int part);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const Body* body_ = nullptr;  // non-null while a batch is in flight
  size_t batch_n_ = 0;
  int batch_parts_ = 0;
  uint64_t epoch_ = 0;   // bumped per batch so workers see fresh work
  int outstanding_ = 0;  // partitions not yet finished by pool workers
  bool stop_ = false;
};

}  // namespace excess

#endif  // EXCESS_CORE_PARALLEL_H_
