#include "core/kernels.h"

#include <unordered_map>

#include "util/string_util.h"

namespace excess {
namespace kernels {

namespace {

Status ExpectSet(const ValuePtr& v, const char* op) {
  if (v == nullptr || !v->is_set()) {
    return Status::TypeError(StrCat(op, " requires a multiset operand, got ",
                                    v ? ValueKindToString(v->kind()) : "null"));
  }
  return Status::OK();
}

Status ExpectArray(const ValuePtr& v, const char* op) {
  if (v == nullptr || !v->is_array()) {
    return Status::TypeError(StrCat(op, " requires an array operand, got ",
                                    v ? ValueKindToString(v->kind()) : "null"));
  }
  return Status::OK();
}

Status ExpectTuple(const ValuePtr& v, const char* op) {
  if (v == nullptr || !v->is_tuple()) {
    return Status::TypeError(StrCat(op, " requires a tuple operand, got ",
                                    v ? ValueKindToString(v->kind()) : "null"));
  }
  return Status::OK();
}

/// Hash index over a multiset's distinct elements. DIFF/UNION/INTERSECT
/// probe the other operand once per element of this operand; through the
/// index each probe is O(1) instead of a linear Value::CountOf scan, making
/// the kernels O(n + m). Probing small sets directly is cheaper than
/// building, so callers gate on kIndexMin distinct elements.
constexpr size_t kIndexMin = 8;

class CountIndex {
 public:
  explicit CountIndex(const ValuePtr& s) : set_(s) {
    if (s->entries().size() < kIndexMin) return;
    index_.reserve(s->entries().size());
    for (const auto& e : s->entries()) index_.emplace(e.value, e.count);
  }

  int64_t CountOf(const ValuePtr& v) const {
    if (index_.empty()) return set_->CountOf(v);
    auto it = index_.find(v);
    return it == index_.end() ? 0 : it->second;
  }

 private:
  const ValuePtr& set_;
  std::unordered_map<ValuePtr, int64_t, ValuePtrDeepHash, ValuePtrDeepEq>
      index_;
};

/// Bulk occurrence checkpoint for the linear kernels: their output size is
/// bounded by the (already-governed) input sizes, so one charge up front is
/// as protective as a per-iteration one and keeps the loops tight.
Status Bulk(Governor* gov, int64_t occurrences) {
  if (gov == nullptr) return Status::OK();
  return gov->Checkpoint(occurrences);
}

}  // namespace

Result<ValuePtr> AddUnion(const ValuePtr& a, const ValuePtr& b,
                          Governor* gov) {
  EXA_RETURN_NOT_OK(ExpectSet(a, "ADD_UNION"));
  EXA_RETURN_NOT_OK(ExpectSet(b, "ADD_UNION"));
  EXA_RETURN_NOT_OK(Bulk(gov, a->TotalCount() + b->TotalCount()));
  std::vector<SetEntry> entries = a->entries();
  const auto& be = b->entries();
  entries.insert(entries.end(), be.begin(), be.end());
  return Value::SetOfCounted(std::move(entries));
}

Result<ValuePtr> Diff(const ValuePtr& a, const ValuePtr& b, Governor* gov) {
  EXA_RETURN_NOT_OK(ExpectSet(a, "DIFF"));
  EXA_RETURN_NOT_OK(ExpectSet(b, "DIFF"));
  EXA_RETURN_NOT_OK(Bulk(gov, a->TotalCount()));
  std::vector<SetEntry> out;
  out.reserve(a->entries().size());
  CountIndex bi(b);
  for (const auto& e : a->entries()) {
    int64_t remaining = e.count - bi.CountOf(e.value);
    if (remaining > 0) out.push_back({e.value, remaining});
  }
  return Value::SetOfCounted(std::move(out));
}

Result<ValuePtr> Cross(const ValuePtr& a, const ValuePtr& b, Governor* gov) {
  EXA_RETURN_NOT_OK(ExpectSet(a, "CROSS"));
  EXA_RETURN_NOT_OK(ExpectSet(b, "CROSS"));
  std::vector<SetEntry> out;
  out.reserve(a->entries().size() * b->entries().size());
  // The quadratic loop is where adversarial plans explode; checkpoint and
  // charge *inside* it so the budget trips mid-product. Charges are batched
  // (flushed every kFlushEvery pairs) to keep governor traffic off the
  // per-pair fast path — the budget can overshoot by at most one batch.
  constexpr int kFlushEvery = 64;
  int64_t pending_occ = 0, pending_bytes = 0, pair_bytes = -1;
  int until_flush = kFlushEvery;
  for (const auto& ea : a->entries()) {
    for (const auto& eb : b->entries()) {
      ValuePtr pair = Value::TupleOf({ea.value, eb.value});
      if (gov != nullptr) {
        // Every pair tuple has the same shallow shape; size the first one.
        if (pair_bytes < 0) {
          pair_bytes =
              pair->ShallowSizeBytes() + static_cast<int64_t>(sizeof(SetEntry));
        }
        pending_occ += ea.count * eb.count;
        pending_bytes += pair_bytes;
        if (--until_flush == 0) {
          EXA_RETURN_NOT_OK(gov->Checkpoint(pending_occ));
          EXA_RETURN_NOT_OK(gov->ChargeBytes(pending_bytes));
          pending_occ = pending_bytes = 0;
          until_flush = kFlushEvery;
        }
      }
      out.push_back({std::move(pair), ea.count * eb.count});
    }
  }
  if (gov != nullptr && (pending_occ > 0 || pending_bytes > 0)) {
    EXA_RETURN_NOT_OK(gov->Checkpoint(pending_occ));
    EXA_RETURN_NOT_OK(gov->ChargeBytes(pending_bytes));
  }
  return Value::SetOfCounted(std::move(out));
}

Result<ValuePtr> DupElim(const ValuePtr& a, Governor* gov) {
  EXA_RETURN_NOT_OK(ExpectSet(a, "DE"));
  EXA_RETURN_NOT_OK(Bulk(gov, static_cast<int64_t>(a->entries().size())));
  std::vector<SetEntry> out;
  out.reserve(a->entries().size());
  for (const auto& e : a->entries()) out.push_back({e.value, 1});
  return Value::SetOfCounted(std::move(out));
}

Result<ValuePtr> SetCollapse(const ValuePtr& a, Governor* gov) {
  EXA_RETURN_NOT_OK(ExpectSet(a, "SET_COLLAPSE"));
  std::vector<SetEntry> out;
  for (const auto& outer : a->entries()) {
    if (gov != nullptr && outer.value->is_set()) {
      EXA_RETURN_NOT_OK(
          gov->Checkpoint(static_cast<int64_t>(outer.value->entries().size())));
    }
    if (!outer.value->is_set()) {
      return Status::TypeError(
          StrCat("SET_COLLAPSE requires a multiset of multisets; member is ",
                 ValueKindToString(outer.value->kind())));
    }
    for (const auto& inner : outer.value->entries()) {
      // A member multiset occurring k times contributes each of its
      // occurrences k times to the additive union.
      out.push_back({inner.value, inner.count * outer.count});
    }
  }
  return Value::SetOfCounted(std::move(out));
}

Result<ValuePtr> MaxUnion(const ValuePtr& a, const ValuePtr& b,
                          Governor* gov) {
  EXA_RETURN_NOT_OK(ExpectSet(a, "UNION"));
  EXA_RETURN_NOT_OK(ExpectSet(b, "UNION"));
  EXA_RETURN_NOT_OK(Bulk(gov, a->TotalCount() + b->TotalCount()));
  std::vector<SetEntry> out;
  CountIndex ai(a);
  CountIndex bi(b);
  for (const auto& e : a->entries()) {
    out.push_back({e.value, std::max(e.count, bi.CountOf(e.value))});
  }
  for (const auto& e : b->entries()) {
    if (ai.CountOf(e.value) == 0) out.push_back(e);
  }
  return Value::SetOfCounted(std::move(out));
}

Result<ValuePtr> MinIntersect(const ValuePtr& a, const ValuePtr& b,
                              Governor* gov) {
  EXA_RETURN_NOT_OK(ExpectSet(a, "INTERSECT"));
  EXA_RETURN_NOT_OK(ExpectSet(b, "INTERSECT"));
  EXA_RETURN_NOT_OK(Bulk(gov, a->TotalCount()));
  std::vector<SetEntry> out;
  CountIndex bi(b);
  for (const auto& e : a->entries()) {
    int64_t c = std::min(e.count, bi.CountOf(e.value));
    if (c > 0) out.push_back({e.value, c});
  }
  return Value::SetOfCounted(std::move(out));
}

Result<ValuePtr> TupCat(const ValuePtr& a, const ValuePtr& b) {
  EXA_RETURN_NOT_OK(ExpectTuple(a, "TUP_CAT"));
  EXA_RETURN_NOT_OK(ExpectTuple(b, "TUP_CAT"));
  std::vector<std::string> names = a->field_names();
  std::vector<ValuePtr> vals = a->field_values();
  names.insert(names.end(), b->field_names().begin(), b->field_names().end());
  vals.insert(vals.end(), b->field_values().begin(), b->field_values().end());
  return Value::Tuple(std::move(names), std::move(vals));
}

Result<ValuePtr> Project(const std::vector<std::string>& fields,
                         const ValuePtr& t) {
  EXA_RETURN_NOT_OK(ExpectTuple(t, "PI"));
  std::vector<std::string> names;
  std::vector<ValuePtr> vals;
  names.reserve(fields.size());
  vals.reserve(fields.size());
  for (const auto& f : fields) {
    EXA_ASSIGN_OR_RETURN(ValuePtr v, t->Field(f));
    names.push_back(f);
    vals.push_back(std::move(v));
  }
  return Value::Tuple(std::move(names), std::move(vals));
}

Result<ValuePtr> ArrCat(const ValuePtr& a, const ValuePtr& b, Governor* gov) {
  EXA_RETURN_NOT_OK(ExpectArray(a, "ARR_CAT"));
  EXA_RETURN_NOT_OK(ExpectArray(b, "ARR_CAT"));
  EXA_RETURN_NOT_OK(Bulk(gov, a->ArrayLength() + b->ArrayLength()));
  std::vector<ValuePtr> out = a->elems();
  out.insert(out.end(), b->elems().begin(), b->elems().end());
  return Value::ArrayOf(std::move(out));
}

Result<ValuePtr> ArrExtract(int64_t index, const ValuePtr& a) {
  EXA_RETURN_NOT_OK(ExpectArray(a, "ARR_EXTRACT"));
  if (index < 1 || index > a->ArrayLength()) return Value::Dne();
  return a->elems()[static_cast<size_t>(index - 1)];
}

Result<ValuePtr> SubArr(int64_t lo, int64_t hi, const ValuePtr& a,
                        Governor* gov) {
  EXA_RETURN_NOT_OK(ExpectArray(a, "SUBARR"));
  int64_t n = a->ArrayLength();
  int64_t from = std::max<int64_t>(1, lo);
  int64_t to = std::min(hi, n);
  if (to >= from) EXA_RETURN_NOT_OK(Bulk(gov, to - from + 1));
  std::vector<ValuePtr> out;
  for (int64_t i = from; i <= to; ++i) {
    out.push_back(a->elems()[static_cast<size_t>(i - 1)]);
  }
  return Value::ArrayOf(std::move(out));
}

Result<ValuePtr> ArrCollapse(const ValuePtr& a, Governor* gov) {
  EXA_RETURN_NOT_OK(ExpectArray(a, "ARR_COLLAPSE"));
  std::vector<ValuePtr> out;
  for (const auto& inner : a->elems()) {
    if (gov != nullptr && inner->is_array()) {
      EXA_RETURN_NOT_OK(gov->Checkpoint(inner->ArrayLength()));
    }
    if (!inner->is_array()) {
      return Status::TypeError(
          StrCat("ARR_COLLAPSE requires an array of arrays; element is ",
                 ValueKindToString(inner->kind())));
    }
    out.insert(out.end(), inner->elems().begin(), inner->elems().end());
  }
  return Value::ArrayOf(std::move(out));
}

Result<ValuePtr> ArrDiff(const ValuePtr& a, const ValuePtr& b,
                         Governor* gov) {
  EXA_RETURN_NOT_OK(ExpectArray(a, "ARR_DIFF"));
  EXA_RETURN_NOT_OK(ExpectArray(b, "ARR_DIFF"));
  EXA_RETURN_NOT_OK(Bulk(gov, a->ArrayLength() + b->ArrayLength()));
  // Order-preserving multiset difference: each element of B cancels the
  // first remaining equal occurrence in A.
  std::unordered_map<ValuePtr, int64_t, ValuePtrDeepHash, ValuePtrDeepEq> budget;
  for (const auto& e : b->elems()) ++budget[e];
  std::vector<ValuePtr> out;
  for (const auto& e : a->elems()) {
    auto it = budget.find(e);
    if (it != budget.end() && it->second > 0) {
      --it->second;
      continue;
    }
    out.push_back(e);
  }
  return Value::ArrayOf(std::move(out));
}

Result<ValuePtr> ArrDupElim(const ValuePtr& a, Governor* gov) {
  EXA_RETURN_NOT_OK(ExpectArray(a, "ARR_DE"));
  EXA_RETURN_NOT_OK(Bulk(gov, a->ArrayLength()));
  std::unordered_map<ValuePtr, bool, ValuePtrDeepHash, ValuePtrDeepEq> seen;
  std::vector<ValuePtr> out;
  for (const auto& e : a->elems()) {
    if (seen.emplace(e, true).second) out.push_back(e);
  }
  return Value::ArrayOf(std::move(out));
}

Result<ValuePtr> ArrCross(const ValuePtr& a, const ValuePtr& b,
                          Governor* gov) {
  EXA_RETURN_NOT_OK(ExpectArray(a, "ARR_CROSS"));
  EXA_RETURN_NOT_OK(ExpectArray(b, "ARR_CROSS"));
  std::vector<ValuePtr> out;
  out.reserve(a->elems().size() * b->elems().size());
  for (const auto& ea : a->elems()) {
    for (const auto& eb : b->elems()) {
      ValuePtr pair = Value::TupleOf({ea, eb});
      if (gov != nullptr) {
        EXA_RETURN_NOT_OK(gov->Checkpoint(1));
        EXA_RETURN_NOT_OK(gov->ChargeBytes(pair->ShallowSizeBytes()));
      }
      out.push_back(std::move(pair));
    }
  }
  return Value::ArrayOf(std::move(out));
}

Result<ValuePtr> Aggregate(const std::string& name, const ValuePtr& set,
                           Governor* gov) {
  EXA_RETURN_NOT_OK(ExpectSet(set, "AGG"));
  EXA_RETURN_NOT_OK(Bulk(gov, static_cast<int64_t>(set->entries().size())));
  if (name == "count") return Value::Int(set->TotalCount());
  if (set->entries().empty()) return Value::Dne();
  if (name == "min" || name == "max") {
    ValuePtr best = set->entries()[0].value;
    for (const auto& e : set->entries()) {
      EXA_ASSIGN_OR_RETURN(int c, Value::Compare(*e.value, *best));
      if ((name == "min" && c < 0) || (name == "max" && c > 0)) best = e.value;
    }
    return best;
  }
  if (name == "sum" || name == "avg") {
    double total = 0;
    int64_t n = 0;
    bool all_int = true;
    for (const auto& e : set->entries()) {
      if (!e.value->IsNumeric()) {
        return Status::TypeError(
            StrCat("aggregate '", name, "' over non-numeric element ",
                   e.value->ToString()));
      }
      if (e.value->kind() != ValueKind::kInt) all_int = false;
      total += e.value->NumericValue() * static_cast<double>(e.count);
      n += e.count;
    }
    if (name == "sum") {
      if (all_int) return Value::Int(static_cast<int64_t>(total));
      return Value::Float(total);
    }
    return Value::Float(total / static_cast<double>(n));
  }
  return Status::NotFound(StrCat("unknown aggregate function '", name, "'"));
}

}  // namespace kernels
}  // namespace excess
