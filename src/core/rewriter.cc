#include "core/rewriter.h"

#include "core/infer.h"
#include "obs/metrics.h"

namespace excess {

namespace {

bool IsBinderKind(OpKind k) {
  return k == OpKind::kSetApply || k == OpKind::kArrApply ||
         k == OpKind::kGroup;
}

}  // namespace

SchemaPtr Rewriter::SubscriptInputSchema(const Expr& e,
                                         const SchemaPtr& input_schema) {
  if (db_ == nullptr) return nullptr;
  TypeInference infer(db_);
  auto r = infer.Infer(e.child(0), input_schema);
  if (!r.ok()) return nullptr;
  const SchemaPtr& s = *r;
  if ((s->is_set() || s->is_arr()) && s->elem() != nullptr) return s->elem();
  return nullptr;
}

ExprPtr Rewriter::PassDirected(const ExprPtr& e, const SchemaPtr& input_schema) {
  RuleContext ctx;
  ctx.db = db_;
  ctx.input_schema = input_schema;
  for (const auto& rule : rules_.rules()) {
    if (!rule.directed) continue;
    auto result = rule.apply(e, ctx);
    if (result.has_value()) {
      applied_.push_back(rule.name);
      obs::MetricsRegistry::Global()
          .GetCounter("rules.fired." + rule.name)
          ->Increment();
      if (observer_ != nullptr) {
        observer_->OnRewrite("heuristic", rule, e, *result);
      }
      return *result;
    }
  }
  // Recurse into children.
  for (size_t i = 0; i < e->num_children(); ++i) {
    ExprPtr nc = PassDirected(e->child(i), input_schema);
    if (nc != nullptr) return e->WithChild(i, std::move(nc));
  }
  // Recurse into the subscript with the element schema.
  if (e->sub() != nullptr && IsBinderKind(e->kind())) {
    SchemaPtr elem = SubscriptInputSchema(*e, input_schema);
    ExprPtr ns = PassDirected(e->sub(), elem);
    if (ns != nullptr) return e->WithSub(std::move(ns));
  }
  // Recurse into predicate operand expressions (COMP): INPUT there is the
  // COMP operand, whose schema equals the operand's inferred schema.
  if (e->kind() == OpKind::kComp && e->pred() != nullptr) {
    SchemaPtr operand_schema;
    if (db_ != nullptr) {
      TypeInference infer(db_);
      auto r = infer.Infer(e->child(0), input_schema);
      if (r.ok()) operand_schema = *r;
    }
    // Rewrite inside atoms.
    std::function<PredicatePtr(const PredicatePtr&)> walk =
        [&](const PredicatePtr& p) -> PredicatePtr {
      switch (p->kind) {
        case Predicate::Kind::kAtom: {
          ExprPtr nl = PassDirected(p->lhs, operand_schema);
          if (nl != nullptr) return Predicate::Atom(nl, p->cmp, p->rhs);
          ExprPtr nr = PassDirected(p->rhs, operand_schema);
          if (nr != nullptr) return Predicate::Atom(p->lhs, p->cmp, nr);
          return nullptr;
        }
        case Predicate::Kind::kAnd: {
          PredicatePtr na = walk(p->a);
          if (na != nullptr) return Predicate::And(na, p->b);
          PredicatePtr nb = walk(p->b);
          if (nb != nullptr) return Predicate::And(p->a, nb);
          return nullptr;
        }
        case Predicate::Kind::kOr: {
          PredicatePtr na = walk(p->a);
          if (na != nullptr) return Predicate::Or(na, p->b);
          PredicatePtr nb = walk(p->b);
          if (nb != nullptr) return Predicate::Or(p->a, nb);
          return nullptr;
        }
        case Predicate::Kind::kNot: {
          PredicatePtr na = walk(p->a);
          if (na != nullptr) return Predicate::Not(na);
          return nullptr;
        }
        case Predicate::Kind::kTrue:
          return nullptr;
      }
      return nullptr;
    };
    PredicatePtr np = walk(e->pred());
    if (np != nullptr) {
      return MakeExpr(e->kind(), e->children(), e->sub(), np, e->literal(),
                      e->name(), e->names(), e->type_filter(), e->index(),
                      e->lo(), e->hi(), e->index_is_last(), e->lo_is_last(),
                      e->hi_is_last());
    }
  }
  return nullptr;
}

Result<ExprPtr> Rewriter::Rewrite(const ExprPtr& expr, int max_steps) {
  if (expr == nullptr) return Status::Invalid("Rewrite on null expression");
  applied_.clear();
  ExprPtr current = expr;
  for (int step = 0; step < max_steps; ++step) {
    ExprPtr next = PassDirected(current, nullptr);
    if (next == nullptr) return current;
    current = std::move(next);
  }
  return Status::Internal(
      "rewrite did not reach a fixpoint within the step budget; "
      "a directed rule pair is likely oscillating");
}

void Rewriter::Neighbors(const ExprPtr& e, const SchemaPtr& input_schema,
                         const std::function<ExprPtr(ExprPtr)>& rebuild,
                         std::vector<TaggedNeighbor>* out) {
  RuleContext ctx;
  ctx.db = db_;
  ctx.input_schema = input_schema;
  for (const auto& rule : rules_.rules()) {
    auto result = rule.apply(e, ctx);
    if (result.has_value()) out->push_back({&rule, rebuild(*result)});
  }
  for (size_t i = 0; i < e->num_children(); ++i) {
    auto rebuild_child = [&, i](ExprPtr repl) {
      return rebuild(e->WithChild(i, std::move(repl)));
    };
    Neighbors(e->child(i), input_schema, rebuild_child, out);
  }
  if (e->sub() != nullptr && IsBinderKind(e->kind())) {
    SchemaPtr elem = SubscriptInputSchema(*e, input_schema);
    auto rebuild_sub = [&](ExprPtr repl) {
      return rebuild(e->WithSub(std::move(repl)));
    };
    Neighbors(e->sub(), elem, rebuild_sub, out);
  }
}

std::vector<Rewriter::TaggedNeighbor> Rewriter::EnumerateNeighborsTagged(
    const ExprPtr& expr) {
  std::vector<TaggedNeighbor> out;
  Neighbors(expr, nullptr, [](ExprPtr e) { return e; }, &out);
  return out;
}

std::vector<ExprPtr> Rewriter::EnumerateNeighbors(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  for (auto& tagged : EnumerateNeighborsTagged(expr)) {
    out.push_back(std::move(tagged.tree));
  }
  return out;
}

}  // namespace excess
