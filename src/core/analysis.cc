#include "core/analysis.h"

#include <vector>

#include "core/builder.h"

namespace excess {
namespace analysis {

namespace {

bool IsBinder(const Expr& e) {
  return e.kind() == OpKind::kSetApply || e.kind() == OpKind::kArrApply ||
         e.kind() == OpKind::kGroup;
}

bool IsInput(const ExprPtr& e) { return e->kind() == OpKind::kInput; }

/// Children of `e` living in the enclosing INPUT scope. HASH_JOIN's and
/// IDX_JOIN's key children (2, 3) are binders like subscripts — INPUT there
/// is a join-side element, never the enclosing binding. (IDX_PROBE's binder
/// is its sub(), which — like all subscripts — is never a scoped child.)
size_t NumScopedChildren(const Expr& e) {
  return e.kind() == OpKind::kHashJoin || e.kind() == OpKind::kIndexJoin
             ? 2
             : e.num_children();
}

}  // namespace

bool ContainsFreeInput(const ExprPtr& e) {
  if (IsInput(e)) return true;
  // Subscripts and predicates rebind INPUT; only children stay free.
  for (size_t i = 0; i < NumScopedChildren(*e); ++i) {
    if (ContainsFreeInput(e->child(i))) return true;
  }
  return false;
}

ExprPtr SubstituteInput(const ExprPtr& e, const ExprPtr& replacement) {
  if (IsInput(e)) return replacement;
  bool changed = false;
  std::vector<ExprPtr> children = e->children();
  for (size_t i = 0; i < NumScopedChildren(*e); ++i) {
    ExprPtr nc = SubstituteInput(children[i], replacement);
    changed |= (nc != children[i]);
    children[i] = std::move(nc);
  }
  if (!changed) return e;
  return e->WithChildren(std::move(children));
}

bool DneStrictInInput(const ExprPtr& e) {
  if (IsInput(e)) return true;
  // The evaluator's uniform null propagation returns dne whenever any data
  // child is dne — except METHOD_CALL, whose body sees its arguments raw.
  if (e->kind() == OpKind::kMethodCall) return false;
  for (size_t i = 0; i < NumScopedChildren(*e); ++i) {
    if (DneStrictInInput(e->child(i))) return true;
  }
  return false;
}

bool MayProduceDne(const ExprPtr& e, bool input_may_be_dne) {
  switch (e->kind()) {
    case OpKind::kInput:
      return input_may_be_dne;
    case OpKind::kConst:
      return e->literal() != nullptr && e->literal()->is_dne();
    case OpKind::kComp:         // false predicate yields dne
    case OpKind::kArrExtract:   // out-of-range index yields dne
    case OpKind::kAgg:          // min/max/sum/avg of empty is dne
    case OpKind::kMethodCall:   // arbitrary stored body
    case OpKind::kTupExtract:   // a tuple field may hold dne
      return true;
    case OpKind::kArith:
    case OpKind::kTupMake:
    case OpKind::kTupCat:
    case OpKind::kProject:
    case OpKind::kSetMake:
    case OpKind::kArrMake:
      // These never create a dne of their own; only a dne data child can
      // surface one (through uniform null propagation).
      for (size_t i = 0; i < NumScopedChildren(*e); ++i) {
        if (MayProduceDne(e->child(i), input_may_be_dne)) return true;
      }
      return false;
    default:
      return true;  // anything unmodelled: assume the worst
  }
}

bool DependsOnlyOnField(const ExprPtr& e, const std::string& field) {
  if (IsInput(e)) return false;  // a bare free INPUT sees the whole pair
  if (e->kind() == OpKind::kTupExtract && e->name() == field &&
      IsInput(e->child(0))) {
    return true;
  }
  for (const auto& c : e->children()) {
    if (!DependsOnlyOnField(c, field)) return false;
  }
  return true;
}

ExprPtr StripFieldExtract(const ExprPtr& e, const std::string& field) {
  if (e->kind() == OpKind::kTupExtract && e->name() == field &&
      IsInput(e->child(0))) {
    return e->child(0);
  }
  bool changed = false;
  std::vector<ExprPtr> children;
  children.reserve(e->num_children());
  for (const auto& c : e->children()) {
    ExprPtr nc = StripFieldExtract(c, field);
    changed |= (nc != c);
    children.push_back(std::move(nc));
  }
  if (!changed) return e;
  return e->WithChildren(std::move(children));
}

namespace {

bool PredContainsComp(const PredicatePtr& p);

bool ExprContainsComp(const ExprPtr& e) {
  if (e->kind() == OpKind::kComp) return true;
  if (e->sub() != nullptr && ExprContainsComp(e->sub())) return true;
  if (e->pred() != nullptr && PredContainsComp(e->pred())) return true;
  for (const auto& c : e->children()) {
    if (ExprContainsComp(c)) return true;
  }
  return false;
}

bool PredContainsComp(const PredicatePtr& p) {
  switch (p->kind) {
    case Predicate::Kind::kAtom:
      return ExprContainsComp(p->lhs) || ExprContainsComp(p->rhs);
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      return PredContainsComp(p->a) || PredContainsComp(p->b);
    case Predicate::Kind::kNot:
      return PredContainsComp(p->a);
    case Predicate::Kind::kTrue:
      return false;
  }
  return false;
}

bool PredIsParallelSafe(const PredicatePtr& p);

bool ExprIsParallelSafe(const ExprPtr& e) {
  if (e->kind() == OpKind::kRef || e->kind() == OpKind::kMethodCall) {
    return false;
  }
  if (e->sub() != nullptr && !ExprIsParallelSafe(e->sub())) return false;
  if (e->pred() != nullptr && !PredIsParallelSafe(e->pred())) return false;
  for (const auto& c : e->children()) {
    if (!ExprIsParallelSafe(c)) return false;
  }
  return true;
}

bool PredIsParallelSafe(const PredicatePtr& p) {
  switch (p->kind) {
    case Predicate::Kind::kAtom:
      return ExprIsParallelSafe(p->lhs) && ExprIsParallelSafe(p->rhs);
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      return PredIsParallelSafe(p->a) && PredIsParallelSafe(p->b);
    case Predicate::Kind::kNot:
      return PredIsParallelSafe(p->a);
    case Predicate::Kind::kTrue:
      return true;
  }
  return false;
}

}  // namespace

bool ContainsComp(const ExprPtr& e) { return ExprContainsComp(e); }

bool IsParallelSafe(const ExprPtr& e) { return ExprIsParallelSafe(e); }

bool ContainsSubtree(const ExprPtr& e, const ExprPtr& target) {
  if (e->Equals(*target)) return true;
  if (IsBinder(*e) || e->kind() == OpKind::kComp) {
    // Free context continues only through children.
  }
  for (const auto& c : e->children()) {
    if (ContainsSubtree(c, target)) return true;
  }
  return false;
}

ExprPtr ReplaceSubtree(const ExprPtr& e, const ExprPtr& target,
                       const ExprPtr& replacement) {
  if (e->Equals(*target)) return replacement;
  bool changed = false;
  std::vector<ExprPtr> children;
  children.reserve(e->num_children());
  for (const auto& c : e->children()) {
    ExprPtr nc = ReplaceSubtree(c, target, replacement);
    changed |= (nc != c);
    children.push_back(std::move(nc));
  }
  if (!changed) return e;
  return e->WithChildren(std::move(children));
}

bool PredContainsSubtree(const PredicatePtr& p, const ExprPtr& target) {
  switch (p->kind) {
    case Predicate::Kind::kAtom:
      return ContainsSubtree(p->lhs, target) || ContainsSubtree(p->rhs, target);
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      return PredContainsSubtree(p->a, target) ||
             PredContainsSubtree(p->b, target);
    case Predicate::Kind::kNot:
      return PredContainsSubtree(p->a, target);
    case Predicate::Kind::kTrue:
      return false;
  }
  return false;
}

PredicatePtr PredReplaceSubtree(const PredicatePtr& p, const ExprPtr& target,
                                const ExprPtr& replacement) {
  switch (p->kind) {
    case Predicate::Kind::kAtom:
      return Predicate::Atom(ReplaceSubtree(p->lhs, target, replacement),
                             p->cmp,
                             ReplaceSubtree(p->rhs, target, replacement));
    case Predicate::Kind::kAnd:
      return Predicate::And(PredReplaceSubtree(p->a, target, replacement),
                            PredReplaceSubtree(p->b, target, replacement));
    case Predicate::Kind::kOr:
      return Predicate::Or(PredReplaceSubtree(p->a, target, replacement),
                           PredReplaceSubtree(p->b, target, replacement));
    case Predicate::Kind::kNot:
      return Predicate::Not(PredReplaceSubtree(p->a, target, replacement));
    case Predicate::Kind::kTrue:
      return p;
  }
  return p;
}

bool PredDependsOnlyOnField(const PredicatePtr& p, const std::string& field) {
  switch (p->kind) {
    case Predicate::Kind::kAtom:
      return DependsOnlyOnField(p->lhs, field) &&
             DependsOnlyOnField(p->rhs, field);
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      return PredDependsOnlyOnField(p->a, field) &&
             PredDependsOnlyOnField(p->b, field);
    case Predicate::Kind::kNot:
      return PredDependsOnlyOnField(p->a, field);
    case Predicate::Kind::kTrue:
      return true;
  }
  return true;
}

PredicatePtr PredStripFieldExtract(const PredicatePtr& p,
                                   const std::string& field) {
  switch (p->kind) {
    case Predicate::Kind::kAtom:
      return Predicate::Atom(StripFieldExtract(p->lhs, field), p->cmp,
                             StripFieldExtract(p->rhs, field));
    case Predicate::Kind::kAnd:
      return Predicate::And(PredStripFieldExtract(p->a, field),
                            PredStripFieldExtract(p->b, field));
    case Predicate::Kind::kOr:
      return Predicate::Or(PredStripFieldExtract(p->a, field),
                           PredStripFieldExtract(p->b, field));
    case Predicate::Kind::kNot:
      return Predicate::Not(PredStripFieldExtract(p->a, field));
    case Predicate::Kind::kTrue:
      return p;
  }
  return p;
}

namespace {

/// Collects DEREF-rooted subexpressions over a free INPUT, largest first.
void CollectDerefs(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind() == OpKind::kDeref && ContainsFreeInput(e)) {
    out->push_back(e);
  }
  for (const auto& c : e->children()) CollectDerefs(c, out);
}

void CollectPredDerefs(const PredicatePtr& p, std::vector<ExprPtr>* out) {
  switch (p->kind) {
    case Predicate::Kind::kAtom:
      CollectDerefs(p->lhs, out);
      CollectDerefs(p->rhs, out);
      return;
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      CollectPredDerefs(p->a, out);
      CollectPredDerefs(p->b, out);
      return;
    case Predicate::Kind::kNot:
      CollectPredDerefs(p->a, out);
      return;
    case Predicate::Kind::kTrue:
      return;
  }
}

}  // namespace

std::optional<ExprPtr> FindSharedDeref(const PredicatePtr& pred,
                                       const ExprPtr& downstream) {
  std::vector<ExprPtr> candidates;
  CollectPredDerefs(pred, &candidates);
  ExprPtr best;
  for (const auto& d : candidates) {
    if (!ContainsSubtree(downstream, d)) continue;
    if (best == nullptr || d->NodeCount() > best->NodeCount()) best = d;
  }
  if (best == nullptr) return std::nullopt;
  return best;
}

}  // namespace analysis
}  // namespace excess
