#include "core/cost.h"

#include <algorithm>

namespace excess {

double CostModel::PredicateCost(const Predicate& p, double input_card) const {
  switch (p.kind) {
    case Predicate::Kind::kAtom: {
      double c = 1;
      auto l = EstimateNode(*p.lhs, input_card);
      auto r = EstimateNode(*p.rhs, input_card);
      if (l.ok()) c += l->total;
      if (r.ok()) c += r->total;
      return c;
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      return PredicateCost(*p.a, input_card) + PredicateCost(*p.b, input_card);
    case Predicate::Kind::kNot:
      return PredicateCost(*p.a, input_card);
    case Predicate::Kind::kTrue:
      return 0;
  }
  return 0;
}

Result<CostEstimate> CostModel::EstimateNode(const Expr& e,
                                             double input_card) const {
  auto child = [&](size_t i) { return EstimateNode(*e.child(i), input_card); };

  switch (e.kind()) {
    case OpKind::kInput:
      return CostEstimate{input_card, 0};
    case OpKind::kConst: {
      double card = 1;
      if (e.literal() != nullptr && e.literal()->is_set()) {
        card = static_cast<double>(e.literal()->TotalCount());
      } else if (e.literal() != nullptr && e.literal()->is_array()) {
        card = static_cast<double>(e.literal()->ArrayLength());
      }
      return CostEstimate{card, 0};
    }
    case OpKind::kVar: {
      // Exact root statistics: the named object is in memory.
      double card = 1;
      auto v = db_->NamedValue(e.name());
      if (v.ok()) {
        if ((*v)->is_set()) card = static_cast<double>((*v)->TotalCount());
        if ((*v)->is_array()) card = static_cast<double>((*v)->ArrayLength());
      }
      return CostEstimate{card, card};  // a scan
    }
    case OpKind::kParam:
      return CostEstimate{1, 0};

    case OpKind::kSetApply:
    case OpKind::kArrApply: {
      EXA_ASSIGN_OR_RETURN(CostEstimate in, child(0));
      // The subscript's INPUT is one element of the input collection;
      // grouped inputs hand it a whole group's worth of occurrences.
      EXA_ASSIGN_OR_RETURN(
          CostEstimate per,
          EstimateNode(*e.sub(), /*input_card=*/in.elem_cardinality));
      double out_card = in.cardinality;
      // A COMP-rooted subscript acts as a selection.
      if (e.sub()->kind() == OpKind::kComp) out_card *= params_.selectivity;
      if (!e.type_filter().empty()) out_card *= 0.5;  // one type's share
      return CostEstimate{out_card,
                          in.total + in.cardinality * (per.total + 1)};
    }
    case OpKind::kGroup: {
      EXA_ASSIGN_OR_RETURN(CostEstimate in, child(0));
      EXA_ASSIGN_OR_RETURN(CostEstimate key,
                           EstimateNode(*e.sub(), /*input_card=*/1));
      double groups =
          std::max(1.0, in.cardinality * params_.groups_per_input);
      CostEstimate out{groups,
                       in.total + in.cardinality * (key.total + 1)};
      out.elem_cardinality = in.cardinality / groups;  // average group size
      return out;
    }
    case OpKind::kDupElim:
    case OpKind::kArrDupElim: {
      EXA_ASSIGN_OR_RETURN(CostEstimate in, child(0));
      return CostEstimate{std::max(1.0, in.cardinality * params_.dup_factor),
                          in.total + in.cardinality};
    }
    case OpKind::kCross:
    case OpKind::kArrCross: {
      EXA_ASSIGN_OR_RETURN(CostEstimate a, child(0));
      EXA_ASSIGN_OR_RETURN(CostEstimate b, child(1));
      double card = a.cardinality * b.cardinality;
      return CostEstimate{card, a.total + b.total + card};
    }
    case OpKind::kAddUnion:
    case OpKind::kArrCat: {
      EXA_ASSIGN_OR_RETURN(CostEstimate a, child(0));
      EXA_ASSIGN_OR_RETURN(CostEstimate b, child(1));
      double card = a.cardinality + b.cardinality;
      return CostEstimate{card, a.total + b.total + card};
    }
    case OpKind::kDiff:
    case OpKind::kArrDiff: {
      EXA_ASSIGN_OR_RETURN(CostEstimate a, child(0));
      EXA_ASSIGN_OR_RETURN(CostEstimate b, child(1));
      return CostEstimate{std::max(1.0, a.cardinality * 0.5),
                          a.total + b.total + a.cardinality + b.cardinality};
    }
    case OpKind::kSetCollapse:
    case OpKind::kArrCollapse: {
      EXA_ASSIGN_OR_RETURN(CostEstimate in, child(0));
      double card = in.cardinality * params_.avg_inner_set;
      return CostEstimate{card, in.total + card};
    }
    case OpKind::kSetMake:
    case OpKind::kArrMake: {
      EXA_ASSIGN_OR_RETURN(CostEstimate in, child(0));
      return CostEstimate{1, in.total + 1};
    }

    case OpKind::kProject:
    case OpKind::kTupExtract:
    case OpKind::kTupMake: {
      EXA_ASSIGN_OR_RETURN(CostEstimate in, child(0));
      return CostEstimate{1, in.total + in.live, in.live};
    }
    case OpKind::kTupCat: {
      EXA_ASSIGN_OR_RETURN(CostEstimate a, child(0));
      EXA_ASSIGN_OR_RETURN(CostEstimate b, child(1));
      double live = std::min(a.live, b.live);
      return CostEstimate{1, a.total + b.total + live, live};
    }

    case OpKind::kArrExtract: {
      EXA_ASSIGN_OR_RETURN(CostEstimate in, child(0));
      return CostEstimate{1, in.total + in.live, in.live};
    }
    case OpKind::kSubArr: {
      EXA_ASSIGN_OR_RETURN(CostEstimate in, child(0));
      double span = e.hi() >= e.lo() && !e.lo_is_last() && !e.hi_is_last()
                        ? static_cast<double>(e.hi() - e.lo() + 1)
                        : std::max(1.0, in.cardinality * 0.5);
      double card = std::min(in.cardinality, span);
      return CostEstimate{card, in.total + card};
    }

    case OpKind::kRef: {
      EXA_ASSIGN_OR_RETURN(CostEstimate in, child(0));
      return CostEstimate{1, in.total + 2 * in.live, in.live};
    }
    case OpKind::kDeref: {
      EXA_ASSIGN_OR_RETURN(CostEstimate in, child(0));
      return CostEstimate{1, in.total + params_.deref_cost * in.live,
                          in.live};
    }

    case OpKind::kComp: {
      EXA_ASSIGN_OR_RETURN(CostEstimate in, child(0));
      // Downstream work only happens when the predicate passed: liveness
      // shrinks by the selectivity, modelling uniform null propagation.
      return CostEstimate{
          in.cardinality,
          in.total + in.live * PredicateCost(*e.pred(), input_card),
          in.live * params_.selectivity};
    }

    case OpKind::kArith: {
      EXA_ASSIGN_OR_RETURN(CostEstimate a, child(0));
      EXA_ASSIGN_OR_RETURN(CostEstimate b, child(1));
      double live = std::min(a.live, b.live);
      return CostEstimate{1, a.total + b.total + live, live};
    }
    case OpKind::kAgg: {
      EXA_ASSIGN_OR_RETURN(CostEstimate in, child(0));
      return CostEstimate{1, in.total + in.cardinality};
    }
    case OpKind::kHashJoin: {
      EXA_ASSIGN_OR_RETURN(CostEstimate a, child(0));
      EXA_ASSIGN_OR_RETURN(CostEstimate b, child(1));
      // Build + probe touch each input once; θ is only re-evaluated on the
      // key-matching share of the pairs, modelled by the selectivity.
      double matches =
          std::max(1.0, a.cardinality * b.cardinality * params_.selectivity);
      double pred = PredicateCost(*e.pred(), /*input_card=*/1);
      return CostEstimate{matches, a.total + b.total + a.cardinality +
                                       b.cardinality + matches * (pred + 1)};
    }
    case OpKind::kIndexProbe: {
      EXA_ASSIGN_OR_RETURN(CostEstimate probe, child(0));
      EXA_ASSIGN_OR_RETURN(CostEstimate per,
                           EstimateNode(*e.sub(), /*input_card=*/1));
      double pred = PredicateCost(*e.pred(), /*input_card=*/1);
      // Exact base statistics, like kVar.
      double base_card = 1;
      if (!e.names().empty()) {
        auto v = db_->NamedValue(e.names()[0]);
        if (v.ok() && (*v)->is_set()) {
          base_card = static_cast<double>((*v)->TotalCount());
        }
      }
      const SecondaryIndex* idx = db_->FindIndex(e.name());
      double candidates = base_card;  // fallback is an exact scan
      if (idx != nullptr && idx->Usable()) {
        double buckets = std::max<double>(1, idx->distinct_keys());
        double avg_bucket =
            static_cast<double>(idx->keyed_total()) / buckets +
            static_cast<double>(idx->unk_entries().size());
        CmpOp cmp = static_cast<CmpOp>(e.index());
        candidates = cmp == CmpOp::kEq || cmp == CmpOp::kIn
                         ? avg_bucket
                         : base_card * params_.selectivity;  // range share
        candidates = std::max(1.0, candidates);
      }
      double out_card = std::max(1.0, base_card * params_.selectivity);
      return CostEstimate{out_card,
                          probe.total + 1 + candidates * (per.total + pred + 1)};
    }
    case OpKind::kIndexJoin: {
      EXA_ASSIGN_OR_RETURN(CostEstimate a, child(0));
      EXA_ASSIGN_OR_RETURN(CostEstimate b, child(1));
      const CostEstimate& outer = e.index() == 0 ? b : a;
      double pred = PredicateCost(*e.pred(), /*input_card=*/1);
      const SecondaryIndex* idx = db_->FindIndex(e.name());
      if (idx == nullptr || !idx->Usable()) {
        // Fallback is EvalHashJoin: same estimate as HASH_JOIN.
        double matches = std::max(
            1.0, a.cardinality * b.cardinality * params_.selectivity);
        return CostEstimate{matches, a.total + b.total + a.cardinality +
                                         b.cardinality + matches * (pred + 1)};
      }
      // The indexed side is never scanned (its subtree cost disappears);
      // each outer key probes one bucket of the index.
      double buckets = std::max<double>(1, idx->distinct_keys());
      double avg_bucket = std::max(
          1.0, static_cast<double>(idx->keyed_total()) / buckets +
                   static_cast<double>(idx->unk_entries().size()));
      double matches = std::max(1.0, outer.cardinality * avg_bucket);
      return CostEstimate{
          matches, outer.total + outer.cardinality +
                       matches * (pred + 1 + params_.deref_cost)};
    }
    case OpKind::kMethodCall: {
      double total = params_.method_cost;
      for (size_t i = 0; i < e.num_children(); ++i) {
        EXA_ASSIGN_OR_RETURN(CostEstimate c, child(i));
        total += c.total;
      }
      return CostEstimate{1, total};
    }
  }
  return Status::Internal("unknown operator kind in cost model");
}

}  // namespace excess
