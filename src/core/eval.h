#ifndef EXCESS_CORE_EVAL_H_
#define EXCESS_CORE_EVAL_H_

#include <array>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/expr.h"
#include "core/governor.h"
#include "objects/database.h"
#include "util/status.h"

namespace excess {

inline constexpr int kNumOpKinds = static_cast<int>(OpKind::kIndexJoin) + 1;

/// Late-bound method resolution (§4 strategy A): given the run-time exact
/// type of a receiver, return the stored query tree of the most specific
/// implementation of `method`. Implemented by methods::MethodRegistry;
/// declared here so the core evaluator does not depend on that library.
class MethodResolver {
 public:
  virtual ~MethodResolver() = default;
  virtual Result<ExprPtr> Resolve(const std::string& exact_type,
                                  const std::string& method) const = 0;
};

/// Instrumentation collected during evaluation. The figure benches read
/// these to check the paper's cost arguments (e.g. Fig. 8: the occurrences
/// flowing into DE drop from |S|·|E| to |S|+|E|).
struct EvalStats {
  /// Operator applications, indexed by OpKind.
  std::array<int64_t, kNumOpKinds> invocations{};
  /// Occurrences consumed per operator kind (multiset total counts / array
  /// lengths of loop-style operator inputs).
  std::array<int64_t, kNumOpKinds> occurrences{};
  /// Self wall-clock nanoseconds per operator kind (time in the operator
  /// itself, children excluded). Only populated when the evaluator's timing
  /// is enabled; under parallel APPLY the span covers the whole parallel
  /// section, so sums across kinds can exceed single-thread wall time.
  std::array<int64_t, kNumOpKinds> nanos{};
  int64_t predicate_atoms = 0;
  int64_t derefs = 0;
  /// High-water mark of governor-accounted materialized bytes (0 when no
  /// governor was attached). Merge takes the max: workers share one governor,
  /// so the peak is a property of the whole query, not a per-worker sum.
  int64_t peak_bytes = 0;

  void Clear() { *this = EvalStats(); }
  /// Accumulates `other` into this — used to fold per-worker stats from a
  /// parallel APPLY back into the owning evaluator.
  void Merge(const EvalStats& other);
  int64_t TotalInvocations() const;
  int64_t TotalOccurrences() const;
  int64_t TotalNanos() const;
  int64_t InvocationsOf(OpKind kind) const {
    return invocations[static_cast<int>(kind)];
  }
  int64_t OccurrencesOf(OpKind kind) const {
    return occurrences[static_cast<int>(kind)];
  }
  int64_t NanosOf(OpKind kind) const {
    return nanos[static_cast<int>(kind)];
  }
  std::string ToString() const;
};

/// Per-node actuals for EXPLAIN ANALYZE. Updated by the same Count() call
/// that feeds EvalStats, so for every operator kind the sum of a profile's
/// per-node invocations/occurrences over nodes of that kind equals the
/// EvalStats entry by construction — the consistency EXPLAIN ANALYZE
/// promises is an invariant, not a reconciliation.
struct NodeProfile {
  int64_t invocations = 0;
  /// Occurrences consumed, with the same per-kind accounting rules as
  /// EvalStats::occurrences.
  int64_t occurrences_in = 0;
  /// Total occurrences produced across all invocations of this node
  /// (multiset total counts / array lengths; 1 per scalar or tuple result).
  int64_t out_occurrences = 0;
  /// Self wall-clock (children excluded); only populated when the owning
  /// evaluator's timing is enabled.
  int64_t self_nanos = 0;

  void Merge(const NodeProfile& o) {
    invocations += o.invocations;
    occurrences_in += o.occurrences_in;
    out_occurrences += o.out_occurrences;
    self_nanos += o.self_nanos;
  }
};

/// A per-plan-node breakdown, keyed by node identity (Expr addresses are
/// stable: plans are immutable shared_ptr DAGs). Parallel APPLY gives each
/// worker a private profile over the *same* shared subscript tree, so
/// merging by pointer attributes worker time to the right nodes.
class PlanProfile {
 public:
  NodeProfile& At(const Expr* e) { return nodes_[e]; }
  const NodeProfile* Find(const Expr* e) const {
    auto it = nodes_.find(e);
    return it == nodes_.end() ? nullptr : &it->second;
  }
  void Merge(const PlanProfile& other) {
    for (const auto& [node, prof] : other.nodes_) nodes_[node].Merge(prof);
  }
  const std::unordered_map<const Expr*, NodeProfile>& nodes() const {
    return nodes_;
  }

 private:
  std::unordered_map<const Expr*, NodeProfile> nodes_;
};

/// The algebra interpreter. Evaluates an expression tree against a
/// Database; INPUT is bound by enclosing SET_APPLY / ARR_APPLY / GRP
/// subscripts and by COMP.
///
/// Thread-safety contract: one Evaluator instance serves one thread (stats
/// are plain counters), but any number of Evaluator instances may evaluate
/// side-effect-free expressions against the same Database concurrently —
/// Value hashes and the store's deref counter are atomic, and the parallel
/// APPLY path refuses subscripts that mutate the store (REF interning) or
/// dispatch methods. That is exactly how parallel SET_APPLY/ARR_APPLY runs:
/// one private Evaluator per worker, stats merged at the barrier.
class Evaluator {
 public:
  explicit Evaluator(Database* db, const MethodResolver* methods = nullptr)
      : db_(db), methods_(methods) {}

  /// Evaluates a closed expression (no free INPUT).
  Result<ValuePtr> Eval(const ExprPtr& expr);
  /// Evaluates with an explicit INPUT binding (used to apply subscript
  /// expressions directly, e.g. by the methods runtime and tests).
  Result<ValuePtr> EvalWithInput(const ExprPtr& expr, const ValuePtr& input);

  EvalStats& stats() { return stats_; }
  const EvalStats& stats() const { return stats_; }

  /// Per-OpKind wall-clock accounting (stats().nanos). Off by default: the
  /// two clock reads per node cost ~2% on subscript-heavy plans.
  void set_timing_enabled(bool on) { timing_enabled_ = on; }
  bool timing_enabled() const { return timing_enabled_; }

  /// Parallel SET_APPLY/ARR_APPLY. Enabled by default; only takes effect
  /// when the worker pool has more than one thread (EXCESS_THREADS), the
  /// input has at least parallel_threshold occurrences, and the subscript
  /// is parallel-safe (analysis::IsParallelSafe).
  void set_parallel_enabled(bool on) { parallel_enabled_ = on; }
  void set_parallel_threshold(size_t n) { parallel_threshold_ = n; }

  /// Attaches a per-query governor (non-owning; must outlive evaluation).
  /// Every EvalNode entry becomes a checkpoint (cancellation / deadline /
  /// budget), every fresh materialization is charged against the memory
  /// budget, and the governor's recursion limit replaces the default depth
  /// cap. Workers spawned by parallel APPLY share the same governor.
  void set_governor(Governor* governor) {
    governor_ = governor;
    max_depth_ = governor != nullptr && governor->limits().max_eval_depth > 0
                     ? governor->limits().max_eval_depth
                     : kDefaultEvalDepth;
  }
  Governor* governor() const { return governor_; }

  /// Attaches a per-node profile (non-owning; must outlive evaluation).
  /// EXPLAIN ANALYZE's data source: every Count() also lands in the profile,
  /// and node results/self-times are recorded per Expr. Enable timing too if
  /// self_nanos should be populated.
  void set_profile(PlanProfile* profile) { profile_ = profile; }
  PlanProfile* profile() const { return profile_; }

 private:
  struct Ctx {
    ValuePtr input;                          // INPUT binding (may be null)
    const std::vector<ValuePtr>* params = nullptr;  // method actuals
  };

  Result<ValuePtr> EvalNode(const Expr& e, const Ctx& ctx);
  Result<ValuePtr> EvalNodeTimed(const Expr& e, const Ctx& ctx);
  Result<ValuePtr> EvalNodeImpl(const Expr& e, const Ctx& ctx);
  Result<Truth> EvalPred(const Predicate& p, const Ctx& ctx);
  Result<Truth> EvalAtom(const Predicate& p, const Ctx& ctx);

  Result<ValuePtr> EvalSetApply(const Expr& e, const ValuePtr& in,
                                const Ctx& ctx);
  Result<ValuePtr> EvalGroup(const Expr& e, const ValuePtr& in, const Ctx& ctx);
  Result<ValuePtr> EvalArrApply(const Expr& e, const ValuePtr& in,
                                const Ctx& ctx);
  Result<ValuePtr> EvalHashJoin(const Expr& e, const Ctx& ctx);
  Result<ValuePtr> EvalIndexProbe(const Expr& e, const Ctx& ctx);
  Result<ValuePtr> EvalIndexJoin(const Expr& e, const Ctx& ctx);
  /// Exact-scan fallback for IDX_PROBE when the index is missing or
  /// unusable: SET_APPLY[COMP_θ(opnd)] semantics inline over the base set.
  Result<ValuePtr> ProbeScanFallback(const Expr& e, const ValuePtr& base,
                                     const Ctx& ctx);
  Result<ValuePtr> EvalArith(const ValuePtr& a, const ValuePtr& b,
                             const std::string& op);
  Result<ValuePtr> EvalMethodCall(const Expr& e, std::vector<ValuePtr> vals,
                                  const Ctx& ctx);

  /// True when the apply-style node should fan `n` elements out across the
  /// worker pool (pool > 1, n over threshold, subscript parallel-safe).
  bool ShouldParallelize(const Expr& e, size_t n) const;
  /// Maps `sub` over `inputs` with one private Evaluator per worker,
  /// merging their stats into stats_. outputs[i] is sub(inputs[i]).
  Status ParallelMap(const ExprPtr& sub, const Ctx& ctx,
                     const std::vector<ValuePtr>& inputs,
                     std::vector<ValuePtr>* outputs);

  void Count(const Expr& e, int64_t occurrences_in = 0) {
    ++stats_.invocations[static_cast<int>(e.kind())];
    stats_.occurrences[static_cast<int>(e.kind())] += occurrences_in;
    if (profile_ != nullptr) {
      NodeProfile& np = profile_->At(&e);
      ++np.invocations;
      np.occurrences_in += occurrences_in;
    }
  }

  /// Charges `v` against the memory budget iff this evaluation materialized
  /// it: use_count()==1 means no container/literal/database still owns it,
  /// so it must be fresh. Shared (pass-through) structure stays free.
  Status ChargeFresh(const ValuePtr& v) {
    if (governor_ == nullptr || v == nullptr || v.use_count() != 1) {
      return Status::OK();
    }
    return governor_->ChargeBytes(v->ShallowSizeBytes());
  }

  Database* db_;
  const MethodResolver* methods_;
  EvalStats stats_;
  Governor* governor_ = nullptr;
  PlanProfile* profile_ = nullptr;
  int depth_ = 0;
  int max_depth_ = kDefaultEvalDepth;
  bool timing_enabled_ = false;
  bool parallel_enabled_ = true;
  size_t parallel_threshold_ = 1024;
  int64_t child_time_ns_ = 0;  // nanos consumed by the current node's children
};

}  // namespace excess

#endif  // EXCESS_CORE_EVAL_H_
