#ifndef EXCESS_CORE_EVAL_H_
#define EXCESS_CORE_EVAL_H_

#include <array>
#include <string>
#include <vector>

#include "core/expr.h"
#include "objects/database.h"
#include "util/status.h"

namespace excess {

inline constexpr int kNumOpKinds = static_cast<int>(OpKind::kMethodCall) + 1;

/// Late-bound method resolution (§4 strategy A): given the run-time exact
/// type of a receiver, return the stored query tree of the most specific
/// implementation of `method`. Implemented by methods::MethodRegistry;
/// declared here so the core evaluator does not depend on that library.
class MethodResolver {
 public:
  virtual ~MethodResolver() = default;
  virtual Result<ExprPtr> Resolve(const std::string& exact_type,
                                  const std::string& method) const = 0;
};

/// Instrumentation collected during evaluation. The figure benches read
/// these to check the paper's cost arguments (e.g. Fig. 8: the occurrences
/// flowing into DE drop from |S|·|E| to |S|+|E|).
struct EvalStats {
  /// Operator applications, indexed by OpKind.
  std::array<int64_t, kNumOpKinds> invocations{};
  /// Occurrences consumed per operator kind (multiset total counts / array
  /// lengths of loop-style operator inputs).
  std::array<int64_t, kNumOpKinds> occurrences{};
  int64_t predicate_atoms = 0;
  int64_t derefs = 0;

  void Clear() { *this = EvalStats(); }
  int64_t TotalInvocations() const;
  int64_t TotalOccurrences() const;
  int64_t InvocationsOf(OpKind kind) const {
    return invocations[static_cast<int>(kind)];
  }
  int64_t OccurrencesOf(OpKind kind) const {
    return occurrences[static_cast<int>(kind)];
  }
  std::string ToString() const;
};

/// The algebra interpreter. Evaluates an expression tree against a
/// Database; INPUT is bound by enclosing SET_APPLY / ARR_APPLY / GRP
/// subscripts and by COMP. The evaluator is re-entrant per instance but not
/// thread-safe (stats and the store's intern table are mutated).
class Evaluator {
 public:
  explicit Evaluator(Database* db, const MethodResolver* methods = nullptr)
      : db_(db), methods_(methods) {}

  /// Evaluates a closed expression (no free INPUT).
  Result<ValuePtr> Eval(const ExprPtr& expr);
  /// Evaluates with an explicit INPUT binding (used to apply subscript
  /// expressions directly, e.g. by the methods runtime and tests).
  Result<ValuePtr> EvalWithInput(const ExprPtr& expr, const ValuePtr& input);

  EvalStats& stats() { return stats_; }
  const EvalStats& stats() const { return stats_; }

 private:
  struct Ctx {
    ValuePtr input;                          // INPUT binding (may be null)
    const std::vector<ValuePtr>* params = nullptr;  // method actuals
  };

  Result<ValuePtr> EvalNode(const Expr& e, const Ctx& ctx);
  Result<Truth> EvalPred(const Predicate& p, const Ctx& ctx);
  Result<Truth> EvalAtom(const Predicate& p, const Ctx& ctx);

  Result<ValuePtr> EvalSetApply(const Expr& e, const ValuePtr& in,
                                const Ctx& ctx);
  Result<ValuePtr> EvalGroup(const Expr& e, const ValuePtr& in, const Ctx& ctx);
  Result<ValuePtr> EvalArrApply(const Expr& e, const ValuePtr& in,
                                const Ctx& ctx);
  Result<ValuePtr> EvalArith(const ValuePtr& a, const ValuePtr& b,
                             const std::string& op);
  Result<ValuePtr> EvalMethodCall(const Expr& e, std::vector<ValuePtr> vals,
                                  const Ctx& ctx);

  void Count(const Expr& e, int64_t occurrences_in = 0) {
    ++stats_.invocations[static_cast<int>(e.kind())];
    stats_.occurrences[static_cast<int>(e.kind())] += occurrences_in;
  }

  Database* db_;
  const MethodResolver* methods_;
  EvalStats stats_;
};

}  // namespace excess

#endif  // EXCESS_CORE_EVAL_H_
