#include "core/eval.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "core/analysis.h"
#include "core/kernels.h"
#include "core/parallel.h"
#include "obs/metrics.h"
#include "util/string_util.h"

namespace excess {

namespace {

/// Occurrences a produced value represents: multiset total count, array
/// length, 1 for everything else (scalars, tuples, refs, nulls).
int64_t OutOccurrences(const ValuePtr& v) {
  if (v == nullptr) return 0;
  if (v->is_set()) return v->TotalCount();
  if (v->is_array()) return v->ArrayLength();
  return 1;
}

}  // namespace

int64_t EvalStats::TotalInvocations() const {
  int64_t n = 0;
  for (auto v : invocations) n += v;
  return n;
}

int64_t EvalStats::TotalOccurrences() const {
  int64_t n = 0;
  for (auto v : occurrences) n += v;
  return n;
}

int64_t EvalStats::TotalNanos() const {
  int64_t n = 0;
  for (auto v : nanos) n += v;
  return n;
}

void EvalStats::Merge(const EvalStats& other) {
  for (int i = 0; i < kNumOpKinds; ++i) {
    invocations[i] += other.invocations[i];
    occurrences[i] += other.occurrences[i];
    nanos[i] += other.nanos[i];
  }
  predicate_atoms += other.predicate_atoms;
  derefs += other.derefs;
  peak_bytes = std::max(peak_bytes, other.peak_bytes);
}

std::string EvalStats::ToString() const {
  std::string out;
  for (int i = 0; i < kNumOpKinds; ++i) {
    if (invocations[i] == 0) continue;
    out += StrCat(OpKindToString(static_cast<OpKind>(i)), ": ", invocations[i],
                  " calls");
    if (occurrences[i] > 0) out += StrCat(", ", occurrences[i], " occurrences");
    if (nanos[i] > 0) out += StrCat(", ", nanos[i] / 1000, " us");
    out += "\n";
  }
  out += StrCat("predicate atoms: ", predicate_atoms, "\n");
  out += StrCat("derefs: ", derefs, "\n");
  if (peak_bytes > 0) out += StrCat("peak bytes: ", peak_bytes, "\n");
  return out;
}

Result<ValuePtr> Evaluator::Eval(const ExprPtr& expr) {
  if (expr == nullptr) return Status::Invalid("Eval on null expression");
  Ctx ctx;
  auto r = EvalNode(*expr, ctx);
  if (governor_ != nullptr) {
    stats_.peak_bytes = std::max(stats_.peak_bytes, governor_->peak_bytes());
  }
  return r;
}

Result<ValuePtr> Evaluator::EvalWithInput(const ExprPtr& expr,
                                          const ValuePtr& input) {
  if (expr == nullptr) return Status::Invalid("Eval on null expression");
  Ctx ctx;
  ctx.input = input;
  auto r = EvalNode(*expr, ctx);
  if (governor_ != nullptr) {
    stats_.peak_bytes = std::max(stats_.peak_bytes, governor_->peak_bytes());
  }
  return r;
}

Result<ValuePtr> Evaluator::EvalNode(const Expr& e, const Ctx& ctx) {
  // Every node entry is a governor checkpoint: cancellation and deadlines
  // are observed even deep inside subscript evaluation, and the recursion
  // cap turns builder-made pathological plans into a typed error instead of
  // a stack overflow.
  if (depth_ >= max_depth_) {
    return Status::ResourceExhausted(
        StrCat("eval recursion depth exceeds ", max_depth_));
  }
  if (governor_ != nullptr) {
    Status s = governor_->Checkpoint();
    if (!s.ok()) return s;
  }
  ++depth_;
  auto r = timing_enabled_ ? EvalNodeTimed(e, ctx) : EvalNodeImpl(e, ctx);
  --depth_;
  if (r.ok()) {
    Status s = ChargeFresh(*r);
    if (!s.ok()) return s;
    if (profile_ != nullptr) {
      profile_->At(&e).out_occurrences += OutOccurrences(*r);
    }
  }
  return r;
}

Result<ValuePtr> Evaluator::EvalNodeTimed(const Expr& e, const Ctx& ctx) {
  auto t0 = std::chrono::steady_clock::now();
  // Children report their inclusive time through child_time_ns_; this
  // node's self time is its inclusive span minus what children consumed.
  int64_t saved = child_time_ns_;
  child_time_ns_ = 0;
  auto r = EvalNodeImpl(e, ctx);
  int64_t dt = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  stats_.nanos[static_cast<int>(e.kind())] += dt - child_time_ns_;
  if (profile_ != nullptr) profile_->At(&e).self_nanos += dt - child_time_ns_;
  child_time_ns_ = saved + dt;
  return r;
}

bool Evaluator::ShouldParallelize(const Expr& e, size_t n) const {
  return parallel_enabled_ && n >= parallel_threshold_ &&
         WorkerPool::Instance().size() > 1 &&
         analysis::IsParallelSafe(e.sub());
}

Status Evaluator::ParallelMap(const ExprPtr& sub, const Ctx& ctx,
                              const std::vector<ValuePtr>& inputs,
                              std::vector<ValuePtr>* outputs) {
  outputs->assign(inputs.size(), nullptr);
  WorkerPool& pool = WorkerPool::Instance();
  const int max_parts = pool.size();
  std::vector<EvalStats> worker_stats(static_cast<size_t>(max_parts));
  std::vector<PlanProfile> worker_profiles(
      profile_ != nullptr ? static_cast<size_t>(max_parts) : 0);
  std::vector<Status> worker_status(static_cast<size_t>(max_parts),
                                    Status::OK());
  std::atomic<bool> failed{false};
  int parts_used = pool.ParallelFor(
      inputs.size(), /*min_chunk=*/64,
      [&](int part, size_t begin, size_t end) {
        Evaluator worker(db_, methods_);
        worker.parallel_enabled_ = false;  // no nested fan-out
        // Workers share the query's governor, so budgets and cancellation
        // are global across the batch; each worker trips on its own next
        // checkpoint and the ParallelFor barrier drains the rest.
        worker.governor_ = governor_;
        worker.max_depth_ = max_depth_;
        worker.timing_enabled_ = timing_enabled_;
        // Private per-worker profile over the shared subscript tree; the
        // stable Expr addresses make the pointer-keyed merge exact.
        if (profile_ != nullptr) {
          worker.profile_ = &worker_profiles[static_cast<size_t>(part)];
        }
        Ctx inner = ctx;
        for (size_t i = begin; i < end; ++i) {
          if (failed.load(std::memory_order_relaxed)) break;
          if (governor_ != nullptr) {
            Status s = governor_->Checkpoint(1);
            if (!s.ok()) {
              worker_status[static_cast<size_t>(part)] = s;
              failed.store(true, std::memory_order_relaxed);
              break;
            }
          }
          inner.input = inputs[i];
          auto r = worker.EvalNode(*sub, inner);
          if (!r.ok()) {
            worker_status[static_cast<size_t>(part)] = r.status();
            failed.store(true, std::memory_order_relaxed);
            break;
          }
          (*outputs)[i] = std::move(*r);
        }
        worker_stats[static_cast<size_t>(part)] = worker.stats_;
      });
  for (const auto& ws : worker_stats) stats_.Merge(ws);
  for (const auto& wp : worker_profiles) profile_->Merge(wp);
  {
    // Batch utilization: how many partitions each parallel APPLY actually
    // fanned out to, and how many items it covered.
    static obs::Histogram* partitions =
        obs::MetricsRegistry::Global().GetHistogram("parallel.partitions");
    static obs::Counter* batches =
        obs::MetricsRegistry::Global().GetCounter("parallel.batches");
    static obs::Counter* items =
        obs::MetricsRegistry::Global().GetCounter("parallel.items");
    partitions->Observe(parts_used);
    batches->Increment();
    items->Increment(static_cast<int64_t>(inputs.size()));
  }
  // Deterministic error selection: lowest partition wins, so the reported
  // failure does not depend on thread scheduling.
  for (const auto& st : worker_status) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Result<ValuePtr> Evaluator::EvalSetApply(const Expr& e, const ValuePtr& in,
                                         const Ctx& ctx) {
  if (!in->is_set()) {
    return Status::TypeError(StrCat("SET_APPLY requires a multiset input, got ",
                                    ValueKindToString(in->kind())));
  }
  Count(e, in->TotalCount());
  const std::string& filter = e.type_filter();
  // A typed SET_APPLY (§4) may serve several exact types with one scan when
  // they share an implementation ("Person,Student"); split once per call.
  std::vector<std::string> accepted;
  if (!filter.empty()) {
    size_t start = 0;
    while (start <= filter.size()) {
      size_t comma = filter.find(',', start);
      if (comma == std::string::npos) {
        accepted.push_back(filter.substr(start));
        break;
      }
      accepted.push_back(filter.substr(start, comma - start));
      start = comma + 1;
    }
  }
  // Collect the surviving entries first so the parallel path can partition
  // them; the serial path walks the same list.
  std::vector<const SetEntry*> live;
  live.reserve(in->entries().size());
  for (const auto& entry : in->entries()) {
    if (!accepted.empty()) {
      // §4: a typed SET_APPLY processes only objects exactly of a listed
      // type; all others are ignored.
      std::string exact = db_->store().ExactTypeOf(entry.value);
      bool match = false;
      for (const auto& t : accepted) {
        if (t == exact) {
          match = true;
          break;
        }
      }
      if (!match) continue;
    }
    live.push_back(&entry);
  }
  std::vector<SetEntry> out;
  out.reserve(live.size());
  if (ShouldParallelize(e, live.size())) {
    std::vector<ValuePtr> inputs;
    inputs.reserve(live.size());
    for (const SetEntry* entry : live) inputs.push_back(entry->value);
    std::vector<ValuePtr> mapped;
    EXA_RETURN_NOT_OK(ParallelMap(e.sub(), ctx, inputs, &mapped));
    for (size_t i = 0; i < live.size(); ++i) {
      out.push_back({std::move(mapped[i]), live[i]->count});
    }
    return Value::SetOfCounted(std::move(out));
  }
  // Occurrence accounting is batched; cancellation / deadline are still
  // polled per element by the subscript's EvalNode entry checkpoint.
  GovernorBatch batch(governor_);
  for (const SetEntry* entry : live) {
    EXA_RETURN_NOT_OK(batch.Tick());
    Ctx inner = ctx;
    inner.input = entry->value;
    EXA_ASSIGN_OR_RETURN(ValuePtr mapped, EvalNode(*e.sub(), inner));
    out.push_back({std::move(mapped), entry->count});
  }
  EXA_RETURN_NOT_OK(batch.Flush());
  return Value::SetOfCounted(std::move(out));
}

Result<ValuePtr> Evaluator::EvalGroup(const Expr& e, const ValuePtr& in,
                                      const Ctx& ctx) {
  if (!in->is_set()) {
    return Status::TypeError(StrCat("GRP requires a multiset input, got ",
                                    ValueKindToString(in->kind())));
  }
  Count(e, in->TotalCount());
  // Partition occurrences into equivalence classes keyed by the subscript
  // expression's result. Group order follows first appearance, which is
  // irrelevant to multiset equality.
  std::unordered_map<ValuePtr, size_t, ValuePtrDeepHash, ValuePtrDeepEq> index;
  std::vector<std::vector<SetEntry>> groups;
  GovernorBatch batch(governor_);
  for (const auto& entry : in->entries()) {
    EXA_RETURN_NOT_OK(batch.Tick());
    Ctx inner = ctx;
    inner.input = entry.value;
    EXA_ASSIGN_OR_RETURN(ValuePtr key, EvalNode(*e.sub(), inner));
    auto it = index.find(key);
    if (it == index.end()) {
      index.emplace(std::move(key), groups.size());
      groups.push_back({entry});
    } else {
      groups[it->second].push_back(entry);
    }
  }
  EXA_RETURN_NOT_OK(batch.Flush());
  std::vector<SetEntry> out;
  out.reserve(groups.size());
  for (auto& g : groups) {
    ValuePtr group = Value::SetOfCounted(std::move(g));
    EXA_RETURN_NOT_OK(ChargeFresh(group));
    out.push_back({std::move(group), 1});
  }
  return Value::SetOfCounted(std::move(out));
}

Result<ValuePtr> Evaluator::EvalArrApply(const Expr& e, const ValuePtr& in,
                                         const Ctx& ctx) {
  if (!in->is_array()) {
    return Status::TypeError(StrCat("ARR_APPLY requires an array input, got ",
                                    ValueKindToString(in->kind())));
  }
  Count(e, in->ArrayLength());
  if (ShouldParallelize(e, in->elems().size())) {
    std::vector<ValuePtr> mapped;
    EXA_RETURN_NOT_OK(ParallelMap(e.sub(), ctx, in->elems(), &mapped));
    return Value::ArrayOf(std::move(mapped));
  }
  std::vector<ValuePtr> out;
  out.reserve(in->elems().size());
  GovernorBatch batch(governor_);
  for (const auto& elem : in->elems()) {
    EXA_RETURN_NOT_OK(batch.Tick());
    Ctx inner = ctx;
    inner.input = elem;
    EXA_ASSIGN_OR_RETURN(ValuePtr mapped, EvalNode(*e.sub(), inner));
    out.push_back(std::move(mapped));
  }
  EXA_RETURN_NOT_OK(batch.Flush());
  return Value::ArrayOf(std::move(out));
}

Result<ValuePtr> Evaluator::EvalArith(const ValuePtr& a, const ValuePtr& b,
                                      const std::string& op) {
  if (a->is_dne() || b->is_dne()) return Value::Dne();
  if (a->is_unk() || b->is_unk()) return Value::Unk();
  if (!a->IsNumeric() || !b->IsNumeric()) {
    if (op == "+" && a->kind() == ValueKind::kString &&
        b->kind() == ValueKind::kString) {
      return Value::Str(a->as_string() + b->as_string());
    }
    return Status::TypeError(StrCat("arithmetic '", op,
                                    "' on non-numeric operands ", a->ToString(),
                                    ", ", b->ToString()));
  }
  bool ints = a->kind() == ValueKind::kInt && b->kind() == ValueKind::kInt;
  if (op == "%") {
    if (!ints) return Status::TypeError("'%' requires integer operands");
    if (b->as_int() == 0) return Status::EvalError("modulo by zero");
    return Value::Int(a->as_int() % b->as_int());
  }
  if (ints) {
    int64_t x = a->as_int();
    int64_t y = b->as_int();
    if (op == "+") return Value::Int(x + y);
    if (op == "-") return Value::Int(x - y);
    if (op == "*") return Value::Int(x * y);
    if (op == "/") {
      if (y == 0) return Status::EvalError("division by zero");
      return Value::Int(x / y);
    }
  } else {
    double x = a->NumericValue();
    double y = b->NumericValue();
    if (op == "+") return Value::Float(x + y);
    if (op == "-") return Value::Float(x - y);
    if (op == "*") return Value::Float(x * y);
    if (op == "/") {
      if (y == 0) return Status::EvalError("division by zero");
      return Value::Float(x / y);
    }
  }
  return Status::NotFound(StrCat("unknown arithmetic operator '", op, "'"));
}

Result<ValuePtr> Evaluator::EvalMethodCall(const Expr& e,
                                           std::vector<ValuePtr> vals,
                                           const Ctx& ctx) {
  (void)ctx;
  if (methods_ == nullptr) {
    return Status::Unsupported(
        StrCat("method call '", e.name(), "' with no MethodResolver attached"));
  }
  ValuePtr receiver = vals[0];
  if (receiver->is_null()) return receiver;
  // A method defined on T may be invoked through a `ref T` as well; the
  // implicit deref mirrors EXCESS's uniform dot notation.
  if (receiver->is_ref()) {
    EXA_ASSIGN_OR_RETURN(receiver, db_->store().Deref(receiver->oid()));
    ++stats_.derefs;
  }
  std::vector<ValuePtr> args(vals.begin() + 1, vals.end());
  std::string exact = db_->store().ExactTypeOf(receiver);
  EXA_ASSIGN_OR_RETURN(ExprPtr body, methods_->Resolve(exact, e.name()));
  Ctx inner;
  inner.input = receiver;
  inner.params = &args;
  return EvalNode(*body, inner);
}

Result<ValuePtr> Evaluator::EvalNodeImpl(const Expr& e, const Ctx& ctx) {
  // Leaves first (they have no data children), then operators that bind
  // INPUT in some children and so must not evaluate them eagerly.
  switch (e.kind()) {
    case OpKind::kInput:
      Count(e);
      if (ctx.input == nullptr) {
        return Status::EvalError("INPUT used outside an apply/COMP context");
      }
      return ctx.input;
    case OpKind::kConst:
      Count(e);
      return e.literal();
    case OpKind::kVar:
      Count(e);
      return db_->NamedValue(e.name());
    case OpKind::kParam:
      Count(e);
      if (ctx.params == nullptr ||
          e.index() >= static_cast<int64_t>(ctx.params->size())) {
        return Status::EvalError(
            StrCat("method parameter $", e.index(), " is unbound"));
      }
      return (*ctx.params)[static_cast<size_t>(e.index())];
    case OpKind::kHashJoin:
      // Children 2/3 are per-element key binders, not data inputs.
      return EvalHashJoin(e, ctx);
    case OpKind::kIndexProbe:
      // Child 0 is the closed probe; sub() and θ bind per-element INPUT.
      return EvalIndexProbe(e, ctx);
    case OpKind::kIndexJoin:
      // Like HASH_JOIN, but the indexed data child is served from a
      // secondary index and may never be evaluated at all.
      return EvalIndexJoin(e, ctx);
    default:
      break;
  }

  // Evaluate all data children once, then apply uniform strict null
  // propagation: a null data input yields that null (dne dominating unk).
  // This makes the composition rules (15, 26, 27) and DEREF(REF(A)) = A
  // exact in the presence of nulls: an occurrence a multiset would drop
  // corresponds to a poisoned pipeline on the composed side. kArith
  // implements its own null handling with identical semantics.
  std::vector<ValuePtr> vals;
  vals.reserve(e.num_children());
  ValuePtr null_seen;
  for (const auto& c : e.children()) {
    EXA_ASSIGN_OR_RETURN(ValuePtr v, EvalNode(*c, ctx));
    if (v->is_dne()) null_seen = v;  // dne dominates
    if (v->is_unk() && (null_seen == nullptr || !null_seen->is_dne())) {
      null_seen = v;
    }
    vals.push_back(std::move(v));
  }
  if (null_seen != nullptr && e.kind() != OpKind::kArith &&
      e.kind() != OpKind::kMethodCall) {
    Count(e);
    return null_seen;
  }

  switch (e.kind()) {
    case OpKind::kAddUnion:
      Count(e, vals[0]->is_set() && vals[1]->is_set()
                   ? vals[0]->TotalCount() + vals[1]->TotalCount()
                   : 0);
      return kernels::AddUnion(vals[0], vals[1], governor_);
    case OpKind::kSetMake:
      Count(e);
      return Value::SetOf({vals[0]});
    case OpKind::kSetApply:
      return EvalSetApply(e, vals[0], ctx);
    case OpKind::kGroup:
      return EvalGroup(e, vals[0], ctx);
    case OpKind::kDupElim:
      Count(e, vals[0]->is_set() ? vals[0]->TotalCount() : 0);
      return kernels::DupElim(vals[0], governor_);
    case OpKind::kDiff:
      Count(e, vals[0]->is_set() && vals[1]->is_set()
                   ? vals[0]->TotalCount() + vals[1]->TotalCount()
                   : 0);
      return kernels::Diff(vals[0], vals[1], governor_);
    case OpKind::kCross:
      Count(e, vals[0]->is_set() && vals[1]->is_set()
                   ? vals[0]->TotalCount() * vals[1]->TotalCount()
                   : 0);
      return kernels::Cross(vals[0], vals[1], governor_);
    case OpKind::kSetCollapse:
      Count(e, vals[0]->is_set() ? vals[0]->TotalCount() : 0);
      return kernels::SetCollapse(vals[0], governor_);

    case OpKind::kProject:
      Count(e);
      return kernels::Project(e.names(), vals[0]);
    case OpKind::kTupCat:
      Count(e);
      return kernels::TupCat(vals[0], vals[1]);
    case OpKind::kTupExtract:
      Count(e);
      if (!vals[0]->is_tuple()) {
        return Status::TypeError(StrCat("TUP_EXTRACT<", e.name(),
                                        "> on non-tuple ",
                                        ValueKindToString(vals[0]->kind())));
      }
      return vals[0]->Field(e.name());
    case OpKind::kTupMake:
      Count(e);
      // An optional name() labels the single field (default "_1"); rule 26
      // uses this to materialize a named enrichment field.
      return Value::Tuple({e.name().empty() ? "_1" : e.name()}, {vals[0]});

    case OpKind::kArrMake:
      Count(e);
      return Value::ArrayOf({vals[0]});
    case OpKind::kArrExtract: {
      Count(e);
      if (!vals[0]->is_array()) {
        return Status::TypeError(StrCat("ARR_EXTRACT on non-array ",
                                        ValueKindToString(vals[0]->kind())));
      }
      int64_t idx = e.index_is_last() ? vals[0]->ArrayLength() : e.index();
      return kernels::ArrExtract(idx, vals[0]);
    }
    case OpKind::kArrApply:
      return EvalArrApply(e, vals[0], ctx);
    case OpKind::kSubArr: {
      if (!vals[0]->is_array()) {
        return Status::TypeError(StrCat("SUBARR on non-array ",
                                        ValueKindToString(vals[0]->kind())));
      }
      Count(e, vals[0]->ArrayLength());
      int64_t lo = e.lo_is_last() ? vals[0]->ArrayLength() : e.lo();
      int64_t hi = e.hi_is_last() ? vals[0]->ArrayLength() : e.hi();
      return kernels::SubArr(lo, hi, vals[0], governor_);
    }
    case OpKind::kArrCat:
      Count(e, (vals[0]->is_array() ? vals[0]->ArrayLength() : 0) +
                   (vals[1]->is_array() ? vals[1]->ArrayLength() : 0));
      return kernels::ArrCat(vals[0], vals[1], governor_);
    case OpKind::kArrCollapse:
      Count(e, vals[0]->is_array() ? vals[0]->ArrayLength() : 0);
      return kernels::ArrCollapse(vals[0], governor_);
    case OpKind::kArrDiff:
      Count(e, (vals[0]->is_array() ? vals[0]->ArrayLength() : 0) +
                   (vals[1]->is_array() ? vals[1]->ArrayLength() : 0));
      return kernels::ArrDiff(vals[0], vals[1], governor_);
    case OpKind::kArrDupElim:
      Count(e, vals[0]->is_array() ? vals[0]->ArrayLength() : 0);
      return kernels::ArrDupElim(vals[0], governor_);
    case OpKind::kArrCross:
      Count(e, vals[0]->is_array() && vals[1]->is_array()
                   ? vals[0]->ArrayLength() * vals[1]->ArrayLength()
                   : 0);
      return kernels::ArrCross(vals[0], vals[1], governor_);

    case OpKind::kRef: {
      Count(e);
      std::string target = e.name();
      if (target.empty()) target = db_->store().ExactTypeOf(vals[0]);
      EXA_ASSIGN_OR_RETURN(Oid oid, db_->store().InternRef(target, vals[0]));
      return Value::RefTo(oid);
    }
    case OpKind::kDeref: {
      Count(e);
      if (!vals[0]->is_ref()) {
        return Status::TypeError(StrCat("DEREF on non-reference ",
                                        ValueKindToString(vals[0]->kind())));
      }
      ++stats_.derefs;
      return db_->store().Deref(vals[0]->oid());
    }

    case OpKind::kComp: {
      Count(e);
      Ctx inner = ctx;
      inner.input = vals[0];
      EXA_ASSIGN_OR_RETURN(Truth t, EvalPred(*e.pred(), inner));
      switch (t) {
        case Truth::kTrue:
          return vals[0];
        case Truth::kUnk:
          return Value::Unk();
        case Truth::kFalse:
          return Value::Dne();
      }
      return Status::Internal("unreachable truth value");
    }

    case OpKind::kArith:
      Count(e);
      return EvalArith(vals[0], vals[1], e.name());
    case OpKind::kAgg:
      Count(e, vals[0]->is_set() ? vals[0]->TotalCount() : 0);
      return kernels::Aggregate(e.name(), vals[0], governor_);
    case OpKind::kMethodCall:
      Count(e);
      return EvalMethodCall(e, std::move(vals), ctx);

    case OpKind::kInput:
    case OpKind::kConst:
    case OpKind::kVar:
    case OpKind::kParam:
    case OpKind::kHashJoin:
    case OpKind::kIndexProbe:
    case OpKind::kIndexJoin:
      break;  // handled above
  }
  return Status::Internal("unknown operator kind");
}

Result<ValuePtr> Evaluator::EvalHashJoin(const Expr& e, const Ctx& ctx) {
  EXA_ASSIGN_OR_RETURN(ValuePtr va, EvalNode(*e.child(0), ctx));
  EXA_ASSIGN_OR_RETURN(ValuePtr vb, EvalNode(*e.child(1), ctx));
  // Uniform strict null propagation, as in the generic operator path.
  if (va->is_dne() || vb->is_dne()) {
    Count(e);
    return Value::Dne();
  }
  if (va->is_unk() || vb->is_unk()) {
    Count(e);
    return Value::Unk();
  }
  if (!va->is_set() || !vb->is_set()) {
    return Status::TypeError(StrCat("HASH_JOIN requires multiset inputs, got ",
                                    ValueKindToString(va->kind()), " and ",
                                    ValueKindToString(vb->kind())));
  }
  Count(e, va->TotalCount() + vb->TotalCount());
  if (va->entries().empty() || vb->entries().empty()) {
    return Value::EmptySet();
  }

  static obs::Counter* m_nested_loop =
      obs::MetricsRegistry::Global().GetCounter("hashjoin.nested_loop");
  static obs::Counter* m_builds =
      obs::MetricsRegistry::Global().GetCounter("hashjoin.builds");
  static obs::Counter* m_build_entries =
      obs::MetricsRegistry::Global().GetCounter("hashjoin.build_entries");
  static obs::Counter* m_probe_entries =
      obs::MetricsRegistry::Global().GetCounter("hashjoin.probe_entries");
  static obs::Counter* m_pairs =
      obs::MetricsRegistry::Global().GetCounter("hashjoin.pairs_tested");
  static obs::Histogram* m_chain =
      obs::MetricsRegistry::Global().GetHistogram("hashjoin.chain_length");
  int64_t pairs_tested = 0;

  const Predicate& theta = *e.pred();
  std::vector<SetEntry> out;
  // Evaluates the *full* predicate θ on one (a, b) pair; this is what makes
  // the operator answer-equal to SET_APPLY[COMP_θ](CROSS): true keeps the
  // pair, unk contributes unk occurrences, false drops it — exactly COMP's
  // contract followed by multiset construction dropping dne.
  GovernorBatch batch(governor_);
  int64_t pair_bytes = -1, pending_bytes = 0;
  auto emit_pair = [&](const SetEntry& ea, const SetEntry& eb) -> Status {
    ++pairs_tested;
    ValuePtr pair = Value::TupleOf({ea.value, eb.value});
    if (governor_ != nullptr) {
      // Every pair tuple has the same shallow shape; size the first one and
      // charge alongside the batched occurrence checkpoints.
      if (pair_bytes < 0) pair_bytes = pair->ShallowSizeBytes();
      pending_bytes += pair_bytes;
      EXA_RETURN_NOT_OK(batch.Tick());
      if (pending_bytes >= 4096) {
        int64_t n = pending_bytes;
        pending_bytes = 0;
        EXA_RETURN_NOT_OK(governor_->ChargeBytes(n));
      }
    }
    Ctx inner = ctx;
    inner.input = pair;
    EXA_ASSIGN_OR_RETURN(Truth t, EvalPred(theta, inner));
    switch (t) {
      case Truth::kTrue:
        out.push_back({std::move(pair), ea.count * eb.count});
        break;
      case Truth::kUnk:
        out.push_back({Value::Unk(), ea.count * eb.count});
        break;
      case Truth::kFalse:
        break;
    }
    return Status::OK();
  };

  auto flush_join_budget = [&]() -> Status {
    EXA_RETURN_NOT_OK(batch.Flush());
    if (governor_ != nullptr && pending_bytes > 0) {
      int64_t n = pending_bytes;
      pending_bytes = 0;
      EXA_RETURN_NOT_OK(governor_->ChargeBytes(n));
    }
    return Status::OK();
  };

  // Cost gate: below this the hash build does not pay for itself; run the
  // pairwise loop directly (the cross product is still never materialized).
  constexpr int64_t kNestedLoopMax = 16;
  if (std::min(va->DistinctCount(), vb->DistinctCount()) <= kNestedLoopMax) {
    for (const auto& ea : va->entries()) {
      for (const auto& eb : vb->entries()) {
        EXA_RETURN_NOT_OK(emit_pair(ea, eb));
      }
    }
    EXA_RETURN_NOT_OK(flush_join_budget());
    m_nested_loop->Increment();
    m_pairs->Increment(pairs_tested);
    return Value::SetOfCounted(std::move(out));
  }

  // Partition each side by its key: hashable (non-null key), unk-key, and
  // dne-key elements. The hash path only covers hashable × hashable — for
  // those pairs an unequal key makes the equality atom (and so the
  // conjunction θ) false, which is why skipping non-matches is exact.
  // unk-key elements must meet *every* element of the other side (the atom
  // is unk against any key, even dne — EvalAtom checks unk before dne, so
  // θ may still come out unk). dne-key elements only matter against unk
  // keys: against a non-null key the atom is false and the pair drops.
  struct Keyed {
    const SetEntry* entry;
    ValuePtr key;
  };
  auto split_side = [&](const ValuePtr& side, const ExprPtr& key_expr,
                        std::vector<Keyed>* keyed,
                        std::vector<const SetEntry*>* unk_keys,
                        std::vector<const SetEntry*>* dne_keys) -> Status {
    keyed->reserve(side->entries().size());
    for (const auto& entry : side->entries()) {
      Ctx inner = ctx;
      inner.input = entry.value;
      EXA_ASSIGN_OR_RETURN(ValuePtr k, EvalNode(*key_expr, inner));
      if (k->is_dne()) {
        dne_keys->push_back(&entry);
      } else if (k->is_unk()) {
        unk_keys->push_back(&entry);
      } else {
        keyed->push_back({&entry, std::move(k)});
      }
    }
    return Status::OK();
  };
  std::vector<Keyed> ka, kb;
  std::vector<const SetEntry*> ua, ub, da, db;
  EXA_RETURN_NOT_OK(split_side(va, e.child(2), &ka, &ua, &da));
  EXA_RETURN_NOT_OK(split_side(vb, e.child(3), &kb, &ub, &db));

  // Build on the smaller keyed side, probe with the larger.
  const bool build_left = ka.size() <= kb.size();
  const std::vector<Keyed>& build = build_left ? ka : kb;
  const std::vector<Keyed>& probe = build_left ? kb : ka;
  std::unordered_map<ValuePtr, std::vector<const SetEntry*>, ValuePtrDeepHash,
                     ValuePtrDeepEq>
      table;
  table.reserve(build.size());
  for (const auto& k : build) table[k.key].push_back(k.entry);
  m_builds->Increment();
  m_build_entries->Increment(static_cast<int64_t>(build.size()));
  m_probe_entries->Increment(static_cast<int64_t>(probe.size()));
  for (const auto& p : probe) {
    auto it = table.find(p.key);
    if (it == table.end()) continue;
    m_chain->Observe(static_cast<int64_t>(it->second.size()));
    for (const SetEntry* matched : it->second) {
      const SetEntry& ea = build_left ? *matched : *p.entry;
      const SetEntry& eb = build_left ? *p.entry : *matched;
      EXA_RETURN_NOT_OK(emit_pair(ea, eb));
    }
  }
  // unk-key fallback: ua × all of B, then the rest of A × ub (ua × ub is
  // already covered by the first loop).
  for (const SetEntry* a : ua) {
    for (const auto& eb : vb->entries()) {
      EXA_RETURN_NOT_OK(emit_pair(*a, eb));
    }
  }
  for (const SetEntry* b : ub) {
    for (const auto& k : ka) EXA_RETURN_NOT_OK(emit_pair(*k.entry, *b));
    for (const SetEntry* a : da) EXA_RETURN_NOT_OK(emit_pair(*a, *b));
  }
  EXA_RETURN_NOT_OK(flush_join_budget());
  m_pairs->Increment(pairs_tested);
  return Value::SetOfCounted(std::move(out));
}

Result<ValuePtr> Evaluator::ProbeScanFallback(const Expr& e,
                                              const ValuePtr& base,
                                              const Ctx& ctx) {
  // Uniform strict null propagation, as the logical SET_APPLY's operand
  // would trigger in the generic operator path.
  if (base->is_dne() || base->is_unk()) {
    Count(e);
    return base;
  }
  if (!base->is_set()) {
    return Status::TypeError(StrCat("SET_APPLY requires a multiset input, got ",
                                    ValueKindToString(base->kind())));
  }
  Count(e, base->TotalCount());
  std::vector<SetEntry> out;
  GovernorBatch batch(governor_);
  for (const auto& entry : base->entries()) {
    EXA_RETURN_NOT_OK(batch.Tick());
    Ctx inner = ctx;
    inner.input = entry.value;
    EXA_ASSIGN_OR_RETURN(ValuePtr o, EvalNode(*e.sub(), inner));
    if (o->is_dne()) continue;  // multiset construction drops dne
    if (o->is_unk()) {
      out.push_back({Value::Unk(), entry.count});
      continue;
    }
    Ctx pin = ctx;
    pin.input = o;
    EXA_ASSIGN_OR_RETURN(Truth t, EvalPred(*e.pred(), pin));
    if (t == Truth::kTrue) {
      out.push_back({std::move(o), entry.count});
    } else if (t == Truth::kUnk) {
      out.push_back({Value::Unk(), entry.count});
    }
  }
  EXA_RETURN_NOT_OK(batch.Flush());
  return Value::SetOfCounted(std::move(out));
}

Result<ValuePtr> Evaluator::EvalIndexProbe(const Expr& e, const Ctx& ctx) {
  static obs::Counter* m_probes =
      obs::MetricsRegistry::Global().GetCounter("index.probes");
  static obs::Counter* m_candidates =
      obs::MetricsRegistry::Global().GetCounter("index.probe_candidates");
  static obs::Counter* m_fallbacks =
      obs::MetricsRegistry::Global().GetCounter("index.probe_fallbacks");
  static obs::Histogram* m_bucket =
      obs::MetricsRegistry::Global().GetHistogram("index.bucket_size");

  const std::string& set_name = e.names().at(0);
  const SecondaryIndex* idx = db_->FindIndex(e.name());
  if (idx == nullptr || !idx->Usable() || idx->def().set_name != set_name) {
    // Missing, disabled, or extraction-failed index: exact scan, same answer.
    m_fallbacks->Increment();
    EXA_ASSIGN_OR_RETURN(ValuePtr base, db_->NamedValue(set_name));
    return ProbeScanFallback(e, base, ctx);
  }

  m_probes->Increment();
  // The logical SET_APPLY over an empty base never evaluates its subscript —
  // and so never the probe expression θ embeds. Return before touching it.
  if (idx->entry_total() == 0) {
    Count(e);
    return Value::EmptySet();
  }

  auto probe_r = EvalNode(*e.child(0), ctx);
  if (!probe_r.ok()) {
    // θ may short-circuit before its indexed atom on every element (∧ stops
    // at the first false conjunct), in which case the logical plan never
    // evaluates the probe expression at all — so a failing probe must not
    // fail the operator outright. The scan reproduces the logical error
    // behavior exactly; a governor trip re-trips on its first checkpoint.
    m_fallbacks->Increment();
    EXA_ASSIGN_OR_RETURN(ValuePtr base, db_->NamedValue(set_name));
    return ProbeScanFallback(e, base, ctx);
  }
  ValuePtr probe = std::move(*probe_r);
  Count(e, idx->entry_total());

  std::vector<SetEntry> out;
  GovernorBatch batch(governor_);
  int64_t candidates = 0;
  // Per-element contract of SET_APPLY[COMP_θ(opnd)]: evaluate the operand
  // binder on the element, propagate its nulls (dne drops, unk survives as
  // an unk occurrence), then COMP's θ on the operand result. Skipping a
  // non-matching bucket is exact because its indexed atom is false, which
  // makes the conjunction θ false and COMP yield dne.
  auto emit = [&](const SetEntry& entry) -> Status {
    ++candidates;
    EXA_RETURN_NOT_OK(batch.Tick());
    Ctx inner = ctx;
    inner.input = entry.value;
    EXA_ASSIGN_OR_RETURN(ValuePtr o, EvalNode(*e.sub(), inner));
    if (o->is_dne()) return Status::OK();
    if (o->is_unk()) {
      out.push_back({Value::Unk(), entry.count});
      return Status::OK();
    }
    Ctx pin = ctx;
    pin.input = o;
    EXA_ASSIGN_OR_RETURN(Truth t, EvalPred(*e.pred(), pin));
    if (t == Truth::kTrue) {
      out.push_back({std::move(o), entry.count});
    } else if (t == Truth::kUnk) {
      out.push_back({Value::Unk(), entry.count});
    }
    return Status::OK();
  };
  auto emit_all = [&](const std::vector<SetEntry>& entries) -> Status {
    for (const auto& entry : entries) EXA_RETURN_NOT_OK(emit(entry));
    return Status::OK();
  };
  // Every element of the base set, straight out of the index partitions.
  auto full_scan = [&]() -> Status {
    if (idx->def().kind == IndexKind::kHash) {
      for (const auto& kv : idx->hash_buckets()) {
        EXA_RETURN_NOT_OK(emit_all(kv.second.entries));
      }
    } else {
      for (const auto& kv : idx->ordered_buckets()) {
        EXA_RETURN_NOT_OK(emit_all(kv.second.entries));
      }
    }
    EXA_RETURN_NOT_OK(emit_all(idx->unk_entries()));
    return emit_all(idx->dne_entries());
  };

  CmpOp cmp = static_cast<CmpOp>(e.index());
  if (probe->is_unk()) {
    // The indexed atom is unk against every key; θ can still come out false
    // through another conjunct, so every element must be examined.
    EXA_RETURN_NOT_OK(full_scan());
  } else if (probe->is_dne()) {
    // The atom is false against any non-null key (dne matches nothing) and
    // unk against an unk key: only the unk partition can survive.
    EXA_RETURN_NOT_OK(emit_all(idx->unk_entries()));
  } else {
    switch (cmp) {
      case CmpOp::kEq: {
        const SecondaryIndex::Bucket* b = idx->EqBucket(probe);
        if (b != nullptr) {
          m_bucket->Observe(static_cast<int64_t>(b->entries.size()));
          EXA_RETURN_NOT_OK(emit_all(b->entries));
        }
        EXA_RETURN_NOT_OK(emit_all(idx->unk_entries()));
        break;
      }
      case CmpOp::kIn: {
        if (!probe->is_set()) {
          // 'in' against a non-set raises a per-element type error; the
          // scan reproduces it on the first candidate.
          EXA_RETURN_NOT_OK(full_scan());
          break;
        }
        // Distinct probe members can land in one ordered bucket (ordered
        // equivalence groups cross-kind numerics); visit each bucket once.
        std::unordered_set<const SecondaryIndex::Bucket*> seen;
        for (const auto& member : probe->entries()) {
          if (member.value->is_unk() || member.value->is_dne()) continue;
          const SecondaryIndex::Bucket* b = idx->EqBucket(member.value);
          if (b == nullptr || !seen.insert(b).second) continue;
          m_bucket->Observe(static_cast<int64_t>(b->entries.size()));
          EXA_RETURN_NOT_OK(emit_all(b->entries));
        }
        EXA_RETURN_NOT_OK(emit_all(idx->unk_entries()));
        break;
      }
      case CmpOp::kLt:
      case CmpOp::kLe:
      case CmpOp::kGt:
      case CmpOp::kGe: {
        bool less = cmp == CmpOp::kLt || cmp == CmpOp::kLe;
        bool inclusive = cmp == CmpOp::kLe || cmp == CmpOp::kGe;
        std::vector<const SecondaryIndex::Bucket*> range;
        if (!idx->OrderedRange(probe, less, inclusive, &range)) {
          // Mixed key families or a NaN probe: ordering against the probe
          // is not total, so nothing can be skipped.
          EXA_RETURN_NOT_OK(full_scan());
          break;
        }
        for (const SecondaryIndex::Bucket* b : range) {
          m_bucket->Observe(static_cast<int64_t>(b->entries.size()));
          EXA_RETURN_NOT_OK(emit_all(b->entries));
        }
        EXA_RETURN_NOT_OK(emit_all(idx->unk_entries()));
        break;
      }
      case CmpOp::kNe:
        // Never lowered to a probe; defensively examine everything.
        EXA_RETURN_NOT_OK(full_scan());
        break;
    }
  }
  EXA_RETURN_NOT_OK(batch.Flush());
  m_candidates->Increment(candidates);
  return Value::SetOfCounted(std::move(out));
}

Result<ValuePtr> Evaluator::EvalIndexJoin(const Expr& e, const Ctx& ctx) {
  static obs::Counter* m_joins =
      obs::MetricsRegistry::Global().GetCounter("index.joins");
  static obs::Counter* m_join_candidates =
      obs::MetricsRegistry::Global().GetCounter("index.join_candidates");
  static obs::Counter* m_fallbacks =
      obs::MetricsRegistry::Global().GetCounter("index.join_fallbacks");

  const size_t indexed_side = e.index() == 0 ? 0 : 1;
  const size_t outer_side = indexed_side == 0 ? 1 : 0;
  const SecondaryIndex* idx = db_->FindIndex(e.name());

  // Re-derive the indexed child's shape: Var(S) serves elements raw; a
  // mapping SET_APPLY(sub, Var(S)) applies `sub` to each candidate.
  const ExprPtr& ichild = e.child(indexed_side);
  std::string set_name;
  ExprPtr transform;
  if (ichild->kind() == OpKind::kVar) {
    set_name = ichild->name();
  } else if (ichild->kind() == OpKind::kSetApply &&
             ichild->type_filter().empty() &&
             ichild->child(0)->kind() == OpKind::kVar) {
    set_name = ichild->child(0)->name();
    transform = ichild->sub();
  }
  if (idx == nullptr || !idx->Usable() || set_name.empty() ||
      idx->def().set_name != set_name) {
    // The children share HASH_JOIN's layout, so the hash path is the exact
    // fallback (it evaluates the indexed child like any other input).
    m_fallbacks->Increment();
    return EvalHashJoin(e, ctx);
  }

  EXA_ASSIGN_OR_RETURN(ValuePtr outer, EvalNode(*e.child(outer_side), ctx));
  if (outer->is_dne()) {
    Count(e);
    return Value::Dne();
  }
  if (outer->is_unk()) {
    Count(e);
    return Value::Unk();
  }
  if (!outer->is_set()) {
    return Status::TypeError(StrCat("IDX_JOIN requires multiset inputs, got ",
                                    ValueKindToString(outer->kind())));
  }
  m_joins->Increment();
  Count(e, outer->TotalCount() + idx->entry_total());
  if (outer->entries().empty() || idx->entry_total() == 0) {
    return Value::EmptySet();
  }

  const Predicate& theta = *e.pred();
  std::vector<SetEntry> out;
  int64_t candidates = 0;
  GovernorBatch batch(governor_);
  int64_t pair_bytes = -1, pending_bytes = 0;
  // Same contract as EvalHashJoin's emit_pair: the full θ runs on every
  // candidate pair, which keeps the operator answer-equal to
  // SET_APPLY[COMP_θ](CROSS) no matter how coarse the bucket match was.
  auto emit_pair = [&](const SetEntry& ea, const SetEntry& eb) -> Status {
    ++candidates;
    ValuePtr pair = Value::TupleOf({ea.value, eb.value});
    if (governor_ != nullptr) {
      if (pair_bytes < 0) pair_bytes = pair->ShallowSizeBytes();
      pending_bytes += pair_bytes;
      EXA_RETURN_NOT_OK(batch.Tick());
      if (pending_bytes >= 4096) {
        int64_t n = pending_bytes;
        pending_bytes = 0;
        EXA_RETURN_NOT_OK(governor_->ChargeBytes(n));
      }
    }
    Ctx inner = ctx;
    inner.input = pair;
    EXA_ASSIGN_OR_RETURN(Truth t, EvalPred(theta, inner));
    switch (t) {
      case Truth::kTrue:
        out.push_back({std::move(pair), ea.count * eb.count});
        break;
      case Truth::kUnk:
        out.push_back({Value::Unk(), ea.count * eb.count});
        break;
      case Truth::kFalse:
        break;
    }
    return Status::OK();
  };
  // Candidates come out of the index raw; the indexed child's per-element
  // mapping (if any) runs only on them — never running it over the rest of
  // the base set is the operator's win.
  auto emit_candidate = [&](const SetEntry& outer_entry,
                            const SetEntry& cand) -> Status {
    SetEntry mapped = cand;
    if (transform != nullptr) {
      Ctx inner = ctx;
      inner.input = cand.value;
      EXA_ASSIGN_OR_RETURN(ValuePtr t, EvalNode(*transform, inner));
      // A dne mapping means multiset construction would have dropped this
      // element from the logical side: no pair exists for it.
      if (t->is_dne()) return Status::OK();
      mapped.value = std::move(t);
    }
    return indexed_side == 0 ? emit_pair(mapped, outer_entry)
                             : emit_pair(outer_entry, mapped);
  };

  // Split the outer side by its key binder, as EvalHashJoin does.
  struct Keyed {
    const SetEntry* entry;
    ValuePtr key;
  };
  std::vector<Keyed> keyed;
  std::vector<const SetEntry*> unk_keys, dne_keys;
  keyed.reserve(outer->entries().size());
  for (const auto& entry : outer->entries()) {
    Ctx inner = ctx;
    inner.input = entry.value;
    EXA_ASSIGN_OR_RETURN(ValuePtr k, EvalNode(*e.child(2 + outer_side), inner));
    if (k->is_dne()) {
      dne_keys.push_back(&entry);
    } else if (k->is_unk()) {
      unk_keys.push_back(&entry);
    } else {
      keyed.push_back({&entry, std::move(k)});
    }
  }

  // Partition coverage mirrors EvalHashJoin: keyed outer entries probe their
  // bucket; the index's unk partition meets every outer element (the atom is
  // unk against any key); the index's dne partition only meets unk-keyed
  // outer elements; unk-keyed outer elements meet the whole indexed set.
  for (const auto& k : keyed) {
    const SecondaryIndex::Bucket* b = idx->EqBucket(k.key);
    if (b != nullptr) {
      for (const auto& cand : b->entries) {
        EXA_RETURN_NOT_OK(emit_candidate(*k.entry, cand));
      }
    }
    for (const auto& cand : idx->unk_entries()) {
      EXA_RETURN_NOT_OK(emit_candidate(*k.entry, cand));
    }
  }
  for (const SetEntry* d : dne_keys) {
    for (const auto& cand : idx->unk_entries()) {
      EXA_RETURN_NOT_OK(emit_candidate(*d, cand));
    }
  }
  auto all_indexed = [&](const SetEntry& outer_entry) -> Status {
    if (idx->def().kind == IndexKind::kHash) {
      for (const auto& kv : idx->hash_buckets()) {
        for (const auto& cand : kv.second.entries) {
          EXA_RETURN_NOT_OK(emit_candidate(outer_entry, cand));
        }
      }
    } else {
      for (const auto& kv : idx->ordered_buckets()) {
        for (const auto& cand : kv.second.entries) {
          EXA_RETURN_NOT_OK(emit_candidate(outer_entry, cand));
        }
      }
    }
    for (const auto& cand : idx->unk_entries()) {
      EXA_RETURN_NOT_OK(emit_candidate(outer_entry, cand));
    }
    for (const auto& cand : idx->dne_entries()) {
      EXA_RETURN_NOT_OK(emit_candidate(outer_entry, cand));
    }
    return Status::OK();
  };
  for (const SetEntry* u : unk_keys) {
    EXA_RETURN_NOT_OK(all_indexed(*u));
  }

  EXA_RETURN_NOT_OK(batch.Flush());
  if (governor_ != nullptr && pending_bytes > 0) {
    int64_t n = pending_bytes;
    pending_bytes = 0;
    EXA_RETURN_NOT_OK(governor_->ChargeBytes(n));
  }
  m_join_candidates->Increment(candidates);
  return Value::SetOfCounted(std::move(out));
}

namespace {

Truth Conj(Truth a, Truth b) {
  if (a == Truth::kFalse || b == Truth::kFalse) return Truth::kFalse;
  if (a == Truth::kUnk || b == Truth::kUnk) return Truth::kUnk;
  return Truth::kTrue;
}

Truth Disj(Truth a, Truth b) {
  if (a == Truth::kTrue || b == Truth::kTrue) return Truth::kTrue;
  if (a == Truth::kUnk || b == Truth::kUnk) return Truth::kUnk;
  return Truth::kFalse;
}

Truth Neg(Truth a) {
  if (a == Truth::kUnk) return Truth::kUnk;
  return a == Truth::kTrue ? Truth::kFalse : Truth::kTrue;
}

}  // namespace

Result<Truth> Evaluator::EvalAtom(const Predicate& p, const Ctx& ctx) {
  ++stats_.predicate_atoms;
  EXA_ASSIGN_OR_RETURN(ValuePtr a, EvalNode(*p.lhs, ctx));
  EXA_ASSIGN_OR_RETURN(ValuePtr b, EvalNode(*p.rhs, ctx));
  // Null semantics (after [Gott88]): unk makes the comparison unknown; dne
  // makes it false (a value that does not exist matches nothing).
  if (a->is_unk() || b->is_unk()) return Truth::kUnk;
  if (a->is_dne() || b->is_dne()) return Truth::kFalse;
  switch (p.cmp) {
    case CmpOp::kEq:
      return a->Equals(*b) ? Truth::kTrue : Truth::kFalse;
    case CmpOp::kNe:
      return a->Equals(*b) ? Truth::kFalse : Truth::kTrue;
    case CmpOp::kIn: {
      if (!b->is_set()) {
        return Status::TypeError(
            StrCat("'in' requires a multiset right-hand side, got ",
                   ValueKindToString(b->kind())));
      }
      return b->CountOf(a) > 0 ? Truth::kTrue : Truth::kFalse;
    }
    case CmpOp::kLt:
    case CmpOp::kLe:
    case CmpOp::kGt:
    case CmpOp::kGe: {
      EXA_ASSIGN_OR_RETURN(int c, Value::Compare(*a, *b));
      switch (p.cmp) {
        case CmpOp::kLt:
          return c < 0 ? Truth::kTrue : Truth::kFalse;
        case CmpOp::kLe:
          return c <= 0 ? Truth::kTrue : Truth::kFalse;
        case CmpOp::kGt:
          return c > 0 ? Truth::kTrue : Truth::kFalse;
        default:
          return c >= 0 ? Truth::kTrue : Truth::kFalse;
      }
    }
  }
  return Status::Internal("unknown comparator");
}

Result<Truth> Evaluator::EvalPred(const Predicate& p, const Ctx& ctx) {
  switch (p.kind) {
    case Predicate::Kind::kAtom:
      return EvalAtom(p, ctx);
    case Predicate::Kind::kAnd: {
      EXA_ASSIGN_OR_RETURN(Truth a, EvalPred(*p.a, ctx));
      if (a == Truth::kFalse) return Truth::kFalse;  // short-circuit
      EXA_ASSIGN_OR_RETURN(Truth b, EvalPred(*p.b, ctx));
      return Conj(a, b);
    }
    case Predicate::Kind::kOr: {
      EXA_ASSIGN_OR_RETURN(Truth a, EvalPred(*p.a, ctx));
      if (a == Truth::kTrue) return Truth::kTrue;  // short-circuit
      EXA_ASSIGN_OR_RETURN(Truth b, EvalPred(*p.b, ctx));
      return Disj(a, b);
    }
    case Predicate::Kind::kNot: {
      EXA_ASSIGN_OR_RETURN(Truth a, EvalPred(*p.a, ctx));
      return Neg(a);
    }
    case Predicate::Kind::kTrue:
      return Truth::kTrue;
  }
  return Status::Internal("unknown predicate kind");
}

}  // namespace excess
