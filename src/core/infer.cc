#include "core/infer.h"

#include "util/string_util.h"

namespace excess {

SchemaPtr SchemaOfValue(const ValuePtr& value, const ObjectStore* store) {
  if (value == nullptr) return AnySchema();
  switch (value->kind()) {
    case ValueKind::kInt:
      return IntSchema();
    case ValueKind::kFloat:
      return FloatSchema();
    case ValueKind::kString:
      return StringSchema();
    case ValueKind::kBool:
      return BoolSchema();
    case ValueKind::kDate:
      return DateSchema();
    case ValueKind::kDne:
    case ValueKind::kUnk:
      return AnySchema();
    case ValueKind::kTuple: {
      std::vector<Field> fields;
      fields.reserve(value->num_fields());
      for (size_t i = 0; i < value->num_fields(); ++i) {
        fields.push_back({value->field_names()[i],
                          SchemaOfValue(value->field_values()[i], store)});
      }
      SchemaPtr s = Schema::Tup(std::move(fields));
      if (!value->type_tag().empty()) s = Schema::Named(s, value->type_tag());
      return s;
    }
    case ValueKind::kSet: {
      SchemaPtr elem;
      for (const auto& e : value->entries()) {
        SchemaPtr s = SchemaOfValue(e.value, store);
        if (elem == nullptr) {
          elem = s;
        } else if (!elem->CompatibleWith(*s)) {
          elem = AnySchema();
          break;
        }
      }
      return Schema::Set(elem != nullptr ? elem : AnySchema());
    }
    case ValueKind::kArray: {
      SchemaPtr elem;
      for (const auto& e : value->elems()) {
        SchemaPtr s = SchemaOfValue(e, store);
        if (elem == nullptr) {
          elem = s;
        } else if (!elem->CompatibleWith(*s)) {
          elem = AnySchema();
          break;
        }
      }
      return Schema::Arr(elem != nullptr ? elem : AnySchema());
    }
    case ValueKind::kRef: {
      std::string target;
      if (store != nullptr) {
        auto r = store->ExactType(value->oid());
        if (r.ok()) target = *r;
      }
      return Schema::Ref(target.empty() ? "$anon" : target);
    }
  }
  return AnySchema();
}

Result<SchemaPtr> TypeInference::Infer(const ExprPtr& expr, SchemaPtr input) {
  if (expr == nullptr) return Status::Invalid("Infer on null expression");
  return InferNode(*expr, input);
}

namespace {

bool IsAny(const SchemaPtr& s) {
  return s->is_val() && s->scalar_kind() == ScalarKind::kAny;
}

Status ExpectCtor(const SchemaPtr& s, TypeCtor ctor, const char* op) {
  if (IsAny(s)) return Status::OK();  // dynamic: checked again at run time
  if (s->ctor() != ctor) {
    return Status::TypeError(StrCat(op, " requires a ", TypeCtorToString(ctor),
                                    " input, got ", s->ToString()));
  }
  return Status::OK();
}

/// Element schema of a set/array schema, tolerating `any`.
SchemaPtr ElemOf(const SchemaPtr& s) {
  if (IsAny(s)) return AnySchema();
  return s->elem();
}

/// Merges two compatible schemas, preferring the more specific (non-any).
SchemaPtr MergeSchemas(const SchemaPtr& a, const SchemaPtr& b) {
  return IsAny(a) ? b : a;
}

}  // namespace

Status TypeInference::CheckPredicate(const Predicate& p, const SchemaPtr& input) {
  if (depth_ >= kMaxDepth) {
    return Status::ResourceExhausted("predicate nesting too deep to infer");
  }
  DepthGuard guard(&depth_);
  switch (p.kind) {
    case Predicate::Kind::kAtom: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr lhs, Infer(p.lhs, input));
      EXA_ASSIGN_OR_RETURN(SchemaPtr rhs, Infer(p.rhs, input));
      if (p.cmp == CmpOp::kIn) {
        EXA_RETURN_NOT_OK(ExpectCtor(rhs, TypeCtor::kSet, "'in'"));
        return Status::OK();
      }
      if (p.cmp != CmpOp::kEq && p.cmp != CmpOp::kNe) {
        // Ordering comparators need ordered scalars.
        auto ordered = [](const SchemaPtr& s) {
          return IsAny(s) || (s->is_val() && s->scalar_kind() != ScalarKind::kBool);
        };
        if (!ordered(lhs) || !ordered(rhs)) {
          return Status::TypeError(
              StrCat("ordering comparison over non-scalar operands: ",
                     lhs->ToString(), " vs ", rhs->ToString()));
        }
      }
      return Status::OK();
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      EXA_RETURN_NOT_OK(CheckPredicate(*p.a, input));
      return CheckPredicate(*p.b, input);
    case Predicate::Kind::kNot:
      return CheckPredicate(*p.a, input);
    case Predicate::Kind::kTrue:
      return Status::OK();
  }
  return Status::Internal("unknown predicate kind");
}

Result<SchemaPtr> TypeInference::InferNode(const Expr& e, const SchemaPtr& input) {
  if (depth_ >= kMaxDepth) {
    return Status::ResourceExhausted("plan nesting too deep to infer");
  }
  DepthGuard guard(&depth_);
  switch (e.kind()) {
    case OpKind::kInput:
      if (input == nullptr) {
        return Status::TypeError("INPUT used outside an apply/COMP context");
      }
      return input;
    case OpKind::kConst:
      return SchemaOfValue(e.literal(), db_ ? &db_->store() : nullptr);
    case OpKind::kVar:
      return db_->NamedSchema(e.name());
    case OpKind::kParam:
      return AnySchema();

    case OpKind::kAddUnion:
    case OpKind::kDiff: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr a, InferNode(*e.child(0), input));
      EXA_ASSIGN_OR_RETURN(SchemaPtr b, InferNode(*e.child(1), input));
      EXA_RETURN_NOT_OK(ExpectCtor(a, TypeCtor::kSet, OpKindToString(e.kind())));
      EXA_RETURN_NOT_OK(ExpectCtor(b, TypeCtor::kSet, OpKindToString(e.kind())));
      if (!IsAny(a) && !IsAny(b) && !a->elem()->CompatibleWith(*b->elem())) {
        return Status::TypeError(
            StrCat(OpKindToString(e.kind()), " over incompatible multisets ",
                   a->ToString(), " and ", b->ToString()));
      }
      return MergeSchemas(a, b);
    }
    case OpKind::kSetMake: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr x, InferNode(*e.child(0), input));
      return Schema::Set(std::move(x));
    }
    case OpKind::kSetApply: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr in, InferNode(*e.child(0), input));
      EXA_RETURN_NOT_OK(ExpectCtor(in, TypeCtor::kSet, "SET_APPLY"));
      SchemaPtr elem = ElemOf(in);
      if (!e.type_filter().empty() && db_ != nullptr &&
          db_->catalog().HasType(e.type_filter())) {
        // §4: inside a typed SET_APPLY the element is known to be exactly
        // of the filter type, so the subscript sees its effective schema
        // (through a ref if the collection holds references).
        EXA_ASSIGN_OR_RETURN(SchemaPtr exact,
                             db_->catalog().EffectiveSchema(e.type_filter()));
        if (!elem->is_ref()) elem = exact;
      }
      EXA_ASSIGN_OR_RETURN(SchemaPtr out, Infer(e.sub(), elem));
      return Schema::Set(std::move(out));
    }
    case OpKind::kGroup: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr in, InferNode(*e.child(0), input));
      EXA_RETURN_NOT_OK(ExpectCtor(in, TypeCtor::kSet, "GRP"));
      // The grouping expression must itself type-check over an element.
      EXA_RETURN_NOT_OK(Infer(e.sub(), ElemOf(in)).status());
      return Schema::Set(Schema::Set(ElemOf(in)));
    }
    case OpKind::kDupElim: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr in, InferNode(*e.child(0), input));
      EXA_RETURN_NOT_OK(ExpectCtor(in, TypeCtor::kSet, "DE"));
      return in;
    }
    case OpKind::kCross: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr a, InferNode(*e.child(0), input));
      EXA_ASSIGN_OR_RETURN(SchemaPtr b, InferNode(*e.child(1), input));
      EXA_RETURN_NOT_OK(ExpectCtor(a, TypeCtor::kSet, "CROSS"));
      EXA_RETURN_NOT_OK(ExpectCtor(b, TypeCtor::kSet, "CROSS"));
      return Schema::Set(
          Schema::Tup({{"_1", ElemOf(a)}, {"_2", ElemOf(b)}}));
    }
    case OpKind::kHashJoin: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr a, InferNode(*e.child(0), input));
      EXA_ASSIGN_OR_RETURN(SchemaPtr b, InferNode(*e.child(1), input));
      EXA_RETURN_NOT_OK(ExpectCtor(a, TypeCtor::kSet, "HASH_JOIN"));
      EXA_RETURN_NOT_OK(ExpectCtor(b, TypeCtor::kSet, "HASH_JOIN"));
      // The key expressions must type-check over an element of their side.
      EXA_RETURN_NOT_OK(Infer(e.child(2), ElemOf(a)).status());
      EXA_RETURN_NOT_OK(Infer(e.child(3), ElemOf(b)).status());
      // Same output shape as the CROSS it replaces (θ only filters).
      return Schema::Set(
          Schema::Tup({{"_1", ElemOf(a)}, {"_2", ElemOf(b)}}));
    }
    case OpKind::kIndexProbe: {
      // Probe expression is closed relative to the set element; it still
      // type-checks in the enclosing scope.
      EXA_RETURN_NOT_OK(InferNode(*e.child(0), input).status());
      if (db_ == nullptr) {
        return Status::TypeError("IDX_PROBE requires a database");
      }
      EXA_ASSIGN_OR_RETURN(SchemaPtr base, db_->NamedSchema(e.names().at(0)));
      EXA_RETURN_NOT_OK(ExpectCtor(base, TypeCtor::kSet, "IDX_PROBE"));
      // Same output shape as the SET_APPLY[COMP] it replaces: the operand
      // binder applied to an element of the base set.
      EXA_ASSIGN_OR_RETURN(SchemaPtr out, Infer(e.sub(), ElemOf(base)));
      return Schema::Set(std::move(out));
    }
    case OpKind::kIndexJoin: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr a, InferNode(*e.child(0), input));
      EXA_ASSIGN_OR_RETURN(SchemaPtr b, InferNode(*e.child(1), input));
      EXA_RETURN_NOT_OK(ExpectCtor(a, TypeCtor::kSet, "IDX_JOIN"));
      EXA_RETURN_NOT_OK(ExpectCtor(b, TypeCtor::kSet, "IDX_JOIN"));
      EXA_RETURN_NOT_OK(Infer(e.child(2), ElemOf(a)).status());
      EXA_RETURN_NOT_OK(Infer(e.child(3), ElemOf(b)).status());
      // Same output shape as the HASH_JOIN / CROSS it replaces.
      return Schema::Set(
          Schema::Tup({{"_1", ElemOf(a)}, {"_2", ElemOf(b)}}));
    }
    case OpKind::kSetCollapse: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr in, InferNode(*e.child(0), input));
      EXA_RETURN_NOT_OK(ExpectCtor(in, TypeCtor::kSet, "SET_COLLAPSE"));
      SchemaPtr elem = ElemOf(in);
      EXA_RETURN_NOT_OK(ExpectCtor(elem, TypeCtor::kSet, "SET_COLLAPSE member"));
      return IsAny(elem) ? Schema::Set(AnySchema()) : elem;
    }

    case OpKind::kProject: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr t, InferNode(*e.child(0), input));
      EXA_RETURN_NOT_OK(ExpectCtor(t, TypeCtor::kTup, "PI"));
      if (IsAny(t)) return AnySchema();
      std::vector<Field> fields;
      for (const auto& name : e.names()) {
        EXA_ASSIGN_OR_RETURN(SchemaPtr ft, t->FieldType(name));
        fields.push_back({name, std::move(ft)});
      }
      return Schema::Tup(std::move(fields));
    }
    case OpKind::kTupCat: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr a, InferNode(*e.child(0), input));
      EXA_ASSIGN_OR_RETURN(SchemaPtr b, InferNode(*e.child(1), input));
      EXA_RETURN_NOT_OK(ExpectCtor(a, TypeCtor::kTup, "TUP_CAT"));
      EXA_RETURN_NOT_OK(ExpectCtor(b, TypeCtor::kTup, "TUP_CAT"));
      if (IsAny(a) || IsAny(b)) return AnySchema();
      std::vector<Field> fields = a->fields();
      fields.insert(fields.end(), b->fields().begin(), b->fields().end());
      // TUP_CAT may duplicate names; the schema keeps both, as the value
      // does. Validate() would reject duplicates, so build without it.
      return Schema::Tup(std::move(fields));
    }
    case OpKind::kTupExtract: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr t, InferNode(*e.child(0), input));
      EXA_RETURN_NOT_OK(ExpectCtor(t, TypeCtor::kTup, "TUP_EXTRACT"));
      if (IsAny(t)) return AnySchema();
      return t->FieldType(e.name());
    }
    case OpKind::kTupMake: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr x, InferNode(*e.child(0), input));
      return Schema::Tup(
          {{e.name().empty() ? "_1" : e.name(), std::move(x)}});
    }

    case OpKind::kArrMake: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr x, InferNode(*e.child(0), input));
      return Schema::Arr(std::move(x));
    }
    case OpKind::kArrExtract: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr a, InferNode(*e.child(0), input));
      EXA_RETURN_NOT_OK(ExpectCtor(a, TypeCtor::kArr, "ARR_EXTRACT"));
      return ElemOf(a);
    }
    case OpKind::kArrApply: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr a, InferNode(*e.child(0), input));
      EXA_RETURN_NOT_OK(ExpectCtor(a, TypeCtor::kArr, "ARR_APPLY"));
      EXA_ASSIGN_OR_RETURN(SchemaPtr out, Infer(e.sub(), ElemOf(a)));
      return Schema::Arr(std::move(out));
    }
    case OpKind::kSubArr: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr a, InferNode(*e.child(0), input));
      EXA_RETURN_NOT_OK(ExpectCtor(a, TypeCtor::kArr, "SUBARR"));
      return IsAny(a) ? Schema::Arr(AnySchema()) : Schema::Arr(a->elem());
    }
    case OpKind::kArrCat: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr a, InferNode(*e.child(0), input));
      EXA_ASSIGN_OR_RETURN(SchemaPtr b, InferNode(*e.child(1), input));
      EXA_RETURN_NOT_OK(ExpectCtor(a, TypeCtor::kArr, "ARR_CAT"));
      EXA_RETURN_NOT_OK(ExpectCtor(b, TypeCtor::kArr, "ARR_CAT"));
      if (IsAny(a) || IsAny(b)) return Schema::Arr(AnySchema());
      if (!a->elem()->CompatibleWith(*b->elem())) {
        return Status::TypeError(StrCat("ARR_CAT over incompatible arrays ",
                                        a->ToString(), " and ", b->ToString()));
      }
      if (a->fixed_size().has_value() && b->fixed_size().has_value()) {
        return Schema::FixedArr(MergeSchemas(a->elem(), b->elem()),
                                *a->fixed_size() + *b->fixed_size());
      }
      return Schema::Arr(MergeSchemas(a->elem(), b->elem()));
    }
    case OpKind::kArrCollapse: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr a, InferNode(*e.child(0), input));
      EXA_RETURN_NOT_OK(ExpectCtor(a, TypeCtor::kArr, "ARR_COLLAPSE"));
      SchemaPtr elem = ElemOf(a);
      EXA_RETURN_NOT_OK(ExpectCtor(elem, TypeCtor::kArr, "ARR_COLLAPSE element"));
      return IsAny(elem) ? Schema::Arr(AnySchema()) : Schema::Arr(elem->elem());
    }
    case OpKind::kArrDiff: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr a, InferNode(*e.child(0), input));
      EXA_ASSIGN_OR_RETURN(SchemaPtr b, InferNode(*e.child(1), input));
      EXA_RETURN_NOT_OK(ExpectCtor(a, TypeCtor::kArr, "ARR_DIFF"));
      EXA_RETURN_NOT_OK(ExpectCtor(b, TypeCtor::kArr, "ARR_DIFF"));
      return IsAny(a) ? Schema::Arr(AnySchema()) : Schema::Arr(a->elem());
    }
    case OpKind::kArrDupElim: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr a, InferNode(*e.child(0), input));
      EXA_RETURN_NOT_OK(ExpectCtor(a, TypeCtor::kArr, "ARR_DE"));
      return IsAny(a) ? Schema::Arr(AnySchema()) : Schema::Arr(a->elem());
    }
    case OpKind::kArrCross: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr a, InferNode(*e.child(0), input));
      EXA_ASSIGN_OR_RETURN(SchemaPtr b, InferNode(*e.child(1), input));
      EXA_RETURN_NOT_OK(ExpectCtor(a, TypeCtor::kArr, "ARR_CROSS"));
      EXA_RETURN_NOT_OK(ExpectCtor(b, TypeCtor::kArr, "ARR_CROSS"));
      return Schema::Arr(Schema::Tup({{"_1", ElemOf(a)}, {"_2", ElemOf(b)}}));
    }

    case OpKind::kRef: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr x, InferNode(*e.child(0), input));
      std::string target = e.name();
      if (target.empty()) target = x->type_name();
      return Schema::Ref(target.empty() ? "$anon" : target);
    }
    case OpKind::kDeref: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr r, InferNode(*e.child(0), input));
      EXA_RETURN_NOT_OK(ExpectCtor(r, TypeCtor::kRef, "DEREF"));
      if (IsAny(r)) return AnySchema();
      if (r->ref_target() == "$anon") return AnySchema();
      if (db_ == nullptr || !db_->catalog().HasType(r->ref_target())) {
        return Status::TypeError(
            StrCat("DEREF of reference to unknown type '", r->ref_target(), "'"));
      }
      return db_->catalog().EffectiveSchema(r->ref_target());
    }

    case OpKind::kComp: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr in, InferNode(*e.child(0), input));
      EXA_RETURN_NOT_OK(CheckPredicate(*e.pred(), in));
      return in;
    }

    case OpKind::kArith: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr a, InferNode(*e.child(0), input));
      EXA_ASSIGN_OR_RETURN(SchemaPtr b, InferNode(*e.child(1), input));
      auto numeric = [](const SchemaPtr& s) {
        return s->is_val() && (s->scalar_kind() == ScalarKind::kInt ||
                               s->scalar_kind() == ScalarKind::kFloat ||
                               s->scalar_kind() == ScalarKind::kDate ||
                               s->scalar_kind() == ScalarKind::kAny);
      };
      if (e.name() == "+" && a->is_val() &&
          a->scalar_kind() == ScalarKind::kString) {
        return StringSchema();
      }
      if (!numeric(a) || !numeric(b)) {
        return Status::TypeError(StrCat("arithmetic over non-numeric schemas ",
                                        a->ToString(), ", ", b->ToString()));
      }
      if (IsAny(a) || IsAny(b)) return AnySchema();
      if (a->scalar_kind() == ScalarKind::kInt &&
          b->scalar_kind() == ScalarKind::kInt) {
        return IntSchema();
      }
      return FloatSchema();
    }
    case OpKind::kAgg: {
      EXA_ASSIGN_OR_RETURN(SchemaPtr in, InferNode(*e.child(0), input));
      EXA_RETURN_NOT_OK(ExpectCtor(in, TypeCtor::kSet, "AGG"));
      if (e.name() == "count") return IntSchema();
      if (e.name() == "avg") return FloatSchema();
      if (e.name() == "sum") {
        SchemaPtr elem = ElemOf(in);
        if (elem->is_val() && elem->scalar_kind() == ScalarKind::kFloat) {
          return FloatSchema();
        }
        if (elem->is_val() && elem->scalar_kind() == ScalarKind::kInt) {
          return IntSchema();
        }
        return AnySchema();
      }
      if (e.name() == "min" || e.name() == "max") return ElemOf(in);
      return Status::NotFound(StrCat("unknown aggregate '", e.name(), "'"));
    }
    case OpKind::kMethodCall:
      // Method bodies are resolved at run time; a full implementation would
      // consult the registry's declared return type. We return the dynamic
      // wildcard, which downstream operators re-check at run time.
      return AnySchema();
  }
  return Status::Internal("unknown operator kind");
}

}  // namespace excess
