#include "core/rules.h"

#include "core/builder.h"

namespace excess {

namespace patterns {

std::optional<PredicatePtr> MatchSelect(const ExprPtr& e) {
  if (e->kind() != OpKind::kSetApply || !e->type_filter().empty()) {
    return std::nullopt;
  }
  const ExprPtr& sub = e->sub();
  if (sub->kind() != OpKind::kComp) return std::nullopt;
  if (sub->child(0)->kind() != OpKind::kInput) return std::nullopt;
  return sub->pred();
}

bool MatchApplyDupElim(const ExprPtr& e) {
  if (e->kind() != OpKind::kSetApply || !e->type_filter().empty()) return false;
  const ExprPtr& sub = e->sub();
  return sub->kind() == OpKind::kDupElim &&
         sub->child(0)->kind() == OpKind::kInput;
}

bool IsPairFlatten(const ExprPtr& e) {
  if (e->kind() != OpKind::kTupCat) return false;
  const ExprPtr& a = e->child(0);
  const ExprPtr& b = e->child(1);
  return a->kind() == OpKind::kTupExtract && a->name() == "_1" &&
         a->child(0)->kind() == OpKind::kInput &&
         b->kind() == OpKind::kTupExtract && b->name() == "_2" &&
         b->child(0)->kind() == OpKind::kInput;
}

}  // namespace patterns

RuleSet RuleSet::All() {
  RuleSet directed;
  RuleSet exploratory;
  RegisterMultisetRules(&directed, &exploratory);
  RegisterArrayRules(&directed, &exploratory);
  RegisterTupleRefRules(&directed, &exploratory);
  RuleSet all;
  for (const auto& r : directed.rules()) all.Add(r);
  for (auto r : exploratory.rules()) {
    r.directed = false;
    all.Add(std::move(r));
  }
  return all;
}

RuleSet RuleSet::Only(const std::vector<std::string>& names,
                      bool force_directed) {
  RuleSet out;
  // Bind before iterating: rules() of a temporary would dangle.
  RuleSet all = All();
  for (const auto& r : all.rules()) {
    for (const auto& n : names) {
      if (r.name == n) {
        RewriteRule copy = r;
        if (force_directed) copy.directed = true;
        out.Add(std::move(copy));
        break;
      }
    }
  }
  return out;
}

RuleSet RuleSet::Heuristic() {
  RuleSet directed;
  RuleSet exploratory;
  RegisterMultisetRules(&directed, &exploratory);
  RegisterArrayRules(&directed, &exploratory);
  RegisterTupleRefRules(&directed, &exploratory);
  return directed;
}

}  // namespace excess
