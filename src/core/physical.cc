#include "core/physical.h"

#include <utility>
#include <vector>

#include "core/analysis.h"
#include "core/builder.h"

namespace excess {

namespace {

/// Flattens the ∧-spine of a predicate into its conjuncts.
void Conjuncts(const PredicatePtr& p, std::vector<PredicatePtr>* out) {
  if (p->kind == Predicate::Kind::kAnd) {
    Conjuncts(p->a, out);
    Conjuncts(p->b, out);
    return;
  }
  out->push_back(p);
}

/// If `p` is an equality atom joining the two halves of the pair, extracts
/// the per-element key expressions (INPUT re-bound from the pair to an
/// element of the matching side). A side without free INPUT is a constant —
/// that atom is a selection, not a join key.
bool EquiKeys(const Predicate& p, ExprPtr* lkey, ExprPtr* rkey) {
  if (p.kind != Predicate::Kind::kAtom || p.cmp != CmpOp::kEq) return false;
  if (!analysis::ContainsFreeInput(p.lhs) ||
      !analysis::ContainsFreeInput(p.rhs)) {
    return false;
  }
  if (analysis::DependsOnlyOnField(p.lhs, "_1") &&
      analysis::DependsOnlyOnField(p.rhs, "_2")) {
    *lkey = analysis::StripFieldExtract(p.lhs, "_1");
    *rkey = analysis::StripFieldExtract(p.rhs, "_2");
    return true;
  }
  if (analysis::DependsOnlyOnField(p.lhs, "_2") &&
      analysis::DependsOnlyOnField(p.rhs, "_1")) {
    *lkey = analysis::StripFieldExtract(p.rhs, "_1");
    *rkey = analysis::StripFieldExtract(p.lhs, "_2");
    return true;
  }
  return false;
}

/// Matches SET_APPLY[COMP_θ(INPUT)](CROSS(A, B)) with an equality atom
/// between the sides and builds the HASH_JOIN replacement, or returns null.
ExprPtr TryHashJoin(const ExprPtr& e) {
  if (e->kind() != OpKind::kSetApply || !e->type_filter().empty()) {
    return nullptr;
  }
  const ExprPtr& sub = e->sub();
  if (sub->kind() != OpKind::kComp ||
      sub->child(0)->kind() != OpKind::kInput) {
    return nullptr;
  }
  const ExprPtr& cross = e->child(0);
  if (cross->kind() != OpKind::kCross) return nullptr;

  std::vector<PredicatePtr> conj;
  Conjuncts(sub->pred(), &conj);
  std::vector<ExprPtr> lkeys, rkeys;
  for (const auto& c : conj) {
    ExprPtr lk, rk;
    if (EquiKeys(*c, &lk, &rk)) {
      lkeys.push_back(std::move(lk));
      rkeys.push_back(std::move(rk));
    }
  }
  if (lkeys.empty()) return nullptr;

  ExprPtr lkey, rkey;
  if (lkeys.size() == 1) {
    lkey = std::move(lkeys[0]);
    rkey = std::move(rkeys[0]);
  } else {
    // Composite key: a positional tuple per side. Tuple equality compares
    // positionally on values, so key equality is the conjunction of the
    // atoms; a dne/unk component poisons the whole key through the
    // evaluator's uniform null propagation, which is what routes the
    // element to the right fallback bucket.
    lkey = alg::TupMake(std::move(lkeys[0]));
    rkey = alg::TupMake(std::move(rkeys[0]));
    for (size_t i = 1; i < lkeys.size(); ++i) {
      lkey = alg::TupCat(std::move(lkey), alg::TupMake(std::move(lkeys[i])));
      rkey = alg::TupCat(std::move(rkey), alg::TupMake(std::move(rkeys[i])));
    }
  }
  return alg::HashJoin(sub->pred(), cross->child(0), cross->child(1),
                       std::move(lkey), std::move(rkey));
}

ExprPtr LowerNode(const ExprPtr& e);

PredicatePtr LowerPredicate(const PredicatePtr& p) {
  switch (p->kind) {
    case Predicate::Kind::kAtom: {
      ExprPtr l = LowerNode(p->lhs);
      ExprPtr r = LowerNode(p->rhs);
      if (l == p->lhs && r == p->rhs) return p;
      return Predicate::Atom(std::move(l), p->cmp, std::move(r));
    }
    case Predicate::Kind::kAnd: {
      PredicatePtr a = LowerPredicate(p->a);
      PredicatePtr b = LowerPredicate(p->b);
      if (a == p->a && b == p->b) return p;
      return Predicate::And(std::move(a), std::move(b));
    }
    case Predicate::Kind::kOr: {
      PredicatePtr a = LowerPredicate(p->a);
      PredicatePtr b = LowerPredicate(p->b);
      if (a == p->a && b == p->b) return p;
      return Predicate::Or(std::move(a), std::move(b));
    }
    case Predicate::Kind::kNot: {
      PredicatePtr a = LowerPredicate(p->a);
      if (a == p->a) return p;
      return Predicate::Not(std::move(a));
    }
    case Predicate::Kind::kTrue:
      return p;
  }
  return p;
}

ExprPtr LowerNode(const ExprPtr& e) {
  if (e == nullptr) return e;
  // Bottom-up: lower children, subscript and predicate operands first, so
  // joins nested under other operators (or inside atoms) are found too.
  bool changed = false;
  std::vector<ExprPtr> kids;
  kids.reserve(e->num_children());
  for (const auto& c : e->children()) {
    ExprPtr nc = LowerNode(c);
    changed = changed || nc != c;
    kids.push_back(std::move(nc));
  }
  ExprPtr sub = e->sub() != nullptr ? LowerNode(e->sub()) : nullptr;
  changed = changed || sub != e->sub();
  PredicatePtr pred =
      e->pred() != nullptr ? LowerPredicate(e->pred()) : nullptr;
  changed = changed || pred != e->pred();
  ExprPtr cur =
      changed ? MakeExpr(e->kind(), std::move(kids), std::move(sub),
                         std::move(pred), e->literal(), e->name(), e->names(),
                         e->type_filter(), e->index(), e->lo(), e->hi(),
                         e->index_is_last(), e->lo_is_last(), e->hi_is_last())
              : e;
  if (ExprPtr hj = TryHashJoin(cur)) return hj;
  return cur;
}

}  // namespace

ExprPtr LowerPhysical(const ExprPtr& plan) { return LowerNode(plan); }

}  // namespace excess
