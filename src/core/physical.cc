#include "core/physical.h"

#include <string>
#include <utility>
#include <vector>

#include "core/analysis.h"
#include "core/builder.h"
#include "obs/metrics.h"

namespace excess {

namespace {

/// Shared state of one lowering pass. With a null cost model the pass is
/// the classic hash-join-only lowering; the index rules need the database
/// (for index lookup) and the cost model (to compete against the scan).
struct LowerCtx {
  const Database* db = nullptr;
  const CostModel* cost = nullptr;
  RewriteObserver* observer = nullptr;
};

/// Flattens the ∧-spine of a predicate into its conjuncts.
void Conjuncts(const PredicatePtr& p, std::vector<PredicatePtr>* out) {
  if (p->kind == Predicate::Kind::kAnd) {
    Conjuncts(p->a, out);
    Conjuncts(p->b, out);
    return;
  }
  out->push_back(p);
}

/// If `p` is an equality atom joining the two halves of the pair, extracts
/// the per-element key expressions (INPUT re-bound from the pair to an
/// element of the matching side). A side without free INPUT is a constant —
/// that atom is a selection, not a join key.
bool EquiKeys(const Predicate& p, ExprPtr* lkey, ExprPtr* rkey) {
  if (p.kind != Predicate::Kind::kAtom || p.cmp != CmpOp::kEq) return false;
  if (!analysis::ContainsFreeInput(p.lhs) ||
      !analysis::ContainsFreeInput(p.rhs)) {
    return false;
  }
  if (analysis::DependsOnlyOnField(p.lhs, "_1") &&
      analysis::DependsOnlyOnField(p.rhs, "_2")) {
    *lkey = analysis::StripFieldExtract(p.lhs, "_1");
    *rkey = analysis::StripFieldExtract(p.rhs, "_2");
    return true;
  }
  if (analysis::DependsOnlyOnField(p.lhs, "_2") &&
      analysis::DependsOnlyOnField(p.rhs, "_1")) {
    *lkey = analysis::StripFieldExtract(p.rhs, "_1");
    *rkey = analysis::StripFieldExtract(p.lhs, "_2");
    return true;
  }
  return false;
}

/// Matches SET_APPLY[COMP_θ(INPUT)](CROSS(A, B)) with an equality atom
/// between the sides and builds the HASH_JOIN replacement, or returns null.
ExprPtr TryHashJoin(const ExprPtr& e) {
  if (e->kind() != OpKind::kSetApply || !e->type_filter().empty()) {
    return nullptr;
  }
  const ExprPtr& sub = e->sub();
  if (sub->kind() != OpKind::kComp ||
      sub->child(0)->kind() != OpKind::kInput) {
    return nullptr;
  }
  const ExprPtr& cross = e->child(0);
  if (cross->kind() != OpKind::kCross) return nullptr;

  std::vector<PredicatePtr> conj;
  Conjuncts(sub->pred(), &conj);
  std::vector<ExprPtr> lkeys, rkeys;
  for (const auto& c : conj) {
    ExprPtr lk, rk;
    if (EquiKeys(*c, &lk, &rk)) {
      lkeys.push_back(std::move(lk));
      rkeys.push_back(std::move(rk));
    }
  }
  if (lkeys.empty()) return nullptr;

  ExprPtr lkey, rkey;
  if (lkeys.size() == 1) {
    lkey = std::move(lkeys[0]);
    rkey = std::move(rkeys[0]);
  } else {
    // Composite key: a positional tuple per side. Tuple equality compares
    // positionally on values, so key equality is the conjunction of the
    // atoms; a dne/unk component poisons the whole key through the
    // evaluator's uniform null propagation, which is what routes the
    // element to the right fallback bucket.
    lkey = alg::TupMake(std::move(lkeys[0]));
    rkey = alg::TupMake(std::move(rkeys[0]));
    for (size_t i = 1; i < lkeys.size(); ++i) {
      lkey = alg::TupCat(std::move(lkey), alg::TupMake(std::move(lkeys[i])));
      rkey = alg::TupCat(std::move(rkey), alg::TupMake(std::move(rkeys[i])));
    }
  }
  return alg::HashJoin(sub->pred(), cross->child(0), cross->child(1),
                       std::move(lkey), std::move(rkey));
}

/// Parses a pure extraction path over a free INPUT — a TUP_EXTRACT chain
/// with DEREFs interleaved — exactly as the index extractor walks it
/// (derefs happen lazily en route to the next field, never after the last
/// one). Appends field names to `path`.
bool ExtractionPath(const ExprPtr& e, std::vector<std::string>* path) {
  switch (e->kind()) {
    case OpKind::kInput:
      return true;
    case OpKind::kDeref:
      return ExtractionPath(e->child(0), path);
    case OpKind::kTupExtract: {
      if (!ExtractionPath(e->child(0), path)) return false;
      path->push_back(e->name());
      return true;
    }
    default:
      return false;
  }
}

/// True when the compared value is a *dereferenced* object (the expression
/// ends in DEREF): the extractor never derefs after the last field, so such
/// keys only line up with an index when more fields follow the deref.
bool EndsInDeref(const ExprPtr& e) { return e->kind() == OpKind::kDeref; }

/// A probe can be hoisted out of the per-element predicate only when it is
/// closed (no free INPUT) and side-effect-free / deterministic (no REF
/// interning, no method dispatch).
bool HoistableProbe(const ExprPtr& e) {
  return !analysis::ContainsFreeInput(e) && analysis::IsParallelSafe(e);
}

const RewriteRule& IndexProbeRule() {
  static const RewriteRule rule{0, "lower-index-probe", true, nullptr};
  return rule;
}

const RewriteRule& IndexJoinRule() {
  static const RewriteRule rule{0, "lower-index-join", true, nullptr};
  return rule;
}

ExprPtr Adopt(const RewriteRule& rule, const LowerCtx& lctx,
              const ExprPtr& before, ExprPtr after) {
  obs::MetricsRegistry::Global()
      .GetCounter("rules.fired." + rule.name)
      ->Increment();
  if (lctx.observer != nullptr) {
    lctx.observer->OnRewrite("lowering", rule, before, after);
  }
  return after;
}

/// Matches SET_APPLY[χ(COMP_θ(opnd))](Var(S)) where χ is a (possibly
/// empty) chain of TUP_EXTRACT/DEREF steps, opnd is a pure extraction path
/// — optionally wrapped in the translator's one-field environment tuple
/// TUP<f>(path) — and θ's ∧-spine holds an atom comparing another
/// extraction path (over the operand result) against a hoistable probe,
/// covered by an index on S over the concatenated path. Returns the
/// cheapest replacement that beats the scan's estimate, or null: the bare
/// IDX_PROBE when χ is empty, else SET_APPLY[χ'(INPUT)](IDX_PROBE) — χ
/// maps the dropped dne and retained unk occurrences exactly as the fused
/// logical subscript did (extraction steps send unk to unk, dne to dne).
ExprPtr TryIndexProbe(const ExprPtr& e, const LowerCtx& lctx) {
  if (lctx.cost == nullptr) return nullptr;
  if (e->kind() != OpKind::kSetApply || !e->type_filter().empty()) {
    return nullptr;
  }
  if (e->child(0)->kind() != OpKind::kVar) return nullptr;
  // Peel the pure extraction suffix χ off the subscript (rule-15 fusion
  // leaves the projection wrapped around the COMP in translated plans).
  std::vector<const Expr*> suffix;  // outermost first
  ExprPtr sub = e->sub();
  while (sub->kind() == OpKind::kTupExtract ||
         sub->kind() == OpKind::kDeref) {
    suffix.push_back(sub.get());
    sub = sub->child(0);
  }
  if (sub->kind() != OpKind::kComp) return nullptr;
  const std::string& set_name = e->child(0)->name();
  std::vector<const SecondaryIndex*> indexes = lctx.db->IndexesOn(set_name);
  if (indexes.empty()) return nullptr;

  // The operand feeds θ its INPUT. A translated range variable arrives as
  // the environment tuple TUP<f>(path): key extraction then starts with
  // TUP_EXTRACT<f>, which cancels against the construction.
  const ExprPtr& opnd = sub->child(0);
  ExprPtr path_base = opnd;
  std::string env_field;
  if (opnd->kind() == OpKind::kTupMake && opnd->num_children() == 1 &&
      !opnd->name().empty()) {
    env_field = opnd->name();
    path_base = opnd->child(0);
  }
  std::vector<std::string> opnd_path;
  if (!ExtractionPath(path_base, &opnd_path)) return nullptr;
  const bool opnd_derefs_last = EndsInDeref(path_base);

  auto base_est = lctx.cost->Estimate(e);
  if (!base_est.ok()) return nullptr;
  double best_total = base_est->total;
  ExprPtr best;

  std::vector<PredicatePtr> conj;
  Conjuncts(sub->pred(), &conj);
  for (const auto& c : conj) {
    if (c->kind != Predicate::Kind::kAtom) continue;
    // Normalize to path-on-the-left: = is symmetric, ordered comparisons
    // mirror, and 'in' only serves the path as the (left) member side.
    struct Form {
      const ExprPtr& path_side;
      const ExprPtr& probe;
      CmpOp cmp;
    };
    std::vector<Form> forms;
    forms.push_back({c->lhs, c->rhs, c->cmp});
    switch (c->cmp) {
      case CmpOp::kEq:
        forms.push_back({c->rhs, c->lhs, CmpOp::kEq});
        break;
      case CmpOp::kLt:
        forms.push_back({c->rhs, c->lhs, CmpOp::kGt});
        break;
      case CmpOp::kLe:
        forms.push_back({c->rhs, c->lhs, CmpOp::kGe});
        break;
      case CmpOp::kGt:
        forms.push_back({c->rhs, c->lhs, CmpOp::kLt});
        break;
      case CmpOp::kGe:
        forms.push_back({c->rhs, c->lhs, CmpOp::kLe});
        break;
      default:
        break;
    }
    for (const Form& f : forms) {
      if (f.cmp == CmpOp::kNe) continue;
      std::vector<std::string> atom_path;
      if (!ExtractionPath(f.path_side, &atom_path)) continue;
      if (EndsInDeref(f.path_side)) continue;
      if (!env_field.empty()) {
        // The leading extraction must address the constructed field; what
        // remains navigates the wrapped path's result.
        if (atom_path.empty() || atom_path[0] != env_field) continue;
        atom_path.erase(atom_path.begin());
      }
      // A trailing deref in the operand is only reachable when the atom
      // navigates on into the dereferenced object.
      if (opnd_derefs_last && atom_path.empty()) continue;
      if (!HoistableProbe(f.probe)) continue;
      std::vector<std::string> full = opnd_path;
      full.insert(full.end(), atom_path.begin(), atom_path.end());
      const bool range_cmp = f.cmp == CmpOp::kLt || f.cmp == CmpOp::kLe ||
                             f.cmp == CmpOp::kGt || f.cmp == CmpOp::kGe;
      for (const SecondaryIndex* idx : indexes) {
        if (idx->def().path != full) continue;
        if (range_cmp && idx->def().kind != IndexKind::kOrdered) continue;
        ExprPtr cand = alg::IndexProbe(idx->def().name, set_name, f.cmp,
                                       f.probe, opnd, sub->pred());
        if (!suffix.empty()) {
          // Re-wrap the peeled extraction steps around the probe's output.
          ExprPtr chi = alg::Input();
          for (auto it = suffix.rbegin(); it != suffix.rend(); ++it) {
            chi = (*it)->kind() == OpKind::kDeref
                      ? alg::Deref(std::move(chi))
                      : alg::TupExtract((*it)->name(), std::move(chi));
          }
          cand = alg::SetApply(std::move(chi), std::move(cand));
        }
        auto est = lctx.cost->Estimate(cand);
        if (!est.ok() || est->total >= best_total) continue;
        best_total = est->total;
        best = std::move(cand);
      }
    }
  }
  return best;
}

/// Post-processes a freshly lowered HASH_JOIN: when one side is Var(S) (or
/// a pure extraction-path SET_APPLY over Var(S)) and that side's key binder
/// concatenates with the mapping into the path of an index on S, the join
/// can be served from the index without ever scanning S. Returns the
/// cheapest IDX_JOIN that beats the hash join's estimate, or null.
ExprPtr TryIndexJoin(const ExprPtr& hj, const LowerCtx& lctx) {
  if (lctx.cost == nullptr || hj->kind() != OpKind::kHashJoin) return nullptr;
  auto base_est = lctx.cost->Estimate(hj);
  if (!base_est.ok()) return nullptr;
  double best_total = base_est->total;
  ExprPtr best;
  for (size_t side = 0; side < 2; ++side) {
    const ExprPtr& child = hj->child(side);
    std::string set_name;
    ExprPtr transform;
    if (child->kind() == OpKind::kVar) {
      set_name = child->name();
    } else if (child->kind() == OpKind::kSetApply &&
               child->type_filter().empty() &&
               child->child(0)->kind() == OpKind::kVar) {
      set_name = child->child(0)->name();
      transform = child->sub();
    } else {
      continue;
    }
    std::vector<std::string> path;
    if (transform != nullptr && !ExtractionPath(transform, &path)) continue;
    const ExprPtr& binder = hj->child(2 + side);
    std::vector<std::string> binder_path;
    if (!ExtractionPath(binder, &binder_path)) continue;
    if (EndsInDeref(binder)) continue;
    if (transform != nullptr && EndsInDeref(transform) &&
        binder_path.empty()) {
      continue;  // the dereferenced element is keyed, not the raw one
    }
    path.insert(path.end(), binder_path.begin(), binder_path.end());
    for (const SecondaryIndex* idx : lctx.db->IndexesOn(set_name)) {
      if (idx->def().path != path) continue;
      ExprPtr cand = alg::IndexJoin(idx->def().name,
                                    static_cast<int64_t>(side), hj->pred(),
                                    hj->child(0), hj->child(1), hj->child(2),
                                    hj->child(3));
      auto est = lctx.cost->Estimate(cand);
      if (!est.ok() || est->total >= best_total) continue;
      best_total = est->total;
      best = std::move(cand);
    }
  }
  return best;
}

ExprPtr LowerNode(const ExprPtr& e, const LowerCtx& lctx);

PredicatePtr LowerPredicate(const PredicatePtr& p, const LowerCtx& lctx) {
  switch (p->kind) {
    case Predicate::Kind::kAtom: {
      ExprPtr l = LowerNode(p->lhs, lctx);
      ExprPtr r = LowerNode(p->rhs, lctx);
      if (l == p->lhs && r == p->rhs) return p;
      return Predicate::Atom(std::move(l), p->cmp, std::move(r));
    }
    case Predicate::Kind::kAnd: {
      PredicatePtr a = LowerPredicate(p->a, lctx);
      PredicatePtr b = LowerPredicate(p->b, lctx);
      if (a == p->a && b == p->b) return p;
      return Predicate::And(std::move(a), std::move(b));
    }
    case Predicate::Kind::kOr: {
      PredicatePtr a = LowerPredicate(p->a, lctx);
      PredicatePtr b = LowerPredicate(p->b, lctx);
      if (a == p->a && b == p->b) return p;
      return Predicate::Or(std::move(a), std::move(b));
    }
    case Predicate::Kind::kNot: {
      PredicatePtr a = LowerPredicate(p->a, lctx);
      if (a == p->a) return p;
      return Predicate::Not(std::move(a));
    }
    case Predicate::Kind::kTrue:
      return p;
  }
  return p;
}

ExprPtr LowerNode(const ExprPtr& e, const LowerCtx& lctx) {
  if (e == nullptr) return e;
  // Bottom-up: lower children, subscript and predicate operands first, so
  // joins nested under other operators (or inside atoms) are found too.
  bool changed = false;
  std::vector<ExprPtr> kids;
  kids.reserve(e->num_children());
  for (const auto& c : e->children()) {
    ExprPtr nc = LowerNode(c, lctx);
    changed = changed || nc != c;
    kids.push_back(std::move(nc));
  }
  ExprPtr sub = e->sub() != nullptr ? LowerNode(e->sub(), lctx) : nullptr;
  changed = changed || sub != e->sub();
  PredicatePtr pred =
      e->pred() != nullptr ? LowerPredicate(e->pred(), lctx) : nullptr;
  changed = changed || pred != e->pred();
  ExprPtr cur =
      changed ? MakeExpr(e->kind(), std::move(kids), std::move(sub),
                         std::move(pred), e->literal(), e->name(), e->names(),
                         e->type_filter(), e->index(), e->lo(), e->hi(),
                         e->index_is_last(), e->lo_is_last(), e->hi_is_last())
              : e;
  if (ExprPtr hj = TryHashJoin(cur)) {
    if (ExprPtr ij = TryIndexJoin(hj, lctx)) {
      return Adopt(IndexJoinRule(), lctx, cur, std::move(ij));
    }
    return hj;
  }
  if (cur->kind() == OpKind::kHashJoin) {
    // A pre-lowered plan passed through again (e.g. re-optimization).
    if (ExprPtr ij = TryIndexJoin(cur, lctx)) {
      return Adopt(IndexJoinRule(), lctx, cur, std::move(ij));
    }
  }
  if (ExprPtr ip = TryIndexProbe(cur, lctx)) {
    return Adopt(IndexProbeRule(), lctx, cur, std::move(ip));
  }
  return cur;
}

}  // namespace

ExprPtr LowerPhysical(const ExprPtr& plan) {
  LowerCtx lctx;
  return LowerNode(plan, lctx);
}

ExprPtr LowerPhysical(const ExprPtr& plan, const Database* db,
                      const CostParams& params, RewriteObserver* observer) {
  if (db == nullptr) return LowerPhysical(plan);
  CostModel cost(db, params);
  LowerCtx lctx{db, &cost, observer};
  return LowerNode(plan, lctx);
}

}  // namespace excess
