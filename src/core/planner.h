#ifndef EXCESS_CORE_PLANNER_H_
#define EXCESS_CORE_PLANNER_H_

#include <string>
#include <vector>

#include "core/cost.h"
#include "core/rewriter.h"
#include "core/rules.h"
#include "objects/database.h"
#include "util/status.h"

namespace excess {

/// A candidate plan produced by the search, with its estimated cost.
struct PlanChoice {
  ExprPtr plan;
  CostEstimate estimate;
};

/// The query optimizer: the role the EXODUS optimizer generator plays for
/// EXTRA/EXCESS (§1, §6). Two phases:
///  1. heuristic — the directed rule set to fixpoint (always-beneficial
///     transformations: combine SET_APPLYs, combine COMPs, push DE and
///     selections down, simplify array/tuple extractions, collapse
///     REF/DEREF pairs);
///  2. cost-based — best-first exploration of the rewrite graph generated
///     by all rules (directed + exploratory), memoized on tree identity,
///     keeping the cheapest tree under the estimates of CostModel.
class Planner {
 public:
  struct Options {
    /// Maximum trees expanded in the cost-based phase; 0 disables it.
    int search_budget = 64;
    /// Run the physical lowering pass (core/physical.h) on the winning
    /// plan. Rewrite rules never see physical operators either way.
    bool lower_physical = true;
    /// Let the lowering pass consult the database's secondary indexes
    /// (lower-index-probe / lower-index-join). Off, lowering is the classic
    /// hash-join-only pass and plans are index-neutral.
    bool use_indexes = true;
    CostParams cost_params;
  };

  explicit Planner(const Database* db) : db_(db) {}
  Planner(const Database* db, Options options) : db_(db), options_(options) {}

  /// Heuristic + cost-based optimization.
  Result<ExprPtr> Optimize(const ExprPtr& query);

  /// As Optimize, but also reports the considered alternatives (sorted by
  /// cost, best first) — used by the optimizer bench and example tour.
  Result<std::vector<PlanChoice>> Enumerate(const ExprPtr& query);

  /// Rule names fired during the heuristic phase of the last call.
  const std::vector<std::string>& heuristic_trace() const {
    return heuristic_trace_;
  }

  /// Attaches a rewrite-trace observer (non-owning; may be null). It sees
  /// every heuristic-phase rule firing (phase "heuristic", sub-expression
  /// granularity) and, for the cost-based phase, each adopted improvement —
  /// a neighbor whose estimate beats the best plan found so far (phase
  /// "search", whole-tree granularity).
  void set_observer(RewriteObserver* observer) { observer_ = observer; }

 private:
  const Database* db_;
  Options options_;
  std::vector<std::string> heuristic_trace_;
  RewriteObserver* observer_ = nullptr;
};

}  // namespace excess

#endif  // EXCESS_CORE_PLANNER_H_
