#ifndef EXCESS_CORE_RULES_H_
#define EXCESS_CORE_RULES_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "core/expr.h"
#include "objects/database.h"

namespace excess {

/// Context handed to each rule application attempt.
struct RuleContext {
  const Database* db = nullptr;
  /// Schema INPUT is bound to at this position (null outside subscripts /
  /// when unknown). Rules needing static information (array lengths, field
  /// provenance) use it through TypeInference and simply decline when it is
  /// unavailable.
  SchemaPtr input_schema;
  /// Rules 5 and 9 as printed in the paper implicitly assume the unused
  /// cross-product input is non-empty; we only fire them when this flag is
  /// set (default, matching the paper) — see DESIGN.md.
  bool assume_nonempty = true;
};

/// One algebraic transformation. `apply` inspects the node (not the whole
/// tree) and returns the replacement when the rule fires.
struct RewriteRule {
  /// Appendix rule number (0 for rules not in the printed list, e.g. the
  /// derived-operator expansions).
  int paper_id = 0;
  std::string name;
  /// Directed rules are safe to run to fixpoint (they strictly simplify or
  /// push work in one beneficial direction). Exploratory rules are
  /// equivalences used only by the cost-based planner's search.
  bool directed = true;
  std::function<std::optional<ExprPtr>(const ExprPtr&, const RuleContext&)>
      apply;
};

/// A named collection of rules.
class RuleSet {
 public:
  void Add(RewriteRule rule) { rules_.push_back(std::move(rule)); }
  const std::vector<RewriteRule>& rules() const { return rules_; }

  /// Every implemented rule (directed + exploratory).
  static RuleSet All();

  /// The subset of All() whose names match any of `names` (exact match).
  /// Used by tests and ablation benches to fire one rule in isolation; the
  /// selected rules keep their directedness unless `force_directed`, which
  /// lets a fixpoint Rewrite() drive an exploratory rule (only safe when
  /// the selected set cannot oscillate).
  static RuleSet Only(const std::vector<std::string>& names,
                      bool force_directed = false);
  /// The always-beneficial heuristic subset (directed only), safe for
  /// fixpoint rewriting: combine SET_APPLYs (15), combine COMPs (27),
  /// collapse DEREF(REF(A)) (28), drop redundant DE (6), push DE/selection
  /// down (7, 10), simplify array extraction (17-22), etc.
  static RuleSet Heuristic();

 private:
  std::vector<RewriteRule> rules_;
};

/// Rule group registrars (defined in rules_{multiset,array,tuple_ref}.cc).
void RegisterMultisetRules(RuleSet* directed, RuleSet* exploratory);
void RegisterArrayRules(RuleSet* directed, RuleSet* exploratory);
void RegisterTupleRefRules(RuleSet* directed, RuleSet* exploratory);

/// Recognizers for the derived-operator encodings of Appendix §1, shared by
/// several rules (e.g. σ_P(A) is SET_APPLY_{COMP_P(INPUT)}(A)).
namespace patterns {

/// Matches σ_P(A): SET_APPLY (no type filter) whose subscript is
/// COMP_P(INPUT). Returns the predicate.
std::optional<PredicatePtr> MatchSelect(const ExprPtr& e);
/// Matches SET_APPLY_{DE(INPUT)}(A) (the per-group DE of rule 8).
bool MatchApplyDupElim(const ExprPtr& e);
/// True for the flattening subscript TUP_CAT(TUP_EXTRACT__1(INPUT),
/// TUP_EXTRACT__2(INPUT)) used by rel_x / rel_join.
bool IsPairFlatten(const ExprPtr& e);

}  // namespace patterns

}  // namespace excess

#endif  // EXCESS_CORE_RULES_H_
