#include "core/analysis.h"
#include "core/builder.h"
#include "core/infer.h"
#include "core/rules.h"

namespace excess {

namespace {

using analysis::ContainsFreeInput;
using analysis::DependsOnlyOnField;
using analysis::StripFieldExtract;
using analysis::SubstituteInput;

bool IsPlainSetApply(const ExprPtr& e) {
  return e->kind() == OpKind::kSetApply && e->type_filter().empty();
}

/// True when re-evaluating `e` once per group is certainly cheap/safe
/// (rule 9 moves the unused cross input into a subscript, where it is
/// re-evaluated per group).
bool CheapToReplicate(const ExprPtr& e) {
  return e->kind() == OpKind::kVar || e->kind() == OpKind::kConst;
}

/// σ_P(INPUT) — a selection applied to the whole bound element.
std::optional<PredicatePtr> MatchSelectOfInput(const ExprPtr& e) {
  auto pred = patterns::MatchSelect(e);
  if (!pred.has_value()) return std::nullopt;
  if (e->child(0)->kind() != OpKind::kInput) return std::nullopt;
  return pred;
}

/// Every free INPUT occurrence in `e` is consumed through a field access
/// (TUP_EXTRACT or PI), never used whole — the condition under which an
/// enrichment field added by rule 26 is invisible downstream.
bool UsesInputOnlyThroughFields(const ExprPtr& e) {
  if (e->kind() == OpKind::kInput) return false;
  if ((e->kind() == OpKind::kTupExtract || e->kind() == OpKind::kProject) &&
      e->child(0)->kind() == OpKind::kInput) {
    return true;
  }
  for (const auto& c : e->children()) {
    if (!UsesInputOnlyThroughFields(c)) return false;
  }
  return true;
}

bool PredUsesInputOnlyThroughFields(const PredicatePtr& p) {
  switch (p->kind) {
    case Predicate::Kind::kAtom:
      return UsesInputOnlyThroughFields(p->lhs) &&
             UsesInputOnlyThroughFields(p->rhs);
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      return PredUsesInputOnlyThroughFields(p->a) &&
             PredUsesInputOnlyThroughFields(p->b);
    case Predicate::Kind::kNot:
      return PredUsesInputOnlyThroughFields(p->a);
    case Predicate::Kind::kTrue:
      return true;
  }
  return true;
}

}  // namespace

void RegisterMultisetRules(RuleSet* directed, RuleSet* exploratory) {
  // --- Rule 1: associativity of ⊎ (and of the derived ∪/∩ through their
  // expansions). Exploratory: a pure re-association choice.
  exploratory->Add({1, "addunion-assoc-left",
                    false,
                    [](const ExprPtr& e, const RuleContext&)
                        -> std::optional<ExprPtr> {
                      if (e->kind() != OpKind::kAddUnion) return std::nullopt;
                      const ExprPtr& rhs = e->child(1);
                      if (rhs->kind() != OpKind::kAddUnion) return std::nullopt;
                      // A ⊎ (B ⊎ C) -> (A ⊎ B) ⊎ C
                      return alg::AddUnion(
                          alg::AddUnion(e->child(0), rhs->child(0)),
                          rhs->child(1));
                    }});
  exploratory->Add({1, "addunion-assoc-right",
                    false,
                    [](const ExprPtr& e, const RuleContext&)
                        -> std::optional<ExprPtr> {
                      if (e->kind() != OpKind::kAddUnion) return std::nullopt;
                      const ExprPtr& lhs = e->child(0);
                      if (lhs->kind() != OpKind::kAddUnion) return std::nullopt;
                      // (A ⊎ B) ⊎ C -> A ⊎ (B ⊎ C)
                      return alg::AddUnion(
                          lhs->child(0),
                          alg::AddUnion(lhs->child(1), e->child(1)));
                    }});

  // --- Rule 2: distribution of × over ⊎, both directions.
  exploratory->Add(
      {2, "cross-distributes-over-addunion",
       false,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kCross) return std::nullopt;
         const ExprPtr& rhs = e->child(1);
         if (rhs->kind() != OpKind::kAddUnion) return std::nullopt;
         // A × (B ⊎ C) -> (A × B) ⊎ (A × C)
         return alg::AddUnion(alg::Cross(e->child(0), rhs->child(0)),
                              alg::Cross(e->child(0), rhs->child(1)));
       }});
  exploratory->Add(
      {2, "cross-factor-addunion",
       false,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kAddUnion) return std::nullopt;
         const ExprPtr& l = e->child(0);
         const ExprPtr& r = e->child(1);
         if (l->kind() != OpKind::kCross || r->kind() != OpKind::kCross) {
           return std::nullopt;
         }
         if (!l->child(0)->Equals(*r->child(0))) return std::nullopt;
         // (A × B) ⊎ (A × C) -> A × (B ⊎ C)
         return alg::Cross(l->child(0),
                           alg::AddUnion(l->child(1), r->child(1)));
       }});

  // --- Rule 3: rel_x commutativity (matching the derived encoding:
  // SET_APPLY with the pair-flattening subscript over ×).
  exploratory->Add(
      {3, "relcross-commute",
       false,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (!IsPlainSetApply(e)) return std::nullopt;
         if (!patterns::IsPairFlatten(e->sub())) return std::nullopt;
         const ExprPtr& cross = e->child(0);
         if (cross->kind() != OpKind::kCross) return std::nullopt;
         return alg::RelCross(cross->child(1), cross->child(0));
       }});

  // --- Rule 4: σ_{P1 ∨ P2}(A) = σ_P1(A) ∪ σ_P2(A) (∪ = max-union).
  exploratory->Add(
      {4, "split-disjunctive-selection",
       false,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         auto pred = patterns::MatchSelect(e);
         if (!pred.has_value()) return std::nullopt;
         if ((*pred)->kind != Predicate::Kind::kOr) return std::nullopt;
         const ExprPtr& in = e->child(0);
         return alg::Union(alg::Select((*pred)->a, in),
                           alg::Select((*pred)->b, in));
       }});

  // --- Rule 5: DE(SET_APPLY_E(A × B)) = DE(SET_APPLY_{E'}(A)) when E
  // applies only to the A side (and B is assumed non-empty; see DESIGN.md).
  // Symmetric variant for the B side.
  directed->Add(
      {5, "eliminate-cross-under-de",
       true,
       [](const ExprPtr& e, const RuleContext& ctx) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kDupElim || !ctx.assume_nonempty) {
           return std::nullopt;
         }
         const ExprPtr& apply = e->child(0);
         if (!IsPlainSetApply(apply)) return std::nullopt;
         const ExprPtr& cross = apply->child(0);
         if (cross->kind() != OpKind::kCross) return std::nullopt;
         const ExprPtr& sub = apply->sub();
         if (DependsOnlyOnField(sub, "_1")) {
           return alg::DupElim(alg::SetApply(StripFieldExtract(sub, "_1"),
                                             cross->child(0)));
         }
         if (DependsOnlyOnField(sub, "_2")) {
           return alg::DupElim(alg::SetApply(StripFieldExtract(sub, "_2"),
                                             cross->child(1)));
         }
         return std::nullopt;
       }});

  // --- Rule 6: DE(GRP_E(A)) = GRP_E(A): groups are pairwise disjoint,
  // hence already distinct.
  directed->Add(
      {6, "de-of-group-is-group",
       true,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kDupElim) return std::nullopt;
         if (e->child(0)->kind() != OpKind::kGroup) return std::nullopt;
         return e->child(0);
       }});

  // --- Rule 7: DE(A × B) = DE(A) × DE(B); beneficial direction pushes DE
  // below the product.
  directed->Add(
      {7, "distribute-de-over-cross",
       true,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kDupElim) return std::nullopt;
         const ExprPtr& cross = e->child(0);
         if (cross->kind() != OpKind::kCross) return std::nullopt;
         return alg::Cross(alg::DupElim(cross->child(0)),
                           alg::DupElim(cross->child(1)));
       }});

  // --- Rule 8: GRP_E(DE(A)) = SET_APPLY_{DE}(GRP_E(A)); the beneficial
  // direction (Fig. 7) removes duplicates before grouping.
  directed->Add(
      {8, "de-before-group",
       true,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (!patterns::MatchApplyDupElim(e)) return std::nullopt;
         const ExprPtr& grp = e->child(0);
         if (grp->kind() != OpKind::kGroup) return std::nullopt;
         return alg::Group(grp->sub(), alg::DupElim(grp->child(0)));
       }});
  exploratory->Add(
      {8, "group-then-de-per-group",
       false,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kGroup) return std::nullopt;
         const ExprPtr& de = e->child(0);
         if (de->kind() != OpKind::kDupElim) return std::nullopt;
         return alg::SetApply(alg::DupElim(alg::Input()),
                              alg::Group(e->sub(), de->child(0)));
       }});

  // --- Rule 9: GRP_E(A × B) = SET_APPLY_{INPUT × B}(GRP_{E'}(A)) when E
  // applies only to A. Directed only when B is trivially replicable.
  directed->Add(
      {9, "group-cross-one-sided",
       true,
       [](const ExprPtr& e, const RuleContext& ctx) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kGroup || !ctx.assume_nonempty) {
           return std::nullopt;
         }
         const ExprPtr& cross = e->child(0);
         if (cross->kind() != OpKind::kCross) return std::nullopt;
         if (!CheapToReplicate(cross->child(1))) return std::nullopt;
         const ExprPtr& key = e->sub();
         if (!DependsOnlyOnField(key, "_1")) return std::nullopt;
         return alg::SetApply(
             alg::Cross(alg::Input(), cross->child(1)),
             alg::Group(StripFieldExtract(key, "_1"), cross->child(0)));
       }});

  // --- Rule 10: GRP_E1(σ_E2(A)) = SET_APPLY_{σ_E2}(GRP_E1(A)); the
  // beneficial direction (Fig. 11) pushes the selection ahead of grouping.
  // Exact modulo groups a per-group selection would leave empty (see
  // DESIGN.md); the equivalence tests normalize for this.
  directed->Add(
      {10, "selection-before-group",
       true,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (!IsPlainSetApply(e)) return std::nullopt;
         auto pred = MatchSelectOfInput(e->sub());
         if (!pred.has_value()) return std::nullopt;
         if (e->sub()->child(0)->kind() != OpKind::kInput) return std::nullopt;
         const ExprPtr& grp = e->child(0);
         if (grp->kind() != OpKind::kGroup) return std::nullopt;
         return alg::Group(grp->sub(), alg::Select(*pred, grp->child(0)));
       }});

  // --- Rule 11: SET_COLLAPSE(A ⊎ B) = SET_COLLAPSE(A) ⊎ SET_COLLAPSE(B).
  exploratory->Add(
      {11, "collapse-distributes-over-addunion",
       false,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kSetCollapse) return std::nullopt;
         const ExprPtr& u = e->child(0);
         if (u->kind() != OpKind::kAddUnion) return std::nullopt;
         return alg::AddUnion(alg::SetCollapse(u->child(0)),
                              alg::SetCollapse(u->child(1)));
       }});

  // --- Rule 12: SET_APPLY_E(A ⊎ B) = SET_APPLY_E(A) ⊎ SET_APPLY_E(B).
  exploratory->Add(
      {12, "apply-distributes-over-addunion",
       false,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (!IsPlainSetApply(e)) return std::nullopt;
         const ExprPtr& u = e->child(0);
         if (u->kind() != OpKind::kAddUnion) return std::nullopt;
         return alg::AddUnion(alg::SetApply(e->sub(), u->child(0)),
                              alg::SetApply(e->sub(), u->child(1)));
       }});
  exploratory->Add(
      {12, "apply-factor-addunion",
       false,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kAddUnion) return std::nullopt;
         const ExprPtr& l = e->child(0);
         const ExprPtr& r = e->child(1);
         if (!IsPlainSetApply(l) || !IsPlainSetApply(r)) return std::nullopt;
         if (!l->sub()->Equals(*r->sub())) return std::nullopt;
         return alg::SetApply(l->sub(),
                              alg::AddUnion(l->child(0), r->child(0)));
       }});

  // --- Rule 13: SET_APPLY over × splits into per-input SET_APPLYs when the
  // subscript builds its result independently from the two pair components:
  // SET_APPLY_{TUP_CAT(L,R)}(A × B)
  //   = rel-flatten(SET_APPLY_{L'}(A) × SET_APPLY_{R'}(B)).
  // This is the multiset engine behind relational projection pushdown into
  // joins (together with rules 24 and 27, as the Appendix notes).
  directed->Add(
      {13, "apply-distributes-over-cross",
       true,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (!IsPlainSetApply(e)) return std::nullopt;
         const ExprPtr& cross = e->child(0);
         if (cross->kind() != OpKind::kCross) return std::nullopt;
         const ExprPtr& sub = e->sub();
         if (sub->kind() != OpKind::kTupCat) return std::nullopt;
         if (patterns::IsPairFlatten(sub)) return std::nullopt;  // no-op form
         const ExprPtr& l = sub->child(0);
         const ExprPtr& r = sub->child(1);
         if (!DependsOnlyOnField(l, "_1") || !DependsOnlyOnField(r, "_2")) {
           return std::nullopt;
         }
         ExprPtr left = alg::SetApply(StripFieldExtract(l, "_1"),
                                      cross->child(0));
         ExprPtr right = alg::SetApply(StripFieldExtract(r, "_2"),
                                       cross->child(1));
         return alg::SetApply(
             alg::TupCat(alg::TupExtract("_1", alg::Input()),
                         alg::TupExtract("_2", alg::Input())),
             alg::Cross(std::move(left), std::move(right)));
       }});

  // --- Rule 14: SET_APPLY_E(SET_COLLAPSE(A)) =
  //              SET_COLLAPSE(SET_APPLY_{SET_APPLY_E}(A)).
  exploratory->Add(
      {14, "push-apply-inside-collapse",
       false,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (!IsPlainSetApply(e)) return std::nullopt;
         const ExprPtr& coll = e->child(0);
         if (coll->kind() != OpKind::kSetCollapse) return std::nullopt;
         return alg::SetCollapse(alg::SetApply(
             alg::SetApply(e->sub(), alg::Input()), coll->child(0)));
       }});
  exploratory->Add(
      {14, "pull-apply-out-of-collapse",
       false,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kSetCollapse) return std::nullopt;
         const ExprPtr& outer = e->child(0);
         if (!IsPlainSetApply(outer)) return std::nullopt;
         const ExprPtr& sub = outer->sub();
         if (!IsPlainSetApply(sub)) return std::nullopt;
         if (sub->child(0)->kind() != OpKind::kInput) return std::nullopt;
         return alg::SetApply(sub->sub(),
                              alg::SetCollapse(outer->child(0)));
       }});

  // --- Rule 15: combine successive SET_APPLYs by composing subscripts.
  // The inner scan may carry a §4 exact-type filter (the filter selects
  // *source* elements, which composition preserves); the outer must not
  // (its filter would inspect intermediate results).
  directed->Add(
      {15, "combine-set-applys",
       true,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (!IsPlainSetApply(e)) return std::nullopt;
         const ExprPtr& inner = e->child(0);
         if (inner->kind() != OpKind::kSetApply) return std::nullopt;
         // The outer APPLY never sees occurrences the inner one dropped as
         // dne; after composition that dropping only survives if the inner
         // subscript's dne poisons the composed expression.
         if (analysis::MayProduceDne(inner->sub(),
                                     /*input_may_be_dne=*/false) &&
             !analysis::DneStrictInInput(e->sub())) {
           return std::nullopt;
         }
         return alg::SetApply(SubstituteInput(e->sub(), inner->sub()),
                              inner->child(0), inner->type_filter());
       }});

  // --- Identity cleanups (not numbered in the paper; standard).
  directed->Add(
      {0, "apply-identity-elim",
       true,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (!IsPlainSetApply(e) && e->kind() != OpKind::kArrApply) {
           return std::nullopt;
         }
         if (e->kind() == OpKind::kSetApply && !e->type_filter().empty()) {
           return std::nullopt;
         }
         if (e->sub()->kind() != OpKind::kInput) return std::nullopt;
         return e->child(0);
       }});
  directed->Add(
      {0, "comp-true-elim",
       true,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (e->kind() != OpKind::kComp) return std::nullopt;
         if (e->pred()->kind != Predicate::Kind::kTrue) return std::nullopt;
         return e->child(0);
       }});

  // --- Rule 26 instance (Figure 11): push an enrichment projection inside
  // COMP so a DEREF shared by the selection predicate and the grouping key
  // is materialized once. Exploratory, not directed: the paper itself notes
  // "this rule helps here (it does not always help)" — whether saving a
  // DEREF pays for building the enriched tuple depends on how expensive
  // dereferencing is, which is the cost model's call. Matches
  //   SET_APPLY_F(GRP_K(σ_P(A)))
  // where F consumes group members only through fields, and P and K share
  // a DEREF-rooted subexpression D over INPUT. Rewrites to
  //   SET_APPLY_F(GRP_{K[D:=$m]}(SET_APPLY_{COMP_{P[D:=$m]}(H)}(A)))
  // with H = TUP_CAT(INPUT, ("$m": D)) the enrichment of each element.
  exploratory->Add(
      {26, "push-enrichment-into-comp",
       false,
       [](const ExprPtr& e, const RuleContext&) -> std::optional<ExprPtr> {
         if (!IsPlainSetApply(e)) return std::nullopt;
         const ExprPtr& f = e->sub();
         if (!IsPlainSetApply(f) || f->child(0)->kind() != OpKind::kInput) {
           return std::nullopt;
         }
         if (!UsesInputOnlyThroughFields(f->sub())) return std::nullopt;
         const ExprPtr& grp = e->child(0);
         if (grp->kind() != OpKind::kGroup) return std::nullopt;
         auto pred = patterns::MatchSelect(grp->child(0));
         if (!pred.has_value()) return std::nullopt;
         if (!PredUsesInputOnlyThroughFields(*pred)) return std::nullopt;
         auto shared = analysis::FindSharedDeref(*pred, grp->sub());
         if (!shared.has_value()) return std::nullopt;
         ExprPtr materialized = alg::TupExtract("$m", alg::Input());
         // H: concatenate the element with a 1-field tuple ($m: D).
         ExprPtr enrich = alg::TupCat(
             alg::Input(),
             MakeExpr(OpKind::kTupMake, {*shared}, nullptr, nullptr, nullptr,
                      "$m", {}, "", 0, 0, 0, false, false, false));
         PredicatePtr new_pred =
             analysis::PredReplaceSubtree(*pred, *shared, materialized);
         ExprPtr new_key =
             analysis::ReplaceSubtree(grp->sub(), *shared, materialized);
         ExprPtr filtered = alg::SetApply(
             alg::Comp(std::move(new_pred), enrich), grp->child(0)->child(0));
         return alg::SetApply(e->sub(),
                              alg::Group(std::move(new_key),
                                         std::move(filtered)));
       }});
}

}  // namespace excess
