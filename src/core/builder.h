#ifndef EXCESS_CORE_BUILDER_H_
#define EXCESS_CORE_BUILDER_H_

#include <string>
#include <utility>
#include <vector>

#include "core/expr.h"

namespace excess {
/// Typed construction helpers for algebra expressions. `alg::` is the
/// public surface for building query trees by hand; the EXCESS translator
/// and the rewrite rules are built on it too.
namespace alg {

inline ExprPtr Make(OpKind kind, std::vector<ExprPtr> children = {},
                    ExprPtr sub = nullptr, PredicatePtr pred = nullptr,
                    ValuePtr literal = nullptr, std::string name = "",
                    std::vector<std::string> names = {},
                    std::string type_filter = "", int64_t index = 0,
                    int64_t lo = 0, int64_t hi = 0, bool index_is_last = false,
                    bool lo_is_last = false, bool hi_is_last = false) {
  return MakeExpr(kind, std::move(children), std::move(sub), std::move(pred),
                  std::move(literal), std::move(name), std::move(names),
                  std::move(type_filter), index, lo, hi, index_is_last,
                  lo_is_last, hi_is_last);
}

// --- leaves ----------------------------------------------------------------
inline ExprPtr Input() { return Make(OpKind::kInput); }
inline ExprPtr Const(ValuePtr v) {
  return Make(OpKind::kConst, {}, nullptr, nullptr, std::move(v));
}
inline ExprPtr Var(std::string name) {
  return Make(OpKind::kVar, {}, nullptr, nullptr, nullptr, std::move(name));
}
inline ExprPtr Param(int64_t i) {
  return Make(OpKind::kParam, {}, nullptr, nullptr, nullptr, "", {}, "", i);
}

// --- multiset primitives ----------------------------------------------------
inline ExprPtr AddUnion(ExprPtr a, ExprPtr b) {
  return Make(OpKind::kAddUnion, {std::move(a), std::move(b)});
}
inline ExprPtr SetMake(ExprPtr x) {
  return Make(OpKind::kSetMake, {std::move(x)});
}
/// SET_APPLY_E(in); `type_filter` non-empty restricts application to
/// occurrences whose exact type equals `type_filter` (others are dropped) —
/// the §4 extension.
inline ExprPtr SetApply(ExprPtr e, ExprPtr in, std::string type_filter = "") {
  return Make(OpKind::kSetApply, {std::move(in)}, std::move(e), nullptr,
              nullptr, "", {}, std::move(type_filter));
}
inline ExprPtr Group(ExprPtr e, ExprPtr in) {
  return Make(OpKind::kGroup, {std::move(in)}, std::move(e));
}
inline ExprPtr DupElim(ExprPtr in) {
  return Make(OpKind::kDupElim, {std::move(in)});
}
inline ExprPtr Diff(ExprPtr a, ExprPtr b) {
  return Make(OpKind::kDiff, {std::move(a), std::move(b)});
}
inline ExprPtr Cross(ExprPtr a, ExprPtr b) {
  return Make(OpKind::kCross, {std::move(a), std::move(b)});
}
inline ExprPtr SetCollapse(ExprPtr in) {
  return Make(OpKind::kSetCollapse, {std::move(in)});
}

// --- tuple primitives --------------------------------------------------------
inline ExprPtr Project(std::vector<std::string> fields, ExprPtr in) {
  return Make(OpKind::kProject, {std::move(in)}, nullptr, nullptr, nullptr, "",
              std::move(fields));
}
inline ExprPtr TupCat(ExprPtr a, ExprPtr b) {
  return Make(OpKind::kTupCat, {std::move(a), std::move(b)});
}
inline ExprPtr TupExtract(std::string field, ExprPtr in) {
  return Make(OpKind::kTupExtract, {std::move(in)}, nullptr, nullptr, nullptr,
              std::move(field));
}
inline ExprPtr TupMake(ExprPtr x) {
  return Make(OpKind::kTupMake, {std::move(x)});
}
/// TUP with an explicit field name instead of the default "_1"; the EXCESS
/// translator uses this to build environment tuples and named targets.
inline ExprPtr TupMakeNamed(std::string field, ExprPtr x) {
  return Make(OpKind::kTupMake, {std::move(x)}, nullptr, nullptr, nullptr,
              std::move(field));
}

// --- array primitives --------------------------------------------------------
inline ExprPtr ArrMake(ExprPtr x) {
  return Make(OpKind::kArrMake, {std::move(x)});
}
inline ExprPtr ArrExtract(int64_t index, ExprPtr in) {
  return Make(OpKind::kArrExtract, {std::move(in)}, nullptr, nullptr, nullptr,
              "", {}, "", index);
}
inline ExprPtr ArrExtractLast(ExprPtr in) {
  return Make(OpKind::kArrExtract, {std::move(in)}, nullptr, nullptr, nullptr,
              "", {}, "", 0, 0, 0, /*index_is_last=*/true);
}
inline ExprPtr ArrApply(ExprPtr e, ExprPtr in) {
  return Make(OpKind::kArrApply, {std::move(in)}, std::move(e));
}
inline ExprPtr SubArr(int64_t lo, int64_t hi, ExprPtr in, bool lo_last = false,
                      bool hi_last = false) {
  return Make(OpKind::kSubArr, {std::move(in)}, nullptr, nullptr, nullptr, "",
              {}, "", 0, lo, hi, false, lo_last, hi_last);
}
inline ExprPtr ArrCat(ExprPtr a, ExprPtr b) {
  return Make(OpKind::kArrCat, {std::move(a), std::move(b)});
}
inline ExprPtr ArrCollapse(ExprPtr in) {
  return Make(OpKind::kArrCollapse, {std::move(in)});
}
inline ExprPtr ArrDiff(ExprPtr a, ExprPtr b) {
  return Make(OpKind::kArrDiff, {std::move(a), std::move(b)});
}
inline ExprPtr ArrDupElim(ExprPtr in) {
  return Make(OpKind::kArrDupElim, {std::move(in)});
}
inline ExprPtr ArrCross(ExprPtr a, ExprPtr b) {
  return Make(OpKind::kArrCross, {std::move(a), std::move(b)});
}

// --- reference operators -------------------------------------------------------
/// REF with an explicit target type ("" lets the evaluator derive one from
/// the operand's exact-type tag or fall back to an anonymous type).
inline ExprPtr RefOp(ExprPtr in, std::string target_type = "") {
  return Make(OpKind::kRef, {std::move(in)}, nullptr, nullptr, nullptr,
              std::move(target_type));
}
inline ExprPtr Deref(ExprPtr in) { return Make(OpKind::kDeref, {std::move(in)}); }

// --- predicates ----------------------------------------------------------------
inline ExprPtr Comp(PredicatePtr pred, ExprPtr in) {
  return Make(OpKind::kComp, {std::move(in)}, nullptr, std::move(pred));
}

// --- extensions ------------------------------------------------------------------
inline ExprPtr Arith(std::string op, ExprPtr a, ExprPtr b) {
  return Make(OpKind::kArith, {std::move(a), std::move(b)}, nullptr, nullptr,
              nullptr, std::move(op));
}
/// Aggregate over a multiset: name in {"min","max","count","sum","avg"}.
inline ExprPtr Agg(std::string name, ExprPtr in) {
  return Make(OpKind::kAgg, {std::move(in)}, nullptr, nullptr, nullptr,
              std::move(name));
}
/// Late-bound method call: children[0] is the receiver, the rest are
/// arguments. Resolved through the Evaluator's MethodResolver using the
/// receiver's run-time exact type (§4 strategy A).
inline ExprPtr MethodCall(std::string method, ExprPtr receiver,
                          std::vector<ExprPtr> args = {}) {
  std::vector<ExprPtr> children;
  children.reserve(1 + args.size());
  children.push_back(std::move(receiver));
  for (auto& a : args) children.push_back(std::move(a));
  return Make(OpKind::kMethodCall, std::move(children), nullptr, nullptr,
              nullptr, std::move(method));
}

// --- derived operators (Appendix §1) -----------------------------------------------
/// Multiset union: A ∪ B = (A - B) ⊎ B (max of cardinalities).
inline ExprPtr Union(ExprPtr a, ExprPtr b) {
  return AddUnion(Diff(a, b), b);
}
/// Multiset intersection: A ∩ B = A - (A - B) (min of cardinalities).
inline ExprPtr Intersect(ExprPtr a, ExprPtr b) {
  return Diff(a, Diff(a, b));
}
/// Multiset selection σ_P(A) = SET_APPLY_{COMP_P(INPUT)}(A).
inline ExprPtr Select(PredicatePtr pred, ExprPtr in) {
  return SetApply(Comp(std::move(pred), Input()), std::move(in));
}
/// Array selection: ARR_APPLY_{COMP_P}(A).
inline ExprPtr ArrSelect(PredicatePtr pred, ExprPtr in) {
  return ArrApply(Comp(std::move(pred), Input()), std::move(in));
}
/// Relational-like cross product: flattens the pairs produced by × with
/// TUP_CAT (Appendix §1).
inline ExprPtr RelCross(ExprPtr a, ExprPtr b) {
  return SetApply(TupCat(TupExtract("_1", Input()), TupExtract("_2", Input())),
                  Cross(std::move(a), std::move(b)));
}
/// Relational-like θ-join: select over ×, then flatten each ordered pair
/// with TUP_CAT. The predicate sees the *pair*, so its atoms address the
/// sides as TUP_EXTRACT_{_1}/TUP_EXTRACT_{_2}(INPUT).
inline ExprPtr RelJoin(PredicatePtr theta, ExprPtr a, ExprPtr b) {
  return SetApply(
      TupCat(TupExtract("_1", Input()), TupExtract("_2", Input())),
      SetApply(Comp(std::move(theta), Input()), Cross(std::move(a), std::move(b))));
}

// --- physical operators (planner output; see core/physical.h) ----------------
/// HASH_JOIN(A, B, lkey, rkey)[θ]: answer-equal to
/// SET_APPLY_{COMP_θ(INPUT)}(CROSS(A, B)) when lkey/rkey are the two sides
/// of an equality atom conjoined in θ. lkey/rkey bind INPUT to an element
/// of A resp. B; θ sees the pair tuple (_1, _2). Built by the physical
/// lowering pass, not by translation from EXCESS.
inline ExprPtr HashJoin(PredicatePtr theta, ExprPtr a, ExprPtr b, ExprPtr lkey,
                        ExprPtr rkey) {
  return Make(OpKind::kHashJoin,
              {std::move(a), std::move(b), std::move(lkey), std::move(rkey)},
              nullptr, std::move(theta));
}

/// IDX_PROBE<index>(probe)[opnd][θ]: answer-equal to
/// SET_APPLY_{COMP_θ(opnd)}(Var(set_name)) when one conjunct of θ compares
/// the index's key path of the element against the (closed) probe
/// expression with `cmp`. `opnd` is the COMP operand binder (INPUT = set
/// element). Built by the physical lowering pass.
inline ExprPtr IndexProbe(std::string index_name, std::string set_name,
                          CmpOp cmp, ExprPtr probe, ExprPtr opnd,
                          PredicatePtr theta) {
  return Make(OpKind::kIndexProbe, {std::move(probe)}, std::move(opnd),
              std::move(theta), nullptr, std::move(index_name),
              {std::move(set_name)}, "", static_cast<int64_t>(cmp));
}

/// IDX_JOIN<index>(A, B, kA, kB)[θ]: HASH_JOIN whose `indexed_side` (0 = A,
/// 1 = B) is served from a secondary index instead of a scan-built hash
/// table. Built by the physical lowering pass.
inline ExprPtr IndexJoin(std::string index_name, int64_t indexed_side,
                         PredicatePtr theta, ExprPtr a, ExprPtr b, ExprPtr lkey,
                         ExprPtr rkey) {
  return Make(OpKind::kIndexJoin,
              {std::move(a), std::move(b), std::move(lkey), std::move(rkey)},
              nullptr, std::move(theta), nullptr, std::move(index_name), {}, "",
              indexed_side);
}

/// Shorthand for TUP_EXTRACT chains: Path({"a","b"}, Input()) is
/// TUP_EXTRACT_b(TUP_EXTRACT_a(INPUT)).
inline ExprPtr Path(const std::vector<std::string>& fields, ExprPtr base) {
  ExprPtr e = std::move(base);
  for (const auto& f : fields) e = TupExtract(f, std::move(e));
  return e;
}

// Predicate atom helpers.
inline PredicatePtr Eq(ExprPtr a, ExprPtr b) {
  return Predicate::Atom(std::move(a), CmpOp::kEq, std::move(b));
}
inline PredicatePtr Ne(ExprPtr a, ExprPtr b) {
  return Predicate::Atom(std::move(a), CmpOp::kNe, std::move(b));
}
inline PredicatePtr Lt(ExprPtr a, ExprPtr b) {
  return Predicate::Atom(std::move(a), CmpOp::kLt, std::move(b));
}
inline PredicatePtr Le(ExprPtr a, ExprPtr b) {
  return Predicate::Atom(std::move(a), CmpOp::kLe, std::move(b));
}
inline PredicatePtr Gt(ExprPtr a, ExprPtr b) {
  return Predicate::Atom(std::move(a), CmpOp::kGt, std::move(b));
}
inline PredicatePtr Ge(ExprPtr a, ExprPtr b) {
  return Predicate::Atom(std::move(a), CmpOp::kGe, std::move(b));
}
inline PredicatePtr In(ExprPtr a, ExprPtr b) {
  return Predicate::Atom(std::move(a), CmpOp::kIn, std::move(b));
}

// Literal shorthands.
inline ExprPtr IntLit(int64_t v) { return Const(Value::Int(v)); }
inline ExprPtr FloatLit(double v) { return Const(Value::Float(v)); }
inline ExprPtr StrLit(std::string v) { return Const(Value::Str(std::move(v))); }
inline ExprPtr BoolLit(bool v) { return Const(Value::Bool(v)); }

}  // namespace alg
}  // namespace excess

#endif  // EXCESS_CORE_BUILDER_H_
