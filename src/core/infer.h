#ifndef EXCESS_CORE_INFER_H_
#define EXCESS_CORE_INFER_H_

#include "catalog/schema.h"
#include "core/expr.h"
#include "objects/database.h"
#include "util/status.h"

namespace excess {

/// Derives the schema of an arbitrary value, consulting the store for the
/// exact types behind references. Heterogeneous or empty collections infer
/// an `any` element schema.
SchemaPtr SchemaOfValue(const ValuePtr& value, const ObjectStore* store);

/// Static output-schema inference for algebra expressions: the compile-time
/// half of the many-sorted closure property. Each operator has a sort
/// discipline (SET_APPLY needs a multiset, TUP_CAT needs tuples, ...);
/// Infer() reports TypeError where the evaluator would fail at run time,
/// which is what makes plans checkable before execution.
class TypeInference {
 public:
  explicit TypeInference(const Database* db) : db_(db) {}

  /// Infers the output schema; `input` is the schema INPUT is bound to (null
  /// for closed expressions).
  Result<SchemaPtr> Infer(const ExprPtr& expr, SchemaPtr input = nullptr);

 private:
  Result<SchemaPtr> InferNode(const Expr& e, const SchemaPtr& input);
  Status CheckPredicate(const Predicate& p, const SchemaPtr& input);

  const Database* db_;
};

}  // namespace excess

#endif  // EXCESS_CORE_INFER_H_
