#ifndef EXCESS_CORE_INFER_H_
#define EXCESS_CORE_INFER_H_

#include "catalog/schema.h"
#include "core/expr.h"
#include "objects/database.h"
#include "util/status.h"

namespace excess {

/// Derives the schema of an arbitrary value, consulting the store for the
/// exact types behind references. Heterogeneous or empty collections infer
/// an `any` element schema.
SchemaPtr SchemaOfValue(const ValuePtr& value, const ObjectStore* store);

/// Static output-schema inference for algebra expressions: the compile-time
/// half of the many-sorted closure property. Each operator has a sort
/// discipline (SET_APPLY needs a multiset, TUP_CAT needs tuples, ...);
/// Infer() reports TypeError where the evaluator would fail at run time,
/// which is what makes plans checkable before execution.
class TypeInference {
 public:
  explicit TypeInference(const Database* db) : db_(db) {}

  /// Infers the output schema; `input` is the schema INPUT is bound to (null
  /// for closed expressions).
  Result<SchemaPtr> Infer(const ExprPtr& expr, SchemaPtr input = nullptr);

 private:
  /// Inference recurses over the plan, so a pathological builder-made tree
  /// could exhaust the stack before evaluation ever sees it. Same RAII
  /// guard discipline as the parser (kMaxDepth there is 200 on ASTs). The
  /// cap must leave the guard reachable on the worst toolchain: asan
  /// inflates InferNode frames past 20 KB, so an 8 MB stack holds well
  /// under 400 of them — 256 is still far above anything a legal parse
  /// can translate to.
  static constexpr int kMaxDepth = 256;
  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthGuard() { --*depth_; }
    int* depth_;
  };

  Result<SchemaPtr> InferNode(const Expr& e, const SchemaPtr& input);
  Status CheckPredicate(const Predicate& p, const SchemaPtr& input);

  const Database* db_;
  int depth_ = 0;
};

}  // namespace excess

#endif  // EXCESS_CORE_INFER_H_
