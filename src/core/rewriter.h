#ifndef EXCESS_CORE_REWRITER_H_
#define EXCESS_CORE_REWRITER_H_

#include <string>
#include <vector>

#include "core/rules.h"
#include "objects/database.h"
#include "util/status.h"

namespace excess {

/// Observer for rule firings (the rewrite-trace seam used by EXPLAIN
/// (TRACE) / obs::RewriteTrace). `before` and `after` are the matched
/// sub-expression and its replacement, not the whole tree. Phases:
///  - "heuristic": a directed rule fired during a fixpoint Rewrite();
///  - "search": the cost-based planner adopted this rewrite because it
///    improved the best estimate so far (Planner reports these).
class RewriteObserver {
 public:
  virtual ~RewriteObserver() = default;
  virtual void OnRewrite(const char* phase, const RewriteRule& rule,
                         const ExprPtr& before, const ExprPtr& after) = 0;
};

/// Applies transformation rules to query trees. Two modes:
///  - Rewrite(): runs the rule set's *directed* rules to a fixpoint
///    (top-down, first match wins per pass) — the heuristic phase an
///    EXODUS-style optimizer would run unconditionally;
///  - EnumerateNeighbors(): produces every tree reachable by one
///    application of any rule at any position — the expansion step of the
///    cost-based search in Planner.
///
/// The rewriter tracks the INPUT schema while descending into subscripts
/// and predicate operands so that schema-dependent rules (17, 21, 24, 25)
/// can consult static information at the right scope.
class Rewriter {
 public:
  Rewriter(const Database* db, RuleSet rules)
      : db_(db), rules_(std::move(rules)) {}

  /// Directed rules to fixpoint; at most `max_steps` individual rule firings
  /// (a safety valve, not a tuning knob).
  Result<ExprPtr> Rewrite(const ExprPtr& expr, int max_steps = 1000);

  /// All trees one rule application away from `expr` (directed and
  /// exploratory rules alike).
  std::vector<ExprPtr> EnumerateNeighbors(const ExprPtr& expr);

  /// One enumerated neighbor, tagged with the rule that produced it (the
  /// pointer aims into this Rewriter's rule set and lives as long as it).
  struct TaggedNeighbor {
    const RewriteRule* rule;
    ExprPtr tree;
  };
  /// As EnumerateNeighbors, but attributed — the planner's search phase
  /// uses this to report *which* rule produced an adopted improvement.
  std::vector<TaggedNeighbor> EnumerateNeighborsTagged(const ExprPtr& expr);

  /// Names of rules fired by the last Rewrite(), in order.
  const std::vector<std::string>& applied() const { return applied_; }

  /// Attaches a trace observer (non-owning; may be null). Fired once per
  /// directed-rule application inside Rewrite(), with the matched
  /// sub-expression and its replacement.
  void set_observer(RewriteObserver* observer) { observer_ = observer; }

 private:
  /// Tries to apply one directed rule anywhere in `e` (top-down). Returns
  /// the rewritten tree or nullptr.
  ExprPtr PassDirected(const ExprPtr& e, const SchemaPtr& input_schema);

  /// Collects every single-application rewrite of `e` into `out`, where
  /// `rebuild` maps a replacement for `e` to a full tree.
  void Neighbors(const ExprPtr& e, const SchemaPtr& input_schema,
                 const std::function<ExprPtr(ExprPtr)>& rebuild,
                 std::vector<TaggedNeighbor>* out);

  /// INPUT schema for the subscript of apply/group node `e` whose data
  /// input has schema context `input_schema`; null when unknown.
  SchemaPtr SubscriptInputSchema(const Expr& e, const SchemaPtr& input_schema);

  const Database* db_;
  RuleSet rules_;
  std::vector<std::string> applied_;
  RewriteObserver* observer_ = nullptr;
};

}  // namespace excess

#endif  // EXCESS_CORE_REWRITER_H_
