#ifndef EXCESS_CORE_GOVERNOR_H_
#define EXCESS_CORE_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "util/status.h"

namespace excess {

namespace internal {
/// Strict env-knob parser (same discipline as ParsePoolSize): the whole
/// string must be a base-10 integer in [lo, hi]; anything else — empty,
/// trailing junk, overflow, out of range — yields `fallback`.
int64_t ParseLimit(const char* env, int64_t lo, int64_t hi, int64_t fallback);
}  // namespace internal

/// Default cap on evaluator recursion depth. Plans this deep cannot come out
/// of the parser (its own guard is kMaxDepth=200) but can be built directly;
/// the cap keeps them a typed error instead of a stack overflow. Frames are
/// a few hundred bytes, so 1024 levels stay far below an 8 MB stack even
/// under asan's inflated frames.
inline constexpr int kDefaultEvalDepth = 1024;

/// Per-query resource budgets. A zero field means "unlimited" for that
/// dimension (the default), except max_eval_depth which always has the
/// stack-protecting default above.
struct ExecLimits {
  int64_t max_bytes = 0;        // peak materialized bytes (0 = unlimited)
  int64_t max_occurrences = 0;  // materialized occurrences/cells (0 = unlim.)
  int max_eval_depth = kDefaultEvalDepth;  // eval recursion depth
  int64_t deadline_ms = 0;      // wall-clock budget (0 = unlimited)

  static ExecLimits Unlimited() { return ExecLimits(); }

  /// `base` overlaid with the EXCESS_DEADLINE_MS / EXCESS_MEM_LIMIT_MB env
  /// knobs. A knob that is set and valid wins over the corresponding field
  /// of `base`; unset or invalid knobs leave `base` untouched.
  static ExecLimits FromEnv(ExecLimits base);
  static ExecLimits FromEnv() { return FromEnv(ExecLimits()); }
};

/// Shared cooperative-cancellation flag. The caller keeps one end (Cancel),
/// every governor checkpoint polls the other. Relaxed atomics: cancellation
/// is advisory and observed at the next checkpoint, not instantaneously.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  /// Re-arms the token so the owning session can run further statements.
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};
using CancelTokenPtr = std::shared_ptr<CancelToken>;

/// Fault seam: check/faultinject implements this to fail the Nth tracked
/// allocation or fire cancellation at the Nth checkpoint. Production code
/// never installs hooks; the pointer is null and costs one branch.
class GovernorHooks {
 public:
  virtual ~GovernorHooks() = default;
  /// Called once per Checkpoint, before limit checks; a non-OK return is
  /// propagated as that checkpoint's verdict.
  virtual Status OnCheckpoint() = 0;
  /// Called once per ChargeBytes; a non-OK return simulates an allocation
  /// failure at this materialization site.
  virtual Status OnCharge(int64_t bytes) = 0;
};

/// Per-query governor: one instance per top-level evaluation, shared by
/// every worker thread the evaluation fans out to (all counters are
/// atomics). Checkpoint() is the single cheap call sprinkled through the
/// occurrence-producing loops; ChargeBytes() is called where fresh values
/// are materialized.
class Governor {
 public:
  explicit Governor(ExecLimits limits = ExecLimits(),
                    CancelTokenPtr cancel = nullptr);

  /// Cancellation poll + occurrence accounting + (periodically) deadline
  /// check. `new_occurrences` is the number of occurrences/cells the caller
  /// just materialized; pass 0 for a pure liveness check.
  Status Checkpoint(int64_t new_occurrences = 0) {
    if (hooks_ != nullptr) {
      Status s = hooks_->OnCheckpoint();
      if (!s.ok()) return s;
    }
    if (cancel_ != nullptr && cancel_->cancelled()) {
      return CancelledTrip();
    }
    if (new_occurrences > 0) {
      int64_t total = occurrences_.fetch_add(new_occurrences,
                                             std::memory_order_relaxed) +
                      new_occurrences;
      if (limits_.max_occurrences > 0 && total > limits_.max_occurrences) {
        return OccurrenceLimit(total);
      }
    }
    if (has_deadline_ &&
        (ticks_.fetch_add(1, std::memory_order_relaxed) & kDeadlineMask) ==
            0) {
      return CheckDeadline();
    }
    return Status::OK();
  }

  /// Accounts `bytes` of fresh materialization against the memory budget.
  /// The counter is monotone during a query (intermediates are shared
  /// immutable structure; see ReleaseBytes), so its running value is an
  /// upper bound on live bytes and its final value the reported peak.
  Status ChargeBytes(int64_t bytes);

  /// Returns bytes explicitly discarded mid-query (e.g. a scratch index a
  /// kernel frees before returning). Never drives the counter negative.
  void ReleaseBytes(int64_t bytes);

  int64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  int64_t occurrences() const {
    return occurrences_.load(std::memory_order_relaxed);
  }
  const ExecLimits& limits() const { return limits_; }
  const CancelTokenPtr& cancel_token() const { return cancel_; }

  /// Installs fault hooks. Test-only; must happen before evaluation starts
  /// (the pointer is read unsynchronized from worker threads).
  void set_hooks(GovernorHooks* hooks) { hooks_ = hooks; }

 private:
  // Deadline polls hit the clock once per (kDeadlineMask + 1) checkpoints.
  static constexpr uint32_t kDeadlineMask = 0xFF;

  Status CheckDeadline();
  Status OccurrenceLimit(int64_t total) const;
  /// Mints the Cancelled status (and counts the trip) off the hot path.
  static Status CancelledTrip();

  ExecLimits limits_;
  CancelTokenPtr cancel_;
  GovernorHooks* hooks_ = nullptr;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;
  std::atomic<int64_t> occurrences_{0};
  std::atomic<int64_t> bytes_{0};
  std::atomic<int64_t> peak_bytes_{0};
  std::atomic<uint32_t> ticks_{0};
};

/// Batches occurrence checkpoints for tight per-element loops: counts
/// accumulate locally and flush to the governor every kEvery elements, so
/// the loop's fast path stays free of atomic traffic. The budget can
/// overshoot by at most one batch. Only appropriate where something else
/// polls cancellation at element granularity (e.g. the per-element
/// EvalNode entry checkpoint).
class GovernorBatch {
 public:
  explicit GovernorBatch(Governor* gov) : gov_(gov) {}

  Status Tick(int64_t occurrences = 1) {
    if (gov_ == nullptr) return Status::OK();
    pending_ += occurrences;
    if (--until_flush_ == 0) return Flush();
    return Status::OK();
  }

  /// Reports the remainder; call once after the loop.
  Status Flush() {
    until_flush_ = kEvery;
    if (gov_ == nullptr || pending_ == 0) return Status::OK();
    int64_t n = pending_;
    pending_ = 0;
    return gov_->Checkpoint(n);
  }

 private:
  static constexpr int kEvery = 64;
  Governor* gov_;
  int64_t pending_ = 0;
  int until_flush_ = kEvery;
};

}  // namespace excess

#endif  // EXCESS_CORE_GOVERNOR_H_
