#ifndef EXCESS_OBJECTS_OID_H_
#define EXCESS_OBJECTS_OID_H_

#include <cstdint>
#include <string>

#include "util/hash.h"
#include "util/string_util.h"

namespace excess {

/// An object identifier. The paper (§3.1) requires the OID space R to be
/// partitioned by type: R(n) for a type named n is an infinite set of OIDs
/// usable only for objects allocated with exact type n (substitutability
/// makes them members of every supertype's domain as well; see
/// ObjectStore::InDomain). We realize the partition with a (type_id,
/// serial) pair — the analogue of the paper's "f(n) ones followed by a
/// zero" construction — where serial counters are per type and unbounded.
struct Oid {
  uint32_t type_id = 0;
  uint64_t serial = 0;

  friend bool operator==(const Oid& a, const Oid& b) {
    return a.type_id == b.type_id && a.serial == b.serial;
  }
  friend bool operator!=(const Oid& a, const Oid& b) { return !(a == b); }
  friend bool operator<(const Oid& a, const Oid& b) {
    return a.type_id != b.type_id ? a.type_id < b.type_id : a.serial < b.serial;
  }

  uint64_t Hash() const {
    return HashCombine(static_cast<uint64_t>(type_id), serial);
  }

  std::string ToString() const { return StrCat("@", type_id, ":", serial); }
};

struct OidHash {
  size_t operator()(const Oid& oid) const { return oid.Hash(); }
};

}  // namespace excess

#endif  // EXCESS_OBJECTS_OID_H_
