#ifndef EXCESS_OBJECTS_DATABASE_H_
#define EXCESS_OBJECTS_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "objects/index.h"
#include "objects/store.h"
#include "objects/value.h"
#include "util/status.h"

namespace excess {

/// A named, persistent top-level object (EXTRA `create` statement).
struct NamedObject {
  std::string name;
  SchemaPtr schema;
  ValuePtr value;
};

/// A database: catalog + object store + the named top-level structures that
/// EXCESS queries range over. The paper defines a database as a multiset of
/// structures (schema, instance); the named objects are those structures.
class Database {
 public:
  Database() : store_(&catalog_) {}
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }

  /// EXTRA `create Name : schema`; the object starts empty ({} / [] / dne)
  /// unless an initial value is supplied.
  Status CreateNamed(const std::string& name, SchemaPtr schema,
                     ValuePtr initial = nullptr);

  bool HasNamed(const std::string& name) const;
  Result<const NamedObject*> GetNamed(const std::string& name) const;
  Result<ValuePtr> NamedValue(const std::string& name) const;
  Result<SchemaPtr> NamedSchema(const std::string& name) const;
  Status SetNamed(const std::string& name, ValuePtr value);

  /// The `append` fast path: merges `addition` (a multiset) into the named
  /// multiset in O(|addition|) via a per-name distinct-element index,
  /// instead of copying and re-normalizing all existing entries — the
  /// difference between linear and quadratic WAL replay of append-heavy
  /// logs. Copy-on-write keeps previously handed-out values (snapshots,
  /// transaction undo images) untouched.
  Status AppendNamed(const std::string& name, const ValuePtr& addition);

  /// Rebinds the declared schema of an existing named object. Used when an
  /// `into` overwrite changes the object's shape — keeping the original
  /// schema would mislead every later translation against the name.
  Status SetNamedSchema(const std::string& name, SchemaPtr schema);

  std::vector<std::string> NamedObjectNames() const;

  /// Removes a named object (storage-commit rollback of a `create` whose
  /// durable log failed, and `open`-time teardown).
  Status DropNamed(const std::string& name);

  /// Empties the whole database: catalog, store, named objects, caches.
  /// A durable `open` replaces in-memory state with the on-disk image.
  void Clear();

  // --- secondary indexes ---------------------------------------------------
  /// Defines and builds a persistent secondary index (docs/INDEXES.md). The
  /// target must be an existing named object currently bound to a multiset.
  /// Index entries are derived state: they are rebuilt on SetNamed rebinds,
  /// merged incrementally by AppendNamed, and recreated from definitions on
  /// transaction rollback and snapshot restore.
  Status CreateIndex(const IndexDef& def);

  /// Removes an index by name.
  Status DropIndex(const std::string& name);

  const SecondaryIndex* FindIndex(const std::string& name) const;

  /// All indexes covering `set_name`, in name order.
  std::vector<const SecondaryIndex*> IndexesOn(const std::string& set_name) const;

  /// Durable definitions of every index, in name order (what snapshots and
  /// epoch clones persist; entries rebuild from the base sets).
  std::vector<IndexDef> IndexDefs() const;

  /// §4 type-extent index: partitions the occurrences of the named multiset
  /// by exact element type (tuple tags, or the store's exact type for
  /// refs). Cached; invalidated by SetNamed. With this index available, the
  /// ⊎-based method strategy's "scan P once per type" penalty disappears.
  Result<const std::map<std::string, ValuePtr>*> TypeExtents(
      const std::string& set_name);

  /// Undo image for a session transaction: everything `rollback` must put
  /// back. Named bindings share their (immutable) values and schemas with
  /// the live map — holding them here is what forces AppendNamed onto its
  /// copy-on-write path for the duration of the transaction — while the
  /// store image and the catalog definition count undo OID allocation and
  /// DDL. Cheap relative to evaluation: no value graph is deep-copied.
  struct TxnSnapshot {
    size_t catalog_defs = 0;
    ObjectStore::StoreDump store;
    std::map<std::string, NamedObject> named;
    /// Index *definitions* only; rollback recreates the entries from the
    /// restored base sets (same strategy as snapshot restore).
    std::vector<IndexDef> index_defs;
  };
  TxnSnapshot CaptureTxnSnapshot() const;

  /// Restores the state captured by CaptureTxnSnapshot. Only definitions
  /// made *after* the capture may exist on top of it (session transactions
  /// guarantee this: no statement removes a type), so the catalog rolls
  /// back by undoing the newest definitions.
  Status RestoreTxnSnapshot(const TxnSnapshot& snap);

 private:
  static ValuePtr DefaultValueFor(const SchemaPtr& schema);

  Catalog catalog_;
  ObjectStore store_;
  std::map<std::string, NamedObject> named_;
  std::map<std::string, std::map<std::string, ValuePtr>> extent_cache_;
  /// Per-name distinct-element indexes for AppendNamed; dropped whenever
  /// the name is rebound through any other path.
  std::map<std::string, Value::SetIndex> append_index_;
  /// Secondary indexes by index name (unique_ptr: SecondaryIndex is
  /// non-copyable and planner/eval hold raw pointers across lookups).
  std::map<std::string, std::unique_ptr<SecondaryIndex>> indexes_;
};

}  // namespace excess

#endif  // EXCESS_OBJECTS_DATABASE_H_
