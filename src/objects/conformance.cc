#include "objects/conformance.h"

#include "util/string_util.h"

namespace excess {

namespace {

Status Fail(const ValuePtr& value, const SchemaPtr& schema,
            const std::string& why) {
  return Status::TypeError(StrCat("value ", value->ToString(),
                                  " does not conform to ", schema->ToString(),
                                  ": ", why));
}

bool ScalarMatches(const ValuePtr& v, ScalarKind kind) {
  switch (kind) {
    case ScalarKind::kAny:
      return true;
    case ScalarKind::kInt:
      return v->kind() == ValueKind::kInt;
    case ScalarKind::kFloat:
      return v->kind() == ValueKind::kFloat;
    case ScalarKind::kString:
      return v->kind() == ValueKind::kString;
    case ScalarKind::kBool:
      return v->kind() == ValueKind::kBool;
    case ScalarKind::kDate:
      return v->kind() == ValueKind::kDate;
  }
  return false;
}

}  // namespace

Status CheckConformance(const ValuePtr& value, const SchemaPtr& schema,
                        const Catalog& catalog, const ObjectStore* store) {
  if (value == nullptr) return Status::Invalid("null value");
  // Nulls inhabit every domain.
  if (value->is_null()) return Status::OK();

  switch (schema->ctor()) {
    case TypeCtor::kVal:
      if (!ScalarMatches(value, schema->scalar_kind())) {
        return Fail(value, schema, "scalar kind mismatch");
      }
      return Status::OK();

    case TypeCtor::kTup: {
      if (!value->is_tuple()) return Fail(value, schema, "not a tuple");
      // Substitutability: a tagged value of a subtype of the schema's
      // named type conforms — check against the subtype's own effective
      // schema (which includes every inherited field).
      const std::string& declared = schema->type_name();
      const std::string& actual = value->type_tag();
      SchemaPtr target = schema;
      if (!declared.empty()) {
        if (actual.empty()) {
          // An untagged tuple may still conform structurally to the
          // declared type's fields; fall through with `schema`.
        } else if (actual != declared) {
          if (!catalog.IsSubtype(actual, declared)) {
            return Fail(value, schema,
                        StrCat("exact type '", actual,
                               "' is not a subtype of '", declared, "'"));
          }
          EXA_ASSIGN_OR_RETURN(target, catalog.EffectiveSchema(actual));
        }
      }
      for (const auto& f : target->fields()) {
        auto fv = value->Field(f.name);
        if (!fv.ok()) {
          return Fail(value, schema, StrCat("missing field '", f.name, "'"));
        }
        EXA_RETURN_NOT_OK(CheckConformance(*fv, f.type, catalog, store));
      }
      // Extra fields beyond the (effective) declaration are rejected for
      // untagged/exact matches; subtypes were redirected above.
      if (value->num_fields() > target->fields().size()) {
        return Fail(value, schema, "has undeclared extra fields");
      }
      return Status::OK();
    }

    case TypeCtor::kSet: {
      if (!value->is_set()) return Fail(value, schema, "not a multiset");
      for (const auto& e : value->entries()) {
        EXA_RETURN_NOT_OK(
            CheckConformance(e.value, schema->elem(), catalog, store));
      }
      return Status::OK();
    }

    case TypeCtor::kArr: {
      if (!value->is_array()) return Fail(value, schema, "not an array");
      if (schema->fixed_size().has_value() &&
          value->ArrayLength() != *schema->fixed_size()) {
        return Fail(value, schema,
                    StrCat("length ", value->ArrayLength(),
                           " does not match the fixed length ",
                           *schema->fixed_size()));
      }
      for (const auto& e : value->elems()) {
        EXA_RETURN_NOT_OK(CheckConformance(e, schema->elem(), catalog, store));
      }
      return Status::OK();
    }

    case TypeCtor::kRef: {
      if (!value->is_ref()) return Fail(value, schema, "not a reference");
      if (store == nullptr) return Status::OK();  // structural check only
      auto exact = store->ExactType(value->oid());
      if (!exact.ok()) {
        return Fail(value, schema, "dangling reference");
      }
      if (schema->ref_target() == "$anon") return Status::OK();
      if (!catalog.IsSubtype(*exact, schema->ref_target())) {
        return Fail(value, schema,
                    StrCat("referenced object has exact type '", *exact,
                           "' outside Odom(", schema->ref_target(), ")"));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown schema constructor");
}

}  // namespace excess
