#ifndef EXCESS_OBJECTS_CONFORMANCE_H_
#define EXCESS_OBJECTS_CONFORMANCE_H_

#include "catalog/catalog.h"
#include "objects/store.h"
#include "objects/value.h"
#include "util/status.h"

namespace excess {

/// Runtime membership test for the domain semantics of §3.1: is `value` an
/// element of DOM(schema)?
///
///  - scalars must match the scalar kind (`any` admits everything);
///  - tuples must supply every declared field with a conforming value;
///    when the schema node carries a named-type tag, substitutability
///    applies — a value tagged with any *subtype* conforms, and its extra
///    fields are admitted (DOM(S) = dom(S) ∪ ⋃ dom(Sᵢ));
///  - multisets/arrays check every occurrence against the component
///    schema; fixed-length arrays must have exactly the declared length;
///  - references must hold an OID whose *current exact type* lies in
///    Odom(target), i.e. the target type or one of its descendants
///    (rules 3-5), looked up through the store;
///  - the `dne`/`unk` nulls conform to any schema (they are the absence /
///    unknownness of a value of that type).
Status CheckConformance(const ValuePtr& value, const SchemaPtr& schema,
                        const Catalog& catalog, const ObjectStore* store);

}  // namespace excess

#endif  // EXCESS_OBJECTS_CONFORMANCE_H_
