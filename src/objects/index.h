#ifndef EXCESS_OBJECTS_INDEX_H_
#define EXCESS_OBJECTS_INDEX_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "objects/store.h"
#include "objects/value.h"
#include "util/status.h"

namespace excess {

/// Kinds of secondary index (docs/INDEXES.md). A hash index supports
/// equality and membership probes; an ordered index additionally supports
/// range probes over a single comparable key family.
enum class IndexKind { kHash, kOrdered };

const char* IndexKindToString(IndexKind kind);

/// The durable definition of a secondary index: everything persisted by the
/// snapshot format and replayed from `create index` WAL records. Entries
/// are *not* persisted — an index rebuilds from its base set on open
/// (docs/INDEXES.md "persistence").
struct IndexDef {
  std::string name;
  /// Named top-level multiset the index covers.
  std::string set_name;
  /// Key path: field extractions applied to each element, dereferencing
  /// lazily whenever the current value is a reference. The empty path keys
  /// the element itself (an identity index). No dereference is applied
  /// after the last step, so a ref-valued field keys the raw OID — the
  /// "index on OID targets" case that accelerates deref joins.
  std::vector<std::string> path;
  IndexKind kind = IndexKind::kHash;
};

/// How an element classified during key extraction.
enum class IndexKeyClass {
  kKeyed,   // extraction produced a non-null key
  kUnk,     // a step (or the key itself) was unk — retained, matches like
            // the hash-join unk partition (unk keys are candidates against
            // every probe, because atoms evaluate unk before dne)
  kDne,     // the key is dne — only pairs with unk probes
  kFailed,  // extraction errored (deref failure, non-tuple step, missing
            // field); a non-empty failed partition disables index-backed
            // probing so errors reproduce exactly via the scan fallback
};

/// A persistent secondary index over one named top-level multiset.
///
/// Partition semantics deliberately mirror EvalHashJoin's key split: keyed
/// entries live in per-key buckets, unk-keyed entries are candidates for
/// every probe, dne-keyed entries only pair with unk probes, and any failed
/// extraction forces exact-scan fallback. Bucket equivalence may be
/// *coarser* than Value::Equals (the ordered index groups 1 with 1.0, and
/// unrelated values may share a hash bucket) — that is sound because every
/// consumer re-evaluates the full predicate on the candidates it reads.
class SecondaryIndex {
 public:
  /// A per-key bucket: the distinct elements whose key landed here, with
  /// their multiset cardinalities, in first-indexed order.
  struct Bucket {
    std::vector<SetEntry> entries;
    /// elem -> position in `entries`, so incremental appends merge in O(1).
    Value::SetIndex pos;
    int64_t TotalCount() const;
  };

  /// Comparator for ordered buckets: a strict weak ordering over *all*
  /// values, coarser than Value::Equals. Keys order by family (other <
  /// numeric < string < bool), numerics by coerced value with NaN ranked
  /// last, strings lexicographically, bools false < true, and everything
  /// else by deep hash. Range probes are only served when every keyed
  /// bucket is in the probe's family (see OrderedRange), so the cross-
  /// family order is never observable in results.
  struct OrderedKeyLess {
    bool operator()(const ValuePtr& a, const ValuePtr& b) const;
  };
  /// 0 = other, 1 = numeric (int/float/date), 2 = string, 3 = bool.
  static int KeyFamily(const Value& v);
  static constexpr int kNumKeyFamilies = 4;

  using HashBuckets =
      std::unordered_map<ValuePtr, Bucket, ValuePtrDeepHash, ValuePtrDeepEq>;
  using OrderedBuckets = std::map<ValuePtr, Bucket, OrderedKeyLess>;

  SecondaryIndex(IndexDef def, const ObjectStore* store)
      : def_(std::move(def)), store_(store) {}
  SecondaryIndex(const SecondaryIndex&) = delete;
  SecondaryIndex& operator=(const SecondaryIndex&) = delete;

  const IndexDef& def() const { return def_; }

  /// Classifies `elem` and, for kKeyed, writes the extracted key.
  IndexKeyClass ExtractKey(const ValuePtr& elem, ValuePtr* key_out) const;

  /// Drops all entries and re-indexes `value`. A null or non-set value
  /// disables the index (every probe falls back to scan) until the next
  /// rebuild over a set — `into` overwrites may legally change a name's
  /// shape.
  void Rebuild(const ValuePtr& value);

  /// Incrementally indexes one appended occurrence group (the AppendNamed
  /// fast path; O(1) amortized, preserving linear WAL replay).
  void Add(const ValuePtr& elem, int64_t count);

  /// True when probes may be answered from the index: not disabled and no
  /// element failed key extraction.
  bool Usable() const { return !disabled_ && failed_count_ == 0; }
  bool disabled() const { return disabled_; }
  int64_t failed_count() const { return failed_count_; }

  /// Equality probe: the bucket whose key groups with `key`, or nullptr.
  const Bucket* EqBucket(const ValuePtr& key) const;

  /// Range probe (ordered indexes only): appends to `out` the buckets
  /// whose keys satisfy `key < probe` (less=true) or `key > probe`
  /// (less=false), optionally inclusive. Returns false — caller must fall
  /// back to a full predicate scan — when the index is hash-kind, the
  /// probe's family is non-comparable, or any keyed bucket lives outside
  /// the probe's family (a scan would raise TypeError on the cross-family
  /// comparison, and fallback reproduces that exactly).
  bool OrderedRange(const ValuePtr& probe, bool less, bool inclusive,
                    std::vector<const Bucket*>* out) const;

  const HashBuckets& hash_buckets() const { return hash_; }
  const OrderedBuckets& ordered_buckets() const { return ordered_; }
  const std::vector<SetEntry>& unk_entries() const { return unk_; }
  const std::vector<SetEntry>& dne_entries() const { return dne_; }

  /// Statistics for the cost model.
  int64_t distinct_keys() const {
    return static_cast<int64_t>(def_.kind == IndexKind::kOrdered
                                    ? ordered_.size()
                                    : hash_.size());
  }
  int64_t keyed_total() const { return keyed_total_; }
  int64_t entry_total() const { return entry_total_; }

 private:
  Bucket* BucketFor(const ValuePtr& key);

  IndexDef def_;
  const ObjectStore* store_;
  HashBuckets hash_;
  OrderedBuckets ordered_;
  std::vector<SetEntry> unk_;
  std::vector<SetEntry> dne_;
  Value::SetIndex unk_pos_;
  Value::SetIndex dne_pos_;
  int64_t failed_count_ = 0;
  int64_t keyed_total_ = 0;
  int64_t entry_total_ = 0;
  std::array<int64_t, kNumKeyFamilies> family_buckets_ = {0, 0, 0, 0};
  bool disabled_ = false;
};

}  // namespace excess

#endif  // EXCESS_OBJECTS_INDEX_H_
