#ifndef EXCESS_OBJECTS_VALUE_H_
#define EXCESS_OBJECTS_VALUE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "objects/oid.h"
#include "util/status.h"

namespace excess {

class Value;
using ValuePtr = std::shared_ptr<const Value>;
struct ValuePtrDeepHash;
struct ValuePtrDeepEq;

/// Runtime kinds; the structured kinds mirror the type constructors.
enum class ValueKind {
  kInt,
  kFloat,
  kString,
  kBool,
  kDate,  // days since 1970-01-01
  kDne,   // "does not exist" null (discarded by multiset/array construction)
  kUnk,   // "unknown" null (a real, retained value)
  kTuple,
  kSet,    // multiset, cardinality-compressed
  kArray,  // ordered, variable length
  kRef,    // an OID
};

const char* ValueKindToString(ValueKind kind);

/// A distinct multiset element together with its cardinality.
struct SetEntry {
  ValuePtr value;
  int64_t count = 0;
};

/// An immutable runtime value of the EXTRA/EXCESS data model.
///
/// Equality is the paper's single, purely value-based equality (§3.2.4):
///  - scalars compare by kind and payload;
///  - tuples compare positionally on field values (field names and exact
///    type tags are presentation/dispatch metadata, not part of the value);
///  - multisets compare per-element cardinality (§3.2.1);
///  - arrays compare element-wise in order;
///  - references compare by OID — identity *is* the ref's value, which is
///    what lets one equality serve both semantics.
///
/// Values are shared via shared_ptr<const Value>; all algebra operators
/// build new values out of old ones without mutation.
class Value {
 public:
  // --- scalar factories -----------------------------------------------
  static ValuePtr Int(int64_t v);
  static ValuePtr Float(double v);
  static ValuePtr Str(std::string v);
  static ValuePtr Bool(bool v);
  static ValuePtr Date(int64_t days);
  static ValuePtr Dne();
  static ValuePtr Unk();

  // --- structured factories ---------------------------------------------
  /// Tuple with explicit field names (names.size() == vals.size()).
  /// `type_tag`, when non-empty, records the exact named type this tuple is
  /// an instance of (used for substitutability and §4 dispatch).
  static ValuePtr Tuple(std::vector<std::string> names,
                        std::vector<ValuePtr> vals, std::string type_tag = "");
  /// Tuple with positional names _1.._n.
  static ValuePtr TupleOf(std::vector<ValuePtr> vals);
  /// Returns a copy of tuple `t` re-tagged with `type_tag`.
  static ValuePtr Retag(const ValuePtr& t, std::string type_tag);

  /// Multiset from occurrences; normalizes to (distinct value, count) and
  /// discards dne occurrences ("dne nulls appearing in a multiset are
  /// ignored", §3.2.4).
  static ValuePtr SetOf(const std::vector<ValuePtr>& occurrences);
  /// Multiset from pre-counted entries; merges equal values, drops entries
  /// with count <= 0 and dne values.
  static ValuePtr SetOfCounted(std::vector<SetEntry> entries);
  static ValuePtr EmptySet();

  /// Array; dne elements are discarded (the order-preserving analogue of
  /// the multiset rule, which is what makes array selection via
  /// ARR_APPLY(COMP) behave as a filter).
  static ValuePtr ArrayOf(std::vector<ValuePtr> elems);
  static ValuePtr EmptyArray();

  static ValuePtr RefTo(Oid oid);

  /// Distinct-element index of a multiset: deep value -> entry position.
  /// Database::AppendNamed keeps one per appended-to name so repeated
  /// appends merge in O(|addition|) instead of re-normalizing the whole set.
  using SetIndex =
      std::unordered_map<ValuePtr, size_t, ValuePtrDeepHash, ValuePtrDeepEq>;

  /// ⊎ for the append fast path: merges `addition` (a normalized multiset)
  /// into `set`. When the caller hands over the only reference, the entries
  /// are extended in place (and the cached hash invalidated); a shared set
  /// is copied first, so existing holders — snapshots, transaction undo
  /// images — never observe the mutation. `index` must either be empty or
  /// describe `set`'s current entries; it is updated to describe the result.
  static ValuePtr AddUnionInPlace(ValuePtr set, const Value& addition,
                                  SetIndex* index);

  // --- inspectors ---------------------------------------------------------
  ValueKind kind() const { return kind_; }
  bool is_dne() const { return kind_ == ValueKind::kDne; }
  bool is_unk() const { return kind_ == ValueKind::kUnk; }
  bool is_null() const { return is_dne() || is_unk(); }
  bool is_scalar() const {
    return kind_ != ValueKind::kTuple && kind_ != ValueKind::kSet &&
           kind_ != ValueKind::kArray;
  }
  bool is_tuple() const { return kind_ == ValueKind::kTuple; }
  bool is_set() const { return kind_ == ValueKind::kSet; }
  bool is_array() const { return kind_ == ValueKind::kArray; }
  bool is_ref() const { return kind_ == ValueKind::kRef; }

  int64_t as_int() const { return int_; }        // kInt / kDate
  double as_float() const { return float_; }     // kFloat
  const std::string& as_string() const { return str_; }
  bool as_bool() const { return bool_; }
  const Oid& oid() const { return oid_; }

  /// Numeric payload as double for arithmetic/comparison coercion; only
  /// valid for kInt/kFloat/kDate.
  double NumericValue() const;
  bool IsNumeric() const {
    return kind_ == ValueKind::kInt || kind_ == ValueKind::kFloat ||
           kind_ == ValueKind::kDate;
  }

  // Tuple access.
  const std::vector<std::string>& field_names() const { return names_; }
  const std::vector<ValuePtr>& field_values() const { return elems_; }
  size_t num_fields() const { return elems_.size(); }
  /// First field with the given name.
  Result<ValuePtr> Field(const std::string& name) const;
  Result<ValuePtr> FieldAt(size_t i) const;
  int FieldIndex(const std::string& name) const;
  const std::string& type_tag() const { return type_tag_; }

  // Multiset access.
  const std::vector<SetEntry>& entries() const { return set_; }
  int64_t TotalCount() const;      // sum of cardinalities (|x| occurrences)
  int64_t DistinctCount() const;   // number of distinct elements
  int64_t CountOf(const ValuePtr& v) const;

  // Array access.
  const std::vector<ValuePtr>& elems() const { return elems_; }
  int64_t ArrayLength() const { return static_cast<int64_t>(elems_.size()); }

  // --- memory accounting ---------------------------------------------------
  /// Bytes this node itself occupies: the object plus its owned buffers
  /// (string storage, field-name / element / entry vectors). Children are
  /// excluded — they are shared immutable substructure, so the incremental
  /// cost of materializing a new value is exactly its shallow size. This is
  /// what the query governor charges per fresh node.
  int64_t ShallowSizeBytes() const;
  /// Total bytes of the value graph reachable from this node. Shared
  /// subvalues are counted once per occurrence (no visited-set), making
  /// this an upper bound on unique storage; used for whole-value reporting,
  /// not incremental accounting.
  int64_t DeepSizeBytes() const;

  // --- equality / hashing / printing --------------------------------------
  bool Equals(const Value& other) const;
  bool Equals(const ValuePtr& other) const { return other && Equals(*other); }
  /// Deep hash, cached after first computation (values are immutable). The
  /// cache is a release/acquire atomic so concurrent evaluators may hash
  /// shared values — racing threads compute the same hash and one wins.
  uint64_t Hash() const;

  /// Total order over comparable scalars (numeric coercion between
  /// int/float/date; strings lexicographic; bools false<true). Returns
  /// TypeError for incomparable kinds, EvalError when either side is null.
  static Result<int> Compare(const Value& a, const Value& b);

  /// EXTRA-literal-style rendering: {..}, [..], (..), @type:serial.
  std::string ToString() const;

 private:
  explicit Value(ValueKind kind) : kind_(kind) {}
  // Copies payload but not the (atomic, non-copyable) hash cache; the copy
  // recomputes on first Hash().
  Value(const Value& other)
      : kind_(other.kind_),
        int_(other.int_),
        float_(other.float_),
        bool_(other.bool_),
        str_(other.str_),
        oid_(other.oid_),
        names_(other.names_),
        elems_(other.elems_),
        set_(other.set_),
        type_tag_(other.type_tag_) {}

  ValueKind kind_;
  int64_t int_ = 0;
  double float_ = 0;
  bool bool_ = false;
  std::string str_;
  Oid oid_;
  std::vector<std::string> names_;   // tuple field names
  std::vector<ValuePtr> elems_;      // tuple fields or array elements
  std::vector<SetEntry> set_;        // multiset entries
  std::string type_tag_;
  mutable std::atomic<uint64_t> hash_{0};
  mutable std::atomic<bool> hash_valid_{false};
};

/// Equality/hash functors so ValuePtr can key unordered containers by deep
/// value (used by multiset normalization, GRP, DE, and REF interning).
struct ValuePtrDeepHash {
  size_t operator()(const ValuePtr& v) const { return v->Hash(); }
};
struct ValuePtrDeepEq {
  bool operator()(const ValuePtr& a, const ValuePtr& b) const {
    return a->Equals(*b);
  }
};

}  // namespace excess

#endif  // EXCESS_OBJECTS_VALUE_H_
