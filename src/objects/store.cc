#include "objects/store.h"

#include <algorithm>

#include "util/string_util.h"

namespace excess {

uint32_t ObjectStore::TypeIdFor(const std::string& type_name) {
  auto it = type_ids_.find(type_name);
  if (it != type_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(id_names_.size());
  type_ids_.emplace(type_name, id);
  id_names_.push_back(type_name);
  return id;
}

Result<Oid> ObjectStore::Create(const std::string& type_name, ValuePtr value) {
  if (!catalog_->HasType(type_name)) {
    return Status::NotFound(StrCat("cannot create object of undefined type '",
                                   type_name, "'"));
  }
  uint32_t id = TypeIdFor(type_name);
  Oid oid{id, next_serial_[type_name]++};
  // Register in the intern table (first object with a given value wins) so
  // that REF(DEREF(r)) returns r for explicitly created objects too —
  // Appendix rule 28 relies on REF being the inverse of DEREF up to
  // value-interned identity.
  interned_[type_name].emplace(value, oid);
  heap_[oid] = Obj{std::move(value), type_name, type_name};
  return oid;
}

Result<Oid> ObjectStore::InternRef(const std::string& type_name,
                                   const ValuePtr& value) {
  if (value == nullptr) return Status::Invalid("InternRef on null value");
  std::string name = type_name;
  if (name.empty()) {
    // Anonymous target types get a store-local name per value *schema*
    // shape; a single bucket suffices because intern lookups are by deep
    // value anyway.
    name = "$anon";
  }
  auto& bucket = interned_[name];
  auto it = bucket.find(value);
  if (it != bucket.end()) return it->second;
  uint32_t id = TypeIdFor(name);
  Oid oid{id, next_serial_[name]++};
  heap_[oid] = Obj{value, name, name};
  bucket.emplace(value, oid);
  return oid;
}

Result<ValuePtr> ObjectStore::Deref(const Oid& oid) const {
  auto it = heap_.find(oid);
  if (it == heap_.end()) {
    return Status::NotFound(StrCat("dangling reference ", oid.ToString()));
  }
  ++deref_count_;
  return it->second.value;
}

Status ObjectStore::Update(const Oid& oid, ValuePtr value) {
  auto it = heap_.find(oid);
  if (it == heap_.end()) {
    return Status::NotFound(StrCat("update of missing object ", oid.ToString()));
  }
  it->second.value = std::move(value);
  return Status::OK();
}

Result<std::string> ObjectStore::ExactType(const Oid& oid) const {
  auto it = heap_.find(oid);
  if (it == heap_.end()) {
    return Status::NotFound(StrCat("exact-type query on missing object ",
                                   oid.ToString()));
  }
  return it->second.exact_type;
}

Status ObjectStore::MigrateType(const Oid& oid, const std::string& new_type) {
  auto it = heap_.find(oid);
  if (it == heap_.end()) {
    return Status::NotFound(StrCat("migration of missing object ", oid.ToString()));
  }
  if (!catalog_->HasType(new_type)) {
    return Status::NotFound(StrCat("migration to undefined type '", new_type, "'"));
  }
  // Keep the OID legal for every existing `ref T` that may hold it: the new
  // exact type must still lie in Odom(allocation type), i.e. be the
  // allocation type or one of its descendants.
  if (!catalog_->IsSubtype(new_type, it->second.allocation_type)) {
    return Status::TypeError(
        StrCat("illegal type migration of ", oid.ToString(), " from '",
               it->second.exact_type, "' to '", new_type,
               "': new type must be a subtype of the allocation type '",
               it->second.allocation_type, "'"));
  }
  it->second.exact_type = new_type;
  return Status::OK();
}

bool ObjectStore::InDomain(const Oid& oid, const std::string& type_name) const {
  auto it = heap_.find(oid);
  if (it == heap_.end()) return false;
  return catalog_->IsSubtype(it->second.exact_type, type_name);
}

ObjectStore::StoreDump ObjectStore::Dump() const {
  StoreDump dump;
  dump.id_names = id_names_;
  dump.next_serial.assign(next_serial_.begin(), next_serial_.end());
  dump.objects.reserve(heap_.size());
  for (const auto& [oid, obj] : heap_) {
    dump.objects.push_back(
        StoreDump::ObjDump{oid, obj.value, obj.allocation_type, obj.exact_type});
  }
  std::sort(dump.objects.begin(), dump.objects.end(),
            [](const StoreDump::ObjDump& a, const StoreDump::ObjDump& b) {
              return a.oid < b.oid;
            });
  for (const auto& [type, bucket] : interned_) {
    for (const auto& [key, oid] : bucket) {
      dump.interned.push_back(StoreDump::InternDump{type, key, oid});
    }
  }
  // Within a bucket every entry holds a distinct OID (each insert allocates
  // or reuses exactly one), so (type, oid) is a total order.
  std::sort(dump.interned.begin(), dump.interned.end(),
            [](const StoreDump::InternDump& a, const StoreDump::InternDump& b) {
              return a.type != b.type ? a.type < b.type : a.oid < b.oid;
            });
  return dump;
}

Status ObjectStore::Restore(const StoreDump& dump) {
  if (!heap_.empty() || !id_names_.empty()) {
    return Status::Invalid("ObjectStore::Restore requires an empty store");
  }
  id_names_ = dump.id_names;
  for (uint32_t id = 0; id < id_names_.size(); ++id) {
    if (type_ids_.count(id_names_[id]) > 0) {
      return Status::DataLoss(
          StrCat("store dump repeats type name '", id_names_[id], "'"));
    }
    type_ids_.emplace(id_names_[id], id);
  }
  for (const auto& [name, serial] : dump.next_serial) {
    next_serial_[name] = serial;
  }
  for (const auto& obj : dump.objects) {
    if (obj.value == nullptr) return Status::DataLoss("store dump holds null value");
    if (obj.oid.type_id >= id_names_.size()) {
      return Status::DataLoss(StrCat("store dump OID ", obj.oid.ToString(),
                                     " names an unknown type id"));
    }
    if (!heap_.emplace(obj.oid, Obj{obj.value, obj.allocation_type,
                                    obj.exact_type}).second) {
      return Status::DataLoss(StrCat("store dump repeats OID ", obj.oid.ToString()));
    }
  }
  for (const auto& entry : dump.interned) {
    if (entry.key == nullptr) {
      return Status::DataLoss("store dump holds null intern key");
    }
    interned_[entry.type].emplace(entry.key, entry.oid);
  }
  return Status::OK();
}

void ObjectStore::Clear() {
  heap_.clear();
  type_ids_.clear();
  id_names_.clear();
  next_serial_.clear();
  interned_.clear();
}

std::string ObjectStore::ExactTypeOf(const ValuePtr& value) const {
  if (value == nullptr) return "";
  if (value->is_tuple()) return value->type_tag();
  if (value->is_ref()) {
    auto r = ExactType(value->oid());
    // Exact-type probes are not derefs; undo the stats side effect of the
    // heap lookup path (ExactType does not call Deref, so nothing to undo).
    if (r.ok()) return *r;
  }
  return "";
}

}  // namespace excess
