#ifndef EXCESS_OBJECTS_STORE_H_
#define EXCESS_OBJECTS_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "objects/oid.h"
#include "objects/value.h"
#include "util/status.h"

namespace excess {

/// The object heap: maps OIDs to object state. Substitutes for the EXODUS
/// storage manager — the algebra only needs allocation, dereference, update
/// and exact-type queries, all of which this in-memory store provides.
///
/// The store owns the OID type-id registry. Catalog types get ids on first
/// use; the REF operator may also mint *anonymous* target types (named
/// "$anon<N>") for references to structures that have no user type name.
class ObjectStore {
 public:
  explicit ObjectStore(const Catalog* catalog) : catalog_(catalog) {}
  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  /// Allocates a fresh OID with exact type `type_name` (which must be a
  /// catalog type) and stores `value` as the object's state.
  Result<Oid> Create(const std::string& type_name, ValuePtr value);

  /// The REF operator's backing primitive: returns an OID for `value` under
  /// `type_name` ("" for anonymous), reusing the OID previously interned
  /// for an equal value of the same type. Interning keeps REF deterministic
  /// (DEREF(REF(A)) == A and REF(A) == REF(A)), which the rule-28
  /// transformations and per-distinct-element SET_APPLY evaluation rely on.
  Result<Oid> InternRef(const std::string& type_name, const ValuePtr& value);

  /// Materializes the object's current state (the DEREF primitive).
  Result<ValuePtr> Deref(const Oid& oid) const;

  /// Replaces the object's state.
  Status Update(const Oid& oid, ValuePtr value);

  /// Current exact type name of the object (allocation type unless the
  /// object has migrated).
  Result<std::string> ExactType(const Oid& oid) const;

  /// Type migration (§3.1 notes the domain semantics permit it): changes
  /// the object's current exact type. The new type must share a common
  /// supertype chain with the old one so that existing `ref T` values
  /// remain domain-legal: we require new_type to be a subtype of every
  /// supertype of the allocation type, which is implied by requiring
  /// IsSubtype(new_type, allocation_type).
  Status MigrateType(const Oid& oid, const std::string& new_type);

  /// OID-domain membership: oid ∈ Odom(type_name) iff the object's current
  /// exact type is `type_name` or a descendant of it (rules 3-5 of §3.1).
  bool InDomain(const Oid& oid, const std::string& type_name) const;

  /// Exact type name of any value: the tuple's tag, a ref's stored exact
  /// type, or "" when untyped.
  std::string ExactTypeOf(const ValuePtr& value) const;

  /// Number of live objects.
  size_t size() const { return heap_.size(); }

  /// Running count of Deref calls — instrumentation used by the figure
  /// benches (e.g. rule 26 halving the DEREF count in Example 2). Atomic so
  /// parallel APPLY workers may deref concurrently.
  int64_t deref_count() const {
    return deref_count_.load(std::memory_order_relaxed);
  }
  void ResetStats() { deref_count_.store(0, std::memory_order_relaxed); }

  /// Canonical serializable image of the store. Objects are sorted by OID
  /// and intern entries by (type, oid), so two stores with equal contents
  /// produce identical dumps regardless of hash-map iteration order. The
  /// storage layer snapshots through this; stats are excluded.
  struct StoreDump {
    std::vector<std::string> id_names;  // type_id -> name, mint order
    std::vector<std::pair<std::string, uint64_t>> next_serial;
    struct ObjDump {
      Oid oid;
      ValuePtr value;
      std::string allocation_type;
      std::string exact_type;
    };
    std::vector<ObjDump> objects;
    struct InternDump {
      std::string type;
      ValuePtr key;
      Oid oid;
    };
    std::vector<InternDump> interned;
  };
  StoreDump Dump() const;

  /// Rebuilds the store from a dump. The store must be empty (freshly
  /// constructed or Clear()ed); existing state would alias serial counters.
  Status Restore(const StoreDump& dump);

  /// Drops every object, intern entry, and minted type id.
  void Clear();

 private:
  struct Obj {
    ValuePtr value;
    std::string allocation_type;
    std::string exact_type;
  };

  uint32_t TypeIdFor(const std::string& type_name);

  const Catalog* catalog_;
  std::unordered_map<Oid, Obj, OidHash> heap_;
  std::map<std::string, uint32_t> type_ids_;
  std::vector<std::string> id_names_;
  std::map<std::string, uint64_t> next_serial_;
  // Intern table: (type name, deep value) -> oid.
  std::map<std::string,
           std::unordered_map<ValuePtr, Oid, ValuePtrDeepHash, ValuePtrDeepEq>>
      interned_;
  int anon_counter_ = 0;
  mutable std::atomic<int64_t> deref_count_{0};
};

}  // namespace excess

#endif  // EXCESS_OBJECTS_STORE_H_
