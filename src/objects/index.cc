#include "objects/index.h"

#include <cmath>
#include <utility>

namespace excess {

const char* IndexKindToString(IndexKind kind) {
  switch (kind) {
    case IndexKind::kHash:
      return "hash";
    case IndexKind::kOrdered:
      return "ordered";
  }
  return "?";
}

int64_t SecondaryIndex::Bucket::TotalCount() const {
  int64_t total = 0;
  for (const auto& e : entries) total += e.count;
  return total;
}

int SecondaryIndex::KeyFamily(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kInt:
    case ValueKind::kFloat:
    case ValueKind::kDate:
      return 1;
    case ValueKind::kString:
      return 2;
    case ValueKind::kBool:
      return 3;
    default:
      return 0;
  }
}

bool SecondaryIndex::OrderedKeyLess::operator()(const ValuePtr& a,
                                                const ValuePtr& b) const {
  int fa = KeyFamily(*a);
  int fb = KeyFamily(*b);
  if (fa != fb) return fa < fb;
  switch (fa) {
    case 1: {
      double x = a->NumericValue();
      double y = b->NumericValue();
      bool nx = std::isnan(x);
      bool ny = std::isnan(y);
      // NaN ranks after every other numeric (and NaNs group together);
      // plain `<` on NaN would break strict weak ordering.
      if (nx || ny) return !nx && ny;
      return x < y;
    }
    case 2:
      return a->as_string() < b->as_string();
    case 3:
      return !a->as_bool() && b->as_bool();
    default:
      return a->Hash() < b->Hash();
  }
}

IndexKeyClass SecondaryIndex::ExtractKey(const ValuePtr& elem,
                                         ValuePtr* key_out) const {
  ValuePtr v = elem;
  for (const auto& field : def_.path) {
    // Lazy dereference: follow refs whenever a field extraction needs a
    // tuple. This subsumes any explicit DEREFs in the matched predicate
    // path. No deref happens *after* the last step (see IndexDef::path).
    while (v->is_ref()) {
      Result<ValuePtr> d = store_->Deref(v->oid());
      if (!d.ok()) return IndexKeyClass::kFailed;
      v = *d;
    }
    if (v->is_unk()) return IndexKeyClass::kUnk;
    if (v->is_dne()) return IndexKeyClass::kDne;
    if (!v->is_tuple()) return IndexKeyClass::kFailed;
    Result<ValuePtr> f = v->Field(field);
    if (!f.ok()) return IndexKeyClass::kFailed;
    v = *f;
  }
  if (v->is_unk()) return IndexKeyClass::kUnk;
  if (v->is_dne()) return IndexKeyClass::kDne;
  *key_out = v;
  return IndexKeyClass::kKeyed;
}

namespace {
void MergeEntry(std::vector<SetEntry>* entries, Value::SetIndex* pos,
                const ValuePtr& elem, int64_t count) {
  auto it = pos->find(elem);
  if (it != pos->end()) {
    (*entries)[it->second].count += count;
    return;
  }
  pos->emplace(elem, entries->size());
  entries->push_back({elem, count});
}
}  // namespace

SecondaryIndex::Bucket* SecondaryIndex::BucketFor(const ValuePtr& key) {
  if (def_.kind == IndexKind::kOrdered) {
    auto [it, inserted] = ordered_.try_emplace(key);
    if (inserted) ++family_buckets_[KeyFamily(*key)];
    return &it->second;
  }
  auto [it, inserted] = hash_.try_emplace(key);
  if (inserted) ++family_buckets_[KeyFamily(*key)];
  return &it->second;
}

void SecondaryIndex::Add(const ValuePtr& elem, int64_t count) {
  if (disabled_ || count <= 0) return;
  entry_total_ += count;
  ValuePtr key;
  switch (ExtractKey(elem, &key)) {
    case IndexKeyClass::kKeyed: {
      Bucket* b = BucketFor(key);
      MergeEntry(&b->entries, &b->pos, elem, count);
      keyed_total_ += count;
      return;
    }
    case IndexKeyClass::kUnk:
      MergeEntry(&unk_, &unk_pos_, elem, count);
      return;
    case IndexKeyClass::kDne:
      MergeEntry(&dne_, &dne_pos_, elem, count);
      return;
    case IndexKeyClass::kFailed:
      failed_count_ += count;
      return;
  }
}

void SecondaryIndex::Rebuild(const ValuePtr& value) {
  hash_.clear();
  ordered_.clear();
  unk_.clear();
  dne_.clear();
  unk_pos_.clear();
  dne_pos_.clear();
  failed_count_ = 0;
  keyed_total_ = 0;
  entry_total_ = 0;
  family_buckets_ = {0, 0, 0, 0};
  // An `into` overwrite may rebind the name to a non-set shape; the index
  // stays defined but disabled until a later rebuild sees a set again.
  disabled_ = value == nullptr || !value->is_set();
  if (disabled_) return;
  for (const SetEntry& e : value->entries()) Add(e.value, e.count);
}

const SecondaryIndex::Bucket* SecondaryIndex::EqBucket(
    const ValuePtr& key) const {
  if (def_.kind == IndexKind::kOrdered) {
    auto it = ordered_.find(key);
    return it == ordered_.end() ? nullptr : &it->second;
  }
  auto it = hash_.find(key);
  return it == hash_.end() ? nullptr : &it->second;
}

bool SecondaryIndex::OrderedRange(const ValuePtr& probe, bool less,
                                  bool inclusive,
                                  std::vector<const Bucket*>* out) const {
  if (def_.kind != IndexKind::kOrdered) return false;
  int family = KeyFamily(*probe);
  if (family == 0) return false;
  // Value::Compare treats NaN as equal to every numeric; serving a NaN
  // probe from the sorted order would disagree, so scan instead.
  if (family == 1 && std::isnan(probe->NumericValue())) return false;
  for (int f = 0; f < kNumKeyFamilies; ++f) {
    if (f != family && family_buckets_[f] > 0) return false;
  }
  if (less) {
    auto end = inclusive ? ordered_.upper_bound(probe)
                         : ordered_.lower_bound(probe);
    for (auto it = ordered_.begin(); it != end; ++it)
      out->push_back(&it->second);
    // NaN keys rank after every numeric in bucket order but Compare calls
    // them equal to anything, so `key <= probe` holds for them; include the
    // NaN tail as candidates and let the re-evaluated predicate decide.
    for (auto it = ordered_.rbegin(); it != ordered_.rend(); ++it) {
      if (!(it->first->IsNumeric() && std::isnan(it->first->NumericValue())))
        break;
      out->push_back(&it->second);
    }
  } else {
    auto begin = inclusive ? ordered_.lower_bound(probe)
                           : ordered_.upper_bound(probe);
    for (auto it = begin; it != ordered_.end(); ++it)
      out->push_back(&it->second);
  }
  return true;
}

}  // namespace excess
