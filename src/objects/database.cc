#include "objects/database.h"

#include "util/string_util.h"

namespace excess {

ValuePtr Database::DefaultValueFor(const SchemaPtr& schema) {
  switch (schema->ctor()) {
    case TypeCtor::kSet:
      return Value::EmptySet();
    case TypeCtor::kArr:
      return Value::EmptyArray();
    default:
      return Value::Dne();
  }
}

Status Database::CreateNamed(const std::string& name, SchemaPtr schema,
                             ValuePtr initial) {
  if (named_.count(name) > 0) {
    return Status::AlreadyExists(StrCat("object '", name, "' already exists"));
  }
  if (schema == nullptr) return Status::Invalid("create with null schema");
  EXA_RETURN_NOT_OK(schema->Validate());
  NamedObject obj;
  obj.name = name;
  obj.value = initial != nullptr ? std::move(initial) : DefaultValueFor(schema);
  obj.schema = std::move(schema);
  named_.emplace(name, std::move(obj));
  return Status::OK();
}

bool Database::HasNamed(const std::string& name) const {
  return named_.count(name) > 0;
}

Result<const NamedObject*> Database::GetNamed(const std::string& name) const {
  auto it = named_.find(name);
  if (it == named_.end()) {
    return Status::NotFound(StrCat("no top-level object '", name, "'"));
  }
  return &it->second;
}

Result<ValuePtr> Database::NamedValue(const std::string& name) const {
  EXA_ASSIGN_OR_RETURN(const NamedObject* obj, GetNamed(name));
  return obj->value;
}

Result<SchemaPtr> Database::NamedSchema(const std::string& name) const {
  EXA_ASSIGN_OR_RETURN(const NamedObject* obj, GetNamed(name));
  return obj->schema;
}

Status Database::SetNamed(const std::string& name, ValuePtr value) {
  auto it = named_.find(name);
  if (it == named_.end()) {
    return Status::NotFound(StrCat("no top-level object '", name, "'"));
  }
  it->second.value = std::move(value);
  extent_cache_.erase(name);
  append_index_.erase(name);
  for (auto& [iname, index] : indexes_) {
    if (index->def().set_name == name) index->Rebuild(it->second.value);
  }
  return Status::OK();
}

Status Database::AppendNamed(const std::string& name,
                             const ValuePtr& addition) {
  auto it = named_.find(name);
  if (it == named_.end()) {
    return Status::NotFound(StrCat("no top-level object '", name, "'"));
  }
  if (addition == nullptr || !addition->is_set()) {
    return Status::TypeError(
        StrCat("ADD_UNION requires a multiset operand, got ",
               addition ? ValueKindToString(addition->kind()) : "null"));
  }
  if (it->second.value == nullptr || !it->second.value->is_set()) {
    return Status::TypeError(StrCat(
        "ADD_UNION requires a multiset operand, got ",
        it->second.value ? ValueKindToString(it->second.value->kind())
                         : "null"));
  }
  it->second.value = Value::AddUnionInPlace(std::move(it->second.value),
                                            *addition, &append_index_[name]);
  extent_cache_.erase(name);
  // Incremental index maintenance: O(|addition|) like the merge above, so
  // append-heavy WAL replay stays linear with indexes defined.
  for (auto& [iname, index] : indexes_) {
    if (index->def().set_name != name) continue;
    for (const SetEntry& e : addition->entries()) index->Add(e.value, e.count);
  }
  return Status::OK();
}

Status Database::SetNamedSchema(const std::string& name, SchemaPtr schema) {
  auto it = named_.find(name);
  if (it == named_.end()) {
    return Status::NotFound(StrCat("no top-level object '", name, "'"));
  }
  it->second.schema = std::move(schema);
  return Status::OK();
}

std::vector<std::string> Database::NamedObjectNames() const {
  std::vector<std::string> out;
  out.reserve(named_.size());
  for (const auto& [name, obj] : named_) out.push_back(name);
  return out;
}

Status Database::DropNamed(const std::string& name) {
  auto it = named_.find(name);
  if (it == named_.end()) {
    return Status::NotFound(StrCat("no top-level object '", name, "'"));
  }
  named_.erase(it);
  extent_cache_.erase(name);
  append_index_.erase(name);
  for (auto iit = indexes_.begin(); iit != indexes_.end();) {
    if (iit->second->def().set_name == name) {
      iit = indexes_.erase(iit);
    } else {
      ++iit;
    }
  }
  return Status::OK();
}

void Database::Clear() {
  named_.clear();
  extent_cache_.clear();
  append_index_.clear();
  indexes_.clear();
  store_.Clear();
  catalog_.Clear();
}

Database::TxnSnapshot Database::CaptureTxnSnapshot() const {
  TxnSnapshot snap;
  snap.catalog_defs = catalog_.TypeNames().size();
  snap.store = store_.Dump();
  snap.named = named_;
  snap.index_defs = IndexDefs();
  return snap;
}

Status Database::RestoreTxnSnapshot(const TxnSnapshot& snap) {
  size_t defined = catalog_.TypeNames().size();
  if (defined < snap.catalog_defs) {
    return Status::Internal(
        "transaction rollback found fewer types than its snapshot");
  }
  while (defined-- > snap.catalog_defs) catalog_.UndoLastDefine();
  store_.Clear();
  EXA_RETURN_NOT_OK(store_.Restore(snap.store));
  named_ = snap.named;
  extent_cache_.clear();
  append_index_.clear();
  // Roll indexes back to the captured definitions and rebuild their entries
  // from the restored base sets (dropping any created inside the txn and
  // resurrecting any dropped by it).
  indexes_.clear();
  for (const IndexDef& def : snap.index_defs) {
    EXA_RETURN_NOT_OK(CreateIndex(def));
  }
  return Status::OK();
}

Status Database::CreateIndex(const IndexDef& def) {
  if (def.name.empty()) return Status::Invalid("index with empty name");
  if (indexes_.count(def.name) > 0) {
    return Status::AlreadyExists(
        StrCat("index '", def.name, "' already exists"));
  }
  EXA_ASSIGN_OR_RETURN(ValuePtr value, NamedValue(def.set_name));
  if (value == nullptr || !value->is_set()) {
    return Status::TypeError(StrCat("index '", def.name, "' target '",
                                    def.set_name,
                                    "' is not bound to a multiset"));
  }
  auto index = std::make_unique<SecondaryIndex>(def, &store_);
  index->Rebuild(value);
  indexes_.emplace(def.name, std::move(index));
  return Status::OK();
}

Status Database::DropIndex(const std::string& name) {
  auto it = indexes_.find(name);
  if (it == indexes_.end()) {
    return Status::NotFound(StrCat("no index '", name, "'"));
  }
  indexes_.erase(it);
  return Status::OK();
}

const SecondaryIndex* Database::FindIndex(const std::string& name) const {
  auto it = indexes_.find(name);
  return it == indexes_.end() ? nullptr : it->second.get();
}

std::vector<const SecondaryIndex*> Database::IndexesOn(
    const std::string& set_name) const {
  std::vector<const SecondaryIndex*> out;
  for (const auto& [name, index] : indexes_) {
    if (index->def().set_name == set_name) out.push_back(index.get());
  }
  return out;
}

std::vector<IndexDef> Database::IndexDefs() const {
  std::vector<IndexDef> out;
  out.reserve(indexes_.size());
  for (const auto& [name, index] : indexes_) out.push_back(index->def());
  return out;
}

Result<const std::map<std::string, ValuePtr>*> Database::TypeExtents(
    const std::string& set_name) {
  auto cached = extent_cache_.find(set_name);
  if (cached != extent_cache_.end()) return &cached->second;

  EXA_ASSIGN_OR_RETURN(ValuePtr v, NamedValue(set_name));
  if (!v->is_set()) {
    return Status::TypeError(
        StrCat("type extents require a multiset; '", set_name, "' is ",
               ValueKindToString(v->kind())));
  }
  std::map<std::string, std::vector<SetEntry>> buckets;
  for (const auto& e : v->entries()) {
    buckets[store_.ExactTypeOf(e.value)].push_back(e);
  }
  std::map<std::string, ValuePtr> extents;
  for (auto& [type, entries] : buckets) {
    extents.emplace(type, Value::SetOfCounted(std::move(entries)));
  }
  auto [it, inserted] = extent_cache_.emplace(set_name, std::move(extents));
  (void)inserted;
  return &it->second;
}

}  // namespace excess
