#include "objects/value.h"

#include <algorithm>
#include <unordered_map>

#include "util/hash.h"
#include "util/string_util.h"

namespace excess {

const char* ValueKindToString(ValueKind kind) {
  switch (kind) {
    case ValueKind::kInt:
      return "int";
    case ValueKind::kFloat:
      return "float";
    case ValueKind::kString:
      return "string";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kDate:
      return "date";
    case ValueKind::kDne:
      return "dne";
    case ValueKind::kUnk:
      return "unk";
    case ValueKind::kTuple:
      return "tuple";
    case ValueKind::kSet:
      return "set";
    case ValueKind::kArray:
      return "array";
    case ValueKind::kRef:
      return "ref";
  }
  return "?";
}

ValuePtr Value::Int(int64_t v) {
  auto p = std::shared_ptr<Value>(new Value(ValueKind::kInt));
  p->int_ = v;
  return p;
}

ValuePtr Value::Float(double v) {
  auto p = std::shared_ptr<Value>(new Value(ValueKind::kFloat));
  p->float_ = v;
  return p;
}

ValuePtr Value::Str(std::string v) {
  auto p = std::shared_ptr<Value>(new Value(ValueKind::kString));
  p->str_ = std::move(v);
  return p;
}

ValuePtr Value::Bool(bool v) {
  auto p = std::shared_ptr<Value>(new Value(ValueKind::kBool));
  p->bool_ = v;
  return p;
}

ValuePtr Value::Date(int64_t days) {
  auto p = std::shared_ptr<Value>(new Value(ValueKind::kDate));
  p->int_ = days;
  return p;
}

ValuePtr Value::Dne() {
  static const ValuePtr dne = std::shared_ptr<Value>(new Value(ValueKind::kDne));
  return dne;
}

ValuePtr Value::Unk() {
  static const ValuePtr unk = std::shared_ptr<Value>(new Value(ValueKind::kUnk));
  return unk;
}

ValuePtr Value::Tuple(std::vector<std::string> names, std::vector<ValuePtr> vals,
                      std::string type_tag) {
  auto p = std::shared_ptr<Value>(new Value(ValueKind::kTuple));
  p->names_ = std::move(names);
  p->elems_ = std::move(vals);
  p->type_tag_ = std::move(type_tag);
  return p;
}

ValuePtr Value::TupleOf(std::vector<ValuePtr> vals) {
  std::vector<std::string> names;
  names.reserve(vals.size());
  for (size_t i = 0; i < vals.size(); ++i) names.push_back(StrCat("_", i + 1));
  return Tuple(std::move(names), std::move(vals));
}

ValuePtr Value::Retag(const ValuePtr& t, std::string type_tag) {
  auto p = std::shared_ptr<Value>(new Value(*t));  // hash cache starts cold
  p->type_tag_ = std::move(type_tag);
  return p;
}

ValuePtr Value::SetOf(const std::vector<ValuePtr>& occurrences) {
  std::vector<SetEntry> entries;
  entries.reserve(occurrences.size());
  for (const auto& v : occurrences) entries.push_back({v, 1});
  return SetOfCounted(std::move(entries));
}

ValuePtr Value::SetOfCounted(std::vector<SetEntry> in) {
  auto p = std::shared_ptr<Value>(new Value(ValueKind::kSet));
  std::unordered_map<ValuePtr, size_t, ValuePtrDeepHash, ValuePtrDeepEq> index;
  for (auto& e : in) {
    if (e.value == nullptr || e.value->is_dne() || e.count <= 0) continue;
    auto it = index.find(e.value);
    if (it == index.end()) {
      index.emplace(e.value, p->set_.size());
      p->set_.push_back(std::move(e));
    } else {
      p->set_[it->second].count += e.count;
    }
  }
  return p;
}

ValuePtr Value::EmptySet() { return SetOfCounted({}); }

ValuePtr Value::AddUnionInPlace(ValuePtr set, const Value& addition,
                                SetIndex* index) {
  std::shared_ptr<Value> mut;
  if (set.use_count() == 1) {
    // Sole owner: safe to extend the entries vector behind the const facade.
    mut = std::const_pointer_cast<Value>(set);
  } else {
    // Shared (a snapshot, a transaction undo image, a caller-held result):
    // copy-on-write. The entry vector is copied shallowly, so `index` —
    // keyed by deep value with identical positions — stays valid.
    mut = std::shared_ptr<Value>(new Value(*set));
  }
  set.reset();
  if (index->empty() && !mut->set_.empty()) {
    index->reserve(mut->set_.size());
    for (size_t i = 0; i < mut->set_.size(); ++i) {
      index->emplace(mut->set_[i].value, i);
    }
  }
  // `addition` is an already-normalized multiset: no dne, all counts > 0.
  for (const auto& e : addition.set_) {
    auto it = index->find(e.value);
    if (it == index->end()) {
      index->emplace(e.value, mut->set_.size());
      mut->set_.push_back(e);
    } else {
      mut->set_[it->second].count += e.count;
    }
  }
  mut->hash_valid_.store(false, std::memory_order_release);
  return mut;
}

ValuePtr Value::ArrayOf(std::vector<ValuePtr> elems) {
  auto p = std::shared_ptr<Value>(new Value(ValueKind::kArray));
  p->elems_.reserve(elems.size());
  for (auto& e : elems) {
    if (e == nullptr || e->is_dne()) continue;
    p->elems_.push_back(std::move(e));
  }
  return p;
}

ValuePtr Value::EmptyArray() { return ArrayOf({}); }

ValuePtr Value::RefTo(Oid oid) {
  auto p = std::shared_ptr<Value>(new Value(ValueKind::kRef));
  p->oid_ = oid;
  return p;
}

double Value::NumericValue() const {
  switch (kind_) {
    case ValueKind::kInt:
    case ValueKind::kDate:
      return static_cast<double>(int_);
    case ValueKind::kFloat:
      return float_;
    default:
      return 0;
  }
}

Result<ValuePtr> Value::Field(const std::string& name) const {
  if (!is_tuple()) {
    return Status::TypeError(
        StrCat("field access '", name, "' on non-tuple ", ToString()));
  }
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return elems_[i];
  }
  return Status::NotFound(StrCat("no field '", name, "' in ", ToString()));
}

Result<ValuePtr> Value::FieldAt(size_t i) const {
  if (!is_tuple()) return Status::TypeError("positional field access on non-tuple");
  if (i >= elems_.size()) {
    return Status::NotFound(StrCat("tuple has no field #", i));
  }
  return elems_[i];
}

int Value::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

int64_t Value::TotalCount() const {
  int64_t n = 0;
  for (const auto& e : set_) n += e.count;
  return n;
}

int64_t Value::DistinctCount() const { return static_cast<int64_t>(set_.size()); }

int64_t Value::ShallowSizeBytes() const {
  int64_t n = static_cast<int64_t>(sizeof(Value));
  // Small-string storage lives inside the object; only heap spill counts.
  if (str_.capacity() > sizeof(std::string)) {
    n += static_cast<int64_t>(str_.capacity());
  }
  if (type_tag_.capacity() > sizeof(std::string)) {
    n += static_cast<int64_t>(type_tag_.capacity());
  }
  n += static_cast<int64_t>(names_.capacity() * sizeof(std::string));
  for (const auto& name : names_) {
    if (name.capacity() > sizeof(std::string)) {
      n += static_cast<int64_t>(name.capacity());
    }
  }
  n += static_cast<int64_t>(elems_.capacity() * sizeof(ValuePtr));
  n += static_cast<int64_t>(set_.capacity() * sizeof(SetEntry));
  return n;
}

int64_t Value::DeepSizeBytes() const {
  int64_t n = ShallowSizeBytes();
  for (const auto& e : elems_) {
    if (e != nullptr) n += e->DeepSizeBytes();
  }
  for (const auto& e : set_) {
    if (e.value != nullptr) n += e.value->DeepSizeBytes();
  }
  return n;
}

int64_t Value::CountOf(const ValuePtr& v) const {
  for (const auto& e : set_) {
    if (e.value->Equals(*v)) return e.count;
  }
  return 0;
}

bool Value::Equals(const Value& other) const {
  if (this == &other) return true;
  if (kind_ != other.kind_) return false;
  if (hash_valid_.load(std::memory_order_acquire) &&
      other.hash_valid_.load(std::memory_order_acquire) &&
      hash_.load(std::memory_order_relaxed) !=
          other.hash_.load(std::memory_order_relaxed)) {
    return false;
  }
  switch (kind_) {
    case ValueKind::kInt:
    case ValueKind::kDate:
      return int_ == other.int_;
    case ValueKind::kFloat:
      return float_ == other.float_;
    case ValueKind::kString:
      return str_ == other.str_;
    case ValueKind::kBool:
      return bool_ == other.bool_;
    case ValueKind::kDne:
    case ValueKind::kUnk:
      return true;
    case ValueKind::kRef:
      return oid_ == other.oid_;
    case ValueKind::kTuple: {
      // Record-style equality: tuples are equal iff they carry the same
      // multiset of (field name, value) pairs. Field *order* is not part of
      // the value, which is what makes TUP_CAT commutative (Appendix rule
      // 23). Fast path: identical name vectors compare positionally.
      if (elems_.size() != other.elems_.size()) return false;
      if (names_ == other.names_) {
        for (size_t i = 0; i < elems_.size(); ++i) {
          if (!elems_[i]->Equals(*other.elems_[i])) return false;
        }
        return true;
      }
      std::vector<bool> used(elems_.size(), false);
      for (size_t i = 0; i < elems_.size(); ++i) {
        bool matched = false;
        for (size_t j = 0; j < elems_.size(); ++j) {
          if (used[j] || names_[i] != other.names_[j]) continue;
          if (elems_[i]->Equals(*other.elems_[j])) {
            used[j] = true;
            matched = true;
            break;
          }
        }
        if (!matched) return false;
      }
      return true;
    }
    case ValueKind::kArray: {
      if (elems_.size() != other.elems_.size()) return false;
      for (size_t i = 0; i < elems_.size(); ++i) {
        if (!elems_[i]->Equals(*other.elems_[i])) return false;
      }
      return true;
    }
    case ValueKind::kSet: {
      // Two multisets are equal iff every element has the same cardinality
      // in both (§3.2.1). Entries are normalized-distinct, so sizes match
      // and each entry must be found in the other with the same count.
      if (set_.size() != other.set_.size()) return false;
      for (const auto& e : set_) {
        bool found = false;
        for (const auto& o : other.set_) {
          if (e.value->Equals(*o.value)) {
            if (e.count != o.count) return false;
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
      return true;
    }
  }
  return false;
}

uint64_t Value::Hash() const {
  if (hash_valid_.load(std::memory_order_acquire)) {
    return hash_.load(std::memory_order_relaxed);
  }
  uint64_t h = HashCombine(0x5eed, static_cast<uint64_t>(kind_));
  switch (kind_) {
    case ValueKind::kInt:
    case ValueKind::kDate:
      h = HashCombine(h, static_cast<uint64_t>(int_));
      break;
    case ValueKind::kFloat: {
      // Normalize -0.0 to 0.0 so equal floats hash equally.
      double d = float_ == 0.0 ? 0.0 : float_;
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      h = HashCombine(h, bits);
      break;
    }
    case ValueKind::kString:
      h = HashCombine(h, HashString(str_));
      break;
    case ValueKind::kBool:
      h = HashCombine(h, bool_ ? 1 : 0);
      break;
    case ValueKind::kDne:
    case ValueKind::kUnk:
      break;
    case ValueKind::kRef:
      h = HashCombine(h, oid_.Hash());
      break;
    case ValueKind::kTuple: {
      // Order-insensitive over (name, value) pairs, matching record-style
      // equality above.
      uint64_t acc = 0;
      for (size_t i = 0; i < elems_.size(); ++i) {
        acc = HashMixUnordered(
            acc, HashCombine(HashString(names_[i]), elems_[i]->Hash()));
      }
      h = HashCombine(h, acc);
      break;
    }
    case ValueKind::kArray:
      for (const auto& e : elems_) h = HashCombine(h, e->Hash());
      break;
    case ValueKind::kSet: {
      // Order-insensitive mix: entries are in insertion order, which is not
      // canonical across equal multisets.
      uint64_t acc = 0;
      for (const auto& e : set_) {
        acc = HashMixUnordered(
            acc, HashCombine(e.value->Hash(), static_cast<uint64_t>(e.count)));
      }
      h = HashCombine(h, acc);
      break;
    }
  }
  hash_.store(h, std::memory_order_relaxed);
  hash_valid_.store(true, std::memory_order_release);
  return h;
}

Result<int> Value::Compare(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    return Status::EvalError("comparison involving a null value");
  }
  if (a.IsNumeric() && b.IsNumeric()) {
    double x = a.NumericValue();
    double y = b.NumericValue();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.kind() == ValueKind::kString && b.kind() == ValueKind::kString) {
    int c = a.as_string().compare(b.as_string());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.kind() == ValueKind::kBool && b.kind() == ValueKind::kBool) {
    return static_cast<int>(a.as_bool()) - static_cast<int>(b.as_bool());
  }
  return Status::TypeError(StrCat("cannot order ", ValueKindToString(a.kind()),
                                  " against ", ValueKindToString(b.kind())));
}

std::string Value::ToString() const {
  switch (kind_) {
    case ValueKind::kInt:
      return StrCat(int_);
    case ValueKind::kDate:
      return StrCat("date(", int_, ")");
    case ValueKind::kFloat:
      return StrCat(float_);
    case ValueKind::kString:
      return StrCat("\"", str_, "\"");
    case ValueKind::kBool:
      return bool_ ? "true" : "false";
    case ValueKind::kDne:
      return "dne";
    case ValueKind::kUnk:
      return "unk";
    case ValueKind::kRef:
      return oid_.ToString();
    case ValueKind::kTuple: {
      std::vector<std::string> parts;
      parts.reserve(elems_.size());
      for (size_t i = 0; i < elems_.size(); ++i) {
        parts.push_back(StrCat(names_[i], ": ", elems_[i]->ToString()));
      }
      std::string body = StrCat("(", Join(parts, ", "), ")");
      if (!type_tag_.empty()) return StrCat(type_tag_, body);
      return body;
    }
    case ValueKind::kArray: {
      std::vector<std::string> parts;
      parts.reserve(elems_.size());
      for (const auto& e : elems_) parts.push_back(e->ToString());
      return StrCat("[", Join(parts, ", "), "]");
    }
    case ValueKind::kSet: {
      std::vector<std::string> parts;
      parts.reserve(set_.size());
      for (const auto& e : set_) {
        if (e.count == 1) {
          parts.push_back(e.value->ToString());
        } else {
          parts.push_back(StrCat(e.value->ToString(), " x", e.count));
        }
      }
      return StrCat("{", Join(parts, ", "), "}");
    }
  }
  return "?";
}

}  // namespace excess
