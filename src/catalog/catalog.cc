#include "catalog/catalog.h"

#include <unordered_map>
#include <unordered_set>

#include "util/string_util.h"

namespace excess {

Status Catalog::DefineType(const std::string& name, SchemaPtr declared,
                           std::vector<std::string> parents) {
  if (name.empty()) return Status::Invalid("type name must be non-empty");
  if (types_.count(name) > 0) {
    return Status::AlreadyExists(StrCat("type '", name, "' already defined"));
  }
  if (declared == nullptr) return Status::Invalid("declared schema is null");
  EXA_RETURN_NOT_OK(declared->Validate());

  for (const auto& p : parents) {
    auto it = types_.find(p);
    if (it == types_.end()) {
      return Status::NotFound(StrCat("unknown supertype '", p, "' of '", name, "'"));
    }
    if (!it->second.effective->is_tup() || !declared->is_tup()) {
      return Status::TypeError(
          StrCat("inheritance is defined for tuple types only ('", name,
                 "' inherits '", p, "')"));
    }
    // Cycles are impossible because parents must already exist and names are
    // unique, but self-inheritance is worth a direct message.
    if (p == name) return Status::Invalid("a type cannot inherit from itself");
  }

  SchemaPtr effective;
  if (declared->is_tup() && !parents.empty()) {
    EXA_RETURN_NOT_OK(MergeInherited(name, parents, declared, &effective));
  } else {
    effective = declared;
  }
  effective = Schema::Named(effective, name);

  TypeEntry entry;
  entry.name = name;
  entry.declared = std::move(declared);
  entry.parents = std::move(parents);
  entry.effective = std::move(effective);
  entry.type_id = static_cast<uint32_t>(id_to_name_.size());
  id_to_name_.push_back(name);
  definition_order_.push_back(name);
  types_.emplace(name, std::move(entry));
  return Status::OK();
}

Status Catalog::MergeInherited(const std::string& name,
                               const std::vector<std::string>& parents,
                               const SchemaPtr& declared,
                               SchemaPtr* out) const {
  // Attribute resolution under multiple inheritance (§2.1/§3.1):
  //  - all attributes of every supertype are attributes of the subtype;
  //  - the subtype may override any inherited attribute with a new type;
  //  - if two supertypes contribute the same attribute with *different*
  //    types and the subtype does not override it, the definition is
  //    rejected (the user must disambiguate).
  std::vector<Field> merged;
  std::unordered_map<std::string, size_t> index;

  for (const auto& pname : parents) {
    const TypeEntry& parent = types_.at(pname);
    for (const auto& f : parent.effective->fields()) {
      auto it = index.find(f.name);
      if (it == index.end()) {
        index.emplace(f.name, merged.size());
        merged.push_back(f);
      } else if (!merged[it->second].type->Equals(*f.type)) {
        if (declared->FieldIndex(f.name) < 0) {
          return Status::TypeError(
              StrCat("type '", name, "': attribute '", f.name,
                     "' inherited with conflicting types and not overridden"));
        }
        // The child override below resolves the conflict.
      }
    }
  }
  for (const auto& f : declared->fields()) {
    auto it = index.find(f.name);
    if (it == index.end()) {
      index.emplace(f.name, merged.size());
      merged.push_back(f);
    } else {
      merged[it->second] = f;  // override, position preserved
    }
  }
  *out = Schema::Tup(std::move(merged));
  return Status::OK();
}

bool Catalog::HasType(const std::string& name) const {
  return types_.count(name) > 0;
}

Result<const TypeEntry*> Catalog::Lookup(const std::string& name) const {
  auto it = types_.find(name);
  if (it == types_.end()) {
    return Status::NotFound(StrCat("unknown type '", name, "'"));
  }
  return &it->second;
}

Result<SchemaPtr> Catalog::EffectiveSchema(const std::string& name) const {
  EXA_ASSIGN_OR_RETURN(const TypeEntry* entry, Lookup(name));
  return entry->effective;
}

bool Catalog::IsSubtype(const std::string& sub, const std::string& super) const {
  if (sub == super) return types_.count(sub) > 0;
  auto it = types_.find(sub);
  if (it == types_.end()) return false;
  for (const auto& p : it->second.parents) {
    if (IsSubtype(p, super)) return true;
  }
  return false;
}

std::vector<std::string> Catalog::Descendants(const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& t : definition_order_) {
    if (t != name && IsSubtype(t, name)) out.push_back(t);
  }
  return out;
}

std::vector<std::string> Catalog::SelfAndDescendants(const std::string& name) const {
  std::vector<std::string> out;
  if (types_.count(name) > 0) out.push_back(name);
  auto desc = Descendants(name);
  out.insert(out.end(), desc.begin(), desc.end());
  return out;
}

bool Catalog::SharesNoDescendant(const std::string& a, const std::string& b) const {
  for (const auto& t : definition_order_) {
    if (IsSubtype(t, a) && IsSubtype(t, b)) return false;
  }
  return true;
}

Result<uint32_t> Catalog::TypeId(const std::string& name) const {
  EXA_ASSIGN_OR_RETURN(const TypeEntry* entry, Lookup(name));
  return entry->type_id;
}

Result<std::string> Catalog::TypeName(uint32_t type_id) const {
  if (type_id >= id_to_name_.size()) {
    return Status::NotFound(StrCat("unknown type id ", type_id));
  }
  return id_to_name_[type_id];
}

Status Catalog::CollectRefTargets(const SchemaPtr& s,
                                  std::vector<std::string>* out) {
  switch (s->ctor()) {
    case TypeCtor::kVal:
      return Status::OK();
    case TypeCtor::kTup:
      for (const auto& f : s->fields()) {
        EXA_RETURN_NOT_OK(CollectRefTargets(f.type, out));
      }
      return Status::OK();
    case TypeCtor::kSet:
    case TypeCtor::kArr:
      return CollectRefTargets(s->elem(), out);
    case TypeCtor::kRef:
      out->push_back(s->ref_target());
      return Status::OK();
  }
  return Status::Internal("unknown ctor");
}

Status Catalog::Validate() const {
  for (const auto& [name, entry] : types_) {
    std::vector<std::string> targets;
    EXA_RETURN_NOT_OK(CollectRefTargets(entry.effective, &targets));
    for (const auto& t : targets) {
      if (types_.count(t) == 0) {
        return Status::NotFound(
            StrCat("type '", name, "' references undefined type '", t, "'"));
      }
    }
  }
  return Status::OK();
}

std::vector<std::string> Catalog::TypeNames() const { return definition_order_; }

std::vector<Catalog::TypeDef> Catalog::DumpDefinitions() const {
  std::vector<TypeDef> out;
  out.reserve(definition_order_.size());
  for (const auto& name : definition_order_) {
    const TypeEntry& entry = types_.at(name);
    out.push_back(TypeDef{entry.name, entry.declared, entry.parents});
  }
  return out;
}

void Catalog::UndoLastDefine() {
  if (definition_order_.empty()) return;
  std::string name = definition_order_.back();
  definition_order_.pop_back();
  // DefineType pushes to both vectors in lockstep, so the last id is the
  // last definition.
  id_to_name_.pop_back();
  types_.erase(name);
}

void Catalog::Clear() {
  types_.clear();
  definition_order_.clear();
  id_to_name_.clear();
}

}  // namespace excess
