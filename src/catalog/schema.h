#ifndef EXCESS_CATALOG_SCHEMA_H_
#define EXCESS_CATALOG_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace excess {

class Schema;
using SchemaPtr = std::shared_ptr<const Schema>;

/// The five node labels of the schema digraph (paper §3.1): the four type
/// constructors plus "val" for scalars.
enum class TypeCtor {
  kVal,  // scalar leaf
  kTup,  // tuple of named fields
  kSet,  // multiset (duplicates allowed)
  kArr,  // one-dimensional array, variable- or fixed-length
  kRef,  // OID referring to an object of a named type
};

const char* TypeCtorToString(TypeCtor ctor);

/// Scalar domains. kAny is the inference wildcard: the schema of an empty
/// collection literal or of the dne/unk null constants, compatible with
/// every scalar domain.
enum class ScalarKind {
  kInt,     // int4 in EXTRA surface syntax
  kFloat,   // float4
  kString,  // char[] / char[n]
  kBool,
  kDate,
  kAny,
};

const char* ScalarKindToString(ScalarKind kind);

/// A named component of a tuple schema.
struct Field {
  std::string name;
  SchemaPtr type;
};

/// A schema is the digraph of §3.1. We represent it as a tree whose "ref"
/// nodes carry the *name* of the referenced type rather than a structural
/// edge; the digraph (and any cycles, which the paper requires to pass
/// through a ref node — condition iv) arises from resolving those names in
/// a Catalog. deref(S) is therefore a forest by construction.
///
/// Any node may additionally carry a `type_name` tag identifying the named
/// user type it was instantiated from; the tag is what makes
/// substitutability (DOM semantics) checkable on values.
///
/// Schemas are immutable and shared via SchemaPtr.
class Schema {
 public:
  /// Factory functions; these are the only way to build schemas, which is
  /// how conditions (i)-(iii) of §3.1 hold by construction.
  static SchemaPtr Val(ScalarKind kind);
  static SchemaPtr Tup(std::vector<Field> fields);
  static SchemaPtr Set(SchemaPtr elem);
  static SchemaPtr Arr(SchemaPtr elem);
  /// Fixed-length array (EXTRA `array [1..n] of T`).
  static SchemaPtr FixedArr(SchemaPtr elem, int64_t size);
  static SchemaPtr Ref(std::string target_type);

  /// Returns a copy of `s` tagged with a named-type name.
  static SchemaPtr Named(const SchemaPtr& s, std::string type_name);

  TypeCtor ctor() const { return ctor_; }
  bool is_val() const { return ctor_ == TypeCtor::kVal; }
  bool is_tup() const { return ctor_ == TypeCtor::kTup; }
  bool is_set() const { return ctor_ == TypeCtor::kSet; }
  bool is_arr() const { return ctor_ == TypeCtor::kArr; }
  bool is_ref() const { return ctor_ == TypeCtor::kRef; }

  /// Scalar domain; only meaningful for val nodes.
  ScalarKind scalar_kind() const { return scalar_kind_; }

  /// Tuple fields; empty unless is_tup(). The empty tuple type is legal
  /// (condition ii).
  const std::vector<Field>& fields() const { return fields_; }
  /// Field schema lookup by name.
  Result<SchemaPtr> FieldType(const std::string& name) const;
  /// Position of a field, or -1.
  int FieldIndex(const std::string& name) const;

  /// Element schema of a set or array node (its single component,
  /// condition iii).
  const SchemaPtr& elem() const { return elem_; }

  /// Declared size of a fixed-length array; nullopt for variable-length.
  std::optional<int64_t> fixed_size() const { return fixed_size_; }

  /// Target type name of a ref node.
  const std::string& ref_target() const { return ref_target_; }

  /// Name of the named type this node instantiates, or "" if anonymous.
  const std::string& type_name() const { return type_name_; }

  /// Structural equality. Named-type tags participate: `{Person}` and an
  /// untagged structurally identical tuple multiset are *different* schemas
  /// for substitutability purposes, but CompatibleWith() below relates them.
  bool Equals(const Schema& other) const;

  /// Looser check used by type inference: equal up to kAny wildcards and
  /// ignoring named-type tags and fixed sizes.
  bool CompatibleWith(const Schema& other) const;

  /// Renders the schema in EXTRA-like surface syntax, e.g.
  /// "{ (name: string, dept: ref Department) }".
  std::string ToString() const;

  /// Deep structural hash (tags included).
  uint64_t Hash() const;

  /// Re-checks conditions (i)-(iii) plus tuple-field-name uniqueness over
  /// the whole tree. Factories enforce these already; Validate exists so
  /// tests and deserializers can assert them independently.
  Status Validate() const;

 private:
  Schema() = default;

  TypeCtor ctor_ = TypeCtor::kVal;
  ScalarKind scalar_kind_ = ScalarKind::kAny;
  std::vector<Field> fields_;
  SchemaPtr elem_;
  std::optional<int64_t> fixed_size_;
  std::string ref_target_;
  std::string type_name_;
};

/// Convenience builders for common scalar schemas.
SchemaPtr IntSchema();
SchemaPtr FloatSchema();
SchemaPtr StringSchema();
SchemaPtr BoolSchema();
SchemaPtr DateSchema();
SchemaPtr AnySchema();

}  // namespace excess

#endif  // EXCESS_CATALOG_SCHEMA_H_
