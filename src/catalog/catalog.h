#ifndef EXCESS_CATALOG_CATALOG_H_
#define EXCESS_CATALOG_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "util/status.h"

namespace excess {

/// One named user type. Only tuple types may take part in inheritance
/// (EXTRA inherits tuple attributes and methods for "top-level tuple
/// types"), but any EXTRA type may be named.
struct TypeEntry {
  std::string name;
  /// Fields declared locally (for tuple types) or the full schema
  /// otherwise. Local declarations override inherited attributes.
  SchemaPtr declared;
  /// Direct supertypes, in declaration order.
  std::vector<std::string> parents;
  /// Inherited + local fields merged; tagged with the type name.
  SchemaPtr effective;
  /// Dense id used to partition the OID space (the function R of §3.1).
  uint32_t type_id = 0;
};

/// The type catalog: named types, the inheritance DAG, and the
/// substitutability relation. This is the data structure behind both the
/// DOM(S) domain semantics of §3.1 and the §4 method-dispatch strategies.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Defines a named type. For tuple types, `declared` lists the locally
  /// declared fields and `parents` the direct supertypes (multiple
  /// inheritance allowed). Fails if:
  ///   - the name is already defined,
  ///   - a parent is unknown or not a tuple type,
  ///   - two parents contribute the same attribute with different types and
  ///     the child does not override it (the classic diamond conflict),
  ///   - inheritance would form a cycle.
  /// Ref targets inside `declared` may be forward references; they are
  /// checked by Validate().
  Status DefineType(const std::string& name, SchemaPtr declared,
                    std::vector<std::string> parents = {});

  bool HasType(const std::string& name) const;

  Result<const TypeEntry*> Lookup(const std::string& name) const;

  /// The merged (inherited + overridden + local) schema of a named type,
  /// tagged with the type name. For non-tuple named types this is the
  /// declared schema.
  Result<SchemaPtr> EffectiveSchema(const std::string& name) const;

  /// Substitutability: true iff `sub` == `super` or `sub` transitively
  /// inherits from `super`. Unknown names are never subtypes.
  bool IsSubtype(const std::string& sub, const std::string& super) const;

  /// All strict descendants of `name`, in deterministic (definition) order.
  std::vector<std::string> Descendants(const std::string& name) const;

  /// `name` plus all its descendants — the set of exact types whose members
  /// populate a collection declared over `name` (substitutability).
  std::vector<std::string> SelfAndDescendants(const std::string& name) const;

  /// True iff `a` and `b` share no common descendant (including themselves);
  /// by OID-domain rule 4 their OID domains must then be disjoint.
  bool SharesNoDescendant(const std::string& a, const std::string& b) const;

  Result<uint32_t> TypeId(const std::string& name) const;
  Result<std::string> TypeName(uint32_t type_id) const;

  /// Checks deferred properties: every ref target mentioned anywhere in a
  /// defined type resolves to a defined type.
  Status Validate() const;

  /// Names of all defined types in definition order.
  std::vector<std::string> TypeNames() const;

  /// One definition as DefineType received it; replaying DumpDefinitions()
  /// through DefineType on an empty catalog reproduces this catalog exactly
  /// (type ids are assigned by definition order). This is the storage
  /// layer's snapshot representation of the catalog.
  struct TypeDef {
    std::string name;
    SchemaPtr declared;
    std::vector<std::string> parents;
  };
  std::vector<TypeDef> DumpDefinitions() const;

  /// Removes the most recently defined type. Storage-commit rollback only:
  /// the caller guarantees nothing references the type yet (it was defined
  /// within the current statement, whose durable commit failed).
  void UndoLastDefine();

  /// Drops every definition (durable `open` replaces the whole database).
  void Clear();

 private:
  Status MergeInherited(const std::string& name,
                        const std::vector<std::string>& parents,
                        const SchemaPtr& declared, SchemaPtr* out) const;
  static Status CollectRefTargets(const SchemaPtr& s,
                                  std::vector<std::string>* out);

  std::map<std::string, TypeEntry> types_;
  std::vector<std::string> definition_order_;
  std::vector<std::string> id_to_name_;  // type_id -> name
};

}  // namespace excess

#endif  // EXCESS_CATALOG_CATALOG_H_
