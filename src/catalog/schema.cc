#include "catalog/schema.h"

#include <unordered_set>

#include "util/hash.h"
#include "util/string_util.h"

namespace excess {

const char* TypeCtorToString(TypeCtor ctor) {
  switch (ctor) {
    case TypeCtor::kVal:
      return "val";
    case TypeCtor::kTup:
      return "tup";
    case TypeCtor::kSet:
      return "set";
    case TypeCtor::kArr:
      return "arr";
    case TypeCtor::kRef:
      return "ref";
  }
  return "?";
}

const char* ScalarKindToString(ScalarKind kind) {
  switch (kind) {
    case ScalarKind::kInt:
      return "int4";
    case ScalarKind::kFloat:
      return "float4";
    case ScalarKind::kString:
      return "string";
    case ScalarKind::kBool:
      return "bool";
    case ScalarKind::kDate:
      return "date";
    case ScalarKind::kAny:
      return "any";
  }
  return "?";
}

SchemaPtr Schema::Val(ScalarKind kind) {
  auto s = std::shared_ptr<Schema>(new Schema());
  s->ctor_ = TypeCtor::kVal;
  s->scalar_kind_ = kind;
  return s;
}

SchemaPtr Schema::Tup(std::vector<Field> fields) {
  auto s = std::shared_ptr<Schema>(new Schema());
  s->ctor_ = TypeCtor::kTup;
  s->fields_ = std::move(fields);
  return s;
}

SchemaPtr Schema::Set(SchemaPtr elem) {
  auto s = std::shared_ptr<Schema>(new Schema());
  s->ctor_ = TypeCtor::kSet;
  s->elem_ = std::move(elem);
  return s;
}

SchemaPtr Schema::Arr(SchemaPtr elem) {
  auto s = std::shared_ptr<Schema>(new Schema());
  s->ctor_ = TypeCtor::kArr;
  s->elem_ = std::move(elem);
  return s;
}

SchemaPtr Schema::FixedArr(SchemaPtr elem, int64_t size) {
  auto s = std::shared_ptr<Schema>(new Schema());
  s->ctor_ = TypeCtor::kArr;
  s->elem_ = std::move(elem);
  s->fixed_size_ = size;
  return s;
}

SchemaPtr Schema::Ref(std::string target_type) {
  auto s = std::shared_ptr<Schema>(new Schema());
  s->ctor_ = TypeCtor::kRef;
  s->ref_target_ = std::move(target_type);
  return s;
}

SchemaPtr Schema::Named(const SchemaPtr& base, std::string type_name) {
  auto s = std::shared_ptr<Schema>(new Schema(*base));
  s->type_name_ = std::move(type_name);
  return s;
}

Result<SchemaPtr> Schema::FieldType(const std::string& name) const {
  for (const auto& f : fields_) {
    if (f.name == name) return f.type;
  }
  return Status::NotFound(
      StrCat("no field '", name, "' in tuple schema ", ToString()));
}

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool Schema::Equals(const Schema& other) const {
  if (ctor_ != other.ctor_) return false;
  if (type_name_ != other.type_name_) return false;
  switch (ctor_) {
    case TypeCtor::kVal:
      return scalar_kind_ == other.scalar_kind_;
    case TypeCtor::kTup: {
      if (fields_.size() != other.fields_.size()) return false;
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].name != other.fields_[i].name) return false;
        if (!fields_[i].type->Equals(*other.fields_[i].type)) return false;
      }
      return true;
    }
    case TypeCtor::kSet:
      return elem_->Equals(*other.elem_);
    case TypeCtor::kArr:
      return fixed_size_ == other.fixed_size_ && elem_->Equals(*other.elem_);
    case TypeCtor::kRef:
      return ref_target_ == other.ref_target_;
  }
  return false;
}

bool Schema::CompatibleWith(const Schema& other) const {
  if (is_val() && scalar_kind_ == ScalarKind::kAny) return true;
  if (other.is_val() && other.scalar_kind_ == ScalarKind::kAny) return true;
  if (ctor_ != other.ctor_) return false;
  switch (ctor_) {
    case TypeCtor::kVal:
      return scalar_kind_ == other.scalar_kind_;
    case TypeCtor::kTup: {
      if (fields_.size() != other.fields_.size()) return false;
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].name != other.fields_[i].name) return false;
        if (!fields_[i].type->CompatibleWith(*other.fields_[i].type)) {
          return false;
        }
      }
      return true;
    }
    case TypeCtor::kSet:
    case TypeCtor::kArr:
      return elem_->CompatibleWith(*other.elem_);
    case TypeCtor::kRef:
      return ref_target_ == other.ref_target_;
  }
  return false;
}

std::string Schema::ToString() const {
  switch (ctor_) {
    case TypeCtor::kVal:
      return ScalarKindToString(scalar_kind_);
    case TypeCtor::kTup: {
      if (!type_name_.empty()) return type_name_;
      std::vector<std::string> parts;
      parts.reserve(fields_.size());
      for (const auto& f : fields_) {
        parts.push_back(StrCat(f.name, ": ", f.type->ToString()));
      }
      return StrCat("(", Join(parts, ", "), ")");
    }
    case TypeCtor::kSet:
      return StrCat("{ ", elem_->ToString(), " }");
    case TypeCtor::kArr:
      if (fixed_size_.has_value()) {
        return StrCat("array [1..", *fixed_size_, "] of ", elem_->ToString());
      }
      return StrCat("array of ", elem_->ToString());
    case TypeCtor::kRef:
      return StrCat("ref ", ref_target_);
  }
  return "?";
}

uint64_t Schema::Hash() const {
  uint64_t h = HashCombine(static_cast<uint64_t>(ctor_), HashString(type_name_));
  switch (ctor_) {
    case TypeCtor::kVal:
      return HashCombine(h, static_cast<uint64_t>(scalar_kind_));
    case TypeCtor::kTup:
      for (const auto& f : fields_) {
        h = HashCombine(h, HashString(f.name));
        h = HashCombine(h, f.type->Hash());
      }
      return h;
    case TypeCtor::kSet:
      return HashCombine(h, elem_->Hash());
    case TypeCtor::kArr:
      h = HashCombine(h, elem_->Hash());
      return HashCombine(h, fixed_size_.value_or(-1));
    case TypeCtor::kRef:
      return HashCombine(h, HashString(ref_target_));
  }
  return h;
}

Status Schema::Validate() const {
  switch (ctor_) {
    case TypeCtor::kVal:
      // Condition (i): no components. Guaranteed structurally.
      if (elem_ != nullptr || !fields_.empty()) {
        return Status::Internal("val node with components");
      }
      return Status::OK();
    case TypeCtor::kTup: {
      std::unordered_set<std::string> seen;
      for (const auto& f : fields_) {
        if (f.type == nullptr) {
          return Status::Invalid(StrCat("tuple field '", f.name, "' has no type"));
        }
        if (!seen.insert(f.name).second) {
          return Status::Invalid(StrCat("duplicate tuple field name '", f.name, "'"));
        }
        EXA_RETURN_NOT_OK(f.type->Validate());
      }
      return Status::OK();
    }
    case TypeCtor::kSet:
    case TypeCtor::kArr:
      // Condition (iii): exactly one component.
      if (elem_ == nullptr) {
        return Status::Invalid(StrCat(TypeCtorToString(ctor_), " node lacks its component"));
      }
      if (fixed_size_.has_value() && *fixed_size_ < 0) {
        return Status::Invalid("fixed array size must be non-negative");
      }
      return elem_->Validate();
    case TypeCtor::kRef:
      if (ref_target_.empty()) {
        return Status::Invalid("ref node lacks a target type name");
      }
      // Condition (iv) — deref(S) is a forest — holds by construction: ref
      // nodes carry names, not structural edges, so the structural graph is
      // a tree and every schema cycle goes through a ref node.
      return Status::OK();
  }
  return Status::Internal("unknown type constructor");
}

SchemaPtr IntSchema() {
  static const SchemaPtr s = Schema::Val(ScalarKind::kInt);
  return s;
}
SchemaPtr FloatSchema() {
  static const SchemaPtr s = Schema::Val(ScalarKind::kFloat);
  return s;
}
SchemaPtr StringSchema() {
  static const SchemaPtr s = Schema::Val(ScalarKind::kString);
  return s;
}
SchemaPtr BoolSchema() {
  static const SchemaPtr s = Schema::Val(ScalarKind::kBool);
  return s;
}
SchemaPtr DateSchema() {
  static const SchemaPtr s = Schema::Val(ScalarKind::kDate);
  return s;
}
SchemaPtr AnySchema() {
  static const SchemaPtr s = Schema::Val(ScalarKind::kAny);
  return s;
}

}  // namespace excess
