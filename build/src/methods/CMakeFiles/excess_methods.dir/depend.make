# Empty dependencies file for excess_methods.
# This may be replaced when dependencies are built.
