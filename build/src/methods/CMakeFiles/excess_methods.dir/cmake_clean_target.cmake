file(REMOVE_RECURSE
  "libexcess_methods.a"
)
