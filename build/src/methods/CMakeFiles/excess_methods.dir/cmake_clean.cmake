file(REMOVE_RECURSE
  "CMakeFiles/excess_methods.dir/dispatch.cc.o"
  "CMakeFiles/excess_methods.dir/dispatch.cc.o.d"
  "CMakeFiles/excess_methods.dir/registry.cc.o"
  "CMakeFiles/excess_methods.dir/registry.cc.o.d"
  "libexcess_methods.a"
  "libexcess_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/excess_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
