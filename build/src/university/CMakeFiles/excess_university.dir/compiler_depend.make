# Empty compiler generated dependencies file for excess_university.
# This may be replaced when dependencies are built.
