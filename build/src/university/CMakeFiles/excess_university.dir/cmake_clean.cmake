file(REMOVE_RECURSE
  "CMakeFiles/excess_university.dir/university.cc.o"
  "CMakeFiles/excess_university.dir/university.cc.o.d"
  "libexcess_university.a"
  "libexcess_university.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/excess_university.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
