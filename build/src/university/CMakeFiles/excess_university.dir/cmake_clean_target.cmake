file(REMOVE_RECURSE
  "libexcess_university.a"
)
