file(REMOVE_RECURSE
  "CMakeFiles/excess_catalog.dir/catalog.cc.o"
  "CMakeFiles/excess_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/excess_catalog.dir/schema.cc.o"
  "CMakeFiles/excess_catalog.dir/schema.cc.o.d"
  "libexcess_catalog.a"
  "libexcess_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/excess_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
