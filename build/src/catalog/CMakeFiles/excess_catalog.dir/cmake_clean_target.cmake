file(REMOVE_RECURSE
  "libexcess_catalog.a"
)
