# Empty dependencies file for excess_catalog.
# This may be replaced when dependencies are built.
