
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objects/conformance.cc" "src/objects/CMakeFiles/excess_objects.dir/conformance.cc.o" "gcc" "src/objects/CMakeFiles/excess_objects.dir/conformance.cc.o.d"
  "/root/repo/src/objects/database.cc" "src/objects/CMakeFiles/excess_objects.dir/database.cc.o" "gcc" "src/objects/CMakeFiles/excess_objects.dir/database.cc.o.d"
  "/root/repo/src/objects/store.cc" "src/objects/CMakeFiles/excess_objects.dir/store.cc.o" "gcc" "src/objects/CMakeFiles/excess_objects.dir/store.cc.o.d"
  "/root/repo/src/objects/value.cc" "src/objects/CMakeFiles/excess_objects.dir/value.cc.o" "gcc" "src/objects/CMakeFiles/excess_objects.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/excess_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/excess_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
