file(REMOVE_RECURSE
  "libexcess_objects.a"
)
