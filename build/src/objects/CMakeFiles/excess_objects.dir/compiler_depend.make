# Empty compiler generated dependencies file for excess_objects.
# This may be replaced when dependencies are built.
