file(REMOVE_RECURSE
  "CMakeFiles/excess_objects.dir/conformance.cc.o"
  "CMakeFiles/excess_objects.dir/conformance.cc.o.d"
  "CMakeFiles/excess_objects.dir/database.cc.o"
  "CMakeFiles/excess_objects.dir/database.cc.o.d"
  "CMakeFiles/excess_objects.dir/store.cc.o"
  "CMakeFiles/excess_objects.dir/store.cc.o.d"
  "CMakeFiles/excess_objects.dir/value.cc.o"
  "CMakeFiles/excess_objects.dir/value.cc.o.d"
  "libexcess_objects.a"
  "libexcess_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/excess_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
