# Empty dependencies file for excess_lang.
# This may be replaced when dependencies are built.
