file(REMOVE_RECURSE
  "CMakeFiles/excess_lang.dir/emit.cc.o"
  "CMakeFiles/excess_lang.dir/emit.cc.o.d"
  "CMakeFiles/excess_lang.dir/lexer.cc.o"
  "CMakeFiles/excess_lang.dir/lexer.cc.o.d"
  "CMakeFiles/excess_lang.dir/parser.cc.o"
  "CMakeFiles/excess_lang.dir/parser.cc.o.d"
  "CMakeFiles/excess_lang.dir/session.cc.o"
  "CMakeFiles/excess_lang.dir/session.cc.o.d"
  "CMakeFiles/excess_lang.dir/translate.cc.o"
  "CMakeFiles/excess_lang.dir/translate.cc.o.d"
  "libexcess_lang.a"
  "libexcess_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/excess_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
