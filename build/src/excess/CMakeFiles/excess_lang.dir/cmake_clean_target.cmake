file(REMOVE_RECURSE
  "libexcess_lang.a"
)
