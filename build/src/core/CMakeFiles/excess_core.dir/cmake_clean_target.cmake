file(REMOVE_RECURSE
  "libexcess_core.a"
)
