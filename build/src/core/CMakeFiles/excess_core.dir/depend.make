# Empty dependencies file for excess_core.
# This may be replaced when dependencies are built.
