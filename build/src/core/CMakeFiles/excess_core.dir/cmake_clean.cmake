file(REMOVE_RECURSE
  "CMakeFiles/excess_core.dir/analysis.cc.o"
  "CMakeFiles/excess_core.dir/analysis.cc.o.d"
  "CMakeFiles/excess_core.dir/cost.cc.o"
  "CMakeFiles/excess_core.dir/cost.cc.o.d"
  "CMakeFiles/excess_core.dir/eval.cc.o"
  "CMakeFiles/excess_core.dir/eval.cc.o.d"
  "CMakeFiles/excess_core.dir/expr.cc.o"
  "CMakeFiles/excess_core.dir/expr.cc.o.d"
  "CMakeFiles/excess_core.dir/infer.cc.o"
  "CMakeFiles/excess_core.dir/infer.cc.o.d"
  "CMakeFiles/excess_core.dir/kernels.cc.o"
  "CMakeFiles/excess_core.dir/kernels.cc.o.d"
  "CMakeFiles/excess_core.dir/planner.cc.o"
  "CMakeFiles/excess_core.dir/planner.cc.o.d"
  "CMakeFiles/excess_core.dir/rewriter.cc.o"
  "CMakeFiles/excess_core.dir/rewriter.cc.o.d"
  "CMakeFiles/excess_core.dir/rules.cc.o"
  "CMakeFiles/excess_core.dir/rules.cc.o.d"
  "CMakeFiles/excess_core.dir/rules_array.cc.o"
  "CMakeFiles/excess_core.dir/rules_array.cc.o.d"
  "CMakeFiles/excess_core.dir/rules_multiset.cc.o"
  "CMakeFiles/excess_core.dir/rules_multiset.cc.o.d"
  "CMakeFiles/excess_core.dir/rules_tuple_ref.cc.o"
  "CMakeFiles/excess_core.dir/rules_tuple_ref.cc.o.d"
  "libexcess_core.a"
  "libexcess_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/excess_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
