
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cc" "src/core/CMakeFiles/excess_core.dir/analysis.cc.o" "gcc" "src/core/CMakeFiles/excess_core.dir/analysis.cc.o.d"
  "/root/repo/src/core/cost.cc" "src/core/CMakeFiles/excess_core.dir/cost.cc.o" "gcc" "src/core/CMakeFiles/excess_core.dir/cost.cc.o.d"
  "/root/repo/src/core/eval.cc" "src/core/CMakeFiles/excess_core.dir/eval.cc.o" "gcc" "src/core/CMakeFiles/excess_core.dir/eval.cc.o.d"
  "/root/repo/src/core/expr.cc" "src/core/CMakeFiles/excess_core.dir/expr.cc.o" "gcc" "src/core/CMakeFiles/excess_core.dir/expr.cc.o.d"
  "/root/repo/src/core/infer.cc" "src/core/CMakeFiles/excess_core.dir/infer.cc.o" "gcc" "src/core/CMakeFiles/excess_core.dir/infer.cc.o.d"
  "/root/repo/src/core/kernels.cc" "src/core/CMakeFiles/excess_core.dir/kernels.cc.o" "gcc" "src/core/CMakeFiles/excess_core.dir/kernels.cc.o.d"
  "/root/repo/src/core/planner.cc" "src/core/CMakeFiles/excess_core.dir/planner.cc.o" "gcc" "src/core/CMakeFiles/excess_core.dir/planner.cc.o.d"
  "/root/repo/src/core/rewriter.cc" "src/core/CMakeFiles/excess_core.dir/rewriter.cc.o" "gcc" "src/core/CMakeFiles/excess_core.dir/rewriter.cc.o.d"
  "/root/repo/src/core/rules.cc" "src/core/CMakeFiles/excess_core.dir/rules.cc.o" "gcc" "src/core/CMakeFiles/excess_core.dir/rules.cc.o.d"
  "/root/repo/src/core/rules_array.cc" "src/core/CMakeFiles/excess_core.dir/rules_array.cc.o" "gcc" "src/core/CMakeFiles/excess_core.dir/rules_array.cc.o.d"
  "/root/repo/src/core/rules_multiset.cc" "src/core/CMakeFiles/excess_core.dir/rules_multiset.cc.o" "gcc" "src/core/CMakeFiles/excess_core.dir/rules_multiset.cc.o.d"
  "/root/repo/src/core/rules_tuple_ref.cc" "src/core/CMakeFiles/excess_core.dir/rules_tuple_ref.cc.o" "gcc" "src/core/CMakeFiles/excess_core.dir/rules_tuple_ref.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/objects/CMakeFiles/excess_objects.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/excess_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/excess_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
