file(REMOVE_RECURSE
  "libexcess_util.a"
)
