# Empty compiler generated dependencies file for excess_util.
# This may be replaced when dependencies are built.
