file(REMOVE_RECURSE
  "CMakeFiles/excess_util.dir/status.cc.o"
  "CMakeFiles/excess_util.dir/status.cc.o.d"
  "libexcess_util.a"
  "libexcess_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/excess_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
