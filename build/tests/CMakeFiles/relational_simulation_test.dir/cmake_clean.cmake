file(REMOVE_RECURSE
  "CMakeFiles/relational_simulation_test.dir/relational_simulation_test.cc.o"
  "CMakeFiles/relational_simulation_test.dir/relational_simulation_test.cc.o.d"
  "relational_simulation_test"
  "relational_simulation_test.pdb"
  "relational_simulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_simulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
