# Empty dependencies file for relational_simulation_test.
# This may be replaced when dependencies are built.
