file(REMOVE_RECURSE
  "CMakeFiles/predicate_laws_test.dir/predicate_laws_test.cc.o"
  "CMakeFiles/predicate_laws_test.dir/predicate_laws_test.cc.o.d"
  "predicate_laws_test"
  "predicate_laws_test.pdb"
  "predicate_laws_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicate_laws_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
