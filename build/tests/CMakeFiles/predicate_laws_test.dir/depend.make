# Empty dependencies file for predicate_laws_test.
# This may be replaced when dependencies are built.
