file(REMOVE_RECURSE
  "CMakeFiles/equipollence_test.dir/equipollence_test.cc.o"
  "CMakeFiles/equipollence_test.dir/equipollence_test.cc.o.d"
  "equipollence_test"
  "equipollence_test.pdb"
  "equipollence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equipollence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
