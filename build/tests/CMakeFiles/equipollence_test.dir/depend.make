# Empty dependencies file for equipollence_test.
# This may be replaced when dependencies are built.
