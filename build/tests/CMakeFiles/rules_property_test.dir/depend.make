# Empty dependencies file for rules_property_test.
# This may be replaced when dependencies are built.
