file(REMOVE_RECURSE
  "CMakeFiles/rules_property_test.dir/rules_property_test.cc.o"
  "CMakeFiles/rules_property_test.dir/rules_property_test.cc.o.d"
  "rules_property_test"
  "rules_property_test.pdb"
  "rules_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
