
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rules_property_test.cc" "tests/CMakeFiles/rules_property_test.dir/rules_property_test.cc.o" "gcc" "tests/CMakeFiles/rules_property_test.dir/rules_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/excess/CMakeFiles/excess_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/university/CMakeFiles/excess_university.dir/DependInfo.cmake"
  "/root/repo/build/src/methods/CMakeFiles/excess_methods.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/excess_core.dir/DependInfo.cmake"
  "/root/repo/build/src/objects/CMakeFiles/excess_objects.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/excess_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/excess_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
