# Empty dependencies file for oid_domains_test.
# This may be replaced when dependencies are built.
