file(REMOVE_RECURSE
  "CMakeFiles/oid_domains_test.dir/oid_domains_test.cc.o"
  "CMakeFiles/oid_domains_test.dir/oid_domains_test.cc.o.d"
  "oid_domains_test"
  "oid_domains_test.pdb"
  "oid_domains_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oid_domains_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
