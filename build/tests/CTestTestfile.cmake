# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/value_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/oid_domains_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/infer_test[1]_include.cmake")
include("/root/repo/build/tests/paper_examples_test[1]_include.cmake")
include("/root/repo/build/tests/rules_test[1]_include.cmake")
include("/root/repo/build/tests/rules_property_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/methods_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/equipollence_test[1]_include.cmake")
include("/root/repo/build/tests/conformance_test[1]_include.cmake")
include("/root/repo/build/tests/relational_simulation_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/emit_test[1]_include.cmake")
include("/root/repo/build/tests/update_test[1]_include.cmake")
include("/root/repo/build/tests/predicate_laws_test[1]_include.cmake")
include("/root/repo/build/tests/cost_test[1]_include.cmake")
