# Empty compiler generated dependencies file for bench_fig5_methods.
# This may be replaced when dependencies are built.
