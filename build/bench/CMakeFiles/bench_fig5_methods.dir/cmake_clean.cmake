file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_methods.dir/bench_fig5_methods.cc.o"
  "CMakeFiles/bench_fig5_methods.dir/bench_fig5_methods.cc.o.d"
  "bench_fig5_methods"
  "bench_fig5_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
