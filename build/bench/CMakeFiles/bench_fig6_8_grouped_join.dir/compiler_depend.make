# Empty compiler generated dependencies file for bench_fig6_8_grouped_join.
# This may be replaced when dependencies are built.
