# Empty dependencies file for bench_fig9_11_group_select.
# This may be replaced when dependencies are built.
