file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_11_group_select.dir/bench_fig9_11_group_select.cc.o"
  "CMakeFiles/bench_fig9_11_group_select.dir/bench_fig9_11_group_select.cc.o.d"
  "bench_fig9_11_group_select"
  "bench_fig9_11_group_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_11_group_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
