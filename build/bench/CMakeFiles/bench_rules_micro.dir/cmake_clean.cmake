file(REMOVE_RECURSE
  "CMakeFiles/bench_rules_micro.dir/bench_rules_micro.cc.o"
  "CMakeFiles/bench_rules_micro.dir/bench_rules_micro.cc.o.d"
  "bench_rules_micro"
  "bench_rules_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rules_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
