# Empty dependencies file for bench_rules_micro.
# This may be replaced when dependencies are built.
