file(REMOVE_RECURSE
  "CMakeFiles/method_dispatch.dir/method_dispatch.cpp.o"
  "CMakeFiles/method_dispatch.dir/method_dispatch.cpp.o.d"
  "method_dispatch"
  "method_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/method_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
