# Empty dependencies file for method_dispatch.
# This may be replaced when dependencies are built.
