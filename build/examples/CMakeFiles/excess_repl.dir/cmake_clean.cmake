file(REMOVE_RECURSE
  "CMakeFiles/excess_repl.dir/excess_repl.cpp.o"
  "CMakeFiles/excess_repl.dir/excess_repl.cpp.o.d"
  "excess_repl"
  "excess_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/excess_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
