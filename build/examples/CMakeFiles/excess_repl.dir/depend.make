# Empty dependencies file for excess_repl.
# This may be replaced when dependencies are built.
