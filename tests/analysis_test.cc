// The static analyses behind the transformation rules' side conditions:
// free-INPUT detection and substitution, field-locality ("E applies only
// to A"), COMP detection, subtree replacement, and shared-DEREF discovery.

#include "core/analysis.h"

#include <gtest/gtest.h>

#include "core/builder.h"

namespace excess {
namespace {

using namespace alg;  // NOLINT(build/namespaces)

TEST(AnalysisTest, ContainsFreeInput) {
  EXPECT_TRUE(analysis::ContainsFreeInput(Input()));
  EXPECT_TRUE(analysis::ContainsFreeInput(TupExtract("a", Input())));
  EXPECT_FALSE(analysis::ContainsFreeInput(Var("R")));
  // INPUT inside a nested SET_APPLY subscript is bound, not free.
  ExprPtr nested = SetApply(TupExtract("a", Input()), Var("R"));
  EXPECT_FALSE(analysis::ContainsFreeInput(nested));
  // ...but the data child may still contain a free INPUT.
  ExprPtr corr = SetApply(Input(), TupExtract("kids", Input()));
  EXPECT_TRUE(analysis::ContainsFreeInput(corr));
}

TEST(AnalysisTest, SubstituteInputRespectsBinders) {
  ExprPtr repl = Var("X");
  // Free INPUT replaced.
  ExprPtr e = Arith("+", Input(), IntLit(1));
  ExprPtr s = analysis::SubstituteInput(e, repl);
  EXPECT_EQ(s->child(0)->kind(), OpKind::kVar);
  // Bound INPUT (inside a subscript) untouched; the binder's data child is
  // free context and is rewritten.
  ExprPtr apply = SetApply(Arith("*", Input(), IntLit(2)), Input());
  ExprPtr s2 = analysis::SubstituteInput(apply, repl);
  EXPECT_EQ(s2->child(0)->kind(), OpKind::kVar);          // data: replaced
  EXPECT_EQ(s2->sub()->child(0)->kind(), OpKind::kInput);  // subscript: kept
  // No-op substitution returns the identical node (sharing preserved).
  ExprPtr r = Var("R");
  EXPECT_EQ(analysis::SubstituteInput(r, repl).get(), r.get());
}

TEST(AnalysisTest, DependsOnlyOnField) {
  ExprPtr one_side = Arith(
      "+", TupExtract("x", TupExtract("_1", Input())),
      TupExtract("y", TupExtract("_1", Input())));
  EXPECT_TRUE(analysis::DependsOnlyOnField(one_side, "_1"));
  EXPECT_FALSE(analysis::DependsOnlyOnField(one_side, "_2"));
  ExprPtr both = Arith("+", TupExtract("x", TupExtract("_1", Input())),
                       TupExtract("_2", Input()));
  EXPECT_FALSE(analysis::DependsOnlyOnField(both, "_1"));
  // A bare INPUT sees the whole pair.
  EXPECT_FALSE(analysis::DependsOnlyOnField(Input(), "_1"));
  // No INPUT at all: vacuously one-sided.
  EXPECT_TRUE(analysis::DependsOnlyOnField(Var("R"), "_1"));
}

TEST(AnalysisTest, StripFieldExtract) {
  ExprPtr e = TupExtract("x", TupExtract("_1", Input()));
  ExprPtr stripped = analysis::StripFieldExtract(e, "_1");
  EXPECT_TRUE(stripped->Equals(*TupExtract("x", Input())));
  // Other fields untouched.
  EXPECT_TRUE(analysis::StripFieldExtract(e, "_2")->Equals(*e));
}

TEST(AnalysisTest, ContainsCompDescendsEverywhere) {
  EXPECT_FALSE(analysis::ContainsComp(Arith("+", Input(), IntLit(1))));
  EXPECT_TRUE(
      analysis::ContainsComp(Comp(Predicate::True(), Input())));
  // Inside a nested subscript.
  EXPECT_TRUE(analysis::ContainsComp(
      SetApply(Comp(Predicate::True(), Input()), Var("R"))));
  // Inside a predicate operand.
  EXPECT_TRUE(analysis::ContainsComp(Comp(
      Eq(Comp(Predicate::True(), Input()), IntLit(1)), Var("R"))));
}

TEST(AnalysisTest, SubtreeReplacement) {
  ExprPtr d = Deref(TupExtract("dept", Input()));
  ExprPtr e = Arith("+", TupExtract("floor", d), IntLit(1));
  ExprPtr repl = TupExtract("$m", Input());
  ExprPtr out = analysis::ReplaceSubtree(e, d, repl);
  EXPECT_TRUE(analysis::ContainsSubtree(e, d));
  EXPECT_FALSE(analysis::ContainsSubtree(out, d));
  EXPECT_TRUE(analysis::ContainsSubtree(out, repl));
}

TEST(AnalysisTest, PredicateHelpers) {
  ExprPtr d = Deref(TupExtract("dept", Input()));
  PredicatePtr p = Predicate::And(Eq(TupExtract("floor", d), IntLit(5)),
                                  Gt(Input(), IntLit(0)));
  EXPECT_TRUE(analysis::PredContainsSubtree(p, d));
  PredicatePtr q =
      analysis::PredReplaceSubtree(p, d, TupExtract("$m", Input()));
  EXPECT_FALSE(analysis::PredContainsSubtree(q, d));
  // Field locality through predicates.
  PredicatePtr one = Eq(TupExtract("a", TupExtract("_1", Input())),
                        IntLit(3));
  EXPECT_TRUE(analysis::PredDependsOnlyOnField(one, "_1"));
  EXPECT_FALSE(analysis::PredDependsOnlyOnField(p, "_1"));
  PredicatePtr stripped = analysis::PredStripFieldExtract(one, "_1");
  EXPECT_TRUE(
      stripped->Equals(*Eq(TupExtract("a", Input()), IntLit(3))));
}

TEST(AnalysisTest, FindSharedDerefPicksLargest) {
  ExprPtr inner = Deref(TupExtract("dept", Input()));
  ExprPtr outer = Deref(TupExtract("head", inner));
  PredicatePtr pred = Eq(TupExtract("floor", outer), IntLit(1));
  // Downstream shares only the inner deref.
  ExprPtr downstream1 = TupExtract("division", inner);
  auto found1 = analysis::FindSharedDeref(pred, downstream1);
  ASSERT_TRUE(found1.has_value());
  EXPECT_TRUE((*found1)->Equals(*inner));
  // Downstream shares both: the larger one wins.
  ExprPtr downstream2 = TupExtract("division", outer);
  auto found2 = analysis::FindSharedDeref(pred, downstream2);
  ASSERT_TRUE(found2.has_value());
  EXPECT_TRUE((*found2)->Equals(*outer));
  // No sharing.
  EXPECT_FALSE(
      analysis::FindSharedDeref(pred, TupExtract("name", Input()))
          .has_value());
}

}  // namespace
}  // namespace excess
