// Executable equipollence (§3.4): for each operator of the algebra, a
// representative query tree is (a) evaluated directly and (b) emitted as an
// EXCESS program, re-parsed, re-translated, and re-evaluated — both values
// must agree. Together with the translator tests (EXCESS → algebra), this
// is the machine-checked version of the theorem's two directions.

#include <gtest/gtest.h>

#include "core/builder.h"
#include "excess/emit.h"
#include "excess/session.h"
#include "university/university.h"

namespace excess {
namespace {

using namespace alg;  // NOLINT(build/namespaces)

ValuePtr I(int64_t v) { return Value::Int(v); }

class EquipollenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    UniversityParams p;
    p.num_employees = 12;
    p.num_students = 8;
    ASSERT_TRUE(BuildUniversity(&db_, p).ok());
    ASSERT_TRUE(db_.CreateNamed("Nums", Schema::Set(IntSchema()),
                                Value::SetOf({I(1), I(2), I(2), I(3)}))
                    .ok());
    ASSERT_TRUE(db_.CreateNamed("Nums2", Schema::Set(IntSchema()),
                                Value::SetOf({I(2), I(3), I(4)}))
                    .ok());
    ASSERT_TRUE(db_.CreateNamed(
                      "Nested", Schema::Set(Schema::Set(IntSchema())),
                      Value::SetOf({Value::SetOf({I(1), I(2)}),
                                    Value::SetOf({I(2)})}))
                    .ok());
    ASSERT_TRUE(db_.CreateNamed(
                      "TupA",
                      Schema::Tup({{"a", IntSchema()}, {"b", StringSchema()}}),
                      Value::Tuple({"a", "b"}, {I(7), Value::Str("x")}))
                    .ok());
    ASSERT_TRUE(db_.CreateNamed("TupB", Schema::Tup({{"c", IntSchema()}}),
                                Value::Tuple({"c"}, {I(9)}))
                    .ok());
    ASSERT_TRUE(db_.CreateNamed(
                      "ArrA", Schema::FixedArr(IntSchema(), 4),
                      Value::ArrayOf({I(5), I(6), I(7), I(8)}))
                    .ok());
    ASSERT_TRUE(db_.CreateNamed("ArrB", Schema::FixedArr(IntSchema(), 2),
                                Value::ArrayOf({I(6), I(9)}))
                    .ok());
    ASSERT_TRUE(db_.CreateNamed(
                      "NestedArr", Schema::Arr(Schema::Arr(IntSchema())),
                      Value::ArrayOf({Value::ArrayOf({I(1)}),
                                      Value::ArrayOf({I(2), I(3)})}))
                    .ok());
    registry_ = std::make_unique<MethodRegistry>(&db_.catalog());
  }

  /// The round trip: eval(tree) == eval(translate(parse(emit(tree)))).
  void ExpectRoundTrip(const ExprPtr& tree) {
    Session session(&db_, registry_.get());
    auto direct = session.EvalTree(tree);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString() << "\n"
                             << tree->ToTreeString();

    Emitter emitter(&db_, registry_.get());
    auto emitted = emitter.Emit(tree);
    ASSERT_TRUE(emitted.ok()) << emitted.status().ToString() << "\n"
                              << tree->ToTreeString();

    Session replay(&db_, registry_.get());
    auto run = replay.Execute(emitted->source());
    ASSERT_TRUE(run.ok()) << run.status().ToString()
                          << "\nemitted program:\n"
                          << emitted->source();
    auto stored = db_.NamedValue(emitted->result_name());
    ASSERT_TRUE(stored.ok()) << emitted->source();
    EXPECT_TRUE((*direct)->Equals(**stored))
        << "tree:\n" << tree->ToTreeString()
        << "emitted:\n" << emitted->source()
        << "direct: " << (*direct)->ToString()
        << "\nreplay: " << (*stored)->ToString();
  }

  Database db_;
  std::unique_ptr<MethodRegistry> registry_;
};

// Base case of the proof: a named top-level object.
TEST_F(EquipollenceTest, BaseCaseNamedObject) { ExpectRoundTrip(Var("Nums")); }

TEST_F(EquipollenceTest, ConstLiterals) {
  ExpectRoundTrip(Const(Value::SetOf({I(4), I(4), I(5)})));
  ExpectRoundTrip(Const(Value::ArrayOf({I(1), I(2)})));
  ExpectRoundTrip(Const(Value::Tuple({"k"}, {Value::Str("v")})));
  ExpectRoundTrip(IntLit(42));
  ExpectRoundTrip(Const(Value::Bool(true)));
  ExpectRoundTrip(FloatLit(2.5));
}

TEST_F(EquipollenceTest, DiffCase) {
  // E = E1 - E2 ↦ retrieve (x) from x in (E1 - E2) into E.
  ExpectRoundTrip(Diff(Var("Nums"), Var("Nums2")));
}

TEST_F(EquipollenceTest, AddUnionCase) {
  ExpectRoundTrip(AddUnion(Var("Nums"), Var("Nums2")));
}

TEST_F(EquipollenceTest, CrossCase) {
  // E = E1 × E2 ↦ retrieve (_1: x, _2: y) from x in E1, y in E2.
  ExpectRoundTrip(Cross(Var("Nums"), Var("Nums2")));
}

TEST_F(EquipollenceTest, SetMakeCase) {
  // E = SET(E1) ↦ retrieve ( { E1 } ).
  ExpectRoundTrip(SetMake(Var("Nums")));
  ExpectRoundTrip(SetMake(Var("TupA")));
}

TEST_F(EquipollenceTest, SetApplyPlain) {
  ExpectRoundTrip(SetApply(Arith("*", Input(), IntLit(3)), Var("Nums")));
}

TEST_F(EquipollenceTest, SetApplyWithSelection) {
  // Subscript of the F(COMP_P(INPUT)) shape: where-clause emission.
  ExpectRoundTrip(SetApply(
      Arith("+", Comp(Gt(Input(), IntLit(1)), Input()), IntLit(10)),
      Var("Nums")));
  // Pure selection.
  ExpectRoundTrip(Select(Ge(Input(), IntLit(2)), Var("Nums")));
}

TEST_F(EquipollenceTest, SetApplyPathSubscript) {
  // Dotted-path subscripts through refs (the Figure 4 building block).
  ExpectRoundTrip(SetApply(
      TupExtract("name", Deref(TupExtract("dept", Deref(Input())))),
      Var("Employees")));
}

TEST_F(EquipollenceTest, GroupCase) {
  ExpectRoundTrip(Group(Arith("%", Input(), IntLit(2)), Var("Nums")));
}

TEST_F(EquipollenceTest, DupElimCase) {
  ExpectRoundTrip(DupElim(Var("Nums")));
}

TEST_F(EquipollenceTest, SetCollapseCase) {
  ExpectRoundTrip(SetCollapse(Var("Nested")));
}

TEST_F(EquipollenceTest, TupleOperators) {
  ExpectRoundTrip(TupExtract("a", Var("TupA")));
  ExpectRoundTrip(Project({"b", "a"}, Var("TupA")));
  ExpectRoundTrip(TupMake(IntLit(5)));
  ExpectRoundTrip(TupCat(Var("TupA"), Var("TupB")));
}

TEST_F(EquipollenceTest, ArrayOperators) {
  ExpectRoundTrip(ArrExtract(2, Var("ArrA")));
  ExpectRoundTrip(ArrExtractLast(Var("ArrA")));
  ExpectRoundTrip(SubArr(2, 3, Var("ArrA")));
  ExpectRoundTrip(ArrMake(IntLit(3)));
  ExpectRoundTrip(ArrCat(Var("ArrA"), Var("ArrB")));
  ExpectRoundTrip(ArrCollapse(Var("NestedArr")));
  ExpectRoundTrip(ArrDupElim(Var("ArrA")));
  ExpectRoundTrip(ArrDiff(Var("ArrA"), Var("ArrB")));
  ExpectRoundTrip(ArrCross(Var("ArrA"), Var("ArrB")));
}

TEST_F(EquipollenceTest, ArrApplyCase) {
  // The proof's translation defines a function on the element type and
  // maps it over the array.
  ExpectRoundTrip(ArrApply(TupExtract("salary", Deref(Input())),
                           Var("TopTen")));
}

TEST_F(EquipollenceTest, RefDerefCase) {
  ExpectRoundTrip(Deref(RefOp(Const(Value::Tuple({"v"}, {I(42)})))));
}

TEST_F(EquipollenceTest, CompCase) {
  ExpectRoundTrip(Comp(Eq(TupExtract("a", Input()), IntLit(7)), Var("TupA")));
  ExpectRoundTrip(Comp(Predicate::And(Gt(TupExtract("a", Input()), IntLit(0)),
                                      Ne(TupExtract("b", Input()),
                                         StrLit("zzz"))),
                       Var("TupA")));
}

TEST_F(EquipollenceTest, AggCase) {
  ExpectRoundTrip(Agg("min", Var("Nums")));
  ExpectRoundTrip(Agg("count", Var("Nums")));
  ExpectRoundTrip(Agg("avg", Var("Nums")));
}

TEST_F(EquipollenceTest, MethodCallCase) {
  ASSERT_TRUE(registry_
                  ->Define({"Employee", "double_salary", {}, IntSchema(),
                            Arith("*", TupExtract("salary", Input()),
                                  IntLit(2))})
                  .ok());
  ExpectRoundTrip(
      MethodCall("double_salary", Deref(ArrExtract(1, Var("TopTen")))));
}

TEST_F(EquipollenceTest, ComposedQueryTree) {
  // A multi-operator pipeline exercising the induction at depth: Figure 4
  // composed form with a final DE.
  ExpectRoundTrip(DupElim(SetApply(
      TupExtract("name", Deref(TupExtract("dept", Deref(Input())))),
      SetApply(Comp(Eq(TupExtract("city", Deref(Input())), StrLit("city_0")),
                    Input()),
               Var("Employees")))));
}

TEST_F(EquipollenceTest, UnsupportedFormsAreExplicit) {
  // OID literals and typed SET_APPLY have no surface form; the emitter
  // must say so rather than emit something wrong.
  Emitter emitter(&db_, registry_.get());
  auto oid_literal = emitter.Emit(Const(Value::RefTo({1, 2})));
  EXPECT_FALSE(oid_literal.ok());
  EXPECT_EQ(oid_literal.status().code(), StatusCode::kUnsupported);
  auto typed = emitter.Emit(SetApply(Input(), Var("Nums"), "Person"));
  EXPECT_FALSE(typed.ok());
}

}  // namespace
}  // namespace excess
