// Unit tests for the algebra → EXCESS emitter beyond the round-trip suite:
// literal rendering, expression/predicate rendering, and the explicit
// Unsupported boundary.

#include "excess/emit.h"

#include <gtest/gtest.h>

#include <set>

#include "core/builder.h"
#include "excess/session.h"
#include "methods/registry.h"

namespace excess {
namespace {

using namespace alg;  // NOLINT(build/namespaces)

ValuePtr I(int64_t v) { return Value::Int(v); }

class EmitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_unique<MethodRegistry>(&db_.catalog());
  }
  Result<EmittedProgram> Emit(const ExprPtr& e) {
    Emitter em(&db_, registry_.get());
    return em.Emit(e);
  }
  Database db_;
  std::unique_ptr<MethodRegistry> registry_;
};

TEST_F(EmitTest, VarEmitsNoStatements) {
  auto p = Emit(Var("Employees"));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->result_name(), "Employees");
  EXPECT_TRUE(p->source().empty());
}

TEST_F(EmitTest, LiteralRendering) {
  auto check = [&](const ValuePtr& v, const std::string& expected) {
    auto p = Emit(Const(v));
    ASSERT_TRUE(p.ok()) << expected;
    EXPECT_NE(p->source().find(expected), std::string::npos)
        << "emitted: " << p->source();
  };
  check(I(42), "42");
  check(Value::Float(2.5), "2.5");
  check(Value::Float(3), "3.0");  // floats must re-parse as floats
  check(Value::Bool(false), "false");
  check(Value::Str("say \"hi\""), "\"say \\\"hi\\\"\"");
  check(Value::SetOfCounted({{I(7), 2}}), "{7, 7}");  // counts expand
  check(Value::ArrayOf({I(1), I(2)}), "[1, 2]");
  check(Value::Tuple({"a"}, {I(1)}), "(a: 1)");
}

TEST_F(EmitTest, NonDenotableLiteralsAreUnsupported) {
  EXPECT_EQ(Emit(Const(Value::RefTo({1, 1}))).status().code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(Emit(Const(Value::Dne())).status().code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(Emit(Const(Value::Date(5))).status().code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(Emit(Const(Value::Tuple({}, {}))).status().code(),
            StatusCode::kUnsupported);
}

TEST_F(EmitTest, SelectionEmitsWhereClause) {
  ASSERT_TRUE(db_.CreateNamed("Nums", Schema::Set(IntSchema()),
                              Value::SetOf({I(1), I(5)}))
                  .ok());
  auto p = Emit(Select(Predicate::And(Gt(Input(), IntLit(1)),
                                      Predicate::Not(Eq(Input(), IntLit(9)))),
                       Var("Nums")));
  ASSERT_TRUE(p.ok());
  EXPECT_NE(p->source().find("where (x > 1 and not (x = 9))"),
            std::string::npos)
      << p->source();
}

TEST_F(EmitTest, PathSubscriptsRenderAsDots) {
  ASSERT_TRUE(db_.catalog().DefineType("D", Schema::Tup({{"n", IntSchema()}}))
                  .ok());
  ASSERT_TRUE(db_.CreateNamed("S",
                              Schema::Set(Schema::Tup(
                                  {{"d", Schema::Ref("D")}})))
                  .ok());
  // DEREF inside a field chain is implicit in the surface syntax.
  auto p = Emit(SetApply(TupExtract("n", Deref(TupExtract("d", Input()))),
                         Var("S")));
  ASSERT_TRUE(p.ok());
  EXPECT_NE(p->source().find("retrieve (x.d.n) from x in S"),
            std::string::npos)
      << p->source();
}

TEST_F(EmitTest, NestedSetProjectionRendersAsPath) {
  // SET_APPLY with a pure extraction subscript in expression position:
  // x.kids.name.
  ASSERT_TRUE(db_.CreateNamed(
                    "E", Schema::Set(Schema::Tup(
                             {{"kids",
                               Schema::Set(Schema::Tup(
                                   {{"name", StringSchema()}}))}})))
                  .ok());
  auto p = Emit(SetApply(
      SetApply(TupExtract("name", Input()), TupExtract("kids", Input())),
      Var("E")));
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_NE(p->source().find("x.kids.name"), std::string::npos)
      << p->source();
}

TEST_F(EmitTest, TypedSetApplyIsUnsupported) {
  ASSERT_TRUE(db_.CreateNamed("Nums", Schema::Set(IntSchema())).ok());
  auto p = Emit(SetApply(Input(), Var("Nums"), "Person"));
  EXPECT_EQ(p.status().code(), StatusCode::kUnsupported);
}

TEST_F(EmitTest, TupCatWithClashingNamesIsUnsupported) {
  ASSERT_TRUE(db_.CreateNamed("T1", Schema::Tup({{"a", IntSchema()}}),
                              Value::Tuple({"a"}, {I(1)}))
                  .ok());
  auto p = Emit(TupCat(Var("T1"), Var("T1")));
  EXPECT_EQ(p.status().code(), StatusCode::kUnsupported);
}

TEST_F(EmitTest, EmittedProgramsReplayAgainstTheSameDatabase) {
  ASSERT_TRUE(db_.CreateNamed("Nums", Schema::Set(IntSchema()),
                              Value::SetOf({I(1), I(2), I(2)}))
                  .ok());
  ExprPtr tree = DupElim(
      SetApply(Arith("*", Input(), IntLit(10)), Var("Nums")));
  auto p = Emit(tree);
  ASSERT_TRUE(p.ok());
  Session session(&db_, registry_.get());
  ASSERT_TRUE(session.Execute(p->source()).ok()) << p->source();
  Evaluator ev(&db_);
  EXPECT_TRUE((*db_.NamedValue(p->result_name()))
                  ->Equals(**ev.Eval(tree)));
}

TEST_F(EmitTest, TempNamesDoNotCollideAcrossOperators) {
  ASSERT_TRUE(db_.CreateNamed("Nums", Schema::Set(IntSchema()),
                              Value::SetOf({I(1)}))
                  .ok());
  // A tree needing several temporaries: each statement must target a
  // distinct name.
  ExprPtr tree = AddUnion(DupElim(Var("Nums")),
                          Diff(Var("Nums"), SetMake(IntLit(1))));
  auto p = Emit(tree);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  // Count distinct `into __tN` targets.
  std::set<std::string> names;
  std::string src = p->source();
  size_t pos = 0;
  while ((pos = src.find("into __t", pos)) != std::string::npos) {
    size_t end = src.find_first_of(" \n", pos + 5);
    names.insert(src.substr(pos + 5, end - pos - 5));
    pos = end;
  }
  EXPECT_GE(names.size(), 3u);
}

}  // namespace
}  // namespace excess
