// Persistent secondary indexes (docs/INDEXES.md): key extraction and the
// hash-join-mirroring partition semantics, maintenance through the named-
// object mutation paths and transaction rollback, the `create index` /
// `drop index` statement surface, index-aware lowering adoption, and the
// answer equality of IDX_PROBE / IDX_JOIN against their logical forms —
// including every scan-fallback route.

#include "objects/index.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/builder.h"
#include "core/cost.h"
#include "core/eval.h"
#include "core/physical.h"
#include "excess/session.h"
#include "methods/registry.h"
#include "obs/metrics.h"
#include "objects/database.h"

namespace excess {
namespace {

using namespace alg;  // NOLINT(build/namespaces) — test readability

ValuePtr I(int64_t v) { return Value::Int(v); }
ValuePtr S(std::vector<ValuePtr> v) { return Value::SetOf(v); }
ValuePtr Elem(ValuePtr k, ValuePtr v) {
  return Value::Tuple({"k", "v"}, {std::move(k), std::move(v)});
}

int64_t Fired(const std::string& rule) {
  return obs::MetricsRegistry::Global()
      .GetCounter("rules.fired." + rule)
      ->value();
}

// --- SecondaryIndex unit behavior -------------------------------------------

TEST(SecondaryIndexTest, IdentityIndexPartitionsLikeTheHashJoin) {
  // Multiset construction drops dne occurrences, so an identity index can
  // only ever see keyed and unk elements; the dne partition fills from
  // dne-valued *fields* (see ExtractKeyClassifiesPathResults).
  Database db;
  SecondaryIndex idx({"i", "Nums", {}, IndexKind::kHash}, &db.store());
  idx.Rebuild(Value::SetOfCounted({{I(1), 2},
                                   {I(2), 1},
                                   {Value::Unk(), 3}}));
  EXPECT_TRUE(idx.Usable());
  EXPECT_EQ(idx.distinct_keys(), 2);
  EXPECT_EQ(idx.keyed_total(), 3);
  EXPECT_EQ(idx.entry_total(), 6);
  ASSERT_NE(idx.EqBucket(I(1)), nullptr);
  EXPECT_EQ(idx.EqBucket(I(1))->TotalCount(), 2);
  EXPECT_EQ(idx.EqBucket(I(7)), nullptr);
  ASSERT_EQ(idx.unk_entries().size(), 1u);
  EXPECT_EQ(idx.unk_entries()[0].count, 3);
  EXPECT_TRUE(idx.dne_entries().empty());
}

TEST(SecondaryIndexTest, DnePartitionFillsFromDneValuedFields) {
  Database db;
  SecondaryIndex idx({"i", "Pairs", {"k"}, IndexKind::kHash}, &db.store());
  idx.Rebuild(Value::SetOfCounted({{Elem(I(1), I(0)), 1},
                                   {Elem(Value::Dne(), I(1)), 2}}));
  EXPECT_TRUE(idx.Usable());
  ASSERT_EQ(idx.dne_entries().size(), 1u);
  EXPECT_EQ(idx.dne_entries()[0].count, 2);
  EXPECT_EQ(idx.entry_total(), 3);
}

TEST(SecondaryIndexTest, ExtractKeyClassifiesPathResults) {
  Database db;
  SecondaryIndex idx({"i", "Pairs", {"k"}, IndexKind::kHash}, &db.store());
  ValuePtr key;
  EXPECT_EQ(idx.ExtractKey(Elem(I(5), I(0)), &key), IndexKeyClass::kKeyed);
  EXPECT_TRUE(key->Equals(*I(5)));
  EXPECT_EQ(idx.ExtractKey(Elem(Value::Unk(), I(0)), &key),
            IndexKeyClass::kUnk);
  EXPECT_EQ(idx.ExtractKey(Elem(Value::Dne(), I(0)), &key),
            IndexKeyClass::kDne);
  // A non-tuple element cannot take the field step: extraction fails, and a
  // failed element must force the scan fallback (errors reproduce exactly).
  EXPECT_EQ(idx.ExtractKey(I(9), &key), IndexKeyClass::kFailed);
  idx.Rebuild(S({Elem(I(1), I(0)), I(9)}));
  EXPECT_GT(idx.failed_count(), 0);
  EXPECT_FALSE(idx.Usable());
}

TEST(SecondaryIndexTest, RebuildOverNonSetDisables) {
  Database db;
  SecondaryIndex idx({"i", "N", {}, IndexKind::kHash}, &db.store());
  idx.Rebuild(I(3));
  EXPECT_TRUE(idx.disabled());
  EXPECT_FALSE(idx.Usable());
  idx.Rebuild(S({I(3)}));
  EXPECT_TRUE(idx.Usable());
  EXPECT_EQ(idx.entry_total(), 1);
}

TEST(SecondaryIndexTest, OrderedRangeServesOneFamilyOnly) {
  Database db;
  SecondaryIndex idx({"i", "N", {}, IndexKind::kOrdered}, &db.store());
  idx.Rebuild(S({I(1), I(3), I(5)}));
  std::vector<const SecondaryIndex::Bucket*> out;
  ASSERT_TRUE(idx.OrderedRange(I(3), /*less=*/true, /*inclusive=*/false,
                               &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0]->entries[0].value->Equals(*I(1)));
  out.clear();
  ASSERT_TRUE(idx.OrderedRange(I(3), /*less=*/true, /*inclusive=*/true,
                               &out));
  EXPECT_EQ(out.size(), 2u);
  out.clear();
  ASSERT_TRUE(idx.OrderedRange(I(3), /*less=*/false, /*inclusive=*/false,
                               &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0]->entries[0].value->Equals(*I(5)));
  // A keyed bucket outside the probe's family: the scan would TypeError on
  // that comparison, so the index must refuse and let the scan reproduce it.
  out.clear();
  idx.Rebuild(S({I(1), Value::Str("a")}));
  EXPECT_FALSE(idx.OrderedRange(I(3), true, true, &out));
  // Hash indexes never serve ranges.
  SecondaryIndex h({"h", "N", {}, IndexKind::kHash}, &db.store());
  h.Rebuild(S({I(1)}));
  EXPECT_FALSE(h.OrderedRange(I(3), true, true, &out));
}

TEST(SecondaryIndexTest, OrderedBucketsGroupCrossKindNumerics) {
  // Bucket equivalence is coarser than Value::Equals: 1 and 1.0 share an
  // ordered bucket (sound — consumers re-evaluate θ on the candidates).
  Database db;
  SecondaryIndex idx({"i", "N", {}, IndexKind::kOrdered}, &db.store());
  idx.Rebuild(S({I(1), Value::Float(1.0), I(2)}));
  EXPECT_EQ(idx.distinct_keys(), 2);
  ASSERT_NE(idx.EqBucket(Value::Float(1.0)), nullptr);
  EXPECT_EQ(idx.EqBucket(Value::Float(1.0))->TotalCount(), 2);
}

TEST(SecondaryIndexTest, IncrementalAddMatchesRebuild) {
  Database db;
  std::vector<SetEntry> data = {{Elem(I(1), I(0)), 2}, {Elem(I(1), I(1)), 1},
                                {Elem(I(2), I(0)), 3}, {Elem(Value::Unk(),
                                                             I(0)), 1}};
  for (IndexKind kind : {IndexKind::kHash, IndexKind::kOrdered}) {
    SecondaryIndex whole({"a", "P", {"k"}, kind}, &db.store());
    whole.Rebuild(Value::SetOfCounted(data));
    SecondaryIndex grown({"b", "P", {"k"}, kind}, &db.store());
    grown.Rebuild(Value::EmptySet());
    for (const auto& e : data) grown.Add(e.value, e.count);
    EXPECT_EQ(grown.distinct_keys(), whole.distinct_keys());
    EXPECT_EQ(grown.keyed_total(), whole.keyed_total());
    EXPECT_EQ(grown.entry_total(), whole.entry_total());
    ASSERT_NE(grown.EqBucket(I(1)), nullptr);
    EXPECT_EQ(grown.EqBucket(I(1))->TotalCount(),
              whole.EqBucket(I(1))->TotalCount());
    EXPECT_EQ(grown.unk_entries().size(), whole.unk_entries().size());
  }
}

// --- Database maintenance ---------------------------------------------------

class IndexDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateNamed("Nums", Schema::Set(IntSchema()),
                                Value::SetOf({I(1), I(2), I(2)}))
                    .ok());
    ASSERT_TRUE(
        db_.CreateNamed("Pairs",
                        Schema::Set(Schema::Tup({{"k", IntSchema()},
                                                 {"v", IntSchema()}})),
                        S({Elem(I(1), I(10)), Elem(I(2), I(20))}))
            .ok());
    registry_ = std::make_unique<MethodRegistry>(&db_.catalog());
    session_ = std::make_unique<Session>(&db_, registry_.get());
  }
  void Run(const std::string& stmt) {
    auto r = session_->Execute(stmt);
    ASSERT_TRUE(r.ok()) << r.status().ToString() << "\n" << stmt;
  }
  Database db_;
  std::unique_ptr<MethodRegistry> registry_;
  std::unique_ptr<Session> session_;
};

TEST_F(IndexDbTest, CreateValidatesTargetAndName) {
  EXPECT_FALSE(db_.CreateIndex({"i", "Missing", {}, IndexKind::kHash}).ok());
  ASSERT_TRUE(db_.CreateIndex({"i", "Nums", {}, IndexKind::kHash}).ok());
  // Names are unique across the database.
  EXPECT_FALSE(db_.CreateIndex({"i", "Pairs", {"k"}, IndexKind::kHash}).ok());
  EXPECT_FALSE(db_.DropIndex("nope").ok());
  ASSERT_TRUE(db_.CreateIndex({"j", "Nums", {}, IndexKind::kOrdered}).ok());
  EXPECT_EQ(db_.IndexesOn("Nums").size(), 2u);
  EXPECT_EQ(db_.IndexDefs().size(), 2u);
  EXPECT_EQ(db_.IndexDefs()[0].name, "i");
  ASSERT_TRUE(db_.DropIndex("i").ok());
  EXPECT_EQ(db_.FindIndex("i"), nullptr);
  EXPECT_EQ(db_.IndexesOn("Nums").size(), 1u);
}

TEST_F(IndexDbTest, MutationsMaintainTheEntries) {
  ASSERT_TRUE(db_.CreateIndex({"i", "Nums", {}, IndexKind::kHash}).ok());
  const SecondaryIndex* idx = db_.FindIndex("i");
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->EqBucket(I(2))->TotalCount(), 2);
  // AppendNamed merges incrementally.
  ASSERT_TRUE(db_.AppendNamed("Nums", S({I(2), I(9)})).ok());
  EXPECT_EQ(idx->EqBucket(I(2))->TotalCount(), 3);
  EXPECT_EQ(idx->EqBucket(I(9))->TotalCount(), 1);
  // SetNamed rebinds: a full rebuild over the new value.
  ASSERT_TRUE(db_.SetNamed("Nums", S({I(7)})).ok());
  EXPECT_EQ(idx->EqBucket(I(2)), nullptr);
  EXPECT_EQ(idx->EqBucket(I(7))->TotalCount(), 1);
  EXPECT_EQ(idx->entry_total(), 1);
}

TEST_F(IndexDbTest, TransactionRollbackRestoresIndexDdlAndEntries) {
  Run("create index ik on Pairs (k)");
  Run("begin");
  Run("drop index ik");
  Run("create index tmp on Nums ()");
  Run("append 9 to Nums");
  Run("rollback");
  // DDL undone both ways, and entries reflect the rolled-back base set.
  EXPECT_EQ(db_.FindIndex("tmp"), nullptr);
  const SecondaryIndex* ik = db_.FindIndex("ik");
  ASSERT_NE(ik, nullptr);
  EXPECT_EQ(ik->EqBucket(I(1))->TotalCount(), 1);
  Run("create index in2 on Nums ()");
  Run("begin");
  Run("append 9 to Nums");
  Run("rollback");
  EXPECT_EQ(db_.FindIndex("in2")->EqBucket(I(9)), nullptr);
}

// --- the statement surface --------------------------------------------------

TEST_F(IndexDbTest, CreateAndDropIndexStatements) {
  Run("create index ih on Pairs (k)");
  const SecondaryIndex* ih = db_.FindIndex("ih");
  ASSERT_NE(ih, nullptr);
  EXPECT_EQ(ih->def().kind, IndexKind::kHash);
  ASSERT_EQ(ih->def().path.size(), 1u);
  EXPECT_EQ(ih->def().path[0], "k");
  Run("create index io on Nums () using ordered");
  EXPECT_EQ(db_.FindIndex("io")->def().kind, IndexKind::kOrdered);
  Run("drop index ih");
  EXPECT_EQ(db_.FindIndex("ih"), nullptr);

  // Semantic and syntactic rejections.
  EXPECT_FALSE(session_->Execute("create index x on Missing ()").ok());
  EXPECT_FALSE(session_->Execute("drop index nope").ok());
  EXPECT_FALSE(
      session_->Execute("create index x on Nums () using btree").ok());
  EXPECT_FALSE(session_->Execute("create index x Nums ()").ok());
}

TEST_F(IndexDbTest, AnObjectNamedIndexStillParses) {
  // `index` is not a keyword: `create index : int4` is the plain named-
  // object form, disambiguated by the ':' after the name.
  Run("create index : int4");
  EXPECT_TRUE(db_.HasNamed("index"));
}

// --- lowering adoption ------------------------------------------------------

/// A database with one sizable indexed set, so the cost model prefers the
/// index whenever one is usable.
class IndexLoweringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<SetEntry> nums, pairs, outer;
    for (int i = 0; i < 200; ++i) {
      nums.push_back({I(i), 1});
      pairs.push_back({Elem(I(i % 50), I(i)), 1});
    }
    for (int i = 0; i < 8; ++i) outer.push_back({Elem(I(i * 5), I(i)), 1});
    ASSERT_TRUE(db_.CreateNamed("Nums", Schema::Set(IntSchema()),
                                Value::SetOfCounted(std::move(nums)))
                    .ok());
    SchemaPtr pair_schema = Schema::Set(
        Schema::Tup({{"k", IntSchema()}, {"v", IntSchema()}}));
    ASSERT_TRUE(db_.CreateNamed("Pairs", pair_schema,
                                Value::SetOfCounted(std::move(pairs)))
                    .ok());
    ASSERT_TRUE(db_.CreateNamed("Outer", pair_schema,
                                Value::SetOfCounted(std::move(outer)))
                    .ok());
  }
  ExprPtr Lower(const ExprPtr& plan) {
    return LowerPhysical(plan, &db_, params_);
  }
  ValuePtr Run(const ExprPtr& e) {
    Evaluator ev(&db_);
    auto r = ev.Eval(e);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }
  Database db_;
  CostParams params_;
};

TEST_F(IndexLoweringTest, SelectionLowersToIndexProbe) {
  ASSERT_TRUE(db_.CreateIndex({"inum", "Nums", {}, IndexKind::kHash}).ok());
  ExprPtr plan = Select(Eq(Input(), IntLit(5)), Var("Nums"));
  int64_t before = Fired("lower-index-probe");
  ExprPtr lowered = Lower(plan);
  ASSERT_EQ(lowered->kind(), OpKind::kIndexProbe);
  EXPECT_EQ(lowered->name(), "inum");
  EXPECT_EQ(Fired("lower-index-probe"), before + 1);
  // The plain overload — and a dropped index — leave the scan alone.
  EXPECT_EQ(LowerPhysical(plan)->kind(), OpKind::kSetApply);
  ASSERT_TRUE(db_.DropIndex("inum").ok());
  EXPECT_EQ(Lower(plan)->kind(), OpKind::kSetApply);
}

TEST_F(IndexLoweringTest, RangeProbesRequireAnOrderedIndex) {
  ASSERT_TRUE(db_.CreateIndex({"ih", "Nums", {}, IndexKind::kHash}).ok());
  ExprPtr range = Select(Lt(Input(), IntLit(10)), Var("Nums"));
  EXPECT_EQ(Lower(range)->kind(), OpKind::kSetApply);
  ASSERT_TRUE(
      db_.CreateIndex({"io", "Nums", {}, IndexKind::kOrdered}).ok());
  ExprPtr lowered = Lower(range);
  ASSERT_EQ(lowered->kind(), OpKind::kIndexProbe);
  EXPECT_EQ(lowered->name(), "io");
}

TEST_F(IndexLoweringTest, FieldPathMustMatchTheIndexPath) {
  ASSERT_TRUE(db_.CreateIndex({"ik", "Pairs", {"k"}, IndexKind::kHash}).ok());
  ExprPtr on_k =
      Select(Eq(TupExtract("k", Input()), IntLit(3)), Var("Pairs"));
  EXPECT_EQ(Lower(on_k)->kind(), OpKind::kIndexProbe);
  ExprPtr on_v =
      Select(Eq(TupExtract("v", Input()), IntLit(3)), Var("Pairs"));
  EXPECT_EQ(Lower(on_v)->kind(), OpKind::kSetApply);
  // A non-hoistable probe (free INPUT on both sides) is not a probe at all.
  ExprPtr self = Select(
      Eq(TupExtract("k", Input()), TupExtract("v", Input())), Var("Pairs"));
  EXPECT_EQ(Lower(self)->kind(), OpKind::kSetApply);
}

TEST_F(IndexLoweringTest, EquiJoinLowersToIndexJoin) {
  ASSERT_TRUE(db_.CreateIndex({"ik", "Pairs", {"k"}, IndexKind::kHash}).ok());
  PredicatePtr theta = Eq(TupExtract("k", TupExtract("_1", Input())),
                          TupExtract("k", TupExtract("_2", Input())));
  ExprPtr plan = SetApply(Comp(theta, Input()),
                          Cross(Var("Outer"), Var("Pairs")));
  int64_t before = Fired("lower-index-join");
  ExprPtr lowered = Lower(plan);
  ASSERT_EQ(lowered->kind(), OpKind::kIndexJoin);
  EXPECT_EQ(lowered->name(), "ik");
  EXPECT_EQ(lowered->index(), 1);  // the indexed side is B
  EXPECT_EQ(Fired("lower-index-join"), before + 1);
  // Index-blind lowering still produces the hash join.
  EXPECT_EQ(LowerPhysical(plan)->kind(), OpKind::kHashJoin);
  // The answers all agree.
  ValuePtr logical = Run(plan);
  ValuePtr hashed = Run(LowerPhysical(plan));
  ValuePtr indexed = Run(lowered);
  ASSERT_NE(logical, nullptr);
  EXPECT_TRUE(logical->Equals(*hashed));
  EXPECT_TRUE(logical->Equals(*indexed));
  EXPECT_GT(logical->TotalCount(), 0);
}

// --- IDX_PROBE / IDX_JOIN evaluation ----------------------------------------

class IndexEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Nulls in both key and payload positions; duplicate occurrences.
    ASSERT_TRUE(
        db_.CreateNamed(
               "Pairs",
               Schema::Set(Schema::Tup({{"k", IntSchema()},
                                        {"v", IntSchema()}})),
               Value::SetOfCounted({{Elem(I(1), I(10)), 2},
                                    {Elem(I(2), I(20)), 1},
                                    {Elem(I(3), Value::Unk()), 1},
                                    {Elem(Value::Unk(), I(30)), 2},
                                    {Elem(Value::Dne(), I(40)), 1}}))
            .ok());
  }
  ValuePtr Run(const ExprPtr& e) {
    Evaluator ev(&db_);
    auto r = ev.Eval(e);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }
  PredicatePtr KeyCmp(CmpOp cmp, ExprPtr probe) {
    return Predicate::Atom(TupExtract("k", Input()), cmp, std::move(probe));
  }
  void ExpectProbeEqualsLogical(CmpOp cmp, const ExprPtr& probe,
                                IndexKind kind) {
    IndexDef def{"i", "Pairs", {"k"}, kind};
    ASSERT_TRUE(db_.CreateIndex(def).ok());
    PredicatePtr theta = KeyCmp(cmp, probe);
    ExprPtr logical = Select(theta, Var("Pairs"));
    ExprPtr physical =
        IndexProbe("i", "Pairs", cmp, probe, Input(), theta);
    ValuePtr vl = Run(logical);
    ValuePtr vp = Run(physical);
    ASSERT_TRUE(vl != nullptr && vp != nullptr);
    EXPECT_TRUE(vl->Equals(*vp))
        << "logical: " << vl->ToString() << "\nprobe:   " << vp->ToString();
    ASSERT_TRUE(db_.DropIndex("i").ok());
  }
  Database db_;
};

TEST_F(IndexEvalTest, ProbesMatchTheLogicalSelection) {
  // Equality: unk keys join the candidates, the unk payload rides through θ.
  ExpectProbeEqualsLogical(CmpOp::kEq, IntLit(1), IndexKind::kHash);
  ExpectProbeEqualsLogical(CmpOp::kEq, IntLit(99), IndexKind::kHash);
  // Membership, including a null member in the probe set.
  ExpectProbeEqualsLogical(CmpOp::kIn,
                           Const(S({I(1), I(3), Value::Unk()})),
                           IndexKind::kHash);
  // Ranges over the ordered index.
  ExpectProbeEqualsLogical(CmpOp::kLt, IntLit(3), IndexKind::kOrdered);
  ExpectProbeEqualsLogical(CmpOp::kGe, IntLit(2), IndexKind::kOrdered);
  // Null probes: unk matches everything as unk, dne only meets unk keys.
  ExpectProbeEqualsLogical(CmpOp::kEq, Const(Value::Unk()),
                           IndexKind::kHash);
  ExpectProbeEqualsLogical(CmpOp::kEq, Const(Value::Dne()),
                           IndexKind::kHash);
  // kNe has no index support — the operator must scan, same answer.
  ExpectProbeEqualsLogical(CmpOp::kNe, IntLit(1), IndexKind::kHash);
}

TEST_F(IndexEvalTest, MissingIndexFallsBackToTheScan) {
  PredicatePtr theta = KeyCmp(CmpOp::kEq, IntLit(1));
  ExprPtr physical =
      IndexProbe("ghost", "Pairs", CmpOp::kEq, IntLit(1), Input(), theta);
  auto* fallbacks =
      obs::MetricsRegistry::Global().GetCounter("index.probe_fallbacks");
  int64_t before = fallbacks->value();
  ValuePtr vp = Run(physical);
  ASSERT_NE(vp, nullptr);
  EXPECT_TRUE(vp->Equals(*Run(Select(theta, Var("Pairs")))));
  EXPECT_EQ(fallbacks->value(), before + 1);
}

TEST_F(IndexEvalTest, FailingProbeExpressionFallsBackLikeTheLogicalPlan) {
  // A hoisted probe that errors must not fail the operator outright: the
  // scan fallback reproduces the logical behavior exactly — including the
  // error, since predicate atoms evaluate strictly.
  ASSERT_TRUE(db_.CreateIndex({"i", "Pairs", {"k"}, IndexKind::kHash}).ok());
  ExprPtr boom = Arith("/", IntLit(1), IntLit(0));
  PredicatePtr theta = KeyCmp(CmpOp::kEq, boom);
  Evaluator el(&db_), ep(&db_);
  auto rl = el.Eval(Select(theta, Var("Pairs")));
  auto rp = ep.Eval(IndexProbe("i", "Pairs", CmpOp::kEq, boom, Input(),
                               theta));
  ASSERT_FALSE(rl.ok());
  ASSERT_FALSE(rp.ok());
  EXPECT_EQ(rl.status().ToString(), rp.status().ToString());

  // But where the logical plan never consults θ — COMP maps an unk operand
  // to unk without evaluating the predicate — the probe path must succeed
  // too: an all-unk base set is exactly that situation, and the fallback
  // scan keeps it error-free.
  ASSERT_TRUE(db_.CreateNamed("Unks", Schema::Set(IntSchema()),
                              Value::SetOfCounted({{Value::Unk(), 2}}))
                  .ok());
  ASSERT_TRUE(db_.CreateIndex({"u", "Unks", {}, IndexKind::kHash}).ok());
  PredicatePtr id_theta = Predicate::Atom(Input(), CmpOp::kEq, boom);
  ValuePtr vl = Run(Select(id_theta, Var("Unks")));
  ValuePtr vp =
      Run(IndexProbe("u", "Unks", CmpOp::kEq, boom, Input(), id_theta));
  ASSERT_TRUE(vl != nullptr && vp != nullptr);
  EXPECT_TRUE(vl->Equals(*vp));
  EXPECT_EQ(vp->CountOf(Value::Unk()), 2);
}

// --- the session / explain surface ------------------------------------------

class IndexSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<SetEntry> nums;
    for (int i = 0; i < 100; ++i) nums.push_back({I(i), 1});
    ASSERT_TRUE(db_.CreateNamed("Nums", Schema::Set(IntSchema()),
                                Value::SetOfCounted(std::move(nums)))
                    .ok());
    registry_ = std::make_unique<MethodRegistry>(&db_.catalog());
    session_ = std::make_unique<Session>(&db_, registry_.get());
  }
  std::string Run(const std::string& q) {
    auto r = session_->Execute(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nquery: " << q;
    if (!r.ok() || *r == nullptr) return "";
    return (*r)->kind() == ValueKind::kString ? (*r)->as_string()
                                              : (*r)->ToString();
  }
  Database db_;
  std::unique_ptr<MethodRegistry> registry_;
  std::unique_ptr<Session> session_;
};

TEST_F(IndexSessionTest, ExplainShowsTheProbeAndTheKnobDisablesIt) {
  Run("create index inum on Nums ()");
  const std::string q =
      "explain retrieve (n) from n in Nums where n = 5";
  std::string with = Run(q);
  EXPECT_NE(with.find("IDX_PROBE"), std::string::npos) << with;
  // EXCESS_INDEX_LOWERING=0: plans are index-neutral, indexes or not.
  setenv("EXCESS_INDEX_LOWERING", "0", /*overwrite=*/1);
  std::string without = Run(q);
  unsetenv("EXCESS_INDEX_LOWERING");
  EXPECT_EQ(without.find("IDX_PROBE"), std::string::npos) << without;
  // And the answers agree either way.
  Run("create index io on Nums () using ordered");
  std::string on = Run("retrieve (n) from n in Nums where n < 3");
  setenv("EXCESS_INDEX_LOWERING", "0", /*overwrite=*/1);
  std::string off = Run("retrieve (n) from n in Nums where n < 3");
  unsetenv("EXCESS_INDEX_LOWERING");
  EXPECT_EQ(on, off);
}

TEST_F(IndexSessionTest, ExplainAnalyzeReportsProbeMetrics) {
  Run("create index inum on Nums ()");
  auto* probes = obs::MetricsRegistry::Global().GetCounter("index.probes");
  int64_t before = probes->value();
  Run("explain analyze retrieve (n) from n in Nums where n = 5");
  EXPECT_GT(probes->value(), before);
}

}  // namespace
}  // namespace excess
