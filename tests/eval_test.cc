#include "core/eval.h"

#include <gtest/gtest.h>

#include "core/builder.h"
#include "objects/database.h"

namespace excess {
namespace {

using namespace alg;  // NOLINT(build/namespaces) — test readability

ValuePtr I(int64_t v) { return Value::Int(v); }
ValuePtr S(std::vector<ValuePtr> v) { return Value::SetOf(v); }

class EvalTest : public ::testing::Test {
 protected:
  Result<ValuePtr> Run(const ExprPtr& e) {
    Evaluator ev(&db_);
    return ev.Eval(e);
  }
  Database db_;
};

TEST_F(EvalTest, ConstAndVar) {
  EXPECT_EQ((*Run(IntLit(7)))->as_int(), 7);
  ASSERT_TRUE(db_.CreateNamed("Nums", Schema::Set(IntSchema()),
                              S({I(1), I(2)}))
                  .ok());
  EXPECT_TRUE((*Run(Var("Nums")))->Equals(*S({I(1), I(2)})));
  EXPECT_TRUE(Run(Var("Ghost")).status().IsNotFound());
}

TEST_F(EvalTest, InputOutsideContextFails) {
  EXPECT_TRUE(Run(Input()).status().IsEvalError());
}

TEST_F(EvalTest, SetApplyPaperExample) {
  // §3.2.1: A = {{1,1,2},{2,3,4},{1}}; SET_APPLY_{INPUT−{1}}(A)
  //       = {{1,2},{2,3,4},{}}.
  ValuePtr a = S({S({I(1), I(1), I(2)}), S({I(2), I(3), I(4)}), S({I(1)})});
  ExprPtr q = SetApply(Diff(Input(), Const(S({I(1)}))), Const(a));
  ValuePtr expected = S({S({I(1), I(2)}), S({I(2), I(3), I(4)}), S({})});
  EXPECT_TRUE((*Run(q))->Equals(*expected));
}

TEST_F(EvalTest, SetApplyPreservesCardinalities) {
  ValuePtr a = Value::SetOfCounted({{I(2), 3}, {I(5), 1}});
  ExprPtr q = SetApply(Arith("*", Input(), IntLit(10)), Const(a));
  ValuePtr r = *Run(q);
  EXPECT_EQ(r->CountOf(I(20)), 3);
  EXPECT_EQ(r->CountOf(I(50)), 1);
}

TEST_F(EvalTest, SetApplyMergesCollidingResults) {
  // Mapping different elements to the same value adds cardinalities.
  ValuePtr a = S({I(1), I(2)});
  ExprPtr q = SetApply(IntLit(0), Const(a));
  EXPECT_EQ((*Run(q))->CountOf(I(0)), 2);
}

TEST_F(EvalTest, CompPaperExample) {
  // §3.2.4: A = (1 4 6 4 1); predicate fld2 = fld4 holds, so COMP returns A.
  ValuePtr a = Value::Tuple({"fld1", "fld2", "fld3", "fld4", "fld5"},
                            {I(1), I(4), I(6), I(4), I(1)});
  ExprPtr q = Comp(Eq(TupExtract("fld2", Input()), TupExtract("fld4", Input())),
                   Const(a));
  EXPECT_TRUE((*Run(q))->Equals(*a));
  // And a failing predicate yields dne.
  ExprPtr q2 = Comp(Eq(TupExtract("fld1", Input()),
                       TupExtract("fld2", Input())),
                    Const(a));
  EXPECT_TRUE((*Run(q2))->is_dne());
}

TEST_F(EvalTest, SelectionDiscardsDneInMultiset) {
  // Relational selection = SET_APPLY of COMP; failing rows vanish.
  ValuePtr a = S({I(1), I(5), I(10)});
  ExprPtr q = Select(Gt(Input(), IntLit(4)), Const(a));
  EXPECT_TRUE((*Run(q))->Equals(*S({I(5), I(10)})));
}

TEST_F(EvalTest, GroupPartitionsByExpression) {
  ValuePtr a = S({I(1), I(2), I(3), I(4), I(5)});
  ExprPtr q = Group(Arith("%", Input(), IntLit(2)), Const(a));
  ValuePtr r = *Run(q);
  EXPECT_EQ(r->TotalCount(), 2);  // two parity groups
  EXPECT_EQ(r->CountOf(S({I(1), I(3), I(5)})), 1);
  EXPECT_EQ(r->CountOf(S({I(2), I(4)})), 1);
}

TEST_F(EvalTest, GroupKeepsCardinalities) {
  ValuePtr a = Value::SetOfCounted({{I(1), 2}, {I(3), 1}});
  ExprPtr q = Group(Arith("%", Input(), IntLit(2)), Const(a));
  ValuePtr r = *Run(q);
  EXPECT_EQ(r->CountOf(Value::SetOfCounted({{I(1), 2}, {I(3), 1}})), 1);
}

TEST_F(EvalTest, NullInputShortCircuitsComp) {
  // Uniform propagation: a null COMP *input* yields that null without
  // evaluating the predicate.
  EXPECT_TRUE((*Run(Comp(Eq(Input(), IntLit(1)), Const(Value::Unk()))))
                  ->is_unk());
  EXPECT_TRUE((*Run(Comp(Eq(Input(), IntLit(1)), Const(Value::Dne()))))
                  ->is_dne());
}

TEST_F(EvalTest, ThreeValuedPredicatesOverUnkFields) {
  // Kleene logic exercised through a non-null tuple with an unk field.
  ValuePtr t = Value::Tuple({"x", "y"}, {Value::Unk(), I(7)});
  auto x_is_1 = [&] { return Eq(TupExtract("x", Input()), IntLit(1)); };
  auto y_is_7 = [&] { return Eq(TupExtract("y", Input()), IntLit(7)); };
  auto y_is_0 = [&] { return Eq(TupExtract("y", Input()), IntLit(0)); };
  // unk atom -> unk.
  EXPECT_TRUE((*Run(Comp(x_is_1(), Const(t))))->is_unk());
  // NOT unk -> unk.
  EXPECT_TRUE((*Run(Comp(Predicate::Not(x_is_1()), Const(t))))->is_unk());
  // unk AND false -> false -> dne (F dominates U).
  EXPECT_TRUE(
      (*Run(Comp(Predicate::And(x_is_1(), y_is_0()), Const(t))))->is_dne());
  // unk AND true -> unk.
  EXPECT_TRUE(
      (*Run(Comp(Predicate::And(x_is_1(), y_is_7()), Const(t))))->is_unk());
  // unk OR true -> true: the tuple passes through.
  EXPECT_TRUE(
      (*Run(Comp(Predicate::Or(x_is_1(), y_is_7()), Const(t))))->Equals(*t));
  // unk OR false -> unk.
  EXPECT_TRUE(
      (*Run(Comp(Predicate::Or(x_is_1(), y_is_0()), Const(t))))->is_unk());
  // dne field: comparison is false.
  ValuePtr d = Value::Tuple({"x", "y"}, {Value::Dne(), I(7)});
  EXPECT_TRUE((*Run(Comp(x_is_1(), Const(d))))->is_dne());
}

TEST_F(EvalTest, MembershipPredicate) {
  ExprPtr q = Comp(In(Input(), Const(S({I(1), I(2)}))), IntLit(2));
  EXPECT_EQ((*Run(q))->as_int(), 2);
  ExprPtr q2 = Comp(In(Input(), Const(S({I(1)}))), IntLit(2));
  EXPECT_TRUE((*Run(q2))->is_dne());
  ExprPtr q3 = Comp(In(Input(), IntLit(5)), IntLit(2));
  EXPECT_TRUE(Run(q3).status().IsTypeError());
}

TEST_F(EvalTest, NullPropagationThroughOperators) {
  // TUP_EXTRACT over dne yields dne, not an error (what makes rule 15
  // composition exact).
  ExprPtr q = TupExtract("x", Const(Value::Dne()));
  EXPECT_TRUE((*Run(q))->is_dne());
  EXPECT_TRUE((*Run(Deref(Const(Value::Unk()))))->is_unk());
  // dne dominates unk.
  ExprPtr q2 = TupCat(Const(Value::Dne()), Const(Value::Unk()));
  EXPECT_TRUE((*Run(q2))->is_dne());
}

TEST_F(EvalTest, TupleOperators) {
  ValuePtr t = Value::Tuple({"a", "b"}, {I(1), I(2)});
  EXPECT_EQ((*Run(TupExtract("b", Const(t))))->as_int(), 2);
  ValuePtr pi = *Run(Project({"b"}, Const(t)));
  EXPECT_EQ(pi->num_fields(), 1u);
  ValuePtr one = *Run(TupMake(IntLit(9)));
  EXPECT_EQ((*one->Field("_1"))->as_int(), 9);
  ValuePtr cat = *Run(TupCat(Const(t), TupMake(IntLit(3))));
  EXPECT_EQ(cat->num_fields(), 3u);
}

TEST_F(EvalTest, ArrayOperators) {
  ValuePtr a = Value::ArrayOf({I(5), I(6), I(7)});
  EXPECT_EQ((*Run(ArrExtract(2, Const(a))))->as_int(), 6);
  EXPECT_EQ((*Run(ArrExtractLast(Const(a))))->as_int(), 7);
  EXPECT_TRUE((*Run(ArrExtract(9, Const(a))))->is_dne());
  ValuePtr doubled = *Run(ArrApply(Arith("*", Input(), IntLit(2)), Const(a)));
  EXPECT_TRUE(doubled->Equals(*Value::ArrayOf({I(10), I(12), I(14)})));
  ValuePtr sliced = *Run(SubArr(2, 3, Const(a)));
  EXPECT_TRUE(sliced->Equals(*Value::ArrayOf({I(6), I(7)})));
  // SUBARR with `last` bounds.
  ValuePtr tail = *Run(SubArr(2, 0, Const(a), false, /*hi_last=*/true));
  EXPECT_TRUE(tail->Equals(*Value::ArrayOf({I(6), I(7)})));
  ValuePtr one = *Run(ArrMake(IntLit(1)));
  EXPECT_EQ(one->ArrayLength(), 1);
}

TEST_F(EvalTest, ArraySelectionFiltersViaDne) {
  ValuePtr a = Value::ArrayOf({I(1), I(5), I(2), I(9)});
  ValuePtr r = *Run(ArrSelect(Lt(Input(), IntLit(5)), Const(a)));
  EXPECT_TRUE(r->Equals(*Value::ArrayOf({I(1), I(2)})));
}

TEST_F(EvalTest, RefAndDeref) {
  ASSERT_TRUE(db_.catalog().DefineType("Obj", Schema::Tup({})).ok());
  ValuePtr payload = Value::Tuple({}, {}, "Obj");
  ExprPtr roundtrip = Deref(RefOp(Const(payload), "Obj"));
  EXPECT_TRUE((*Run(roundtrip))->Equals(*payload));
  // REF is deterministic per (type, value): two REFs agree.
  ValuePtr r1 = *Run(RefOp(Const(payload), "Obj"));
  ValuePtr r2 = *Run(RefOp(Const(payload), "Obj"));
  EXPECT_TRUE(r1->Equals(*r2));
  // DEREF of a non-ref is a sort error.
  EXPECT_TRUE(Run(Deref(IntLit(1))).status().IsTypeError());
}

TEST_F(EvalTest, AggregatesAndArith) {
  ValuePtr s = S({I(3), I(5)});
  EXPECT_EQ((*Run(Agg("sum", Const(s))))->as_int(), 8);
  EXPECT_EQ((*Run(Arith("+", IntLit(2), IntLit(3))))->as_int(), 5);
  EXPECT_DOUBLE_EQ((*Run(Arith("/", FloatLit(1), IntLit(4))))->as_float(),
                   0.25);
  EXPECT_TRUE(Run(Arith("/", IntLit(1), IntLit(0))).status().IsEvalError());
  EXPECT_EQ((*Run(Arith("+", StrLit("ab"), StrLit("cd"))))->as_string(),
            "abcd");
}

TEST_F(EvalTest, DerivedOperators) {
  ValuePtr a = S({I(1), I(1), I(2)});
  ValuePtr b = S({I(1), I(3)});
  ValuePtr u = *Run(Union(Const(a), Const(b)));
  EXPECT_EQ(u->CountOf(I(1)), 2);  // max
  ValuePtr i = *Run(Intersect(Const(a), Const(b)));
  EXPECT_EQ(i->CountOf(I(1)), 1);  // min
  EXPECT_EQ(i->CountOf(I(2)), 0);
  // rel_join as a θ-join over pairs.
  ValuePtr l = S({Value::Tuple({"x"}, {I(1)}), Value::Tuple({"x"}, {I(2)})});
  ValuePtr r = S({Value::Tuple({"y"}, {I(2)}), Value::Tuple({"y"}, {I(3)})});
  ExprPtr join = RelJoin(Eq(TupExtract("x", TupExtract("_1", Input())),
                            TupExtract("y", TupExtract("_2", Input()))),
                         Const(l), Const(r));
  ValuePtr joined = *Run(join);
  EXPECT_EQ(joined->TotalCount(), 1);
  EXPECT_EQ(joined->CountOf(Value::Tuple({"x", "y"}, {I(2), I(2)})), 1);
}

TEST_F(EvalTest, TypedSetApplyFiltersExactTypes) {
  ASSERT_TRUE(db_.catalog().DefineType("P", Schema::Tup({})).ok());
  ASSERT_TRUE(db_.catalog().DefineType("Q", Schema::Tup({}), {"P"}).ok());
  ValuePtr p = Value::Tuple({}, {}, "P");
  ValuePtr q = Value::Tuple({"q"}, {I(1)}, "Q");
  ValuePtr mixed = S({p, q});
  // Exactly-typed scan: only P objects processed, Q ignored (§4).
  ValuePtr only_p = *Run(SetApply(Input(), Const(mixed), "P"));
  EXPECT_EQ(only_p->TotalCount(), 1);
  EXPECT_TRUE(only_p->CountOf(p) == 1);
  // Multi-type filter serves both.
  ValuePtr both = *Run(SetApply(Input(), Const(mixed), "P,Q"));
  EXPECT_EQ(both->TotalCount(), 2);
}

TEST_F(EvalTest, StatsCountOccurrences) {
  ValuePtr a = Value::SetOfCounted({{I(1), 5}, {I(2), 5}});
  Evaluator ev(&db_);
  ASSERT_TRUE(ev.Eval(SetApply(Input(), Const(a))).ok());
  // Occurrence accounting follows the paper's cost ruler: 10, not 2.
  EXPECT_EQ(ev.stats().OccurrencesOf(OpKind::kSetApply), 10);
  EXPECT_EQ(ev.stats().InvocationsOf(OpKind::kSetApply), 1);
}

TEST_F(EvalTest, SetCollapseFlattens) {
  ValuePtr a = S({S({I(1)}), S({I(1), I(2)})});
  ValuePtr r = *Run(SetCollapse(Const(a)));
  EXPECT_EQ(r->CountOf(I(1)), 2);
  EXPECT_EQ(r->CountOf(I(2)), 1);
}

}  // namespace
}  // namespace excess
