#include "catalog/schema.h"

#include <gtest/gtest.h>

namespace excess {
namespace {

TEST(SchemaTest, ScalarFactories) {
  EXPECT_TRUE(IntSchema()->is_val());
  EXPECT_EQ(IntSchema()->scalar_kind(), ScalarKind::kInt);
  EXPECT_EQ(IntSchema()->ToString(), "int4");
  EXPECT_EQ(StringSchema()->ToString(), "string");
}

TEST(SchemaTest, EmptyTupleIsLegal) {
  // Condition (ii): a node with no components may be a tup node.
  SchemaPtr s = Schema::Tup({});
  EXPECT_TRUE(s->Validate().ok());
  EXPECT_EQ(s->ToString(), "()");
}

// Figure 2: a multiset of 3-tuples with a scalar, an array of scalars, and
// a reference to a scalar.
SchemaPtr Fig2Schema() {
  return Schema::Set(Schema::Tup({{"a", IntSchema()},
                                  {"b", Schema::Arr(IntSchema())},
                                  {"c", Schema::Ref("IntObj")}}));
}

TEST(SchemaTest, Fig2SchemaValidates) {
  SchemaPtr s = Fig2Schema();
  EXPECT_TRUE(s->Validate().ok());
  EXPECT_EQ(s->ToString(), "{ (a: int4, b: array of int4, c: ref IntObj) }");
}

TEST(SchemaTest, ConditionThreeSetNeedsComponent) {
  // Factories make it impossible to build a set without a component;
  // Validate still guards deserialized schemas.
  SchemaPtr ok = Schema::Set(IntSchema());
  EXPECT_TRUE(ok->Validate().ok());
}

TEST(SchemaTest, DuplicateTupleFieldNamesRejected) {
  SchemaPtr s = Schema::Tup({{"x", IntSchema()}, {"x", FloatSchema()}});
  Status st = s->Validate();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalid);
}

TEST(SchemaTest, FixedArraysCarrySize) {
  SchemaPtr arr = Schema::FixedArr(Schema::Ref("Employee"), 10);
  ASSERT_TRUE(arr->fixed_size().has_value());
  EXPECT_EQ(*arr->fixed_size(), 10);
  EXPECT_EQ(arr->ToString(), "array [1..10] of ref Employee");
  SchemaPtr var = Schema::Arr(IntSchema());
  EXPECT_FALSE(var->fixed_size().has_value());
}

TEST(SchemaTest, StructuralEquality) {
  EXPECT_TRUE(Fig2Schema()->Equals(*Fig2Schema()));
  SchemaPtr other = Schema::Set(Schema::Tup({{"a", IntSchema()}}));
  EXPECT_FALSE(Fig2Schema()->Equals(*other));
  // Fixed size participates in equality.
  EXPECT_FALSE(Schema::FixedArr(IntSchema(), 3)
                   ->Equals(*Schema::Arr(IntSchema())));
  // Ref equality is by target name.
  EXPECT_TRUE(Schema::Ref("A")->Equals(*Schema::Ref("A")));
  EXPECT_FALSE(Schema::Ref("A")->Equals(*Schema::Ref("B")));
}

TEST(SchemaTest, NamedTagParticipatesInEquality) {
  SchemaPtr anon = Schema::Tup({{"x", IntSchema()}});
  SchemaPtr named = Schema::Named(anon, "Point");
  EXPECT_FALSE(anon->Equals(*named));
  EXPECT_EQ(named->type_name(), "Point");
  EXPECT_EQ(named->ToString(), "Point");
  // CompatibleWith ignores tags.
  EXPECT_TRUE(anon->CompatibleWith(*named));
}

TEST(SchemaTest, AnyIsCompatibleWithEverything) {
  EXPECT_TRUE(AnySchema()->CompatibleWith(*Fig2Schema()));
  EXPECT_TRUE(Fig2Schema()->CompatibleWith(*AnySchema()));
  EXPECT_TRUE(Schema::Set(AnySchema())->CompatibleWith(*Fig2Schema()));
  EXPECT_FALSE(Schema::Set(AnySchema())->CompatibleWith(*IntSchema()));
}

TEST(SchemaTest, FieldLookup) {
  SchemaPtr t = Schema::Tup({{"a", IntSchema()}, {"b", StringSchema()}});
  EXPECT_EQ(t->FieldIndex("b"), 1);
  EXPECT_EQ(t->FieldIndex("zz"), -1);
  auto ft = t->FieldType("b");
  ASSERT_TRUE(ft.ok());
  EXPECT_TRUE((*ft)->Equals(*StringSchema()));
  EXPECT_TRUE(t->FieldType("zz").status().IsNotFound());
}

TEST(SchemaTest, HashConsistentWithEquality) {
  EXPECT_EQ(Fig2Schema()->Hash(), Fig2Schema()->Hash());
  SchemaPtr named = Schema::Named(Schema::Tup({{"x", IntSchema()}}), "P");
  SchemaPtr anon = Schema::Tup({{"x", IntSchema()}});
  EXPECT_NE(named->Hash(), anon->Hash());
}

TEST(SchemaTest, DeepNesting) {
  // Arbitrary composition: array of sets of tuples of refs.
  SchemaPtr s = Schema::Arr(Schema::Set(
      Schema::Tup({{"r", Schema::Ref("T")}, {"v", FloatSchema()}})));
  EXPECT_TRUE(s->Validate().ok());
  EXPECT_EQ(s->ToString(), "array of { (r: ref T, v: float4) }");
}

}  // namespace
}  // namespace excess
