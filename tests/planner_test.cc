#include "core/planner.h"

#include <gtest/gtest.h>

#include "core/builder.h"
#include "core/cost.h"
#include "core/eval.h"
#include "university/university.h"

namespace excess {
namespace {

using namespace alg;  // NOLINT(build/namespaces)

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    UniversityParams p;
    p.num_employees = 40;
    p.num_students = 60;
    ASSERT_TRUE(BuildUniversity(&db_, p).ok());
  }
  ValuePtr Eval(const ExprPtr& e) {
    Evaluator ev(&db_);
    auto r = ev.Eval(e);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }
  Database db_;
};

TEST_F(PlannerTest, CostModelUsesActualRootCardinalities) {
  CostModel cost(&db_);
  auto employees = cost.Estimate(Var("Employees"));
  ASSERT_TRUE(employees.ok());
  EXPECT_DOUBLE_EQ(employees->cardinality, 40);
  auto cross = cost.Estimate(Cross(Var("Employees"), Var("Students")));
  ASSERT_TRUE(cross.ok());
  EXPECT_DOUBLE_EQ(cross->cardinality, 40.0 * 60.0);
  EXPECT_GT(cross->total, employees->total);
}

TEST_F(PlannerTest, SelectionReducesEstimatedCardinality) {
  CostModel cost(&db_);
  ExprPtr scan = SetApply(Deref(Input()), Var("Employees"));
  ExprPtr filtered = SetApply(
      Comp(Eq(TupExtract("city", Input()), StrLit("city_0")), Input()), scan);
  auto a = cost.Estimate(scan);
  auto b = cost.Estimate(filtered);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(b->cardinality, a->cardinality);
}

TEST_F(PlannerTest, DerefsAreWeighted) {
  CostParams cheap;
  cheap.deref_cost = 1;
  CostParams pricey;
  pricey.deref_cost = 100;
  ExprPtr q = SetApply(Deref(Input()), Var("Employees"));
  auto a = CostModel(&db_, cheap).Estimate(q);
  auto b = CostModel(&db_, pricey).Estimate(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b->total, a->total);
}

TEST_F(PlannerTest, HeuristicPhaseCollapsesChains) {
  // The Figure 4 chain: four SET_APPLYs collapse into one.
  ExprPtr fig4 = SetApply(
      Project({"name"}, Input()),
      SetApply(
          Deref(TupExtract("dept", Input())),
          SetApply(Comp(Eq(TupExtract("city", Input()), StrLit("city_0")),
                        Input()),
                   SetApply(Deref(Input()), Var("Employees")))));
  Planner planner(&db_);
  auto plan = planner.Optimize(fig4);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Semantics preserved.
  EXPECT_TRUE(Eval(fig4)->Equals(*Eval(*plan)));
  // The heuristic trace shows rule 15 firing.
  bool combined = false;
  for (const auto& r : planner.heuristic_trace()) {
    if (r == "combine-set-applys") combined = true;
  }
  EXPECT_TRUE(combined);
  // The plan is a single scan of Employees.
  EXPECT_EQ((*plan)->kind(), OpKind::kSetApply);
  EXPECT_EQ((*plan)->child(0)->kind(), OpKind::kVar);
}

TEST_F(PlannerTest, OptimizedPlanIsNoCostlier) {
  ExprPtr q = DupElim(SetApply(
      TupExtract("name", Deref(TupExtract("_1", Input()))),
      Cross(Var("Employees"), Var("Students"))));
  Planner::Options opts;
  opts.search_budget = 32;
  Planner planner(&db_, opts);
  auto choices = planner.Enumerate(q);
  ASSERT_TRUE(choices.ok()) << choices.status().ToString();
  ASSERT_FALSE(choices->empty());
  CostModel cost(&db_);
  auto original = cost.Estimate(q);
  ASSERT_TRUE(original.ok());
  EXPECT_LE(choices->front().estimate.total, original->total);
  // Rule 5 should have eliminated the cross product entirely somewhere in
  // the considered plans; the best plan must not contain a CROSS.
  std::function<bool(const ExprPtr&)> has_cross = [&](const ExprPtr& e) {
    if (e->kind() == OpKind::kCross) return true;
    for (const auto& c : e->children()) {
      if (has_cross(c)) return true;
    }
    if (e->sub() != nullptr && has_cross(e->sub())) return true;
    return false;
  };
  EXPECT_FALSE(has_cross(choices->front().plan))
      << choices->front().plan->ToTreeString();
  // And the winner computes the same result.
  EXPECT_TRUE(Eval(q)->Equals(*Eval(choices->front().plan)));
}

TEST_F(PlannerTest, SearchIsDeterministicAndBounded) {
  ExprPtr q = SetApply(Arith("+", IntLit(1), IntLit(2)), Var("Employees"));
  Planner::Options opts;
  opts.search_budget = 8;
  Planner p1(&db_, opts);
  Planner p2(&db_, opts);
  auto a = p1.Optimize(q);
  auto b = p2.Optimize(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE((*a)->Equals(**b));
}

TEST_F(PlannerTest, ZeroBudgetSkipsSearchPhase) {
  Planner::Options opts;
  opts.search_budget = 0;
  Planner planner(&db_, opts);
  auto plan = planner.Optimize(Var("Employees"));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->kind(), OpKind::kVar);
}

}  // namespace
}  // namespace excess
