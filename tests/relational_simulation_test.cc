// §3.4 / §1: "the algebra is capable of simulating most of the algebras
// mentioned in Section 1 as long as these algebras do not contain the
// powerset operator". This test constructs the classical relational
// algebra (Ullman's five operators plus join) AND the nested-relational
// NEST/UNNEST pair as derived EXCESS-algebra expressions, and verifies
// them against independently computed references.

#include <gtest/gtest.h>

#include "core/builder.h"
#include "core/eval.h"
#include "objects/database.h"

namespace excess {
namespace {

using namespace alg;  // NOLINT(build/namespaces)

ValuePtr I(int64_t v) { return Value::Int(v); }
ValuePtr Row(int64_t a, int64_t b) {
  return Value::Tuple({"a", "b"}, {I(a), I(b)});
}

class RelationalSimulationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // R(a, b) and S(b, c) as multisets of tuples (relations are the sets).
    r_ = Value::SetOf({Row(1, 10), Row(2, 20), Row(3, 20), Row(1, 10)});
    s_ = Value::SetOf(
        {Value::Tuple({"b", "c"}, {I(10), Value::Str("x")}),
         Value::Tuple({"b", "c"}, {I(20), Value::Str("y")}),
         Value::Tuple({"b", "c"}, {I(30), Value::Str("z")})});
    ASSERT_TRUE(db_.CreateNamed("R", Schema::Set(Schema::Tup(
                                         {{"a", IntSchema()},
                                          {"b", IntSchema()}})),
                                r_)
                    .ok());
    ASSERT_TRUE(db_.CreateNamed("S", Schema::Set(Schema::Tup(
                                         {{"b", IntSchema()},
                                          {"c", StringSchema()}})),
                                s_)
                    .ok());
  }
  ValuePtr Eval(const ExprPtr& e) {
    Evaluator ev(&db_);
    auto r = ev.Eval(e);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }
  Database db_;
  ValuePtr r_;
  ValuePtr s_;
};

TEST_F(RelationalSimulationTest, Selection) {
  // σ_{b=20}(R) = SET_APPLY_{COMP}(R) — the Appendix §1 derivation.
  ValuePtr got = Eval(Select(Eq(TupExtract("b", Input()), IntLit(20)),
                             Var("R")));
  EXPECT_TRUE(got->Equals(*Value::SetOf({Row(2, 20), Row(3, 20)})));
}

TEST_F(RelationalSimulationTest, Projection) {
  // Set-valued π: map the tuple-level π; relational π then takes DE.
  ValuePtr bag = Eval(SetApply(Project({"b"}, Input()), Var("R")));
  EXPECT_EQ(bag->TotalCount(), 4);  // SQL-style bag projection
  ValuePtr set = Eval(DupElim(SetApply(Project({"b"}, Input()), Var("R"))));
  EXPECT_TRUE(set->Equals(*Value::SetOf({Value::Tuple({"b"}, {I(10)}),
                                         Value::Tuple({"b"}, {I(20)})})));
}

TEST_F(RelationalSimulationTest, CartesianProductAndJoin) {
  // rel_x flattens the pairs of ×; rel_join is the Appendix definition.
  ValuePtr prod = Eval(RelCross(Var("R"), Var("S")));
  EXPECT_EQ(prod->TotalCount(), r_->TotalCount() * s_->TotalCount());
  ValuePtr joined = Eval(RelJoin(
      Eq(TupExtract("b", TupExtract("_1", Input())),
         TupExtract("b", TupExtract("_2", Input()))),
      Var("R"), Var("S")));
  // Natural-join cardinality: rows of R matched with their S partner.
  EXPECT_EQ(joined->TotalCount(), 4);
  EXPECT_EQ(joined->CountOf(Value::Tuple(
                {"a", "b", "b", "c"}, {I(1), I(10), I(10), Value::Str("x")})),
            2);
}

TEST_F(RelationalSimulationTest, UnionAndDifference) {
  ValuePtr r2 = Value::SetOf({Row(1, 10), Row(9, 90)});
  ExprPtr r2e = Const(r2);
  // Set-semantics union/difference: DE the multiset operators' results.
  ValuePtr uni = Eval(DupElim(Union(Var("R"), r2e)));
  EXPECT_EQ(uni->TotalCount(), 4);  // (1,10),(2,20),(3,20),(9,90)
  ValuePtr diff = Eval(Diff(DupElim(Var("R")), r2e));
  EXPECT_TRUE(diff->Equals(*Value::SetOf({Row(2, 20), Row(3, 20)})));
}

TEST_F(RelationalSimulationTest, NestAndUnnest) {
  // NEST_{as=(a)}(R): GRP by b, then per group a tuple (b, packed a-set).
  // Groups do not carry their key, so it is re-derived from an arbitrary
  // member via min (every member of a group shares b).
  ExprPtr nested = SetApply(
      TupCat(TupMakeNamed("b", Agg("min", SetApply(TupExtract("b", Input()),
                                                   Input()))),
             TupMakeNamed("as", SetApply(Project({"a"}, Input()), Input()))),
      Group(TupExtract("b", Input()), DupElim(Var("R"))));
  ValuePtr got = Eval(nested);
  ValuePtr expected = Value::SetOf(
      {Value::Tuple({"b", "as"},
                    {I(10), Value::SetOf({Value::Tuple({"a"}, {I(1)})})}),
       Value::Tuple(
           {"b", "as"},
           {I(20), Value::SetOf({Value::Tuple({"a"}, {I(2)}),
                                 Value::Tuple({"a"}, {I(3)})})})});
  EXPECT_TRUE(got->Equals(*expected)) << got->ToString();

  // UNNEST: for each nested tuple, cross the tuple with its packed set
  // (the environment-pair trick) and flatten — recovers DE(R)'s (a, b).
  ExprPtr unnest2 = SetCollapse(SetApply(
      SetApply(TupCat(TupExtract("_2", Input()),
                      Project({"b"}, TupExtract("_1", Input()))),
               Cross(SetMake(Input()), TupExtract("as", Input()))),
      Const(got)));
  ValuePtr flat = Eval(unnest2);
  ValuePtr expect_flat = Eval(DupElim(SetApply(
      TupCat(Project({"a"}, Input()), Project({"b"}, Input())), Var("R"))));
  EXPECT_TRUE(flat->Equals(*expect_flat))
      << flat->ToString() << " vs " << expect_flat->ToString();
}

TEST_F(RelationalSimulationTest, DivisionViaDifference) {
  // R ÷ {10} on attribute b: the a-values whose b-set covers the divisor
  // set. Group by a, keep groups where (divisors − group's b-set) is
  // empty, then emit the group key.
  ValuePtr divisors = Value::SetOf({I(10)});
  ExprPtr div = SetApply(
      TupMakeNamed(
          "a", Agg("min", SetApply(TupExtract("a", Input()), Input()))),
      Select(Eq(Agg("count",
                    Diff(Const(divisors),
                         SetApply(TupExtract("b", Input()), Input()))),
                IntLit(0)),
             Group(TupExtract("a", Input()), DupElim(Var("R")))));
  ValuePtr got = Eval(div);
  // a=1 has b-set {10} ⊇ {10}; a=2,3 have {20}.
  EXPECT_EQ(got->CountOf(Value::Tuple({"a"}, {I(1)})), 1);
  EXPECT_EQ(got->TotalCount(), 1);
}

}  // namespace
}  // namespace excess
