// The EXCESS update statements (`append [all] ... to`, `delete ... where`):
// §2.2 promises "facilities for querying and updating complex structures".

#include <gtest/gtest.h>

#include "excess/session.h"
#include "methods/registry.h"
#include "university/university.h"

namespace excess {
namespace {

ValuePtr I(int64_t v) { return Value::Int(v); }

class UpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_unique<MethodRegistry>(&db_.catalog());
    session_ = std::make_unique<Session>(&db_, registry_.get());
    ASSERT_TRUE(db_.CreateNamed("Nums", Schema::Set(IntSchema()),
                                Value::SetOf({I(1), I(2), I(2)}))
                    .ok());
  }
  void Run(const std::string& stmt) {
    auto r = session_->Execute(stmt);
    ASSERT_TRUE(r.ok()) << r.status().ToString() << "\n" << stmt;
  }
  ValuePtr Nums() { return *db_.NamedValue("Nums"); }

  Database db_;
  std::unique_ptr<MethodRegistry> registry_;
  std::unique_ptr<Session> session_;
};

TEST_F(UpdateTest, AppendSingleOccurrence) {
  Run("append 9 to Nums");
  EXPECT_EQ(Nums()->CountOf(I(9)), 1);
  EXPECT_EQ(Nums()->TotalCount(), 4);
  // Appending an existing element raises its cardinality.
  Run("append 2 to Nums");
  EXPECT_EQ(Nums()->CountOf(I(2)), 3);
}

TEST_F(UpdateTest, AppendSetAsElementVsAll) {
  ASSERT_TRUE(db_.CreateNamed("Nested", Schema::Set(Schema::Set(IntSchema())))
                  .ok());
  // Without `all`: the multiset itself becomes ONE element.
  Run("append {1, 2} to Nested");
  EXPECT_EQ((*db_.NamedValue("Nested"))->TotalCount(), 1);
  EXPECT_EQ((*db_.NamedValue("Nested"))->CountOf(Value::SetOf({I(1), I(2)})),
            1);
  // With `all`: each occurrence is merged in.
  Run("append all {5, 5, 6} to Nums");
  EXPECT_EQ(Nums()->CountOf(I(5)), 2);
  EXPECT_EQ(Nums()->CountOf(I(6)), 1);
  EXPECT_EQ(Nums()->TotalCount(), 6);
}

TEST_F(UpdateTest, AppendComputedExpression) {
  Run("append count(Nums) to Nums");  // appends 3
  EXPECT_EQ(Nums()->CountOf(I(3)), 1);
}

TEST_F(UpdateTest, DeleteByPredicate) {
  Run("delete Nums where Nums >= 2");
  EXPECT_TRUE(Nums()->Equals(*Value::SetOf({I(1)})));
  // Deleting with a never-true predicate is a no-op.
  Run("delete Nums where Nums > 100");
  EXPECT_EQ(Nums()->TotalCount(), 1);
}

TEST_F(UpdateTest, DeleteOverStructuredElements) {
  UniversityParams p;
  p.num_employees = 20;
  Database uni;
  ASSERT_TRUE(BuildUniversity(&uni, p).ok());
  MethodRegistry m(&uni.catalog());
  Session s(&uni, &m);
  // Delete the references whose object lives in city_0; the name doubles
  // as the element variable, and paths deref implicitly.
  auto before = (*uni.NamedValue("Employees"))->TotalCount();
  auto r = s.Execute("delete Employees where Employees.city = \"city_0\"");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ValuePtr after = *uni.NamedValue("Employees");
  EXPECT_LT(after->TotalCount(), before);
  for (const auto& e : after->entries()) {
    ValuePtr emp = *uni.store().Deref(e.value->oid());
    EXPECT_NE((*emp->Field("city"))->as_string(), "city_0");
  }
}

TEST_F(UpdateTest, UpdatesComposeWithQueries) {
  Run("retrieve (x) from x in Nums where x >= 2 into Big");
  Run("delete Nums where Nums in Big");
  EXPECT_TRUE(Nums()->Equals(*Value::SetOf({I(1)})));
  Run("append all Big to Nums");
  EXPECT_EQ(Nums()->TotalCount(), 3);
}

TEST_F(UpdateTest, Errors) {
  // Append to a non-set / missing object.
  ASSERT_TRUE(db_.CreateNamed("Tup", Schema::Tup({{"a", IntSchema()}}),
                              Value::Tuple({"a"}, {I(1)}))
                  .ok());
  EXPECT_FALSE(session_->Execute("append 1 to Tup").ok());
  EXPECT_FALSE(session_->Execute("append 1 to Ghost").ok());
  EXPECT_FALSE(session_->Execute("delete Ghost where Ghost = 1").ok());
  EXPECT_FALSE(session_->Execute("delete Tup where Tup = 1").ok());
  // Parse errors.
  EXPECT_FALSE(session_->Execute("append to Nums").ok());
  EXPECT_FALSE(session_->Execute("delete Nums").ok());
  // The failed statements changed nothing.
  EXPECT_EQ(Nums()->TotalCount(), 3);
}

}  // namespace
}  // namespace excess
