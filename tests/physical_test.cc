// The physical execution layer: hash-join lowering and answer equality,
// hash-accelerated multiset kernels against naive references, and parallel
// SET_APPLY / ARR_APPLY against the serial path — all on randomized
// university-flavored data with duplicates, nulls and nested-set keys.

#include "core/physical.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

#include "core/analysis.h"
#include "core/builder.h"
#include "core/eval.h"
#include "core/infer.h"
#include "core/kernels.h"
#include "objects/database.h"

namespace excess {
namespace {

using namespace alg;  // NOLINT(build/namespaces) — test readability

ValuePtr I(int64_t v) { return Value::Int(v); }
ValuePtr S(std::vector<ValuePtr> v) { return Value::SetOf(v); }

/// An element tuple (k: join key, v: payload).
ValuePtr Elem(ValuePtr k, ValuePtr v) {
  return Value::Tuple({"k", "v"}, {std::move(k), std::move(v)});
}

/// Random join key: small ints (to force collisions), unk, dne, or a
/// nested set of ints (sets are legal, hashable join keys).
ValuePtr RandomKey(std::mt19937* rng) {
  switch ((*rng)() % 10) {
    case 0:
      return Value::Unk();
    case 1:
      return Value::Dne();
    case 2:
      return S({I(static_cast<int64_t>((*rng)() % 3)),
                I(static_cast<int64_t>((*rng)() % 3))});
    default:
      return I(static_cast<int64_t>((*rng)() % 12));
  }
}

ValuePtr RandomPayload(std::mt19937* rng) {
  if ((*rng)() % 8 == 0) return Value::Unk();
  return I(static_cast<int64_t>((*rng)() % 50));
}

/// Random multiset of (k, v) tuples with duplicated occurrences.
ValuePtr RandomSide(std::mt19937* rng, int distinct) {
  std::vector<SetEntry> entries;
  for (int i = 0; i < distinct; ++i) {
    entries.push_back({Elem(RandomKey(rng), RandomPayload(rng)),
                       static_cast<int64_t>(1 + (*rng)() % 3)});
  }
  return Value::SetOfCounted(std::move(entries));
}

PredicatePtr KeyEq() {
  return Eq(TupExtract("k", TupExtract("_1", Input())),
            TupExtract("k", TupExtract("_2", Input())));
}

/// θ with a residual non-equality conjunct (three-valued on unk payloads).
PredicatePtr KeyEqAndPayloadGt() {
  return Predicate::And(KeyEq(),
                        Gt(TupExtract("v", TupExtract("_1", Input())),
                           TupExtract("v", TupExtract("_2", Input()))));
}

ExprPtr SelectCross(PredicatePtr theta, ValuePtr a, ValuePtr b) {
  return SetApply(Comp(std::move(theta), Input()),
                  Cross(Const(std::move(a)), Const(std::move(b))));
}

class PhysicalTest : public ::testing::Test {
 protected:
  ValuePtr Run(const ExprPtr& e) {
    Evaluator ev(&db_);
    auto r = ev.Eval(e);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }
  Database db_;
};

// --- lowering ---------------------------------------------------------------

TEST_F(PhysicalTest, LowersSelectOverCross) {
  ExprPtr logical = SelectCross(KeyEq(), S({}), S({}));
  ExprPtr physical = LowerPhysical(logical);
  ASSERT_EQ(physical->kind(), OpKind::kHashJoin);
  EXPECT_EQ(physical->num_children(), 4u);
  // Keys were stripped to per-element expressions: TUP_EXTRACT_k(INPUT).
  EXPECT_EQ(physical->child(2)->kind(), OpKind::kTupExtract);
  EXPECT_EQ(physical->child(2)->name(), "k");
  EXPECT_EQ(physical->child(2)->child(0)->kind(), OpKind::kInput);
  // θ rides along whole.
  EXPECT_TRUE(physical->pred()->Equals(*KeyEq()));
}

TEST_F(PhysicalTest, LowersTheRelJoinShape) {
  ExprPtr join = RelJoin(KeyEq(), Const(S({})), Const(S({})));
  ExprPtr physical = LowerPhysical(join);
  // The outer flatten SET_APPLY stays; its input became the hash join.
  ASSERT_EQ(physical->kind(), OpKind::kSetApply);
  EXPECT_EQ(physical->child(0)->kind(), OpKind::kHashJoin);
}

TEST_F(PhysicalTest, DoesNotLowerNonEquiOrOneSidedPredicates) {
  // Pure inequality: no equality atom to key on.
  ExprPtr lt = SelectCross(Lt(TupExtract("k", TupExtract("_1", Input())),
                              TupExtract("k", TupExtract("_2", Input()))),
                           S({}), S({}));
  EXPECT_EQ(LowerPhysical(lt)->kind(), OpKind::kSetApply);
  // Equality against a constant is a selection, not a join.
  ExprPtr sel = SelectCross(
      Eq(TupExtract("k", TupExtract("_1", Input())), IntLit(3)), S({}), S({}));
  EXPECT_EQ(LowerPhysical(sel)->kind(), OpKind::kSetApply);
  // Equality whose one side mentions both halves cannot be split.
  ExprPtr both = SelectCross(
      Eq(Arith("+", TupExtract("k", TupExtract("_1", Input())),
               TupExtract("k", TupExtract("_2", Input()))),
         TupExtract("v", TupExtract("_2", Input()))),
      S({}), S({}));
  EXPECT_EQ(LowerPhysical(both)->kind(), OpKind::kSetApply);
}

TEST_F(PhysicalTest, CompositeKeyFromTwoEqualityAtoms) {
  PredicatePtr theta =
      Predicate::And(KeyEq(), Eq(TupExtract("v", TupExtract("_1", Input())),
                                 TupExtract("v", TupExtract("_2", Input()))));
  ExprPtr physical = LowerPhysical(SelectCross(theta, S({}), S({})));
  ASSERT_EQ(physical->kind(), OpKind::kHashJoin);
  // Composite keys are positional tuples: TUP_CAT(TUP(k), TUP(v)).
  EXPECT_EQ(physical->child(2)->kind(), OpKind::kTupCat);
  EXPECT_EQ(physical->child(3)->kind(), OpKind::kTupCat);
}

TEST_F(PhysicalTest, HashJoinInfersTheCrossSchema) {
  ExprPtr physical = LowerPhysical(
      SelectCross(KeyEq(), S({Elem(I(1), I(1))}), S({Elem(I(1), I(2))})));
  TypeInference infer(&db_);
  auto s = infer.Infer(physical);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_TRUE((*s)->is_set());
}

// --- answer equality --------------------------------------------------------

TEST_F(PhysicalTest, HashJoinEqualsLogicalOnRandomizedData) {
  for (int trial = 0; trial < 30; ++trial) {
    std::mt19937 rng(1234 + trial);
    // Mixed sizes: small sides exercise the nested-loop gate, larger ones
    // the hash path with its unk/dne-key fallbacks.
    int na = 2 + static_cast<int>(rng() % 60);
    int nb = 2 + static_cast<int>(rng() % 60);
    ValuePtr a = RandomSide(&rng, na);
    ValuePtr b = RandomSide(&rng, nb);
    for (const PredicatePtr& theta : {KeyEq(), KeyEqAndPayloadGt()}) {
      ExprPtr logical = SelectCross(theta, a, b);
      ExprPtr physical = LowerPhysical(logical);
      ASSERT_EQ(physical->kind(), OpKind::kHashJoin);
      ValuePtr vl = Run(logical);
      ValuePtr vp = Run(physical);
      ASSERT_TRUE(vl != nullptr && vp != nullptr);
      EXPECT_TRUE(vl->Equals(*vp))
          << "trial " << trial << "\nlogical:  " << vl->ToString()
          << "\nphysical: " << vp->ToString();
    }
  }
}

TEST_F(PhysicalTest, DneKeyMeetsUnkKeyAcrossTheHashGate) {
  // atom(dne, unk) is unk (unk dominates in [Gott88] atom semantics), so a
  // dne-key element must still meet unk-key elements of the other side.
  // Both sides get >16 distinct keyed elements to force the hash path.
  std::vector<SetEntry> ea, eb;
  for (int i = 0; i < 20; ++i) {
    ea.push_back({Elem(I(i), I(i)), 1});
    eb.push_back({Elem(I(100 + i), I(i)), 1});
  }
  ea.push_back({Elem(Value::Dne(), I(-1)), 2});
  eb.push_back({Elem(Value::Unk(), I(-2)), 3});
  ValuePtr a = Value::SetOfCounted(std::move(ea));
  ValuePtr b = Value::SetOfCounted(std::move(eb));
  ExprPtr logical = SelectCross(KeyEq(), a, b);
  ExprPtr physical = LowerPhysical(logical);
  ASSERT_EQ(physical->kind(), OpKind::kHashJoin);
  ValuePtr vl = Run(logical);
  ValuePtr vp = Run(physical);
  EXPECT_TRUE(vl->Equals(*vp));
  // The unk-key B element meets all 20 keyed A elements (20 * 1 * 3 unk
  // pairs); the dne-key A element adds 2 * 3 more through the D × U bucket.
  EXPECT_EQ(vp->CountOf(Value::Unk()), 20 * 3 + 2 * 3);
}

TEST_F(PhysicalTest, NestedSetKeysJoinByDeepEquality) {
  ValuePtr k1 = S({I(1), I(2), I(2)});
  ValuePtr k2 = S({I(2), I(1), I(2)});  // equal as multisets
  ValuePtr k3 = S({I(1), I(2)});
  std::vector<SetEntry> ea, eb;
  for (int i = 0; i < 20; ++i) {
    ea.push_back({Elem(I(i), I(0)), 1});
    eb.push_back({Elem(I(50 + i), I(0)), 1});
  }
  ea.push_back({Elem(k1, I(7)), 1});
  eb.push_back({Elem(k2, I(8)), 2});
  eb.push_back({Elem(k3, I(9)), 1});
  ExprPtr physical = LowerPhysical(
      SelectCross(KeyEq(), Value::SetOfCounted(std::move(ea)),
                  Value::SetOfCounted(std::move(eb))));
  ASSERT_EQ(physical->kind(), OpKind::kHashJoin);
  ValuePtr v = Run(physical);
  // Only k1 = k2 matches (multiset equality ignores order, counts matter).
  EXPECT_EQ(v->TotalCount(), 2);
  EXPECT_EQ(v->CountOf(Value::TupleOf({Elem(k1, I(7)), Elem(k2, I(8))})), 2);
}

TEST_F(PhysicalTest, EmptySidesShortCircuit) {
  ExprPtr physical =
      LowerPhysical(SelectCross(KeyEq(), S({}), S({Elem(I(1), I(1))})));
  EXPECT_EQ(Run(physical)->TotalCount(), 0);
}

// --- hash-accelerated kernels ----------------------------------------------

ValuePtr NaiveDiff(const ValuePtr& a, const ValuePtr& b) {
  std::vector<SetEntry> out;
  for (const auto& e : a->entries()) {
    int64_t remaining = e.count - b->CountOf(e.value);
    if (remaining > 0) out.push_back({e.value, remaining});
  }
  return Value::SetOfCounted(std::move(out));
}

ValuePtr NaiveMaxUnion(const ValuePtr& a, const ValuePtr& b) {
  std::vector<SetEntry> out;
  for (const auto& e : a->entries()) {
    out.push_back({e.value, std::max(e.count, b->CountOf(e.value))});
  }
  for (const auto& e : b->entries()) {
    if (a->CountOf(e.value) == 0) out.push_back(e);
  }
  return Value::SetOfCounted(std::move(out));
}

ValuePtr NaiveMinIntersect(const ValuePtr& a, const ValuePtr& b) {
  std::vector<SetEntry> out;
  for (const auto& e : a->entries()) {
    int64_t c = std::min(e.count, b->CountOf(e.value));
    if (c > 0) out.push_back({e.value, c});
  }
  return Value::SetOfCounted(std::move(out));
}

TEST(HashKernelsTest, MatchNaiveReferencesOnRandomizedData) {
  for (int trial = 0; trial < 40; ++trial) {
    std::mt19937 rng(99 + trial);
    // Sizes straddle the index gate (kIndexMin = 8) on both sides.
    ValuePtr a = RandomSide(&rng, 1 + static_cast<int>(rng() % 40));
    ValuePtr b = RandomSide(&rng, 1 + static_cast<int>(rng() % 40));
    auto diff = kernels::Diff(a, b);
    auto uni = kernels::MaxUnion(a, b);
    auto inter = kernels::MinIntersect(a, b);
    ASSERT_TRUE(diff.ok() && uni.ok() && inter.ok());
    EXPECT_TRUE((*diff)->Equals(*NaiveDiff(a, b))) << "trial " << trial;
    EXPECT_TRUE((*uni)->Equals(*NaiveMaxUnion(a, b))) << "trial " << trial;
    EXPECT_TRUE((*inter)->Equals(*NaiveMinIntersect(a, b)))
        << "trial " << trial;
    // The lattice identities the Appendix derives the operators from.
    auto au = kernels::AddUnion(*inter, *diff);
    ASSERT_TRUE(au.ok());
    EXPECT_TRUE((*au)->Equals(*a));  // (A ∩ B) ⊎ (A - B) = A
  }
}

// --- parallel SET_APPLY / ARR_APPLY ----------------------------------------

class ParallelApplyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Must precede the first WorkerPool::Instance() in this process; each
    // ctest entry runs the binary fresh, so this reliably sizes the pool.
    setenv("EXCESS_THREADS", "4", /*overwrite=*/0);
  }
  Database db_;
};

TEST_F(ParallelApplyTest, SetApplyMatchesSerialOnLargeInput) {
  std::mt19937 rng(7);
  std::vector<SetEntry> entries;
  for (int i = 0; i < 5000; ++i) {
    entries.push_back({Elem(I(static_cast<int64_t>(rng() % 100)),
                            I(static_cast<int64_t>(rng() % 1000))),
                       static_cast<int64_t>(1 + rng() % 2)});
  }
  ValuePtr in = Value::SetOfCounted(std::move(entries));
  // A subscript with a nested selection (COMP produces unk/dne too).
  ExprPtr sub = Comp(Gt(TupExtract("v", Input()), IntLit(500)), Input());
  ExprPtr plan = SetApply(sub, Const(in));
  ASSERT_TRUE(analysis::IsParallelSafe(sub));

  Evaluator serial(&db_);
  serial.set_parallel_enabled(false);
  auto rs = serial.Eval(plan);
  ASSERT_TRUE(rs.ok());

  Evaluator par(&db_);
  par.set_parallel_threshold(128);
  auto rp = par.Eval(plan);
  ASSERT_TRUE(rp.ok());
  EXPECT_TRUE((*rs)->Equals(**rp));
  // Merged worker stats reproduce the serial operator counts exactly.
  EXPECT_EQ(par.stats().InvocationsOf(OpKind::kComp),
            serial.stats().InvocationsOf(OpKind::kComp));
  EXPECT_EQ(par.stats().predicate_atoms, serial.stats().predicate_atoms);
}

TEST_F(ParallelApplyTest, ArrApplyMatchesSerialAndPreservesOrder) {
  std::vector<ValuePtr> elems;
  for (int i = 0; i < 4000; ++i) elems.push_back(I(i));
  ExprPtr plan =
      ArrApply(Arith("*", Input(), IntLit(3)), Const(Value::ArrayOf(elems)));

  Evaluator serial(&db_);
  serial.set_parallel_enabled(false);
  auto rs = serial.Eval(plan);
  Evaluator par(&db_);
  par.set_parallel_threshold(128);
  auto rp = par.Eval(plan);
  ASSERT_TRUE(rs.ok() && rp.ok());
  EXPECT_TRUE((*rs)->Equals(**rp));
  EXPECT_EQ((*rp)->ArrayLength(), 4000);
  EXPECT_EQ((*rp)->elems()[1234]->as_int(), 3 * 1234);
}

TEST_F(ParallelApplyTest, RefSubscriptIsNotParallelSafe) {
  // REF interns into the shared store — the gate must refuse it, and the
  // (serialized) evaluation must still be correct.
  ExprPtr sub = RefOp(Input());
  EXPECT_FALSE(analysis::IsParallelSafe(sub));
  EXPECT_FALSE(analysis::IsParallelSafe(MethodCall("m", Input())));
  EXPECT_TRUE(analysis::IsParallelSafe(Deref(Input())));

  std::vector<ValuePtr> occ;
  for (int i = 0; i < 2000; ++i) occ.push_back(Elem(I(i % 7), I(i % 7)));
  ExprPtr plan = SetApply(sub, Const(S(occ)));
  Evaluator par(&db_);
  par.set_parallel_threshold(128);
  auto r = par.Eval(plan);
  ASSERT_TRUE(r.ok());
  // Interning dedupes: 7 distinct tuples -> 7 distinct refs.
  EXPECT_EQ((*r)->DistinctCount(), 7);
  EXPECT_EQ(db_.store().size(), 7u);
}

TEST_F(ParallelApplyTest, ErrorsSurfaceDeterministically) {
  std::vector<ValuePtr> occ;
  for (int i = 0; i < 3000; ++i) occ.push_back(I(i));
  // Division by zero on every element.
  ExprPtr plan = SetApply(Arith("/", IntLit(1), Arith("-", Input(), Input())),
                          Const(S(occ)));
  Evaluator par(&db_);
  par.set_parallel_threshold(64);
  auto r = par.Eval(plan);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsEvalError());
}

TEST_F(ParallelApplyTest, TimingAccountsSelfTimePerOpKind) {
  std::vector<ValuePtr> occ;
  for (int i = 0; i < 1000; ++i) occ.push_back(I(i));
  ExprPtr plan = SetApply(Arith("+", Input(), IntLit(1)), Const(S(occ)));
  Evaluator ev(&db_);
  ev.set_timing_enabled(true);
  ev.set_parallel_enabled(false);
  ASSERT_TRUE(ev.Eval(plan).ok());
  EXPECT_GT(ev.stats().TotalNanos(), 0);
  EXPECT_GT(ev.stats().NanosOf(OpKind::kSetApply), 0);
  // Off by default: no clock reads, no numbers.
  Evaluator cold(&db_);
  ASSERT_TRUE(cold.Eval(plan).ok());
  EXPECT_EQ(cold.stats().TotalNanos(), 0);
}

}  // namespace
}  // namespace excess
