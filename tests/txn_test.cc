// Session transactions (`begin` / `commit` / `rollback`): atomic group
// commit through the WAL, rollback of data and DDL, the statement guards,
// governor trips inside an open transaction, commit-failure auto-abort,
// the incremental checkpoint, and the EXCESS_GROUP_COMMIT knob.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "core/governor.h"
#include "excess/session.h"
#include "methods/registry.h"
#include "objects/database.h"
#include "objects/value.h"
#include "obs/metrics.h"
#include "storage/serialize.h"
#include "storage/wal.h"
#include "util/env.h"

namespace excess {
namespace {

namespace fs = std::filesystem;

ValuePtr I(int64_t v) { return Value::Int(v); }

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("excess_txn_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    ::unsetenv("EXCESS_DB_PATH");
    ::unsetenv("EXCESS_GROUP_COMMIT");
    ::setenv("EXCESS_WAL_FSYNC", "0", 1);
  }
  void TearDown() override {
    fs::remove_all(dir_);
    ::unsetenv("EXCESS_WAL_FSYNC");
    ::unsetenv("EXCESS_GROUP_COMMIT");
    ::unsetenv("EXCESS_DB_PATH");
  }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  /// Recovers `path` into a fresh database and returns its canonical bytes.
  std::string RecoveredBytes(const std::string& path) {
    Database db;
    MethodRegistry methods(&db.catalog());
    Session s(&db, &methods);
    EXPECT_TRUE(s.OpenStorage(path).ok());
    return storage::CanonicalDatabaseBytes(db);
  }

  fs::path dir_;
};

TEST_F(TxnTest, CommitIsAtomicAcrossReopen) {
  const std::string path = Path("db.exdb");
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.OpenStorage(path).ok());
  ASSERT_TRUE(s.Execute("create Nums: { int4 }").ok());
  uint64_t before_lsn = s.next_durable_lsn();

  ASSERT_TRUE(s.Execute("begin").ok());
  EXPECT_TRUE(s.in_txn());
  ASSERT_TRUE(s.Execute("append all {1, 2, 3} to Nums").ok());
  ASSERT_TRUE(s.Execute("create Other: { int4 }").ok());
  ASSERT_TRUE(s.Execute("append 7 to Other").ok());
  ASSERT_TRUE(s.Execute("delete Nums where Nums = 2").ok());
  // Staged statements are not durable until commit.
  EXPECT_EQ(s.next_durable_lsn(), before_lsn);
  ASSERT_TRUE(s.Execute("commit").ok());
  EXPECT_FALSE(s.in_txn());
  // The group consumed one LSN per statement; the markers consume none.
  EXPECT_EQ(s.next_durable_lsn(), before_lsn + 4);

  EXPECT_EQ(RecoveredBytes(path), storage::CanonicalDatabaseBytes(db));
}

TEST_F(TxnTest, QueriesInsideTransactionSeeOwnWrites) {
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.Execute("create Nums: { int4 }\nappend 1 to Nums").ok());
  ASSERT_TRUE(s.Execute("begin").ok());
  ASSERT_TRUE(s.Execute("append 2 to Nums").ok());
  auto r = s.Execute("retrieve (x) from x in Nums");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->TotalCount(), 2);
  EXPECT_EQ((*r)->CountOf(I(2)), 1);
  ASSERT_TRUE(s.Execute("rollback").ok());
}

TEST_F(TxnTest, RollbackRestoresDataDdlRangesAndMethods) {
  const std::string path = Path("db.exdb");
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.OpenStorage(path).ok());
  ASSERT_TRUE(s.Execute("define type Pt: ( x: int4 )\n"
                        "create Nums: { int4 }\n"
                        "append all {1, 2} to Nums")
                  .ok());
  const std::string before = storage::CanonicalDatabaseBytes(db);
  const uint64_t before_lsn = s.next_durable_lsn();

  ASSERT_TRUE(s.Execute("begin").ok());
  ASSERT_TRUE(s.Execute("append 9 to Nums").ok());
  ASSERT_TRUE(s.Execute("delete Nums where Nums = 1").ok());
  ASSERT_TRUE(s.Execute("create Scratch: { int4 }").ok());
  ASSERT_TRUE(s.Execute("define type Q: ( y: int4 ) inherits Pt").ok());
  ASSERT_TRUE(s.Execute("range of N is Nums").ok());
  ASSERT_TRUE(s.Execute("define Pt function dbl () returns int4 "
                        "{ retrieve (this.x * 2) }")
                  .ok());
  EXPECT_TRUE(db.HasNamed("Scratch"));
  EXPECT_TRUE(db.catalog().HasType("Q"));
  EXPECT_TRUE(methods.Has("Pt", "dbl"));

  ASSERT_TRUE(s.Execute("rollback").ok());
  EXPECT_FALSE(s.in_txn());
  EXPECT_EQ(storage::CanonicalDatabaseBytes(db), before);
  EXPECT_FALSE(db.HasNamed("Scratch"));
  EXPECT_FALSE(db.catalog().HasType("Q"));
  EXPECT_TRUE(s.ranges().empty());
  EXPECT_FALSE(methods.Has("Pt", "dbl"));
  // Nothing of the transaction reached the disk.
  EXPECT_EQ(s.next_durable_lsn(), before_lsn);
  EXPECT_EQ(RecoveredBytes(path), before);

  // The session stays fully usable after the rollback.
  ASSERT_TRUE(s.Execute("append 5 to Nums").ok());
  auto nums = db.NamedValue("Nums");
  ASSERT_TRUE(nums.ok());
  EXPECT_EQ((*nums)->CountOf(I(5)), 1);
}

TEST_F(TxnTest, StatementGuards) {
  const std::string path = Path("db.exdb");
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);

  // commit / rollback with no open transaction.
  auto r = s.Execute("commit");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "no open transaction; `begin` starts one");
  r = s.Execute("rollback");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "no open transaction; `begin` starts one");

  ASSERT_TRUE(s.OpenStorage(path).ok());
  ASSERT_TRUE(s.Execute("create Nums: { int4 }").ok());
  ASSERT_TRUE(s.Execute("begin").ok());
  ASSERT_TRUE(s.Execute("append 1 to Nums").ok());

  // Nested begin.
  r = s.Execute("begin");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(),
            "a transaction is already open; commit or rollback it first");

  // checkpoint and open inside a transaction.
  r = s.Execute("checkpoint");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(),
            "cannot checkpoint inside a transaction; commit or rollback first");
  r = s.Execute("open \"" + Path("other.exdb") + "\"");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(),
            "cannot open a database inside a transaction; "
            "commit or rollback first");

  // None of the rejections disturbed the transaction.
  EXPECT_TRUE(s.in_txn());
  ASSERT_TRUE(s.Execute("commit").ok());
  auto nums = db.NamedValue("Nums");
  ASSERT_TRUE(nums.ok());
  EXPECT_EQ((*nums)->CountOf(I(1)), 1);
}

TEST_F(TxnTest, GovernorTripInsideTransactionLeavesItUsable) {
  const std::string path = Path("db.exdb");
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.OpenStorage(path).ok());
  ASSERT_TRUE(s.Execute("create Nums: { int4 }\n"
                        "append all {1, 2, 3, 4, 5} to Nums")
                  .ok());
  const std::string before = storage::CanonicalDatabaseBytes(db);
  const uint64_t before_lsn = s.next_durable_lsn();

  ASSERT_TRUE(s.Execute("begin").ok());
  ASSERT_TRUE(s.Execute("append 6 to Nums").ok());

  ExecLimits tiny;
  tiny.max_occurrences = 3;
  s.set_limits(tiny);
  auto r = s.Execute("append all Nums to Nums");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  s.set_limits(ExecLimits::Unlimited());

  // The trip aborted only the statement: the transaction (with its staged
  // append of 6) is still open and both commit and rollback still work.
  EXPECT_TRUE(s.in_txn());
  EXPECT_EQ(s.next_durable_lsn(), before_lsn);
  ASSERT_TRUE(s.Execute("rollback").ok());
  EXPECT_EQ(storage::CanonicalDatabaseBytes(db), before);
  EXPECT_EQ(RecoveredBytes(path), before);
}

TEST_F(TxnTest, CancelledTransactionCanStillRollBack) {
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.Execute("create Nums: { int4 }").ok());
  const std::string before = storage::CanonicalDatabaseBytes(db);

  ASSERT_TRUE(s.Execute("begin").ok());
  ASSERT_TRUE(s.Execute("append 1 to Nums").ok());
  auto cancel = std::make_shared<CancelToken>();
  s.set_cancel_token(cancel);
  cancel->Cancel();
  auto r = s.Execute("append 2 to Nums");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
  // `rollback` is exempt from the cancellation guard — a cancelled
  // transaction must remain abortable without resetting the token first.
  ASSERT_TRUE(s.Execute("rollback").ok());
  EXPECT_EQ(storage::CanonicalDatabaseBytes(db), before);
}

TEST_F(TxnTest, CommitFailureAutoAbortsAndLeavesDiskUntouched) {
  struct FailAppend : storage::StorageHooks {
    bool fail = false;
    bool OnWalAppend(size_t, int64_t* partial) override {
      if (fail) *partial = 3;  // leave a torn fragment, too
      return !fail;
    }
  };
  const std::string path = Path("db.exdb");
  FailAppend hooks;
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  s.set_storage_hooks(&hooks);
  ASSERT_TRUE(s.OpenStorage(path).ok());
  ASSERT_TRUE(s.Execute("create Nums: { int4 }\nappend 1 to Nums").ok());
  const std::string before = storage::CanonicalDatabaseBytes(db);
  const uint64_t before_lsn = s.next_durable_lsn();

  ASSERT_TRUE(s.Execute("begin").ok());
  ASSERT_TRUE(s.Execute("append 2 to Nums").ok());
  ASSERT_TRUE(s.Execute("create Other: { int4 }").ok());
  hooks.fail = true;
  auto r = s.Execute("commit");
  hooks.fail = false;
  ASSERT_FALSE(r.ok());

  // The failed commit auto-aborted: memory and disk are at the pre-begin
  // state and the session is out of the transaction and usable.
  EXPECT_FALSE(s.in_txn());
  EXPECT_EQ(storage::CanonicalDatabaseBytes(db), before);
  EXPECT_EQ(s.next_durable_lsn(), before_lsn);
  EXPECT_EQ(RecoveredBytes(path), before);
  ASSERT_TRUE(s.Execute("append 9 to Nums").ok());
  Database db2;
  MethodRegistry methods2(&db2.catalog());
  Session s2(&db2, &methods2);
  ASSERT_TRUE(s2.OpenStorage(path).ok());
  auto nums = db2.NamedValue("Nums");
  ASSERT_TRUE(nums.ok());
  EXPECT_EQ((*nums)->CountOf(I(9)), 1);
  EXPECT_EQ((*nums)->CountOf(I(2)), 0);
}

TEST_F(TxnTest, EmptyTransactionCommitsNothing) {
  const std::string path = Path("db.exdb");
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.OpenStorage(path).ok());
  ASSERT_TRUE(s.Execute("create Nums: { int4 }").ok());
  const uint64_t before_lsn = s.next_durable_lsn();
  ASSERT_TRUE(s.Execute("begin").ok());
  ASSERT_TRUE(s.Execute("commit").ok());
  EXPECT_EQ(s.next_durable_lsn(), before_lsn);
}

TEST_F(TxnTest, TransactionsWorkWithoutStorage) {
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.Execute("create Nums: { int4 }").ok());
  const std::string before = storage::CanonicalDatabaseBytes(db);

  ASSERT_TRUE(s.Execute("begin").ok());
  ASSERT_TRUE(s.Execute("append 1 to Nums").ok());
  ASSERT_TRUE(s.Execute("rollback").ok());
  EXPECT_EQ(storage::CanonicalDatabaseBytes(db), before);

  ASSERT_TRUE(s.Execute("begin").ok());
  ASSERT_TRUE(s.Execute("append 2 to Nums").ok());
  ASSERT_TRUE(s.Execute("commit").ok());
  auto nums = db.NamedValue("Nums");
  ASSERT_TRUE(nums.ok());
  EXPECT_EQ((*nums)->CountOf(I(2)), 1);
}

TEST_F(TxnTest, GroupCommitOffIsStillAtomic) {
  // EXCESS_GROUP_COMMIT=0 syncs every record of the group individually but
  // keeps the TXN_BEGIN..TXN_COMMIT framing, so recovery semantics (and
  // the recovered state) are identical.
  ::setenv("EXCESS_GROUP_COMMIT", "0", 1);
  const std::string path = Path("db.exdb");
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.OpenStorage(path).ok());
  ASSERT_TRUE(s.Execute("create Nums: { int4 }").ok());
  ASSERT_TRUE(s.Execute("begin").ok());
  ASSERT_TRUE(s.Execute("append all {1, 2} to Nums").ok());
  ASSERT_TRUE(s.Execute("append 3 to Nums").ok());
  ASSERT_TRUE(s.Execute("commit").ok());
  EXPECT_EQ(RecoveredBytes(path), storage::CanonicalDatabaseBytes(db));
}

TEST_F(TxnTest, CheckpointIsIncremental) {
  const std::string path = Path("db.exdb");
  Database db;
  MethodRegistry methods(&db.catalog());
  Session s(&db, &methods);
  ASSERT_TRUE(s.OpenStorage(path).ok());
  ASSERT_TRUE(s.Execute("create Nums: { int4 }\nappend 1 to Nums").ok());

  auto* writes =
      obs::MetricsRegistry::Global().GetCounter("storage.snapshot.writes");
  ASSERT_TRUE(s.Checkpoint().ok());
  const int64_t after_first = writes->value();
  // Nothing new in the WAL: the second checkpoint is a no-op.
  ASSERT_TRUE(s.Checkpoint().ok());
  EXPECT_EQ(writes->value(), after_first);
  // A new commit makes the next checkpoint write again.
  ASSERT_TRUE(s.Execute("append 2 to Nums").ok());
  ASSERT_TRUE(s.Checkpoint().ok());
  EXPECT_EQ(writes->value(), after_first + 1);
}

TEST(TxnEnvKnobs, GroupCommitKnobIsStrict) {
  // EXCESS_GROUP_COMMIT accepts exactly "0" or "1"; junk means the default
  // (group commit on). Observed through the same util::EnvInt call the
  // session makes when opening storage.
  ::setenv("EXCESS_GROUP_COMMIT", "0", 1);
  EXPECT_EQ(util::EnvInt("EXCESS_GROUP_COMMIT", 0, 1, 1), 0);
  ::setenv("EXCESS_GROUP_COMMIT", "1", 1);
  EXPECT_EQ(util::EnvInt("EXCESS_GROUP_COMMIT", 0, 1, 1), 1);
  ::setenv("EXCESS_GROUP_COMMIT", "2", 1);
  EXPECT_EQ(util::EnvInt("EXCESS_GROUP_COMMIT", 0, 1, 1), 1);
  ::setenv("EXCESS_GROUP_COMMIT", "yes", 1);
  EXPECT_EQ(util::EnvInt("EXCESS_GROUP_COMMIT", 0, 1, 1), 1);
  ::setenv("EXCESS_GROUP_COMMIT", " 0", 1);
  EXPECT_EQ(util::EnvInt("EXCESS_GROUP_COMMIT", 0, 1, 1), 1);
  ::unsetenv("EXCESS_GROUP_COMMIT");
  EXPECT_EQ(util::EnvInt("EXCESS_GROUP_COMMIT", 0, 1, 1), 1);
}

}  // namespace
}  // namespace excess
